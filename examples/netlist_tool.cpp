// netlist_tool — a small command-line front end over the public API, in the
// spirit of the SIS shell the surveyed flows lived in.
//
//   netlist_tool stats    <in.blif>
//   netlist_tool check    <in.blif>                 # lint + invariant check
//   netlist_tool power    <in.blif> [vectors]
//   netlist_tool optimize <in.blif> <out.blif>     # full low-power flow
//   netlist_tool balance  <in.blif> <out.blif>     # path balancing only
//   netlist_tool map      <in.blif> [area|delay|power]
//   netlist_tool resynth  <in.blif> <out.blif>     # window resynthesis
//   netlist_tool decomp   <in.blif> <out.blif> [chain|balanced|huffman]
//   netlist_tool gen      <name> <out.blif>        # built-in benchmarks
//
// Built-in names for `gen`: c17, rca8, rca16, csa16, mult4, mult8, cmp8,
// cmp16, parity16, alu4, dec4.

#include <fstream>
#include <iostream>
#include <string>

#include "core/flows.hpp"
#include "core/report.hpp"
#include "logicopt/decompose_power.hpp"
#include "logicopt/path_balance.hpp"
#include "logicopt/resynth.hpp"
#include "sim/logicsim.hpp"
#include "logicopt/techmap.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "netlist/validate.hpp"
#include "power/activity.hpp"

namespace {

using namespace lps;

int usage() {
  std::cerr << "usage: netlist_tool stats|check|power|optimize|balance|map|gen "
               "<args>  (see source header)\n";
  return 2;
}

Netlist generate(const std::string& name) {
  for (auto& [n, net] : bench::default_suite())
    if (n == name) return net.clone();
  throw std::runtime_error("unknown benchmark: " + name);
}

void write_out(const Netlist& net, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  blif::write(f, net);
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      if (argc < 4) return usage();
      write_out(generate(argv[2]), argv[3]);
      return 0;
    }
    if (cmd == "check") {
      // Non-throwing parse: print every diagnostic, not just the first.
      std::ifstream f(argv[2]);
      if (!f) {
        std::cerr << "error: cannot open " << argv[2] << "\n";
        return 1;
      }
      diag::DiagEngine eng;
      auto parsed = blif::parse(f, eng, argv[2]);
      if (parsed) validate(*parsed, eng);
      if (!eng.str().empty()) std::cerr << eng.str();
      if (!parsed || !eng.ok()) {
        std::cerr << argv[2] << ": " << eng.num_errors() << " error(s), "
                  << eng.num_warnings() << " warning(s)\n";
        return 1;
      }
      std::cout << argv[2] << ": ok ("
                << (eng.num_warnings() ? std::to_string(eng.num_warnings()) +
                                             " warning(s), "
                                       : std::string())
                << parsed->num_gates() << " gates)\n";
      return 0;
    }
    Netlist net = blif::read_file(argv[2]);
    if (cmd == "stats") {
      std::cout << "model " << net.name() << ": " << net.inputs().size()
                << " inputs, " << net.outputs().size() << " outputs, "
                << net.num_gates() << " gates, " << net.dffs().size()
                << " registers, " << net.num_literals() << " literals, "
                << "depth " << net.critical_delay() << "\n";
    } else if (cmd == "power") {
      power::AnalysisOptions ao;
      ao.n_vectors = argc > 3 ? std::stoul(argv[3]) : 2048;
      auto a = power::analyze(net, ao);
      std::cout << core::power_line(a.report.breakdown) << "\n"
                << "glitch fraction: " << core::Table::pct(a.glitch_fraction)
                << ", clock power: "
                << core::Table::num(a.clock_power_w * 1e6, 2) << " uW\n";
    } else if (cmd == "optimize") {
      if (argc < 4) return usage();
      auto r = core::optimize_combinational(net);
      core::Table t({"stage", "power uW", "gates"});
      for (const auto& s : r.stages)
        t.row({s.stage, core::Table::num(s.power_w * 1e6, 2),
               std::to_string(s.gates)});
      t.print(std::cout);
      std::cout << "saving: " << core::Table::pct(r.saving()) << "\n";
      write_out(r.circuit, argv[3]);
    } else if (cmd == "balance") {
      if (argc < 4) return usage();
      auto r = logicopt::full_balance(net);
      std::cout << "+" << r.buffers_inserted << " buffers, delay "
                << r.critical_delay_before << " -> "
                << r.critical_delay_after << "\n";
      write_out(net, argv[3]);
    } else if (cmd == "resynth") {
      if (argc < 4) return usage();
      auto st = sim::measure_activity(net, 64, 7);
      auto r = logicopt::resynthesize_windows(net, st.transition_prob);
      std::cout << r.windows_examined << " windows, " << r.nodes_rewritten
                << " rewrites, gates " << r.gates_before << " -> "
                << r.gates_after << "\n";
      write_out(net, argv[3]);
    } else if (cmd == "decomp") {
      if (argc < 4) return usage();
      std::string shape = argc > 4 ? argv[4] : "huffman";
      auto sh = shape == "chain"      ? logicopt::DecomposeShape::Chain
                : shape == "balanced" ? logicopt::DecomposeShape::Balanced
                                      : logicopt::DecomposeShape::Huffman;
      auto st = sim::measure_activity(net, 64, 7);
      auto r = logicopt::decompose_wide_gates(net, sh, st.transition_prob);
      std::cout << r.gates_decomposed << " wide gates decomposed (+"
                << r.gates_added << " 2-input gates)\n";
      write_out(net, argv[3]);
    } else if (cmd == "map") {
      std::string obj = argc > 3 ? argv[3] : "power";
      auto objective = obj == "area"    ? logicopt::MapObjective::Area
                       : obj == "delay" ? logicopt::MapObjective::Delay
                                        : logicopt::MapObjective::Power;
      auto lib = logicopt::standard_library();
      auto r = logicopt::tech_map(net, lib, objective);
      core::Table t({"cell", "count"});
      for (auto& [cell, count] : r.cell_histogram)
        t.row({cell, std::to_string(count)});
      t.print(std::cout);
      std::cout << "area " << core::Table::num(r.total_area, 1) << ", arrival "
                << core::Table::num(r.arrival, 1) << ", switched cap "
                << core::Table::num(r.switched_cap_ff, 1) << " fF/cyc\n";
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
