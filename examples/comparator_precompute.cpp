// comparator_precompute — the survey's Figure 1, as a runnable program.
//
// Builds the n-bit comparator C > D, selects the precomputation subset
// (which the algorithm discovers to be the two MSBs, exactly as in the
// paper), constructs the Figure 1(b) architecture with its XNOR-driven
// load-enable, verifies cycle-accurate equivalence against the plain
// registered comparator, and reports the measured power of both under
// several input distributions.

#include <iostream>
#include <random>

#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "seq/precompute.hpp"
#include "sim/logicsim.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  int n = (argc > 1) ? std::atoi(argv[1]) : 16;

  auto comb = bench::comparator_gt(n);
  std::cout << n << "-bit comparator: " << comb.num_gates() << " gates\n";

  auto sel = seq::select_precompute_inputs(comb, 2);
  std::cout << "Selected precompute inputs:";
  for (NodeId s : sel.subset) std::cout << ' ' << comb.node(s).name;
  std::cout << "  (hit probability "
            << core::Table::pct(sel.hit_probability) << ")\n";

  auto pre = seq::apply_precomputation(comb, sel.subset);
  auto base = seq::registered_baseline(comb);
  std::cout << "Precomputation logic overhead: " << pre.precompute_gates
            << " gates\n\n";

  // Cycle-accurate equivalence check.
  sim::LogicSim sa(base), sb(pre.circuit);
  auto da = base.dffs(), db = pre.circuit.dffs();
  std::vector<std::uint64_t> qa(da.size()), qb(db.size());
  for (std::size_t i = 0; i < da.size(); ++i)
    qa[i] = base.node(da[i]).init_value ? ~0ULL : 0;
  for (std::size_t i = 0; i < db.size(); ++i)
    qb[i] = pre.circuit.node(db[i]).init_value ? ~0ULL : 0;
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> pi(base.inputs().size());
  for (int cyc = 0; cyc < 100; ++cyc) {
    for (auto& w : pi) w = rng();
    auto fa = sa.eval(pi, qa);
    auto fb = sb.eval(pi, qb);
    if (sa.outputs_of(fa) != sb.outputs_of(fb)) {
      std::cerr << "MISMATCH at cycle " << cyc << "\n";
      return 1;
    }
    qa = sa.next_state_of(fa);
    qb = sb.next_state_of(fb);
  }
  std::cout << "Equivalence: 6400 random cycles, outputs identical.\n\n";

  core::Table t({"input dist (P(one))", "baseline uW", "precomp uW",
                 "saving"});
  for (double p : {0.5, 0.3, 0.1}) {
    power::AnalysisOptions ao;
    ao.n_vectors = 4096;
    ao.pi_one_prob.assign(base.inputs().size(), p);
    double pb = power::analyze(base, ao).report.breakdown.total_w();
    double pp = power::analyze(pre.circuit, ao).report.breakdown.total_w();
    t.row({core::Table::num(p, 2), core::Table::num(pb * 1e6, 2),
           core::Table::num(pp * 1e6, 2),
           core::Table::pct(1.0 - pp / pb)});
  }
  t.print(std::cout);
  return 0;
}
