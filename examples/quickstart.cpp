// quickstart — load (or build) a circuit, measure its Eqn. (1) power, run
// the combinational low-power flow, and print a stage-by-stage report.
//
// Usage:
//   quickstart                # uses a built-in carry-select adder
//   quickstart circuit.blif   # optimizes your own BLIF netlist

#include <iostream>

#include "core/flows.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "power/activity.hpp"

int main(int argc, char** argv) {
  using namespace lps;

  Netlist net = [&] {
    if (argc <= 1) return bench::carry_select_adder(16, 4);
    try {
      return blif::read_file(argv[1]);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      std::exit(1);
    }
  }();
  std::cout << "Circuit: " << net.name() << " — " << net.inputs().size()
            << " inputs, " << net.outputs().size() << " outputs, "
            << net.num_gates() << " gates\n\n";

  // Step 1: power analysis (event-driven, includes glitches).
  power::AnalysisOptions ao;
  ao.n_vectors = 2048;
  auto analysis = power::analyze(net, ao);
  std::cout << "Initial power: " << core::power_line(analysis.report.breakdown)
            << "\n  glitch fraction of switching power: "
            << core::Table::pct(analysis.glitch_fraction) << "\n\n";

  // Step 2: the full combinational low-power flow (strash, don't-cares,
  // path balancing, slack-based sizing), verified stage by stage.
  core::FlowOptions opt;
  opt.sim_vectors = 2048;
  auto flow = core::optimize_combinational(net, opt);

  core::Table t({"stage", "power (uW)", "glitch %", "gates", "delay"});
  for (const auto& s : flow.stages)
    t.row({s.stage, core::Table::num(s.power_w * 1e6, 2),
           core::Table::pct(s.glitch_fraction), std::to_string(s.gates),
           std::to_string(s.delay)});
  t.print(std::cout);
  std::cout << "\nTotal power saving: " << core::Table::pct(flow.saving())
            << " (function verified at every stage)\n";
  return 0;
}
