// lpsc — command-line client for the lpsd session daemon.
//
//   lpsc [--socket PATH] [--deadline MS] <command> [args...]
//
//   ping                          liveness probe
//   stat [session]                daemon or session statistics
//   load <session> <file.blif>    create/replace a session from a BLIF file
//   estimate <session>            power estimate (honors --deadline)
//   optimize <session> [flow]     run a flow (combinational|sequential)
//   rollback <session>            undo the last committed mutate/optimize
//   shutdown                      stop the daemon
//   raw '<json>'                  send one raw request frame verbatim
//
// Every command prints the daemon's one-line JSON response on stdout and
// exits 0 when the response has "ok": true, 1 otherwise (3 on transport
// errors), so it can anchor shell scripts and the CI soak job.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/json.hpp"
#include "service/sockets.hpp"

namespace {

using namespace lps;

int usage() {
  std::cerr << "usage: lpsc [--socket PATH] [--deadline MS] "
               "ping|stat|load|estimate|optimize|rollback|shutdown|raw "
               "[args...]  (see source header)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/lpsd.sock";
  long deadline_ms = 0;
  int i = 1;
  for (; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (a == "--deadline" && i + 1 < argc) {
      deadline_ms = std::strtol(argv[++i], nullptr, 10);
    } else {
      break;
    }
  }
  if (i >= argc) return usage();
  std::string cmd = argv[i++];
  auto arg = [&]() -> std::string {
    return i < argc ? std::string(argv[i++]) : std::string();
  };

  service::Json req;
  if (cmd == "ping" || cmd == "shutdown") {
    req.set("verb", service::Json(cmd));
  } else if (cmd == "stat") {
    req.set("verb", service::Json("stat"));
    std::string s = arg();
    if (!s.empty()) req.set("session", service::Json(s));
  } else if (cmd == "load") {
    std::string session = arg(), file = arg();
    if (session.empty() || file.empty()) return usage();
    std::ifstream is(file, std::ios::binary);
    if (!is) {
      std::cerr << "lpsc: cannot read '" << file << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    req.set("verb", service::Json("load"));
    req.set("session", service::Json(session));
    req.set("blif", service::Json(ss.str()));
  } else if (cmd == "estimate" || cmd == "rollback") {
    std::string session = arg();
    if (session.empty()) return usage();
    req.set("verb", service::Json(cmd));
    req.set("session", service::Json(session));
  } else if (cmd == "optimize") {
    std::string session = arg();
    if (session.empty()) return usage();
    req.set("verb", service::Json("optimize"));
    req.set("session", service::Json(session));
    std::string flow = arg();
    if (!flow.empty()) req.set("flow", service::Json(flow));
  } else if (cmd == "raw") {
    std::string frame = arg();
    if (frame.empty()) return usage();
    service::SocketClient client;
    diag::Status st = client.connect(socket_path);
    if (!st.is_ok()) {
      std::cerr << "lpsc: " << st.diagnostic().str() << "\n";
      return 3;
    }
    auto resp = client.roundtrip(frame);
    if (!resp) {
      std::cerr << "lpsc: transport error\n";
      return 3;
    }
    std::cout << *resp << "\n";
    auto doc = service::json_parse(*resp);
    const service::Json* ok = doc ? doc->find("ok") : nullptr;
    return ok && ok->is_bool() && ok->as_bool() ? 0 : 1;
  } else {
    return usage();
  }
  if (deadline_ms > 0)
    req.set("deadline_ms", service::Json(deadline_ms));

  service::SocketClient client;
  diag::Status st = client.connect(socket_path);
  if (!st.is_ok()) {
    std::cerr << "lpsc: " << st.diagnostic().str() << "\n";
    return 3;
  }
  auto resp = client.roundtrip(req.dump());
  if (!resp) {
    std::cerr << "lpsc: transport error\n";
    return 3;
  }
  std::cout << *resp << "\n";
  auto doc = service::json_parse(*resp);
  const service::Json* ok = doc ? doc->find("ok") : nullptr;
  return ok && ok->is_bool() && ok->as_bool() ? 0 : 1;
}
