// dsp_datapath — the §IV behavioral-synthesis story on an FIR filter:
// module selection, scheduling, correlation-aware binding, transformation
// plus voltage scaling, and memory loop reordering, in one pipeline.

#include <iostream>

#include "arch/binding.hpp"
#include "arch/dfg.hpp"
#include "arch/memory.hpp"
#include "arch/modules.hpp"
#include "arch/scheduling.hpp"
#include "arch/transforms.hpp"
#include "arch/voltage.hpp"
#include "core/report.hpp"

int main() {
  using namespace lps;
  using namespace lps::arch;

  auto g = fir_filter(8);
  auto lib = standard_module_library();
  std::cout << "Workload: 8-tap FIR, "
            << g.num_ops() << " DFG nodes\n\n";

  // --- module selection under a throughput constraint ----------------------
  std::vector<const Module*> fastest(g.num_ops(), nullptr);
  for (int i = 0; i < g.num_ops(); ++i) {
    OpType t = g.op(i).type;
    if (t != OpType::Input && t != OpType::Const && t != OpType::Output)
      fastest[i] = lib.fastest(t);
  }
  int min_cs = asap(g, fastest).length_cs;
  core::Table sel_t({"deadline (cs)", "energy (pJ/pass)", "schedule (cs)"});
  for (int mult : {1, 2, 3, 6}) {
    auto sel = select_modules(g, lib, min_cs * mult);
    sel_t.row({std::to_string(min_cs * mult),
               core::Table::num(sel.energy_pj, 1),
               std::to_string(sel.schedule_length_cs)});
  }
  std::cout << "Module selection [17]: relaxing the deadline buys energy\n";
  sel_t.print(std::cout);

  // --- correlation-aware binding -------------------------------------------
  std::map<OpType, int> limits{{OpType::Mul, 2}, {OpType::Add, 2}};
  auto s = list_schedule(g, fastest, limits);
  auto naive = naive_binding(g, s);
  auto low = low_power_binding(g, s);
  std::cout << "\nBinding [33,34]: unit-input toggles per pass — naive "
            << core::Table::num(naive.switched_bits, 1) << ", low-power "
            << core::Table::num(low.switched_bits, 1) << " ("
            << core::Table::pct(1.0 - low.switched_bits /
                                          naive.switched_bits)
            << " saved on " << low.num_units << " units)\n";

  // --- transformation + voltage scaling ------------------------------------
  VoltageModel vm;
  auto thr = tree_height_reduction(g);
  auto r1 = evaluate_voltage_gain(g, thr, 1, lib);
  auto u2 = tree_height_reduction(unroll(g, 2));
  auto r2 = evaluate_voltage_gain(g, u2, 2, lib);
  core::Table vt({"transform", "cs/sample", "Vdd", "power ratio"});
  vt.row({"reference", std::to_string(r1.cs_reference), "5.00", "1.000"});
  vt.row({"tree-height", std::to_string(r1.cs_transformed),
          core::Table::num(r1.vdd, 2), core::Table::num(r1.power_ratio, 3)});
  vt.row({"unroll x2 + thr",
          std::to_string(r2.cs_transformed) + "/2",
          core::Table::num(r2.vdd, 2), core::Table::num(r2.power_ratio, 3)});
  std::cout << "\nTransformations + voltage scaling [7]:\n";
  vt.print(std::cout);

  // --- memory loop order ----------------------------------------------------
  int n = 20;
  core::Table mt({"loop order", "misses", "energy (nJ)"});
  for (auto o : {LoopOrder::IJK, LoopOrder::IKJ, LoopOrder::JKI}) {
    auto e = simulate_memory(matmul_addresses(n, o));
    mt.row({to_string(o), std::to_string(e.misses),
            core::Table::num(e.energy_pj / 1000.0, 1)});
  }
  auto tiled = simulate_memory(matmul_addresses_tiled(n, 8));
  mt.row({"ijk tiled 8", std::to_string(tiled.misses),
          core::Table::num(tiled.energy_pj / 1000.0, 1)});
  std::cout << "\nMemory transformations [14] (" << n << "x" << n
            << " matmul):\n";
  mt.print(std::cout);
  return 0;
}
