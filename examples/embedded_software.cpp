// embedded_software — the §V story: instruction-level power on the DSP
// core.  Compiles a dot-product kernel four ways (naive, power-scheduled,
// register-starved, fully DSP-optimized) and prints cycles vs energy —
// illustrating "faster code almost always implies lower energy".

#include <iostream>

#include "core/report.hpp"
#include "sw/isa.hpp"
#include "sw/pairing.hpp"
#include "sw/power_model.hpp"
#include "sw/regalloc.hpp"
#include "sw/scheduling.hpp"

int main() {
  using namespace lps;
  using namespace lps::sw;

  const int n = 16;
  Machine ref;
  for (int i = 0; i < n; ++i) {
    ref.poke(i, 3 * i + 1);
    ref.poke(32 + i, i - 7);
  }

  auto run_result = [&](const Program& p) {
    Machine m;
    for (int i = 0; i < n; ++i) {
      m.poke(i, 3 * i + 1);
      m.poke(32 + i, i - 7);
    }
    m.run(p);
    return m.mem(100);
  };

  auto naive = dot_product_naive(n, 0, 32, 100);
  auto golden = run_result(naive);

  auto scheduled = schedule_for_power(naive).program;
  auto packed = pack_loads(naive).program;
  auto dsp = fuse_mac(pack_loads(naive).program, 0).program;

  // A register-starved variant: recompile through the allocator with only
  // 3 physical registers (the naive kernel uses 4 virtual ones; the
  // allocator spills).
  VirtualProgram vp;
  for (const auto& i : naive) {
    Instr v = i;  // virtual ids = physical ids here (small kernel)
    vp.push_back(v);
  }
  auto starved = allocate(vp, 3).program;

  core::Table t(
      {"variant", "instrs", "cycles", "energy (mA*cyc)", "result ok"});
  auto row = [&](const std::string& name, const Program& p) {
    auto e = program_energy(p);
    t.row({name, std::to_string(p.size()), std::to_string(e.cycles),
           core::Table::num(e.total_macycles(), 1),
           run_result(p) == golden ? "yes" : "NO"});
  };
  row("naive", naive);
  row("power-scheduled [40,23]", scheduled);
  row("3-register allocation [45]", starved);
  row("packed loads [23]", packed);
  row("MAC-fused DSP [23]", dsp);
  t.print(std::cout);

  auto en = program_energy(naive);
  auto ed = program_energy(dsp);
  std::cout << "\nDSP optimization: "
            << core::Table::pct(1.0 - ed.total_macycles() /
                                          en.total_macycles())
            << " energy saving, "
            << core::Table::pct(1.0 - (double)ed.cycles / en.cycles)
            << " cycle saving — energy tracks cycles (§V).\n";
  return 0;
}
