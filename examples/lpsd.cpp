// lpsd — the low-power session daemon.
//
// Hosts persistent netlist sessions behind a line-delimited JSON protocol
// on a local AF_UNIX socket (see DESIGN.md "Service architecture" for the
// grammar and src/service/ for the implementation).  Start it, then talk to
// it with lpsc or any tool that can write JSON lines to a socket:
//
//   lpsd --socket /tmp/lpsd.sock --journal-dir /tmp/lpsd-journal &
//   lpsc --socket /tmp/lpsd.sock ping
//   lpsc --socket /tmp/lpsd.sock load s1 my.blif
//   lpsc --socket /tmp/lpsd.sock raw '{"verb":"estimate","session":"s1"}'
//
// Options:
//   --socket PATH        socket path (default /tmp/lpsd.sock)
//   --journal-dir DIR    per-session crash journals; on startup every
//                        journal in DIR is recovered into a live session
//   --mem-cap BYTES      global analyzer-cache budget (LRU eviction; 0=off)
//
// The daemon exits on a "shutdown" request.

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/env.hpp"
#include "service/service.hpp"
#include "service/sockets.hpp"

int main(int argc, char** argv) {
  using namespace lps;

  service::ServiceOptions opt;
  std::string socket_path = "/tmp/lpsd.sock";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--socket") {
      const char* v = next();
      if (!v) { std::cerr << "lpsd: --socket needs a path\n"; return 2; }
      socket_path = v;
    } else if (a == "--journal-dir") {
      const char* v = next();
      if (!v) { std::cerr << "lpsd: --journal-dir needs a path\n"; return 2; }
      opt.journal_dir = v;
    } else if (a == "--mem-cap") {
      const char* v = next();
      char* end = nullptr;
      unsigned long long n = v ? std::strtoull(v, &end, 10) : 0;
      if (!v || !end || *end) {
        std::cerr << "lpsd: --mem-cap needs a byte count\n";
        return 2;
      }
      opt.memory_cap_bytes = static_cast<std::size_t>(n);
    } else {
      std::cerr << "lpsd: unknown option '" << a << "'\n";
      return 2;
    }
  }

  service::Service svc(opt);
  if (!opt.journal_dir.empty()) {
    std::size_t n = svc.recover_sessions();
    if (n) std::cerr << "lpsd: recovered " << n << " session(s)\n";
  }

  service::SocketServer server(svc, socket_path);
  diag::Status st = server.start();
  if (!st.is_ok()) {
    std::cerr << "lpsd: " << st.diagnostic().str() << "\n";
    return 1;
  }
  std::cerr << "lpsd: listening on " << socket_path << "\n";
  server.serve();
  std::cerr << "lpsd: shutdown\n";
  return 0;
}
