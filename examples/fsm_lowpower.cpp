// fsm_lowpower — the §III-C sequential story end to end on one FSM:
// read (or generate) an STG, compare state encodings, synthesize with the
// two-level minimizer, add self-loop clock gating, and report weighted
// switching, measured power (clock included) and gate counts.
//
// Usage:
//   fsm_lowpower                # built-in polling FSM
//   fsm_lowpower machine.kiss   # your own KISS2 machine

#include <fstream>
#include <iostream>

#include "core/report.hpp"
#include "power/activity.hpp"
#include "seq/clock_gating.hpp"
#include "seq/encoding.hpp"
#include "seq/guarded_eval.hpp"
#include "seq/stg.hpp"

int main(int argc, char** argv) {
  using namespace lps;
  using namespace lps::seq;

  Stg stg = [&] {
    if (argc > 1) {
      std::ifstream f(argv[1]);
      if (!f) {
        std::cerr << "cannot open " << argv[1] << "\n";
        std::exit(1);
      }
      // Report every diagnostic, not just the first error.
      diag::DiagEngine eng;
      auto parsed = parse_kiss(f, eng, argv[1]);
      if (!eng.str().empty()) std::cerr << eng.str();
      if (!parsed) std::exit(1);
      return std::move(*parsed);
    }
    return polling_fsm(16);
  }();
  if (auto err = stg.check(); !err.empty()) {
    std::cerr << "bad STG: " << err << "\n";
    return 1;
  }
  std::cout << "FSM: " << stg.num_states() << " states, "
            << stg.num_inputs() << " inputs, " << stg.num_outputs()
            << " outputs, " << stg.transitions().size() << " transitions\n\n";

  core::Table t({"encoding", "FF bits", "wswitch (tog/cyc)", "gates",
                 "power uW", "gated (XOR cmp) uW", "gated (STG pred) uW"});
  struct E {
    std::string name;
    Encoding enc;
  };
  std::vector<E> encs;
  encs.push_back({"binary", binary_encoding(stg)});
  encs.push_back({"one-hot", onehot_encoding(stg)});
  encs.push_back({"gray-walk", gray_walk_encoding(stg)});
  encs.push_back({"annealed", low_power_encoding(stg)});
  for (auto& [name, enc] : encs) {
    auto net = synthesize_fsm(stg, enc, name);
    power::AnalysisOptions ao;
    ao.n_vectors = 2048;
    double p0 = power::analyze(net, ao).report.breakdown.total_w();
    auto gated = net.clone();
    gate_fsm_self_loops(gated);
    double p1 = power::analyze(gated, ao).report.breakdown.total_w();
    auto gated2 = net.clone();
    gate_self_loops_from_stg(gated2, stg, enc);
    double p2 = power::analyze(gated2, ao).report.breakdown.total_w();
    t.row({name, std::to_string(enc.bits),
           core::Table::num(enc.weighted_switching(stg), 3),
           std::to_string(net.num_gates()), core::Table::num(p0 * 1e6, 2),
           core::Table::num(p1 * 1e6, 2), core::Table::num(p2 * 1e6, 2)});
  }
  t.print(std::cout);
  std::cout << "\n(power includes gating-aware clock-pin energy; self-loop "
               "gating pays off when the machine often waits in place)\n";
  return 0;
}
