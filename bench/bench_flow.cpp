// E20 — the survey's thesis, §VI: "We have surveyed power optimizations
// applicable at various levels of abstraction" — the point of a CAD system
// is that they compose.  This bench runs the full combinational low-power
// flow (strash -> ODC rewriting -> window resynthesis -> path balancing ->
// in-place sizing, each stage measured and reverted if it loses) across the
// benchmark suite and reports the composed savings with stage attribution.

#include "bench_util.hpp"
#include "core/flows.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

void report() {
  benchx::banner("E20 bench_flow",
                 "Composition: the surveyed optimizations stack; losing "
                 "stages are measured and reverted (the buffer-capacitance "
                 "caveat of S-III-A.2 made operational).");
  core::Table t({"circuit", "power in uW", "power out uW", "saving",
                 "gates in->out", "stages kept", "equiv"});
  for (const auto& [name, net] : bench::default_suite()) {
    if (net.num_gates() > 300) continue;  // keep the sweep quick
    core::FlowOptions opt;
    opt.sim_vectors = 1024;
    auto r = core::optimize_combinational(net, opt);
    int kept = 0;
    for (const auto& s : r.stages)
      if (s.stage.find("reverted") == std::string::npos) ++kept;
    kept -= 2;  // input + strash rows
    bool equiv = sim::equivalent_random(net, r.circuit, 256, 5);
    t.row({name, core::Table::num(r.stages.front().power_w * 1e6, 1),
           core::Table::num(r.stages.back().power_w * 1e6, 1),
           core::Table::pct(r.saving()),
           std::to_string(r.stages.front().gates) + " -> " +
               std::to_string(r.stages.back().gates),
           std::to_string(kept) + "/4", equiv ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void bm_flow(benchmark::State& state) {
  auto net = bench::carry_select_adder(8, 2);
  core::FlowOptions opt;
  opt.sim_vectors = 256;
  for (auto _ : state) {
    auto r = core::optimize_combinational(net, opt);
    benchmark::DoNotOptimize(r.stages.size());
  }
}
BENCHMARK(bm_flow);

}  // namespace

LPS_BENCH_MAIN(report)
