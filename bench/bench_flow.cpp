// E20 — the survey's thesis, §VI: "We have surveyed power optimizations
// applicable at various levels of abstraction" — the point of a CAD system
// is that they compose.  This bench runs the full combinational low-power
// flow (strash -> ODC rewriting -> window resynthesis -> path balancing ->
// in-place sizing, each stage measured and reverted if it loses) across the
// benchmark suite and reports the composed savings with stage attribution.

#include <algorithm>

#include "bench_util.hpp"
#include "core/flows.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

void report() {
  benchx::banner("E20 bench_flow",
                 "Composition: the surveyed optimizations stack; losing "
                 "stages are measured and reverted (the buffer-capacitance "
                 "caveat of S-III-A.2 made operational).");
  core::Table t({"circuit", "power in uW", "power out uW", "saving",
                 "gates in->out", "stages kept", "equiv"});
  double saving_min = 1.0, saving_max = -1.0;
  bool all_equiv = true;
  for (const auto& [name, net] : bench::default_suite()) {
    if (net.num_gates() > 300) continue;  // keep the sweep quick
    core::FlowOptions opt;
    opt.sim_vectors = 1024;
    auto r = core::optimize_combinational(net, opt);
    int kept = 0;
    for (const auto& s : r.stages)
      if (s.status == "kept") ++kept;
    kept -= 2;  // input + strash rows
    const core::StageReport* out = r.last_kept_stage();
    bool equiv = sim::equivalent_random(net, r.circuit, 256, 5);
    saving_min = std::min(saving_min, r.saving());
    saving_max = std::max(saving_max, r.saving());
    all_equiv = all_equiv && equiv;
    t.row({name, core::Table::num(r.stages.front().power_w * 1e6, 1),
           core::Table::num(out->power_w * 1e6, 1),
           core::Table::pct(r.saving()),
           std::to_string(r.stages.front().gates) + " -> " +
               std::to_string(out->gates),
           std::to_string(kept) + "/4", equiv ? "yes" : "NO"});
  }
  t.print(std::cout);
  benchx::claim("E20.saving_min", saving_min);
  benchx::claim("E20.saving_max", saving_max);
  benchx::claim("E20.all_equivalent", all_equiv);
  std::cout << '\n';
}

void bm_flow_workers(benchmark::State& state, int workers) {
  auto net = bench::carry_select_adder(8, 2);
  core::FlowOptions opt;
  opt.sim_vectors = 256;
  opt.opt_workers = workers;
  for (auto _ : state) {
    auto r = core::optimize_combinational(net, opt);
    benchmark::DoNotOptimize(r.stages.size());
  }
}
void bm_flow(benchmark::State& state) { bm_flow_workers(state, 0); }
// _w1/_w4 pair: speculative candidate scoring off/on in the optimization
// stages — aggregate_bench.py derives the flow-level speedup from it.
void bm_flow_w1(benchmark::State& state) { bm_flow_workers(state, 1); }
void bm_flow_w4(benchmark::State& state) { bm_flow_workers(state, 4); }
BENCHMARK(bm_flow);
BENCHMARK(bm_flow_w1);
BENCHMARK(bm_flow_w4);

}  // namespace

LPS_BENCH_MAIN(report)
