// E2 — §II-A: "Moderate improvements in power and delay can be obtained by
// a judicious ordering of transistors within individual complex gates"
// [32,42].  Reproduced: exhaustive reordering of series stacks in common
// complex gates under skewed input statistics.

#include "bench_util.hpp"
#include "circuit/reordering.hpp"
#include "core/report.hpp"

namespace {

using namespace lps;
using namespace lps::circuit;

struct Case {
  const char* name;
  ComplexGate gate;
  std::vector<double> probs;
  std::vector<double> arrival;
};

std::vector<Case> cases() {
  using S = SwitchNet;
  std::vector<Case> cs;
  cs.push_back({"NAND3  g=abc",
                ComplexGate(3, S::series({S::leaf(0), S::leaf(1), S::leaf(2)})),
                {0.5, 0.9, 0.2},
                {0.0, 2.0, 1.0}});
  cs.push_back({"NAND4  g=abcd",
                ComplexGate(4, S::series({S::leaf(0), S::leaf(1), S::leaf(2),
                                          S::leaf(3)})),
                {0.5, 0.95, 0.1, 0.8},
                {3.0, 0.0, 1.0, 0.0}});
  cs.push_back({"AOI    f=(a+b)c",
                ComplexGate(3, S::series({S::parallel({S::leaf(0), S::leaf(1)}),
                                          S::leaf(2)})),
                {0.7, 0.7, 0.3},
                {0.0, 0.0, 2.0}});
  cs.push_back(
      {"OAI22  f=(a+b)(c+d)",
       ComplexGate(4, S::series({S::parallel({S::leaf(0), S::leaf(1)}),
                                 S::parallel({S::leaf(2), S::leaf(3)})})),
       {0.9, 0.9, 0.2, 0.2},
       {1.0, 1.0, 0.0, 0.0}});
  return cs;
}

void report() {
  benchx::banner("E2 bench_reordering",
                 "Claim (S-II-A): transistor reordering yields moderate "
                 "power and delay improvements [32,42].");
  core::Table t({"gate", "objective", "before", "after", "improvement"});
  double e_min = 1.0, e_max = 0.0, d_min = 1.0;
  for (auto& c : cases()) {
    auto rp = reorder(c.gate, c.probs, c.arrival, Objective::Power);
    double e_impr = 1.0 - rp.energy_after_fj /
                              std::max(1e-12, rp.energy_before_fj);
    e_min = std::min(e_min, e_impr);
    e_max = std::max(e_max, e_impr);
    t.row({c.name, "energy fJ/vec", core::Table::num(rp.energy_before_fj, 2),
           core::Table::num(rp.energy_after_fj, 2), core::Table::pct(e_impr)});
    auto rd = reorder(c.gate, c.probs, c.arrival, Objective::Delay);
    double d_impr = 1.0 - rd.delay_after / std::max(1e-12, rd.delay_before);
    d_min = std::min(d_min, d_impr);
    t.row({c.name, "delay", core::Table::num(rd.delay_before, 1),
           core::Table::num(rd.delay_after, 1), core::Table::pct(d_impr)});
  }
  t.print(std::cout);
  benchx::claim("E2.energy_improvement_min", e_min);
  benchx::claim("E2.energy_improvement_max", e_max);
  benchx::claim("E2.delay_improvement_min", d_min);
  std::cout << '\n';
}

void bm_reorder(benchmark::State& state) {
  using S = SwitchNet;
  ComplexGate g(4, S::series({S::leaf(0), S::leaf(1), S::leaf(2), S::leaf(3)}));
  double probs[] = {0.5, 0.9, 0.2, 0.7};
  double arr[] = {0, 1, 2, 3};
  for (auto _ : state) {
    auto r = reorder(g, {probs, 4}, {arr, 4}, Objective::PowerDelayProduct);
    benchmark::DoNotOptimize(r.energy_after_fj);
  }
}
BENCHMARK(bm_reorder);

}  // namespace

LPS_BENCH_MAIN(report)
