// E4 — §III-A.1: don't-care optimization reduces switching activity [38,19].
// Reproduced: ODC-based rewriting on redundancy-rich circuits, with power
// measured before/after and equivalence verified.

#include <algorithm>
#include <random>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "logicopt/dontcare.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

// Inject reconvergent redundancy into a circuit: for a random sample of
// gates g, replace one PO cone piece y by (y AND (g OR NOT g))-style padding
// realized structurally — here we duplicate logic that ODC analysis should
// collapse back.
Netlist with_redundancy(const Netlist& src, std::uint32_t seed) {
  Netlist n = src.clone();
  std::mt19937 rng(seed);
  auto order = n.topo_order();
  int added = 0;
  for (NodeId id : order) {
    if (added >= 8) break;
    const Node& nd = n.node(id);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    if (nd.fanins.size() != 2 || (rng() % 3)) continue;
    // y -> OR(y, AND(y, x)): absorption-redundant (AND gate is removable).
    NodeId a = nd.fanins[0];
    NodeId red = n.add_and(id, a);
    NodeId replacement = n.add_or(id, red);
    std::vector<NodeId> users = n.node(id).fanouts;
    for (NodeId u : users) {
      if (u == red || u == replacement) continue;
      auto& fi = n.node(u).fanins;
      for (std::size_t k = 0; k < fi.size(); ++k)
        if (fi[k] == id) n.replace_fanin(u, k, replacement);
    }
    ++added;
  }
  return n;
}

void report() {
  benchx::banner("E4 bench_dontcare",
                 "Claim (S-III-A.1): exploiting ODC freedom lowers switched "
                 "capacitance [38,19].");
  core::Table t({"circuit", "gates before", "gates after", "rewrites",
                 "power before uW", "after uW", "saving", "equiv"});
  std::vector<std::pair<std::string, Netlist>> suite;
  suite.emplace_back("c17+red", with_redundancy(bench::c17(), 3));
  suite.emplace_back("rca8+red",
                     with_redundancy(bench::ripple_carry_adder(8), 5));
  suite.emplace_back("cmp8+red", with_redundancy(bench::comparator_gt(8), 7));
  suite.emplace_back("alu4+red", with_redundancy(bench::alu(4), 9));
  double saving_min = 1.0;
  bool all_equiv = true;
  for (auto& [name, net0] : suite) {
    auto net = net0.clone();
    power::AnalysisOptions ao;
    ao.n_vectors = 2048;
    double before = power::analyze(net, ao).report.breakdown.total_w();
    auto st = sim::measure_activity(net, 64, 11);
    auto res = logicopt::optimize_dontcare(net, st.transition_prob);
    double after = power::analyze(net, ao).report.breakdown.total_w();
    bool equiv = sim::equivalent_random(net0, net, 512, 13);
    saving_min = std::min(saving_min, 1.0 - after / before);
    all_equiv = all_equiv && equiv;
    t.row({name, std::to_string(res.gates_before),
           std::to_string(res.gates_after),
           std::to_string(res.const_replacements + res.merges),
           core::Table::num(before * 1e6, 2), core::Table::num(after * 1e6, 2),
           core::Table::pct(1.0 - after / before), equiv ? "yes" : "NO"});
  }
  t.print(std::cout);
  benchx::claim("E4.saving_min", saving_min);
  benchx::claim("E4.all_equivalent", all_equiv);
  std::cout << '\n';
}

void bm_dontcare(benchmark::State& state) {
  auto base = with_redundancy(bench::ripple_carry_adder(6), 5);
  auto st = sim::measure_activity(base, 32, 11);
  for (auto _ : state) {
    auto net = base.clone();
    auto r = logicopt::optimize_dontcare(net, st.transition_prob);
    benchmark::DoNotOptimize(r.merges);
  }
}
BENCHMARK(bm_dontcare);

}  // namespace

LPS_BENCH_MAIN(report)
