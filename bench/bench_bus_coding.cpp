// E9 — §III-C.1 bus coding [39]: the worked example (0000 -> 1011 sent as
// 0100 + E), bus-invert savings vs width, limited-weight codes, gray
// addressing, and one-hot RNS arithmetic [11].

#include "bench_util.hpp"
#include "coding/bus_invert.hpp"
#include "coding/gray.hpp"
#include "coding/limited_weight.hpp"
#include "coding/residue.hpp"
#include "core/report.hpp"
#include "sim/stimulus.hpp"

namespace {

using namespace lps;
using namespace lps::coding;

void report() {
  benchx::banner("E9 bench_bus_coding",
                 "Claim (S-III-C.1): bus-invert bounds and reduces bus "
                 "transitions [39]; one-hot residues fix register "
                 "switching [11].");
  {
    BusInvertEncoder enc(4);
    enc.encode(0b0000);
    auto s = enc.encode(0b1011);
    std::cout << "Worked example: prev 0000, next 1011 -> wires "
              << ((s.wire_word >> 3) & 1) << ((s.wire_word >> 2) & 1)
              << ((s.wire_word >> 1) & 1) << (s.wire_word & 1) << ", E="
              << (s.invert ? 1 : 0) << "  (paper: 0100, E=1)\n\n";
    benchx::claim("E9.worked_example_wires", static_cast<double>(s.wire_word));
    benchx::claim("E9.worked_example_E", s.invert);
    benchx::claim("E9.worked_example_transitions",
                  static_cast<double>(s.transitions));
  }
  {
    std::cout << "Bus-invert on uniform data (transition signalling "
                 "average; Stan & Burleson report ~18% at w=8):\n";
    core::Table t({"width", "raw tog/cyc", "coded tog/cyc", "saving",
                   "worst raw", "worst coded"});
    for (int w : {4, 8, 16, 32}) {
      auto s = sim::uniform_stream(w, 40000, 7 * w);
      auto st = evaluate_bus_invert(s, w);
      double n = static_cast<double>(s.size() - 1);
      benchx::claim("E9.saving_w" + std::to_string(w), st.saving());
      if (w == 8)
        benchx::claim("E9.worst_coded_w8",
                      static_cast<double>(st.worst_cycle_coded));
      t.row({std::to_string(w), core::Table::num(st.raw_transitions / n, 2),
             core::Table::num(st.coded_transitions / n, 2),
             core::Table::pct(st.saving()),
             std::to_string(st.worst_cycle_raw),
             std::to_string(st.worst_cycle_coded)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nPartitioned bus-invert (one E line per group, w=32):\n";
    core::Table t({"groups", "saving"});
    auto s = sim::uniform_stream(32, 40000, 11);
    double sav_g1 = 0, sav_g8 = 0;
    for (int g : {1, 2, 4, 8}) {
      double sav = evaluate_partitioned_bus_invert(s, 32, g).saving();
      if (g == 1) sav_g1 = sav;
      if (g == 8) sav_g8 = sav;
      t.row({std::to_string(g), core::Table::pct(sav)});
    }
    t.print(std::cout);
    benchx::claim("E9.part32_saving_g1", sav_g1);
    benchx::claim("E9.part32_saving_g8", sav_g8);
    benchx::claim("E9.partitioned_beats_monolithic", sav_g8 > sav_g1);
  }
  {
    std::cout << "\nLimited-weight codes (m=6 source bits, transition "
                 "signalling):\n";
    core::Table t({"wires n", "avg codeword weight", "coded vs raw"});
    auto s = sim::uniform_stream(6, 40000, 13);
    for (int n : {6, 7, 8, 10}) {
      LimitedWeightCode lwc(6, n);
      auto st = evaluate_lwc(s, 6, n);
      t.row({std::to_string(n), core::Table::num(lwc.average_weight(), 2),
             core::Table::pct(1.0 - static_cast<double>(st.coded_transitions) /
                                        st.raw_transitions)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nGray-coded addressing (16-bit, sequentiality sweep):\n";
    core::Table t({"P(sequential)", "gray vs binary"});
    for (double p : {0.99, 0.9, 0.5, 0.0}) {
      auto s = sim::address_stream(16, 40000, p, 17);
      auto st = evaluate_gray(s, 16);
      t.row({core::Table::num(p, 2),
             core::Table::pct(1.0 - static_cast<double>(st.coded_transitions) /
                                        st.raw_transitions)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nOne-hot RNS accumulator [11] vs binary accumulator:\n";
    core::Table t({"moduli", "wires bin/onehot", "reg tog bin/onehot",
                   "LOGIC tog bin (adder, w/ glitches)", "LOGIC tog onehot"});
    for (auto moduli : {std::vector<int>{3, 5, 7},
                        std::vector<int>{5, 7, 9, 11}}) {
      OneHotRns rns(moduli);
      auto st = evaluate_rns_accumulator(rns, 4000, 23);
      std::string ms;
      for (int m : moduli) ms += std::to_string(m) + " ";
      t.row({ms, std::to_string(st.wires_binary) + "/" +
                     std::to_string(st.wires_onehot),
             core::Table::num(st.avg_transitions_binary, 2) + "/" +
                 core::Table::num(st.avg_transitions_onehot, 2),
             core::Table::num(st.logic_transitions_binary, 1),
             core::Table::num(st.logic_transitions_onehot, 1)});
    }
    t.print(std::cout);
  }
  std::cout << '\n';
}

void bm_bus_invert(benchmark::State& state) {
  auto s = sim::uniform_stream(static_cast<int>(state.range(0)), 4096, 3);
  for (auto _ : state) {
    auto st = evaluate_bus_invert(s, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(st.coded_transitions);
  }
}
BENCHMARK(bm_bus_invert)->Arg(8)->Arg(32);

}  // namespace

LPS_BENCH_MAIN(report)
