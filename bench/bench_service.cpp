// E23 — resilient lpsd session service under chaos.  A long-lived
// estimation daemon is only useful if no client behaviour — malformed
// frames, hostile bytes, deadline storms, cache-evicting memory pressure,
// injected engine failures, or a kill mid-mutation — can crash it, wedge a
// session, or silently corrupt an estimate.  This harness drives the
// service layer (src/service/) through a multi-threaded request storm with
// injected chaos, then checks the robustness ledger the hard way:
//
//   * every request, hostile or not, produced a parsable JSON response
//     with a structured ok/error shape (errors_structured_frac == 1);
//   * the process survived the storm and the 3000-frame protocol fuzz
//     (soak_crashes == 0, fuzz_crashes == 0);
//   * every injected degradation (forced compiled-tape failure, cache
//     eviction) is visible in the metrics/stat ledger, never silent;
//   * recovering the journals into a fresh service reproduces the live
//     sessions' structural hashes exactly, and a torn journal tail
//     recovers to the last committed state;
//   * plain estimates stay fast under chaos (p99 latency, throughput).
//
// Any violated invariant exits non-zero — this binary is the CI
// chaos-soak gate (run under ASan/UBSan with an extended LPS_SOAK_MS).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <iostream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/env.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "power/incremental.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/sockets.hpp"

namespace {

using namespace lps;
using service::Json;

void hard_assert(bool cond, const std::string& what) {
  if (!cond) {
    std::cerr << "\nE23 HARD FAILURE: " << what << "\n";
    std::exit(1);
  }
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/lps_bench_service_XXXXXX";
  hard_assert(::mkdtemp(tmpl) != nullptr, "mkdtemp failed");
  return tmpl;
}

std::string bench_blif() {
  return blif::write_string(bench::ripple_carry_adder(8));
}

// Shared response validator: the one invariant every phase leans on.
struct Ledger {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> structured{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> deadline_errors{0};
};

bool validate(const std::string& resp, Ledger& led) {
  led.requests.fetch_add(1, std::memory_order_relaxed);
  auto doc = service::json_parse(resp);
  if (!doc || !doc->is_object()) return false;
  const Json* okf = doc->find("ok");
  if (!okf || !okf->is_bool()) return false;
  if (okf->as_bool()) {
    led.ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    const Json* e = doc->find("error");
    const Json* c = e ? e->find("code") : nullptr;
    if (!c || !c->is_string()) return false;  // error without a code
    led.errors.fetch_add(1, std::memory_order_relaxed);
    if (c->as_string() == "deadline")
      led.deadline_errors.fetch_add(1, std::memory_order_relaxed);
  }
  led.structured.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string load_frame(const std::string& session, const std::string& blif,
                       std::size_t vectors) {
  Json req;
  req.set("verb", Json("load"));
  req.set("session", Json(session));
  req.set("blif", Json(blif));
  req.set("vectors", Json(vectors));
  return req.dump();
}

// ---------------------------------------------------------------------------
// Phase 1: multi-threaded chaos storm against in-process dispatch.

struct StormResult {
  double elapsed_s = 0;
  std::vector<double> estimate_ms;  // plain-estimate latencies
};

StormResult run_storm(service::Service& svc, Ledger& led, long soak_ms,
                      int threads) {
  std::atomic<bool> stop{false};
  std::mutex lat_mu;
  StormResult res;

  auto worker = [&](int tid) {
    std::mt19937 rng(0xE23u + static_cast<unsigned>(tid) * 7919u);
    std::vector<double> local_lat;
    const std::string sessions[] = {"s1", "s2", "s3", "s4"};
    const char* gate_names[] = {"n17", "n22", "n27", "n32"};
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string& ses = sessions[rng() % 4];
      unsigned cls = rng() % 100;
      if (cls < 40) {
        // Plain estimate, sometimes uncached (fresh seed) — timed.
        Json req;
        req.set("verb", Json("estimate"));
        req.set("session", Json(ses));
        if (rng() % 2) req.set("seed", Json(rng() % 16));
        auto t0 = std::chrono::steady_clock::now();
        std::string resp = svc.dispatch(req.dump());
        auto t1 = std::chrono::steady_clock::now();
        hard_assert(validate(resp, led), "unstructured estimate response");
        local_lat.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      } else if (cls < 52) {
        // Valid mutate: resize a named gate (journals a record).
        Json op;
        op.set("op", Json("set_size"));
        op.set("node", Json(std::string(gate_names[rng() % 4])));
        op.set("value", Json(0.5 + static_cast<double>(rng() % 16) * 0.5));
        service::JsonArray ops;
        ops.push_back(std::move(op));
        Json req;
        req.set("verb", Json("mutate"));
        req.set("session", Json(ses));
        req.set("ops", Json(std::move(ops)));
        hard_assert(validate(svc.dispatch(req.dump()), led),
                    "unstructured mutate response");
      } else if (cls < 60) {
        // Rejected edit scripts: must roll back, never wedge the session.
        static const char* bad[] = {
            R"({"verb":"mutate","session":"%s","ops":[{"op":"frobnicate"}]})",
            R"({"verb":"mutate","session":"%s","ops":[{"op":"remove","node":"a0"}]})",
            R"({"verb":"mutate","session":"%s","ops":[{"op":"set_size","node":"nope","value":2}]})",
            R"({"verb":"mutate","session":"%s","ops":[{"op":"add_gate","type":"mux","fanins":["a0"]}]})",
        };
        char buf[192];
        std::snprintf(buf, sizeof buf, bad[rng() % 4], ses.c_str());
        hard_assert(validate(svc.dispatch(buf), led),
                    "unstructured bad-mutate response");
      } else if (cls < 68) {
        // Garbage bytes.
        std::string frame(1 + rng() % 64, '\0');
        for (char& c : frame) c = static_cast<char>(rng() % 256);
        hard_assert(validate(svc.dispatch(frame), led),
                    "unstructured garbage response");
      } else if (cls < 76) {
        // Truncated valid frame.
        Json req;
        req.set("verb", Json("estimate"));
        req.set("session", Json(ses));
        std::string frame = req.dump();
        frame.resize(rng() % frame.size());
        hard_assert(validate(svc.dispatch(frame), led),
                    "unstructured truncated-frame response");
      } else if (cls < 81) {
        // Deadline storm: a slow timed estimate with a 1 ms budget — the
        // watchdog must cancel it at a poll point, never wedge the worker.
        Json req;
        req.set("verb", Json("estimate"));
        req.set("session", Json(ses));
        req.set("mode", Json("timed"));
        req.set("vectors", Json(100000));
        req.set("deadline_ms", Json(1));
        hard_assert(validate(svc.dispatch(req.dump()), led),
                    "unstructured deadline response");
      } else if (cls < 86) {
        // Injected engine failure: next tape patch throws, the mutate must
        // degrade (interpreter or analyzer drop), never fail the request
        // with anything unstructured.
        power::detail::force_tape_failures(1);
        Json op;
        op.set("op", Json("set_size"));
        op.set("node", Json(std::string(gate_names[rng() % 4])));
        op.set("value", Json(1.5));
        service::JsonArray ops;
        ops.push_back(std::move(op));
        Json req;
        req.set("verb", Json("mutate"));
        req.set("session", Json(ses));
        req.set("ops", Json(std::move(ops)));
        hard_assert(validate(svc.dispatch(req.dump()), led),
                    "unstructured tape-chaos mutate response");
      } else if (cls < 92) {
        hard_assert(validate(svc.dispatch(
                        R"({"verb":"rollback","session":")" + ses + "\"}"),
                    led),
                    "unstructured rollback response");
      } else if (cls < 96) {
        std::string frame = rng() % 2
                                ? std::string(R"({"verb":"stat"})")
                                : R"({"verb":"stat","session":")" + ses + "\"}";
        hard_assert(validate(svc.dispatch(frame), led),
                    "unstructured stat response");
      } else {
        static const char* junk[] = {
            R"({"verb":"warp","session":"s1"})",
            R"({"verb":"estimate"})",
            R"({"verb":"estimate","session":"../etc"})",
            R"({"verb":"ping","deadline_ms":-3})",
            R"({"verb":"ping"})",
        };
        hard_assert(validate(svc.dispatch(junk[rng() % 5]), led),
                    "unstructured junk response");
      }
    }
    std::lock_guard lk(lat_mu);
    res.estimate_ms.insert(res.estimate_ms.end(), local_lat.begin(),
                           local_lat.end());
  };

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  std::this_thread::sleep_for(std::chrono::milliseconds(soak_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();
  power::detail::force_tape_failures(0);  // disarm any unconsumed injection
  res.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

// ---------------------------------------------------------------------------
// Phase 2: deterministic degradation accounting.

bool degradation_accounted() {
  bool ok = true;

  // (a) Forced compiled-tape failures must each surface in the metrics
  // ledger as a tape->interpreter fallback, and the mutate must succeed.
  {
    service::Service svc;
    Ledger led;
    hard_assert(validate(svc.dispatch(load_frame("d", bench_blif(), 2048)),
                         led) && led.ok.load() == 1,
                "degradation phase: load failed");
    for (int i = 0; i < 5; ++i) {
      double before = core::metrics::value("power.inc.tape_fallback");
      power::detail::force_tape_failures(1);
      std::string resp = svc.dispatch(
          R"({"verb":"mutate","session":"d","ops":[{"op":"set_size","node":"n17","value":)" +
          std::to_string(1.0 + i) + "}]}");
      hard_assert(validate(resp, led), "degradation phase: mutate broke");
      double after = core::metrics::value("power.inc.tape_fallback");
      if (!(after >= before + 1.0)) {
        std::cout << "tape fallback " << i << " NOT accounted ("
                  << before << " -> " << after << ")\n";
        ok = false;
      }
    }
    power::detail::force_tape_failures(0);
  }

  // (b) Cache eviction under a 1-byte memory cap must be visible in stat
  // (cache dropped, estimates counted as degraded) and estimates must
  // still succeed.
  {
    service::ServiceOptions so;
    so.memory_cap_bytes = 1;
    service::Service svc(so);
    Ledger led;
    validate(svc.dispatch(load_frame("a", bench_blif(), 2048)), led);
    validate(svc.dispatch(load_frame("b", bench_blif(), 2048)), led);
    auto stat_a = service::json_parse(
        svc.dispatch(R"({"verb":"stat","session":"a"})"));
    hard_assert(stat_a.has_value(), "eviction stat unparsable");
    const Json* cb = stat_a->find("cache_bytes");
    if (!cb || cb->as_number(1) != 0) {
      std::cout << "eviction NOT visible in stat (cache_bytes)\n";
      ok = false;
    }
    std::string est = svc.dispatch(R"({"verb":"estimate","session":"a"})");
    hard_assert(validate(est, led), "post-eviction estimate broke");
    auto doc = service::json_parse(est);
    hard_assert(doc && doc->find("ok")->as_bool(),
                "post-eviction estimate failed");
    auto stat2 = service::json_parse(
        svc.dispatch(R"({"verb":"stat","session":"a"})"));
    const Json* deg = stat2 ? stat2->find("estimates_degraded") : nullptr;
    if (!deg || deg->as_number(0) < 1) {
      std::cout << "degraded estimate NOT counted in stat\n";
      ok = false;
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Phase 3: journal recovery after the storm.

bool recovery_identical(service::Service& live, const std::string& journal_dir,
                        int n_sessions) {
  // Snapshot the live hashes (the storm is over; sessions are quiescent).
  std::vector<std::string> live_hash;
  for (int i = 1; i <= n_sessions; ++i) {
    auto doc = service::json_parse(live.dispatch(
        R"({"verb":"stat","session":"s)" + std::to_string(i) + "\"}"));
    hard_assert(doc.has_value(), "live stat unparsable");
    const Json* h = doc->find("hash");
    hard_assert(h && h->is_string(), "live stat without hash");
    live_hash.push_back(h->as_string());
  }

  // A fresh daemon over the same journal dir must reproduce them exactly.
  service::ServiceOptions so;
  so.journal_dir = journal_dir;
  service::Service svc2(so);
  std::size_t recovered = svc2.recover_sessions();
  hard_assert(recovered == static_cast<std::size_t>(n_sessions),
              "recovery lost sessions");
  bool identical = true;
  for (int i = 1; i <= n_sessions; ++i) {
    auto doc = service::json_parse(svc2.dispatch(
        R"({"verb":"stat","session":"s)" + std::to_string(i) + "\"}"));
    const Json* h = doc ? doc->find("hash") : nullptr;
    bool same = h && h->is_string() &&
                h->as_string() == live_hash[static_cast<std::size_t>(i - 1)];
    if (!same) {
      std::cout << "recovery hash mismatch on s" << i << "\n";
      identical = false;
    }
  }

  // Torn tail: chop bytes off one journal (a kill mid-append) — recovery
  // must land on the last committed state, not fail, not crash.
  {
    std::string path = journal_dir + "/s1.journal";
    std::ifstream is(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    is.close();
    if (data.size() > 40) {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os.write(data.data(), static_cast<std::streamsize>(data.size() - 20));
    }
    service::ServiceOptions so3;
    so3.journal_dir = journal_dir;
    service::Service svc3(so3);
    hard_assert(svc3.recover_sessions() ==
                    static_cast<std::size_t>(n_sessions),
                "torn-journal recovery lost sessions");
    auto doc = service::json_parse(
        svc3.dispatch(R"({"verb":"estimate","session":"s1"})"));
    hard_assert(doc && doc->find("ok") && doc->find("ok")->as_bool(),
                "torn-recovered session cannot estimate");
  }
  return identical;
}

// ---------------------------------------------------------------------------
// Phase 4: protocol fuzz (the satellite corpus, 3000 mutated frames).

std::uint64_t run_fuzz(service::Service& svc, Ledger& led) {
  const std::string corpus[] = {
      load_frame("f1", bench_blif(), 256),
      R"({"verb":"ping","id":42})",
      R"({"verb":"estimate","session":"s1","seed":7,"deadline_ms":5000})",
      R"({"verb":"mutate","session":"s1","ops":[{"op":"set_size","node":"n17","value":2.0}]})",
      R"({"verb":"rollback","session":"s1"})",
      R"({"verb":"stat","session":"s1"})",
  };
  std::mt19937 rng(0xF00D);
  std::uint64_t crashes = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string s = corpus[rng() % std::size(corpus)];
    int rounds = 1 + static_cast<int>(rng() % 3);
    for (int r = 0; r < rounds && !s.empty(); ++r) {
      std::size_t pos = rng() % s.size();
      switch (rng() % 6) {
        case 0: s[pos] = static_cast<char>(rng() % 256); break;
        case 1: s.erase(pos, std::min<std::size_t>(s.size() - pos,
                                                   1 + rng() % 8)); break;
        case 2: s.insert(pos, std::string(1 + rng() % 4,
                                          static_cast<char>(rng() % 256)));
                break;
        case 3: s = s.substr(0, pos); break;
        case 4: std::swap(s[pos], s[rng() % s.size()]); break;
        case 5: s += s.substr(0, pos); break;
      }
    }
    if (!validate(svc.dispatch(s), led)) ++crashes;
  }
  return crashes;
}

// ---------------------------------------------------------------------------
// Phase 5: the same daemon behind a real AF_UNIX socket.

void run_socket_phase(service::Service& svc, Ledger& led,
                      const std::string& dir) {
  std::string path = dir + "/soak.sock";
  service::SocketServer server(svc, path);
  hard_assert(server.start().is_ok(), "socket server failed to start");
  std::thread serving([&] { server.serve(); });

  auto client_loop = [&](int tid) {
    service::SocketClient c;
    hard_assert(c.connect(path).is_ok(), "client connect failed");
    std::mt19937 rng(0x50CCu + static_cast<unsigned>(tid));
    for (int i = 0; i < 50; ++i) {
      const char* frames[] = {
          R"({"verb":"ping"})",
          R"({"verb":"estimate","session":"s1"})",
          R"({"verb":"stat"})",
          R"({"verb":"rollback","session":"s2"})",
      };
      auto resp = c.roundtrip(frames[rng() % 4]);
      hard_assert(resp.has_value(), "socket roundtrip lost a response");
      hard_assert(validate(*resp, led), "unstructured socket response");
    }
  };
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) clients.emplace_back(client_loop, t);
  for (auto& th : clients) th.join();

  {  // hostile client: binary garbage, then a truncated frame + disconnect
    service::SocketClient c;
    hard_assert(c.connect(path).is_ok(), "hostile connect failed");
    c.send_raw("\x01\xff\xfe garbage\n");
    auto r = c.read_line();
    hard_assert(r.has_value() && validate(*r, led),
                "garbage line not answered structurally");
    c.send_raw(R"({"verb":"estimate","ses)");
    c.close();
  }
  {  // clean shutdown through the protocol
    service::SocketClient c;
    hard_assert(c.connect(path).is_ok(), "shutdown connect failed");
    auto r = c.roundtrip(R"({"verb":"shutdown"})");
    hard_assert(r.has_value() && validate(*r, led), "shutdown not answered");
  }
  serving.join();
}

void report() {
  benchx::banner(
      "E23 bench_service",
      "Chaos soak of the lpsd session service: hostile frames, deadline "
      "storms, forced engine failures, cache eviction and journal "
      "recovery — zero crashes, every answer structured, every "
      "degradation accounted.");

  long soak_ms = core::env_long_or("LPS_SOAK_MS", 100, 3600000, 2000);
  int threads = 4;
  std::string dir = make_temp_dir();
  std::cout << "soak " << soak_ms << " ms, " << threads
            << " storm threads, journals in " << dir << "\n\n";

  service::ServiceOptions so;
  so.journal_dir = dir;
  so.memory_cap_bytes = 100 * 1024;  // ~2.5 sessions fit: eviction is live
  service::Service svc(so);
  Ledger led;

  const int kSessions = 4;
  for (int i = 1; i <= kSessions; ++i) {
    std::string resp = svc.dispatch(
        load_frame("s" + std::to_string(i), bench_blif(),
                   i % 2 ? 2048 : 4096));
    hard_assert(validate(resp, led), "session load unstructured");
    auto doc = service::json_parse(resp);
    hard_assert(doc->find("ok")->as_bool(), "session load failed");
  }

  StormResult storm = run_storm(svc, led, soak_ms, threads);
  std::uint64_t storm_requests = led.requests.load();
  hard_assert(storm_requests == led.structured.load(),
              "storm produced unstructured responses");
  hard_assert(led.deadline_errors.load() >= 1,
              "deadline storm never produced a deadline error");

  double p99 = 0.0;
  if (!storm.estimate_ms.empty()) {
    std::sort(storm.estimate_ms.begin(), storm.estimate_ms.end());
    p99 = storm.estimate_ms[storm.estimate_ms.size() * 99 / 100];
  }
  double rps = storm.elapsed_s > 0
                   ? static_cast<double>(storm_requests) / storm.elapsed_s
                   : 0.0;

  core::Table t({"phase", "requests", "ok", "structured errors", "notes"});
  t.row({"storm", std::to_string(storm_requests),
         std::to_string(led.ok.load()), std::to_string(led.errors.load()),
         core::Table::num(rps, 0) + " req/s, p99 est " +
             core::Table::num(p99, 2) + " ms"});

  bool degr = degradation_accounted();
  bool recov = recovery_identical(svc, dir, kSessions);

  std::uint64_t fuzz_before = led.requests.load();
  std::uint64_t fuzz_crashes = run_fuzz(svc, led);
  t.row({"fuzz", std::to_string(led.requests.load() - fuzz_before),
         "-", "-", fuzz_crashes ? "CRASHES" : "all structured"});

  std::uint64_t sock_before = led.requests.load();
  run_socket_phase(svc, led, dir);
  t.row({"socket", std::to_string(led.requests.load() - sock_before),
         "-", "-", "3 clients + hostile + shutdown"});
  t.print(std::cout);

  std::uint64_t total = led.requests.load();
  double structured_frac =
      total ? static_cast<double>(led.structured.load()) /
                  static_cast<double>(total)
            : 0.0;

  std::cout << "\ndegradation accounted: " << (degr ? "yes" : "NO")
            << ", journal recovery identical: " << (recov ? "yes" : "NO")
            << ", deadline errors: " << led.deadline_errors.load() << "\n";

  benchx::claim("E23.soak_requests", static_cast<double>(total));
  benchx::claim("E23.soak_crashes", 0.0);  // reaching here == survived
  benchx::claim("E23.errors_structured_frac", structured_frac);
  benchx::claim("E23.degradation_accounted", degr);
  benchx::claim("E23.journal_recovery_identical", recov);
  benchx::claim("E23.fuzz_crashes", static_cast<double>(fuzz_crashes));
  benchx::claim("E23.p99_estimate_ms", p99);
  benchx::claim("E23.requests_per_sec", rps);

  hard_assert(structured_frac == 1.0, "unstructured responses slipped by");
  hard_assert(degr, "a degradation went unaccounted");
  hard_assert(recov, "journal recovery diverged from the live state");
  hard_assert(fuzz_crashes == 0, "protocol fuzz broke the dispatcher");
}

// ---------------------------------------------------------------------------
// Dispatch-latency timings (the google-benchmark section).

service::Service& bm_service() {
  static service::Service* svc = [] {
    auto* s = new service::Service();
    s->dispatch(load_frame("bm", bench_blif(), 2048));
    return s;
  }();
  return *svc;
}

void BM_dispatch_ping(benchmark::State& state) {
  service::Service& svc = bm_service();
  for (auto _ : state) {
    std::string r = svc.dispatch(R"({"verb":"ping"})");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_dispatch_ping);

void BM_dispatch_estimate_cached(benchmark::State& state) {
  service::Service& svc = bm_service();
  svc.dispatch(R"({"verb":"estimate","session":"bm"})");  // warm the cache
  for (auto _ : state) {
    std::string r = svc.dispatch(R"({"verb":"estimate","session":"bm"})");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_dispatch_estimate_cached);

void BM_dispatch_reject_garbage(benchmark::State& state) {
  service::Service& svc = bm_service();
  for (auto _ : state) {
    std::string r = svc.dispatch("\x02{{{not json");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_dispatch_reject_garbage);

}  // namespace

LPS_BENCH_MAIN(report)
