// E5 — §III-A.2: "Spurious transitions account for between 10% and 40% of
// the switching activity power in typical combinational logic circuits
// [16]", and path balancing removes them at the cost of buffer capacitance
// [25].  Reproduced: glitch fraction across the suite + the balancing
// tradeoff sweep.

#include "bench_util.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "logicopt/path_balance.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"

namespace {

using namespace lps;

void report() {
  benchx::banner("E5 bench_glitch_balance",
                 "Claim (S-III-A.2): glitches are 10-40% of switching power; "
                 "balancing removes them but adds buffer capacitance.");
  {
    core::Table t({"circuit", "glitch % of switching"});
    for (const auto& [name, net] : bench::default_suite()) {
      power::AnalysisOptions ao;
      ao.n_vectors = 1024;
      auto a = power::analyze(net, ao);
      benchx::claim("E5.glitch." + name, a.glitch_fraction);
      t.row({name, core::Table::pct(a.glitch_fraction)});
    }
    std::cout << "Glitch fraction over the suite (paper range: 10-40% for "
                 "typical circuits; balanced trees ~0, multipliers high):\n";
    t.print(std::cout);
  }
  {
    std::cout << "\nPath balancing on the array multiplier (the [25] "
                 "design):\n";
    core::Table t({"variant", "buffers", "delay", "glitch %", "power uW",
                   "vs unbalanced"});
    auto base = bench::array_multiplier(6);
    power::AnalysisOptions ao;
    ao.n_vectors = 1024;
    auto a0 = power::analyze(base, ao);
    double p0 = a0.report.breakdown.total_w();
    t.row({"unbalanced", "0", std::to_string(base.critical_delay()),
           core::Table::pct(a0.glitch_fraction),
           core::Table::num(p0 * 1e6, 1), "--"});
    for (int budget : {25, 100, 400, -1}) {
      auto net = base.clone();
      auto r = budget < 0 ? logicopt::full_balance(net)
                          : logicopt::partial_balance(net, budget);
      auto a = power::analyze(net, ao);
      double p = a.report.breakdown.total_w();
      if (budget < 0) {
        benchx::claim("E5.full_balance_saving", 1.0 - p / p0);
        benchx::claim("E5.full_balance_glitch", a.glitch_fraction);
      }
      t.row({budget < 0 ? "full balance" : "budget " + std::to_string(budget),
             std::to_string(r.buffers_inserted),
             std::to_string(net.critical_delay()),
             core::Table::pct(a.glitch_fraction),
             core::Table::num(p * 1e6, 1),
             core::Table::pct(1.0 - p / p0)});
    }
    t.print(std::cout);
  }
  std::cout << '\n';
}

void bm_balance(benchmark::State& state) {
  auto base = bench::array_multiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto net = base.clone();
    auto r = logicopt::full_balance(net);
    benchmark::DoNotOptimize(r.buffers_inserted);
  }
}
BENCHMARK(bm_balance)->Arg(4)->Arg(6);

void bm_timed_sim(benchmark::State& state) {
  auto net = bench::array_multiplier(6);
  for (auto _ : state) {
    auto ts = sim::measure_timed_activity(net, 128, 3);
    benchmark::DoNotOptimize(ts.vectors);
  }
}
BENCHMARK(bm_timed_sim);

// The glitch counter sharded across the thread pool at a fixed thread count
// (the Arg); shard decomposition is workload-only, so the counts are
// bit-identical at /1, /2 and /4.
void bm_timed_sim_par(benchmark::State& state) {
  lps::core::ScopedThreads threads(static_cast<unsigned>(state.range(0)));
  auto net = bench::array_multiplier(6);
  for (auto _ : state) {
    auto ts = sim::measure_timed_activity(net, 1024, 3);
    benchmark::DoNotOptimize(ts.vectors);
  }
}
BENCHMARK(bm_timed_sim_par)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

LPS_BENCH_MAIN(report)
