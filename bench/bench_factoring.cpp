// E6 — §III-A.3: "When targeting power dissipation, the cost function is not
// literal count but switching activity.  Modified kernel extraction methods
// that target switching activity power are described in [35]."
// Reproduced: literal-count vs activity-weighted factoring on two-level
// functions with skewed input statistics, measured with the gate-level
// power model.

#include <random>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "logicopt/power_factor.hpp"
#include "power/activity.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

sop::Sop random_sop(unsigned nv, int cubes, std::uint32_t seed) {
  std::mt19937 rng(seed);
  sop::Sop f(nv);
  for (int c = 0; c < cubes; ++c) {
    sop::Cube cu(nv);
    for (unsigned v = 0; v < nv; ++v) {
      switch (rng() % 4) {
        case 0: cu.set_pos(v); break;
        case 1: cu.set_neg(v); break;
        default: break;
      }
    }
    if (!cu.contradictory() && cu.num_literals() > 0) f.add_cube(cu);
  }
  f.minimize_scc();
  return f;
}

double power_of(const Netlist& net, const std::vector<double>& probs) {
  power::AnalysisOptions ao;
  ao.n_vectors = 4096;
  ao.pi_one_prob = probs;
  return power::analyze(net, ao).report.breakdown.total_w();
}

void report() {
  benchx::banner("E6 bench_factoring",
                 "Claim (S-III-A.3): kernel extraction with a switching-"
                 "activity cost beats literal-count extraction on power "
                 "[35].");
  core::Table t({"function", "lits flat/lit/pow", "power flat uW",
                 "literal-factored", "power-factored", "pow vs lit"});
  std::mt19937 rng(2026);
  int wins = 0, total = 0;
  for (std::uint32_t seed : {11u, 23u, 37u, 41u, 59u, 67u}) {
    unsigned nv = 8;
    auto f = random_sop(nv, 10, seed);
    if (f.num_cubes() < 4) continue;
    // Skewed statistics: half the inputs hot (p=0.5), half quiet (p=0.95).
    std::vector<double> probs(nv);
    for (unsigned v = 0; v < nv; ++v) probs[v] = (v % 2) ? 0.95 : 0.5;
    auto cmp = logicopt::compare_factorings(f, probs);
    double pf = power_of(cmp.flat, probs);
    double pl = power_of(cmp.literal_form, probs);
    double pp = power_of(cmp.power_form, probs);
    bool equiv = sim::equivalent_random(cmp.flat, cmp.power_form, 256, seed);
    t.row({"rand" + std::to_string(seed) + (equiv ? "" : " (MISMATCH)"),
           std::to_string(cmp.lits_flat) + "/" +
               std::to_string(cmp.lits_literal) + "/" +
               std::to_string(cmp.lits_power),
           core::Table::num(pf * 1e6, 2), core::Table::num(pl * 1e6, 2),
           core::Table::num(pp * 1e6, 2), core::Table::pct(1.0 - pp / pl)});
    if (pp <= pl * 1.001) ++wins;
    ++total;
  }
  t.print(std::cout);
  std::cout << "activity-weighted no worse than literal on " << wins << "/"
            << total << " functions\n\n";
  benchx::claim("E6.wins_fraction",
                total > 0 ? static_cast<double>(wins) / total : 0.0);
  benchx::claim("E6.functions_tested", static_cast<double>(total));
}

void bm_factor(benchmark::State& state) {
  auto f = random_sop(10, 14, 7);
  for (auto _ : state) {
    auto e = sop::factor(f);
    benchmark::DoNotOptimize(e.num_literals());
  }
}
BENCHMARK(bm_factor);

void bm_kernels(benchmark::State& state) {
  auto f = random_sop(10, 14, 7);
  for (auto _ : state) {
    auto ks = sop::kernels(f);
    benchmark::DoNotOptimize(ks.size());
  }
}
BENCHMARK(bm_kernels);

}  // namespace

LPS_BENCH_MAIN(report)
