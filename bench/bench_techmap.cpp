// E7 — §III-B: graph-covering technology mapping extended to the power cost
// function ("Under the zero delay model, the optimal mapping of a tree can
// be determined in polynomial time") [20,43,48].  Reproduced: area/delay/
// power objectives on the suite, same DP, three cost functions.

#include "bench_util.hpp"
#include "core/report.hpp"
#include "logicopt/techmap.hpp"
#include "logicopt/decompose_power.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;
using logicopt::MapObjective;

void report() {
  benchx::banner("E7 bench_techmap",
                 "Claim (S-III-B): the DAGON tree-covering DP extends to a "
                 "power objective; each objective wins its own metric "
                 "[20,43,48].");
  auto lib = logicopt::standard_library();
  core::Table t({"circuit", "objective", "area", "arrival",
                 "switched cap fF/cyc", "cells"});
  std::vector<bench::NamedNetlist> suite;
  suite.push_back({"c17", bench::c17()});
  suite.push_back({"rca16", bench::ripple_carry_adder(16)});
  suite.push_back({"cmp16", bench::comparator_gt(16)});
  suite.push_back({"alu4", bench::alu(4)});
  suite.push_back({"mult4", bench::array_multiplier(4)});
  bool power_obj_min_cap = true;
  for (auto& [name, net] : suite) {
    double cap_area = 0, cap_delay = 0, cap_power = 0;
    for (auto obj : {MapObjective::Area, MapObjective::Delay,
                     MapObjective::Power}) {
      auto r = logicopt::tech_map(net, lib, obj);
      int cells = 0;
      for (auto& [c, k] : r.cell_histogram) cells += k;
      const char* objname = obj == MapObjective::Area    ? "area"
                            : obj == MapObjective::Delay ? "delay"
                                                         : "power";
      (obj == MapObjective::Area    ? cap_area
       : obj == MapObjective::Delay ? cap_delay
                                    : cap_power) = r.switched_cap_ff;
      t.row({name, objname, core::Table::num(r.total_area, 1),
             core::Table::num(r.arrival, 1),
             core::Table::num(r.switched_cap_ff, 1), std::to_string(cells)});
    }
    // The power objective must win (or tie) its own metric on every circuit.
    if (cap_power > cap_area * 1.0001 || cap_power > cap_delay * 1.0001)
      power_obj_min_cap = false;
  }
  t.print(std::cout);
  benchx::claim("E7.power_objective_min_cap", power_obj_min_cap);

  std::cout << "\nTechnology decomposition targeting low power [48]: wide "
               "gates decomposed before mapping, one hot input among quiet "
               "ones:\n";
  core::Table dt({"shape", "power uW", "vs chain"});
  auto build = [] {
    Netlist net("wide");
    std::vector<NodeId> ins;
    for (int i = 0; i < 12; ++i)
      ins.push_back(net.add_input("x" + std::to_string(i)));
    NodeId g1 = net.add_gate(
        GateType::And, {ins[0], ins[1], ins[2], ins[3], ins[4], ins[5]});
    NodeId g2 = net.add_gate(
        GateType::Or, {ins[6], ins[7], ins[8], ins[9], ins[10], ins[11]});
    net.add_output(net.add_and(g1, g2), "y");
    return net;
  };
  std::vector<double> probs(12, 0.95);
  probs[0] = 0.5;
  probs[6] = 0.5;
  power::AnalysisOptions ao;
  ao.n_vectors = 4096;
  ao.pi_one_prob = probs;
  double p_chain = 0;
  for (auto [name, shape] :
       {std::pair{"chain", logicopt::DecomposeShape::Chain},
        {"balanced", logicopt::DecomposeShape::Balanced},
        {"huffman (activity)", logicopt::DecomposeShape::Huffman}}) {
    auto net = build();
    auto st = sim::measure_activity(net, 256, 3, probs);
    logicopt::decompose_wide_gates(net, shape, st.transition_prob);
    double p = power::analyze(net, ao).report.breakdown.total_w();
    if (p_chain == 0) p_chain = p;
    if (shape == logicopt::DecomposeShape::Huffman)
      benchx::claim("E7.huffman_saving_vs_chain", 1.0 - p / p_chain);
    dt.row({name, core::Table::num(p * 1e6, 2),
            core::Table::pct(1.0 - p / p_chain)});
  }
  dt.print(std::cout);
  std::cout << '\n';
}

void bm_map(benchmark::State& state) {
  auto lib = logicopt::standard_library();
  auto net = bench::ripple_carry_adder(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = logicopt::tech_map(net, lib, MapObjective::Power);
    benchmark::DoNotOptimize(r.total_area);
  }
}
BENCHMARK(bm_map)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

LPS_BENCH_MAIN(report)
