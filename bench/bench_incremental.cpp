// E21 — incremental cone-scoped power re-estimation.  The synthesis loops
// of §III re-estimate power after every local rewrite; re-running the full
// Monte Carlo per candidate move makes activity-driven synthesis scale as
// O(netlist x vectors) per stage.  IncrementalAnalyzer re-simulates only
// the touched fanout cone over the cached frame stream and splices exact
// integer counters, so the estimate is bit-identical to a fresh full
// power::analyze while evaluating a fraction of the nodes.  This bench
// pins the equality across the generated suite (the CI equality gate) and
// reports the node-evaluation reduction and wall-clock speedup.

#include <algorithm>

#include "bench_util.hpp"
#include "core/flows.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/incremental.hpp"
#include "seq/stg.hpp"

namespace {

using namespace lps;

power::AnalysisOptions zd_options() {
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = 2048;
  return ao;
}

// The scripted local rewrite: a double inverter spliced into one primary
// output's driver — function-preserving, touches a thin output-side cone.
Netlist::TouchedNodes mutate_po_driver(Netlist& net) {
  net.begin_undo();
  NodeId o = net.outputs()[0];
  if (!net.node(o).fanins.empty())
    net.replace_fanin(o, 0, net.add_not(net.add_not(net.node(o).fanins[0])));
  else
    net.add_output(net.add_not(o), "extra");
  auto touched = net.touched_nodes();
  net.commit_undo();
  return touched;
}

bool stages_identical(const core::FlowResult& a, const core::FlowResult& b) {
  if (a.stages.size() != b.stages.size()) return false;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    if (a.stages[i].power_w != b.stages[i].power_w ||
        a.stages[i].status != b.stages[i].status)
      return false;
  }
  return true;
}

void report() {
  benchx::banner(
      "E21 bench_incremental",
      "Incremental cone-scoped re-estimation: bit-identical to full "
      "re-analysis while re-simulating only the touched fanout cone "
      "(the Simopt-style metadata-reuse lever for synthesis loops).");

  // ---- per-circuit mutation differential --------------------------------
  core::Table t({"circuit", "live nodes", "cone nodes", "evals saved",
                 "identical", "vectors"});
  bool identical_all = true;
  double reduction_max = 0.0;
  std::size_t vectors_used = 0;
  auto ao = zd_options();
  for (auto& [name, net0] : bench::default_suite()) {
    Netlist net = std::move(net0);
    power::IncrementalAnalyzer inc(net, ao);
    auto touched = mutate_po_driver(net);
    inc.reanalyze(touched);
    auto full = power::analyze(net, ao);
    bool same =
        inc.analysis().report.breakdown.total_w() ==
            full.report.breakdown.total_w() &&
        inc.analysis().report.weighted_activity == full.report.weighted_activity &&
        inc.analysis().toggles_per_cycle == full.toggles_per_cycle;
    identical_all = identical_all && same;
    const auto& up = inc.last_update();
    double reduction = up.resim_nodes > 0
                           ? static_cast<double>(up.live_nodes) /
                                 static_cast<double>(up.resim_nodes)
                           : static_cast<double>(up.live_nodes);
    reduction_max = std::max(reduction_max, reduction);
    vectors_used = full.vectors_used;
    t.row({name, std::to_string(up.live_nodes),
           std::to_string(up.resim_nodes),
           core::Table::num(reduction, 1) + "x", same ? "yes" : "NO",
           std::to_string(full.vectors_used)});
  }
  t.print(std::cout);

  // ---- flow equality gate: all three flows, both estimate paths ---------
  bool flow_comb = true, flow_seq = true;
  for (const auto& [name, net] : bench::default_suite()) {
    if (net.num_gates() > 300) continue;  // keep the sweep quick
    core::FlowOptions io;
    io.sim_vectors = 512;
    io.estimate_mode = power::ActivityMode::ZeroDelay;
    core::FlowOptions fo = io;
    fo.use_incremental_power = false;
    flow_comb = flow_comb && stages_identical(core::optimize_combinational(net, io),
                                              core::optimize_combinational(net, fo));
  }
  {
    core::FlowOptions io;
    io.sim_vectors = 512;
    io.estimate_mode = power::ActivityMode::ZeroDelay;
    core::FlowOptions fo = io;
    fo.use_incremental_power = false;
    for (auto* mk : {+[] { return bench::counter(8); },
                     +[] { return bench::shift_register(16); }}) {
      Netlist net = mk();
      flow_seq = flow_seq && stages_identical(core::optimize_sequential(net, io),
                                              core::optimize_sequential(net, fo));
    }
  }
  bool flow_fsm = true;
  {
    core::FlowOptions io;
    io.sim_vectors = 256;
    io.estimate_mode = power::ActivityMode::ZeroDelay;
    core::FlowOptions fo = io;
    fo.use_incremental_power = false;
    auto stg = seq::counter_fsm(8);
    auto a = core::optimize_fsm(stg, io);
    auto b = core::optimize_fsm(stg, fo);
    flow_fsm = a.power_lowpower_w == b.power_lowpower_w &&
               a.power_gated_w == b.power_gated_w;
  }

  std::cout << "\nflow equality (incremental vs full estimates): comb "
            << (flow_comb ? "identical" : "DIFFERS") << ", seq "
            << (flow_seq ? "identical" : "DIFFERS") << ", fsm "
            << (flow_fsm ? "identical" : "DIFFERS") << "\n";

  benchx::claim("E21.identical_all", identical_all);
  benchx::claim("E21.flow_identical_comb", flow_comb);
  benchx::claim("E21.flow_identical_seq", flow_seq);
  benchx::claim("E21.flow_identical_fsm", flow_fsm);
  benchx::claim("E21.eval_reduction_max", reduction_max);
  benchx::claim("E21.vectors_used", static_cast<double>(vectors_used));
  std::cout << '\n';
}

// ---- timings: full re-analysis vs incremental update, paired -------------
// Names pair as <base>_full / <base>_inc; aggregate_bench.py derives the
// incremental-vs-full speedup column from the pairs.

template <typename Make>
void bm_full(benchmark::State& state, Make make) {
  Netlist net = make();
  auto ao = zd_options();
  mutate_po_driver(net);
  for (auto _ : state) {
    auto a = power::analyze(net, ao);
    benchmark::DoNotOptimize(a.report.breakdown.switching_w);
  }
}

template <typename Make>
void bm_inc(benchmark::State& state, Make make) {
  Netlist net = make();
  auto ao = zd_options();
  power::IncrementalAnalyzer inc(net, ao);
  auto touched = mutate_po_driver(net);
  for (auto _ : state) {
    // Idempotent: the cone re-evaluates to the same words every iteration.
    const auto& a = inc.reanalyze(touched);
    benchmark::DoNotOptimize(a.report.breakdown.switching_w);
  }
}

void bm_reestimate_mult8_full(benchmark::State& s) {
  bm_full(s, [] { return bench::array_multiplier(8); });
}
void bm_reestimate_mult8_inc(benchmark::State& s) {
  bm_inc(s, [] { return bench::array_multiplier(8); });
}
void bm_reestimate_dag_full(benchmark::State& s) {
  bm_full(s, [] { return bench::random_dag(16, 400, 11); });
}
void bm_reestimate_dag_inc(benchmark::State& s) {
  bm_inc(s, [] { return bench::random_dag(16, 400, 11); });
}
void bm_reestimate_counter_full(benchmark::State& s) {
  bm_full(s, [] { return bench::counter(16); });
}
void bm_reestimate_counter_inc(benchmark::State& s) {
  bm_inc(s, [] { return bench::counter(16); });
}
BENCHMARK(bm_reestimate_mult8_full);
BENCHMARK(bm_reestimate_mult8_inc);
BENCHMARK(bm_reestimate_dag_full);
BENCHMARK(bm_reestimate_dag_inc);
BENCHMARK(bm_reestimate_counter_full);
BENCHMARK(bm_reestimate_counter_inc);

}  // namespace

LPS_BENCH_MAIN(report)
