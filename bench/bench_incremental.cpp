// E21 — incremental cone-scoped power re-estimation.  The synthesis loops
// of §III re-estimate power after every local rewrite; re-running the full
// Monte Carlo per candidate move makes activity-driven synthesis scale as
// O(netlist x vectors) per stage.  IncrementalAnalyzer re-simulates only
// the touched fanout cone over the cached frame stream and splices exact
// integer counters, so the estimate is bit-identical to a fresh full
// power::analyze while evaluating a fraction of the nodes.  This bench
// pins the equality across the generated suite (the CI equality gate) and
// reports the node-evaluation reduction and wall-clock speedup.

#include <algorithm>

#include "bench_util.hpp"
#include "core/flows.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/incremental.hpp"
#include "seq/stg.hpp"
#include "sim/compiled.hpp"

namespace {

using namespace lps;

power::AnalysisOptions zd_options() {
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = 2048;
  return ao;
}

// The scripted local rewrite: a double inverter spliced into one primary
// output's driver — function-preserving, touches a thin output-side cone.
Netlist::TouchedNodes mutate_po_driver(Netlist& net) {
  net.begin_undo();
  NodeId o = net.outputs()[0];
  if (!net.node(o).fanins.empty())
    net.replace_fanin(o, 0, net.add_not(net.add_not(net.node(o).fanins[0])));
  else
    net.add_output(net.add_not(o), "extra");
  auto touched = net.touched_nodes();
  net.commit_undo();
  return touched;
}

bool stages_identical(const core::FlowResult& a, const core::FlowResult& b) {
  if (a.stages.size() != b.stages.size()) return false;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    if (a.stages[i].power_w != b.stages[i].power_w ||
        a.stages[i].status != b.stages[i].status)
      return false;
  }
  return true;
}

void report() {
  benchx::banner(
      "E21 bench_incremental",
      "Incremental cone-scoped re-estimation: bit-identical to full "
      "re-analysis while re-simulating only the touched fanout cone "
      "(the Simopt-style metadata-reuse lever for synthesis loops).");

  // ---- per-circuit mutation differential --------------------------------
  core::Table t({"circuit", "live nodes", "cone nodes", "evals saved",
                 "identical", "vectors"});
  bool identical_all = true;
  double reduction_max = 0.0;
  std::size_t vectors_used = 0;
  auto ao = zd_options();
  for (auto& [name, net0] : bench::default_suite()) {
    Netlist net = std::move(net0);
    power::IncrementalAnalyzer inc(net, ao);
    auto touched = mutate_po_driver(net);
    inc.reanalyze(touched);
    auto full = power::analyze(net, ao);
    bool same =
        inc.analysis().report.breakdown.total_w() ==
            full.report.breakdown.total_w() &&
        inc.analysis().report.weighted_activity == full.report.weighted_activity &&
        inc.analysis().toggles_per_cycle == full.toggles_per_cycle;
    identical_all = identical_all && same;
    const auto& up = inc.last_update();
    double reduction = up.resim_nodes > 0
                           ? static_cast<double>(up.live_nodes) /
                                 static_cast<double>(up.resim_nodes)
                           : static_cast<double>(up.live_nodes);
    reduction_max = std::max(reduction_max, reduction);
    vectors_used = full.vectors_used;
    t.row({name, std::to_string(up.live_nodes),
           std::to_string(up.resim_nodes),
           core::Table::num(reduction, 1) + "x", same ? "yes" : "NO",
           std::to_string(full.vectors_used)});
  }
  t.print(std::cout);

  // ---- flow equality gate: all three flows, both estimate paths ---------
  bool flow_comb = true, flow_seq = true;
  for (const auto& [name, net] : bench::default_suite()) {
    if (net.num_gates() > 300) continue;  // keep the sweep quick
    core::FlowOptions io;
    io.sim_vectors = 512;
    io.estimate_mode = power::ActivityMode::ZeroDelay;
    core::FlowOptions fo = io;
    fo.use_incremental_power = false;
    flow_comb = flow_comb && stages_identical(core::optimize_combinational(net, io),
                                              core::optimize_combinational(net, fo));
  }
  {
    core::FlowOptions io;
    io.sim_vectors = 512;
    io.estimate_mode = power::ActivityMode::ZeroDelay;
    core::FlowOptions fo = io;
    fo.use_incremental_power = false;
    for (auto* mk : {+[] { return bench::counter(8); },
                     +[] { return bench::shift_register(16); }}) {
      Netlist net = mk();
      flow_seq = flow_seq && stages_identical(core::optimize_sequential(net, io),
                                              core::optimize_sequential(net, fo));
    }
  }
  bool flow_fsm = true;
  {
    core::FlowOptions io;
    io.sim_vectors = 256;
    io.estimate_mode = power::ActivityMode::ZeroDelay;
    core::FlowOptions fo = io;
    fo.use_incremental_power = false;
    auto stg = seq::counter_fsm(8);
    auto a = core::optimize_fsm(stg, io);
    auto b = core::optimize_fsm(stg, fo);
    flow_fsm = a.power_lowpower_w == b.power_lowpower_w &&
               a.power_gated_w == b.power_gated_w;
  }

  std::cout << "\nflow equality (incremental vs full estimates): comb "
            << (flow_comb ? "identical" : "DIFFERS") << ", seq "
            << (flow_seq ? "identical" : "DIFFERS") << ", fsm "
            << (flow_fsm ? "identical" : "DIFFERS") << "\n";

  benchx::claim("E21.identical_all", identical_all);
  benchx::claim("E21.flow_identical_comb", flow_comb);
  benchx::claim("E21.flow_identical_seq", flow_seq);
  benchx::claim("E21.flow_identical_fsm", flow_fsm);
  benchx::claim("E21.eval_reduction_max", reduction_max);
  benchx::claim("E21.vectors_used", static_cast<double>(vectors_used));

  // ---- E22: the compiled tape must be invisible to results ---------------
  // Incremental re-estimation and the full synthesis flow, run once per
  // engine: same cone counters, same stage-by-stage power trajectory.
  sim::SimOptions comp_opts = sim::sim_options();
  comp_opts.use_compiled = true;
  sim::SimOptions interp_opts = comp_opts;
  interp_opts.use_compiled = false;

  bool inc_identical = true;
  for (auto& [name, net0] : bench::default_suite()) {
    Netlist net = std::move(net0);
    power::Analysis a, b;
    {
      sim::ScopedSimOptions s(comp_opts);
      Netlist n = net;
      power::IncrementalAnalyzer inc(n, ao);
      auto touched = mutate_po_driver(n);
      a = inc.reanalyze(touched);
    }
    {
      sim::ScopedSimOptions s(interp_opts);
      Netlist n = net;
      power::IncrementalAnalyzer inc(n, ao);
      auto touched = mutate_po_driver(n);
      b = inc.reanalyze(touched);
    }
    bool same = a.report.breakdown.total_w() == b.report.breakdown.total_w() &&
                a.report.weighted_activity == b.report.weighted_activity &&
                a.toggles_per_cycle == b.toggles_per_cycle;
    inc_identical = inc_identical && same;
    if (!same) std::cout << "E22 incremental MISMATCH on " << name << "\n";
  }

  bool flow_compiled = true;
  for (const auto& [name, net] : bench::default_suite()) {
    if (net.num_gates() > 300) continue;
    core::FlowOptions fo;
    fo.sim_vectors = 512;
    fo.estimate_mode = power::ActivityMode::ZeroDelay;
    core::FlowResult rc, ri;
    {
      sim::ScopedSimOptions s(comp_opts);
      rc = core::optimize_combinational(net, fo);
    }
    {
      sim::ScopedSimOptions s(interp_opts);
      ri = core::optimize_combinational(net, fo);
    }
    flow_compiled = flow_compiled && stages_identical(rc, ri);
  }
  std::cout << "compiled-engine equality: incremental "
            << (inc_identical ? "identical" : "DIFFERS") << ", flow "
            << (flow_compiled ? "identical" : "DIFFERS") << "\n";
  benchx::claim("E22.inc_identical_compiled", inc_identical);
  benchx::claim("E22.flow_identical_compiled", flow_compiled);
  std::cout << '\n';
}

// ---- timings: full re-analysis vs incremental update, paired -------------
// Names pair as <base>_full / <base>_inc; aggregate_bench.py derives the
// incremental-vs-full speedup column from the pairs.

template <typename Make>
void bm_full(benchmark::State& state, Make make) {
  Netlist net = make();
  auto ao = zd_options();
  mutate_po_driver(net);
  for (auto _ : state) {
    auto a = power::analyze(net, ao);
    benchmark::DoNotOptimize(a.report.breakdown.switching_w);
  }
}

template <typename Make>
void bm_inc(benchmark::State& state, Make make) {
  Netlist net = make();
  auto ao = zd_options();
  power::IncrementalAnalyzer inc(net, ao);
  auto touched = mutate_po_driver(net);
  for (auto _ : state) {
    // Idempotent: the cone re-evaluates to the same words every iteration.
    const auto& a = inc.reanalyze(touched);
    benchmark::DoNotOptimize(a.report.breakdown.switching_w);
  }
}

void bm_reestimate_mult8_full(benchmark::State& s) {
  bm_full(s, [] { return bench::array_multiplier(8); });
}
void bm_reestimate_mult8_inc(benchmark::State& s) {
  bm_inc(s, [] { return bench::array_multiplier(8); });
}
void bm_reestimate_dag_full(benchmark::State& s) {
  bm_full(s, [] { return bench::random_dag(16, 400, 11); });
}
void bm_reestimate_dag_inc(benchmark::State& s) {
  bm_inc(s, [] { return bench::random_dag(16, 400, 11); });
}
void bm_reestimate_counter_full(benchmark::State& s) {
  bm_full(s, [] { return bench::counter(16); });
}
void bm_reestimate_counter_inc(benchmark::State& s) {
  bm_inc(s, [] { return bench::counter(16); });
}
BENCHMARK(bm_reestimate_mult8_full);
BENCHMARK(bm_reestimate_mult8_inc);
BENCHMARK(bm_reestimate_dag_full);
BENCHMARK(bm_reestimate_dag_inc);
BENCHMARK(bm_reestimate_counter_full);
BENCHMARK(bm_reestimate_counter_inc);

// Engine-paired incremental updates: <base>_interp / <base>_comp feed the
// compiled-vs-interpreted speedup column in aggregate_bench.py.  The
// interpreter path rebuilds a LogicSim per update (O(netlist)); the
// compiled path patches the cached tape from the undo journal (O(edit),
// with amortized rebuilds at the garbage bound).
template <typename Make>
void bm_inc_engine(benchmark::State& state, Make make, bool compiled) {
  sim::SimOptions o = sim::sim_options();
  o.use_compiled = compiled;
  sim::ScopedSimOptions scope(o);
  Netlist net = make();
  auto ao = zd_options();
  power::IncrementalAnalyzer inc(net, ao);
  auto touched = mutate_po_driver(net);
  for (auto _ : state) {
    const auto& a = inc.reanalyze(touched);
    benchmark::DoNotOptimize(a.report.breakdown.switching_w);
  }
}

void bm_reestimate_mult8_interp(benchmark::State& s) {
  bm_inc_engine(s, [] { return bench::array_multiplier(8); }, false);
}
void bm_reestimate_mult8_comp(benchmark::State& s) {
  bm_inc_engine(s, [] { return bench::array_multiplier(8); }, true);
}
void bm_reestimate_dag_interp(benchmark::State& s) {
  bm_inc_engine(s, [] { return bench::random_dag(16, 400, 11); }, false);
}
void bm_reestimate_dag_comp(benchmark::State& s) {
  bm_inc_engine(s, [] { return bench::random_dag(16, 400, 11); }, true);
}
BENCHMARK(bm_reestimate_mult8_interp);
BENCHMARK(bm_reestimate_mult8_comp);
BENCHMARK(bm_reestimate_dag_interp);
BENCHMARK(bm_reestimate_dag_comp);

// Width-paired incremental updates: <base>_wide_scalar / <base>_wide_<isa>
// feed the SIMD speedup column in aggregate_bench.py.  The blocked cone
// driver gathers boundary words, replays the cone under the selected
// kernels and scatters the gate columns back; the lane width must change
// only the wall clock.  Unsupported widths are skipped with an error so
// the JSON omits them.
template <typename Make>
void bm_inc_width(benchmark::State& state, Make make, sim::SimdWidth w) {
  if (sim::resolve_simd(w) != w) {
    state.SkipWithError("lane width unsupported on this host");
    return;
  }
  sim::SimOptions o = sim::sim_options();
  o.use_compiled = true;
  o.width = w;
  sim::ScopedSimOptions scope(o);
  Netlist net = make();
  auto ao = zd_options();
  power::IncrementalAnalyzer inc(net, ao);
  auto touched = mutate_po_driver(net);
  for (auto _ : state) {
    const auto& a = inc.reanalyze(touched);
    benchmark::DoNotOptimize(a.report.breakdown.switching_w);
  }
}

void bm_reestimate_mult8_wide_scalar(benchmark::State& s) {
  bm_inc_width(s, [] { return bench::array_multiplier(8); },
               sim::SimdWidth::Scalar);
}
void bm_reestimate_mult8_wide_avx2(benchmark::State& s) {
  bm_inc_width(s, [] { return bench::array_multiplier(8); },
               sim::SimdWidth::Avx2);
}
void bm_reestimate_mult8_wide_avx512(benchmark::State& s) {
  bm_inc_width(s, [] { return bench::array_multiplier(8); },
               sim::SimdWidth::Avx512);
}
void bm_reestimate_dag_wide_scalar(benchmark::State& s) {
  bm_inc_width(s, [] { return bench::random_dag(16, 400, 11); },
               sim::SimdWidth::Scalar);
}
void bm_reestimate_dag_wide_avx2(benchmark::State& s) {
  bm_inc_width(s, [] { return bench::random_dag(16, 400, 11); },
               sim::SimdWidth::Avx2);
}
void bm_reestimate_dag_wide_avx512(benchmark::State& s) {
  bm_inc_width(s, [] { return bench::random_dag(16, 400, 11); },
               sim::SimdWidth::Avx512);
}
BENCHMARK(bm_reestimate_mult8_wide_scalar);
BENCHMARK(bm_reestimate_mult8_wide_avx2);
BENCHMARK(bm_reestimate_mult8_wide_avx512);
BENCHMARK(bm_reestimate_dag_wide_scalar);
BENCHMARK(bm_reestimate_dag_wide_avx2);
BENCHMARK(bm_reestimate_dag_wide_avx512);

}  // namespace

LPS_BENCH_MAIN(report)
