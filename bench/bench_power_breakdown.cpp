// E1 — §I: "In VLSI circuits that use well-designed logic-gates, switching
// activity power accounts for over 90% of the total power dissipation [8]."
// Reproduced: Eqn. (1) breakdown over the benchmark suite.

#include <algorithm>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "seq/encoding.hpp"
#include "seq/stg.hpp"

namespace {

using namespace lps;

void report() {
  benchx::banner("E1 bench_power_breakdown",
                 "Claim (S-I): switching activity is >90% of total power in "
                 "well-designed CMOS.");
  core::Table t({"circuit", "switching uW", "short-circuit uW", "leakage uW",
                 "switching %"});
  double min_frac = 1.0;
  for (const auto& [name, net] : bench::default_suite()) {
    power::AnalysisOptions ao;
    ao.n_vectors = 2048;
    auto a = power::analyze(net, ao);
    const auto& b = a.report.breakdown;
    min_frac = std::min(min_frac, b.switching_fraction());
    t.row({name, core::Table::num(b.switching_w * 1e6, 2),
           core::Table::num(b.short_circuit_w * 1e6, 2),
           core::Table::num(b.leakage_w * 1e6, 3),
           core::Table::pct(b.switching_fraction())});
  }
  t.print(std::cout);
  benchx::claim("E1.switching_fraction_min", min_frac);

  std::cout << "\nSequence-dependent power [28] (same circuit, different "
               "input programs — power estimation under user-specified "
               "sequences):\n";
  core::Table st({"circuit", "stimulus", "power uW"});
  auto counter = bench::counter(8);
  {
    power::AnalysisOptions ao;
    ao.n_vectors = 1024;
    st.row({"counter8", "random enable",
            core::Table::num(
                power::analyze(counter, ao).report.breakdown.total_w() * 1e6,
                2)});
  }
  double duty_power[2] = {0.0, 0.0};  // [0]=1/16 duty, [1]=every cycle
  int duty_idx = 0;
  for (auto [name, duty] : {std::pair{"enable 1/16 cycles", 16},
                            {"enable every cycle", 1}}) {
    std::vector<std::vector<bool>> seq(1024, std::vector<bool>{false});
    for (std::size_t c = 0; c < seq.size(); c += duty) seq[c][0] = true;
    double p = power::analyze_sequence(counter, seq).report.breakdown.total_w();
    duty_power[duty_idx++] = p;
    st.row({"counter8", name, core::Table::num(p * 1e6, 2)});
  }
  st.print(std::cout);
  benchx::claim("E1.seq_power_ratio_rare_vs_busy",
                duty_power[1] > 0 ? duty_power[0] / duty_power[1] : 0.0);
  std::cout << '\n';
}

void bm_analyze(benchmark::State& state) {
  auto net = bench::array_multiplier(static_cast<int>(state.range(0)));
  power::AnalysisOptions ao;
  ao.n_vectors = 256;
  for (auto _ : state) {
    auto a = power::analyze(net, ao);
    benchmark::DoNotOptimize(a.report.breakdown.switching_w);
  }
}
BENCHMARK(bm_analyze)->Arg(4)->Arg(8);

}  // namespace

LPS_BENCH_MAIN(report)
