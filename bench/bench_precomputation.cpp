// E12 — Figure 1: precomputation applied to the n-bit comparator
// (LE = C<n-1> XNOR D<n-1>) [1,30], plus guarded evaluation [44] and FSM
// self-loop gating [4].  This is the paper's only figure; the width sweep
// and the input-distribution sweep regenerate it quantitatively.

#include "bench_util.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "seq/clock_gating.hpp"
#include "seq/encoding.hpp"
#include "seq/guarded_eval.hpp"
#include "seq/precompute.hpp"
#include "seq/seq_circuit.hpp"
#include "seq/stg.hpp"

namespace {

using namespace lps;
using namespace lps::seq;

void report() {
  benchx::banner("E12 bench_precomputation",
                 "Figure 1: comparator precomputation disables the low-order "
                 "input registers half the time [1]; plus guarded evaluation "
                 "[44] and FSM self-loop gating [4].");
  {
    std::cout << "Width sweep (uniform inputs; subset auto-selected = the "
                 "two MSBs, LE = XNOR):\n";
    core::Table t({"n", "hit prob", "overhead gates", "baseline uW",
                   "precomp uW", "saving"});
    for (int n : {4, 8, 12, 16, 24}) {
      auto comb = bench::comparator_gt(n);
      auto sel = select_precompute_inputs(comb, 2);
      auto pre = apply_precomputation(comb, sel.subset);
      auto base = registered_baseline(comb);
      power::AnalysisOptions ao;
      ao.n_vectors = 2048;
      double pb = power::analyze(base, ao).report.breakdown.total_w();
      double pp = power::analyze(pre.circuit, ao).report.breakdown.total_w();
      if (n == 4 || n == 24)
        benchx::claim("E12.saving_n" + std::to_string(n), 1.0 - pp / pb);
      if (n == 16) benchx::claim("E12.hit_prob_k2", sel.hit_probability);
      t.row({std::to_string(n), core::Table::pct(sel.hit_probability),
             std::to_string(pre.precompute_gates),
             core::Table::num(pb * 1e6, 1), core::Table::num(pp * 1e6, 1),
             core::Table::pct(1.0 - pp / pb)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nSubset size sweep (n=12): more precompute inputs, higher "
                 "hit rate, more overhead [30]:\n";
    core::Table t({"subset k", "hit prob", "overhead gates", "saving"});
    auto comb = bench::comparator_gt(12);
    auto base = registered_baseline(comb);
    power::AnalysisOptions ao;
    ao.n_vectors = 2048;
    double pb = power::analyze(base, ao).report.breakdown.total_w();
    for (int k : {2, 4, 6}) {
      auto sel = select_precompute_inputs(comb, k, 4000);
      auto pre = apply_precomputation(comb, sel.subset);
      double pp = power::analyze(pre.circuit, ao).report.breakdown.total_w();
      t.row({std::to_string(k), core::Table::pct(sel.hit_probability),
             std::to_string(pre.precompute_gates),
             core::Table::pct(1.0 - pp / pb)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nGuarded evaluation [44] (mux-selected ALU arms, select "
                 "duty sweep):\n";
    core::Table t({"P(select=1)", "unguarded uW", "guarded uW", "saving"});
    // Build: two 6-input cones into a mux; select registered from a PI.
    auto build = [] {
      Netlist comb("ge");
      std::vector<NodeId> xs;
      for (int i = 0; i < 12; ++i)
        xs.push_back(comb.add_input("x" + std::to_string(i)));
      NodeId sel = comb.add_input("sel");
      NodeId armA = comb.add_gate(
          GateType::And, {xs[0], xs[1], xs[2], xs[3], xs[4], xs[5]});
      NodeId armB = comb.add_gate(
          GateType::Xor, {xs[6], xs[7], xs[8], xs[9], xs[10], xs[11]});
      comb.add_output(comb.add_mux(sel, armA, armB), "y");
      return registered(comb);
    };
    for (double duty : {0.5, 0.9, 0.1}) {
      auto plain = build();
      auto guarded = build();
      guard_mux_arms(guarded);
      power::AnalysisOptions ao;
      ao.n_vectors = 2048;
      ao.pi_one_prob.assign(plain.inputs().size(), 0.5);
      ao.pi_one_prob.back() = duty;  // select input
      double p0 = power::analyze(plain, ao).report.breakdown.total_w();
      double p1 = power::analyze(guarded, ao).report.breakdown.total_w();
      benchx::claim("E12.guarded_saving_d" + core::Table::num(duty, 1),
                    1.0 - p1 / p0);
      t.row({core::Table::num(duty, 1), core::Table::num(p0 * 1e6, 2),
             core::Table::num(p1 * 1e6, 2), core::Table::pct(1.0 - p1 / p0)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nFSM self-loop gating [4] (polling FSMs wait in a state "
                 "until their event fires — the self-loop-rich structure "
                 "the transformation targets):\n";
    core::Table t({"fsm", "state bits", "detector gates (XOR/STG)",
                   "clock saving", "total power plain/XOR/STG uW"});
    for (int states : {8, 16, 32}) {
      auto stg = polling_fsm(states);
      auto enc = binary_encoding(stg);
      auto net = synthesize_fsm(stg, enc);
      power::AnalysisOptions ao;
      ao.n_vectors = 2048;
      double p0 = power::analyze(net, ao).report.breakdown.total_w();
      auto xorg = net.clone();
      auto res = gate_fsm_self_loops(xorg);
      double p1 = power::analyze(xorg, ao).report.breakdown.total_w();
      auto stgg = net.clone();
      int pg = gate_self_loops_from_stg(stgg, stg, enc);
      double p2 = power::analyze(stgg, ao).report.breakdown.total_w();
      auto ps = detect_hold_patterns(stgg);
      auto rep = clock_activity(stgg, ps, 4096, 7);
      if (states == 32)
        benchx::claim("E12.polling32_clock_saving",
                      rep.clock_power_saving_fraction());
      t.row({"polling" + std::to_string(states),
             std::to_string(res.state_bits),
             std::to_string(res.comparator_gates) + "/" + std::to_string(pg),
             core::Table::pct(rep.clock_power_saving_fraction()),
             core::Table::num(p0 * 1e6, 1) + "/" +
                 core::Table::num(p1 * 1e6, 1) + "/" +
                 core::Table::num(p2 * 1e6, 1)});
    }
    t.print(std::cout);
  }
  std::cout << '\n';
}

void bm_select(benchmark::State& state) {
  auto comb = bench::comparator_gt(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto sel = select_precompute_inputs(comb, 2);
    benchmark::DoNotOptimize(sel.hit_probability);
  }
}
BENCHMARK(bm_select)->Arg(8)->Arg(16);

}  // namespace

LPS_BENCH_MAIN(report)
