// E3 — §II-B: slack-based transistor sizing under a delay constraint
// ("sizes of the transistors reduced until the slack becomes zero, or the
// transistors are all minimum size") [42,3].  Reproduced: activity-weighted
// switched capacitance before/after across a delay-budget sweep.

#include <algorithm>

#include "bench_util.hpp"
#include "circuit/sizing.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"

namespace {

using namespace lps;

void report() {
  benchx::banner("E3 bench_sizing",
                 "Claim (S-II-B): slack-based downsizing trades unused timing "
                 "slack for lower switched capacitance [42,3].");
  core::Table t({"circuit", "budget", "delay (max->final/budget)",
                 "cap fF/cyc before", "after", "saving", "moves"});
  std::vector<bench::NamedNetlist> suite;
  suite.push_back({"rca16", bench::ripple_carry_adder(16)});
  suite.push_back({"csa16", bench::carry_select_adder(16, 4)});
  suite.push_back({"mult6", bench::array_multiplier(6)});
  suite.push_back({"rand32x200", bench::random_dag(32, 200, 7)});
  double saving_min = 1.0;
  for (auto& [name, net0] : suite) {
    for (double budget : {1.0, 1.2, 1.5}) {
      auto net = net0.clone();
      power::AnalysisOptions ao;
      ao.n_vectors = 512;
      auto tg = power::analyze(net, ao).toggles_per_cycle;
      circuit::SizingParams sp;
      sp.delay_budget_factor = budget;
      auto r = circuit::size_for_power(net, tg, {}, sp);
      double saving = 1.0 - r.cap_after_ff / r.cap_before_ff;
      saving_min = std::min(saving_min, saving);
      if (name == "rca16")
        benchx::claim("E3.rca16_saving_b" + core::Table::num(budget, 1),
                      saving);
      t.row({name, core::Table::num(budget, 1),
             core::Table::num(r.delay_before, 1) + " -> " +
                 core::Table::num(r.delay_after, 1) + "/" +
                 core::Table::num(r.delay_budget, 1),
             core::Table::num(r.cap_before_ff, 1),
             core::Table::num(r.cap_after_ff, 1), core::Table::pct(saving),
             std::to_string(r.downsizing_moves)});
    }
  }
  t.print(std::cout);
  benchx::claim("E3.saving_min", saving_min);
  std::cout << '\n';
}

void bm_sizing(benchmark::State& state) {
  auto base = bench::ripple_carry_adder(static_cast<int>(state.range(0)));
  power::AnalysisOptions ao;
  ao.n_vectors = 128;
  auto tg = power::analyze(base, ao).toggles_per_cycle;
  for (auto _ : state) {
    auto net = base.clone();
    auto r = circuit::size_for_power(net, tg);
    benchmark::DoNotOptimize(r.cap_after_ff);
  }
}
BENCHMARK(bm_sizing)->Arg(8)->Arg(16);

}  // namespace

LPS_BENCH_MAIN(report)
