// E14 — §IV-B: "The most important transformations ... reduce the number of
// control steps.  Slower clocks can then be used for the same throughput,
// enabling the use of lower supply voltages.  The quadratic decrease in
// power consumption can compensate for the additional capacitance" [7], and
// module selection [17].

#include "bench_util.hpp"
#include "arch/modules.hpp"
#include "arch/scheduling.hpp"
#include "arch/transforms.hpp"
#include "core/report.hpp"

namespace {

using namespace lps;
using namespace lps::arch;

void report() {
  benchx::banner("E14 bench_voltage_scaling",
                 "Claim (S-IV-B): transformations that shorten the critical "
                 "path buy V_DD headroom; power falls quadratically [7].");
  auto lib = standard_module_library();
  {
    core::Table t({"workload", "transform", "cs/sample", "slack", "Vdd",
                   "cap factor", "power ratio"});
    struct W {
      std::string name;
      Dfg g;
    };
    std::vector<W> ws;
    ws.push_back({"fir8", fir_filter(8)});
    ws.push_back({"biquad", iir_biquad()});
    ws.push_back({"ewf", ewf_fragment()});
    for (auto& w : ws) {
      auto thr = tree_height_reduction(w.g);
      for (int k : {1, 2, 4}) {
        Dfg tr = k == 1 ? thr : tree_height_reduction(unroll(w.g, k));
        auto r = evaluate_voltage_gain(w.g, tr, k, lib);
        if (w.name == "fir8" && k > 1)
          benchx::claim("E14.fir8_unroll" + std::to_string(k) + "_power_ratio",
                        r.power_ratio);
        std::string tname = (k == 1) ? "thr" : "unroll x" + std::to_string(k) + " + thr";
        t.row({w.name, tname,
               core::Table::num(
                   static_cast<double>(r.cs_transformed) / k, 1),
               core::Table::num(r.slack, 2), core::Table::num(r.vdd, 2),
               core::Table::num(r.capacitance_factor, 2),
               core::Table::num(r.power_ratio, 3)});
      }
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nModule selection [17] (fir8, deadline sweep):\n";
    core::Table t({"deadline (x min)", "energy pJ/pass", "schedule cs"});
    auto g = fir_filter(8);
    std::vector<const Module*> fast(g.num_ops(), nullptr);
    for (int i = 0; i < g.num_ops(); ++i) {
      OpType ty = g.op(i).type;
      if (ty != OpType::Input && ty != OpType::Const && ty != OpType::Output)
        fast[i] = lib.fastest(ty);
    }
    int min_cs = asap(g, fast).length_cs;
    double e_tight = 0, e_relaxed = 0;
    for (double mult : {1.0, 1.5, 2.0, 4.0}) {
      auto sel = select_modules(g, lib, static_cast<int>(min_cs * mult));
      if (mult == 1.0) e_tight = sel.energy_pj;
      if (mult == 4.0) e_relaxed = sel.energy_pj;
      t.row({core::Table::num(mult, 1), core::Table::num(sel.energy_pj, 1),
             std::to_string(sel.schedule_length_cs)});
    }
    t.print(std::cout);
    benchx::claim("E14.module_sel_energy_ratio",
                  e_tight > 0 ? e_relaxed / e_tight : 0.0);
  }
  std::cout << '\n';
}

void bm_select_modules(benchmark::State& state) {
  auto lib = standard_module_library();
  auto g = fir_filter(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto sel = select_modules(g, lib, 100);
    benchmark::DoNotOptimize(sel.energy_pj);
  }
}
BENCHMARK(bm_select_modules)->Arg(8)->Arg(16);

}  // namespace

LPS_BENCH_MAIN(report)
