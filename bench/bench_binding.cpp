// E15 — §IV-B: "The decisions made during [allocation and assignment] ...
// affect the total switched capacitance in the data path.  The problem of
// minimizing this switched capacitance, while accounting for correlations
// between signals, is addressed in [33],[34]."  Reproduced: naive vs
// correlation-aware binding on the DSP DFG suite.

#include <algorithm>

#include "bench_util.hpp"
#include "arch/binding.hpp"
#include "arch/modules.hpp"
#include "arch/scheduling.hpp"
#include "core/report.hpp"

namespace {

using namespace lps;
using namespace lps::arch;

void report() {
  benchx::banner("E15 bench_binding",
                 "Claim (S-IV-B): correlation-aware binding reduces unit-"
                 "input switched capacitance at the same unit count "
                 "[33,34].");
  auto lib = standard_module_library();
  core::Table t({"workload", "units", "naive toggles/pass",
                 "low-power toggles/pass", "saving"});
  struct W {
    std::string name;
    Dfg g;
    std::map<OpType, int> limits;
  };
  std::vector<W> ws;
  ws.push_back({"fir8", fir_filter(8), {{OpType::Mul, 2}, {OpType::Add, 2}}});
  ws.push_back({"dual_fir4", dual_fir(4), {{OpType::Mul, 2},
                                           {OpType::Add, 2}}});
  ws.push_back({"dual_fir8", dual_fir(8), {{OpType::Mul, 2},
                                           {OpType::Add, 2}}});
  ws.push_back({"fir12", fir_filter(12), {{OpType::Mul, 3}, {OpType::Add, 2}}});
  ws.push_back({"biquad", iir_biquad(), {{OpType::Mul, 2}, {OpType::Add, 1},
                                         {OpType::Sub, 1}}});
  ws.push_back({"dct4", dct_butterfly(), {{OpType::Mul, 1}, {OpType::Add, 2},
                                          {OpType::Sub, 1}}});
  double fu_saving_min = 1.0, fu_saving_max = -1.0;
  for (auto& w : ws) {
    std::vector<const Module*> fast(w.g.num_ops(), nullptr);
    for (int i = 0; i < w.g.num_ops(); ++i) {
      OpType ty = w.g.op(i).type;
      if (ty != OpType::Input && ty != OpType::Const && ty != OpType::Output)
        fast[i] = lib.fastest(ty);
    }
    auto s = list_schedule(w.g, fast, w.limits);
    auto naive = naive_binding(w.g, s);
    auto low = low_power_binding(w.g, s);
    double saving =
        1.0 - low.switched_bits / std::max(1e-9, naive.switched_bits);
    fu_saving_min = std::min(fu_saving_min, saving);
    fu_saving_max = std::max(fu_saving_max, saving);
    t.row({w.name, std::to_string(low.num_units),
           core::Table::num(naive.switched_bits, 1),
           core::Table::num(low.switched_bits, 1), core::Table::pct(saving)});
  }
  t.print(std::cout);
  benchx::claim("E15.fu_saving_min", fu_saving_min);
  benchx::claim("E15.fu_saving_max", fu_saving_max);

  std::cout << "\nRegister binding (values -> registers, same allocation "
               "size, switching-aware value placement):\n";
  core::Table rt({"workload", "registers", "naive reg toggles",
                  "low-power", "saving"});
  double reg_saving_min = 1.0;
  for (auto& w : ws) {
    std::vector<const Module*> fast(w.g.num_ops(), nullptr);
    for (int i = 0; i < w.g.num_ops(); ++i) {
      OpType ty = w.g.op(i).type;
      if (ty != OpType::Input && ty != OpType::Const && ty != OpType::Output)
        fast[i] = lib.fastest(ty);
    }
    auto s = list_schedule(w.g, fast, w.limits);
    auto naive = naive_register_binding(w.g, s);
    auto low = low_power_register_binding(w.g, s);
    double saving =
        1.0 - low.switched_bits / std::max(1e-9, naive.switched_bits);
    reg_saving_min = std::min(reg_saving_min, saving);
    rt.row({w.name, std::to_string(low.num_registers),
            core::Table::num(naive.switched_bits, 1),
            core::Table::num(low.switched_bits, 1),
            core::Table::pct(saving)});
  }
  rt.print(std::cout);
  benchx::claim("E15.reg_saving_min", reg_saving_min);
  std::cout << '\n';
}

void bm_binding(benchmark::State& state) {
  auto lib = standard_module_library();
  auto g = fir_filter(8);
  std::vector<const Module*> fast(g.num_ops(), nullptr);
  for (int i = 0; i < g.num_ops(); ++i) {
    OpType ty = g.op(i).type;
    if (ty != OpType::Input && ty != OpType::Const && ty != OpType::Output)
      fast[i] = lib.fastest(ty);
  }
  std::map<OpType, int> limits{{OpType::Mul, 2}, {OpType::Add, 2}};
  auto s = list_schedule(g, fast, limits);
  for (auto _ : state) {
    auto b = low_power_binding(g, s);
    benchmark::DoNotOptimize(b.switched_bits);
  }
}
BENCHMARK(bm_binding);

}  // namespace

LPS_BENCH_MAIN(report)
