// E10 — §III-C.2: "the switching activity at flip-flop outputs ... can be
// significantly less than the activity at the flip-flop inputs ... spurious
// transitions ... are filtered out by the clock.  A retiming method that
// exploits the above observation [29]."  Also the Leiserson-Saxe [24]
// min-period machinery itself.

#include <algorithm>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "seq/retiming.hpp"
#include "seq/seq_circuit.hpp"

namespace {

using namespace lps;
using namespace lps::seq;

void report() {
  benchx::banner("E10 bench_retiming",
                 "Claim (S-III-C.2): registers filter glitches; moving them "
                 "to high-activity cuts reduces power at equal period "
                 "[24,29].");
  {
    std::cout << "Leiserson-Saxe min-period retiming (correlator graph):\n";
    RetimeGraph g;
    int host = g.add_vertex(0);
    int d1 = g.add_vertex(3), d2 = g.add_vertex(3), d3 = g.add_vertex(3);
    int p0 = g.add_vertex(7), p1 = g.add_vertex(7), p2 = g.add_vertex(7),
        p3 = g.add_vertex(7);
    g.add_edge(host, p0, 1);
    g.add_edge(p0, d1, 1);
    g.add_edge(d1, d2, 1);
    g.add_edge(d2, d3, 0);
    g.add_edge(d3, host, 0);
    g.add_edge(d1, p1, 0);
    g.add_edge(d2, p2, 0);
    g.add_edge(d3, p3, 0);
    g.add_edge(p1, p0, 0);
    g.add_edge(p2, p1, 0);
    g.add_edge(p3, p2, 0);
    auto [best, r] = g.min_period_retiming();
    std::cout << "  period " << g.period() << " -> " << best << "\n\n";
    benchx::claim("E10.correlator_period_before",
                  static_cast<double>(g.period()));
    benchx::claim("E10.correlator_period_after", static_cast<double>(best));
    (void)r;
  }
  {
    std::cout << "Netlist-level power retiming on pipelined datapaths:\n";
    core::Table t({"circuit", "moves", "period", "power before uW",
                   "after uW", "saving"});
    std::vector<std::pair<std::string, Netlist>> suite;
    suite.emplace_back("reg(mult4)", registered(bench::array_multiplier(4)));
    suite.emplace_back("reg(mult5)", registered(bench::array_multiplier(5)));
    suite.emplace_back("reg(csa16)",
                       registered(bench::carry_select_adder(16, 4)));
    double saving_min = 1.0;
    for (auto& [name, net0] : suite) {
      auto net = net0.clone();
      PowerRetimeOptions opt;
      opt.sim_vectors = 192;
      opt.max_moves = 40;
      auto r = retime_for_power(net, opt);
      double saving = 1.0 - r.power_after_w / r.power_before_w;
      saving_min = std::min(saving_min, saving);
      if (name == "reg(mult5)") benchx::claim("E10.mult5_saving", saving);
      t.row({name, std::to_string(r.moves),
             std::to_string(r.period_before) + " -> " +
                 std::to_string(r.period_after),
             core::Table::num(r.power_before_w * 1e6, 1),
             core::Table::num(r.power_after_w * 1e6, 1),
             core::Table::pct(saving)});
    }
    t.print(std::cout);
    benchx::claim("E10.saving_min", saving_min);
  }
  std::cout << '\n';
}

void bm_min_period(benchmark::State& state) {
  RetimeGraph g;
  int n = static_cast<int>(state.range(0));
  for (int v = 0; v < n; ++v) g.add_vertex(1 + v % 5);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n, (v % 3 == 0) ? 1 : 0);
  for (int v = 0; v < n; v += 4) g.add_edge(v, (v + 7) % n, 1);
  for (auto _ : state) {
    auto [best, r] = g.min_period_retiming();
    benchmark::DoNotOptimize(best);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(bm_min_period)->Arg(16)->Arg(48);

}  // namespace

LPS_BENCH_MAIN(report)
