// E8 — §III-C.1: state encoding for low power — "if a state s has a large
// number of transitions to state q, then the two states should be given
// uni-distant codes" [35,47], plus the re-encoding flow of [18].
// Reproduced: weighted switching and measured FF power for binary, one-hot,
// gray-walk, random and annealed encodings over an FSM suite.

#include <algorithm>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "power/activity.hpp"
#include "seq/encoding.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;
using namespace lps::seq;

double ff_toggles(const Netlist& net) {
  auto st = sim::measure_activity(net, 512, 5);
  double t = 0;
  for (NodeId d : net.dffs()) t += st.transition_prob[d];
  return t;
}

void report() {
  benchx::banner("E8 bench_state_encoding",
                 "Claim (S-III-C.1): weighted-Hamming state assignment cuts "
                 "flip-flop switching vs binary/one-hot/random [35,47,18].");
  struct Fsm {
    std::string name;
    Stg stg;
  };
  std::vector<Fsm> fsms;
  fsms.push_back({"counter16", counter_fsm(16)});
  fsms.push_back({"detector(110101)", sequence_detector("110101")});
  fsms.push_back({"bursty(4+12)", bursty_fsm(4, 12, 3)});
  fsms.push_back({"random12", random_fsm(12, 2, 2, 17)});
  fsms.push_back({"dk27 (MCNC)", mcnc_dk27()});
  fsms.push_back({"arbiter (bbara-style)", mcnc_bbara_fragment()});

  core::Table t({"fsm", "encoding", "wswitch (FF tog/cyc)",
                 "measured FF tog/cyc", "gates"});
  bool annealed_le_binary = true;
  for (auto& f : fsms) {
    struct Enc {
      std::string name;
      Encoding e;
    };
    std::vector<Enc> encs;
    encs.push_back({"binary", binary_encoding(f.stg)});
    encs.push_back({"one-hot", onehot_encoding(f.stg)});
    encs.push_back({"random", random_encoding(f.stg, 23)});
    encs.push_back({"gray-walk", gray_walk_encoding(f.stg)});
    encs.push_back({"annealed", low_power_encoding(f.stg)});
    double ws_binary = 0, ws_annealed = 0;
    for (auto& [ename, enc] : encs) {
      auto net = synthesize_fsm(f.stg, enc, f.name + "_" + ename);
      double ws = enc.weighted_switching(f.stg);
      if (ename == "binary") ws_binary = ws;
      if (ename == "annealed") ws_annealed = ws;
      t.row({f.name, ename, core::Table::num(ws, 3),
             core::Table::num(ff_toggles(net), 3),
             std::to_string(net.num_gates())});
    }
    annealed_le_binary =
        annealed_le_binary && ws_annealed <= ws_binary * 1.0001;
    if (f.name == "counter16")
      benchx::claim("E8.counter16_annealed_vs_binary",
                    ws_binary > 0 ? ws_annealed / ws_binary : 0.0);
  }
  t.print(std::cout);
  benchx::claim("E8.annealed_le_binary_all", annealed_le_binary);

  // Re-encoding flow [18]: start from a random-encoded logic-level design.
  std::cout << "\nRe-encoding a logic-level design [18]:\n";
  core::Table rt({"fsm", "wswitch before", "wswitch after", "saving"});
  double reencode_saving_min = 1.0;
  for (auto& f : fsms) {
    if (f.stg.num_states() > 16) continue;
    auto net = synthesize_fsm(f.stg, random_encoding(f.stg, 99));
    auto r = reencode_for_power(net);
    double saving =
        1.0 - r.wswitch_after / std::max(1e-12, r.wswitch_before);
    reencode_saving_min = std::min(reencode_saving_min, saving);
    rt.row({f.name, core::Table::num(r.wswitch_before, 3),
            core::Table::num(r.wswitch_after, 3), core::Table::pct(saving)});
  }
  rt.print(std::cout);
  benchx::claim("E8.reencode_saving_min", reencode_saving_min);
  std::cout << '\n';
}

void bm_anneal(benchmark::State& state) {
  auto stg = random_fsm(static_cast<int>(state.range(0)), 2, 2, 17);
  for (auto _ : state) {
    auto e = low_power_encoding(stg);
    benchmark::DoNotOptimize(e.codes.data());
  }
}
BENCHMARK(bm_anneal)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

LPS_BENCH_MAIN(report)
