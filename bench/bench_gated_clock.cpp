// E11 — §III-C.3: "The register file is typically not accessed in each
// clock cycle... power reduction can be obtained by gating the clocks of
// these registers [9]."  Reproduced: register file with hold-mux pattern,
// gating detection, and clock-pin activity under a write-duty sweep.

#include "bench_util.hpp"
#include "core/report.hpp"
#include "seq/clock_gating.hpp"
#include "seq/seq_circuit.hpp"

namespace {

using namespace lps;
using namespace lps::seq;

void report() {
  benchx::banner("E11 bench_gated_clock",
                 "Claim (S-III-C.3): gating idle-register clocks removes "
                 "their clock power; savings track (1 - access duty) [9].");
  core::Table t({"register file", "FF bits", "gated", "enable duty",
                 "clock toggles free", "gated", "saving"});
  double prev_saving = 0.0;
  bool monotonic = true;
  for (auto [words, width] : {std::pair{4, 8}, {8, 8}, {16, 16}}) {
    auto rf = register_file(words, width);
    auto ps = detect_hold_patterns(rf);
    auto rep = clock_activity(rf, ps, 4096, 11);
    double saving = rep.clock_power_saving_fraction();
    benchx::claim("E11.saving_" + std::to_string(words) + "x" +
                      std::to_string(width),
                  saving);
    monotonic = monotonic && saving > prev_saving;
    prev_saving = saving;
    t.row({std::to_string(words) + "x" + std::to_string(width),
           std::to_string(rf.dffs().size()), std::to_string(ps.size()),
           core::Table::pct(rep.enable_one_prob_mean),
           core::Table::num(rep.clock_toggles_ungated / rep.cycles, 1),
           core::Table::num(rep.clock_toggles_gated / rep.cycles, 1),
           core::Table::pct(saving)});
  }
  t.print(std::cout);
  benchx::claim("E11.saving_grows_with_file_size", monotonic);
  std::cout << "\n(duty = P(write enable selects the word); the larger the "
               "file, the rarer each word is written and the bigger the "
               "gated-clock win)\n\n";
}

void bm_detect(benchmark::State& state) {
  auto rf = register_file(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    auto ps = detect_hold_patterns(rf);
    benchmark::DoNotOptimize(ps.size());
  }
}
BENCHMARK(bm_detect)->Arg(8)->Arg(32);

void bm_clock_activity(benchmark::State& state) {
  auto rf = register_file(8, 8);
  auto ps = detect_hold_patterns(rf);
  for (auto _ : state) {
    auto rep = clock_activity(rf, ps, 1024, 11);
    benchmark::DoNotOptimize(rep.clock_toggles_gated);
  }
}
BENCHMARK(bm_clock_activity);

}  // namespace

LPS_BENCH_MAIN(report)
