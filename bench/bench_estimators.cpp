// E19 — §IV-A presumes a ladder of power estimators ("reasonably accurate
// low-level power analysis tools" to calibrate against; Najm's companion
// survey [31] catalogues them).  This bench compares every estimator in the
// library against the event-driven reference on the same circuits:
//   timed simulation          (reference: functional + spurious)
//   zero-delay simulation     (misses glitches)
//   exact BDD probabilities   (zero-delay, temporal-independence closed form)
//   independent probabilities (adds the spatial-independence error)
//   Najm transition density   (adds the coincident-toggle error)
// Accuracy is total switched capacitance vs the reference; runtimes come
// from the google-benchmark section.

#include <chrono>
#include <cmath>
#include <thread>

#include "bench_util.hpp"
#include "bdd/bdd_netlist.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "power/probability.hpp"
#include "sim/compiled.hpp"

namespace {

using namespace lps;

// Best-of-3 wall time of one measure_activity run under the given engine.
// Best-of (not mean) because the question is the engines' intrinsic cost
// ratio, and the minimum is the least contaminated by scheduling noise.
double activity_ms(const Netlist& net, bool compiled, std::size_t frames) {
  sim::SimOptions o = sim::sim_options();
  o.use_compiled = compiled;
  sim::ScopedSimOptions scope(o);
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto r = sim::measure_activity(net, frames, 3);
    benchmark::DoNotOptimize(r.patterns);
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// E22 — compiled flat-tape simulation vs the per-gate interpreter.  The
// tape must be a pure speed lever: bit-identical counters on every suite
// circuit (including a sequential one), and a >=2x single-thread win on
// the medium/large circuits where the Monte Carlo loop actually hurts.
void report_compiled() {
  std::cout << "E22: compiled tape vs interpreter (block="
            << sim::sim_options().block << ")\n";

  // Equality gate across the suite, plus a register circuit for the
  // sequential (block=1) driver path.
  auto suite = bench::default_suite();
  suite.push_back({"counter16", bench::counter(16)});
  bool identical = true;
  for (const auto& [name, net] : suite) {
    sim::SimOptions comp = sim::sim_options();
    comp.use_compiled = true;
    sim::SimOptions interp = comp;
    interp.use_compiled = false;
    sim::ActivityStats a, b;
    {
      sim::ScopedSimOptions s(comp);
      a = sim::measure_activity(net, 128, 3);
    }
    {
      sim::ScopedSimOptions s(interp);
      b = sim::measure_activity(net, 128, 3);
    }
    bool same = a.patterns == b.patterns && a.signal_prob == b.signal_prob &&
                a.transition_prob == b.transition_prob;
    identical = identical && same;
    if (!same) std::cout << "  MISMATCH on " << name << "\n";
  }

  // Single-thread speedup, medium/large circuits, geometric mean.  One
  // thread isolates the tape-vs-interpreter ratio from shard scheduling.
  core::Table t({"circuit", "nodes", "interp ms", "compiled ms", "speedup"});
  double log_sum = 0.0;
  std::size_t timed = 0;
  {
    core::ScopedThreads one(1);
    for (const auto& [name, net] : suite) {
      if (net.size() < 100 || !net.dffs().empty()) continue;
      double mi = activity_ms(net, false, 2048);
      double mc = activity_ms(net, true, 2048);
      double sp = mc > 0 ? mi / mc : 0.0;
      log_sum += std::log(sp);
      ++timed;
      t.row({name, std::to_string(net.size()), core::Table::num(mi, 2),
             core::Table::num(mc, 2), core::Table::num(sp, 2) + "x"});
    }
  }
  double geomean = timed > 0 ? std::exp(log_sum / static_cast<double>(timed))
                             : 0.0;
  t.print(std::cout);
  std::cout << "identical across suite: " << (identical ? "yes" : "NO")
            << ", single-thread speedup geomean: "
            << core::Table::num(geomean, 2) << "x\n";

  benchx::claim("E22.compiled_identical_suite", identical);
  benchx::claim("E22.compiled_speedup_suite", geomean);

  // Parallel scaling of the sharded Monte Carlo loop.  Only measurable
  // (and only claimed) on hosts with >=4 hardware threads; the band in
  // experiments_expected.json is marked optional for that reason.
  if (std::thread::hardware_concurrency() >= 4) {
    auto net = bench::alu(4);
    auto par_ms = [&](unsigned n) {
      core::ScopedThreads threads(n);
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = sim::measure_activity(net, 8192, 3);
        benchmark::DoNotOptimize(r.patterns);
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      return best;
    };
    double m1 = par_ms(1), m4 = par_ms(4);
    double sp = m4 > 0 ? m1 / m4 : 0.0;
    std::cout << "parallel alu4 x8192 frames: 1t "
              << core::Table::num(m1, 2) << " ms, 4t "
              << core::Table::num(m4, 2) << " ms ("
              << core::Table::num(sp, 2) << "x)\n";
    benchx::claim("E22.parallel_speedup_4t", sp);
  } else {
    std::cout << "parallel speedup: skipped ("
              << std::thread::hardware_concurrency()
              << " hardware thread(s); claim is optional)\n";
  }
  std::cout << '\n';
}

// E24 — SIMD-wide tape frames.  The lane width (scalar / AVX2 / AVX-512)
// and the locality knobs riding with it (pinning, first-touch placement)
// must be pure speed levers: bit-identical counters at every runnable
// width x block factor and at every thread count, with the wide kernels
// delivering a measurable single-thread win over the forced-scalar
// fallback on medium/large circuits.
void report_simd() {
  std::vector<sim::SimdWidth> widths{sim::SimdWidth::Scalar};
  if (sim::resolve_simd(sim::SimdWidth::Avx2) == sim::SimdWidth::Avx2)
    widths.push_back(sim::SimdWidth::Avx2);
  if (sim::resolve_simd(sim::SimdWidth::Avx512) == sim::SimdWidth::Avx512)
    widths.push_back(sim::SimdWidth::Avx512);
  const sim::SimdWidth widest = widths.back();
  std::cout << "E24: SIMD lane width (detected "
            << sim::simd_name(sim::detect_simd()) << "; runnable kernels:";
  for (auto w : widths) std::cout << ' ' << sim::simd_name(w);
  std::cout << ")\n";

  auto suite = bench::default_suite();
  suite.push_back({"counter16", bench::counter(16)});

  // Equality gate: every runnable width x block {1,16} against the
  // interpreter, including a register circuit for the sequential path.
  bool identical = true;
  for (const auto& [name, net] : suite) {
    sim::ActivityStats ref;
    {
      sim::SimOptions o = sim::sim_options();
      o.use_compiled = false;
      sim::ScopedSimOptions s(o);
      ref = sim::measure_activity(net, 128, 3);
    }
    for (auto w : widths) {
      for (std::size_t block : {std::size_t{1}, std::size_t{16}}) {
        sim::SimOptions o = sim::sim_options();
        o.use_compiled = true;
        o.block = block;
        o.width = w;
        sim::ScopedSimOptions s(o);
        auto st = sim::measure_activity(net, 128, 3);
        bool same = st.patterns == ref.patterns &&
                    st.signal_prob == ref.signal_prob &&
                    st.transition_prob == ref.transition_prob;
        identical = identical && same;
        if (!same)
          std::cout << "  MISMATCH " << name << " width="
                    << sim::simd_name(w) << " block=" << block << "\n";
      }
    }
  }

  // Thread-count equality under the widest kernels: the chunked shard
  // plan, pinning and first-touch placement must leave counters invariant.
  bool identical_threads = true;
  {
    auto net = bench::alu(4);
    sim::SimOptions o = sim::sim_options();
    o.use_compiled = true;
    o.width = widest;
    sim::ScopedSimOptions s(o);
    sim::ActivityStats ref;
    {
      core::ScopedThreads one(1);
      ref = sim::measure_activity(net, 1024, 5);
    }
    for (unsigned n : {2u, 4u, 8u}) {
      core::ScopedThreads threads(n);
      auto st = sim::measure_activity(net, 1024, 5);
      bool same = st.patterns == ref.patterns &&
                  st.signal_prob == ref.signal_prob &&
                  st.transition_prob == ref.transition_prob;
      identical_threads = identical_threads && same;
      if (!same) std::cout << "  MISMATCH at " << n << " threads\n";
    }
  }

  std::cout << "identical across widths/blocks: " << (identical ? "yes" : "NO")
            << ", across thread counts: "
            << (identical_threads ? "yes" : "NO") << "\n";
  benchx::claim("E24.simd_identical_suite", identical);
  benchx::claim("E24.simd_identical_threads", identical_threads);

  // Widest-tape-vs-interpreter single-thread geomean, with the scalar tape
  // as an informational middle column.  E22 banded the scalar fallback vs
  // the interpreter (>= 2.0); this claim bands what the wide build delivers
  // end to end over the same baseline (>= 4.0).  The wide-vs-scalar ratio
  // is deliberately not a band: after the counting pass moved to per-ISA
  // kernels the tape replay itself is near memory speed, so that ratio is
  // counting-bound and host-dependent (POPCNT vs software fold).  Only
  // measurable (and only claimed) when a wide kernel build is runnable;
  // the band is optional.
  if (widest != sim::SimdWidth::Scalar) {
    auto engine_ms = [&](const Netlist& net, bool compiled, sim::SimdWidth w) {
      sim::SimOptions o = sim::sim_options();
      o.use_compiled = compiled;
      o.width = w;
      sim::ScopedSimOptions scope(o);
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = sim::measure_activity(net, 2048, 3);
        benchmark::DoNotOptimize(r.patterns);
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      return best;
    };
    core::Table t({"circuit", "nodes", "interp ms", "scalar ms",
                   std::string(sim::simd_name(widest)) + " ms", "vs interp",
                   "vs scalar"});
    double log_sum = 0.0;
    std::size_t timed = 0;
    {
      core::ScopedThreads one(1);
      for (const auto& [name, net] : suite) {
        if (net.size() < 100 || !net.dffs().empty()) continue;
        double mi = engine_ms(net, false, widest);
        double ms = engine_ms(net, true, sim::SimdWidth::Scalar);
        double mw = engine_ms(net, true, widest);
        double sp = mw > 0 ? mi / mw : 0.0;
        double sps = mw > 0 ? ms / mw : 0.0;
        log_sum += std::log(sp);
        ++timed;
        t.row({name, std::to_string(net.size()), core::Table::num(mi, 2),
               core::Table::num(ms, 2), core::Table::num(mw, 2),
               core::Table::num(sp, 2) + "x", core::Table::num(sps, 2) + "x"});
      }
    }
    double geomean =
        timed > 0 ? std::exp(log_sum / static_cast<double>(timed)) : 0.0;
    t.print(std::cout);
    std::cout << "single-thread " << sim::simd_name(widest)
              << "-vs-interpreter geomean: " << core::Table::num(geomean, 2)
              << "x\n";
    benchx::claim("E24.simd_speedup_suite", geomean);
  } else {
    std::cout << "wide kernels unavailable on this host; "
                 "E24.simd_speedup_suite skipped (claim is optional)\n";
  }

  // Sharded Monte Carlo scaling at 8 threads under the wide kernels, with
  // pinning and first-touch placement on.  Host-gated: only meaningful
  // (and only claimed) with >=8 hardware threads.
  if (std::thread::hardware_concurrency() >= 8) {
    auto net = bench::alu(4);
    sim::SimOptions o = sim::sim_options();
    o.use_compiled = true;
    o.width = widest;
    sim::ScopedSimOptions scope(o);
    core::ScopedPinning place(true, true);
    auto par_ms = [&](unsigned n) {
      core::ScopedThreads threads(n);
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = sim::measure_activity(net, 16384, 3);
        benchmark::DoNotOptimize(r.patterns);
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      return best;
    };
    double m1 = par_ms(1), m8 = par_ms(8);
    double sp = m8 > 0 ? m1 / m8 : 0.0;
    std::cout << "parallel alu4 x16384 frames (pinned, first-touch): 1t "
              << core::Table::num(m1, 2) << " ms, 8t "
              << core::Table::num(m8, 2) << " ms ("
              << core::Table::num(sp, 2) << "x)\n";
    benchx::claim("E24.parallel_speedup_8t", sp);
  } else {
    std::cout << "8-thread scaling: skipped ("
              << std::thread::hardware_concurrency()
              << " hardware thread(s); claim is optional)\n";
  }
  std::cout << '\n';
}

double weighted_cap(const Netlist& net, const std::vector<double>& toggles) {
  power::PowerParams pp;
  double c = 0;
  for (NodeId id = 0; id < net.size(); ++id) {
    if (net.is_dead(id)) continue;
    c += power::node_capacitance(net, id, pp) * 1e15 * toggles[id];
  }
  return c;
}

void report() {
  benchx::banner(
      "E19 bench_estimators",
      "Context (S-IV-A / [31]): the estimator ladder trades accuracy for "
      "speed; each simplifying assumption shows up as a bias.");
  core::Table t({"circuit", "timed (ref) fF/cyc", "zero-delay", "BDD exact",
                 "independent", "Najm density"});
  std::vector<bench::NamedNetlist> suite;
  suite.push_back({"c17", bench::c17()});
  suite.push_back({"rca8", bench::ripple_carry_adder(8)});
  suite.push_back({"cmp8", bench::comparator_gt(8)});
  suite.push_back({"alu4", bench::alu(4)});
  suite.push_back({"parity16", bench::parity_tree(16)});
  for (auto& [name, net] : suite) {
    auto timed = sim::measure_timed_activity(net, 4096, 3);
    std::vector<double> timed_rate(net.size(), 0.0);
    for (NodeId id = 0; id < net.size(); ++id)
      timed_rate[id] = timed.total_toggles[id] / 4096.0;
    auto zd = sim::measure_activity(net, 64, 3);
    auto exact = power::toggle_rate_from_probs(power::signal_probs_exact(net));
    auto indep =
        power::toggle_rate_from_probs(power::signal_probs_independent(net));
    auto dens = power::transition_density(net);
    double ref = weighted_cap(net, timed_rate);
    auto cell = [&](const std::vector<double>& r) {
      double c = weighted_cap(net, r);
      return core::Table::num(c, 0) + " (" +
             core::Table::pct(c / ref - 1.0) + ")";
    };
    if (name == "rca8") {
      // Each estimator's bias on the glitchy ripple adder: simulators below
      // the timed reference miss glitch power (negative bias).
      benchx::claim("E19.zero_delay_bias_rca8",
                    weighted_cap(net, zd.transition_prob) / ref - 1.0);
      benchx::claim("E19.bdd_exact_bias_rca8",
                    weighted_cap(net, exact) / ref - 1.0);
      benchx::claim("E19.independent_bias_rca8",
                    weighted_cap(net, indep) / ref - 1.0);
      benchx::claim("E19.density_bias_rca8",
                    weighted_cap(net, dens) / ref - 1.0);
    }
    t.row({name, core::Table::num(ref, 0), cell(zd.transition_prob),
           cell(exact), cell(indep), cell(dens)});
  }
  t.print(std::cout);
  std::cout << "\n(negative bias = estimator misses glitch power; positive "
               "= overcounts via independence assumptions)\n\n";

  // BDD package instrumentation: unique-table size and computed-table hit
  // rate per circuit, so table-sizing wins stay visible across PRs.
  core::Table bt({"circuit", "BDD nodes", "ITE lookups", "ITE hit %",
                  "unique hits"});
  for (auto& [name, net] : suite) {
    auto b = bdd::build_bdds(net);
    double hit_pct = b.mgr.cache_lookups() > 0
                         ? 100.0 * static_cast<double>(b.mgr.cache_hits()) /
                               static_cast<double>(b.mgr.cache_lookups())
                         : 0.0;
    bt.row({name, std::to_string(b.mgr.nodes()),
            std::to_string(b.mgr.cache_lookups()),
            core::Table::num(hit_pct, 1),
            std::to_string(b.mgr.unique_hits())});
  }
  std::cout << "BDD manager counters (open-addressing unique table + lossy "
               "ITE cache):\n";
  bt.print(std::cout);
  std::cout << '\n';

  report_compiled();
  report_simd();
}

void bm_timed(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto r = sim::measure_timed_activity(net, 512, 3);
    benchmark::DoNotOptimize(r.vectors);
  }
}
BENCHMARK(bm_timed);

void bm_zero_delay(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto r = sim::measure_activity(net, 8, 3);
    benchmark::DoNotOptimize(r.patterns);
  }
}
BENCHMARK(bm_zero_delay);

void bm_bdd_exact(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto p = power::signal_probs_exact(net);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(bm_bdd_exact);

void bm_independent(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto p = power::signal_probs_independent(net);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(bm_independent);

void bm_density(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto p = power::transition_density(net);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(bm_density);

// Sharded Monte Carlo estimators at a fixed thread count (the Arg).  The
// workload is large enough to fill every shard; results are bit-identical
// across the Arg values by the determinism contract in core/parallel.hpp.
void bm_zero_delay_par(benchmark::State& state) {
  lps::core::ScopedThreads threads(static_cast<unsigned>(state.range(0)));
  auto net = bench::alu(4);
  for (auto _ : state) {
    auto r = sim::measure_activity(net, 8192, 3);
    benchmark::DoNotOptimize(r.patterns);
  }
}
BENCHMARK(bm_zero_delay_par)->Arg(1)->Arg(2)->Arg(4);

void bm_timed_par(benchmark::State& state) {
  lps::core::ScopedThreads threads(static_cast<unsigned>(state.range(0)));
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto r = sim::measure_timed_activity(net, 2048, 3);
    benchmark::DoNotOptimize(r.vectors);
  }
}
BENCHMARK(bm_timed_par)->Arg(1)->Arg(2)->Arg(4);

// Engine-paired Monte Carlo benches.  Names pair as <base>_interp /
// <base>_comp; aggregate_bench.py derives the compiled-vs-interpreted
// speedup column from the pairs (same workload, only the engine differs).
template <typename Make>
void bm_activity_engine(benchmark::State& state, Make make, bool compiled) {
  sim::SimOptions o = sim::sim_options();
  o.use_compiled = compiled;
  sim::ScopedSimOptions scope(o);
  Netlist net = make();
  for (auto _ : state) {
    auto r = sim::measure_activity(net, 2048, 3);
    benchmark::DoNotOptimize(r.patterns);
  }
}

void bm_zero_delay_mult8_interp(benchmark::State& s) {
  bm_activity_engine(s, [] { return bench::array_multiplier(8); }, false);
}
void bm_zero_delay_mult8_comp(benchmark::State& s) {
  bm_activity_engine(s, [] { return bench::array_multiplier(8); }, true);
}
void bm_zero_delay_dag_interp(benchmark::State& s) {
  bm_activity_engine(s, [] { return bench::random_dag(16, 400, 11); }, false);
}
void bm_zero_delay_dag_comp(benchmark::State& s) {
  bm_activity_engine(s, [] { return bench::random_dag(16, 400, 11); }, true);
}
BENCHMARK(bm_zero_delay_mult8_interp);
BENCHMARK(bm_zero_delay_mult8_comp);
BENCHMARK(bm_zero_delay_dag_interp);
BENCHMARK(bm_zero_delay_dag_comp);

// Width-paired Monte Carlo benches.  Names pair as <base>_wide_scalar /
// <base>_wide_<isa>; aggregate_bench.py derives the SIMD speedup column
// from the pairs.  A width the host cannot run is skipped with an error,
// so the JSON omits it and the pairing degrades gracefully.
template <typename Make>
void bm_activity_width(benchmark::State& state, Make make, sim::SimdWidth w) {
  if (sim::resolve_simd(w) != w) {
    state.SkipWithError("lane width unsupported on this host");
    return;
  }
  sim::SimOptions o = sim::sim_options();
  o.use_compiled = true;
  o.width = w;
  sim::ScopedSimOptions scope(o);
  Netlist net = make();
  for (auto _ : state) {
    auto r = sim::measure_activity(net, 2048, 3);
    benchmark::DoNotOptimize(r.patterns);
  }
}

void bm_zero_delay_mult8_wide_scalar(benchmark::State& s) {
  bm_activity_width(s, [] { return bench::array_multiplier(8); },
                    sim::SimdWidth::Scalar);
}
void bm_zero_delay_mult8_wide_avx2(benchmark::State& s) {
  bm_activity_width(s, [] { return bench::array_multiplier(8); },
                    sim::SimdWidth::Avx2);
}
void bm_zero_delay_mult8_wide_avx512(benchmark::State& s) {
  bm_activity_width(s, [] { return bench::array_multiplier(8); },
                    sim::SimdWidth::Avx512);
}
void bm_zero_delay_dag_wide_scalar(benchmark::State& s) {
  bm_activity_width(s, [] { return bench::random_dag(16, 400, 11); },
                    sim::SimdWidth::Scalar);
}
void bm_zero_delay_dag_wide_avx2(benchmark::State& s) {
  bm_activity_width(s, [] { return bench::random_dag(16, 400, 11); },
                    sim::SimdWidth::Avx2);
}
void bm_zero_delay_dag_wide_avx512(benchmark::State& s) {
  bm_activity_width(s, [] { return bench::random_dag(16, 400, 11); },
                    sim::SimdWidth::Avx512);
}
BENCHMARK(bm_zero_delay_mult8_wide_scalar);
BENCHMARK(bm_zero_delay_mult8_wide_avx2);
BENCHMARK(bm_zero_delay_mult8_wide_avx512);
BENCHMARK(bm_zero_delay_dag_wide_scalar);
BENCHMARK(bm_zero_delay_dag_wide_avx2);
BENCHMARK(bm_zero_delay_dag_wide_avx512);

void bm_bdd_build(benchmark::State& state) {
  auto net = bench::alu(4);
  for (auto _ : state) {
    auto b = bdd::build_bdds(net);
    benchmark::DoNotOptimize(b.mgr.nodes());
  }
}
BENCHMARK(bm_bdd_build);

}  // namespace

LPS_BENCH_MAIN(report)
