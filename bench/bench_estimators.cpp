// E19 — §IV-A presumes a ladder of power estimators ("reasonably accurate
// low-level power analysis tools" to calibrate against; Najm's companion
// survey [31] catalogues them).  This bench compares every estimator in the
// library against the event-driven reference on the same circuits:
//   timed simulation          (reference: functional + spurious)
//   zero-delay simulation     (misses glitches)
//   exact BDD probabilities   (zero-delay, temporal-independence closed form)
//   independent probabilities (adds the spatial-independence error)
//   Najm transition density   (adds the coincident-toggle error)
// Accuracy is total switched capacitance vs the reference; runtimes come
// from the google-benchmark section.

#include "bench_util.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "power/probability.hpp"

namespace {

using namespace lps;

double weighted_cap(const Netlist& net, const std::vector<double>& toggles) {
  power::PowerParams pp;
  double c = 0;
  for (NodeId id = 0; id < net.size(); ++id) {
    if (net.is_dead(id)) continue;
    c += power::node_capacitance(net, id, pp) * 1e15 * toggles[id];
  }
  return c;
}

void report() {
  benchx::banner(
      "E19 bench_estimators",
      "Context (S-IV-A / [31]): the estimator ladder trades accuracy for "
      "speed; each simplifying assumption shows up as a bias.");
  core::Table t({"circuit", "timed (ref) fF/cyc", "zero-delay", "BDD exact",
                 "independent", "Najm density"});
  std::vector<bench::NamedNetlist> suite;
  suite.push_back({"c17", bench::c17()});
  suite.push_back({"rca8", bench::ripple_carry_adder(8)});
  suite.push_back({"cmp8", bench::comparator_gt(8)});
  suite.push_back({"alu4", bench::alu(4)});
  suite.push_back({"parity16", bench::parity_tree(16)});
  for (auto& [name, net] : suite) {
    auto timed = sim::measure_timed_activity(net, 4096, 3);
    std::vector<double> timed_rate(net.size(), 0.0);
    for (NodeId id = 0; id < net.size(); ++id)
      timed_rate[id] = timed.total_toggles[id] / 4096.0;
    auto zd = sim::measure_activity(net, 64, 3);
    auto exact = power::toggle_rate_from_probs(power::signal_probs_exact(net));
    auto indep =
        power::toggle_rate_from_probs(power::signal_probs_independent(net));
    auto dens = power::transition_density(net);
    double ref = weighted_cap(net, timed_rate);
    auto cell = [&](const std::vector<double>& r) {
      double c = weighted_cap(net, r);
      return core::Table::num(c, 0) + " (" +
             core::Table::pct(c / ref - 1.0) + ")";
    };
    t.row({name, core::Table::num(ref, 0), cell(zd.transition_prob),
           cell(exact), cell(indep), cell(dens)});
  }
  t.print(std::cout);
  std::cout << "\n(negative bias = estimator misses glitch power; positive "
               "= overcounts via independence assumptions)\n\n";
}

void bm_timed(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto r = sim::measure_timed_activity(net, 512, 3);
    benchmark::DoNotOptimize(r.vectors);
  }
}
BENCHMARK(bm_timed);

void bm_zero_delay(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto r = sim::measure_activity(net, 8, 3);
    benchmark::DoNotOptimize(r.patterns);
  }
}
BENCHMARK(bm_zero_delay);

void bm_bdd_exact(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto p = power::signal_probs_exact(net);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(bm_bdd_exact);

void bm_independent(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto p = power::signal_probs_independent(net);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(bm_independent);

void bm_density(benchmark::State& state) {
  auto net = bench::comparator_gt(8);
  for (auto _ : state) {
    auto p = power::transition_density(net);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(bm_density);

}  // namespace

LPS_BENCH_MAIN(report)
