// E27 — synthesis-scale BDD substrate and hybrid BDD→MUX extraction.
// The §III-A story needs a BDD package that survives synthesis workloads:
// complement edges make negation free and halve parity-style node counts,
// reference-counted roots plus mark-and-sweep GC bound the live footprint
// across long optimization runs, and activity-weighted sifting reorders
// variables so high-toggle signals sit near the MUX-network root.  On top
// rides logicopt/bdd_synth.hpp: per-cone BDD→MUX extraction, each kept
// cone scored through the incremental power oracle and proven bit-identical
// against the interpreter before it commits (hybrid extraction — losers
// keep their original structure).
//
// This bench pins: (1) soundness of every engine run on the datapath
// family, (2) the per-circuit engine-level switching savings and their
// geomean, (3) the flow-level no-regression gate for the bdd_synth stage,
// (4) the live-node footprint of a suite rebuild under complement edges +
// GC versus the seed manager's plain monotonic pool, (5) that a node budget
// which kills the plain encoding completes under complement + GC, and
// (6) bit-identity of the flow across candidate-scoring worker counts.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "bdd/bdd.hpp"
#include "core/flows.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "logicopt/bdd_synth.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

// The datapath family of the E27 claims: the same multiplier/ALU/DCT
// shapes the rewrite engine targets, plus the comparator and carry-select
// circuits whose cones exercise the support cap and the sifting weights.
std::vector<bench::NamedNetlist> family() {
  std::vector<bench::NamedNetlist> fam;
  fam.push_back({"mult4", bench::array_multiplier(4)});
  fam.push_back({"alu4", bench::alu(4)});
  fam.push_back({"addsub8", bench::alu_addsub(8)});
  fam.push_back({"dct8", bench::dct_butterfly(8)});
  fam.push_back({"cmp8", bench::comparator_gt(8)});
  fam.push_back({"csel16", bench::carry_select_adder(16, 4)});
  return fam;
}

double switching_w(const Netlist& net) {
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = 4096;
  ao.seed = 123;  // independent of every oracle/estimator seed in the flows
  return power::analyze(net, ao).report.breakdown.switching_w;
}

// ---- suite rebuild: footprint of complement edges + GC ------------------
//
// Builds the output BDDs of every (combinational, <=24-input) suite
// circuit back to back inside ONE manager — the long-lived analysis-server
// workload.  Per-gate intermediates are dropped as soon as their last
// consumer is built and each circuit's outputs are dropped before the next
// circuit; the substrate's collector reclaims everything unreachable while
// the seed manager (plain edges, no collector) can only accumulate.
// Returns the manager's peak live-node high-water mark.

std::vector<NodeId> dfs_sources(const Netlist& net) {
  std::vector<NodeId> order;
  std::vector<bool> seen(net.size(), false);
  auto rec = [&](auto&& self, NodeId n) -> void {
    if (seen[n]) return;
    seen[n] = true;
    const Node& nd = net.node(n);
    if (nd.type == GateType::Input || nd.type == GateType::Dff) {
      order.push_back(n);
      return;
    }
    for (NodeId f : nd.fanins) self(self, f);
  };
  for (NodeId o : net.outputs()) rec(rec, o);
  for (NodeId pi : net.inputs())
    if (!seen[pi]) {
      seen[pi] = true;
      order.push_back(pi);
    }
  return order;
}

std::size_t suite_rebuild_peak(const bdd::Config& cfg, unsigned num_vars,
                               const std::vector<const Netlist*>& suite) {
  bdd::Manager m(num_vars, cfg);
  for (const Netlist* netp : suite) {
    const Netlist& net = *netp;
    // Interleaved variable order (DFS from the outputs, fanin first) so
    // both managers build the same linear-width adder/comparator BDDs.
    std::unordered_map<NodeId, unsigned> var_of;
    unsigned v = 0;
    for (NodeId s : dfs_sources(net)) var_of[s] = v++;
    std::vector<bdd::Ref> fn(net.size(), bdd::kFalse);
    // Remaining consumers per node: a function's root is dropped as soon
    // as its last fanout is built (outputs hold one extra use until the
    // end of the circuit) — only the output BDDs stay live.
    std::vector<unsigned> uses(net.size(), 0);
    for (NodeId id : net.topo_order()) {
      const Node& nd = net.node(id);
      if (nd.type == GateType::Input || nd.type == GateType::Dff) continue;
      for (NodeId f : nd.fanins) ++uses[f];
    }
    for (NodeId o : net.outputs()) ++uses[o];
    auto release = [&](NodeId n) {
      const Node& nd = net.node(n);
      if (nd.type == GateType::Const0 || nd.type == GateType::Const1) return;
      m.deref(fn[n]);
    };
    for (NodeId pi : net.inputs()) {
      fn[pi] = m.ref(m.var(var_of.at(pi)));
      if (uses[pi] == 0) release(pi);
    }
    // Every per-node function is rooted as soon as it exists (the auto-GC
    // contract); intermediates are arguments of the next call.
    for (NodeId id : net.topo_order()) {
      const Node& nd = net.node(id);
      switch (nd.type) {
        case GateType::Input:
        case GateType::Dff:
          continue;
        case GateType::Const0:
          fn[id] = bdd::kFalse;
          break;
        case GateType::Const1:
          fn[id] = bdd::kTrue;
          break;
        case GateType::Buf:
          fn[id] = fn[nd.fanins[0]];
          break;
        case GateType::Not:
          fn[id] = m.lnot(fn[nd.fanins[0]]);
          break;
        case GateType::And:
        case GateType::Nand: {
          bdd::Ref r = bdd::kTrue;
          for (NodeId f : nd.fanins) r = m.land(r, fn[f]);
          fn[id] = nd.type == GateType::Nand ? m.lnot(r) : r;
          break;
        }
        case GateType::Or:
        case GateType::Nor: {
          bdd::Ref r = bdd::kFalse;
          for (NodeId f : nd.fanins) r = m.lor(r, fn[f]);
          fn[id] = nd.type == GateType::Nor ? m.lnot(r) : r;
          break;
        }
        case GateType::Xor:
        case GateType::Xnor: {
          bdd::Ref r = bdd::kFalse;
          for (NodeId f : nd.fanins) r = m.lxor(r, fn[f]);
          fn[id] = nd.type == GateType::Xnor ? m.lnot(r) : r;
          break;
        }
        case GateType::Mux:
          fn[id] = m.ite(fn[nd.fanins[0]], fn[nd.fanins[2]], fn[nd.fanins[1]]);
          break;
      }
      if (nd.type != GateType::Const0 && nd.type != GateType::Const1)
        m.ref(fn[id]);
      for (NodeId f : nd.fanins)
        if (--uses[f] == 0) release(f);
      if (uses[id] == 0) release(id);
    }
    // This circuit is done: drop its outputs.  With the collector the
    // whole corpse is reclaimed before the next build; the plain pool
    // keeps it.
    for (NodeId o : net.outputs())
      if (--uses[o] == 0) release(o);
    if (cfg.auto_gc) m.gc();
  }
  return m.peak_live_nodes();
}

// ---- halved node budget: complement edges + GC where the seed threw -----
//
// 40-variable parity chain, built tail first: one node per level with
// complement edges (both polarities share a node), two per level without.
// At a 96-node budget the plain encoding must throw; the substrate
// completes with the collector sweeping each superseded prefix parity.

bool plain_build_throws_and_substrate_completes() {
  auto build_parity = [](bdd::Manager& m) {
    bdd::Ref f = m.ref(bdd::kFalse);
    for (unsigned v = 0; v < 40; ++v) {
      bdd::Ref x = m.ref(m.var(v));
      bdd::Ref t = m.ref(m.lxor(f, x));
      m.deref(x);
      m.deref(f);
      f = t;
    }
    return f;
  };
  bdd::Config plain = bdd::default_config();
  plain.complement_edges = false;
  plain.auto_gc = true;
  plain.node_limit = 96;
  bool plain_threw = false;
  try {
    bdd::Manager mp(40, plain);
    build_parity(mp);
  } catch (const bdd::NodeLimitExceeded&) {
    plain_threw = true;
  }
  bdd::Config cfg = bdd::default_config();
  cfg.auto_gc = true;
  cfg.node_limit = 96;
  bdd::Manager m(40, cfg);
  bdd::Ref f = build_parity(m);
  std::vector<bool> a(40, false);
  a[3] = true;
  bool correct = m.eval(f, a) && m.peak_live_nodes() <= 96;
  return plain_threw && correct;
}

void report() {
  benchx::banner(
      "E27 bench_bdd_synth",
      "Synthesis-scale BDD substrate (complement edges, mark-and-sweep GC, "
      "activity-weighted sifting) driving hybrid per-cone BDD->MUX "
      "extraction: every kept cone scored through the incremental oracle "
      "and proven bit-identical against the interpreter.");

  // ---- engine soundness + per-circuit savings ----------------------------
  bool sound = true;
  std::size_t examined = 0;
  core::Table t({"circuit", "cones", "kept", "capped", "peak live",
                 "before W", "after W", "saving"});
  double log_ratio_sum = 0.0;
  std::size_t n_measured = 0;
  // The engine runs on the naively elaborated family circuits (constant
  // carry-ins, zero-padded rows — exactly what the generators produce),
  // the same framing as the E25 engine claim: BDD extraction collapses the
  // constant redundancy exactly while the keep-check prices the MUX
  // network against the original cone.  E20/E27.flow_delta_min band the
  // composed flow, where strash has already absorbed the constants.
  for (const auto& [name, net] : family()) {
    Netlist work = net.clone();
    auto r = logicopt::synthesize_bdd_cones(work);
    examined += r.cones_examined;
    bool ok = r.unsound == 0 && work.check().empty() &&
              sim::equivalent_random(net, work, 512, 23);
    if (!ok) {
      sound = false;
      std::cout << "UNSOUND: " << name << "\n";
    }
    double pb = switching_w(net);
    double pa = switching_w(work);
    double saving = pb > 0.0 ? 1.0 - pa / pb : 0.0;
    log_ratio_sum += std::log(pa / pb);
    ++n_measured;
    benchx::claim("E27.saving." + std::string(name), saving);
    t.row({name, core::Table::num(static_cast<double>(r.cones_examined), 0),
           core::Table::num(static_cast<double>(r.kept), 0),
           core::Table::num(static_cast<double>(r.cones_capped), 0),
           core::Table::num(static_cast<double>(r.peak_live_nodes), 0),
           core::Table::num(pb * 1e6, 2) + "u",
           core::Table::num(pa * 1e6, 2) + "u",
           core::Table::num(saving * 100.0, 2) + "%"});
  }
  t.print(std::cout);
  double synth_geomean =
      1.0 - std::exp(log_ratio_sum / static_cast<double>(n_measured));
  std::cout << "\nhybrid extraction: most cones honestly revert (per-output "
               "MUX networks duplicate shared logic and toggle harder than "
               "low-activity ripple structures); the keep-check only commits "
               "strict oracle wins.\nengine saving geomean: "
            << core::Table::num(synth_geomean * 100.0, 2) << "%\n\n";

  // ---- flow-level no-regression gate --------------------------------------
  double flow_delta_min = 1.0;
  for (const auto& [name, net] : family()) {
    core::FlowOptions base;
    base.estimate_mode = power::ActivityMode::ZeroDelay;
    base.run_bdd_synth = false;
    core::FlowOptions with = base;
    with.run_bdd_synth = true;
    double pb = switching_w(core::optimize_combinational(net, base).circuit);
    double pw = switching_w(core::optimize_combinational(net, with).circuit);
    double delta = pb > 0.0 ? 1.0 - pw / pb : 0.0;
    flow_delta_min = std::min(flow_delta_min, delta);
  }
  std::cout << "flow-level delta (bdd_synth stage on vs off), worst circuit: "
            << core::Table::num(flow_delta_min * 100.0, 2) << "%\n";

  // ---- suite-rebuild footprint: complement + GC vs the seed pool ---------
  auto suite = bench::default_suite();
  std::vector<const Netlist*> picks;
  unsigned num_vars = 0;
  for (const auto& [name, net] : suite) {
    if (!net.dffs().empty() || net.inputs().size() > 24) continue;
    picks.push_back(&net);
    num_vars = std::max(num_vars, static_cast<unsigned>(net.inputs().size()));
  }
  bdd::Config seed_cfg = bdd::default_config();
  seed_cfg.complement_edges = false;
  seed_cfg.auto_gc = false;
  bdd::Config sub_cfg = bdd::default_config();
  sub_cfg.auto_gc = true;
  sub_cfg.gc_trigger = 1u << 12;
  std::size_t peak_seed = suite_rebuild_peak(seed_cfg, num_vars, picks);
  std::size_t peak_sub = suite_rebuild_peak(sub_cfg, num_vars, picks);
  double peak_ratio =
      peak_seed ? static_cast<double>(peak_sub) / peak_seed : 1.0;
  std::cout << "suite rebuild (" << picks.size()
            << " circuits, one manager): peak live nodes "
            << peak_seed << " (seed pool) vs " << peak_sub
            << " (complement+GC), ratio "
            << core::Table::num(peak_ratio, 3) << "\n";

  // ---- halved node budget -------------------------------------------------
  bool halved_ok = plain_build_throws_and_substrate_completes();
  std::cout << "halved node budget (96 nodes, 40-var parity chain): plain "
               "encoding throws, complement+GC completes: "
            << (halved_ok ? "yes" : "NO") << "\n";

  // ---- flow identity across worker counts ---------------------------------
  // The bdd_synth engine is sequential by construction; the speculative
  // stages around it transplant deltas exactly, so the whole ladder must be
  // bit-identical at any candidate-scoring worker count.
  bool identity = true;
  {
    const Netlist input = bench::alu_addsub(8);
    std::vector<std::uint64_t> hashes;
    std::vector<double> finals;
    for (int workers : {1, 4}) {
      core::FlowOptions fo;
      fo.estimate_mode = power::ActivityMode::ZeroDelay;
      fo.opt_workers = workers;
      auto res = core::optimize_combinational(input, fo);
      hashes.push_back(structural_hash(res.circuit));
      finals.push_back(res.stages.back().power_w);
    }
    identity = hashes[0] == hashes[1] && finals[0] == finals[1];
  }
  std::cout << "flow bit-identity at 1 vs 4 scoring workers: "
            << (identity ? "bit-identical" : "BROKEN") << "\n\n";

  benchx::claim("E27.soundness", sound);
  benchx::claim("E27.cones_examined", static_cast<double>(examined));
  benchx::claim("E27.synth_saving_geomean", synth_geomean);
  benchx::claim("E27.flow_delta_min", flow_delta_min);
  benchx::claim("E27.peak_live_ratio", peak_ratio);
  benchx::claim("E27.halved_limit_ok", halved_ok);
  benchx::claim("E27.identity_workers", identity);
}

// ---- timings: the engine itself, and the flow with/without the stage -----

template <typename Make>
void bm_engine(benchmark::State& state, Make make) {
  Netlist net = strash(make());
  logicopt::BddSynthOptions opt;
  opt.sim_vectors = 1024;
  for (auto _ : state) {
    Netlist work = net.clone();
    auto res = logicopt::synthesize_bdd_cones(work, opt);
    benchmark::DoNotOptimize(res.kept);
  }
}

template <typename Make>
void bm_flow(benchmark::State& state, Make make, bool bdd_synth) {
  Netlist net = make();
  core::FlowOptions opt;
  opt.estimate_mode = power::ActivityMode::ZeroDelay;
  opt.sim_vectors = 512;
  opt.run_bdd_synth = bdd_synth;
  for (auto _ : state) {
    auto res = core::optimize_combinational(net, opt);
    benchmark::DoNotOptimize(res.circuit.num_gates());
  }
}

void bm_bdd_synth_engine_addsub8(benchmark::State& s) {
  bm_engine(s, [] { return bench::alu_addsub(8); });
}
void bm_bdd_synth_engine_dct8(benchmark::State& s) {
  bm_engine(s, [] { return bench::dct_butterfly(8); });
}
void bm_bdd_synth_engine_mult4(benchmark::State& s) {
  bm_engine(s, [] { return bench::array_multiplier(4); });
}
void bm_bdd_synth_flow_addsub8_base(benchmark::State& s) {
  bm_flow(s, [] { return bench::alu_addsub(8); }, false);
}
void bm_bdd_synth_flow_addsub8_bdd(benchmark::State& s) {
  bm_flow(s, [] { return bench::alu_addsub(8); }, true);
}
BENCHMARK(bm_bdd_synth_engine_addsub8);
BENCHMARK(bm_bdd_synth_engine_dct8);
BENCHMARK(bm_bdd_synth_engine_mult4);
BENCHMARK(bm_bdd_synth_flow_addsub8_base);
BENCHMARK(bm_bdd_synth_flow_addsub8_bdd);

}  // namespace

LPS_BENCH_MAIN(report)
