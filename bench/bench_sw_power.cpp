// E17 — §V: instruction-level power analysis [46] and compilation for low
// energy [45]: "faster code almost always implies lower energy"; "register
// operands are much cheaper than memory operands".

#include "bench_util.hpp"
#include "core/report.hpp"
#include "sw/isa.hpp"
#include "sw/pairing.hpp"
#include "sw/power_model.hpp"
#include "sw/regalloc.hpp"
#include "sw/scheduling.hpp"

namespace {

using namespace lps;
using namespace lps::sw;

void report() {
  benchx::banner("E17 bench_sw_power",
                 "Claim (S-V): energy tracks cycles across code variants; "
                 "register operands beat memory operands [45,46].");
  {
    std::cout << "Instruction-level power table (the [46] base-cost "
                 "model):\n";
    core::Table t({"instr", "cycles", "base mA", "mA*cycles"});
    for (Opcode op : {Opcode::Add, Opcode::Mul, Opcode::Mac, Opcode::Move,
                      Opcode::Load, Opcode::Store, Opcode::DualLoad}) {
      t.row({std::string(to_string(op)), std::to_string(cycles_of(op)),
             core::Table::num(base_current_ma(op), 2),
             core::Table::num(base_current_ma(op) * cycles_of(op), 2)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nDot-product (n=16) code variants — energy vs cycles:\n";
    core::Table t({"variant", "instrs", "cycles", "energy mA*cyc",
                   "energy/cycle"});
    auto naive = dot_product_naive(16, 0, 32, 100);
    auto sched = schedule_for_power(naive).program;
    auto packed = pack_loads(naive).program;
    auto dsp = fuse_mac(pack_loads(naive).program, 0).program;
    auto add_row = [&](const std::string& name, const Program& p) {
      auto e = program_energy(p);
      t.row({name, std::to_string(p.size()), std::to_string(e.cycles),
             core::Table::num(e.total_macycles(), 1),
             core::Table::num(e.total_macycles() / e.cycles, 3)});
    };
    add_row("naive", naive);
    add_row("scheduled [40]", sched);
    add_row("packed loads [23]", packed);
    add_row("MAC-fused [23]", dsp);
    t.print(std::cout);
    benchx::claim("E17.dsp_vs_naive_energy_ratio",
                  program_energy(dsp).total_macycles() /
                      program_energy(naive).total_macycles());
  }
  {
    std::cout << "\nAlgorithm choice [49] (degree-n polynomial, naive "
                 "powers vs Horner):\n";
    core::Table t({"degree", "naive cycles", "horner cycles",
                   "naive energy", "horner energy", "saving"});
    for (int deg : {4, 8, 16}) {
      auto pn = poly_eval_naive(deg, 0, 40, 50);
      auto ph = poly_eval_horner(deg, 0, 40, 50);
      auto en = program_energy(pn);
      auto eh = program_energy(ph);
      if (deg == 16)
        benchx::claim("E17.horner_saving_deg16",
                      1.0 - eh.total_macycles() / en.total_macycles());
      t.row({std::to_string(deg), std::to_string(en.cycles),
             std::to_string(eh.cycles),
             core::Table::num(en.total_macycles(), 1),
             core::Table::num(eh.total_macycles(), 1),
             core::Table::pct(1.0 - eh.total_macycles() /
                                        en.total_macycles())});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\nRegister-file pressure (the [45] register-vs-memory "
                 "effect): hot-loop kernel compiled for k registers:\n";
    core::Table t({"registers", "spill loads", "spill stores",
                   "energy mA*cyc"});
    VirtualProgram vp;
    for (int i = 0; i < 10; ++i)
      vp.push_back({Opcode::LoadImm, 20 + i, 0, 0, 0, i, 0});
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 6; ++i)
        vp.push_back(
            {Opcode::Add, 20 + i, 0, 20 + i, 20 + ((i + 1) % 6), 0, 0});
      vp.push_back({Opcode::Mul, 26 + round % 4, 0, 26 + round % 4, 20, 0, 0});
    }
    double e_starved = 0, e_ample = 0;
    for (int regs : {2, 3, 4, 6, 8}) {
      auto r = allocate(vp, regs);
      if (regs == 2) e_starved = r.energy.total_macycles();
      if (regs == 8) e_ample = r.energy.total_macycles();
      t.row({std::to_string(regs), std::to_string(r.spill_loads),
             std::to_string(r.spill_stores),
             core::Table::num(r.energy.total_macycles(), 1)});
    }
    t.print(std::cout);
    benchx::claim("E17.spill_energy_ratio_2v8",
                  e_ample > 0 ? e_starved / e_ample : 0.0);
  }
  std::cout << '\n';
}

void bm_alloc(benchmark::State& state) {
  VirtualProgram vp;
  for (int i = 0; i < 24; ++i)
    vp.push_back({Opcode::LoadImm, 20 + i, 0, 0, 0, i, 0});
  for (int r = 0; r < 8; ++r)
    for (int i = 0; i < 24; ++i)
      vp.push_back({Opcode::Add, 20 + i, 0, 20 + i, 20 + ((i + 5) % 24), 0, 0});
  for (auto _ : state) {
    auto r = allocate(vp, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r.spill_loads);
  }
}
BENCHMARK(bm_alloc)->Arg(4)->Arg(8);

}  // namespace

LPS_BENCH_MAIN(report)
