// E25 — power-driven datapath rewriting.  The §III-A synthesis story ends
// with structure: arithmetic cones carry algebraic freedom (associativity,
// carry-save forms, shared subterms, mux distribution) that window-local
// resynthesis cannot see.  logicopt/rewrite/ applies exact datapath rules
// one candidate at a time, each scored through a cone-scoped incremental
// power oracle on the circuit as it currently stands and proven
// bit-identical against the interpreter before it may commit.  This bench
// pins rule soundness (every rule at every match site on the generated
// family), measures the switching-power reduction of the flow with the
// datapath stage against the same flow without it, and checks that no
// engine run silently truncated its candidate queue.
//
// It also carries E26 — speculative parallel candidate scoring
// (logicopt/speculate.hpp): worker threads score candidate batches against
// a snapshot and the engine commits the deltas, so the bench pins
// bit-identity of the result across worker counts and measures the
// hardware-gated wall-clock speedup at 4 workers.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "bench_util.hpp"
#include "core/flows.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "logicopt/rewrite/engine.hpp"
#include "netlist/benchmarks.hpp"
#include "sim/compiled.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

// The datapath family of the E25 claim: multipliers, ALUs and the
// DCT-butterfly add/sub pairs the carry/share/reassociation rules target.
std::vector<bench::NamedNetlist> family() {
  std::vector<bench::NamedNetlist> fam;
  fam.push_back({"mult4", bench::array_multiplier(4)});
  fam.push_back({"mult8", bench::array_multiplier(8)});
  fam.push_back({"alu4", bench::alu(4)});
  fam.push_back({"addsub8", bench::alu_addsub(8)});
  fam.push_back({"dct8", bench::dct_butterfly(8)});
  fam.push_back({"dct16", bench::dct_butterfly(16)});
  return fam;
}

double switching_w(const Netlist& net) {
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = 4096;
  ao.seed = 123;  // independent of every oracle/estimator seed in the flows
  return power::analyze(net, ao).report.breakdown.switching_w;
}

void report() {
  benchx::banner(
      "E25 bench_rewrite",
      "Power-driven datapath rewriting: exact structural rules (reassoc, "
      "carry-save, sharing, mux laws) scored per candidate through the "
      "cone-scoped incremental oracle, every keep proven bit-identical "
      "against the interpreter before it commits.");

  // ---- rule soundness: every rule at every match site -------------------
  bool sound = true;
  std::size_t sites = 0;
  for (const auto& [name, net] : family()) {
    sim::SimTrace ref;
    {
      sim::ScopedSimOptions interp({.use_compiled = false});
      ref = sim::functional_trace(net, 64, 33);
    }
    for (const auto& cand : logicopt::rewrite::match_rules(net)) {
      Netlist work = net.clone();
      if (!logicopt::rewrite::apply_rule(work, cand)) continue;
      ++sites;
      sim::SimTrace now;
      {
        sim::ScopedSimOptions interp({.use_compiled = false});
        now = sim::functional_trace(work, 64, 33);
      }
      if (!(now == ref) || !work.check().empty()) {
        sound = false;
        std::cout << "UNSOUND: " << name << " rule "
                  << logicopt::rewrite::rule_name(cand.rule) << " target "
                  << cand.target << " variant " << int(cand.variant) << "\n";
      }
    }
  }
  std::cout << "rule soundness: " << sites << " applied match sites, "
            << (sound ? "all exact" : "MISMATCHES") << "\n\n";

  // ---- engine-level switching reduction ---------------------------------
  // The headline measure: rewrite_datapath on the naively elaborated
  // family circuits (constant carry-ins, zero-padded reduction rows,
  // per-bit complemented operands — exactly what the generators produce),
  // measured before/after with an independent ZeroDelay stimulus.  This is
  // the subsystem's own claim; E20 already bands the composed flow.
  core::Table t({"circuit", "before W", "after W", "saving", "kept",
                 "reverted", "gates"});
  double log_ratio_sum = 0.0;
  std::size_t n_measured = 0;
  double capped_runs = 0.0;
  for (const auto& [name, net] : family()) {
    Netlist work = net.clone();
    core::metrics::reset();  // scope the cap metric to this engine run
    auto res = logicopt::rewrite::rewrite_datapath(work);
    capped_runs += core::metrics::value("logicopt.rewrite.capped_runs");
    double pb = switching_w(net);
    double pa = switching_w(work);
    double saving = pb > 0.0 ? 1.0 - pa / pb : 0.0;
    log_ratio_sum += std::log(pa / pb);
    ++n_measured;
    benchx::claim("E25.saving." + std::string(name), saving);
    t.row({name, core::Table::num(pb * 1e6, 2) + "u",
           core::Table::num(pa * 1e6, 2) + "u",
           core::Table::num(saving * 100.0, 1) + "%",
           core::Table::num(static_cast<double>(res.kept), 0),
           core::Table::num(static_cast<double>(res.reverted), 0),
           std::to_string(res.gates_before) + "->" +
               std::to_string(res.gates_after)});
  }
  t.print(std::cout);
  double reduction_geomean =
      1.0 - std::exp(log_ratio_sum / static_cast<double>(n_measured));
  std::cout << "\nswitching reduction geomean (engine vs input): "
            << core::Table::num(reduction_geomean * 100.0, 1) << "%\n";

  // ---- flow-level no-regression gate ------------------------------------
  // The stage rides behind strash/don't-care/resynth, which already absorb
  // the constant redundancy; what's left to it there is the algebraic
  // restructuring.  The claim is that turning the stage on never costs
  // measurable power on the family (the keep-check backs out losers).
  double flow_delta_min = 1.0;
  for (const auto& [name, net] : family()) {
    core::FlowOptions base;
    base.estimate_mode = power::ActivityMode::ZeroDelay;
    base.run_datapath = false;
    core::FlowOptions with = base;
    with.run_datapath = true;
    double pb = switching_w(core::optimize_combinational(net, base).circuit);
    double pd = switching_w(core::optimize_combinational(net, with).circuit);
    double delta = pb > 0.0 ? 1.0 - pd / pb : 0.0;
    flow_delta_min = std::min(flow_delta_min, delta);
  }
  std::cout << "flow-level delta (datapath stage on vs off), worst circuit: "
            << core::Table::num(flow_delta_min * 100.0, 1) << "%\n\n";

  benchx::claim("E25.soundness", sound);
  benchx::claim("E25.match_sites", static_cast<double>(sites));
  benchx::claim("E25.reduction_geomean", reduction_geomean);
  benchx::claim("E25.flow_delta_min", flow_delta_min);
  benchx::claim("E25.capped_runs", capped_runs);

  // ---- E26: speculative parallel candidate scoring ----------------------
  // The load-bearing claim is identity: at any worker count the engine must
  // produce the same kept sequence, the same final netlist and the same
  // (bitwise) exit power as the sequential run — speculation is a wall-clock
  // optimization, never a result change.  The speedup claim is measured
  // here too but banded as optional/hardware-gated: it only moves when real
  // cores exist under the worker threads.
  bool identical = true;
  bool accounted = true;
  double speedup_log_sum = 0.0;
  std::size_t speedup_n = 0;
  core::Table ts({"circuit", "kept", "batches", "conflicts", "rescored",
                  "t 1w ms", "t 4w ms", "speedup"});
  for (const auto& [name, net] : family()) {
    auto timed_run = [&](int workers, Netlist& work,
                         logicopt::rewrite::RewriteResult& res) {
      logicopt::rewrite::RewriteOptions opt;
      opt.workers = workers;
      auto t0 = std::chrono::steady_clock::now();
      res = logicopt::rewrite::rewrite_datapath(work, opt);
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    Netlist base = net.clone();
    logicopt::rewrite::RewriteResult r1;
    double t1 = timed_run(1, base, r1);
    logicopt::rewrite::RewriteResult r4;
    double t4 = 0.0;
    for (int w : {2, 4, 8}) {
      Netlist work = net.clone();
      logicopt::rewrite::RewriteResult rw;
      double tw = timed_run(w, work, rw);
      if (w == 4) {
        r4 = rw;
        t4 = tw;
      }
      bool same = structural_hash(work) == structural_hash(base) &&
                  rw.kept == r1.kept && rw.reverted == r1.reverted &&
                  rw.unsound == r1.unsound &&
                  rw.candidates_scored == r1.candidates_scored &&
                  rw.power_after_w == r1.power_after_w;
      if (!same) {
        identical = false;
        std::cout << "IDENTITY BREAK: " << name << " workers " << w << "\n";
      }
      accounted = accounted && rw.candidates_scored == rw.kept + rw.reverted;
    }
    if (t4 > 0.0) {
      speedup_log_sum += std::log(t1 / t4);
      ++speedup_n;
    }
    ts.row({name, core::Table::num(static_cast<double>(r1.kept), 0),
            core::Table::num(static_cast<double>(r4.spec_batches), 0),
            core::Table::num(static_cast<double>(r4.spec_conflicts), 0),
            core::Table::num(static_cast<double>(r4.spec_rescored), 0),
            core::Table::num(t1, 1), core::Table::num(t4, 1),
            core::Table::num(t1 / t4, 2) + "x"});
  }
  ts.print(std::cout);
  double speedup_geomean =
      speedup_n ? std::exp(speedup_log_sum / static_cast<double>(speedup_n))
                : 0.0;
  std::cout << "\nspeculative scoring identity (1/2/4/8 workers): "
            << (identical ? "bit-identical" : "BROKEN")
            << "; engine speedup geomean at 4 workers: "
            << core::Table::num(speedup_geomean, 2) << "x ("
            << std::thread::hardware_concurrency() << " hw threads)\n\n";

  benchx::claim("E26.identity", identical);
  benchx::claim("E26.conflicts_accounted", accounted);
  // Wall-clock only means anything with cores behind the workers; boxes
  // with fewer than 4 hardware threads skip the (optional) band entirely.
  if (std::thread::hardware_concurrency() >= 4)
    benchx::claim("E26.spec_speedup_4w", speedup_geomean);
}

// ---- timings: the engine itself, and the flow with/without the stage -----
// Names pair as <base>_base / <base>_dp; the pairing feeds the
// rewrite_savings table row alongside the per-circuit E25.saving.* claims.

template <typename Make>
void bm_engine(benchmark::State& state, Make make, int workers = 0) {
  Netlist net = make();
  logicopt::rewrite::RewriteOptions opt;
  opt.sim_vectors = 1024;
  opt.workers = workers;
  for (auto _ : state) {
    Netlist work = net.clone();
    auto res = logicopt::rewrite::rewrite_datapath(work, opt);
    benchmark::DoNotOptimize(res.kept);
  }
}

template <typename Make>
void bm_flow(benchmark::State& state, Make make, bool datapath) {
  Netlist net = make();
  core::FlowOptions opt;
  opt.estimate_mode = power::ActivityMode::ZeroDelay;
  opt.sim_vectors = 512;
  opt.run_datapath = datapath;
  for (auto _ : state) {
    auto res = core::optimize_combinational(net, opt);
    benchmark::DoNotOptimize(res.circuit.num_gates());
  }
}

void bm_rewrite_engine_dct8(benchmark::State& s) {
  bm_engine(s, [] { return bench::dct_butterfly(8); });
}
void bm_rewrite_engine_mult8(benchmark::State& s) {
  bm_engine(s, [] { return bench::array_multiplier(8); });
}
// Speculation worker matrix: _w1/_w4 pairs feed the speculative_speedups
// table in aggregate_bench.py (and the E26 wall-clock story).
void bm_rewrite_engine_dct8_w1(benchmark::State& s) {
  bm_engine(s, [] { return bench::dct_butterfly(8); }, 1);
}
void bm_rewrite_engine_dct8_w4(benchmark::State& s) {
  bm_engine(s, [] { return bench::dct_butterfly(8); }, 4);
}
void bm_rewrite_engine_mult8_w1(benchmark::State& s) {
  bm_engine(s, [] { return bench::array_multiplier(8); }, 1);
}
void bm_rewrite_engine_mult8_w4(benchmark::State& s) {
  bm_engine(s, [] { return bench::array_multiplier(8); }, 4);
}
void bm_rewrite_flow_dct8_base(benchmark::State& s) {
  bm_flow(s, [] { return bench::dct_butterfly(8); }, false);
}
void bm_rewrite_flow_dct8_dp(benchmark::State& s) {
  bm_flow(s, [] { return bench::dct_butterfly(8); }, true);
}
BENCHMARK(bm_rewrite_engine_dct8);
BENCHMARK(bm_rewrite_engine_mult8);
BENCHMARK(bm_rewrite_engine_dct8_w1);
BENCHMARK(bm_rewrite_engine_dct8_w4);
BENCHMARK(bm_rewrite_engine_mult8_w1);
BENCHMARK(bm_rewrite_engine_mult8_w4);
BENCHMARK(bm_rewrite_flow_dct8_base);
BENCHMARK(bm_rewrite_flow_dct8_dp);

}  // namespace

LPS_BENCH_MAIN(report)
