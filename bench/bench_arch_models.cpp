// E13 — §IV-A: architecture-level power models.  "Known signal statistics
// are used to obtain models that are more accurate than those obtained from
// using random input streams" [21,22] vs the PFA constant-capacitance
// characterization [15].  Reproduced: both model classes calibrated against
// this library's gate-level analysis and scored on unseen statistics.

#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "arch/macromodel.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"

namespace {

using namespace lps;
using namespace lps::arch;

void report() {
  benchx::banner("E13 bench_arch_models",
                 "Claim (S-IV-A): activity-sensitive macro-models beat "
                 "constant-per-activation (PFA) models off the calibration "
                 "point [15 vs 21,22].");
  std::vector<bench::NamedNetlist> modules;
  modules.push_back({"adder16", bench::ripple_carry_adder(16)});
  modules.push_back({"mult6", bench::array_multiplier(6)});
  modules.push_back({"cmp16", bench::comparator_gt(16)});
  modules.push_back({"alu4", bench::alu(4)});

  core::Table t({"module", "PFA mean |err|", "activity-model mean |err|",
                 "improvement"});
  double improvement_min = 1e9;
  for (auto& [name, net] : modules) {
    std::size_t n_in = net.inputs().size();
    std::vector<StatPoint> train, test;
    for (double p : {0.1, 0.3, 0.5, 0.7, 0.9})
      train.push_back(StatPoint(n_in, p));
    for (double p : {0.05, 0.2, 0.4, 0.6, 0.8, 0.95})
      test.push_back(StatPoint(n_in, p));
    auto ev = evaluate_macromodels(net, train, test, 4096);
    double improvement =
        ev.mean_abs_err_pfa / std::max(1e-9, ev.mean_abs_err_activity);
    improvement_min = std::min(improvement_min, improvement);
    t.row({name, core::Table::pct(ev.mean_abs_err_pfa),
           core::Table::pct(ev.mean_abs_err_activity),
           core::Table::num(improvement, 1) + "x"});
  }
  t.print(std::cout);
  benchx::claim("E13.improvement_min", improvement_min);

  std::cout << "\nAdditive per-module costs [36] (modules characterized in "
               "isolation, then summed; the joint system correlates module "
               "B's inputs with module A's outputs):\n";
  core::Table at({"system", "joint truth fF/cyc", "additive estimate",
                  "relative error"});
  struct Sys {
    std::string name;
    Netlist a, b;
  };
  std::vector<Sys> systems;
  systems.push_back({"rca4 -> cmp4", bench::ripple_carry_adder(4),
                     bench::comparator_gt(4)});
  systems.push_back({"rca8 -> parity", bench::ripple_carry_adder(8),
                     bench::parity_tree(9)});
  systems.push_back({"mult4 -> rca8", bench::array_multiplier(4),
                     bench::ripple_carry_adder(8)});
  double additive_abs_err_max = 0.0;
  for (auto& sys : systems) {
    auto ev = evaluate_additive_model(sys.a, sys.b, 4096);
    additive_abs_err_max =
        std::max(additive_abs_err_max, std::abs(ev.relative_error));
    at.row({sys.name, core::Table::num(ev.truth_cap_ff, 1),
            core::Table::num(ev.additive_cap_ff, 1),
            core::Table::pct(ev.relative_error)});
  }
  at.print(std::cout);
  benchx::claim("E13.additive_abs_err_max", additive_abs_err_max);
  std::cout << '\n';
}

void bm_calibrate(benchmark::State& state) {
  auto net = bench::ripple_carry_adder(8);
  std::vector<StatPoint> train;
  for (double p : {0.1, 0.5, 0.9})
    train.push_back(StatPoint(net.inputs().size(), p));
  for (auto _ : state) {
    auto m = calibrate_activity_model(net, train, 512);
    benchmark::DoNotOptimize(m.c1_ff);
  }
}
BENCHMARK(bm_calibrate);

}  // namespace

LPS_BENCH_MAIN(report)
