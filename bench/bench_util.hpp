// bench_util.hpp — shared scaffolding for the experiment binaries.
//
// Each bench binary reproduces one experiment row from DESIGN.md: it prints
// the paper-style table on stdout (the reproduction artifact) and then runs
// google-benchmark timings of the underlying algorithm (the engineering
// artifact).  A custom main handles both.
//
// Flags handled here (stripped before google-benchmark sees argv):
//   --json <file> / --json=<file>   write machine-readable JSON: timing
//       results plus every claim() value the report recorded and a dump of
//       the process metrics registry.  tools/aggregate_bench.py merges the
//       timings into BENCH_RESULTS.json; tools/check_experiments.py
//       validates the "claims" object against experiments_expected.json.
//   --claims-only                   run the report (and JSON emission) but
//       skip the benchmark timings — what the CI experiments job uses.
//   --threads <n> / --threads=<n>   call core::set_num_threads(n), the
//       authoritative thread-count override (LPS_THREADS is only sampled
//       once per process; see core/parallel.hpp).

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"

namespace lps::benchx {

/// Print the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==== " << id << " ====\n" << claim << "\n\n";
}

/// Claims recorded by the current report run, in insertion order.  Each is
/// a measured experiment value (a glitch fraction, a savings percentage, an
/// encoding cost...) keyed "E<row>.<quantity>".
inline std::vector<std::pair<std::string, double>>& claims_registry() {
  static std::vector<std::pair<std::string, double>> reg;
  return reg;
}

/// Record a measured claim value for machine-readable emission.  Report
/// functions call this next to the printed table so the number the human
/// reads and the number the regression gate checks are the same variable.
inline void claim(const std::string& key, double value) {
  claims_registry().emplace_back(key, value);
}
inline void claim(const std::string& key, bool value) {
  claims_registry().emplace_back(key, value ? 1.0 : 0.0);
}

/// Console reporter that also captures every run for JSON emission.
class JsonCaptureReporter : public ::benchmark::ConsoleReporter {
 public:
  struct Result {
    std::string name;
    double wall_ms = 0.0;  // real time per iteration
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred) continue;
      Result r;
      r.name = run.benchmark_name();
      r.iterations = run.iterations;
      if (run.iterations > 0)
        r.wall_ms = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e3;
      results_.push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<Result>& results() const { return results_; }

 private:
  std::vector<Result> results_;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline void write_json(const std::string& path, const std::string& binary,
                       const std::vector<JsonCaptureReporter::Result>& rs) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench: cannot write " << path << '\n';
    return;
  }
  os.precision(12);  // claim bands compare against these digits
  os << "{\n  \"binary\": \"" << json_escape(binary) << "\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    os << "    {\"name\": \"" << json_escape(rs[i].name)
       << "\", \"wall_ms\": " << rs[i].wall_ms
       << ", \"iterations\": " << rs[i].iterations << '}'
       << (i + 1 < rs.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"claims\": {";
  const auto& claims = claims_registry();
  for (std::size_t i = 0; i < claims.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"' << json_escape(claims[i].first)
       << "\": " << claims[i].second;
  }
  os << (claims.empty() ? "" : "\n  ") << "},\n"
     << "  \"metrics\": " << core::metrics::Registry::global().to_json()
     << "\n}\n";
}

/// Shared main: strip our flags, print the report tables, then run the
/// benchmarks (capturing results when JSON output was requested).
inline int bench_main(int argc, char** argv, void (*report_fn)()) {
  std::string json_path;
  bool claims_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else if (a == "--claims-only") {
      claims_only = true;
    } else if (a == "--threads" && i + 1 < argc) {
      core::set_num_threads(std::atoi(argv[++i]));
    } else if (a.rfind("--threads=", 0) == 0) {
      core::set_num_threads(std::atoi(a.c_str() + 10));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);

  std::string binary = argc > 0 ? argv[0] : "bench";
  if (auto slash = binary.find_last_of('/'); slash != std::string::npos)
    binary = binary.substr(slash + 1);

  report_fn();
  if (claims_only) {
    if (!json_path.empty()) write_json(json_path, binary, {});
    return 0;
  }
  ::benchmark::Initialize(&filtered_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  JsonCaptureReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  if (!json_path.empty()) write_json(json_path, binary, reporter.results());
  return 0;
}

#define LPS_BENCH_MAIN(report_fn)                          \
  int main(int argc, char** argv) {                        \
    return ::lps::benchx::bench_main(argc, argv, report_fn); \
  }

}  // namespace lps::benchx
