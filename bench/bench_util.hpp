// bench_util.hpp — shared scaffolding for the experiment binaries.
//
// Each bench binary reproduces one experiment row from DESIGN.md: it prints
// the paper-style table on stdout (the reproduction artifact) and then runs
// google-benchmark timings of the underlying algorithm (the engineering
// artifact).  A custom main handles both.

#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/report.hpp"

namespace lps::benchx {

/// Print the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==== " << id << " ====\n" << claim << "\n\n";
}

/// Standard main: print tables first (via `report`), then run benchmarks.
#define LPS_BENCH_MAIN(report_fn)                                   \
  int main(int argc, char** argv) {                                 \
    report_fn();                                                    \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }

}  // namespace lps::benchx
