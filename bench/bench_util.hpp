// bench_util.hpp — shared scaffolding for the experiment binaries.
//
// Each bench binary reproduces one experiment row from DESIGN.md: it prints
// the paper-style table on stdout (the reproduction artifact) and then runs
// google-benchmark timings of the underlying algorithm (the engineering
// artifact).  A custom main handles both.
//
// Passing `--json <file>` (or `--json=<file>`) additionally writes the
// timing results as machine-readable JSON — one record per benchmark with
// name / wall_ms (per iteration) / iterations — which
// tools/aggregate_bench.py merges into the top-level BENCH_RESULTS.json so
// the perf trajectory is tracked across PRs.

#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hpp"

namespace lps::benchx {

/// Print the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==== " << id << " ====\n" << claim << "\n\n";
}

/// Console reporter that also captures every run for JSON emission.
class JsonCaptureReporter : public ::benchmark::ConsoleReporter {
 public:
  struct Result {
    std::string name;
    double wall_ms = 0.0;  // real time per iteration
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred) continue;
      Result r;
      r.name = run.benchmark_name();
      r.iterations = run.iterations;
      if (run.iterations > 0)
        r.wall_ms = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e3;
      results_.push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<Result>& results() const { return results_; }

 private:
  std::vector<Result> results_;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline void write_json(const std::string& path, const std::string& binary,
                       const std::vector<JsonCaptureReporter::Result>& rs) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "bench: cannot write " << path << '\n';
    return;
  }
  os << "{\n  \"binary\": \"" << json_escape(binary) << "\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    os << "    {\"name\": \"" << json_escape(rs[i].name)
       << "\", \"wall_ms\": " << rs[i].wall_ms
       << ", \"iterations\": " << rs[i].iterations << '}'
       << (i + 1 < rs.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

/// Shared main: strip our --json flag, print the report tables, then run
/// the benchmarks (capturing results when JSON output was requested).
inline int bench_main(int argc, char** argv, void (*report_fn)()) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      json_path = a.substr(7);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);

  report_fn();
  ::benchmark::Initialize(&filtered_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  JsonCaptureReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  if (!json_path.empty()) {
    std::string binary = argc > 0 ? argv[0] : "bench";
    if (auto slash = binary.find_last_of('/'); slash != std::string::npos)
      binary = binary.substr(slash + 1);
    write_json(json_path, binary, reporter.results());
  }
  return 0;
}

#define LPS_BENCH_MAIN(report_fn)                          \
  int main(int argc, char** argv) {                        \
    return ::lps::benchx::bench_main(argc, argv, report_fn); \
  }

}  // namespace lps::benchx
