// E16 — §IV-B: memory power and loop transformations [14]: "memory accesses
// consume a lot of power, especially if the access is off-chip ... control
// flow transformations, such as loop reordering, are presented to try to
// minimize the memory component."

#include "bench_util.hpp"
#include "arch/memory.hpp"
#include "core/report.hpp"

namespace {

using namespace lps;
using namespace lps::arch;

void report() {
  benchx::banner("E16 bench_memory",
                 "Claim (S-IV-B): loop reordering/tiling cut off-chip "
                 "traffic and therefore memory energy [14].");
  for (int n : {16, 24, 32}) {
    std::cout << n << "x" << n << " matrix multiply (word addresses through "
              << "a 64-line x 4-word buffer):\n";
    core::Table t({"loop structure", "accesses", "misses", "miss rate",
                   "energy (nJ)", "vs ijk"});
    auto ijk = simulate_memory(matmul_addresses(n, LoopOrder::IJK));
    auto add_row = [&](const std::string& name, const MemoryEnergy& e,
                       const std::string& claim_key = "") {
      double saving = 1.0 - e.energy_pj / ijk.energy_pj;
      if (n == 24 && !claim_key.empty())
        benchx::claim("E16." + claim_key + "_saving_n24", saving);
      t.row({name, std::to_string(e.accesses), std::to_string(e.misses),
             core::Table::pct(e.miss_rate()),
             core::Table::num(e.energy_pj / 1000.0, 1),
             core::Table::pct(saving)});
    };
    add_row("ijk", ijk);
    add_row("ikj", simulate_memory(matmul_addresses(n, LoopOrder::IKJ)),
            "ikj");
    add_row("jki", simulate_memory(matmul_addresses(n, LoopOrder::JKI)),
            "jki");
    add_row("ijk tiled 4", simulate_memory(matmul_addresses_tiled(n, 4)));
    add_row("ijk tiled 8", simulate_memory(matmul_addresses_tiled(n, 8)),
            "tiled8");
    t.print(std::cout);
    std::cout << '\n';
  }
  {
    std::cout << "Buffer (on-chip memory) size sweep, 24x24 ikj — the [14] "
                 "size/energy tradeoff:\n";
    core::Table t({"cache lines", "miss rate", "energy (nJ)"});
    for (int lines : {8, 16, 64, 256}) {
      MemoryParams p;
      p.cache_lines = lines;
      auto e = simulate_memory(matmul_addresses(24, LoopOrder::IKJ), p);
      t.row({std::to_string(lines), core::Table::pct(e.miss_rate()),
             core::Table::num(e.energy_pj / 1000.0, 1)});
    }
    t.print(std::cout);
  }
  std::cout << '\n';
}

void bm_memsim(benchmark::State& state) {
  auto addrs = matmul_addresses(static_cast<int>(state.range(0)),
                                LoopOrder::IKJ);
  for (auto _ : state) {
    auto e = simulate_memory(addrs);
    benchmark::DoNotOptimize(e.energy_pj);
  }
}
BENCHMARK(bm_memsim)->Arg(16)->Arg(32);

}  // namespace

LPS_BENCH_MAIN(report)
