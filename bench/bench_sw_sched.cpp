// E18 — §V: instruction scheduling for low power.  "A scheduling technique
// has been presented to reduce the estimated switching in the control path
// of the CPU [40].  Experiments reveal that this may not be an important
// issue for large general purpose CPUs [46].  However, scheduling of
// instructions does have an impact in the case of a smaller DSP processor
// [23]" — including instruction pairing/compaction.

#include <random>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "sw/isa.hpp"
#include "sw/pairing.hpp"
#include "sw/power_model.hpp"
#include "sw/scheduling.hpp"

namespace {

using namespace lps;
using namespace lps::sw;

// A messy independent-op block (interleaved loads / immediates / ALU work).
Program messy_block(int groups, std::uint32_t seed) {
  std::mt19937 rng(seed);
  Program p;
  for (int g = 0; g < groups; ++g) {
    int base = (g % 2) * 4;
    p.push_back({Opcode::Load, base + 0, 0, 0, 0, 0, 8 * g});
    p.push_back({Opcode::LoadImm, base + 1, 0, 0, 0,
                 static_cast<std::int64_t>(rng() % 100), 0});
    p.push_back({Opcode::Add, base + 2, 0, base + 0, base + 1, 0, 0});
    p.push_back({Opcode::Mul, base + 3, 0, base + 2, base + 1, 0, 0});
    p.push_back({Opcode::Store, 0, 0, base + 3, 0, 0, 8 * g + 4});
  }
  return p;
}

void report() {
  benchx::banner("E18 bench_sw_sched",
                 "Claim (S-V): overhead-aware instruction scheduling and "
                 "pairing reduce DSP energy; the effect is in the "
                 "inter-instruction term [40,23].");
  {
    std::cout << "Scheduling: block-size sweep (greedy minimum-overhead "
                 "list schedule):\n";
    core::Table t({"block", "overhead before", "after", "reduction",
                   "total energy before", "after"});
    for (int groups : {2, 4, 8, 16}) {
      auto p = messy_block(groups, 7 * groups);
      auto r = schedule_for_power(p);
      if (groups == 16)
        benchx::claim("E18.overhead_reduction_80instr",
                      1.0 - r.after.overhead_macycles /
                                std::max(1e-9, r.before.overhead_macycles));
      t.row({std::to_string(groups * 5) + " instrs",
             core::Table::num(r.before.overhead_macycles, 2),
             core::Table::num(r.after.overhead_macycles, 2),
             core::Table::pct(1.0 - r.after.overhead_macycles /
                                        std::max(1e-9,
                                                 r.before.overhead_macycles)),
             core::Table::num(r.before.total_macycles(), 1),
             core::Table::num(r.after.total_macycles(), 1)});
    }
    t.print(std::cout);
    std::cout << "\n(overhead is the minority term — the survey's "
                 "observation that scheduling matters less on big cores "
                 "[46] but is worth having on DSPs [23])\n";
  }
  {
    std::cout << "\nPairing/compaction on the dot-product kernel:\n";
    core::Table t({"n", "naive cycles", "dsp cycles", "naive energy",
                   "dsp energy", "energy saving"});
    for (int n : {4, 8, 16, 32}) {
      auto naive = dot_product_naive(n, 0, 64, 200);
      auto dsp = fuse_mac(pack_loads(naive).program, 0);
      auto e0 = program_energy(naive);
      auto e1 = dsp.after;
      if (n == 32)
        benchx::claim("E18.pairing_saving_n32",
                      1.0 - e1.total_macycles() / e0.total_macycles());
      t.row({std::to_string(n), std::to_string(e0.cycles),
             std::to_string(e1.cycles),
             core::Table::num(e0.total_macycles(), 1),
             core::Table::num(e1.total_macycles(), 1),
             core::Table::pct(1.0 - e1.total_macycles() /
                                        e0.total_macycles())});
    }
    t.print(std::cout);
  }
  std::cout << '\n';
}

void bm_schedule(benchmark::State& state) {
  auto p = messy_block(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    auto r = schedule_for_power(p);
    benchmark::DoNotOptimize(r.after.cycles);
  }
}
BENCHMARK(bm_schedule)->Arg(4)->Arg(16);

}  // namespace

LPS_BENCH_MAIN(report)
