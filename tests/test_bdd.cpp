// BDD package tests: canonicity, Boolean algebra, quantification,
// counting, netlist bridging.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "bdd/bdd.hpp"
#include "bdd/bdd_netlist.hpp"
#include "core/metrics.hpp"
#include "netlist/benchmarks.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

using bdd::kFalse;
using bdd::kTrue;

TEST(Bdd, Canonicity) {
  bdd::Manager m(3);
  auto a = m.var(0), b = m.var(1);
  // a AND b built two ways must be the same node.
  EXPECT_EQ(m.land(a, b), m.ite(b, a, kFalse));
  EXPECT_EQ(m.lnot(m.lnot(a)), a);
  EXPECT_EQ(m.lxor(a, a), kFalse);
  EXPECT_EQ(m.lxnor(a, a), kTrue);
  EXPECT_EQ(m.lor(a, m.lnot(a)), kTrue);
  // De Morgan.
  EXPECT_EQ(m.lnot(m.land(a, b)), m.lor(m.lnot(a), m.lnot(b)));
}

TEST(Bdd, EvalMatchesSemantics) {
  bdd::Manager m(3);
  auto f = m.lor(m.land(m.var(0), m.var(1)), m.var(2));
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> a{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    EXPECT_EQ(m.eval(f, a), (a[0] && a[1]) || a[2]);
  }
}

TEST(Bdd, CofactorAndQuantification) {
  bdd::Manager m(2);
  auto f = m.land(m.var(0), m.var(1));
  EXPECT_EQ(m.cofactor(f, 0, true), m.var(1));
  EXPECT_EQ(m.cofactor(f, 0, false), kFalse);
  EXPECT_EQ(m.exists(f, 0), m.var(1));
  EXPECT_EQ(m.forall(f, 0), kFalse);
  auto g = m.lor(m.var(0), m.var(1));
  EXPECT_EQ(m.forall(g, 0), m.var(1));
  EXPECT_EQ(m.exists(g, 0), kTrue);
}

TEST(Bdd, Compose) {
  bdd::Manager m(3);
  // f = x0 XOR x1; substitute x1 := x2 AND x0.
  auto f = m.lxor(m.var(0), m.var(1));
  auto g = m.land(m.var(2), m.var(0));
  auto h = m.compose(f, 1, g);
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> a{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    bool expect = a[0] != (a[2] && a[0]);
    EXPECT_EQ(m.eval(h, a), expect);
  }
}

TEST(Bdd, SatCountAndProbability) {
  bdd::Manager m(3);
  auto f = m.lor(m.land(m.var(0), m.var(1)), m.var(2));
  // Minterms: x2=1 (4) plus x0=x1=1,x2=0 (1) = 5.
  EXPECT_NEAR(m.sat_count(f), 5.0, 1e-9);
  std::vector<double> p{0.5, 0.5, 0.5};
  EXPECT_NEAR(m.probability(f, p), 5.0 / 8.0, 1e-12);
  std::vector<double> q{1.0, 1.0, 0.0};
  EXPECT_NEAR(m.probability(f, q), 1.0, 1e-12);
}

TEST(Bdd, SupportAndSize) {
  bdd::Manager m(4);
  auto f = m.land(m.var(0), m.var(3));
  auto s = m.support(f);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(m.size(f), 2u);
  EXPECT_EQ(m.size(kTrue), 0u);
}

TEST(Bdd, AnySat) {
  bdd::Manager m(2);
  EXPECT_FALSE(m.any_sat(kFalse).has_value());
  auto f = m.land(m.var(0), m.lnot(m.var(1)));
  auto a = m.any_sat(f);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(m.eval(f, *a));
}

TEST(Bdd, Cubes) {
  bdd::Manager m(2);
  auto f = m.lxor(m.var(0), m.var(1));
  auto cs = m.cubes(f, 2);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0], "01");
  EXPECT_EQ(cs[1], "10");
}

TEST(Bdd, NodeLimit) {
  bdd::Manager m(40, 64);  // absurdly small budget
  bdd::Ref f = kTrue;
  EXPECT_THROW(
      {
        for (unsigned v = 0; v < 40; ++v)
          f = m.land(f, m.lxor(m.var(v), m.var((v + 7) % 40)));
      },
      bdd::NodeLimitExceeded);
}

// ---- synthesis-scale substrate: complement edges, GC, sifting ----------

TEST(Bdd, ComplementEdgeConstantTimeNegation) {
  bdd::Manager m(4);
  ASSERT_TRUE(m.complement_edges());
  auto f = m.lor(m.land(m.var(0), m.var(1)), m.var(2));
  std::size_t pool = m.num_nodes();
  auto g = m.lnot(f);  // O(1): flips the tag bit, allocates nothing
  EXPECT_EQ(m.num_nodes(), pool);
  EXPECT_EQ(g, f ^ 1u);
  EXPECT_EQ(m.lnot(g), f);
  // Both polarities of a literal share one node (the hi-regular rule).
  EXPECT_EQ(bdd::regular(m.var(3)), bdd::regular(m.nvar(3)));
  EXPECT_EQ(m.nvar(3), m.lnot(m.var(3)));
}

// Differential against the no-complement build (the seed manager's
// encoding): random expression DAGs over 8 variables must compute the same
// functions in both modes, and the complement-edge pool must never be
// larger (node sharing across polarities only merges, never splits).
TEST(Bdd, ComplementDifferentialAgainstPlainBuild) {
  bdd::Config plain = bdd::default_config();
  plain.complement_edges = false;
  plain.auto_gc = false;
  bdd::Manager mc(8), mp(8, plain);
  ASSERT_FALSE(mp.complement_edges());
  std::vector<bdd::Ref> fc, fp;
  for (unsigned v = 0; v < 8; ++v) {
    fc.push_back(mc.var(v));
    fp.push_back(mp.var(v));
  }
  std::mt19937 rng(77);
  for (int i = 0; i < 150; ++i) {
    std::size_t a = rng() % fc.size(), b = rng() % fc.size();
    switch (rng() % 5) {
      case 0:
        fc.push_back(mc.land(fc[a], fc[b]));
        fp.push_back(mp.land(fp[a], fp[b]));
        break;
      case 1:
        fc.push_back(mc.lor(fc[a], fc[b]));
        fp.push_back(mp.lor(fp[a], fp[b]));
        break;
      case 2:
        fc.push_back(mc.lxor(fc[a], fc[b]));
        fp.push_back(mp.lxor(fp[a], fp[b]));
        break;
      case 3:
        fc.push_back(mc.lnot(fc[a]));
        fp.push_back(mp.lnot(fp[a]));
        break;
      default: {
        std::size_t c = rng() % fc.size();
        fc.push_back(mc.ite(fc[a], fc[b], fc[c]));
        fp.push_back(mp.ite(fp[a], fp[b], fp[c]));
        break;
      }
    }
  }
  for (int bits = 0; bits < 256; ++bits) {
    std::vector<bool> a(8);
    for (int v = 0; v < 8; ++v) a[v] = (bits >> v) & 1;
    for (std::size_t k = 8; k < fc.size(); k += 7)
      ASSERT_EQ(mc.eval(fc[k], a), mp.eval(fp[k], a)) << "fn " << k;
  }
  EXPECT_LE(mc.num_nodes(), mp.num_nodes());
  // Canonicity holds in both modes: equal functions got equal Refs, so
  // XOR-of-equals collapsed to the terminal without a differential check.
  EXPECT_EQ(mc.lxor(fc.back(), fc.back()), kFalse);
  EXPECT_EQ(mp.lxor(fp.back(), fp.back()), kFalse);
}

TEST(Bdd, GcChurnReusesFreedNodes) {
  bdd::Config cfg = bdd::default_config();
  cfg.auto_gc = false;
  bdd::Manager m(16, cfg);
  bdd::Manager m_nogc(16, cfg);  // same build, never collected
  std::vector<bdd::Ref> roots;
  for (unsigned v = 0; v + 1 < 16; v += 2)
    roots.push_back(m.ref(m.lxor(m.var(v), m.var(v + 1))));
  std::mt19937 rng(3);
  for (int round = 0; round < 50; ++round) {
    bdd::Ref t = kTrue, t2 = kTrue;
    for (int i = 0; i < 12; ++i) {
      unsigned a = rng() % 16, b = rng() % 16;
      t = m.land(t, m.lor(m.var(a), m.lnot(m.var(b))));
      t2 = m_nogc.land(t2, m_nogc.lor(m_nogc.var(a), m_nogc.lnot(m_nogc.var(b))));
    }
    m.gc();
  }
  EXPECT_EQ(m.gc_runs(), 50u);
  EXPECT_GT(m.gc_swept(), 0u);
  // Free-list reuse: the collected manager's node pool stays bounded by
  // round-local demand, while the uncollected twin accumulates every
  // round's churn.  Identical workload, so the gap is pure reclamation.
  EXPECT_LT(4 * m.num_nodes(), m_nogc.num_nodes());
  // Rooted functions survived every sweep, identity and value intact.
  for (int bits = 0; bits < 64; ++bits) {
    std::vector<bool> a(16);
    for (int v = 0; v < 16; ++v) a[v] = ((bits * 2654435761u) >> v) & 1;
    for (std::size_t k = 0; k < roots.size(); ++k)
      ASSERT_EQ(m.eval(roots[k], a), a[2 * k] != a[2 * k + 1]);
  }
  // deref + gc reclaims: dropping all roots empties the live set.
  for (bdd::Ref r : roots) m.deref(r);
  m.gc();
  EXPECT_EQ(m.live_nodes(), 0u);
}

TEST(Bdd, AutoGcCollectsDuringRootedBuild) {
  bdd::Config cfg = bdd::default_config();
  cfg.auto_gc = true;
  cfg.gc_trigger = 1u << 8;  // the configurable floor
  bdd::Manager m(12, cfg);
  ASSERT_TRUE(m.auto_gc_enabled());
  // build_into-style loop: the running function is rooted after every
  // step (the auto-GC contract), all intermediate scaffolding is garbage.
  std::mt19937 rng(11);
  bdd::Ref f = kFalse;
  m.ref(f);
  for (int i = 0; i < 200; ++i) {
    unsigned a = rng() % 12, b = rng() % 12, c = rng() % 12;
    // Each public call may collect, so both intermediates must be rooted
    // before the next call (the contract); only the per-call internals
    // are scaffolding the collector is free to sweep.
    bdd::Ref hi = m.ref(m.lxor(f, m.var(b)));
    bdd::Ref lo = m.ref(m.land(f, m.var(c)));
    bdd::Ref t = m.ref(m.ite(m.var(a), hi, lo));
    m.deref(hi);
    m.deref(lo);
    m.deref(f);
    f = t;
  }
  EXPECT_GT(m.gc_runs(), 0u);
  EXPECT_GT(m.gc_swept(), 0u);
  EXPECT_LE(m.live_nodes(), m.num_nodes());
  // The function survived the collections: replay the same recurrence on
  // scalar booleans for a sample of assignments.
  std::vector<std::vector<bool>> samples;
  for (int s = 0; s < 32; ++s) {
    std::vector<bool> a(12);
    for (int v = 0; v < 12; ++v) a[v] = ((s * 40503u + 7u) >> v) & 1;
    samples.push_back(a);
  }
  std::mt19937 rng2(11);
  std::vector<bool> val(samples.size(), false);
  for (int i = 0; i < 200; ++i) {
    unsigned a = rng2() % 12, b = rng2() % 12, c = rng2() % 12;
    for (std::size_t s = 0; s < samples.size(); ++s)
      val[s] = samples[s][a] ? (val[s] != samples[s][b])
                             : (val[s] && samples[s][c]);
  }
  for (std::size_t s = 0; s < samples.size(); ++s)
    ASSERT_EQ(m.eval(f, samples[s]), val[s]) << "sample " << s;
}

TEST(Bdd, SiftingPreservesFunctionsAndShrinksBlockedOrder) {
  bdd::Manager m(8);
  // x0x4 + x1x5 + x2x6 + x3x7: exponential in the blocked initial order
  // (operands 0-3 before 4-7), linear interleaved — the canonical sifting
  // test function.
  bdd::Ref f = kFalse;
  for (unsigned v = 0; v < 4; ++v)
    f = m.lor(f, m.land(m.var(v), m.var(v + 4)));
  m.ref(f);
  std::size_t before = m.size(f);
  m.sift();
  EXPECT_GT(m.sift_swaps(), 0u);
  EXPECT_LT(m.size(f), before);  // blocked order is strictly suboptimal
  auto check = [&] {
    for (int bits = 0; bits < 256; ++bits) {
      std::vector<bool> a(8);
      for (int v = 0; v < 8; ++v) a[v] = (bits >> v) & 1;
      bool expect = (a[0] && a[4]) || (a[1] && a[5]) || (a[2] && a[6]) ||
                    (a[3] && a[7]);
      ASSERT_EQ(m.eval(f, a), expect) << bits;
    }
  };
  check();
  // var_order stays a permutation and level_of stays its inverse.
  auto ord = m.var_order();
  ASSERT_EQ(ord.size(), 8u);
  for (unsigned l = 0; l < 8; ++l) EXPECT_EQ(m.level_of(ord[l]), l);
  std::sort(ord.begin(), ord.end());
  for (unsigned v = 0; v < 8; ++v) EXPECT_EQ(ord[v], v);
  // Activity-weighted sifting also preserves the function.
  std::vector<double> w{8, 7, 6, 5, 4, 3, 2, 1};
  bdd::Manager::SiftOptions so;
  so.weights = w;
  m.sift(so);
  check();
}

TEST(Bdd, CountersFlushOnClearCachesAndDestruction) {
  core::metrics::reset();
  double after_clear = 0.0;
  {
    bdd::Manager m(4);
    m.land(m.var(0), m.var(1));
    m.clear_caches();  // flushes and zeroes the manager-local counters
    after_clear = core::metrics::value("bdd.nodes");
    EXPECT_GT(after_clear, 0.0);
    m.land(m.var(2), m.var(3));
  }  // destructor flushes what accrued after the clear — no double count
  EXPECT_GT(core::metrics::value("bdd.nodes"), after_clear);
  EXPECT_EQ(core::metrics::value("bdd.managers"), 1.0);
}

TEST(Bdd, HalvedNodeLimitSucceedsWithComplementAndGc) {
  // 40-variable parity chain: one node per level with complement edges,
  // two per level without (both polarities of every tail parity are
  // distinct nodes in the plain encoding).  At a 96-node budget the plain
  // build — the seed manager's encoding — must throw, while complement
  // edges + auto-GC (sweeping the dead prefix parities) complete in half
  // the footprint.
  auto build_parity = [](bdd::Manager& m) {
    bdd::Ref f = m.ref(kFalse);
    for (unsigned v = 0; v < 40; ++v) {
      // var() is itself a public call that may collect, so the running
      // function stays rooted until the new tail parity is.
      bdd::Ref x = m.ref(m.var(v));
      bdd::Ref t = m.ref(m.lxor(f, x));
      m.deref(x);
      m.deref(f);
      f = t;
    }
    return f;
  };
  bdd::Config plain = bdd::default_config();
  plain.complement_edges = false;
  plain.auto_gc = true;
  plain.node_limit = 96;
  bdd::Manager mp(40, plain);
  EXPECT_THROW(build_parity(mp), bdd::NodeLimitExceeded);

  bdd::Config cfg = bdd::default_config();
  cfg.auto_gc = true;
  cfg.node_limit = 96;
  bdd::Manager m(40, cfg);
  bdd::Ref f = build_parity(m);
  EXPECT_LE(m.peak_live_nodes(), 96u);
  std::vector<bool> a(40, false);
  EXPECT_FALSE(m.eval(f, a));
  a[3] = true;
  EXPECT_TRUE(m.eval(f, a));
  a[17] = true;
  EXPECT_FALSE(m.eval(f, a));
}

TEST(BddNetlist, AgreesWithSimulation) {
  for (const auto& [name, net] : bench::default_suite()) {
    if (!net.dffs().empty() || net.inputs().size() > 24) continue;
    auto b = bdd::build_bdds(net);
    sim::LogicSim s(net);
    std::vector<std::uint64_t> pi(net.inputs().size());
    std::mt19937_64 rng(5);
    for (int round = 0; round < 4; ++round) {
      for (auto& w : pi) w = rng();
      auto frame = s.eval(pi);
      // Check lane 0 against BDD eval.
      std::vector<bool> assignment(b.mgr.num_vars(), false);
      for (std::size_t i = 0; i < net.inputs().size(); ++i)
        assignment[b.var_of.at(net.inputs()[i])] = (pi[i] & 1) != 0;
      for (NodeId o : net.outputs())
        EXPECT_EQ(b.mgr.eval(b.node_fn[o], assignment),
                  (frame[o] & 1) != 0)
            << name;
    }
  }
}

TEST(BddNetlist, EquivalenceDistinguishes) {
  auto rca = bench::ripple_carry_adder(8);
  auto csa = bench::carry_select_adder(8, 3);
  EXPECT_TRUE(bdd::equivalent_bdd(rca, csa));
  auto cmp = bench::comparator_gt(4);
  auto par = bench::parity_tree(8);
  EXPECT_FALSE(bdd::equivalent_bdd(cmp, par));
}

TEST(BddNetlist, SynthesizeBddRoundTrip) {
  auto net = bench::comparator_gt(4);
  auto b = bdd::build_bdds(net);
  Netlist rebuilt("rb");
  std::vector<NodeId> var_node(b.mgr.num_vars());
  for (NodeId pi : net.inputs())
    var_node[b.var_of.at(pi)] = rebuilt.add_input(net.node(pi).name);
  NodeId out = bdd::synthesize_bdd(rebuilt, b.mgr,
                                   b.node_fn[net.outputs()[0]], var_node);
  rebuilt.add_output(out, "gt");
  EXPECT_TRUE(sim::equivalent_random(net, rebuilt, 128, 9));
}

}  // namespace
}  // namespace lps
