// BDD package tests: canonicity, Boolean algebra, quantification,
// counting, netlist bridging.

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/bdd_netlist.hpp"
#include "netlist/benchmarks.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

using bdd::kFalse;
using bdd::kTrue;

TEST(Bdd, Canonicity) {
  bdd::Manager m(3);
  auto a = m.var(0), b = m.var(1);
  // a AND b built two ways must be the same node.
  EXPECT_EQ(m.land(a, b), m.ite(b, a, kFalse));
  EXPECT_EQ(m.lnot(m.lnot(a)), a);
  EXPECT_EQ(m.lxor(a, a), kFalse);
  EXPECT_EQ(m.lxnor(a, a), kTrue);
  EXPECT_EQ(m.lor(a, m.lnot(a)), kTrue);
  // De Morgan.
  EXPECT_EQ(m.lnot(m.land(a, b)), m.lor(m.lnot(a), m.lnot(b)));
}

TEST(Bdd, EvalMatchesSemantics) {
  bdd::Manager m(3);
  auto f = m.lor(m.land(m.var(0), m.var(1)), m.var(2));
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> a{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    EXPECT_EQ(m.eval(f, a), (a[0] && a[1]) || a[2]);
  }
}

TEST(Bdd, CofactorAndQuantification) {
  bdd::Manager m(2);
  auto f = m.land(m.var(0), m.var(1));
  EXPECT_EQ(m.cofactor(f, 0, true), m.var(1));
  EXPECT_EQ(m.cofactor(f, 0, false), kFalse);
  EXPECT_EQ(m.exists(f, 0), m.var(1));
  EXPECT_EQ(m.forall(f, 0), kFalse);
  auto g = m.lor(m.var(0), m.var(1));
  EXPECT_EQ(m.forall(g, 0), m.var(1));
  EXPECT_EQ(m.exists(g, 0), kTrue);
}

TEST(Bdd, Compose) {
  bdd::Manager m(3);
  // f = x0 XOR x1; substitute x1 := x2 AND x0.
  auto f = m.lxor(m.var(0), m.var(1));
  auto g = m.land(m.var(2), m.var(0));
  auto h = m.compose(f, 1, g);
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> a{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
    bool expect = a[0] != (a[2] && a[0]);
    EXPECT_EQ(m.eval(h, a), expect);
  }
}

TEST(Bdd, SatCountAndProbability) {
  bdd::Manager m(3);
  auto f = m.lor(m.land(m.var(0), m.var(1)), m.var(2));
  // Minterms: x2=1 (4) plus x0=x1=1,x2=0 (1) = 5.
  EXPECT_NEAR(m.sat_count(f), 5.0, 1e-9);
  std::vector<double> p{0.5, 0.5, 0.5};
  EXPECT_NEAR(m.probability(f, p), 5.0 / 8.0, 1e-12);
  std::vector<double> q{1.0, 1.0, 0.0};
  EXPECT_NEAR(m.probability(f, q), 1.0, 1e-12);
}

TEST(Bdd, SupportAndSize) {
  bdd::Manager m(4);
  auto f = m.land(m.var(0), m.var(3));
  auto s = m.support(f);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(m.size(f), 2u);
  EXPECT_EQ(m.size(kTrue), 0u);
}

TEST(Bdd, AnySat) {
  bdd::Manager m(2);
  EXPECT_FALSE(m.any_sat(kFalse).has_value());
  auto f = m.land(m.var(0), m.lnot(m.var(1)));
  auto a = m.any_sat(f);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(m.eval(f, *a));
}

TEST(Bdd, Cubes) {
  bdd::Manager m(2);
  auto f = m.lxor(m.var(0), m.var(1));
  auto cs = m.cubes(f, 2);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0], "01");
  EXPECT_EQ(cs[1], "10");
}

TEST(Bdd, NodeLimit) {
  bdd::Manager m(40, 64);  // absurdly small budget
  bdd::Ref f = kTrue;
  EXPECT_THROW(
      {
        for (unsigned v = 0; v < 40; ++v)
          f = m.land(f, m.lxor(m.var(v), m.var((v + 7) % 40)));
      },
      bdd::NodeLimitExceeded);
}

TEST(BddNetlist, AgreesWithSimulation) {
  for (const auto& [name, net] : bench::default_suite()) {
    if (!net.dffs().empty() || net.inputs().size() > 24) continue;
    auto b = bdd::build_bdds(net);
    sim::LogicSim s(net);
    std::vector<std::uint64_t> pi(net.inputs().size());
    std::mt19937_64 rng(5);
    for (int round = 0; round < 4; ++round) {
      for (auto& w : pi) w = rng();
      auto frame = s.eval(pi);
      // Check lane 0 against BDD eval.
      std::vector<bool> assignment(b.mgr.num_vars(), false);
      for (std::size_t i = 0; i < net.inputs().size(); ++i)
        assignment[b.var_of.at(net.inputs()[i])] = (pi[i] & 1) != 0;
      for (NodeId o : net.outputs())
        EXPECT_EQ(b.mgr.eval(b.node_fn[o], assignment),
                  (frame[o] & 1) != 0)
            << name;
    }
  }
}

TEST(BddNetlist, EquivalenceDistinguishes) {
  auto rca = bench::ripple_carry_adder(8);
  auto csa = bench::carry_select_adder(8, 3);
  EXPECT_TRUE(bdd::equivalent_bdd(rca, csa));
  auto cmp = bench::comparator_gt(4);
  auto par = bench::parity_tree(8);
  EXPECT_FALSE(bdd::equivalent_bdd(cmp, par));
}

TEST(BddNetlist, SynthesizeBddRoundTrip) {
  auto net = bench::comparator_gt(4);
  auto b = bdd::build_bdds(net);
  Netlist rebuilt("rb");
  std::vector<NodeId> var_node(b.mgr.num_vars());
  for (NodeId pi : net.inputs())
    var_node[b.var_of.at(pi)] = rebuilt.add_input(net.node(pi).name);
  NodeId out = bdd::synthesize_bdd(rebuilt, b.mgr,
                                   b.node_fn[net.outputs()[0]], var_node);
  rebuilt.add_output(out, "gt");
  EXPECT_TRUE(sim::equivalent_random(net, rebuilt, 128, 9));
}

}  // namespace
}  // namespace lps
