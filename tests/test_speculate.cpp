// test_speculate.cpp — speculative parallel candidate scoring
// (logicopt/speculate.hpp) and its engine integrations.
//
// The contracts under test:
//  * bit-identity: the kept-rewrite sequence, final netlist and exit power
//    of every speculation-routed engine (datapath rewrite, window
//    resynthesis, factoring comparison) are identical at worker counts
//    {1, 2, 4, 8};
//  * the oracle fork (IncrementalAnalyzer::clone_for) scores a cloned
//    netlist exactly like a fresh analyzer, and outputs_digest() is a
//    faithful PO-stream witness;
//  * chaos hooks (force_throw_on_candidate, force_unsound_rewrites) are
//    consumed at deterministic commit points, so fault injection behaves
//    identically under concurrency and a mid-speculation fault unwinds to
//    the caller's epoch exactly like the sequential engine;
//  * speculation conflicts and serial re-scores are surfaced in the result
//    (and logicopt.spec.* metrics) — never silent.

#include <gtest/gtest.h>

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <vector>

#include "core/flows.hpp"
#include "core/parallel.hpp"
#include "core/pass.hpp"
#include "logicopt/power_factor.hpp"
#include "logicopt/resynth.hpp"
#include "logicopt/rewrite/engine.hpp"
#include "logicopt/rewrite/rules.hpp"
#include "logicopt/speculate.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "power/incremental.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;
namespace speculate = logicopt::speculate;
using logicopt::rewrite::RewriteOptions;
using logicopt::rewrite::RewriteResult;
using logicopt::rewrite::rewrite_datapath;

// ---- knob plumbing --------------------------------------------------------

TEST(SpeculateKnob, ResolveAndScopedOverride) {
  int def = speculate::default_workers();
  EXPECT_GE(def, 1);
  EXPECT_EQ(speculate::resolve_workers(0), def);
  EXPECT_EQ(speculate::resolve_workers(3), 3);
  EXPECT_EQ(speculate::resolve_workers(-5), def);
  EXPECT_EQ(speculate::resolve_workers(100000), 256);  // clamped
  {
    speculate::ScopedWorkers guard(6);
    EXPECT_EQ(speculate::default_workers(), 6);
    EXPECT_EQ(speculate::resolve_workers(0), 6);
    EXPECT_EQ(speculate::resolve_workers(2), 2);  // explicit beats default
    {
      speculate::ScopedWorkers inner(2);
      EXPECT_EQ(speculate::default_workers(), 2);
    }
    EXPECT_EQ(speculate::default_workers(), 6);
  }
  EXPECT_EQ(speculate::default_workers(), def);
}

// ---- delta scoring and id-set helpers -------------------------------------

TEST(SpeculateUnit, ScoreDeltaSumsFootprintAndClockTerm) {
  power::Analysis before, after;
  before.report.node_power_w = {1.0, 2.0, 3.0, 4.0};
  after.report.node_power_w = {1.0, 2.5, 3.0, 3.25};
  before.clock_power_w = after.clock_power_w = 0.75;
  std::vector<NodeId> fp{1, 3};
  auto d = speculate::score_delta(before, after, fp);
  EXPECT_FALSE(d.clock_moved);
  EXPECT_DOUBLE_EQ(d.delta_w, (2.5 - 2.0) + (3.25 - 4.0));
  // Footprint entries beyond either vector score as zero (created/removed
  // nodes).
  std::vector<NodeId> fp2{1, 9};
  auto d2 = speculate::score_delta(before, after, fp2);
  EXPECT_DOUBLE_EQ(d2.delta_w, 0.5);
  // A moved clock term is flagged and included.
  after.clock_power_w = 0.5;
  auto d3 = speculate::score_delta(before, after, fp);
  EXPECT_TRUE(d3.clock_moved);
  EXPECT_DOUBLE_EQ(d3.delta_w, (2.5 - 2.0) + (3.25 - 4.0) + (0.5 - 0.75));
}

TEST(SpeculateUnit, ReadClosureCoversFaninsSharingScansAndFanouts) {
  Netlist net("closure");
  NodeId a = net.add_input("a");
  NodeId b = net.add_input("b");
  NodeId c = net.add_input("c");
  NodeId g1 = net.add_and(a, b);
  NodeId g2 = net.add_or(g1, c);
  NodeId g3 = net.add_xor(g2, a);
  net.add_output(g3, "f");
  const NodeId seeds[1] = {g2};
  auto closure = speculate::read_closure(net, seeds, 3);
  auto has = [&](NodeId id) {
    return std::find(closure.begin(), closure.end(), id) != closure.end();
  };
  EXPECT_TRUE(has(g2));
  EXPECT_TRUE(has(g1));  // fanin
  EXPECT_TRUE(has(a));   // transitive fanin
  EXPECT_TRUE(has(g3));  // fanout of the seed (sharing-scan context)
  // Sorted unique.
  for (std::size_t i = 1; i < closure.size(); ++i)
    EXPECT_LT(closure[i - 1], closure[i]);
}

TEST(SpeculateUnit, ConflictSetIgnoresIdsBeyondSnapshot) {
  speculate::ConflictSet set(4);
  EXPECT_TRUE(set.empty());
  std::vector<NodeId> keep{2, 9};  // 9 is past the snapshot: ignored
  set.add(keep);
  std::vector<NodeId> probe_hit{0, 2};
  std::vector<NodeId> probe_miss{0, 3};
  std::vector<NodeId> probe_new{9};
  EXPECT_TRUE(set.hits(probe_hit));
  EXPECT_FALSE(set.hits(probe_miss));
  EXPECT_FALSE(set.hits(probe_new));
}

TEST(SpeculateUnit, ConflictSetWithFootprintCatchesActivityReconvergence) {
  // A keep at g1 dirties the toggle counters of its whole downstream cone.
  // A later candidate at g3 shares no structure with the keep, but its
  // delta reads counters the keep changed — so the conflict set must carry
  // the keep's dirty activity footprint, not just its touched ids, or the
  // candidate transplants a pre-keep delta (the E26 identity regression).
  Netlist net("reconv");
  NodeId a = net.add_input("a");
  NodeId b = net.add_input("b");
  NodeId g1 = net.add_and(a, b);
  NodeId g2 = net.add_or(g1, b);
  NodeId g3 = net.add_xor(g2, a);
  net.add_output(g3, "f");
  Netlist::TouchedNodes keep;
  keep.ids = {g1};
  keep.value_roots = {g1};
  std::vector<NodeId> fp = speculate::dirty_footprint(net, keep);
  speculate::ConflictSet ids_only(net.size());
  ids_only.add(keep.ids);
  speculate::ConflictSet with_fp(net.size());
  with_fp.add(keep.ids);
  with_fp.add(fp);
  std::vector<NodeId> later_fp{g3};  // downstream candidate's footprint
  EXPECT_FALSE(ids_only.hits(later_fp));  // structural-only set misses it
  EXPECT_TRUE(with_fp.hits(later_fp));
}

TEST(SpeculateUnit, SameTouchedComparesCanonicalSetsBelowSnapshot) {
  Netlist::TouchedNodes live;
  live.ids = {5, 3, 3, 12};  // 12 is past the snapshot: ignored
  live.value_roots = {3, 12};
  std::vector<NodeId> snap_ids{3, 5};
  std::vector<NodeId> snap_roots{3};
  EXPECT_TRUE(speculate::same_touched(snap_ids, snap_roots, live, 10));
  // A differing pre-snapshot touched id is a mismatch ...
  live.ids.push_back(7);
  EXPECT_FALSE(speculate::same_touched(snap_ids, snap_roots, live, 10));
  // ... and so is a differing value-root set with identical ids.
  live.ids = {3, 5};
  live.value_roots = {5};
  EXPECT_FALSE(speculate::same_touched(snap_ids, snap_roots, live, 10));
}

TEST(SpeculateUnit, RethrowIfCancelledPropagatesOnlyCancellation) {
  speculate::rethrow_if_cancelled(nullptr);  // null: no-op
  std::exception_ptr plain =
      std::make_exception_ptr(std::runtime_error("worker died"));
  EXPECT_NO_THROW(speculate::rethrow_if_cancelled(plain));
  std::exception_ptr cancel =
      std::make_exception_ptr(core::CancelledError());
  EXPECT_THROW(speculate::rethrow_if_cancelled(cancel),
               core::CancelledError);
}

// ---- oracle fork and PO-stream digest -------------------------------------

static power::AnalysisOptions zd_options(std::size_t vectors = 1024,
                                         std::uint64_t seed = 7) {
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = vectors;
  ao.seed = seed;
  return ao;
}

TEST(SpeculateOracle, CloneForScoresACloneLikeAFreshAnalyzer) {
  Netlist net = bench::ripple_carry_adder(4);
  power::IncrementalAnalyzer oracle(net, zd_options());

  Netlist clone = net.clone();
  power::IncrementalAnalyzer fork = oracle.clone_for(clone);
  EXPECT_EQ(fork.analysis().report.breakdown.total_w(),
            oracle.analysis().report.breakdown.total_w());

  // Mutate the clone and reanalyze through the fork: the result must be
  // bit-identical to a fresh full analysis of the mutated clone.
  auto cands = logicopt::rewrite::match_rules(clone);
  ASSERT_FALSE(cands.empty());
  clone.begin_undo();
  bool applied = false;
  std::size_t used = 0;
  for (; used < cands.size(); ++used) {
    if ((applied = logicopt::rewrite::apply_rule(clone, cands[used]))) break;
  }
  ASSERT_TRUE(applied);
  auto touched = clone.touched_nodes();
  fork.reanalyze(touched);
  clone.commit_undo();
  auto full = power::analyze(clone, zd_options());
  EXPECT_EQ(fork.analysis().report.breakdown.total_w(),
            full.report.breakdown.total_w());
  ASSERT_EQ(fork.analysis().report.node_power_w.size(),
            full.report.node_power_w.size());
  for (std::size_t i = 0; i < full.report.node_power_w.size(); ++i)
    EXPECT_EQ(fork.analysis().report.node_power_w[i],
              full.report.node_power_w[i])
        << "node " << i;
  // The source oracle never noticed.
  EXPECT_EQ(oracle.analysis().report.breakdown.total_w(),
            power::analyze(net, zd_options()).report.breakdown.total_w());
}

TEST(SpeculateOracle, CloneForRequiresAZeroDelayBaseline) {
  Netlist net = bench::ripple_carry_adder(4);
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::Timed;
  ao.n_vectors = 256;
  power::IncrementalAnalyzer timed(net, ao);
  Netlist clone = net.clone();
  EXPECT_THROW((void)timed.clone_for(clone), std::logic_error);
}

TEST(SpeculateOracle, OutputsDigestWitnessesPoStreams) {
  Netlist net("digest");
  NodeId a = net.add_input("a");
  NodeId b = net.add_input("b");
  NodeId g = net.add_and(a, b);
  net.add_output(g, "f");
  power::IncrementalAnalyzer oracle(net, zd_options());
  std::uint64_t d0 = oracle.outputs_digest();

  // An inexact edit (And -> Or) changes the PO stream: the digest moves,
  // and reverting restores it.
  net.begin_undo();
  NodeId g2 = net.add_or(a, b);
  net.substitute(g, g2);
  net.sweep();
  auto touched = net.touched_nodes();
  oracle.reanalyze(touched);
  EXPECT_NE(oracle.outputs_digest(), d0);
  net.rollback_undo();
  oracle.revert_last();
  EXPECT_EQ(oracle.outputs_digest(), d0);

  // previous_analysis() is only defined while an update is pending.
  EXPECT_THROW((void)oracle.previous_analysis(), std::logic_error);
}

// ---- engine identity across worker counts ---------------------------------

static RewriteResult run_rewrite(Netlist& net, int workers) {
  RewriteOptions ro;
  ro.workers = workers;
  return rewrite_datapath(net, ro);
}

TEST(SpeculateRewrite, NetlistAndKeptSequenceIdenticalAcrossWorkerCounts) {
  std::vector<bench::NamedNetlist> fam;
  fam.push_back({"mult4", bench::array_multiplier(4)});
  fam.push_back({"alu4", bench::alu(4)});
  fam.push_back({"dct8", bench::dct_butterfly(8)});
  for (auto& [name, input] : fam) {
    Netlist base = input.clone();
    RewriteResult r1 = run_rewrite(base, 1);
    EXPECT_EQ(r1.workers_used, 1) << name;
    EXPECT_EQ(r1.spec_batches, 0u) << name;
    for (int w : {2, 4, 8}) {
      Netlist net = input.clone();
      RewriteResult rw = run_rewrite(net, w);
      EXPECT_EQ(structural_hash(net), structural_hash(base))
          << name << " workers=" << w;
      EXPECT_EQ(rw.kept, r1.kept) << name << " workers=" << w;
      EXPECT_EQ(rw.reverted, r1.reverted) << name << " workers=" << w;
      EXPECT_EQ(rw.stale, r1.stale) << name << " workers=" << w;
      EXPECT_EQ(rw.unsound, r1.unsound) << name << " workers=" << w;
      EXPECT_EQ(rw.candidates_seen, r1.candidates_seen)
          << name << " workers=" << w;
      EXPECT_EQ(rw.candidates_scored, r1.candidates_scored)
          << name << " workers=" << w;
      // Bitwise, not approximately: the delta rule transplants exactly.
      EXPECT_EQ(rw.power_after_w, r1.power_after_w)
          << name << " workers=" << w;
      EXPECT_EQ(rw.workers_used, w) << name;
      if (rw.kept + rw.reverted > 0) {
        EXPECT_GT(rw.spec_batches, 0u) << name << " workers=" << w;
      }
      // Conflict accounting is never silent and never loses a candidate.
      EXPECT_EQ(rw.candidates_scored, rw.kept + rw.reverted)
          << name << " workers=" << w;
      EXPECT_GE(rw.spec_conflicts, rw.spec_rescored)
          << name << " workers=" << w;
    }
  }
}

TEST(SpeculateRewrite, VerifyFullModeStaysIdentical) {
  Netlist input = bench::dct_butterfly(6);
  Netlist a = input.clone();
  Netlist b = input.clone();
  RewriteOptions ro;
  ro.verify_full = true;
  ro.workers = 1;
  RewriteResult ra = rewrite_datapath(a, ro);
  ro.workers = 4;
  RewriteResult rb = rewrite_datapath(b, ro);
  EXPECT_EQ(structural_hash(a), structural_hash(b));
  EXPECT_EQ(ra.kept, rb.kept);
  EXPECT_EQ(ra.unsound, rb.unsound);
  EXPECT_EQ(ra.power_after_w, rb.power_after_w);
}

TEST(SpeculateRewrite, ChaosUnsoundHookFiresIdenticallyUnderConcurrency) {
  Netlist input = bench::dct_butterfly(6);
  Netlist a = input.clone();
  Netlist b = input.clone();
  logicopt::rewrite::detail::force_unsound_rewrites(2);
  RewriteResult ra = run_rewrite(a, 1);
  logicopt::rewrite::detail::force_unsound_rewrites(2);
  RewriteResult rb = run_rewrite(b, 4);
  logicopt::rewrite::detail::force_unsound_rewrites(0);
  // The hook is consumed at the commit point, in queue order — the same
  // candidate eats it at any worker count.
  EXPECT_EQ(ra.unsound, 1u);
  EXPECT_EQ(rb.unsound, 1u);
  EXPECT_EQ(structural_hash(a), structural_hash(b));
  EXPECT_EQ(ra.kept, rb.kept);
  EXPECT_EQ(ra.reverted, rb.reverted);
}

TEST(SpeculateRewrite, MidSpeculationFaultUnwindsToTheCallersEpoch) {
  Netlist net = bench::dct_butterfly(6);
  std::uint64_t h0 = structural_hash(net);
  net.begin_undo();  // the caller's (stage) epoch
  logicopt::rewrite::detail::force_throw_on_candidate(3);
  RewriteOptions ro;
  ro.workers = 4;
  EXPECT_THROW(rewrite_datapath(net, ro), std::runtime_error);
  logicopt::rewrite::detail::force_throw_on_candidate(0);
  // The engine died right after the 3rd candidate's epoch opened: the open
  // candidate epoch plus the caller's stage epoch are still on the stack,
  // exactly like the sequential engine's failure mode.
  EXPECT_EQ(net.undo_depth(), 2u);
  net.rollback_undo();
  net.rollback_undo();
  EXPECT_EQ(net.undo_depth(), 0u);
  EXPECT_EQ(structural_hash(net), h0);
  EXPECT_EQ(net.check(), "");
}

// ---- resynthesis identity -------------------------------------------------

TEST(SpeculateResynth, ResultsIdenticalAcrossWorkerCounts) {
  std::vector<bench::NamedNetlist> fam;
  fam.push_back({"alu4", bench::alu(4)});
  fam.push_back({"dct8", bench::dct_butterfly(8)});
  for (auto& [name, input] : fam) {
    auto st = sim::measure_activity(input, 64, 5);
    logicopt::ResynthOptions o1;
    o1.workers = 1;
    Netlist base = input.clone();
    auto r1 = logicopt::resynthesize_windows(base, st.transition_prob, o1);
    EXPECT_EQ(r1.spec_batches, 0u) << name;
    for (int w : {2, 4, 8}) {
      Netlist net = input.clone();
      logicopt::ResynthOptions ow;
      ow.workers = w;
      auto rw = logicopt::resynthesize_windows(net, st.transition_prob, ow);
      EXPECT_EQ(structural_hash(net), structural_hash(base))
          << name << " workers=" << w;
      EXPECT_EQ(rw.nodes_rewritten, r1.nodes_rewritten)
          << name << " workers=" << w;
      EXPECT_EQ(rw.windows_examined, r1.windows_examined)
          << name << " workers=" << w;
      EXPECT_EQ(rw.windows_capped, r1.windows_capped)
          << name << " workers=" << w;
      EXPECT_EQ(rw.rescored, r1.rescored) << name << " workers=" << w;
      EXPECT_EQ(rw.gates_after, r1.gates_after) << name << " workers=" << w;
      EXPECT_EQ(rw.workers_used, w) << name;
      if (rw.windows_examined > 0) {
        EXPECT_GT(rw.spec_batches, 0u) << name << " workers=" << w;
      }
      EXPECT_GE(rw.spec_conflicts, rw.spec_rescored)
          << name << " workers=" << w;
      // Still functionally the same circuit.
      EXPECT_TRUE(sim::equivalent_random(input, net, 128, 77))
          << name << " workers=" << w;
    }
  }
}

// ---- factoring comparison identity ----------------------------------------

TEST(SpeculateFactoring, MeasuredScoresIdenticalAcrossWorkerCounts) {
  auto f = sop::Sop::parse(6, "11---- + 1-1--- + --11-- + ---1-1 + 0----1");
  std::vector<double> probs{0.5, 0.9, 0.1, 0.5, 0.3, 0.7};
  auto c1 = logicopt::compare_factorings(f, probs, /*rescore=*/true,
                                         /*workers=*/1);
  auto c4 = logicopt::compare_factorings(f, probs, /*rescore=*/true,
                                         /*workers=*/4);
  EXPECT_EQ(c1.power_flat_w, c4.power_flat_w);
  EXPECT_EQ(c1.power_literal_w, c4.power_literal_w);
  EXPECT_EQ(c1.power_power_w, c4.power_power_w);
  EXPECT_EQ(c1.measured_winner, c4.measured_winner);
}

// ---- flow / pass plumbing -------------------------------------------------

TEST(SpeculateFlow, OptWorkersThreadsThroughTheCombinationalFlow) {
  Netlist input = bench::dct_butterfly(8);
  core::FlowOptions o1;
  o1.estimate_mode = power::ActivityMode::ZeroDelay;
  o1.opt_workers = 1;
  auto r1 = core::optimize_combinational(input, o1);
  core::FlowOptions o4 = o1;
  o4.opt_workers = 4;
  auto r4 = core::optimize_combinational(input, o4);
  EXPECT_EQ(structural_hash(r1.circuit), structural_hash(r4.circuit));
  ASSERT_EQ(r1.stages.size(), r4.stages.size());
  for (std::size_t i = 0; i < r1.stages.size(); ++i)
    EXPECT_EQ(r1.stages[i].status, r4.stages[i].status) << i;
}

TEST(SpeculatePass, PassManagerScopesTheWorkerDefault) {
  Netlist input = bench::dct_butterfly(6);
  Netlist a = input.clone();
  Netlist b = input.clone();
  core::PassManager::Options o1;
  core::PassManager pm1{o1};
  pm1.add(core::make_datapath_rewrite_pass());
  auto rec1 = pm1.run(a);
  core::PassManager::Options o4;
  o4.opt_workers = 4;
  core::PassManager pm4{o4};
  pm4.add(core::make_datapath_rewrite_pass());
  auto rec4 = pm4.run(b);
  // The scoped default must be restored after run().
  EXPECT_EQ(speculate::default_workers(), speculate::resolve_workers(0));
  ASSERT_EQ(rec1.size(), 1u);
  ASSERT_EQ(rec4.size(), 1u);
  EXPECT_TRUE(rec1[0].ok);
  EXPECT_TRUE(rec4[0].ok);
  EXPECT_EQ(structural_hash(a), structural_hash(b));
}

}  // namespace
