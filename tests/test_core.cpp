// Core facade tests: pass manager, reporting, end-to-end flows.

#include <gtest/gtest.h>

#include <sstream>

#include "core/flows.hpp"
#include "core/pass.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "seq/stg.hpp"
#include "sim/logicsim.hpp"

namespace lps::core {
namespace {

TEST(PassManager, RunsAndVerifies) {
  auto net = bench::carry_select_adder(8, 2);
  PassManager pm(/*verify=*/true);
  pm.add(make_strash_pass());
  pm.add(make_sweep_pass());
  pm.add(make_dontcare_pass());
  pm.add(make_balance_pass());
  auto records = pm.run(net);
  ASSERT_EQ(records.size(), 4u);
  for (const auto& r : records) {
    EXPECT_TRUE(r.verified) << r.pass;
    EXPECT_FALSE(r.summary.empty()) << r.pass;
  }
  EXPECT_EQ(net.check(), "");
}

TEST(PassManager, RollsBackFunctionBreakingPassAndContinues) {
  auto net = bench::c17();
  auto golden = net.clone();
  PassManager pm(true);
  pm.add(make_strash_pass());
  pm.add("saboteur", [](Netlist& n) {
    // Flip an output by inserting an inverter.
    NodeId out = n.outputs()[0];
    NodeId inv = n.add_not(out);
    n.substitute(out, inv);
    // substitute() would also rewire the inverter's own fanin; repair the
    // self-loop it creates by reconnecting to a PI: deliberately broken
    // logic is fine, we just need a function change.
    return std::string("flipped an output");
  });
  pm.add(make_sweep_pass());
  auto records = pm.run(net);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].ok);
  EXPECT_FALSE(records[1].ok);
  EXPECT_TRUE(records[1].rolled_back);
  EXPECT_NE(records[1].diag.message.find("saboteur"), std::string::npos);
  // The broken pass was contained: later passes still ran and the final
  // circuit is equivalent to the input.
  EXPECT_TRUE(records[2].ok);
  EXPECT_FALSE(all_ok(records));
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(sim::equivalent_random(golden, net, 1024, 99));
}

TEST(PassManager, StrictModeStillThrows) {
  auto net = bench::c17();
  PassManager::Options opt;
  opt.rollback = false;
  PassManager pm(opt);
  pm.add("saboteur", [](Netlist& n) {
    NodeId out = n.outputs()[0];
    NodeId inv = n.add_not(out);
    n.substitute(out, inv);
    return std::string("flipped an output");
  });
  EXPECT_THROW(pm.run(net), diag::CheckError);
}

TEST(PassManager, RollsBackThrowingPass) {
  auto net = bench::c17();
  auto golden = net.clone();
  PassManager pm(true);
  pm.add("bomb", [](Netlist& n) -> std::string {
    n.add_not(n.outputs()[0]);  // half-done rewrite, then...
    throw std::runtime_error("boom");
  });
  pm.add(make_strash_pass());
  auto records = pm.run(net);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_TRUE(records[0].rolled_back);
  EXPECT_NE(records[0].diag.message.find("boom"), std::string::npos);
  EXPECT_TRUE(records[1].ok);
  EXPECT_TRUE(sim::equivalent_random(golden, net, 1024, 99));
}

TEST(Report, TableAligns) {
  Table t({"circuit", "power"});
  t.row({"c17", Table::num(1.5)});
  t.row({"a-very-long-name", Table::pct(0.123)});
  std::ostringstream os;
  t.print(os);
  auto s = os.str();
  EXPECT_NE(s.find("c17"), std::string::npos);
  EXPECT_NE(s.find("12.3%"), std::string::npos);
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Flows, CombinationalFlowNeverHurtsAndUsuallySaves) {
  auto net = bench::array_multiplier(4);
  FlowOptions opt;
  opt.sim_vectors = 512;
  auto r = optimize_combinational(net, opt);
  ASSERT_GE(r.stages.size(), 4u);
  // The flow measures each stage and reverts losers, so the result can
  // never be worse than the strash baseline; on a glitch-heavy multiplier
  // it should strictly improve.
  EXPECT_GE(r.saving(), 0.0);
  EXPECT_TRUE(sim::equivalent_random(net, r.circuit, 256, 3));
  double glitch_in = r.stages.front().glitch_fraction;
  double glitch_out = r.stages.back().glitch_fraction;
  EXPECT_LE(glitch_out, glitch_in + 1e-9);
}

TEST(Flows, StagesAreLabelled) {
  auto net = bench::comparator_gt(6);
  FlowOptions opt;
  opt.sim_vectors = 256;
  opt.run_sizing = false;
  auto r = optimize_combinational(net, opt);
  EXPECT_EQ(r.stages.front().stage, "input");
  EXPECT_EQ(r.stages[1].stage, "strash");
}

TEST(Flows, FsmFlowImprovesSwitching) {
  auto stg = seq::counter_fsm(12);
  FlowOptions opt;
  opt.sim_vectors = 512;
  auto r = optimize_fsm(stg, opt);
  EXPECT_LT(r.wswitch_lowpower, r.wswitch_binary);
  EXPECT_GT(r.clock_saving_fraction, -1.0);  // defined
  EXPECT_EQ(r.circuit.check(), "");
}

}  // namespace
}  // namespace lps::core
