// Core facade tests: pass manager, reporting, end-to-end flows.

#include <gtest/gtest.h>

#include <sstream>

#include "core/flows.hpp"
#include "core/pass.hpp"
#include "core/report.hpp"
#include "netlist/benchmarks.hpp"
#include "seq/stg.hpp"
#include "sim/logicsim.hpp"

namespace lps::core {
namespace {

TEST(PassManager, RunsAndVerifies) {
  auto net = bench::carry_select_adder(8, 2);
  PassManager pm(/*verify=*/true);
  pm.add(make_strash_pass());
  pm.add(make_sweep_pass());
  pm.add(make_dontcare_pass());
  pm.add(make_balance_pass());
  auto records = pm.run(net);
  ASSERT_EQ(records.size(), 4u);
  for (const auto& r : records) {
    EXPECT_TRUE(r.verified) << r.pass;
    EXPECT_FALSE(r.summary.empty()) << r.pass;
  }
  EXPECT_EQ(net.check(), "");
}

TEST(PassManager, RollsBackFunctionBreakingPassAndContinues) {
  auto net = bench::c17();
  auto golden = net.clone();
  PassManager pm(true);
  pm.add(make_strash_pass());
  pm.add("saboteur", [](Netlist& n) {
    // Flip an output by inserting an inverter.
    NodeId out = n.outputs()[0];
    NodeId inv = n.add_not(out);
    n.substitute(out, inv);
    // substitute() would also rewire the inverter's own fanin; repair the
    // self-loop it creates by reconnecting to a PI: deliberately broken
    // logic is fine, we just need a function change.
    return std::string("flipped an output");
  });
  pm.add(make_sweep_pass());
  auto records = pm.run(net);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].ok);
  EXPECT_FALSE(records[1].ok);
  EXPECT_TRUE(records[1].rolled_back);
  EXPECT_NE(records[1].diag.message.find("saboteur"), std::string::npos);
  // The broken pass was contained: later passes still ran and the final
  // circuit is equivalent to the input.
  EXPECT_TRUE(records[2].ok);
  EXPECT_FALSE(all_ok(records));
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(sim::equivalent_random(golden, net, 1024, 99));
}

TEST(PassManager, StrictModeStillThrows) {
  auto net = bench::c17();
  PassManager::Options opt;
  opt.rollback = false;
  PassManager pm(opt);
  pm.add("saboteur", [](Netlist& n) {
    NodeId out = n.outputs()[0];
    NodeId inv = n.add_not(out);
    n.substitute(out, inv);
    return std::string("flipped an output");
  });
  EXPECT_THROW(pm.run(net), diag::CheckError);
}

TEST(PassManager, RollsBackThrowingPass) {
  auto net = bench::c17();
  auto golden = net.clone();
  PassManager pm(true);
  pm.add("bomb", [](Netlist& n) -> std::string {
    n.add_not(n.outputs()[0]);  // half-done rewrite, then...
    throw std::runtime_error("boom");
  });
  pm.add(make_strash_pass());
  auto records = pm.run(net);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_TRUE(records[0].rolled_back);
  EXPECT_NE(records[0].diag.message.find("boom"), std::string::npos);
  EXPECT_TRUE(records[1].ok);
  EXPECT_TRUE(sim::equivalent_random(golden, net, 1024, 99));
}

TEST(Report, TableAligns) {
  Table t({"circuit", "power"});
  t.row({"c17", Table::num(1.5)});
  t.row({"a-very-long-name", Table::pct(0.123)});
  std::ostringstream os;
  t.print(os);
  auto s = os.str();
  EXPECT_NE(s.find("c17"), std::string::npos);
  EXPECT_NE(s.find("12.3%"), std::string::npos);
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Report, NumGoldenStrings) {
  EXPECT_EQ(Table::num(1.5), "1.500");
  EXPECT_EQ(Table::num(1.5, 1), "1.5");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.25, 2), "-0.25");
  EXPECT_EQ(Table::num(0.1234, 2), "0.12");
  EXPECT_EQ(Table::num(1234.5678, 1), "1234.6");
  EXPECT_EQ(Table::num(0.0, 3), "0.000");
}

TEST(Report, PctGoldenStrings) {
  EXPECT_EQ(Table::pct(0.123), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 2), "100.00%");
  EXPECT_EQ(Table::pct(-0.05, 0), "-5%");
  EXPECT_EQ(Table::pct(0.0), "0.0%");
  EXPECT_EQ(Table::pct(0.004, 1), "0.4%");
}

TEST(Report, PrintPadsMixedWidthCellsToEqualLineLengths) {
  Table t({"x", "a-much-wider-header"});
  t.row({"short", "1"});
  t.row({"a-longer-cell-than-header", "22.5"});
  std::ostringstream os;
  t.print(os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    // Cell rows end "| ", the separator row ends "|"; compare modulo
    // trailing whitespace.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "misaligned row: " << line;
  }
  EXPECT_GT(width, 0u);
}

// saving() must be computed against the last *kept* stage — a trailing
// reverted or failed stage reports the power of the circuit that was rolled
// back, not the circuit the flow returns.
TEST(Flows, SavingIgnoresTrailingRevertedStage) {
  FlowResult r;
  r.stages.push_back({"input", 10e-6, 0.0, 20, 8, "kept", ""});
  r.stages.push_back({"strash", 8e-6, 0.0, 18, 8, "kept", ""});
  r.stages.push_back({"resynth", 12e-6, 0.0, 18, 8, "reverted", ""});
  ASSERT_NE(r.last_kept_stage(), nullptr);
  EXPECT_EQ(r.last_kept_stage()->stage, "strash");
  EXPECT_NEAR(r.saving(), 0.2, 1e-12);
}

TEST(Flows, SavingIgnoresTrailingFailedStage) {
  FlowResult r;
  r.stages.push_back({"input", 10e-6, 0.0, 20, 8, "kept", ""});
  r.stages.push_back({"balance", 7e-6, 0.0, 20, 6, "kept", ""});
  r.stages.push_back({"sizing", 10e-6, 0.0, 20, 6, "failed", "threw"});
  EXPECT_NEAR(r.saving(), 0.3, 1e-12);
}

TEST(Flows, SavingIsZeroWithoutAKeptStageOrBaseline) {
  FlowResult all_reverted;
  all_reverted.stages.push_back({"input", 10e-6, 0.0, 20, 8, "reverted", ""});
  all_reverted.stages.push_back({"strash", 12e-6, 0.0, 20, 8, "reverted", ""});
  EXPECT_EQ(all_reverted.last_kept_stage(), nullptr);
  EXPECT_EQ(all_reverted.saving(), 0.0);

  FlowResult zero_baseline;
  zero_baseline.stages.push_back({"input", 0.0, 0.0, 0, 0, "kept", ""});
  zero_baseline.stages.push_back({"strash", 0.0, 0.0, 0, 0, "kept", ""});
  EXPECT_EQ(zero_baseline.saving(), 0.0);

  FlowResult too_short;
  too_short.stages.push_back({"input", 10e-6, 0.0, 20, 8, "kept", ""});
  EXPECT_EQ(too_short.saving(), 0.0);
}

TEST(Flows, RealFlowStagesCarryAStatus) {
  auto net = bench::array_multiplier(4);
  FlowOptions opt;
  opt.sim_vectors = 256;
  auto r = optimize_combinational(net, opt);
  for (const auto& s : r.stages) {
    EXPECT_TRUE(s.status == "kept" || s.status == "reverted" ||
                s.status == "failed")
        << s.stage << " has status '" << s.status << "'";
  }
  EXPECT_EQ(r.stages.front().status, "kept");  // input row is the baseline
}

TEST(Flows, CombinationalFlowNeverHurtsAndUsuallySaves) {
  auto net = bench::array_multiplier(4);
  FlowOptions opt;
  opt.sim_vectors = 512;
  auto r = optimize_combinational(net, opt);
  ASSERT_GE(r.stages.size(), 4u);
  // The flow measures each stage and reverts losers, so the result can
  // never be worse than the strash baseline; on a glitch-heavy multiplier
  // it should strictly improve.
  EXPECT_GE(r.saving(), 0.0);
  EXPECT_TRUE(sim::equivalent_random(net, r.circuit, 256, 3));
  double glitch_in = r.stages.front().glitch_fraction;
  double glitch_out = r.stages.back().glitch_fraction;
  EXPECT_LE(glitch_out, glitch_in + 1e-9);
}

TEST(Flows, StagesAreLabelled) {
  auto net = bench::comparator_gt(6);
  FlowOptions opt;
  opt.sim_vectors = 256;
  opt.run_sizing = false;
  auto r = optimize_combinational(net, opt);
  EXPECT_EQ(r.stages.front().stage, "input");
  EXPECT_EQ(r.stages[1].stage, "strash");
}

TEST(Flows, FsmFlowImprovesSwitching) {
  auto stg = seq::counter_fsm(12);
  FlowOptions opt;
  opt.sim_vectors = 512;
  auto r = optimize_fsm(stg, opt);
  EXPECT_LT(r.wswitch_lowpower, r.wswitch_binary);
  EXPECT_GT(r.clock_saving_fraction, -1.0);  // defined
  EXPECT_EQ(r.circuit.check(), "");
}

}  // namespace
}  // namespace lps::core
