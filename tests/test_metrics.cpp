// Metrics registry tests: counters, gauges, stage traces, timers, JSON.
//
// The registry is process-global, so every test starts from metrics::reset()
// and only asserts on names it owns.

#include <gtest/gtest.h>

#include <string>

#include "core/metrics.hpp"

namespace lps::core::metrics {
namespace {

TEST(Metrics, CountersAccumulateAndDefaultToZero) {
  reset();
  EXPECT_EQ(value("t.never_touched"), 0.0);
  count("t.counter");
  count("t.counter", 2.5);
  EXPECT_DOUBLE_EQ(value("t.counter"), 3.5);
  auto snap = Registry::global().counters();
  ASSERT_EQ(snap.count("t.counter"), 1u);
  EXPECT_DOUBLE_EQ(snap.at("t.counter"), 3.5);
  // An untouched counter is not materialized by reading it.
  EXPECT_EQ(snap.count("t.never_touched"), 0u);
}

TEST(Metrics, GaugeOverwritesInsteadOfAccumulating) {
  reset();
  gauge("t.gauge", 7.0);
  gauge("t.gauge", 2.0);
  EXPECT_DOUBLE_EQ(value("t.gauge"), 2.0);
  count("t.gauge", 1.0);  // counters and gauges share the namespace
  EXPECT_DOUBLE_EQ(value("t.gauge"), 3.0);
}

TEST(Metrics, RecordStageKeepsOrderAndFeedsTimeCounter) {
  reset();
  Registry::global().record_stage("strash", 1.5);
  Registry::global().record_stage("balance", 0.5);
  Registry::global().record_stage("strash", 2.0);
  auto stages = Registry::global().stages();
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].name, "strash");
  EXPECT_EQ(stages[1].name, "balance");
  EXPECT_EQ(stages[2].name, "strash");
  EXPECT_DOUBLE_EQ(stages[2].wall_ms, 2.0);
  EXPECT_DOUBLE_EQ(value("time_ms.strash"), 3.5);
  EXPECT_DOUBLE_EQ(value("time_ms.balance"), 0.5);
}

TEST(Metrics, ScopedTimerPublishesOnDestruction) {
  reset();
  {
    ScopedTimer t("t.region", /*trace=*/true);
  }
  auto snap = Registry::global().counters();
  ASSERT_EQ(snap.count("time_ms.t.region"), 1u);
  EXPECT_GE(snap.at("time_ms.t.region"), 0.0);
  auto stages = Registry::global().stages();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].name, "t.region");
}

TEST(Metrics, ScopedTimerWithoutTraceSkipsStageList) {
  reset();
  {
    ScopedTimer t("t.quiet");
  }
  EXPECT_EQ(Registry::global().counters().count("time_ms.t.quiet"), 1u);
  EXPECT_TRUE(Registry::global().stages().empty());
}

TEST(Metrics, ToJsonCarriesCountersAndStages) {
  reset();
  count("t.alpha", 2.0);
  std::string no_stages = Registry::global().to_json();
  EXPECT_NE(no_stages.find("\"counters\""), std::string::npos);
  EXPECT_NE(no_stages.find("\"t.alpha\""), std::string::npos);
  EXPECT_EQ(no_stages.find("\"stages\""), std::string::npos);

  Registry::global().record_stage("strash", 1.25);
  std::string with_stages = Registry::global().to_json();
  EXPECT_NE(with_stages.find("\"stages\""), std::string::npos);
  EXPECT_NE(with_stages.find("\"strash\""), std::string::npos);
  EXPECT_NE(with_stages.find("\"wall_ms\""), std::string::npos);
}

TEST(Metrics, ResetClearsEverything) {
  reset();
  count("t.x", 4.0);
  Registry::global().record_stage("s", 1.0);
  reset();
  EXPECT_EQ(value("t.x"), 0.0);
  EXPECT_TRUE(Registry::global().counters().empty());
  EXPECT_TRUE(Registry::global().stages().empty());
}

}  // namespace
}  // namespace lps::core::metrics
