// Transistor-level tests: switch networks, reordering (§II-A), sizing
// (§II-B).

#include <gtest/gtest.h>

#include "circuit/complex_gate.hpp"
#include "circuit/reordering.hpp"
#include "circuit/sizing.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "sim/logicsim.hpp"

namespace lps::circuit {
namespace {

SwitchNet aoi_pulldown() {
  // f = !((a+b)·c): pulldown (a+b) in series with c.
  return SwitchNet::series({SwitchNet::parallel({SwitchNet::leaf(0),
                                                 SwitchNet::leaf(1)}),
                            SwitchNet::leaf(2)});
}

TEST(SwitchNet, Conducts) {
  auto net = aoi_pulldown();
  bool v1[] = {true, false, true};
  EXPECT_TRUE(net.conducts({v1, 3}));
  bool v2[] = {true, true, false};
  EXPECT_FALSE(net.conducts({v2, 3}));
  bool v3[] = {false, false, true};
  EXPECT_FALSE(net.conducts({v3, 3}));
  EXPECT_EQ(net.num_transistors(), 3);
  EXPECT_EQ(net.to_string(), "(a+b)c");
}

TEST(ComplexGate, EvalIsInvertedPulldown) {
  ComplexGate g(3, aoi_pulldown());
  for (int m = 0; m < 8; ++m) {
    bool v[3] = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    bool pdn = (v[0] || v[1]) && v[2];
    EXPECT_EQ(g.eval({v, 3}), !pdn);
  }
}

TEST(ComplexGate, InternalNodeCount) {
  // Series of 3 leaves -> 2 internal nodes.
  ComplexGate chain(3, SwitchNet::series({SwitchNet::leaf(0),
                                          SwitchNet::leaf(1),
                                          SwitchNet::leaf(2)}));
  EXPECT_EQ(chain.num_internal_nodes(), 2);
  // Parallel-only -> none.
  ComplexGate par(2, SwitchNet::parallel({SwitchNet::leaf(0),
                                          SwitchNet::leaf(1)}));
  EXPECT_EQ(par.num_internal_nodes(), 0);
}

TEST(ComplexGate, EnergyDependsOnSeriesOrder) {
  // 3-input NAND chain with one very active input: placing the active
  // transistor at the bottom exposes more internal capacitance switching
  // than placing it at the top.
  SwitchNet active_top = SwitchNet::series(
      {SwitchNet::leaf(0), SwitchNet::leaf(1), SwitchNet::leaf(2)});
  SwitchNet active_bottom = SwitchNet::series(
      {SwitchNet::leaf(2), SwitchNet::leaf(1), SwitchNet::leaf(0)});
  ComplexGate top(3, active_top), bottom(3, active_bottom);
  // Input 0 toggles wildly (p=0.5); inputs 1,2 are nearly static at 1.
  double probs[] = {0.5, 0.95, 0.95};
  double e_top = top.average_energy_fj({probs, 3});
  double e_bottom = bottom.average_energy_fj({probs, 3});
  EXPECT_NE(e_top, e_bottom);
}

TEST(ComplexGate, DelayPrefersLateInputNearOutput) {
  SwitchNet late_top = SwitchNet::series(
      {SwitchNet::leaf(0), SwitchNet::leaf(1), SwitchNet::leaf(2)});
  SwitchNet late_bottom = SwitchNet::series(
      {SwitchNet::leaf(2), SwitchNet::leaf(1), SwitchNet::leaf(0)});
  // Input 0 arrives late.
  double arr[] = {10.0, 0.0, 0.0};
  ComplexGate a(3, late_top), b(3, late_bottom);
  EXPECT_LT(a.worst_delay({arr, 3}), b.worst_delay({arr, 3}));
}

TEST(Reorder, FindsNoWorseOrdering) {
  ComplexGate g(3, SwitchNet::series({SwitchNet::leaf(0), SwitchNet::leaf(1),
                                      SwitchNet::leaf(2)}));
  double probs[] = {0.5, 0.9, 0.1};
  double arr[] = {0.0, 3.0, 1.0};
  for (auto obj : {Objective::Power, Objective::Delay,
                   Objective::PowerDelayProduct}) {
    auto r = reorder(g, {probs, 3}, {arr, 3}, obj);
    if (obj == Objective::Power) {
      EXPECT_LE(r.energy_after_fj, r.energy_before_fj);
    }
    if (obj == Objective::Delay) {
      EXPECT_LE(r.delay_after, r.delay_before);
    }
  }
}

TEST(Reorder, DelayObjectivePlacesLateInputAtTop) {
  ComplexGate g(4, SwitchNet::series(
                       {SwitchNet::leaf(0), SwitchNet::leaf(1),
                        SwitchNet::leaf(2), SwitchNet::leaf(3)}));
  double probs[] = {0.5, 0.5, 0.5, 0.5};
  double arr[] = {0.0, 0.0, 9.0, 0.0};  // input 2 arrives very late
  auto r = reorder(g, {probs, 4}, {arr, 4}, Objective::Delay);
  // Best ordering puts leaf 2 first (closest to the output).
  ASSERT_EQ(r.best_pulldown.kind, SwitchNet::Kind::Series);
  EXPECT_EQ(r.best_pulldown.kids[0].input, 2);
  EXPECT_LT(r.delay_after, r.delay_before);
}

TEST(Sizing, MeetsDelayBudgetAndCutsCap) {
  auto net = bench::ripple_carry_adder(8);
  power::AnalysisOptions ao;
  ao.n_vectors = 256;
  auto a = power::analyze(net, ao);
  SizingParams sp;
  sp.delay_budget_factor = 1.2;
  auto r = size_for_power(net, a.toggles_per_cycle, {}, sp);
  EXPECT_LE(r.delay_after, r.delay_budget * (1 + 1e-9));
  EXPECT_LT(r.cap_after_ff, r.cap_before_ff);
  EXPECT_GT(r.downsizing_moves, 0);
  // Off-critical gates should reach minimum size somewhere.
  bool some_min = false, some_big = false;
  for (NodeId id = 0; id < net.size(); ++id) {
    if (net.is_dead(id)) continue;
    const Node& nd = net.node(id);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    if (nd.size <= sp.min_size + 1e-9) some_min = true;
    if (nd.size >= sp.min_size + sp.step) some_big = true;
  }
  EXPECT_TRUE(some_min);
  EXPECT_TRUE(some_big);
}

TEST(Sizing, TighterBudgetKeepsMoreDrive) {
  auto net1 = bench::carry_select_adder(8, 2);
  auto net2 = net1.clone();
  power::AnalysisOptions ao;
  ao.n_vectors = 256;
  auto tg = power::analyze(net1, ao).toggles_per_cycle;
  SizingParams tight;
  tight.delay_budget_factor = 1.0;
  SizingParams loose;
  loose.delay_budget_factor = 1.5;
  auto r1 = size_for_power(net1, tg, {}, tight);
  auto r2 = size_for_power(net2, tg, {}, loose);
  EXPECT_LE(r2.cap_after_ff, r1.cap_after_ff + 1e-9);
}

TEST(Sizing, FunctionUntouched) {
  auto net = bench::comparator_gt(8);
  auto golden = net.clone();
  power::AnalysisOptions ao;
  ao.n_vectors = 128;
  auto tg = power::analyze(net, ao).toggles_per_cycle;
  size_for_power(net, tg);
  EXPECT_TRUE(sim::equivalent_random(golden, net, 128, 3));
}

}  // namespace
}  // namespace lps::circuit
