// test_simd.cpp — SIMD-width dispatch differential suite.
//
// The contract under test (sim/simd.hpp + sim/kernels_impl.hpp): the lane
// width is a pure performance knob.  Every kernel build — scalar, AVX2,
// AVX-512 — must produce bit-identical frames and activity counters at
// every blocking factor and thread count, on compact and on patched tapes,
// through the full-analysis and the incremental cone paths.  The suite
// runs the full width × block × thread matrix against the interpreted
// engine's reference counters, plus unit coverage for the dispatch
// machinery itself (resolve/clamp, LPS_SIM_WIDTH parsing, aligned
// storage, pinning/first-touch policy knobs, chunk-grain planning).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/aligned.hpp"
#include "core/env.hpp"
#include "core/parallel.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "power/incremental.hpp"
#include "sim/compiled.hpp"
#include "sim/logicsim.hpp"
#include "sim/simd.hpp"

namespace {

using namespace lps;

// Widths this binary can actually execute on this machine: a width is
// runnable exactly when resolve_simd() maps it to itself.  Scalar always
// qualifies, so the matrix below is never empty on any host.
std::vector<sim::SimdWidth> runnable_widths() {
  std::vector<sim::SimdWidth> w{sim::SimdWidth::Scalar};
  if (sim::resolve_simd(sim::SimdWidth::Avx2) == sim::SimdWidth::Avx2)
    w.push_back(sim::SimdWidth::Avx2);
  if (sim::resolve_simd(sim::SimdWidth::Avx512) == sim::SimdWidth::Avx512)
    w.push_back(sim::SimdWidth::Avx512);
  return w;
}

sim::SimOptions tape_opts(sim::SimdWidth w, std::size_t block) {
  sim::SimOptions o;
  o.use_compiled = true;
  o.block = block;
  o.width = w;
  return o;
}

void expect_stats_identical(const sim::ActivityStats& a,
                            const sim::ActivityStats& b,
                            const std::string& what) {
  ASSERT_EQ(a.patterns, b.patterns) << what;
  ASSERT_EQ(a.signal_prob.size(), b.signal_prob.size()) << what;
  for (std::size_t i = 0; i < a.signal_prob.size(); ++i) {
    ASSERT_EQ(a.signal_prob[i], b.signal_prob[i]) << what << " node " << i;
    ASSERT_EQ(a.transition_prob[i], b.transition_prob[i])
        << what << " node " << i;
  }
}

// ---- dispatch machinery ---------------------------------------------------

TEST(Simd, ResolveClampsToDetected) {
  sim::SimdWidth det = sim::detect_simd();
  EXPECT_NE(det, sim::SimdWidth::Auto);
  EXPECT_EQ(sim::resolve_simd(sim::SimdWidth::Auto), det);
  EXPECT_EQ(sim::resolve_simd(det), det);
  // Scalar is always honored verbatim; wider-than-detected requests
  // degrade to detected rather than executing unsupported instructions.
  EXPECT_EQ(sim::resolve_simd(sim::SimdWidth::Scalar),
            sim::SimdWidth::Scalar);
  EXPECT_LE(static_cast<int>(sim::resolve_simd(sim::SimdWidth::Avx512)),
            static_cast<int>(det));
  EXPECT_TRUE(sim::simd_compiled(sim::SimdWidth::Scalar));
  EXPECT_TRUE(sim::simd_compiled(det));
}

TEST(Simd, LaneWordsMatchWidth) {
  EXPECT_EQ(sim::simd_lane_words(sim::SimdWidth::Scalar), 1u);
  for (sim::SimdWidth w : runnable_widths()) {
    std::size_t words = sim::simd_lane_words(w);
    if (w == sim::SimdWidth::Avx2) { EXPECT_EQ(words, 4u); }
    if (w == sim::SimdWidth::Avx512) { EXPECT_EQ(words, 8u); }
  }
}

TEST(Simd, EngineDescReflectsOptions) {
  {
    sim::ScopedSimOptions guard(tape_opts(sim::SimdWidth::Scalar, 4));
    EXPECT_EQ(sim::engine_desc(), "tape[scalar,b4]");
  }
  {
    sim::SimOptions o;
    o.use_compiled = false;
    sim::ScopedSimOptions guard(o);
    EXPECT_EQ(sim::engine_desc(), "interp");
  }
  {
    sim::ScopedSimOptions guard(tape_opts(sim::SimdWidth::Auto, 16));
    std::string d = sim::engine_desc();
    EXPECT_EQ(d, std::string("tape[") +
                     sim::simd_name(sim::detect_simd()) + ",b16]");
  }
}

TEST(Simd, WidthKnobParses) {
  const char* const kWidths[] = {"scalar", "avx2", "avx512", "auto"};
  auto r = core::parse_env_choice("LPS_SIM_WIDTH", "avx2", kWidths, 4, 3);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.present);
  EXPECT_EQ(r.value, 1);
  r = core::parse_env_choice("LPS_SIM_WIDTH", nullptr, kWidths, 4, 3);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.present);
  EXPECT_EQ(r.value, 3);
  // Rejected spellings fall back to the default with a positioned
  // diagnostic naming the accepted choices.
  r = core::parse_env_choice("LPS_SIM_WIDTH", "AVX2", kWidths, 4, 3);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.value, 3);
  EXPECT_EQ(r.status.diagnostic().loc.file, "$LPS_SIM_WIDTH");
  EXPECT_NE(r.status.message().find("avx512"), std::string::npos);
  r = core::parse_env_choice("LPS_SIM_WIDTH", "", kWidths, 4, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.value, 0);
}

// ---- aligned storage ------------------------------------------------------

TEST(Simd, AlignedWordsAlignmentAndSemantics) {
  core::AlignedWords w;
  EXPECT_TRUE(w.empty());
  w.assign(5, 7);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % 64, 0u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(w[i], 7u);
  // resize preserves surviving words and zero-fills growth.
  w.resize(130);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % 64, 0u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(w[i], 7u);
  for (std::size_t i = 5; i < 130; ++i) EXPECT_EQ(w[i], 0u);
  // repeated same-size assigns must not reallocate (per-chunk reuse).
  const std::uint64_t* p = w.data();
  w.assign(130, 1);
  EXPECT_EQ(w.data(), p);
  // move steals the buffer.
  core::AlignedWords v = std::move(w);
  EXPECT_EQ(v.data(), p);
  EXPECT_EQ(v.size(), 130u);
  for (std::uint64_t x : v) EXPECT_EQ(x, 1u);
}

// ---- locality knobs -------------------------------------------------------

TEST(Simd, PlanChunksOversubscribesLanes) {
  core::ScopedThreads t4(4);
  EXPECT_EQ(core::plan_chunks(64), 8u);  // 2 chunks per lane
  EXPECT_EQ(core::plan_chunks(3), 3u);   // capped by the shard count
  EXPECT_EQ(core::plan_chunks(0), 1u);
  core::ScopedThreads t1(1);
  EXPECT_EQ(core::plan_chunks(64), 1u);  // serial stays serial
}

TEST(Simd, PinningAndFirstTouchKnobsRoundTrip) {
  bool pin0 = core::pin_threads();
  bool numa0 = core::numa_first_touch();
  {
    core::ScopedPinning guard(!pin0, !numa0);
    EXPECT_EQ(core::pin_threads(), !pin0);
    EXPECT_EQ(core::numa_first_touch(), !numa0);
  }
  EXPECT_EQ(core::pin_threads(), pin0);
  EXPECT_EQ(core::numa_first_touch(), numa0);
}

TEST(Simd, PlacementPolicyNeverChangesResults) {
  // Pinned + first-touch vs unpinned + caller-touch, at several thread
  // counts: placement is a pure locality policy, counters must be
  // bit-identical (and equal to the interpreted reference).
  auto net = bench::alu(4);
  sim::ActivityStats ref;
  {
    sim::SimOptions o;
    o.use_compiled = false;
    sim::ScopedSimOptions guard(o);
    core::ScopedThreads t1(1);
    ref = sim::measure_activity(net, 512, 99);
  }
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (bool pin : {false, true}) {
      for (bool numa : {false, true}) {
        core::ScopedThreads t(threads);
        core::ScopedPinning place(pin, numa);
        sim::ScopedSimOptions guard(tape_opts(sim::SimdWidth::Auto, 16));
        auto st = sim::measure_activity(net, 512, 99);
        expect_stats_identical(ref, st,
                               "threads=" + std::to_string(threads) +
                                   " pin=" + std::to_string(pin) +
                                   " numa=" + std::to_string(numa));
      }
    }
  }
}

// ---- the width × block × thread matrix ------------------------------------

TEST(Simd, MatrixIdenticalToInterpreterOnSuite) {
  // Every runnable width × block {1,4,16} × threads {1,2,4,8} over the
  // benchmark suite must reproduce the interpreted single-thread counters
  // exactly.  The reference is computed once per circuit.
  auto suite = bench::default_suite();
  const std::size_t frames = 192;
  for (auto& [name, net] : suite) {
    sim::ActivityStats ref;
    {
      sim::SimOptions o;
      o.use_compiled = false;
      sim::ScopedSimOptions guard(o);
      core::ScopedThreads t1(1);
      ref = sim::measure_activity(net, frames, 0xD15C0 + net.size());
    }
    for (sim::SimdWidth w : runnable_widths()) {
      for (std::size_t block : {std::size_t{1}, std::size_t{4},
                                std::size_t{16}}) {
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
          core::ScopedThreads t(threads);
          sim::ScopedSimOptions guard(tape_opts(w, block));
          auto st = sim::measure_activity(net, frames, 0xD15C0 + net.size());
          expect_stats_identical(
              ref, st,
              name + " width=" + sim::simd_name(w) +
                  " block=" + std::to_string(block) +
                  " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

TEST(Simd, ForcedScalarEqualsAutoOnWideHosts) {
  // On a host with AVX kernels, forcing LPS_SIM_WIDTH=scalar must change
  // nothing but the code path — the scalar-forcing CI leg depends on it.
  auto net = bench::array_multiplier(8);
  sim::ActivityStats wide, scalar;
  {
    sim::ScopedSimOptions guard(tape_opts(sim::SimdWidth::Auto, 16));
    wide = sim::measure_activity(net, 256, 5);
  }
  {
    sim::ScopedSimOptions guard(tape_opts(sim::SimdWidth::Scalar, 16));
    scalar = sim::measure_activity(net, 256, 5);
  }
  expect_stats_identical(wide, scalar, "auto vs forced scalar");
}

TEST(Simd, SequentialNetsIdenticalAcrossWidths) {
  // Sequential streams run block 1 (widths then fall through to the
  // scalar/narrow instantiations inside each kernel build) — the counters
  // must still match the interpreter at every width.
  auto net = bench::counter(16);
  sim::ActivityStats ref;
  {
    sim::SimOptions o;
    o.use_compiled = false;
    sim::ScopedSimOptions guard(o);
    ref = sim::measure_activity(net, 256, 21);
  }
  for (sim::SimdWidth w : runnable_widths()) {
    sim::ScopedSimOptions guard(tape_opts(w, 16));
    auto st = sim::measure_activity(net, 256, 21);
    expect_stats_identical(ref, st, std::string("width=") + sim::simd_name(w));
  }
}

// ---- patched tapes under wide kernels -------------------------------------

Netlist::TouchedNodes splice_po_driver(Netlist& net) {
  net.begin_undo();
  NodeId o = net.outputs()[0];
  net.replace_fanin(o, 0, net.add_not(net.add_not(net.node(o).fanins[0])));
  auto touched = net.touched_nodes();
  net.commit_undo();
  return touched;
}

TEST(Simd, PatchedTapeExecGatesIdenticalAcrossWidths) {
  // update() re-emits records at the tape's end; the offset-table replay
  // (exec_list kernels, with their lookahead prefetch) must evaluate the
  // patched program identically at every width and block factor.
  for (sim::SimdWidth w : runnable_widths()) {
    auto net = bench::alu(4);
    sim::ScopedSimOptions guard(tape_opts(w, 8));
    sim::CompiledSim cs(net);
    auto touched = splice_po_driver(net);
    cs.update(touched);
    ASSERT_FALSE(cs.compact());
    sim::LogicSim ref(net);
    std::mt19937_64 rng(3);
    std::vector<std::uint64_t> pi(net.inputs().size());
    sim::Frame fa, fb;
    for (int round = 0; round < 6; ++round) {
      for (auto& v : pi) v = rng();
      ref.eval_into(fa, pi);
      cs.eval_into(fb, pi);
      ASSERT_EQ(fa, fb) << sim::simd_name(w) << " round " << round;
    }
  }
}

TEST(Simd, RevertToRestoresTapeUnderWideKernels) {
  // A rolled-back mutation plus revert_to() must restore the exact
  // pre-mutation program for every kernel build.
  for (sim::SimdWidth w : runnable_widths()) {
    auto net = bench::alu(4);
    sim::ScopedSimOptions guard(tape_opts(w, 8));
    sim::CompiledSim cs(net);
    const std::size_t old_size = net.size();
    std::mt19937_64 rng(17);
    std::vector<std::uint64_t> pi(net.inputs().size());
    for (auto& v : pi) v = rng();
    sim::Frame before;
    cs.eval_into(before, pi);

    net.begin_undo();
    NodeId o = net.outputs()[0];
    net.replace_fanin(o, 0,
                      net.add_not(net.add_not(net.node(o).fanins[0])));
    auto touched = net.touched_nodes();
    net.rollback_undo();
    cs.revert_to(old_size, touched.value_roots);

    sim::Frame after;
    cs.eval_into(after, pi);
    ASSERT_EQ(before, after) << sim::simd_name(w);
  }
}

TEST(Simd, IncrementalConeIdenticalAcrossWidthsAndBlocks) {
  // The blocked cone driver (power/incremental.cpp) gathers boundary
  // words, replays the cone with the wide kernels and scatters gate
  // columns back.  After a mutation, reanalyze() must equal a fresh full
  // analyze() of the mutated netlist — at every width and block factor,
  // including block 1 (the unblocked reference path).
  for (sim::SimdWidth w : runnable_widths()) {
    for (std::size_t block : {std::size_t{1}, std::size_t{16}}) {
      auto net = bench::array_multiplier(6);
      sim::ScopedSimOptions guard(tape_opts(w, block));
      power::AnalysisOptions opt;
      opt.mode = power::ActivityMode::ZeroDelay;
      opt.n_vectors = 2048;
      power::IncrementalAnalyzer inc(net, opt);
      auto baseline = inc.analysis();
      const std::string what = std::string("width=") + sim::simd_name(w) +
                               " block=" + std::to_string(block);
      net.begin_undo();
      NodeId o = net.outputs()[0];
      net.replace_fanin(o, 0,
                        net.add_not(net.add_not(net.node(o).fanins[0])));
      auto touched = net.touched_nodes();
      const auto& got = inc.reanalyze(touched);
      EXPECT_FALSE(inc.last_update().full_rebaseline) << what;
      auto want = power::analyze(net, opt);
      ASSERT_EQ(got.report.breakdown.total_w(), want.report.breakdown.total_w()) << what;
      ASSERT_EQ(got.toggles_per_cycle, want.toggles_per_cycle) << what;
      ASSERT_EQ(got.engine, want.engine) << what;
      // And the revert restores the baseline exactly.
      net.rollback_undo();
      inc.revert_last();
      ASSERT_EQ(inc.analysis().report.breakdown.total_w(), baseline.report.breakdown.total_w())
          << what;
      ASSERT_EQ(inc.analysis().toggles_per_cycle, baseline.toggles_per_cycle)
          << what;
    }
  }
}

TEST(Simd, AnalysisReportsEngineString) {
  auto net = bench::alu(4);
  power::AnalysisOptions opt;
  opt.mode = power::ActivityMode::ZeroDelay;
  {
    sim::ScopedSimOptions guard(tape_opts(sim::SimdWidth::Scalar, 8));
    EXPECT_EQ(power::analyze(net, opt).engine, "tape[scalar,b8]");
  }
  {
    sim::SimOptions o;
    o.use_compiled = false;
    sim::ScopedSimOptions guard(o);
    EXPECT_EQ(power::analyze(net, opt).engine, "interp");
  }
  opt.mode = power::ActivityMode::Timed;
  EXPECT_EQ(power::analyze(net, opt).engine, "eventsim");
}

}  // namespace
