// Unit tests for the Boolean-network substrate.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "netlist/netlist.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

TEST(EvalGate, TruthTables) {
  std::uint64_t a = 0b1100, b = 0b1010;
  std::uint64_t w2[] = {a, b};
  EXPECT_EQ(eval_gate(GateType::And, w2) & 0xF, 0b1000u);
  EXPECT_EQ(eval_gate(GateType::Or, w2) & 0xF, 0b1110u);
  EXPECT_EQ(eval_gate(GateType::Nand, w2) & 0xF, 0b0111u);
  EXPECT_EQ(eval_gate(GateType::Nor, w2) & 0xF, 0b0001u);
  EXPECT_EQ(eval_gate(GateType::Xor, w2) & 0xF, 0b0110u);
  EXPECT_EQ(eval_gate(GateType::Xnor, w2) & 0xF, 0b1001u);
  std::uint64_t w1[] = {a};
  EXPECT_EQ(eval_gate(GateType::Not, w1) & 0xF, 0b0011u);
  EXPECT_EQ(eval_gate(GateType::Buf, w1) & 0xF, 0b1100u);
  std::uint64_t s = 0b1010;
  std::uint64_t w3[] = {s, a, b};  // s ? b : a
  EXPECT_EQ(eval_gate(GateType::Mux, w3) & 0xF, 0b1110u);
}

TEST(EvalGate, MuxSelectsCorrectArm) {
  // s=0 -> first data input, s=1 -> second.
  std::uint64_t w[] = {0, 0xF0, 0x0F};
  EXPECT_EQ(eval_gate(GateType::Mux, w), 0xF0u);
  w[0] = ~0ULL;
  EXPECT_EQ(eval_gate(GateType::Mux, w), 0x0Fu);
}

TEST(Netlist, BuildAndQuery) {
  Netlist n("t");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_and(a, b);
  n.add_output(g, "y");
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.num_gates(), 1u);
  EXPECT_EQ(n.num_literals(), 2u);
  EXPECT_EQ(n.check(), "");
  EXPECT_EQ(n.find("a"), std::optional<NodeId>(a));
  EXPECT_FALSE(n.find("zzz").has_value());
}

TEST(Netlist, ArityValidation) {
  Netlist n;
  NodeId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::And, {a}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::Not, {a, a}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::Mux, {a, a}), std::invalid_argument);
}

TEST(Netlist, TopoOrderRespectsDeps) {
  auto n = bench::ripple_carry_adder(8);
  auto order = n.topo_order();
  EXPECT_EQ(order.size(), n.num_live());
  std::vector<int> pos(n.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = (int)i;
  for (NodeId id : order) {
    if (n.node(id).type == GateType::Dff) continue;
    for (NodeId f : n.node(id).fanins) EXPECT_LT(pos[f], pos[id]);
  }
}

TEST(Netlist, LevelsAndArrival) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g1 = n.add_and(a, b);
  NodeId g2 = n.add_or(g1, a);
  n.add_output(g2, "y");
  auto lv = n.levels();
  EXPECT_EQ(lv[a], 0);
  EXPECT_EQ(lv[g1], 1);
  EXPECT_EQ(lv[g2], 2);
  EXPECT_EQ(n.critical_delay(), 2);
  auto rq = n.required_times();
  auto at = n.arrival_times();
  for (NodeId id = 0; id < n.size(); ++id)
    if (!n.is_dead(id)) EXPECT_GE(rq[id], at[id]) << "negative slack";
}

TEST(Netlist, SubstituteRedirectsUsesAndOutputs) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g1 = n.add_and(a, b);
  NodeId g2 = n.add_or(g1, a);
  n.add_output(g1, "y1");
  n.add_output(g2, "y2");
  NodeId g3 = n.add_xor(a, b);
  n.substitute(g1, g3);
  EXPECT_TRUE(n.is_dead(g1));
  EXPECT_EQ(n.outputs()[0], g3);
  EXPECT_EQ(n.node(g2).fanins[0], g3);
  EXPECT_EQ(n.check(), "");
}

TEST(Netlist, SweepRemovesDanglingLogic) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId used = n.add_and(a, b);
  NodeId dead1 = n.add_or(a, b);
  NodeId dead2 = n.add_not(dead1);
  (void)dead2;
  n.add_output(used, "y");
  std::size_t removed = n.sweep();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(n.num_gates(), 1u);
  EXPECT_EQ(n.check(), "");
}

TEST(Netlist, CompactRenumbers) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_and(a, b);
  NodeId dead = n.add_or(a, b);
  (void)dead;
  n.add_output(g, "y");
  n.sweep();
  std::size_t live = n.num_live();
  auto before = blif::write_string(n);
  (void)before;
  n.compact();
  EXPECT_EQ(n.size(), live);
  EXPECT_EQ(n.check(), "");
}

TEST(Netlist, CloneIsDeep) {
  auto n = bench::c17();
  auto c = n.clone();
  c.node(c.inputs()[0]).name = "renamed";
  EXPECT_NE(n.node(n.inputs()[0]).name, "renamed");
}

TEST(Netlist, ConeOf) {
  auto n = bench::c17();
  NodeId out = n.outputs()[0];
  auto mask = n.cone_of(std::vector<NodeId>{out});
  EXPECT_TRUE(mask[out]);
  int count = 0;
  for (NodeId i = 0; i < n.size(); ++i)
    if (mask[i]) ++count;
  EXPECT_GT(count, 3);
  EXPECT_LT(count, (int)n.num_live());
}

TEST(Strash, MergesDuplicatesAndPreservesFunction) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g1 = n.add_and(a, b);
  NodeId g2 = n.add_and(b, a);  // commutative duplicate
  NodeId g3 = n.add_or(g1, g2);
  n.add_output(g3, "y");
  Netlist s = strash(n);
  EXPECT_LT(s.num_gates(), n.num_gates());
  EXPECT_TRUE(sim::equivalent_random(n, s, 64, 1));
}

TEST(Strash, FoldsConstants) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId c1 = n.add_const(true);
  NodeId c0 = n.add_const(false);
  NodeId g1 = n.add_and(a, c1);   // = a
  NodeId g2 = n.add_or(g1, c0);   // = a
  NodeId g3 = n.add_and(g2, c0);  // = 0
  n.add_output(g2, "y1");
  n.add_output(g3, "y2");
  Netlist s = strash(n);
  EXPECT_EQ(s.num_gates(), 0u);
  EXPECT_TRUE(sim::equivalent_random(n, s, 64, 2));
}

TEST(Strash, SequentialPreserved) {
  auto n = bench::counter(4);
  Netlist s = strash(n);
  EXPECT_EQ(s.dffs().size(), 4u);
  EXPECT_TRUE(sim::equivalent_random(n, s, 64, 3));
}

TEST(Benchmarks, SuiteIsWellFormed) {
  for (const auto& [name, net] : bench::default_suite()) {
    EXPECT_EQ(net.check(), "") << name;
    EXPECT_GT(net.num_gates(), 0u) << name;
    EXPECT_FALSE(net.outputs().empty()) << name;
  }
}

TEST(Benchmarks, AdderAddsCorrectly) {
  auto n = bench::ripple_carry_adder(8);
  sim::LogicSim s(n);
  // a=100, b=55, cin=1 -> 156.
  std::vector<std::uint64_t> pi(n.inputs().size(), 0);
  for (int i = 0; i < 8; ++i) {
    pi[i] = (100 >> i & 1) ? ~0ULL : 0;
    pi[8 + i] = (55 >> i & 1) ? ~0ULL : 0;
  }
  pi[16] = ~0ULL;
  auto f = s.eval(pi);
  int sum = 0;
  for (int i = 0; i < 8; ++i)
    if (f[n.outputs()[i]] & 1) sum |= 1 << i;
  if (f[n.outputs()[8]] & 1) sum |= 1 << 8;
  EXPECT_EQ(sum, 156);
}

TEST(Benchmarks, MultiplierMultipliesCorrectly) {
  auto n = bench::array_multiplier(4);
  sim::LogicSim s(n);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      std::vector<std::uint64_t> pi(8, 0);
      for (int i = 0; i < 4; ++i) {
        pi[i] = (a >> i & 1) ? ~0ULL : 0;
        pi[4 + i] = (b >> i & 1) ? ~0ULL : 0;
      }
      auto f = s.eval(pi);
      int prod = 0;
      for (std::size_t i = 0; i < n.outputs().size(); ++i)
        if (f[n.outputs()[i]] & 1) prod |= 1 << i;
      EXPECT_EQ(prod, a * b) << a << "*" << b;
    }
  }
}

TEST(Benchmarks, ComparatorComparesCorrectly) {
  auto n = bench::comparator_gt(6);
  sim::LogicSim s(n);
  for (int c = 0; c < 64; c += 3) {
    for (int d = 0; d < 64; d += 5) {
      std::vector<std::uint64_t> pi(12, 0);
      for (int i = 0; i < 6; ++i) {
        pi[i] = (c >> i & 1) ? ~0ULL : 0;
        pi[6 + i] = (d >> i & 1) ? ~0ULL : 0;
      }
      auto f = s.eval(pi);
      EXPECT_EQ((f[n.outputs()[0]] & 1) != 0, c > d) << c << " vs " << d;
    }
  }
}

TEST(Benchmarks, CounterCounts) {
  auto n = bench::counter(4);
  sim::LogicSim s(n);
  std::vector<std::uint64_t> en{~0ULL};
  std::vector<std::uint64_t> state(4, 0);
  for (int step = 1; step <= 20; ++step) {
    auto f = s.eval(en, state);
    state = s.next_state_of(f);
    int val = 0;
    for (int b = 0; b < 4; ++b)
      if (state[b] & 1) val |= 1 << b;
    EXPECT_EQ(val, step % 16);
  }
}

TEST(Benchmarks, CarrySelectEqualsRipple) {
  auto a = bench::ripple_carry_adder(16);
  auto b = bench::carry_select_adder(16, 4);
  EXPECT_TRUE(sim::equivalent_random(a, b, 256, 5));
}

TEST(Benchmarks, DecoderOneHot) {
  auto n = bench::decoder(3);
  sim::LogicSim s(n);
  for (int v = 0; v < 8; ++v) {
    std::vector<std::uint64_t> pi(3);
    for (int i = 0; i < 3; ++i) pi[i] = (v >> i & 1) ? ~0ULL : 0;
    auto f = s.eval(pi);
    for (int m = 0; m < 8; ++m)
      EXPECT_EQ((f[n.outputs()[m]] & 1) != 0, m == v);
  }
}

TEST(Netlist, PrintDoesNotCrash) {
  std::ostringstream os;
  os << bench::c17();
  EXPECT_NE(os.str().find("NAND"), std::string::npos);
}

}  // namespace
}  // namespace lps
