// Cross-module integration tests: the survey's techniques composed
// end-to-end, with exact (BDD) verification where feasible.

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd_netlist.hpp"
#include "coding/bus_invert.hpp"
#include "core/flows.hpp"
#include "logicopt/path_balance.hpp"
#include "logicopt/techmap.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "power/activity.hpp"
#include "seq/encoding.hpp"
#include "seq/precompute.hpp"
#include "seq/seq_circuit.hpp"
#include "sim/eventsim.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

TEST(Integration, FlowPreservesFunctionExactly) {
  // BDD-exact equivalence through the full combinational flow.
  for (const auto& name : {"rca8", "cmp8", "dec4"}) {
    Netlist net;
    if (std::string(name) == "rca8") net = bench::ripple_carry_adder(8);
    if (std::string(name) == "cmp8") net = bench::comparator_gt(8);
    if (std::string(name) == "dec4") net = bench::decoder(4);
    core::FlowOptions opt;
    opt.sim_vectors = 256;
    auto r = core::optimize_combinational(net, opt);
    EXPECT_TRUE(bdd::equivalent_bdd(net, r.circuit)) << name;
  }
}

TEST(Integration, MapThenBalanceThenMeasure) {
  // Technology mapping composed with glitch removal: both rewrites must
  // stack functionally, and the balanced mapped circuit must glitch less.
  auto net = bench::carry_select_adder(8, 2);
  auto lib = logicopt::standard_library();
  auto subject = logicopt::subject_graph(net);
  auto mapped = logicopt::tech_map(net, lib, logicopt::MapObjective::Power)
                    .to_netlist(subject);
  EXPECT_TRUE(sim::equivalent_random(net, mapped, 256, 3));
  double glitch_before =
      sim::measure_timed_activity(mapped, 400, 5).glitch_fraction();
  logicopt::full_balance(mapped);
  EXPECT_TRUE(sim::equivalent_random(net, mapped, 256, 7));
  double glitch_after =
      sim::measure_timed_activity(mapped, 400, 5).glitch_fraction();
  EXPECT_LE(glitch_after, glitch_before);
  EXPECT_NEAR(glitch_after, 0.0, 1e-9);
}

TEST(Integration, Figure1EndToEnd) {
  // The paper's one figure, reproduced end to end: comparator, subset
  // selection, XNOR LE, trace equivalence, measured power reduction.
  const int n = 8;
  auto comb = bench::comparator_gt(n);
  auto sel = seq::select_precompute_inputs(comb, 2);
  EXPECT_NEAR(sel.hit_probability, 0.5, 1e-9);
  auto pre = seq::apply_precomputation(comb, sel.subset);
  auto base = seq::registered_baseline(comb);

  // Cycle-accurate equality on 2000 random cycles.
  sim::LogicSim sa(base), sb(pre.circuit);
  auto da = base.dffs(), db = pre.circuit.dffs();
  std::vector<std::uint64_t> qa(da.size()), qb(db.size());
  for (std::size_t i = 0; i < da.size(); ++i)
    qa[i] = base.node(da[i]).init_value ? ~0ULL : 0;
  for (std::size_t i = 0; i < db.size(); ++i)
    qb[i] = pre.circuit.node(db[i]).init_value ? ~0ULL : 0;
  std::mt19937_64 rng(31);
  std::vector<std::uint64_t> pi(base.inputs().size());
  for (int cyc = 0; cyc < 2000 / 64; ++cyc) {
    for (auto& w : pi) w = rng();
    auto fa = sa.eval(pi, qa);
    auto fb = sb.eval(pi, qb);
    ASSERT_EQ(sa.outputs_of(fa), sb.outputs_of(fb)) << "cycle " << cyc;
    qa = sa.next_state_of(fa);
    qb = sb.next_state_of(fb);
  }

  power::AnalysisOptions ao;
  ao.n_vectors = 2048;
  double pb = power::analyze(base, ao).report.breakdown.total_w();
  double pp = power::analyze(pre.circuit, ao).report.breakdown.total_w();
  EXPECT_LT(pp, pb * 0.95);  // at least 5% whole-circuit saving
}

TEST(Integration, FsmEncodeSynthesizeMeasure) {
  // Low-power encoding must translate from the abstract weighted-switching
  // objective into real measured flip-flop power on the synthesized logic.
  auto stg = seq::counter_fsm(16);
  auto bin = seq::binary_encoding(stg);
  auto low = seq::low_power_encoding(stg);
  auto nb = seq::synthesize_fsm(stg, bin, "bin");
  auto nl = seq::synthesize_fsm(stg, low, "low");
  // Measure actual FF toggles under random stimulus.
  auto sb = sim::measure_activity(nb, 256, 9);
  auto sl = sim::measure_activity(nl, 256, 9);
  double tb = 0, tl = 0;
  for (NodeId d : nb.dffs()) tb += sb.transition_prob[d];
  for (NodeId d : nl.dffs()) tl += sl.transition_prob[d];
  EXPECT_LT(tl, tb);
}

TEST(Integration, BlifRoundTripThroughOptimization) {
  // Export/import composed with optimization: a BLIF-level user sees the
  // same functional circuit.
  auto net = bench::alu(4);
  core::FlowOptions opt;
  opt.sim_vectors = 256;
  opt.run_sizing = false;
  auto r = core::optimize_combinational(net, opt);
  auto text = blif::write_string(r.circuit);
  auto back = blif::read_string(text);
  EXPECT_TRUE(sim::equivalent_random(net, back, 256, 13));
}

TEST(Integration, RegisteredDatapathWithBusCoding) {
  // Datapath power (gate level) + bus power (coding level) in one budget:
  // verify the combined accounting is self-consistent.
  auto words = sim::uniform_stream(16, 4096, 21);
  auto bus = coding::evaluate_bus_invert(words, 16);
  EXPECT_GT(bus.raw_transitions, bus.coded_transitions);
  auto net = seq::registered(bench::ripple_carry_adder(8));
  power::AnalysisOptions ao;
  ao.n_vectors = 512;
  auto a = power::analyze(net, ao);
  EXPECT_GT(a.report.breakdown.total_w(), 0.0);
  EXPECT_GT(a.report.breakdown.switching_fraction(), 0.8);
}

}  // namespace
}  // namespace lps
