// test_parallel.cpp — thread pool, deterministic sharding, and the
// undo-log rollback path.
//
// The determinism contract (core/parallel.hpp) promises bit-identical
// Monte Carlo results at any thread count; these tests pin that with exact
// floating-point equality across 1/2/4/8 threads on the benchmark suite.
// The undo-log tests pin the other tentpole invariant: rollback_undo()
// restores the exact pre-begin state, including under fault injection and
// wholesale replacement (net = strash(net)), matching the legacy
// full-snapshot path bit for bit.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/parallel.hpp"
#include "core/pass.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/faultinject.hpp"
#include "sim/eventsim.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

std::string dump(const Netlist& net) {
  std::ostringstream os;
  os << net;
  os << "PIs:";
  for (NodeId i : net.inputs()) os << ' ' << i;
  os << "\nPOs:";
  for (std::size_t i = 0; i < net.outputs().size(); ++i)
    os << ' ' << net.outputs()[i] << '=' << net.output_names()[i];
  os << '\n';
  return os.str();
}

// ---- thread pool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  core::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each_index(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  core::ThreadPool pool(2);
  EXPECT_THROW(pool.for_each_index(64,
                                   [&](std::size_t i) {
                                     if (i == 17)
                                       throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // Pool is still usable after a failed job.
  std::atomic<int> n{0};
  pool.for_each_index(8, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  core::ThreadPool pool(0);
  std::atomic<int> n{0};
  pool.for_each_index(10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ParallelFor, RespectsScopedThreadOverride) {
  core::ScopedThreads guard(4);
  EXPECT_EQ(core::num_threads(), 4u);
  std::vector<std::atomic<int>> hits(200);
  core::parallel_for(200, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EnvIsSampledOnceAndSetNumThreadsWins) {
  // Caching contract (core/parallel.hpp): LPS_THREADS is read exactly once,
  // on the first num_threads() call in the process; later env edits are
  // invisible and set_num_threads() is the only runtime override.
  unsigned before = core::num_threads();  // forces the one-time env sample
  ::setenv("LPS_THREADS", "61", /*overwrite=*/1);
  EXPECT_EQ(core::num_threads(), before);
  core::set_num_threads(3);
  EXPECT_EQ(core::num_threads(), 3u);
  {
    core::ScopedThreads guard(5);
    EXPECT_EQ(core::num_threads(), 5u);
  }
  EXPECT_EQ(core::num_threads(), 3u);  // ScopedThreads restored its prev
  ::unsetenv("LPS_THREADS");
  EXPECT_EQ(core::num_threads(), 3u);  // still cached, not re-read
  core::set_num_threads(before);
}

// ---- shard planning -------------------------------------------------------

TEST(ShardPlan, CoversTotalWithoutOverlap) {
  for (std::size_t total : {0u, 1u, 63u, 64u, 65u, 1000u, 4096u, 100000u}) {
    auto plan = core::plan_shards(total, 64);
    EXPECT_GE(plan.shards, 1u);
    EXPECT_LE(plan.shards, 64u);
    std::size_t sum = 0;
    for (std::size_t s = 0; s < plan.shards; ++s) {
      EXPECT_EQ(plan.begin(s), sum);
      sum += plan.count(s);
    }
    EXPECT_EQ(sum, total == 0 ? plan.count(0) : total);
    if (total < 2 * 64) {
      EXPECT_EQ(plan.shards, 1u);
    }
  }
}

TEST(ShardPlan, SeedsAreDistinctAndThreadIndependent) {
  EXPECT_NE(core::shard_seed(3, 0), core::shard_seed(3, 1));
  EXPECT_NE(core::shard_seed(3, 0), core::shard_seed(4, 0));
  EXPECT_EQ(core::shard_seed(3, 7), core::shard_seed(3, 7));
}

// ---- parallel determinism -------------------------------------------------

TEST(ParallelDeterminism, ActivityStatsBitIdenticalAcrossThreadCounts) {
  for (const auto& [name, net] : bench::default_suite()) {
    sim::ActivityStats ref;
    {
      core::ScopedThreads guard(1);
      ref = sim::measure_activity(net, 512, 42);
    }
    for (unsigned t : {2u, 4u, 8u}) {
      core::ScopedThreads guard(t);
      auto st = sim::measure_activity(net, 512, 42);
      ASSERT_EQ(st.patterns, ref.patterns) << name << " @" << t;
      ASSERT_EQ(st.signal_prob.size(), ref.signal_prob.size());
      for (std::size_t i = 0; i < ref.signal_prob.size(); ++i) {
        // Exact equality on purpose: merging integer counters in shard
        // order must make the result independent of the thread count.
        ASSERT_EQ(st.signal_prob[i], ref.signal_prob[i])
            << name << " node " << i << " @" << t << " threads";
        ASSERT_EQ(st.transition_prob[i], ref.transition_prob[i])
            << name << " node " << i << " @" << t << " threads";
      }
    }
  }
}

TEST(ParallelDeterminism, TimedStatsBitIdenticalAcrossThreadCounts) {
  for (const auto& [name, net] : bench::default_suite()) {
    sim::TimedStats ref;
    {
      core::ScopedThreads guard(1);
      ref = sim::measure_timed_activity(net, 512, 42);
    }
    for (unsigned t : {2u, 4u, 8u}) {
      core::ScopedThreads guard(t);
      auto st = sim::measure_timed_activity(net, 512, 42);
      ASSERT_EQ(st.vectors, ref.vectors) << name << " @" << t;
      for (std::size_t i = 0; i < ref.total_toggles.size(); ++i) {
        ASSERT_EQ(st.total_toggles[i], ref.total_toggles[i])
            << name << " node " << i << " @" << t << " threads";
        ASSERT_EQ(st.functional_toggles[i], ref.functional_toggles[i])
            << name << " node " << i << " @" << t << " threads";
      }
    }
  }
}

TEST(ParallelDeterminism, SequentialNetKeepsLegacySerialStream) {
  // Sequential circuits must always run as one shard; any thread count
  // reproduces the single-trajectory result.
  auto net = bench::counter(8);
  core::ScopedThreads one(1);
  auto ref = sim::measure_activity(net, 256, 9);
  core::ScopedThreads eight(8);
  auto st = sim::measure_activity(net, 256, 9);
  for (std::size_t i = 0; i < ref.signal_prob.size(); ++i) {
    ASSERT_EQ(st.signal_prob[i], ref.signal_prob[i]);
    ASSERT_EQ(st.transition_prob[i], ref.transition_prob[i]);
  }
}

// ---- functional trace -----------------------------------------------------

TEST(FunctionalTrace, MatchesOnEquivalentDiffersOnBroken) {
  auto net = bench::alu(4);
  auto t1 = sim::functional_trace(net, 128, 5);
  auto hashed = strash(net);
  auto t2 = sim::functional_trace(hashed, 128, 5);
  EXPECT_EQ(t1, t2);

  auto broken = net.clone();
  auto inj = fault::inject(broken, fault::Fault::FlipGateFunction, 3);
  ASSERT_TRUE(inj.applied);
  auto t3 = sim::functional_trace(broken, 128, 5);
  EXPECT_NE(t1, t3);
}

// ---- undo log -------------------------------------------------------------

TEST(UndoLog, RollbackRestoresExactStateAfterIncrementalEdits) {
  auto net = bench::ripple_carry_adder(8);
  std::string before = dump(net);
  net.begin_undo();
  // Mix of journal entry kinds: node field edits, new gates, PO changes.
  NodeId a = net.inputs()[0], b = net.inputs()[1];
  NodeId g = net.add_and(a, b);
  net.add_output(g, "extra");
  net.node(net.outputs()[0]).delay = 17;
  net.node(net.outputs()[0]).size = 4.0;
  net.replace_fanin(g, 1, a);
  EXPECT_GT(net.undo_entries(), 0u);
  net.rollback_undo();
  EXPECT_EQ(dump(net), before);
  EXPECT_FALSE(net.undo_active());
  EXPECT_TRUE(net.check().empty());
}

TEST(UndoLog, RollbackRestoresAfterWholesaleReplacement) {
  auto net = bench::alu(4);
  std::string before = dump(net);
  net.begin_undo();
  net.node(net.outputs()[0]).delay = 3;  // incremental edit first
  net = strash(net);                     // wholesale replacement
  net.add_output(net.outputs()[0], "dup");
  net.rollback_undo();
  EXPECT_EQ(dump(net), before);
}

TEST(UndoLog, RollbackRestoresAfterCompact) {
  auto net = bench::alu(4);
  auto st = sim::measure_activity(net, 16, 7);
  (void)st;
  net.begin_undo();
  net.sweep();
  net.compact();
  std::string compacted = dump(net);
  net.rollback_undo();
  auto fresh = bench::alu(4);
  EXPECT_EQ(dump(net), dump(fresh));
  EXPECT_NE(dump(net), compacted);
}

TEST(UndoLog, CommitKeepsChanges) {
  auto net = bench::c17();
  net.begin_undo();
  NodeId g = net.add_nand(net.inputs()[0], net.inputs()[1]);
  net.add_output(g, "new_po");
  net.commit_undo();
  EXPECT_FALSE(net.undo_active());
  EXPECT_EQ(net.output_names().back(), "new_po");
}

TEST(UndoLog, CopiesDoNotCarryTheJournal) {
  auto net = bench::c17();
  net.begin_undo();
  net.node(net.outputs()[0]).delay = 9;
  Netlist copy = net.clone();
  EXPECT_TRUE(net.undo_active());
  EXPECT_FALSE(copy.undo_active());
  net.rollback_undo();
  EXPECT_EQ(copy.node(copy.outputs()[0]).delay, 9);
}

// The equivalence that matters for PassManager: rolling back via the undo
// log lands on the identical netlist as restoring the legacy full
// snapshot — for every fault class the injection harness can produce.
TEST(UndoLog, MatchesSnapshotRollbackUnderFaultInjection) {
  for (fault::Fault f : fault::all_faults()) {
    for (std::uint64_t seed : {1ull, 2ull, 5ull}) {
      auto net = bench::alu(4);
      Netlist snapshot = net.clone();  // legacy path's pre-image
      net.begin_undo();
      auto inj = fault::inject(net, f, seed);
      net.rollback_undo();
      EXPECT_EQ(dump(net), dump(snapshot))
          << "fault " << fault::to_string(f) << " seed " << seed
          << (inj.applied ? " (applied: " + inj.description + ")"
                          : " (not applied)");
      EXPECT_TRUE(net.check().empty());
    }
  }
}

// End-to-end: both PassManager rollback implementations contain a
// function-corrupting pass and leave behind identical circuits.
TEST(UndoLog, PassManagerUndoAndSnapshotPathsAgree) {
  auto make_pm = [](bool use_undo) {
    core::PassManager::Options opt;
    opt.use_undo_log = use_undo;
    core::PassManager pm(opt);
    pm.add(core::make_strash_pass());
    pm.add("corrupt", [](Netlist& net) {
      auto inj = fault::inject(net, fault::Fault::FlipGateFunction, 2);
      return std::string(inj.applied ? "flipped" : "noop");
    });
    pm.add(core::make_sweep_pass());
    return pm;
  };

  auto net_undo = bench::alu(4);
  auto rec_undo = make_pm(true).run(net_undo);
  auto net_snap = bench::alu(4);
  auto rec_snap = make_pm(false).run(net_snap);

  ASSERT_EQ(rec_undo.size(), rec_snap.size());
  for (std::size_t i = 0; i < rec_undo.size(); ++i) {
    EXPECT_EQ(rec_undo[i].ok, rec_snap[i].ok) << rec_undo[i].pass;
    EXPECT_EQ(rec_undo[i].rolled_back, rec_snap[i].rolled_back);
  }
  EXPECT_FALSE(rec_undo[1].ok);  // corruption caught and rolled back
  EXPECT_EQ(dump(net_undo), dump(net_snap));
  EXPECT_TRUE(sim::equivalent_random(net_undo, bench::alu(4), 256, 11));
}

}  // namespace
