// BLIF reader/writer tests.

#include <gtest/gtest.h>

#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

const char* kC17 = R"(
# ISCAS85 c17 in BLIF
.model c17
.inputs 1 2 3 6 7
.outputs 22 23
.names 1 3 10
0- 1
-0 1
.names 3 6 11
0- 1
-0 1
.names 2 11 16
0- 1
-0 1
.names 11 7 19
0- 1
-0 1
.names 10 16 22
0- 1
-0 1
.names 16 19 23
0- 1
-0 1
.end
)";

TEST(Blif, ParsesC17AndMatchesBuiltin) {
  Netlist parsed = blif::read_string(kC17);
  EXPECT_EQ(parsed.inputs().size(), 5u);
  EXPECT_EQ(parsed.outputs().size(), 2u);
  Netlist builtin = bench::c17();
  EXPECT_TRUE(sim::equivalent_random(builtin, parsed, 64, 1));
}

TEST(Blif, RoundTripCombinational) {
  for (const auto& [name, net] : bench::default_suite()) {
    if (!net.dffs().empty()) continue;
    auto text = blif::write_string(net);
    Netlist back = blif::read_string(text);
    EXPECT_EQ(back.inputs().size(), net.inputs().size()) << name;
    EXPECT_EQ(back.outputs().size(), net.outputs().size()) << name;
    EXPECT_TRUE(sim::equivalent_random(net, back, 64, 7)) << name;
  }
}

TEST(Blif, RoundTripSequential) {
  auto net = bench::counter(4);
  auto text = blif::write_string(net);
  Netlist back = blif::read_string(text);
  EXPECT_EQ(back.dffs().size(), 4u);
  EXPECT_TRUE(sim::equivalent_random(net, back, 128, 3));
}

TEST(Blif, EnabledRegisterRoundTripsAsHoldMux) {
  // BLIF has no latch-enable pin; write() must expand EN registers into an
  // explicit recirculating mux so behaviour survives the round trip.
  Netlist n("en");
  NodeId d = n.add_input("d");
  NodeId en = n.add_input("en");
  NodeId q = n.add_dff(d, true, "q");
  n.set_dff_enable(q, en);
  n.add_output(q, "y");
  auto text = blif::write_string(n);
  Netlist back = blif::read_string(text);
  ASSERT_EQ(back.dffs().size(), 1u);
  EXPECT_TRUE(back.node(back.dffs()[0]).init_value);
  EXPECT_TRUE(sim::equivalent_random(n, back, 256, 3));
}

TEST(Blif, StrashKeepsEnablePins) {
  Netlist n("en2");
  NodeId d = n.add_input("d");
  NodeId en = n.add_input("en");
  NodeId q = n.add_dff(d, false, "q");
  n.set_dff_enable(q, en);
  n.add_output(q, "y");
  Netlist s = strash(n);
  ASSERT_EQ(s.dffs().size(), 1u);
  EXPECT_TRUE(s.dff_has_enable(s.dffs()[0]));
  EXPECT_TRUE(sim::equivalent_random(n, s, 256, 5));
}

TEST(Blif, LatchInitValue) {
  const char* text = R"(
.model t
.inputs a
.outputs q
.names a d
1 1
.latch d q 1
.end
)";
  Netlist n = blif::read_string(text);
  ASSERT_EQ(n.dffs().size(), 1u);
  EXPECT_TRUE(n.node(n.dffs()[0]).init_value);
}

TEST(Blif, OffsetTable) {
  // Output value 0 rows define the complement.
  const char* text = R"(
.model t
.inputs a b
.outputs y
.names a b y
11 0
.end
)";
  Netlist n = blif::read_string(text);
  sim::LogicSim s(n);
  std::vector<std::uint64_t> pi{0b0011, 0b0101};  // a, b patterns
  auto f = s.eval(pi);
  EXPECT_EQ(f[n.outputs()[0]] & 0xF, 0b1110u);  // !(a&b)
}

TEST(Blif, ConstantTables) {
  const char* text = R"(
.model t
.inputs a
.outputs one zero
.names one
1
.names zero
.end
)";
  Netlist n = blif::read_string(text);
  sim::LogicSim s(n);
  std::vector<std::uint64_t> pi{0};
  auto f = s.eval(pi);
  EXPECT_EQ(f[n.outputs()[0]], ~0ULL);
  EXPECT_EQ(f[n.outputs()[1]], 0ULL);
}

TEST(Blif, MalformedInputsThrow) {
  EXPECT_THROW(blif::read_string(".model t\n.inputs a\n.outputs y\n.end\n"),
               std::runtime_error);  // undefined output y
  EXPECT_THROW(blif::read_string("11 1\n"), std::runtime_error);
  EXPECT_THROW(
      blif::read_string(
          ".model t\n.inputs a\n.outputs y\n.names a b y\n11 1\n.end\n"),
      std::runtime_error);  // b never defined
}

TEST(Blif, ContinuationLines) {
  const char* text =
      ".model t\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
  Netlist n = blif::read_string(text);
  EXPECT_EQ(n.inputs().size(), 2u);
}

TEST(Blif, MissingFileThrows) {
  EXPECT_THROW(blif::read_file("/nonexistent/file.blif"), std::runtime_error);
}

}  // namespace
}  // namespace lps
