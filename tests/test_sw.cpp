// Software-level tests: ISA semantics, instruction power model, scheduling,
// register allocation, pairing (§V).

#include <gtest/gtest.h>

#include "sw/isa.hpp"
#include "sw/pairing.hpp"
#include "sw/power_model.hpp"
#include "sw/regalloc.hpp"
#include "sw/scheduling.hpp"

namespace lps::sw {
namespace {

TEST(Machine, BasicSemantics) {
  Machine m;
  Program p{
      {Opcode::LoadImm, 0, 0, 0, 0, 7, 0},
      {Opcode::LoadImm, 1, 0, 0, 0, 5, 0},
      {Opcode::Add, 2, 0, 0, 1, 0, 0},
      {Opcode::Mul, 3, 0, 2, 1, 0, 0},
      {Opcode::Sub, 4, 0, 3, 0, 0, 0},
      {Opcode::Store, 0, 0, 4, 0, 0, 100},
  };
  m.run(p);
  EXPECT_EQ(m.reg(2), 12);
  EXPECT_EQ(m.reg(3), 60);
  EXPECT_EQ(m.mem(100), 53);
}

TEST(Machine, MacAndAccumulator) {
  Machine m;
  Program p{
      {Opcode::LoadImm, 0, 0, 0, 0, 3, 0},
      {Opcode::LoadImm, 1, 0, 0, 0, 4, 0},
      {Opcode::ClearAcc},
      {Opcode::Mac, 0, 0, 0, 1, 0, 0},
      {Opcode::Mac, 0, 0, 0, 1, 0, 0},
      {Opcode::ReadAcc, 5, 0, 0, 0, 0, 0},
  };
  m.run(p);
  EXPECT_EQ(m.acc(), 24);
  EXPECT_EQ(m.reg(5), 24);
}

TEST(Machine, DualLoad) {
  Machine m;
  m.poke(10, 111);
  m.poke(11, 222);
  Program p{{Opcode::DualLoad, 2, 3, 0, 0, 0, 10}};
  m.run(p);
  EXPECT_EQ(m.reg(2), 111);
  EXPECT_EQ(m.reg(3), 222);
}

TEST(Machine, DotProductKernel) {
  Machine m;
  for (int i = 0; i < 4; ++i) {
    m.poke(0 + i, i + 1);   // x = 1,2,3,4
    m.poke(16 + i, 2 * i);  // c = 0,2,4,6
  }
  auto p = dot_product_naive(4, 0, 16, 64);
  m.run(p);
  EXPECT_EQ(m.mem(64), 1 * 0 + 2 * 2 + 3 * 4 + 4 * 6);
}

TEST(Depends, RegisterAndMemoryHazards) {
  Instr add{Opcode::Add, 2, 0, 0, 1, 0, 0};
  Instr use{Opcode::Move, 3, 0, 2, 0, 0, 0};
  Instr indep{Opcode::Move, 4, 0, 5, 0, 0, 0};
  EXPECT_TRUE(depends(add, use));    // RAW
  EXPECT_TRUE(depends(use, add));    // WAR when reordered
  EXPECT_FALSE(depends(add, indep));
  Instr st{Opcode::Store, 0, 0, 6, 0, 0, 20};
  Instr ld_same{Opcode::Load, 7, 0, 0, 0, 0, 20};
  Instr ld_other{Opcode::Load, 7, 0, 0, 0, 0, 21};
  EXPECT_TRUE(depends(st, ld_same));
  // Distinct constant addresses commute... except for the register hazard.
  Instr ld_other2{Opcode::Load, 5, 0, 0, 0, 0, 21};
  EXPECT_FALSE(depends(st, ld_other2));
  (void)ld_other;
}

TEST(PowerModel, MemoryCostsMoreThanRegisters) {
  EXPECT_GT(base_current_ma(Opcode::Load), 2 * base_current_ma(Opcode::Add));
  EXPECT_GT(base_current_ma(Opcode::Store), 2 * base_current_ma(Opcode::Move));
  // DualLoad beats two Loads.
  EXPECT_LT(base_current_ma(Opcode::DualLoad) * cycles_of(Opcode::DualLoad),
            2 * base_current_ma(Opcode::Load) * cycles_of(Opcode::Load));
}

TEST(PowerModel, OverheadSymmetricAndZeroOnRepeat) {
  EXPECT_DOUBLE_EQ(overhead_cost(Opcode::Add, Opcode::Add), 0.0);
  EXPECT_DOUBLE_EQ(overhead_cost(Opcode::Add, Opcode::Load),
                   overhead_cost(Opcode::Load, Opcode::Add));
  EXPECT_GT(overhead_cost(Opcode::Mul, Opcode::Load), 0.0);
}

TEST(PowerModel, EnergyTracksCycles) {
  // §V: "faster code almost always implies lower energy".
  auto slow = dot_product_naive(16, 0, 32, 100);
  PairingResult fast = fuse_mac(pack_loads(slow).program, 0);
  EXPECT_LT(fast.after.cycles, program_energy(slow).cycles);
  EXPECT_LT(fast.after.total_macycles(), program_energy(slow).total_macycles());
}

TEST(Scheduling, PreservesExecutionResults) {
  Machine m1, m2;
  for (int i = 0; i < 8; ++i) m1.poke(i, i * 3 + 1), m2.poke(i, i * 3 + 1);
  // Interleaved independent work with a messy opcode order.
  Program p{
      {Opcode::Load, 0, 0, 0, 0, 0, 0},
      {Opcode::Mul, 1, 0, 0, 0, 0, 0},
      {Opcode::Load, 2, 0, 0, 0, 0, 1},
      {Opcode::Add, 3, 0, 1, 2, 0, 0},
      {Opcode::Load, 4, 0, 0, 0, 0, 2},
      {Opcode::Mul, 5, 0, 4, 4, 0, 0},
      {Opcode::Add, 6, 0, 3, 5, 0, 0},
      {Opcode::Store, 0, 0, 6, 0, 0, 7},
  };
  auto r = schedule_for_power(p);
  EXPECT_EQ(r.program.size(), p.size());
  m1.run(p);
  m2.run(r.program);
  EXPECT_EQ(m1.mem(7), m2.mem(7));
  EXPECT_LE(r.after.overhead_macycles, r.before.overhead_macycles + 1e-9);
}

TEST(Scheduling, GroupsLikeInstructions) {
  // Independent loads and adds: the scheduler should cluster same-opcode
  // runs (zero overhead within a run).
  Program p;
  for (int i = 0; i < 4; ++i) {
    p.push_back({Opcode::Load, i, 0, 0, 0, 0, i});
    p.push_back({Opcode::LoadImm, 4 + (i % 4), 0, 0, 0, i, 0});
  }
  auto r = schedule_for_power(p);
  EXPECT_LT(r.after.overhead_macycles, r.before.overhead_macycles);
}

TEST(RegAlloc, CorrectWithSpills) {
  // Sum 10 values kept in 10 virtual registers, allocated to 3 physical.
  VirtualProgram vp;
  for (int i = 0; i < 10; ++i)
    vp.push_back({Opcode::LoadImm, 10 + i, 0, 0, 0, i + 1, 0});
  int acc = 10;  // reuse v10 as accumulator
  for (int i = 1; i < 10; ++i)
    vp.push_back({Opcode::Add, acc, 0, acc, 10 + i, 0, 0});
  vp.push_back({Opcode::Store, 0, 0, acc, 0, 0, 500});

  for (int regs : {3, 4, 8}) {
    Machine m;
    auto r = allocate(vp, regs);
    m.run(r.program);
    EXPECT_EQ(m.mem(500), 55) << regs << " regs";
  }
}

TEST(RegAlloc, FewerRegistersCostMoreEnergy) {
  // A hot working set of 5 values plus occasional cold values: 8 registers
  // hold the whole set (few spills); 3 registers thrash.
  VirtualProgram vp;
  for (int i = 0; i < 10; ++i)
    vp.push_back({Opcode::LoadImm, 20 + i, 0, 0, 0, i, 0});
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 5; ++i)
      vp.push_back(
          {Opcode::Add, 20 + i, 0, 20 + i, 20 + ((i + 1) % 5), 0, 0});
    // One cold touch per round.
    vp.push_back({Opcode::Add, 25 + round % 5, 0, 25 + round % 5, 20, 0, 0});
  }
  auto r3 = allocate(vp, 3);
  auto r8 = allocate(vp, 8);
  EXPECT_GT(r3.spill_loads + r3.spill_stores,
            r8.spill_loads + r8.spill_stores);
  EXPECT_GT(r3.energy.total_macycles(), r8.energy.total_macycles());
}

TEST(Pairing, PackLoadsPreservesResults) {
  Machine m1, m2;
  for (int i = 0; i < 8; ++i) m1.poke(i, 5 * i + 2), m2.poke(i, 5 * i + 2);
  auto p = dot_product_naive(4, 0, 4, 50);
  auto packed = pack_loads(p);
  EXPECT_EQ(packed.loads_packed, 0);  // x and c are in different regions
  // Adjacent-address loads:
  Program q{
      {Opcode::Load, 1, 0, 0, 0, 0, 2},
      {Opcode::Load, 2, 0, 0, 0, 0, 3},
      {Opcode::Add, 3, 0, 1, 2, 0, 0},
      {Opcode::Store, 0, 0, 3, 0, 0, 60},
  };
  auto pq = pack_loads(q);
  EXPECT_EQ(pq.loads_packed, 1);
  m1.run(q);
  m2.run(pq.program);
  EXPECT_EQ(m1.mem(60), m2.mem(60));
  EXPECT_LT(pq.after.total_macycles(), pq.before.total_macycles());
}

TEST(Pairing, FuseMacPreservesResultAndSaves) {
  Machine m1, m2;
  for (int i = 0; i < 8; ++i) {
    m1.poke(i, i + 2);
    m2.poke(i, i + 2);
    m1.poke(16 + i, 3 * i + 1);
    m2.poke(16 + i, 3 * i + 1);
  }
  auto p = dot_product_naive(8, 0, 16, 90);
  auto f = fuse_mac(p, /*sum_reg=*/0);
  EXPECT_EQ(f.macs_fused, 8);
  m1.run(p);
  m2.run(f.program);
  EXPECT_EQ(m1.mem(90), m2.mem(90));
  EXPECT_LT(f.after.total_macycles(), f.before.total_macycles());
}

TEST(Pairing, FuseMacNoopWithoutIdiom) {
  Program p{{Opcode::LoadImm, 1, 0, 0, 0, 9, 0},
            {Opcode::Add, 2, 0, 1, 1, 0, 0}};
  auto f = fuse_mac(p, 0);
  EXPECT_EQ(f.macs_fused, 0);
  EXPECT_EQ(f.program.size(), p.size());
}

TEST(AlgorithmChoice, HornerBeatsNaivePolynomial) {
  // Both algorithms must agree on the result; Horner must be faster AND
  // cheaper (the [49] observation that algorithm choice dominates).
  Machine m1, m2;
  for (int i = 0; i <= 8; ++i) {
    m1.poke(i, i + 1);
    m2.poke(i, i + 1);
  }
  m1.poke(40, 3);
  m2.poke(40, 3);
  auto pn = poly_eval_naive(8, 0, 40, 50);
  auto ph = poly_eval_horner(8, 0, 40, 50);
  m1.run(pn);
  m2.run(ph);
  EXPECT_EQ(m1.mem(50), m2.mem(50));
  auto en = program_energy(pn);
  auto eh = program_energy(ph);
  EXPECT_LT(eh.cycles, en.cycles);
  EXPECT_LT(eh.total_macycles(), en.total_macycles());
}

TEST(Isa, Disassembly) {
  Instr i{Opcode::Add, 2, 0, 0, 1, 0, 0};
  EXPECT_EQ(i.to_string(), "add r2, r0, r1");
  Instr l{Opcode::Load, 3, 0, 0, 0, 0, 42};
  EXPECT_EQ(l.to_string(), "ld r3, [42]");
}

}  // namespace
}  // namespace lps::sw
