// Service-layer tests: the lpsd session daemon end to end, in process and
// over a real AF_UNIX socket.  The robustness contract under test:
//
//   * every frame — including 3000 seeded mutations of valid requests —
//     gets a structured JSON answer, never a crash or silence;
//   * estimates through the service are bit-identical to direct
//     power::analyze calls, cached or not, concurrent or serialized;
//   * a cancelled (deadline) mutate is all-or-nothing, and the incremental
//     analyzer's caches survive a cancellation mid-update bit-exactly;
//   * journal recovery reproduces the pre-kill state, torn final records
//     are truncated to the last committed transition;
//   * cache eviction under a memory cap degrades estimates (full re-runs)
//     without breaking them;
//   * environment knobs reject malformed values with positioned
//     diagnostics and fall back to documented defaults.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <random>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "core/metrics.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "power/activity.hpp"
#include "power/incremental.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "service/sockets.hpp"
#include "service/watchdog.hpp"

namespace lps {
namespace {

using service::Json;
using service::JsonArray;
using service::JsonObject;

std::string temp_dir(const std::string& tag) {
  std::string d = ::testing::TempDir() + "lps_service_" + tag + "_XXXXXX";
  std::vector<char> buf(d.begin(), d.end());
  buf.push_back('\0');
  EXPECT_NE(::mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

std::string bench_blif() {
  return blif::write_string(bench::ripple_carry_adder(8));
}

// The netlist a session actually holds after loading bench_blif(): BLIF
// round-trips through SOP decomposition, so it is NOT structurally equal to
// the generator's netlist — differential tests must compare against this.
// (Node names: inputs "a0".."b7","cin"; internal gates "n17", "n22", …)
Netlist bench_net() {
  diag::DiagEngine eng(8);
  auto parsed = blif::parse_string(bench_blif(), eng);
  EXPECT_TRUE(parsed.has_value()) << eng.str();
  return std::move(*parsed);
}

// Dispatch helper: parse the response and assert it is well-formed JSON
// with an "ok" bool — the invariant every single test leans on.
Json roundtrip(service::Service& svc, const std::string& frame) {
  std::string resp = svc.dispatch(frame);
  auto doc = service::json_parse(resp);
  EXPECT_TRUE(doc.has_value()) << "unparsable response: " << resp;
  EXPECT_TRUE(doc->is_object());
  const Json* ok = doc->find("ok");
  EXPECT_TRUE(ok && ok->is_bool()) << "response without ok: " << resp;
  return *doc;
}

bool resp_ok(const Json& resp) {
  const Json* ok = resp.find("ok");
  return ok && ok->is_bool() && ok->as_bool();
}

std::string err_code(const Json& resp) {
  const Json* e = resp.find("error");
  if (!e) return "";
  const Json* c = e->find("code");
  return c && c->is_string() ? c->as_string() : "";
}

std::string load_frame(const std::string& session, const std::string& blif,
                       std::size_t vectors = 0) {
  Json req;
  req.set("verb", Json("load"));
  req.set("session", Json(session));
  req.set("blif", Json(blif));
  if (vectors) req.set("vectors", Json(vectors));
  return req.dump();
}

// ---------------------------------------------------------------------------
// JSON layer.

TEST(ServiceJson, ParseDumpRoundTrip) {
  const char* cases[] = {
      R"(null)",
      R"(true)",
      R"(-12.5)",
      R"(12345678901234)",
      R"("he\"llo\n\t\\")",
      R"([1,2,[3,null],{"a":false}])",
      R"({"k":"v","nested":{"x":[1,2]},"n":0.25})",
  };
  for (const char* c : cases) {
    auto doc = service::json_parse(c);
    ASSERT_TRUE(doc.has_value()) << c;
    auto again = service::json_parse(doc->dump());
    ASSERT_TRUE(again.has_value()) << doc->dump();
    EXPECT_EQ(doc->dump(), again->dump()) << c;
  }
}

TEST(ServiceJson, IntegersSurviveExactly) {
  auto doc = service::json_parse("[0, -1, 4294967296, 9007199254740991]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->dump(), "[0,-1,4294967296,9007199254740991]");
}

TEST(ServiceJson, UnicodeEscapes) {
  auto doc = service::json_parse(R"("a\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "aA\xc3\xa9\xf0\x9f\x98\x80");
  // Lone surrogates degrade to U+FFFD instead of failing the frame.
  auto lone = service::json_parse(R"("x\ud83dx")");
  ASSERT_TRUE(lone.has_value());
  EXPECT_EQ(lone->as_string(), "x\xef\xbf\xbdx");
}

TEST(ServiceJson, RejectsMalformedWithPosition) {
  diag::Status err;
  EXPECT_FALSE(service::json_parse("{\"a\":}", &err).has_value());
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.diagnostic().loc.file, "<frame>");
  EXPECT_GT(err.diagnostic().loc.col, 0);

  const char* bad[] = {"",       "{",       "[1,",    "nul",  "+1",
                       "01",     "1.",      "\"\\q\"", "{\"a\" 1}",
                       "[1] []", "\"unterminated"};
  for (const char* b : bad)
    EXPECT_FALSE(service::json_parse(b).has_value()) << b;
}

TEST(ServiceJson, DepthCapStopsRecursion) {
  std::string deep(service::kJsonMaxDepth + 8, '[');
  EXPECT_FALSE(service::json_parse(deep).has_value());
  std::string okdeep;
  for (int i = 0; i < 8; ++i) okdeep += "[";
  okdeep += "1";
  for (int i = 0; i < 8; ++i) okdeep += "]";
  EXPECT_TRUE(service::json_parse(okdeep).has_value());
}

TEST(ServiceJson, ControlCharactersEscapedOnDump) {
  Json s(std::string("a\x01\nb"));
  EXPECT_EQ(s.dump(), "\"a\\u0001\\nb\"");
  auto back = service::json_parse(s.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_string(), "a\x01\nb");
}

// ---------------------------------------------------------------------------
// Protocol layer.

TEST(ServiceProtocol, SessionNameValidation) {
  EXPECT_TRUE(service::valid_session_name("a"));
  EXPECT_TRUE(service::valid_session_name("s-1.backup_2"));
  EXPECT_FALSE(service::valid_session_name(""));
  EXPECT_FALSE(service::valid_session_name("."));
  EXPECT_FALSE(service::valid_session_name(".."));
  EXPECT_FALSE(service::valid_session_name("a/b"));
  EXPECT_FALSE(service::valid_session_name("a b"));
  EXPECT_FALSE(service::valid_session_name(std::string(65, 'x')));
}

TEST(ServiceProtocol, RequestValidationPaths) {
  auto err_of = [](const std::string& frame) {
    auto p = service::parse_request(frame);
    EXPECT_FALSE(p.request.has_value()) << frame;
    auto doc = service::json_parse(p.error_response);
    EXPECT_TRUE(doc.has_value());
    const Json* e = doc->find("error");
    const Json* c = e ? e->find("code") : nullptr;
    return c && c->is_string() ? c->as_string() : std::string();
  };
  EXPECT_EQ(err_of("garbage"), "bad_frame");
  EXPECT_EQ(err_of("[1,2]"), "bad_frame");
  EXPECT_EQ(err_of("{}"), "bad_request");                       // no verb
  EXPECT_EQ(err_of(R"({"verb":"warp"})"), "unknown_verb");
  EXPECT_EQ(err_of(R"({"verb":"estimate"})"), "bad_request");   // no session
  EXPECT_EQ(err_of(R"({"verb":"load","session":"../x"})"), "bad_session");
  EXPECT_EQ(err_of(R"({"verb":"ping","deadline_ms":-5})"), "bad_request");
  EXPECT_EQ(err_of(R"({"verb":"ping","deadline_ms":1.5})"), "bad_request");

  auto p = service::parse_request(
      R"({"verb":"estimate","session":"s","id":7,"deadline_ms":250})");
  ASSERT_TRUE(p.request.has_value());
  EXPECT_EQ(p.request->verb, service::Verb::Estimate);
  EXPECT_EQ(p.request->session, "s");
  EXPECT_EQ(p.request->deadline_ms, 250u);
  EXPECT_EQ(p.request->id.dump(), "7");
}

TEST(ServiceProtocol, OversizedFrameRejected) {
  std::string big(service::kMaxFrameBytes + 1, 'x');
  auto p = service::parse_request(big);
  ASSERT_FALSE(p.request.has_value());
  EXPECT_NE(p.error_response.find("bad_frame"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Watchdog.

TEST(ServiceWatchdog, FiresExpiredTokensOnly) {
  service::Watchdog dog(std::chrono::milliseconds(1));
  core::CancelToken soon, later;
  auto now = service::Watchdog::Clock::now();
  dog.arm(&soon, now + std::chrono::milliseconds(5));
  std::uint64_t id = dog.arm(&later, now + std::chrono::hours(1));
  for (int i = 0; i < 500 && !soon.cancelled(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(soon.cancelled());
  EXPECT_FALSE(later.cancelled());
  EXPECT_EQ(dog.armed(), 1u);  // fired entry was removed
  dog.disarm(id);
  EXPECT_EQ(dog.armed(), 0u);
  EXPECT_GE(dog.fired(), 1u);
}

TEST(ServiceWatchdog, DeadlineGuardZeroIsNoOp) {
  service::Watchdog dog;
  core::CancelToken t;
  {
    service::DeadlineGuard guard(dog, t, 0);
    EXPECT_EQ(dog.armed(), 0u);
  }
  {
    service::DeadlineGuard guard(dog, t, 60 * 1000);
    EXPECT_EQ(dog.armed(), 1u);
  }
  EXPECT_EQ(dog.armed(), 0u);
  EXPECT_FALSE(t.cancelled());
}

// ---------------------------------------------------------------------------
// Structural hash.

TEST(ServiceHash, InvariantUnderNamesAndRenumbering) {
  Netlist a = bench::alu(4);
  std::uint64_t h = structural_hash(a);

  Netlist renamed = a.clone();
  for (NodeId i = 0; i < renamed.size(); ++i)
    if (!renamed.is_dead(i) && !renamed.node(i).name.empty())
      renamed.node(i).name += "_x";
  EXPECT_EQ(structural_hash(renamed), h);

  // Tombstones + renumbering: splice a no-op buffer pair in and take it
  // back out via substitute/remove; the function and structure are back to
  // the original even though ids shifted and tombstones remain.
  Netlist edited = a.clone();
  NodeId o = edited.outputs()[0];
  NodeId f = edited.node(o).fanins[0];
  NodeId b1 = edited.add_buf(f);
  edited.replace_fanin(o, 0, b1);
  EXPECT_NE(structural_hash(edited), h);
  edited.substitute(b1, f);
  EXPECT_EQ(structural_hash(edited), h);

  // compact() renumbers wholesale; still invariant.
  edited.compact();
  EXPECT_EQ(structural_hash(edited), h);
}

TEST(ServiceHash, SensitiveToParameters) {
  Netlist a = bench::ripple_carry_adder(4);
  std::uint64_t h = structural_hash(a);
  Netlist b = a.clone();
  NodeId g = b.outputs()[0];
  b.node(g).size = 4.0;
  EXPECT_NE(structural_hash(b), h);
  Netlist c = a.clone();
  c.node(c.outputs()[0]).delay += 3;
  EXPECT_NE(structural_hash(c), h);
}

// ---------------------------------------------------------------------------
// Environment knobs (core/env.hpp).

TEST(ServiceEnv, LongParsesAndRejects) {
  auto p = core::parse_env_long("LPS_THREADS", "8", 1, 256, 1);
  EXPECT_TRUE(p.ok);
  EXPECT_TRUE(p.present);
  EXPECT_EQ(p.value, 8);

  p = core::parse_env_long("LPS_THREADS", nullptr, 1, 256, 7);
  EXPECT_TRUE(p.ok);
  EXPECT_FALSE(p.present);
  EXPECT_EQ(p.value, 7);

  p = core::parse_env_long("LPS_THREADS", "8x", 1, 256, 1);
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.value, 1);  // default, never the half-parsed 8
  EXPECT_EQ(p.status.diagnostic().loc.file, "$LPS_THREADS");
  EXPECT_EQ(p.status.diagnostic().loc.col, 2);  // the 'x'

  p = core::parse_env_long("LPS_SIM_BLOCK", "banana", 1, 16, 4);
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.value, 4);
  EXPECT_EQ(p.status.diagnostic().loc.col, 1);

  p = core::parse_env_long("LPS_THREADS", "999999", 1, 256, 1);
  EXPECT_FALSE(p.ok);  // out of range
  EXPECT_EQ(p.value, 1);

  p = core::parse_env_long("LPS_THREADS", "", 1, 256, 1);
  EXPECT_FALSE(p.ok);

  // Saturation instead of wraparound on absurd magnitudes.
  p = core::parse_env_long("LPS_THREADS", "99999999999999999999999", 1, 256, 1);
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.value, 1);
}

TEST(ServiceEnv, BoolSpellingsAreClosed) {
  for (const char* t : {"1", "true"}) {
    auto p = core::parse_env_bool("LPS_SIM_COMPILED", t, false);
    EXPECT_TRUE(p.ok) << t;
    EXPECT_EQ(p.value, 1) << t;
  }
  for (const char* t : {"0", "false"}) {
    auto p = core::parse_env_bool("LPS_SIM_COMPILED", t, true);
    EXPECT_TRUE(p.ok) << t;
    EXPECT_EQ(p.value, 0) << t;
  }
  for (const char* t : {"TRUE", "yes", "on", "2", " 1", ""}) {
    auto p = core::parse_env_bool("LPS_SIM_COMPILED", t, true);
    EXPECT_FALSE(p.ok) << t;
    EXPECT_EQ(p.value, 1) << t;  // default
    EXPECT_EQ(p.status.diagnostic().loc.file, "$LPS_SIM_COMPILED");
  }
}

// ---------------------------------------------------------------------------
// Verb round trips (in-process dispatch).

TEST(ServiceVerbs, LoadEstimateMutateRollback) {
  service::Service svc;
  Json ping = roundtrip(svc, R"({"verb":"ping","id":1})");
  EXPECT_TRUE(resp_ok(ping));
  EXPECT_EQ(ping.find("id")->dump(), "1");

  Json load = roundtrip(svc, load_frame("s1", bench_blif()));
  ASSERT_TRUE(resp_ok(load));
  std::string hash0 = load.find("hash")->as_string();

  // Estimate must agree bit-for-bit with a direct power::analyze.
  Netlist net = bench_net();
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  auto direct = power::analyze(net, ao);
  Json est = roundtrip(svc, R"({"verb":"estimate","session":"s1"})");
  ASSERT_TRUE(resp_ok(est));
  EXPECT_EQ(est.find("power_w")->as_number(),
            direct.report.breakdown.total_w());
  EXPECT_TRUE(est.find("cached")->as_bool());

  // An uncached estimate (different seed) equals a fresh direct run too.
  ao.seed = 99;
  auto direct99 = power::analyze(net, ao);
  Json est99 =
      roundtrip(svc, R"({"verb":"estimate","session":"s1","seed":99})");
  ASSERT_TRUE(resp_ok(est99));
  EXPECT_EQ(est99.find("power_w")->as_number(),
            direct99.report.breakdown.total_w());
  EXPECT_FALSE(est99.find("cached")->as_bool());

  Json mut = roundtrip(
      svc,
      R"({"verb":"mutate","session":"s1","ops":[{"op":"set_size","node":"n17","value":3.0}]})");
  ASSERT_TRUE(resp_ok(mut));
  EXPECT_NE(mut.find("hash")->as_string(), hash0);
  EXPECT_EQ(mut.find("journal_records")->as_number(), 1);

  Json rb = roundtrip(svc, R"({"verb":"rollback","session":"s1"})");
  ASSERT_TRUE(resp_ok(rb));
  EXPECT_EQ(rb.find("hash")->as_string(), hash0);

  Json rb2 = roundtrip(svc, R"({"verb":"rollback","session":"s1"})");
  EXPECT_FALSE(resp_ok(rb2));
  EXPECT_EQ(err_code(rb2), "nothing_to_do");
}

TEST(ServiceVerbs, ErrorsAreStructuredAndSessionScoped) {
  service::Service svc;
  EXPECT_EQ(err_code(roundtrip(svc, R"({"verb":"estimate","session":"nope"})")),
            "no_session");
  EXPECT_EQ(err_code(roundtrip(
                svc, R"({"verb":"load","session":"s1","blif":"not blif"})")),
            "parse_error");
  // A failed load leaves no usable netlist behind.
  EXPECT_EQ(err_code(roundtrip(svc, R"({"verb":"estimate","session":"s1"})")),
            "no_session");

  ASSERT_TRUE(resp_ok(roundtrip(svc, load_frame("s1", bench_blif()))));
  Json before = roundtrip(svc, R"({"verb":"stat","session":"s1"})");
  std::string hash = before.find("hash")->as_string();

  // A rejected edit script must leave the netlist untouched (rolled back).
  const char* bad_mutates[] = {
      R"({"verb":"mutate","session":"s1","ops":[{"op":"remove","node":"a0"}]})",
      R"({"verb":"mutate","session":"s1","ops":[{"op":"add_gate","type":"mux","fanins":["a0","b0"]}]})",
      R"({"verb":"mutate","session":"s1","ops":[{"op":"replace_fanin","node":"n17","index":99,"with":"a0"}]})",
      R"({"verb":"mutate","session":"s1","ops":[{"op":"set_size","node":99999,"value":2.0}]})",
      R"({"verb":"mutate","session":"s1","ops":[{"op":"set_size","node":"n17","value":3.0},{"op":"frobnicate"}]})",
      R"({"verb":"mutate","session":"s1","ops":[]})",
      R"({"verb":"mutate","session":"s1","ops":7})",
  };
  for (const char* frame : bad_mutates) {
    Json r = roundtrip(svc, frame);
    EXPECT_FALSE(resp_ok(r)) << frame;
    EXPECT_EQ(err_code(r), "mutate_error") << frame;
  }
  Json after = roundtrip(svc, R"({"verb":"stat","session":"s1"})");
  EXPECT_EQ(after.find("hash")->as_string(), hash);
  EXPECT_EQ(after.find("journal_records")->as_number(), 0);
}

TEST(ServiceVerbs, OptimizeKeepsResultAndJournals) {
  service::Service svc;
  ASSERT_TRUE(
      resp_ok(roundtrip(svc, load_frame("s1", bench_blif(), /*vectors=*/256))));
  Json opt = roundtrip(
      svc, R"({"verb":"optimize","session":"s1","flow":"combinational"})");
  ASSERT_TRUE(resp_ok(opt));
  EXPECT_GT(opt.find("stages")->as_number(), 1);
  EXPECT_EQ(opt.find("journal_records")->as_number(), 1);
  // Rollback of an optimize replays the journal prefix back to the load.
  Json rb = roundtrip(svc, R"({"verb":"rollback","session":"s1"})");
  ASSERT_TRUE(resp_ok(rb));
  Netlist net = bench_net();
  EXPECT_EQ(rb.find("hash")->as_string(),
            service::format_hash(structural_hash(net)));
}

TEST(ServiceVerbs, OptimizeWorkersParamIsBitIdenticalAndValidated) {
  service::Service svc;
  ASSERT_TRUE(
      resp_ok(roundtrip(svc, load_frame("s1", bench_blif(), /*vectors=*/256))));
  ASSERT_TRUE(
      resp_ok(roundtrip(svc, load_frame("s2", bench_blif(), /*vectors=*/256))));
  Json seq = roundtrip(
      svc, R"({"verb":"optimize","session":"s1","flow":"combinational"})");
  ASSERT_TRUE(resp_ok(seq));
  Json par = roundtrip(
      svc,
      R"({"verb":"optimize","session":"s2","flow":"combinational","workers":4})");
  ASSERT_TRUE(resp_ok(par));
  // Speculation only changes wall-clock: the optimized circuit is the same.
  EXPECT_EQ(par.find("hash")->as_string(), seq.find("hash")->as_string());
  // Out-of-range or fractional worker counts are rejected up front.
  EXPECT_EQ(err_code(roundtrip(
                svc,
                R"({"verb":"optimize","session":"s1","workers":0})")),
            "bad_request");
  EXPECT_EQ(err_code(roundtrip(
                svc,
                R"({"verb":"optimize","session":"s1","workers":2.5})")),
            "bad_request");
  EXPECT_EQ(err_code(roundtrip(
                svc,
                R"({"verb":"optimize","session":"s1","workers":1000})")),
            "bad_request");
}

// ---------------------------------------------------------------------------
// Cancellation / deadlines.

TEST(ServiceCancel, SessionEstimateCancelsCleanly) {
  service::Session s("s", "");
  ASSERT_TRUE(s.load(bench_blif(), 2048, 0xC0FFEE, true, nullptr).status.is_ok());
  core::CancelToken t;
  t.cancel();
  Json params;
  params.set("seed", Json(123));  // forces the uncached (simulating) path
  EXPECT_THROW(s.estimate(params, &t), core::CancelledError);
  // The session still answers normally afterwards.
  Json none;
  auto r = s.estimate(none, nullptr);
  EXPECT_TRUE(r.status.is_ok());
}

TEST(ServiceCancel, CancelledMutateIsAllOrNothing) {
  service::Session s("s", "");
  ASSERT_TRUE(s.load(bench_blif(), 2048, 0xC0FFEE, true, nullptr).status.is_ok());
  std::uint64_t hash0 = s.hash();
  auto baseline = // bit-exact expected analysis of the unmutated netlist
      power::analyze(bench_net(), [] {
        power::AnalysisOptions ao;
        ao.mode = power::ActivityMode::ZeroDelay;
        return ao;
      }());

  JsonArray ops_a;
  {
    Json op;
    op.set("op", Json("set_size"));
    op.set("node", Json("n17"));
    op.set("value", Json(2.5));
    ops_a.push_back(op);
  }
  Json ops{ops_a};

  // Fire the token at a range of poll points inside the re-estimate; every
  // one must roll back to exactly the pre-request state.
  bool cancelled_at_least_once = false;
  for (int budget : {0, 1, 2, 5, 9}) {
    core::CancelToken t;
    t.cancel_after(budget);
    auto r = s.mutate(ops, &t);
    if (r.status.is_ok()) continue;  // budget outlived the update: fine
    EXPECT_EQ(r.code, service::ErrorCode::Deadline);
    cancelled_at_least_once = true;
    EXPECT_EQ(s.hash(), hash0);
    EXPECT_EQ(s.journal_records(), 0u);
    // The analyzer caches must have survived the aborted update: a cached
    // estimate still equals the direct analysis of the unmutated netlist.
    Json none;
    auto est = s.estimate(none, nullptr);
    ASSERT_TRUE(est.status.is_ok());
    double power = 0;
    for (auto& [k, v] : est.payload)
      if (k == "power_w") power = v.as_number();
    EXPECT_EQ(power, baseline.report.breakdown.total_w());
  }
  EXPECT_TRUE(cancelled_at_least_once);

  // And with no token the same mutate commits.
  auto r = s.mutate(ops, nullptr);
  EXPECT_TRUE(r.status.is_ok());
  EXPECT_NE(s.hash(), hash0);
}

TEST(ServiceCancel, IncrementalReanalyzeCancellationDifferential) {
  // Satellite: a cancellation mid-reanalyze must leave the analyzer's
  // caches exactly as before the call (strong exception safety), proven
  // differentially against fresh full analyses at a range of poll points.
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = 1024;  // 16 frames -> the cone sweep polls 16 times

  bool cancelled_at_least_once = false, committed_at_least_once = false;
  for (int budget : {0, 1, 3, 7, 1000000}) {
    Netlist net = bench::alu(4);
    core::CancelToken t;
    power::IncrementalAnalyzer inc(net, ao);
    inc.set_cancel(&t);
    double baseline = inc.analysis().report.breakdown.total_w();

    net.begin_undo();
    NodeId o = net.outputs()[0];
    NodeId f = net.node(o).fanins[0];
    net.replace_fanin(o, 0, net.add_not(net.add_not(f)));
    auto touched = net.touched_nodes();

    t.cancel_after(budget);
    try {
      inc.reanalyze(touched);
      net.commit_undo();
      committed_at_least_once = true;
    } catch (const core::CancelledError&) {
      cancelled_at_least_once = true;
      net.rollback_undo();
      // Caches restored: the held analysis is still the pre-call baseline…
      EXPECT_EQ(inc.analysis().report.breakdown.total_w(), baseline);
    }
    // …and in either outcome the analyzer agrees bit-for-bit with a fresh
    // full analysis of the netlist as it now stands.
    auto full = power::analyze(net, ao);
    EXPECT_EQ(inc.analysis().report.breakdown.total_w(),
              full.report.breakdown.total_w())
        << "budget " << budget;
  }
  EXPECT_TRUE(cancelled_at_least_once);
  EXPECT_TRUE(committed_at_least_once);
}

TEST(ServiceCancel, WatchdogDeadlineFiresOnSlowEstimate) {
  service::Service svc;
  ASSERT_TRUE(resp_ok(
      roundtrip(svc, load_frame("s1", blif::write_string(
                                          bench::array_multiplier(8))))));
  // Timed mode with a large vector count runs long enough (hundreds of ms)
  // that a 1 ms deadline reliably fires at a poll point.
  Json req;
  req.set("verb", Json("estimate"));
  req.set("session", Json("s1"));
  req.set("mode", Json("timed"));
  req.set("vectors", Json(200000));
  req.set("deadline_ms", Json(1));
  Json r = roundtrip(svc, req.dump());
  EXPECT_FALSE(resp_ok(r));
  EXPECT_EQ(err_code(r), "deadline");
  // The session is fully usable afterwards.
  EXPECT_TRUE(
      resp_ok(roundtrip(svc, R"({"verb":"estimate","session":"s1"})")));
}

// ---------------------------------------------------------------------------
// Graceful degradation.

TEST(ServiceDegrade, ForcedTapeFailureFallsBackInsideMutate) {
  service::Session s("s", "");
  ASSERT_TRUE(s.load(bench_blif(), 2048, 0xC0FFEE, true, nullptr).status.is_ok());
  double before = core::metrics::value("power.inc.tape_fallback");
  power::detail::force_tape_failures(1);
  JsonArray arr;
  {
    Json op;
    op.set("op", Json("set_size"));
    op.set("node", Json("n22"));
    op.set("value", Json(2.0));
    arr.push_back(op);
  }
  auto r = s.mutate(Json{arr}, nullptr);
  EXPECT_TRUE(r.status.is_ok());  // degraded, not failed
  power::detail::force_tape_failures(0);
  // The estimate after the degraded update still matches a fresh analysis.
  Netlist net = bench_net();
  auto* n1 = net.find("n22") ? &net.node(*net.find("n22")) : nullptr;
  ASSERT_NE(n1, nullptr);
  n1->size = 2.0;
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  auto full = power::analyze(net, ao);
  Json none;
  auto est = s.estimate(none, nullptr);
  ASSERT_TRUE(est.status.is_ok());
  for (auto& [k, v] : est.payload)
    if (k == "power_w")
      EXPECT_EQ(v.as_number(), full.report.breakdown.total_w());
  EXPECT_GE(core::metrics::value("power.inc.tape_fallback"), before);
}

TEST(ServiceDegrade, EvictionDegradesEstimatesWithoutBreakingThem) {
  service::ServiceOptions so;
  so.memory_cap_bytes = 1;  // evict everything not currently in use
  service::Service svc(so);
  ASSERT_TRUE(resp_ok(roundtrip(svc, load_frame("a", bench_blif()))));
  ASSERT_TRUE(resp_ok(roundtrip(svc, load_frame("b", bench_blif()))));
  // Loading b (the later request) evicted a's caches under the 1-byte cap.
  Json stat_a = roundtrip(svc, R"({"verb":"stat","session":"a"})");
  EXPECT_EQ(stat_a.find("cache_bytes")->as_number(), 0);
  EXPECT_FALSE(stat_a.find("analyzer")->as_bool());
  // a's estimates still work — served by full analysis, bit-identical.
  Netlist net = bench_net();
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  auto direct = power::analyze(net, ao);
  Json est = roundtrip(svc, R"({"verb":"estimate","session":"a"})");
  ASSERT_TRUE(resp_ok(est));
  EXPECT_EQ(est.find("power_w")->as_number(),
            direct.report.breakdown.total_w());
  EXPECT_FALSE(est.find("cached")->as_bool());
  Json stat2 = roundtrip(svc, R"({"verb":"stat","session":"a"})");
  EXPECT_GE(stat2.find("estimates_degraded")->as_number(), 1);
}

// ---------------------------------------------------------------------------
// Concurrency: estimates in parallel vs serialized must be bit-identical.

TEST(ServiceConcurrency, ParallelEstimatesMatchSerialized) {
  service::Service svc;
  ASSERT_TRUE(resp_ok(roundtrip(svc, load_frame("s1", bench_blif()))));

  auto frame_for = [](int seed) {
    Json req;
    req.set("verb", Json("estimate"));
    req.set("session", Json("s1"));
    req.set("seed", Json(seed));
    req.set("id", Json(seed));
    return req.dump();
  };
  constexpr int kThreads = 8, kPerThread = 4;

  // Serialized reference.
  std::vector<std::string> expect(kThreads * kPerThread);
  for (int i = 0; i < kThreads * kPerThread; ++i)
    expect[i] = svc.dispatch(frame_for(i % 5));

  // Concurrent run of the identical request stream.
  std::vector<std::string> got(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int k = t * kPerThread + i;
        got[k] = svc.dispatch(frame_for(k % 5));
      }
    });
  for (auto& th : threads) th.join();
  for (int i = 0; i < kThreads * kPerThread; ++i)
    EXPECT_EQ(got[i], expect[i]) << "estimate " << i;
}

// ---------------------------------------------------------------------------
// Journal recovery.

TEST(ServiceJournal, RecoverReproducesCommittedState) {
  std::string dir = temp_dir("recover");
  std::string hash_after;
  {
    service::ServiceOptions so;
    so.journal_dir = dir;
    service::Service svc(so);
    ASSERT_TRUE(resp_ok(roundtrip(svc, load_frame("s1", bench_blif()))));
    ASSERT_TRUE(resp_ok(roundtrip(
        svc,
        R"({"verb":"mutate","session":"s1","ops":[{"op":"set_size","node":"n17","value":2.0}]})")));
    Json mut2 = roundtrip(
        svc,
        R"({"verb":"mutate","session":"s1","ops":[{"op":"add_gate","type":"not","fanins":["n17"],"name":"n17_inv"},{"op":"add_output","node":"n17_inv"}]})");
    ASSERT_TRUE(resp_ok(mut2));
    hash_after = mut2.find("hash")->as_string();
  }  // destructor = abrupt end; journal survives

  service::ServiceOptions so;
  so.journal_dir = dir;
  service::Service svc2(so);
  EXPECT_EQ(svc2.recover_sessions(), 1u);
  Json stat = roundtrip(svc2, R"({"verb":"stat","session":"s1"})");
  ASSERT_TRUE(resp_ok(stat));
  EXPECT_EQ(stat.find("hash")->as_string(), hash_after);
  EXPECT_EQ(stat.find("journal_records")->as_number(), 2);
  // The recovered session keeps working (estimate + rollback).
  EXPECT_TRUE(
      resp_ok(roundtrip(svc2, R"({"verb":"estimate","session":"s1"})")));
  EXPECT_TRUE(
      resp_ok(roundtrip(svc2, R"({"verb":"rollback","session":"s1"})")));
}

TEST(ServiceJournal, TornFinalRecordTruncatesToCommittedPrefix) {
  std::string dir = temp_dir("torn");
  std::string hash_mid;
  {
    service::ServiceOptions so;
    so.journal_dir = dir;
    service::Service svc(so);
    ASSERT_TRUE(resp_ok(roundtrip(svc, load_frame("s1", bench_blif()))));
    Json mut1 = roundtrip(
        svc,
        R"({"verb":"mutate","session":"s1","ops":[{"op":"set_size","node":"n17","value":2.0}]})");
    ASSERT_TRUE(resp_ok(mut1));
    hash_mid = mut1.find("hash")->as_string();
    ASSERT_TRUE(resp_ok(roundtrip(
        svc,
        R"({"verb":"mutate","session":"s1","ops":[{"op":"set_size","node":"n22","value":3.0}]})")));
  }
  // Simulate a kill mid-append of the last record: drop its tail bytes.
  std::string path = dir + "/s1.journal";
  std::ifstream is(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  is.close();
  ASSERT_GT(data.size(), 30u);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(data.data(), static_cast<std::streamsize>(data.size() - 25));
  os.close();

  service::ServiceOptions so;
  so.journal_dir = dir;
  service::Service svc2(so);
  EXPECT_EQ(svc2.recover_sessions(), 1u);
  Json stat = roundtrip(svc2, R"({"verb":"stat","session":"s1"})");
  ASSERT_TRUE(resp_ok(stat));
  // Fully rolled back to the last committed transition — the first mutate.
  EXPECT_EQ(stat.find("journal_records")->as_number(), 1);
  EXPECT_EQ(stat.find("hash")->as_string(), hash_mid);
}

TEST(ServiceJournal, GarbageJournalIsSkippedNotFatal) {
  std::string dir = temp_dir("garbage");
  {
    std::ofstream os(dir + "/bad.journal");
    os << "this is not a journal\n";
  }
  service::ServiceOptions so;
  so.journal_dir = dir;
  service::Service svc(so);
  EXPECT_EQ(svc.recover_sessions(), 0u);
  // The daemon is fine; the broken name is still loadable fresh.
  EXPECT_TRUE(resp_ok(roundtrip(svc, load_frame("bad", bench_blif()))));
}

// ---------------------------------------------------------------------------
// Protocol fuzz: 3000 seeded mutations of valid frames, every one answered.

TEST(ServiceFuzz, MutatedFramesAlwaysGetStructuredAnswers) {
  service::Service svc;
  ASSERT_TRUE(resp_ok(roundtrip(svc, load_frame("s1", bench_blif(), 256))));

  const std::string corpus[] = {
      load_frame("s2", bench_blif(), 256),
      R"({"verb":"ping","id":42})",
      R"({"verb":"estimate","session":"s1","seed":7,"deadline_ms":5000})",
      R"({"verb":"mutate","session":"s1","ops":[{"op":"set_size","node":"n17","value":2.0}]})",
      R"({"verb":"mutate","session":"s1","ops":[{"op":"add_gate","type":"and","fanins":["a0","b0"],"name":"t1"}]})",
      R"({"verb":"rollback","session":"s1"})",
      R"({"verb":"stat","session":"s1"})",
      R"({"verb":"stat"})",
  };

  std::mt19937 rng(0xF00D);
  auto mutate_frame = [&](std::string s) {
    int kind = static_cast<int>(rng() % 6);
    if (s.empty()) return s;
    std::size_t pos = rng() % s.size();
    switch (kind) {
      case 0: s[pos] = static_cast<char>(rng() % 256); break;       // smash
      case 1: s.erase(pos, std::min<std::size_t>(s.size() - pos,
                                                 1 + rng() % 8)); break;
      case 2: s.insert(pos, std::string(1 + rng() % 4,
                                        static_cast<char>(rng() % 256)));
              break;
      case 3: s = s.substr(0, pos); break;                          // truncate
      case 4: std::swap(s[pos], s[rng() % s.size()]); break;
      case 5: s += s.substr(0, pos); break;                         // duplicate
    }
    return s;
  };

  int structured = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string frame = corpus[rng() % std::size(corpus)];
    int rounds = 1 + static_cast<int>(rng() % 3);
    for (int r = 0; r < rounds; ++r) frame = mutate_frame(std::move(frame));
    std::string resp = svc.dispatch(frame);
    auto doc = service::json_parse(resp);
    ASSERT_TRUE(doc.has_value()) << "frame " << i << ": " << frame;
    const Json* ok = doc->find("ok");
    ASSERT_TRUE(ok && ok->is_bool()) << "frame " << i;
    ++structured;
  }
  EXPECT_EQ(structured, 3000);
  // After 3000 hostile frames the daemon still works end to end.
  EXPECT_TRUE(
      resp_ok(roundtrip(svc, R"({"verb":"estimate","session":"s1"})")));
}

// ---------------------------------------------------------------------------
// Sockets.

TEST(ServiceSockets, RoundTripAndHostileClients) {
  std::string dir = temp_dir("sock");
  std::string path = dir + "/d.sock";
  service::Service svc;
  service::SocketServer server(svc, path);
  ASSERT_TRUE(server.start().is_ok());
  std::thread serving([&] { server.serve(); });

  {
    service::SocketClient c;
    ASSERT_TRUE(c.connect(path).is_ok());
    auto pong = c.roundtrip(R"({"verb":"ping"})");
    ASSERT_TRUE(pong.has_value());
    EXPECT_NE(pong->find("\"pong\":true"), std::string::npos);

    auto loaded = c.roundtrip(load_frame("s1", bench_blif()));
    ASSERT_TRUE(loaded.has_value());
    EXPECT_NE(loaded->find("\"ok\":true"), std::string::npos);

    // Pipelining: two frames in one write, two responses back.
    ASSERT_TRUE(c.send_raw("{\"verb\":\"ping\",\"id\":1}\n"
                           "{\"verb\":\"ping\",\"id\":2}\n"));
    auto r1 = c.read_line(), r2 = c.read_line();
    ASSERT_TRUE(r1.has_value() && r2.has_value());
    EXPECT_NE(r1->find("\"id\":1"), std::string::npos);
    EXPECT_NE(r2->find("\"id\":2"), std::string::npos);
  }

  {
    // Hostile: truncated frame then disconnect — daemon must survive.
    service::SocketClient c;
    ASSERT_TRUE(c.connect(path).is_ok());
    ASSERT_TRUE(c.send_raw(R"({"verb":"estimate","ses)"));
    c.close();
  }
  {
    // Hostile: binary garbage with newlines — structured errors back.
    service::SocketClient c;
    ASSERT_TRUE(c.connect(path).is_ok());
    ASSERT_TRUE(c.send_raw("\x01\x02\xff garbage\n"));
    auto r = c.read_line();
    ASSERT_TRUE(r.has_value());
    EXPECT_NE(r->find("bad_frame"), std::string::npos);
  }
  {
    // The daemon still answers a well-behaved client afterwards.
    service::SocketClient c;
    ASSERT_TRUE(c.connect(path).is_ok());
    auto est = c.roundtrip(R"({"verb":"estimate","session":"s1"})");
    ASSERT_TRUE(est.has_value());
    EXPECT_NE(est->find("\"ok\":true"), std::string::npos);
    auto bye = c.roundtrip(R"({"verb":"shutdown"})");
    ASSERT_TRUE(bye.has_value());
  }
  serving.join();
}

}  // namespace
}  // namespace lps
