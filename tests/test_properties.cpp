// Parameterized property sweeps across the library's invariants
// (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd_netlist.hpp"
#include "coding/bus_invert.hpp"
#include "logicopt/path_balance.hpp"
#include "logicopt/decompose_power.hpp"
#include "logicopt/techmap.hpp"
#include "seq/retiming.hpp"
#include "sop/minimize.hpp"
#include "netlist/benchmarks.hpp"
#include "seq/encoding.hpp"
#include "seq/precompute.hpp"
#include "sim/eventsim.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

// --- strash is semantics-preserving on random DAGs -------------------------

class StrashProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StrashProperty, PreservesFunctionAndNeverGrows) {
  auto net = bench::random_dag(10, 80, GetParam());
  auto s = strash(net);
  EXPECT_LE(s.num_gates(), net.num_gates());
  EXPECT_TRUE(sim::equivalent_random(net, s, 128, GetParam()));
  EXPECT_EQ(s.check(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrashProperty,
                         ::testing::Range(1u, 21u));

// --- full balancing always kills glitches, at unchanged delay --------------

class BalanceProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BalanceProperty, ZeroGlitchAtSameCriticalDelay) {
  auto net = bench::random_dag(8, 60, GetParam());
  auto golden = net.clone();
  int delay = net.critical_delay();
  logicopt::full_balance(net);
  EXPECT_EQ(net.critical_delay(), delay);
  EXPECT_TRUE(sim::equivalent_random(golden, net, 128, GetParam() * 3));
  auto ts = sim::measure_timed_activity(net, 200, GetParam());
  EXPECT_NEAR(ts.glitch_fraction(), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalanceProperty, ::testing::Range(1u, 13u));

// --- technology mapping preserves function on random logic -----------------

class TechMapProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TechMapProperty, MappingIsEquivalent) {
  auto net = bench::random_dag(8, 50, GetParam());
  auto lib = logicopt::standard_library();
  auto subject = logicopt::subject_graph(net);
  for (auto obj : {logicopt::MapObjective::Area,
                   logicopt::MapObjective::Power}) {
    auto mapped = logicopt::tech_map(net, lib, obj).to_netlist(subject);
    EXPECT_TRUE(sim::equivalent_random(net, mapped, 128, GetParam() * 7));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TechMapProperty, ::testing::Range(1u, 11u));

// --- bus-invert: lossless, bounded, never worse than raw + 1 line ----------

class BusInvertProperty : public ::testing::TestWithParam<int> {};

TEST_P(BusInvertProperty, LosslessAndBounded) {
  int width = GetParam();
  auto s = sim::uniform_stream(width, 3000, width * 31u);
  coding::BusInvertEncoder enc(width);
  std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  std::uint64_t prev_wires = 0;
  bool prev_inv = false;
  bool first = true;
  for (auto w : s) {
    auto sym = enc.encode(w);
    EXPECT_EQ(coding::bus_invert_decode(sym.wire_word, sym.invert, width),
              w & mask);
    if (!first) {
      int toggles = std::popcount(sym.wire_word ^ prev_wires) +
                    (sym.invert != prev_inv ? 1 : 0);
      EXPECT_LE(toggles, (width + 1) / 2 + 1);
    }
    prev_wires = sym.wire_word;
    prev_inv = sym.invert;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BusInvertProperty,
                         ::testing::Values(2, 3, 4, 7, 8, 12, 16, 24, 32,
                                           48, 63));

// --- precomputation: trace-exact and honest about hit rate -----------------

class PrecomputeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrecomputeProperty, ComparatorAllWidths) {
  int n = GetParam();
  auto comb = bench::comparator_gt(n);
  auto sel = seq::select_precompute_inputs(comb, 2);
  EXPECT_NEAR(sel.hit_probability, 0.5, 1e-9);
  auto pre = seq::apply_precomputation(comb, sel.subset);
  auto base = seq::registered_baseline(comb);
  // Trace equivalence.
  sim::LogicSim sa(base), sb(pre.circuit);
  std::vector<std::uint64_t> qa(base.dffs().size()),
      qb(pre.circuit.dffs().size());
  auto da = base.dffs();
  auto db = pre.circuit.dffs();
  for (std::size_t i = 0; i < da.size(); ++i)
    qa[i] = base.node(da[i]).init_value ? ~0ULL : 0;
  for (std::size_t i = 0; i < db.size(); ++i)
    qb[i] = pre.circuit.node(db[i]).init_value ? ~0ULL : 0;
  std::mt19937_64 rng(n * 101u);
  std::vector<std::uint64_t> pi(base.inputs().size());
  for (int cyc = 0; cyc < 20; ++cyc) {
    for (auto& w : pi) w = rng();
    auto fa = sa.eval(pi, qa);
    auto fb = sb.eval(pi, qb);
    ASSERT_EQ(sa.outputs_of(fa), sb.outputs_of(fb));
    qa = sa.next_state_of(fa);
    qb = sb.next_state_of(fb);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PrecomputeProperty,
                         ::testing::Values(2, 3, 4, 6, 8, 10, 12));

// --- low-power encoding validity over FSM families -------------------------

class EncodingProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EncodingProperty, AnnealedEncodingValidAndNoWorse) {
  auto stg = seq::random_fsm(5 + GetParam() % 8, 2, 2, GetParam());
  ASSERT_EQ(stg.check(), "");
  auto bin = seq::binary_encoding(stg);
  seq::AnnealOptions opt;
  opt.seed = GetParam();
  opt.iterations = 5000;
  auto low = seq::low_power_encoding(stg, opt);
  EXPECT_TRUE(low.valid(stg.num_states()));
  EXPECT_LE(low.weighted_switching(stg),
            bin.weighted_switching(stg) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingProperty, ::testing::Range(1u, 16u));

// --- adders of every width add -----------------------------------------------

class AdderProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdderProperty, RippleEqualsCarrySelectEqualsArithmetic) {
  int w = GetParam();
  auto rca = bench::ripple_carry_adder(w);
  auto csa = bench::carry_select_adder(w, std::max(1, w / 3));
  EXPECT_TRUE(bdd::equivalent_bdd(rca, csa));
  // Arithmetic spot check on lane-parallel random patterns.
  sim::LogicSim s(rca);
  std::mt19937_64 rng(w * 7u);
  std::vector<std::uint64_t> pi(rca.inputs().size());
  for (auto& x : pi) x = rng();
  auto f = s.eval(pi);
  for (int lane = 0; lane < 8; ++lane) {
    std::uint64_t a = 0, b = 0, cin = (pi[2 * w] >> lane) & 1;
    for (int i = 0; i < w; ++i) {
      a |= ((pi[i] >> lane) & 1) << i;
      b |= ((pi[w + i] >> lane) & 1) << i;
    }
    std::uint64_t expect = a + b + cin;
    std::uint64_t got = 0;
    for (int i = 0; i <= w; ++i)
      got |= ((f[rca.outputs()[i]] >> lane) & 1) << i;
    EXPECT_EQ(got, expect & ((2ULL << w) - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16, 24, 32));

// --- two-level minimization: idempotent and monotone ------------------------

class MinimizeIdempotent : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MinimizeIdempotent, SecondPassIsNoop) {
  std::mt19937 rng(GetParam());
  unsigned nv = 5;
  sop::Sop f(nv);
  for (int c = 0; c < 6; ++c) {
    sop::Cube cu(nv);
    for (unsigned v = 0; v < nv; ++v)
      switch (rng() % 3) {
        case 0: cu.set_pos(v); break;
        case 1: cu.set_neg(v); break;
        default: break;
      }
    if (!cu.contradictory()) f.add_cube(cu);
  }
  if (f.empty()) return;
  auto once = sop::minimize(f);
  auto twice = sop::minimize(once);
  EXPECT_LE(twice.num_literals(), once.num_literals());
  EXPECT_TRUE(sop::sop_equal(once, twice));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeIdempotent, ::testing::Range(1u, 11u));

// --- decomposition composes with mapping ------------------------------------

class DecomposeMapProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DecomposeMapProperty, DecomposedCircuitStillMapsEquivalently) {
  auto net = bench::random_dag(8, 40, GetParam());
  auto st = sim::measure_activity(net, 32, GetParam());
  logicopt::decompose_wide_gates(net, logicopt::DecomposeShape::Huffman,
                                 st.transition_prob);
  auto lib = logicopt::standard_library();
  auto subject = logicopt::subject_graph(net);
  auto mapped = logicopt::tech_map(net, lib, logicopt::MapObjective::Power)
                    .to_netlist(subject);
  EXPECT_TRUE(sim::equivalent_random(net, mapped, 128, GetParam() * 3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeMapProperty,
                         ::testing::Range(1u, 9u));

// --- retiming graph: achieved period honours the witness --------------------

class RetimeGraphProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RetimeGraphProperty, WitnessAchievesReportedPeriod) {
  std::mt19937 rng(GetParam());
  seq::RetimeGraph g;
  int n = 6 + static_cast<int>(rng() % 10);
  for (int v = 0; v < n; ++v) g.add_vertex(1 + static_cast<int>(rng() % 6));
  // A ring guarantees every vertex lies on a cycle with registers.
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n, rng() % 2);
  g.add_edge(0, n / 2, 1 + static_cast<int>(rng() % 2));
  for (int extra = 0; extra < n / 2; ++extra) {
    int a = static_cast<int>(rng() % n), b = static_cast<int>(rng() % n);
    if (a != b) g.add_edge(a, b, 1 + static_cast<int>(rng() % 2));
  }
  auto [best, r] = g.min_period_retiming();
  auto rg = g.retimed(r);
  EXPECT_EQ(rg.period(), best);
  EXPECT_LE(best, g.period());
  for (const auto& e : rg.edges())
    EXPECT_GE(e.weight, 0) << "illegal negative register count";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetimeGraphProperty,
                         ::testing::Range(1u, 13u));

}  // namespace
}  // namespace lps
