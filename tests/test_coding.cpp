// Encoding tests: bus-invert, limited-weight codes, gray, one-hot RNS.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <random>

#include "coding/bus_invert.hpp"
#include "coding/gray.hpp"
#include "coding/limited_weight.hpp"
#include "coding/residue.hpp"
#include "sim/stimulus.hpp"

namespace lps::coding {
namespace {

TEST(BusInvert, PaperWorkedExample) {
  // §III-C.1: previous 0000, current 1011 -> send 0100 with E asserted.
  BusInvertEncoder enc(4);
  enc.encode(0b0000);
  auto sym = enc.encode(0b1011);
  EXPECT_TRUE(sym.invert);
  EXPECT_EQ(sym.wire_word, 0b0100u);
  EXPECT_EQ(bus_invert_decode(sym.wire_word, sym.invert, 4), 0b1011u);
}

TEST(BusInvert, SymbolTransitionsIsTheSourceOfTruth) {
  // The worked example again, this time through Symbol::transitions: sending
  // 0100 with E raised toggles two wires (bit 2 plus the E line itself).
  BusInvertEncoder enc(4);
  auto first = enc.encode(0b0000);
  EXPECT_EQ(first.transitions, 0);  // reset state is all-zero, E low
  auto sym = enc.encode(0b1011);
  EXPECT_EQ(sym.wire_word, 0b0100u);
  EXPECT_TRUE(sym.invert);
  EXPECT_EQ(sym.transitions, 2);
  // The accessors expose the state the next cost will be charged against.
  EXPECT_EQ(enc.prev_word(), 0b0100u);
  EXPECT_TRUE(enc.prev_invert());
}

TEST(BusInvert, EvaluateTalliesEqualSymbolTransitionSums) {
  // Regression for the duplicated-state bug: evaluate_bus_invert once kept
  // its own prev_wires/prev_invert copies alongside the encoder's.  The
  // tallies must be reproducible from Symbol::transitions alone.
  std::mt19937_64 rng(7);
  for (int width : {4, 8, 16}) {
    std::uint64_t mask = (1ULL << width) - 1;
    sim::WordStream s;
    for (int i = 0; i < 300; ++i) s.push_back(rng() & mask);

    auto stats = evaluate_bus_invert(s, width);
    BusInvertEncoder enc(width);
    std::size_t sum = 0, worst = 0;
    bool first = true;
    for (auto w : s) {
      auto coded = static_cast<std::size_t>(enc.encode(w).transitions);
      if (!first) {
        sum += coded;
        worst = std::max(worst, coded);
      }
      first = false;
    }
    EXPECT_EQ(stats.coded_transitions, sum) << "width " << width;
    EXPECT_EQ(stats.worst_cycle_coded, worst) << "width " << width;
  }
}

TEST(BusInvert, DecodeInvertsEncode) {
  std::mt19937_64 rng(1);
  for (int width : {3, 8, 16, 32}) {
    BusInvertEncoder enc(width);
    std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    for (int i = 0; i < 500; ++i) {
      std::uint64_t w = rng() & mask;
      auto s = enc.encode(w);
      EXPECT_EQ(bus_invert_decode(s.wire_word, s.invert, width), w);
    }
  }
}

TEST(BusInvert, WorstCaseBounded) {
  // At most ceil(w/2) data-wire toggles + possibly the E line.
  auto s = sim::uniform_stream(8, 4000, 2);
  auto st = evaluate_bus_invert(s, 8);
  EXPECT_LE(st.worst_cycle_coded, 8u / 2 + 1);
  EXPECT_GE(st.worst_cycle_raw, 7u);
}

TEST(BusInvert, SavesOnUniformData) {
  auto s = sim::uniform_stream(8, 20000, 3);
  auto st = evaluate_bus_invert(s, 8);
  // Stan & Burleson report ~18% average savings at width 8.
  EXPECT_GT(st.saving(), 0.10);
  EXPECT_LT(st.saving(), 0.30);
}

TEST(BusInvert, PartitionedBeatsMonolithicOnWideBuses) {
  auto s = sim::uniform_stream(32, 20000, 4);
  auto mono = evaluate_bus_invert(s, 32);
  auto part = evaluate_partitioned_bus_invert(s, 32, 4);
  EXPECT_GT(part.saving(), mono.saving());
}

TEST(BusInvert, LittleHelpOnCorrelatedData) {
  // Low-transition streams rarely exceed w/2 flips, so the invert line
  // seldom pays for itself.
  auto s = sim::correlated_stream(16, 20000, 0.05, 5);
  auto st = evaluate_bus_invert(s, 16);
  EXPECT_LT(st.saving(), 0.05);
}

TEST(BusInvert, RejectsBadWidth) {
  EXPECT_THROW(BusInvertEncoder(0), std::invalid_argument);
  EXPECT_THROW(BusInvertEncoder(65), std::invalid_argument);
}

TEST(Lwc, CodebookBijective) {
  LimitedWeightCode lwc(6, 8);
  std::vector<bool> seen(1 << 8, false);
  for (std::uint64_t v = 0; v < (1 << 6); ++v) {
    auto c = lwc.codeword(v);
    EXPECT_FALSE(seen[c]);
    seen[c] = true;
    EXPECT_EQ(lwc.decode(c), v);
  }
}

TEST(Lwc, ExtraWiresReduceWeight) {
  LimitedWeightCode tight(6, 6), loose(6, 10);
  EXPECT_LT(loose.average_weight(), tight.average_weight());
  EXPECT_LE(loose.max_weight(), tight.max_weight());
}

TEST(Lwc, TransitionSignallingSaves) {
  auto s = sim::uniform_stream(6, 20000, 6);
  auto st = evaluate_lwc(s, 6, 9);
  EXPECT_LT(st.coded_transitions, st.raw_transitions);
}

TEST(Gray, CodecRoundTrip) {
  for (std::uint64_t x = 0; x < 1000; ++x)
    EXPECT_EQ(gray_decode(gray_encode(x)), x);
}

TEST(Gray, AdjacentCodesUnitDistance) {
  for (std::uint64_t x = 0; x < 4096; ++x)
    EXPECT_EQ(std::popcount(gray_encode(x) ^ gray_encode(x + 1)), 1);
}

TEST(Gray, WinsOnSequentialAddresses) {
  auto s = sim::address_stream(16, 20000, 0.95, 7);
  auto st = evaluate_gray(s, 16);
  EXPECT_LT(st.coded_transitions, st.raw_transitions);
  // Pure counting would be ~1 toggle/step gray vs ~2 raw.
  EXPECT_LT(st.coded_transitions, st.raw_transitions * 0.7);
}

TEST(Gray, NeutralOnRandomData) {
  auto s = sim::uniform_stream(16, 20000, 8);
  auto st = evaluate_gray(s, 16);
  double ratio = static_cast<double>(st.coded_transitions) /
                 static_cast<double>(st.raw_transitions);
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(Rns, EncodeDecodeRoundTrip) {
  OneHotRns rns({3, 5, 7});
  EXPECT_EQ(rns.range(), 105u);
  for (std::uint64_t x = 0; x < 105; ++x)
    EXPECT_EQ(rns.decode(rns.encode(x)), x);
}

TEST(Rns, ArithmeticHomomorphism) {
  OneHotRns rns({3, 5, 7, 11});
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    std::uint64_t a = rng() % rns.range();
    std::uint64_t b = rng() % rns.range();
    EXPECT_EQ(rns.decode(rns.add(rns.encode(a), rns.encode(b))),
              (a + b) % rns.range());
    EXPECT_EQ(rns.decode(rns.mul(rns.encode(a), rns.encode(b))),
              (a * b) % rns.range());
  }
}

TEST(Rns, RejectsNonCoprimeModuli) {
  EXPECT_THROW(OneHotRns({4, 6}), std::invalid_argument);
}

TEST(Rns, OneHotTransitionsBounded) {
  OneHotRns rns({3, 5, 7});
  auto a = rns.encode(17), b = rns.encode(94);
  EXPECT_LE(rns.onehot_transitions(a, b), 6);
  EXPECT_EQ(rns.onehot_transitions(a, a), 0);
}

TEST(Rns, AccumulatorSwitchingIsValueIndependent) {
  // One-hot RNS register toggles at most 2 wires per digit; a binary
  // accumulator of the same range toggles ~bits/2 on average.
  OneHotRns rns({5, 7, 9, 11});  // range 3465, ~12 bits
  auto st = evaluate_rns_accumulator(rns, 4000, 13);
  EXPECT_LE(st.avg_transitions_onehot, 8.0 + 1e-9);
  EXPECT_GT(st.avg_transitions_binary, 4.0);
  EXPECT_GT(st.wires_onehot, st.wires_binary);  // the cost side
  // The headline of [11]: no carry chain, so the arithmetic logic switches
  // far less than a rippling (and glitching) binary adder.
  EXPECT_LT(st.logic_transitions_onehot, st.logic_transitions_binary / 3.0);
}

}  // namespace
}  // namespace lps::coding
