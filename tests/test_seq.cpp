// Sequential optimization tests: STG, encoding, retiming, clock gating,
// precomputation, guarded evaluation (§III-C).

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "seq/clock_gating.hpp"
#include "seq/encoding.hpp"
#include "seq/guarded_eval.hpp"
#include "seq/precompute.hpp"
#include "seq/retiming.hpp"
#include "seq/seq_circuit.hpp"
#include "seq/stg.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "sim/logicsim.hpp"

namespace lps::seq {
namespace {

// Drive two sequential netlists with the same input trace; compare outputs.
bool same_traces(const Netlist& a, const Netlist& b, int cycles,
                 std::uint64_t seed) {
  if (a.inputs().size() != b.inputs().size()) return false;
  if (a.outputs().size() != b.outputs().size()) return false;
  sim::LogicSim sa(a), sb(b);
  auto da = a.dffs(), db = b.dffs();
  std::vector<std::uint64_t> qa(da.size()), qb(db.size());
  for (std::size_t i = 0; i < da.size(); ++i)
    qa[i] = a.node(da[i]).init_value ? ~0ULL : 0;
  for (std::size_t i = 0; i < db.size(); ++i)
    qb[i] = b.node(db[i]).init_value ? ~0ULL : 0;
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> pi(a.inputs().size());
  for (int c = 0; c < cycles; ++c) {
    for (auto& w : pi) w = rng();
    auto fa = sa.eval(pi, qa);
    auto fb = sb.eval(pi, qb);
    auto oa = sa.outputs_of(fa), ob = sb.outputs_of(fb);
    for (std::size_t i = 0; i < oa.size(); ++i)
      if (oa[i] != ob[i]) return false;
    qa = sa.next_state_of(fa);
    qb = sb.next_state_of(fb);
  }
  return true;
}

TEST(Stg, CounterSteadyStateUniform) {
  auto g = counter_fsm(8);
  EXPECT_EQ(g.check(), "");
  auto pi = g.steady_state();
  for (double p : pi) EXPECT_NEAR(p, 1.0 / 8.0, 0.01);
}

TEST(Stg, TransitionMatrixRowsSumToOne) {
  auto g = random_fsm(12, 2, 2, 5);
  EXPECT_EQ(g.check(), "");
  auto m = g.transition_matrix();
  for (const auto& row : m) {
    double s = 0;
    for (double x : row) s += x;
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(Stg, KissRoundTrip) {
  auto g = sequence_detector("1011");
  std::ostringstream os;
  write_kiss(os, g);
  auto back = read_kiss_string(os.str());
  EXPECT_EQ(back.num_states(), g.num_states());
  EXPECT_EQ(back.transitions().size(), g.transitions().size());
  EXPECT_EQ(back.check(), "");
}

TEST(Stg, BurstyIsHotLoopHeavy) {
  auto g = bursty_fsm(4, 12, 3);
  auto pi = g.steady_state();
  double hot = 0, cold = 0;
  for (int s = 0; s < 4; ++s) hot += pi[s];
  for (int s = 4; s < 16; ++s) cold += pi[s];
  EXPECT_GT(hot, cold);
}

TEST(Encoding, ValidityChecks) {
  auto g = counter_fsm(6);
  EXPECT_TRUE(binary_encoding(g).valid(6));
  EXPECT_TRUE(onehot_encoding(g).valid(6));
  EXPECT_TRUE(gray_walk_encoding(g).valid(6));
  EXPECT_TRUE(random_encoding(g, 3).valid(6));
  Encoding bad;
  bad.bits = 2;
  bad.codes = {0, 1, 1, 2, 3, 0};
  EXPECT_FALSE(bad.valid(6));
}

TEST(Encoding, AnnealBeatsBinaryOnCounter) {
  // An up/down counter crosses adjacent states: Gray-like codes are
  // provably optimal (1 bit per step); binary averages ~2.
  auto g = counter_fsm(16);
  auto bin = binary_encoding(g);
  auto low = low_power_encoding(g);
  EXPECT_LT(low.weighted_switching(g), bin.weighted_switching(g));
  EXPECT_LE(low.weighted_switching(g), 1.0 + 1e-6);
  EXPECT_TRUE(low.valid(16));
}

TEST(Encoding, AnnealNoWorseThanGrayWalkStart) {
  for (std::uint32_t seed : {1u, 2u, 3u}) {
    auto g = random_fsm(10, 2, 2, seed);
    auto gw = gray_walk_encoding(g);
    AnnealOptions opt;
    opt.seed = seed;
    auto low = low_power_encoding(g, opt);
    EXPECT_LE(low.weighted_switching(g), gw.weighted_switching(g) + 1e-9);
  }
}

TEST(Encoding, SynthesizedFsmMatchesStgBehaviour) {
  auto g = sequence_detector("1101");
  auto enc = binary_encoding(g);
  Netlist net = synthesize_fsm(g, enc);
  EXPECT_EQ(net.check(), "");
  // Walk the STG and the netlist side by side on a random input stream.
  sim::LogicSim sim_(net);
  auto dffs = net.dffs();
  std::vector<std::uint64_t> state(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i)
    state[i] = net.node(dffs[i]).init_value ? ~0ULL : 0;
  int stg_state = g.reset_state();
  std::mt19937 rng(9);
  for (int cyc = 0; cyc < 200; ++cyc) {
    int in = rng() & 1;
    std::vector<std::uint64_t> pi{in ? ~0ULL : 0};
    auto f = sim_.eval(pi, state);
    // STG step.
    int next = stg_state;  // default self-loop
    char out = '0';
    for (const auto& t : g.transitions()) {
      if (t.from != stg_state) continue;
      if (t.input[0] != '-' && (t.input[0] == '1') != (in != 0)) continue;
      next = t.to;
      out = t.output[0];
      break;
    }
    EXPECT_EQ((f[net.outputs()[0]] & 1) != 0, out == '1') << "cycle " << cyc;
    state = sim_.next_state_of(f);
    stg_state = next;
  }
}

TEST(Encoding, ExtractStgInvertsSynthesis) {
  auto g = counter_fsm(4);
  auto net = synthesize_fsm(g, binary_encoding(g));
  auto back = extract_stg(net);
  // Same number of reachable states and same steady-state structure.
  EXPECT_EQ(back.num_states(), 4);
  EXPECT_EQ(back.check(), "");
  auto net2 = synthesize_fsm(back, binary_encoding(back));
  EXPECT_TRUE(same_traces(net, net2, 200, 4));
}

TEST(Encoding, ReencodePreservesBehaviour) {
  auto g = bursty_fsm(4, 4, 7);
  auto net = synthesize_fsm(g, random_encoding(g, 99));
  auto r = reencode_for_power(net);
  EXPECT_LE(r.wswitch_after, r.wswitch_before + 1e-9);
  EXPECT_TRUE(same_traces(net, r.circuit, 300, 11));
}

TEST(RetimeGraph, CorrelatorExample) {
  // The classic Leiserson-Saxe correlator: ring of 8 vertices; min period
  // drops from 24 to 13 after retiming.
  RetimeGraph g;
  int host = g.add_vertex(0);
  int d1 = g.add_vertex(3), d2 = g.add_vertex(3), d3 = g.add_vertex(3);
  int p1 = g.add_vertex(7), p2 = g.add_vertex(7), p3 = g.add_vertex(7);
  int p0 = g.add_vertex(7);
  g.add_edge(host, p0, 1);
  g.add_edge(p0, d1, 1);
  g.add_edge(d1, d2, 1);
  g.add_edge(d2, d3, 0);  // note: canonical weights from the paper
  g.add_edge(d3, host, 0);
  g.add_edge(d1, p1, 0);
  g.add_edge(d2, p2, 0);
  g.add_edge(d3, p3, 0);
  g.add_edge(p1, p0, 0);
  g.add_edge(p2, p1, 0);
  g.add_edge(p3, p2, 0);
  int before = g.period();
  auto [best, r] = g.min_period_retiming();
  EXPECT_LT(best, before);
  auto rg = g.retimed(r);
  EXPECT_EQ(rg.period(), best);
  for (const auto& e : rg.edges()) EXPECT_GE(e.weight, 0);
}

TEST(RetimeGraph, FeasibilityMonotone) {
  RetimeGraph g;
  int a = g.add_vertex(2), b = g.add_vertex(2), c = g.add_vertex(2);
  g.add_edge(a, b, 0);
  g.add_edge(b, c, 0);
  g.add_edge(c, a, 3);
  auto [best, r] = g.min_period_retiming();
  (void)r;
  EXPECT_TRUE(g.feasible_retiming(best).has_value());
  if (best > 2) {
    EXPECT_FALSE(g.feasible_retiming(best - 1).has_value());
  }
}

TEST(Retime, PowerRetimePreservesTraceAndPeriod) {
  // Pipelined multiplier: registers at inputs/outputs; power retiming may
  // push registers into the glitchy array.
  auto comb = bench::array_multiplier(3);
  auto net = registered(comb);
  auto golden = net.clone();
  PowerRetimeOptions opt;
  opt.sim_vectors = 128;
  opt.max_moves = 10;
  auto r = retime_for_power(net, opt);
  EXPECT_LE(r.period_after, r.period_before);
  EXPECT_LE(r.power_after_w, r.power_before_w + 1e-12);
  EXPECT_TRUE(same_traces(golden, net, 300, 21));
  EXPECT_EQ(net.check(), "");
}

TEST(ClockGating, DetectsRegisterFilePatterns) {
  auto rf = register_file(4, 8);
  auto ps = detect_hold_patterns(rf);
  EXPECT_EQ(ps.size(), 32u);  // every bit of every word recirculates
}

TEST(ClockGating, ActivityReportScalesWithDuty) {
  auto rf = register_file(8, 8);
  auto ps = detect_hold_patterns(rf);
  auto rep = clock_activity(rf, ps, 2048, 17);
  // Each word selected ~wen/8 of the time -> enables mostly idle.
  EXPECT_LT(rep.enable_one_prob_mean, 0.2);
  EXPECT_GT(rep.clock_power_saving_fraction(), 0.5);
  EXPECT_LT(rep.clock_power_saving_fraction(), 1.0);
}

TEST(ClockGating, ApplyRemovesMuxes) {
  auto rf = register_file(4, 4);
  auto ps = detect_hold_patterns(rf);
  std::size_t before = rf.num_gates();
  auto res = apply_clock_gating(rf, ps);
  EXPECT_EQ(res.gated_registers, 16);
  EXPECT_LT(rf.num_gates(), before);
  EXPECT_EQ(rf.check(), "");
}

TEST(Precompute, ComparatorMatchesFigure1) {
  // Figure 1: subset {C[n-1], D[n-1]} gives LE = XNOR and hit rate 1/2.
  auto comb = bench::comparator_gt(8);
  auto sel = select_precompute_inputs(comb, 2);
  ASSERT_EQ(sel.subset.size(), 2u);
  EXPECT_NEAR(sel.hit_probability, 0.5, 1e-9);
  // The chosen pair must be the MSBs c7, d7.
  std::vector<std::string> names;
  for (NodeId s : sel.subset) names.push_back(comb.node(s).name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names[0], "c7");
  EXPECT_EQ(names[1], "d7");
}

TEST(Precompute, ArchitecturePreservesTrace) {
  auto comb = bench::comparator_gt(6);
  auto sel = select_precompute_inputs(comb, 2);
  auto pre = apply_precomputation(comb, sel.subset);
  auto base = registered_baseline(comb);
  EXPECT_TRUE(same_traces(base, pre.circuit, 500, 23));
  EXPECT_GT(pre.precompute_gates, 0);
}

TEST(Precompute, ReducesMeasuredPower) {
  auto comb = bench::comparator_gt(12);
  auto sel = select_precompute_inputs(comb, 2);
  auto pre = apply_precomputation(comb, sel.subset);
  auto base = registered_baseline(comb);
  power::AnalysisOptions ao;
  ao.n_vectors = 1024;
  double p_base = power::analyze(base, ao).report.breakdown.total_w();
  double p_pre = power::analyze(pre.circuit, ao).report.breakdown.total_w();
  EXPECT_LT(p_pre, p_base);
}

TEST(GuardedEval, FreezesUnselectedArmAndPreservesTrace) {
  // Two 4-bit adder cones into a mux; select registered from a PI.
  Netlist comb("guard_test");
  std::vector<NodeId> xs;
  for (int i = 0; i < 9; ++i) xs.push_back(comb.add_input("x" + std::to_string(i)));
  NodeId sel = comb.add_input("sel");
  // Arm A: AND-tree of x0..x3; Arm B: OR-tree of x4..x7 with x8.
  NodeId a1 = comb.add_and(xs[0], xs[1]);
  NodeId a2 = comb.add_and(xs[2], xs[3]);
  NodeId armA = comb.add_and(a1, a2);
  NodeId b1 = comb.add_or(xs[4], xs[5]);
  NodeId b2 = comb.add_or(xs[6], xs[7]);
  NodeId armB = comb.add_or(comb.add_or(b1, b2), xs[8]);
  NodeId m = comb.add_mux(sel, armA, armB);
  comb.add_output(m, "y");
  auto net = registered(comb);
  auto golden = net.clone();
  auto regions = guard_mux_arms(net);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_GT(regions[0].frozen_registers_a, 0);
  EXPECT_GT(regions[0].frozen_registers_b, 0);
  EXPECT_TRUE(same_traces(golden, net, 500, 29));
}

TEST(GuardedEval, StgPredicateGatingIsFunctionalNoop) {
  auto g = polling_fsm(12);
  auto enc = binary_encoding(g);
  auto net = synthesize_fsm(g, enc);
  auto golden = net.clone();
  int gates = gate_self_loops_from_stg(net, g, enc);
  EXPECT_GE(gates, 0);
  EXPECT_TRUE(same_traces(golden, net, 400, 37));
  // Every state register is now load-enabled.
  for (NodeId d : net.dffs()) EXPECT_TRUE(net.dff_has_enable(d));
  // For a polling FSM the predicate is trivial (input = 0), so the
  // synthesized detector is at most a couple of gates.
  EXPECT_LE(gates, 2);
}

TEST(GuardedEval, SelfLoopGatingIsFunctionalNoop) {
  auto g = bursty_fsm(4, 4, 13);
  auto net = synthesize_fsm(g, binary_encoding(g));
  auto golden = net.clone();
  auto res = gate_fsm_self_loops(net);
  EXPECT_EQ(res.state_bits, 3);
  EXPECT_GT(res.comparator_gates, 0);
  EXPECT_TRUE(same_traces(golden, net, 400, 31));
  // And the hold pattern is now discoverable for clock gating.
  auto ps = detect_hold_patterns(net);
  EXPECT_EQ(ps.size(), 3u);
}

TEST(SeqCircuit, RegisteredWrapsWithLatencyOne) {
  auto comb = bench::parity_tree(4);
  auto net = registered(comb);
  EXPECT_EQ(net.dffs().size(), 5u);  // 4 input + 1 output registers
  // Latency: output at cycle t reflects inputs at t-2 (in+out ranks)... the
  // output register adds 1, input registers add 1.
  sim::LogicSim s(net);
  std::vector<std::uint64_t> pi(4, 0);
  std::vector<std::uint64_t> st(5, 0);
  pi[0] = ~0ULL;  // parity becomes 1
  auto f1 = s.eval(pi, st);
  EXPECT_EQ(f1[net.outputs()[0]] & 1, 0u);
  st = s.next_state_of(f1);
  auto f2 = s.eval(pi, st);
  EXPECT_EQ(f2[net.outputs()[0]] & 1, 0u);
  st = s.next_state_of(f2);
  auto f3 = s.eval(pi, st);
  EXPECT_EQ(f3[net.outputs()[0]] & 1, 1u);
}

}  // namespace
}  // namespace lps::seq
