// Power model and probabilistic-estimation tests (Eqn. 1, §IV-A).

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "power/power_model.hpp"
#include "power/probability.hpp"
#include "sim/logicsim.hpp"

namespace lps::power {
namespace {

TEST(PowerModel, CapacitanceGrowsWithFanout) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId g1 = n.add_not(a);
  NodeId g2 = n.add_not(a);
  NodeId g3 = n.add_and(g1, g2);
  n.add_output(g3, "y");
  PowerParams p;
  EXPECT_GT(node_capacitance(n, a, p), node_capacitance(n, g3, p));
}

TEST(PowerModel, SizingScalesInputCap) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId g = n.add_not(a);
  n.add_output(g, "y");
  PowerParams p;
  double before = node_capacitance(n, a, p);
  n.node(g).size = 4.0;
  EXPECT_GT(node_capacitance(n, a, p), before);
}

TEST(PowerModel, BreakdownArithmetic) {
  PowerBreakdown b;
  b.switching_w = 9.0;
  b.short_circuit_w = 0.7;
  b.leakage_w = 0.3;
  EXPECT_DOUBLE_EQ(b.total_w(), 10.0);
  EXPECT_DOUBLE_EQ(b.switching_fraction(), 0.9);
}

TEST(PowerModel, SwitchingDominates) {
  // §I: "switching activity power accounts for over 90% of the total".
  for (const auto& [name, net] : bench::default_suite()) {
    AnalysisOptions opt;
    opt.n_vectors = 512;
    auto a = analyze(net, opt);
    EXPECT_GT(a.report.breakdown.switching_fraction(), 0.90) << name;
  }
}

TEST(PowerModel, MismatchedVectorThrows) {
  auto net = bench::c17();
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(compute_power(net, wrong), std::invalid_argument);
}

TEST(Analyze, TimedAtLeastZeroDelayPower) {
  // Glitches only ever add switching.
  auto net = bench::array_multiplier(4);
  AnalysisOptions t;
  t.n_vectors = 1024;
  AnalysisOptions z = t;
  z.mode = ActivityMode::ZeroDelay;
  double pt = analyze(net, t).report.breakdown.total_w();
  double pz = analyze(net, z).report.breakdown.total_w();
  EXPECT_GT(pt, pz * 0.95);
}

TEST(Probability, IndependentExactOnTree) {
  // Fanout-free circuits have no reconvergence: independent propagation is
  // exact.
  auto net = bench::and_tree(8);
  auto ind = signal_probs_independent(net);
  auto ex = signal_probs_exact(net);
  for (NodeId id = 0; id < net.size(); ++id) {
    if (net.is_dead(id)) continue;
    EXPECT_NEAR(ind[id], ex[id], 1e-12);
  }
  EXPECT_NEAR(ex[net.outputs()[0]], 1.0 / 256.0, 1e-12);
}

TEST(Probability, ExactHandlesReconvergence) {
  // y = a AND NOT a == 0; independence model says 0.25.
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId y = n.add_and(a, n.add_not(a));
  n.add_output(y, "y");
  auto ind = signal_probs_independent(n);
  auto ex = signal_probs_exact(n);
  EXPECT_NEAR(ind[y], 0.25, 1e-12);
  EXPECT_NEAR(ex[y], 0.0, 1e-12);
}

TEST(Probability, ExactMatchesSimulation) {
  for (const auto& name : {"c17", "cmp8", "parity16"}) {
    Netlist net;
    if (std::string(name) == "c17") net = bench::c17();
    if (std::string(name) == "cmp8") net = bench::comparator_gt(8);
    if (std::string(name) == "parity16") net = bench::parity_tree(16);
    auto ex = signal_probs_exact(net);
    auto st = sim::measure_activity(net, 4000, 77);
    for (NodeId o : net.outputs())
      EXPECT_NEAR(ex[o], st.signal_prob[o], 0.02) << name;
  }
}

TEST(Probability, BiasedInputsPropagate) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId y = n.add_and(a, b);
  n.add_output(y, "y");
  std::vector<double> pp{0.9, 0.8};
  auto ex = signal_probs_exact(n, pp);
  EXPECT_NEAR(ex[y], 0.72, 1e-12);
}

TEST(Probability, ToggleRateFormula) {
  std::vector<double> p{0.0, 0.5, 1.0, 0.25};
  auto t = toggle_rate_from_probs(p);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 0.5);
  EXPECT_DOUBLE_EQ(t[2], 0.0);
  EXPECT_DOUBLE_EQ(t[3], 0.375);
}

TEST(Probability, TransitionDensityExactOnInverter) {
  // With a single input, transitions never coincide, so the density is
  // exact: D(!a) = D(a).
  Netlist n;
  NodeId a = n.add_input("a");
  n.add_output(n.add_not(a), "y");
  auto dens = transition_density(n);
  auto st = sim::measure_activity(n, 8000, 99);
  EXPECT_NEAR(dens[n.outputs()[0]], 0.5, 1e-12);
  EXPECT_NEAR(dens[n.outputs()[0]], st.transition_prob[n.outputs()[0]], 0.02);
}

TEST(Probability, TransitionDensityUpperBoundsTreeSimulation) {
  // Najm's propagation counts each input transition independently; when
  // transitions coincide (iid vectors toggle every input with rate 0.5)
  // some cancel, so the density upper-bounds the simulated rate.
  auto net = bench::and_tree(8);
  auto dens = transition_density(net);
  auto st = sim::measure_activity(net, 8000, 99);
  NodeId o = net.outputs()[0];
  // Analytic density: 8 inputs, each sensitized with prob (1/2)^7.
  EXPECT_NEAR(dens[o], 8.0 * std::ldexp(1.0, -7) * 0.5, 1e-12);
  EXPECT_GE(dens[o], st.transition_prob[o]);
  EXPECT_LT(dens[o], st.transition_prob[o] * 6.0);
}

TEST(Probability, TransitionDensityUpperBoundsReconvergent) {
  // On reconvergent logic Najm's density ignores the correlation between
  // simultaneous input changes and overestimates — the known bias of the
  // estimator.  It must stay within a small constant factor of simulation.
  auto net = bench::c17();
  auto dens = transition_density(net);
  auto st = sim::measure_activity(net, 8000, 99);
  for (NodeId o : net.outputs()) {
    EXPECT_GE(dens[o], st.transition_prob[o] * 0.8);
    EXPECT_LE(dens[o], st.transition_prob[o] * 2.5);
  }
}

TEST(Probability, DensityOfXorSumsInputs) {
  // For y = a XOR b, dy/da = dy/db = 1, so D(y) = D(a) + D(b).
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  n.add_output(n.add_xor(a, b), "y");
  std::vector<double> probs{0.5, 0.5};
  std::vector<double> dens{0.3, 0.2};
  auto d = transition_density(n, probs, dens);
  EXPECT_NEAR(d[n.outputs()[0]], 0.5, 1e-12);
}

TEST(Analyze, GlitchFractionZeroOnBalancedTree) {
  auto net = bench::parity_tree(16);
  AnalysisOptions opt;
  opt.n_vectors = 512;
  auto a = analyze(net, opt);
  EXPECT_NEAR(a.glitch_fraction, 0.0, 1e-9);
}

TEST(TransistorCount, Table) {
  Node n;
  n.type = GateType::Nand;
  n.fanins = {0, 1};
  EXPECT_EQ(transistor_count(n), 4);
  n.type = GateType::And;
  EXPECT_EQ(transistor_count(n), 6);
  n.type = GateType::Dff;
  n.fanins = {0};
  EXPECT_EQ(transistor_count(n), 8);
}

}  // namespace
}  // namespace lps::power
