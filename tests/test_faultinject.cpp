// Fault-injection tests: the checker checking the checker.  Every corruption
// class the harness can inject must be caught — structural classes by
// validate()/Netlist::check(), the functional class by the PassManager's
// random-simulation equivalence verifier (with rollback).

#include <gtest/gtest.h>

#include "core/pass.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/faultinject.hpp"
#include "netlist/validate.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

Netlist healthy() {
  auto net = bench::carry_select_adder(8, 2);
  EXPECT_EQ(net.check(), "");
  return net;
}

TEST(FaultInject, EveryStructuralFaultIsCaughtByValidate) {
  for (fault::Fault f : fault::structural_faults()) {
    for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
      auto net = healthy();
      auto inj = fault::inject(net, f, seed);
      ASSERT_TRUE(inj.applied)
          << fault::to_string(f) << " seed " << seed
          << ": no viable site in an adder-sized netlist?";
      diag::DiagEngine eng;
      std::size_t n_err = validate(net, eng);
      EXPECT_GT(n_err, 0u) << fault::to_string(f) << " seed " << seed
                           << " escaped validate(): " << inj.description;
      EXPECT_NE(net.check(), "") << fault::to_string(f) << " seed " << seed;
    }
  }
}

TEST(FaultInject, ValidateDiagnosticsNameTheSite) {
  // The diagnostics must be actionable: each names the corrupted node.
  auto net = healthy();
  auto inj = fault::inject(net, fault::Fault::DanglingFanin, 3);
  ASSERT_TRUE(inj.applied);
  diag::DiagEngine eng;
  validate(net, eng);
  ASSERT_FALSE(eng.ok());
  bool mentions_site = false;
  std::string want = std::to_string(inj.site);
  for (const auto& d : eng.diagnostics())
    if (d.message.find(want) != std::string::npos) mentions_site = true;
  EXPECT_TRUE(mentions_site) << "site " << inj.site << " not mentioned in:\n"
                             << eng.str();
}

TEST(FaultInject, FunctionFlipIsStructurallyLegalButNotEquivalent) {
  auto net = healthy();
  auto golden = net.clone();
  auto inj = fault::inject(net, fault::Fault::FlipGateFunction, 5);
  ASSERT_TRUE(inj.applied) << inj.description;
  // Structurally fine — this is exactly the fault class validate() cannot
  // see and the equivalence verifier exists for.
  EXPECT_EQ(net.check(), "") << inj.description;
  EXPECT_FALSE(sim::equivalent_random(golden, net, 2048, 11))
      << inj.description;
}

TEST(FaultInject, PassVerifierCatchesAndRollsBackEveryFaultClass) {
  // Acceptance criterion: a pass that corrupts the netlist — whatever the
  // corruption class — is caught by the PassManager, rolled back, and the
  // flow continues to a correct final circuit.
  for (fault::Fault f : fault::all_faults()) {
    auto net = healthy();
    auto golden = net.clone();
    core::PassManager pm(true);
    pm.add(core::make_strash_pass());
    pm.add(std::string("inject-") + std::string(fault::to_string(f)),
           [f](Netlist& n) {
             auto inj = fault::inject(n, f, 1);
             return inj.applied ? inj.description : std::string("no site");
           });
    pm.add(core::make_sweep_pass());
    auto records = pm.run(net);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_TRUE(records[0].ok) << fault::to_string(f);
    EXPECT_FALSE(records[1].ok)
        << fault::to_string(f) << " slipped through the verifier";
    EXPECT_TRUE(records[1].rolled_back) << fault::to_string(f);
    EXPECT_FALSE(records[1].diag.message.empty()) << fault::to_string(f);
    EXPECT_TRUE(records[2].ok) << fault::to_string(f);
    EXPECT_FALSE(core::all_ok(records)) << fault::to_string(f);
    // Rollback restored a healthy, equivalent netlist and later passes ran.
    EXPECT_EQ(net.check(), "") << fault::to_string(f);
    EXPECT_TRUE(sim::equivalent_random(golden, net, 1024, 17))
        << fault::to_string(f);
  }
}

TEST(FaultInject, SequentialCircuitsAreCoveredToo) {
  // WireCycle must respect Dff boundaries: a path through a register is a
  // legal sequential loop, not a combinational cycle — the injector has to
  // find a genuinely combinational one.
  auto net = bench::shift_register(6);
  ASSERT_EQ(net.check(), "");
  auto inj = fault::inject(net, fault::Fault::WireCycle, 2);
  if (inj.applied) {
    EXPECT_NE(net.check(), "") << inj.description;
    diag::DiagEngine eng;
    validate(net, eng);
    ASSERT_FALSE(eng.ok());
    EXPECT_NE(eng.first_error()->message.find("cycle"), std::string::npos)
        << eng.str();
  }
  // DanglingFanin always has a site on any circuit with a gate.
  auto net2 = bench::shift_register(6);
  auto inj2 = fault::inject(net2, fault::Fault::DanglingFanin, 2);
  ASSERT_TRUE(inj2.applied);
  EXPECT_NE(net2.check(), "");
}

TEST(FaultInject, InjectionIsDeterministic) {
  auto a = healthy();
  auto b = healthy();
  auto ia = fault::inject(a, fault::Fault::DropFanin, 42);
  auto ib = fault::inject(b, fault::Fault::DropFanin, 42);
  EXPECT_EQ(ia.site, ib.site);
  EXPECT_EQ(ia.description, ib.description);
}

}  // namespace
}  // namespace lps
