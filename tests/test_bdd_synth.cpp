// Hybrid BDD→MUX extraction (logicopt/bdd_synth.hpp): soundness of every
// kept cone against the interpreter, cap/knob behavior, flow integration
// and worker-count identity, and the power estimators' degrade-to-
// simulation fallback when the BDD node budget is exceeded.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/flows.hpp"
#include "core/metrics.hpp"
#include "core/pass.hpp"
#include "logicopt/bdd_synth.hpp"
#include "netlist/benchmarks.hpp"
#include "power/probability.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

std::vector<std::pair<std::string, Netlist>> family() {
  std::vector<std::pair<std::string, Netlist>> f;
  f.emplace_back("mult4", bench::array_multiplier(4));
  f.emplace_back("alu4", bench::alu(4));
  f.emplace_back("addsub8", bench::alu_addsub(8));
  f.emplace_back("dct8", bench::dct_butterfly(8));
  f.emplace_back("cmp8", bench::comparator_gt(8));
  f.emplace_back("csel16", bench::carry_select_adder(16, 4));
  return f;
}

// Every kept cone must be interpreter-exact: the mutated netlist computes
// the original function bit-for-bit, the invariants hold, and the engine
// itself reports zero proof failures.  Power never increases (losers are
// rolled back through the journal).
TEST(BddSynth, KeptConesAreInterpreterExact) {
  for (const auto& [name, orig] : family()) {
    Netlist net = strash(orig);
    auto r = logicopt::synthesize_bdd_cones(net);
    EXPECT_EQ(r.unsound, 0u) << name;
    EXPECT_TRUE(net.check().empty()) << name;
    EXPECT_TRUE(sim::equivalent_random(orig, net, 512, 23)) << name;
    EXPECT_LE(r.power_after_w, r.power_before_w) << name;
    EXPECT_GT(r.cones_examined, 0u) << name;
    EXPECT_EQ(r.cones_examined,
              r.kept + r.reverted + r.unsound + r.cones_capped +
                  r.cones_limited)
        << name;
  }
}

// The engine never leaves journal epochs open or half-applied candidates:
// running inside a caller's epoch and rolling that epoch back restores the
// input circuit exactly.
TEST(BddSynth, NestsInsideCallerEpoch) {
  Netlist net = strash(bench::alu_addsub(8));
  std::uint64_t before = structural_hash(net);
  net.begin_undo();
  auto r = logicopt::synthesize_bdd_cones(net);
  EXPECT_GE(r.kept + r.reverted, 1u);
  net.rollback_undo();
  EXPECT_EQ(structural_hash(net), before);
}

TEST(BddSynth, SupportCapSkipsWideConesLoudly) {
  Netlist net = strash(bench::carry_select_adder(16, 4));  // 33 inputs
  logicopt::BddSynthOptions bo;
  bo.max_inputs = 4;
  auto r = logicopt::synthesize_bdd_cones(net, bo);
  EXPECT_GT(r.cones_capped, 0u);
  EXPECT_FALSE(r.note.empty());
  EXPECT_TRUE(net.check().empty());
}

TEST(BddSynth, EnvKnobsControlCapAndSifting) {
  ::setenv("LPS_BDD_SYNTH_MAX_INPUTS", "2", 1);
  ::setenv("LPS_BDD_SYNTH_SIFT", "0", 1);
  Netlist net = strash(bench::alu(4));  // 10 inputs: every cone is wider
  auto r = logicopt::synthesize_bdd_cones(net);
  ::unsetenv("LPS_BDD_SYNTH_MAX_INPUTS");
  ::unsetenv("LPS_BDD_SYNTH_SIFT");
  EXPECT_EQ(r.kept, 0u);
  EXPECT_EQ(r.cones_capped, r.cones_examined);
}

TEST(BddSynth, PassManagerIntegration) {
  Netlist net = strash(bench::alu_addsub(8));
  core::PassManager pm(/*verify=*/true);
  pm.add(core::make_bdd_synth_pass());
  auto records = pm.run(net);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(core::all_ok(records));
  EXPECT_TRUE(records[0].verified);
  EXPECT_TRUE(net.check().empty());
}

// The flow stage and the whole ladder around it are bit-identical at any
// candidate-scoring worker count: the bdd_synth engine is sequential by
// construction, and the speculative stages transplant deltas exactly.
TEST(BddSynth, FlowIsBitIdenticalAcrossWorkerCounts) {
  const Netlist input = bench::alu_addsub(8);
  std::vector<std::uint64_t> hashes;
  std::vector<double> finals;
  for (int workers : {1, 4}) {
    core::FlowOptions fo;
    fo.opt_workers = workers;
    auto res = core::optimize_combinational(input, fo);
    bool saw_stage = false;
    for (const auto& s : res.stages) saw_stage |= s.stage.rfind("bdd_synth", 0) == 0;
    EXPECT_TRUE(saw_stage);
    EXPECT_TRUE(sim::equivalent_random(input, res.circuit, 512, 23));
    hashes.push_back(structural_hash(res.circuit));
    finals.push_back(res.stages.back().power_w);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(finals[0], finals[1]);
}

// ---- power-estimator degradation (satellite of the same substrate) -----

TEST(PowerFallback, SignalProbsDegradeToSimulationOnBddLimit) {
  Netlist net = bench::alu(4);
  core::metrics::reset();
  power::detail::force_bdd_limit(1);
  auto p = power::signal_probs_exact(net);
  std::vector<double> pip(net.inputs().size(), 0.5);
  auto ref = sim::measure_activity(net, 4096, 7, pip).signal_prob;
  ASSERT_EQ(p.size(), ref.size());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(p[i], ref[i]) << i;
  EXPECT_EQ(core::metrics::value("power.exact.bdd_limit"), 1.0);
  // The forced failure is consumed: the next call is symbolic again and
  // agrees with the independent estimator on a tree-like circuit's PIs.
  auto p2 = power::signal_probs_exact(net);
  EXPECT_EQ(core::metrics::value("power.exact.bdd_limit"), 1.0);
  for (NodeId pi : net.inputs()) EXPECT_NEAR(p2[pi], 0.5, 1e-12);
}

TEST(PowerFallback, TransitionDensityDegradesToSimulationOnBddLimit) {
  Netlist net = bench::comparator_gt(4);
  core::metrics::reset();
  power::detail::force_bdd_limit(1);
  auto d = power::transition_density(net);
  std::vector<double> pip(net.inputs().size(), 0.5);
  auto ref = sim::measure_activity(net, 4096, 7, pip).transition_prob;
  ASSERT_EQ(d.size(), ref.size());
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_EQ(d[i], ref[i]) << i;
  EXPECT_EQ(core::metrics::value("power.exact.bdd_limit"), 1.0);
}

}  // namespace
}  // namespace lps
