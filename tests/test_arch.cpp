// Architecture-level tests: DFG, scheduling, module selection, binding,
// voltage scaling, macro-models, memory (§IV).

#include <gtest/gtest.h>

#include "arch/binding.hpp"
#include "arch/dfg.hpp"
#include "arch/macromodel.hpp"
#include "arch/memory.hpp"
#include "arch/modules.hpp"
#include "arch/scheduling.hpp"
#include "arch/transforms.hpp"
#include "arch/voltage.hpp"
#include "netlist/benchmarks.hpp"

namespace lps::arch {
namespace {

std::vector<const Module*> fastest_choice(const Dfg& g,
                                          const ModuleLibrary& lib) {
  std::vector<const Module*> c(g.num_ops(), nullptr);
  for (int i = 0; i < g.num_ops(); ++i) {
    OpType t = g.op(i).type;
    if (t == OpType::Input || t == OpType::Const || t == OpType::Output)
      continue;
    c[i] = lib.fastest(t);
  }
  return c;
}

TEST(Dfg, FirEvaluates) {
  auto g = fir_filter(4);
  // y = 3 x0 + 5 x1 + 7 x2 + 9 x3.
  auto v = g.eval({1, 1, 1, 1});
  EXPECT_EQ(v[g.outputs()[0]], 24);
  v = g.eval({2, 0, 0, 1});
  EXPECT_EQ(v[g.outputs()[0]], 15);
}

TEST(Dfg, HistogramCountsExecOps) {
  auto g = fir_filter(4);
  auto h = g.op_histogram();
  int muls = 0, adds = 0;
  for (auto& [t, k] : h) {
    if (t == OpType::Mul) muls = k;
    if (t == OpType::Add) adds = k;
  }
  EXPECT_EQ(muls, 4);
  EXPECT_EQ(adds, 3);
}

TEST(Schedule, AsapRespectsDependences) {
  auto lib = standard_module_library();
  auto g = iir_biquad();
  auto c = fastest_choice(g, lib);
  auto s = asap(g, c);
  for (int i = 0; i < g.num_ops(); ++i)
    for (OpId a : g.op(i).args) EXPECT_LE(s.finish_cs[a], s.start_cs[i]);
}

TEST(Schedule, AlapWithinDeadline) {
  auto lib = standard_module_library();
  auto g = ewf_fragment();
  auto c = fastest_choice(g, lib);
  auto sa = asap(g, c);
  auto sl = alap(g, c, sa.length_cs + 3);
  for (int i = 0; i < g.num_ops(); ++i) {
    EXPECT_GE(sl.start_cs[i], sa.start_cs[i]);  // slack is non-negative
    EXPECT_LE(sl.finish_cs[i], sa.length_cs + 3);
  }
}

TEST(Schedule, ListScheduleHonoursResourceLimits) {
  auto lib = standard_module_library();
  auto g = fir_filter(8);  // 8 multiplies
  auto c = fastest_choice(g, lib);
  std::map<OpType, int> limits{{OpType::Mul, 2}, {OpType::Add, 1}};
  auto s = list_schedule(g, c, limits);
  auto peak = peak_usage(g, c, s);
  EXPECT_LE(peak[OpType::Mul], 2);
  EXPECT_LE(peak[OpType::Add], 1);
  for (int i = 0; i < g.num_ops(); ++i)
    for (OpId a : g.op(i).args) EXPECT_LE(s.finish_cs[a], s.start_cs[i]);
  // Fewer units -> longer schedule than unconstrained ASAP.
  auto free_s = asap(g, c);
  EXPECT_GT(s.length_cs, free_s.length_cs);
}

TEST(Modules, SelectionMeetsDeadlineAndSavesEnergy) {
  auto lib = standard_module_library();
  auto g = fir_filter(8);
  auto fast = fastest_choice(g, lib);
  auto fast_cs = asap(g, fast).length_cs;
  double fast_energy = 0;
  for (auto* m : fast)
    if (m) fast_energy += m->energy_pj;

  auto sel = select_modules(g, lib, fast_cs * 2);
  EXPECT_LE(sel.schedule_length_cs, fast_cs * 2);
  EXPECT_LT(sel.energy_pj, fast_energy);
}

TEST(Modules, TightDeadlineForcesFastModules) {
  auto lib = standard_module_library();
  auto g = fir_filter(4);
  auto fast = fastest_choice(g, lib);
  int min_cs = asap(g, fast).length_cs;
  auto sel = select_modules(g, lib, min_cs);
  EXPECT_EQ(sel.schedule_length_cs, min_cs);
  auto relaxed = select_modules(g, lib, min_cs * 4);
  EXPECT_LT(relaxed.energy_pj, sel.energy_pj);
}

TEST(Binding, LowPowerNoWorseThanNaive) {
  auto lib = standard_module_library();
  for (auto make : {fir_filter}) {
    auto g = make(8);
    auto c = fastest_choice(g, lib);
    std::map<OpType, int> limits{{OpType::Mul, 2}, {OpType::Add, 2}};
    auto s = list_schedule(g, c, limits);
    auto naive = naive_binding(g, s);
    auto low = low_power_binding(g, s);
    EXPECT_EQ(naive.num_units, low.num_units);
    EXPECT_LE(low.switched_bits, naive.switched_bits + 1e-9);
  }
}

TEST(Binding, NoTemporalOverlapOnSharedUnits) {
  auto lib = standard_module_library();
  auto g = ewf_fragment();
  auto c = fastest_choice(g, lib);
  std::map<OpType, int> limits{{OpType::Mul, 1}, {OpType::Add, 2}};
  auto s = list_schedule(g, c, limits);
  auto b = low_power_binding(g, s);
  for (int i = 0; i < g.num_ops(); ++i)
    for (int j = i + 1; j < g.num_ops(); ++j) {
      if (b.unit_of[i] < 0 || b.unit_of[i] != b.unit_of[j]) continue;
      bool overlap = s.start_cs[i] < s.finish_cs[j] &&
                     s.start_cs[j] < s.finish_cs[i];
      EXPECT_FALSE(overlap) << i << " and " << j;
    }
}

TEST(RegisterBinding, LifetimesRespectedAndPowerAwareNoWorse) {
  auto lib = standard_module_library();
  auto g = dual_fir(8);
  std::vector<const Module*> fast(g.num_ops(), nullptr);
  for (int i = 0; i < g.num_ops(); ++i) {
    OpType t = g.op(i).type;
    if (t != OpType::Input && t != OpType::Const && t != OpType::Output)
      fast[i] = lib.fastest(t);
  }
  std::map<OpType, int> limits{{OpType::Mul, 2}, {OpType::Add, 2}};
  auto s = list_schedule(g, fast, limits);
  auto naive = naive_register_binding(g, s);
  auto low = low_power_register_binding(g, s);
  EXPECT_EQ(naive.num_registers, low.num_registers);
  EXPECT_LE(low.switched_bits, naive.switched_bits + 1e-9);
  // No two simultaneously-alive values share a register.
  for (int i = 0; i < g.num_ops(); ++i) {
    if (low.reg_of[i] < 0) continue;
    for (int j = 0; j < g.num_ops(); ++j) {
      if (j == i || low.reg_of[j] != low.reg_of[i]) continue;
      // i's value is alive [finish_i, last_use_i]; a write by j inside that
      // open interval would clobber it.
      int death_i = s.finish_cs[i];
      for (int k = 0; k < g.num_ops(); ++k)
        for (OpId arg : g.op(k).args)
          if (arg == i) death_i = std::max(death_i, s.start_cs[k]);
      bool overlap =
          s.finish_cs[j] > s.finish_cs[i] && s.finish_cs[j] < death_i;
      EXPECT_FALSE(overlap) << "register clobbered: " << i << "," << j;
    }
  }
}

TEST(Voltage, DelayAndPowerLaws) {
  VoltageModel vm;
  EXPECT_NEAR(vm.delay_factor(vm.vnom), 1.0, 1e-12);
  EXPECT_GT(vm.delay_factor(3.0), 1.0);
  EXPECT_GT(vm.delay_factor(2.0), vm.delay_factor(3.0));
  EXPECT_NEAR(vm.power_factor(2.5), 0.25, 1e-12);
  // min_vdd_for_slack inverts delay_factor.
  double v = vm.min_vdd_for_slack(2.0);
  EXPECT_LE(vm.delay_factor(v), 2.0 + 1e-6);
  EXPECT_GT(vm.delay_factor(v * 0.95), 2.0);
}

TEST(Transforms, UnrollScalesOpsAndInputs) {
  auto g = fir_filter(4);
  auto u = unroll(g, 3);
  EXPECT_EQ(u.inputs().size(), g.inputs().size() * 3);
  EXPECT_EQ(u.outputs().size(), g.outputs().size() * 3);
}

TEST(Transforms, TreeHeightReductionShortensCriticalPath) {
  // A chain y = (((a+b)+c)+d)+e.
  Dfg g("chain");
  OpId acc = g.add_input("a");
  for (char c = 'b'; c <= 'e'; ++c)
    acc = g.add_op(OpType::Add, {acc, g.add_input(std::string(1, c))});
  g.add_output(acc, "y");
  auto lib = standard_module_library();
  auto before = asap(g, fastest_choice(g, lib)).length_cs;
  auto t = tree_height_reduction(g);
  auto after = asap(t, fastest_choice(t, lib)).length_cs;
  EXPECT_LT(after, before);
  // Same function.
  std::vector<std::int64_t> in{5, 7, -2, 11, 3};
  EXPECT_EQ(g.eval(in)[g.outputs()[0]], t.eval(in)[t.outputs()[0]]);
}

TEST(Transforms, VoltageGainQuadratic) {
  // §IV-B: unrolling buys slack, slack buys V_DD, power falls ~V².
  auto g = fir_filter(4);
  auto lib = standard_module_library();
  auto u2 = unroll(g, 2);
  auto r = evaluate_voltage_gain(g, u2, 2, lib);
  EXPECT_NEAR(r.capacitance_factor, 1.0, 1e-9);  // same energy per sample
  EXPECT_GE(r.slack, 1.0);
  // Unrolling alone does not add slack for a pure feed-forward FIR (the
  // pass is 1x longer per 2 samples only if the critical path dominates);
  // combine with tree-height reduction for the paper's effect.
  auto thr = tree_height_reduction(u2);
  auto r2 = evaluate_voltage_gain(g, thr, 2, lib);
  EXPECT_LE(r2.vdd, 5.0);
  if (r2.slack > 1.05) {
    EXPECT_LT(r2.power_ratio, 1.0);
  }
}

TEST(MacroModel, ActivityModelBeatsPfaOffNominal) {
  // Train on a spread of input statistics, test on skewed ones: the
  // activity-sensitive model must out-predict the single-constant PFA
  // (the [21,22] vs [15] comparison).
  auto module = bench::ripple_carry_adder(8);
  std::size_t n_in = module.inputs().size();
  std::vector<StatPoint> train, test;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9})
    train.push_back(StatPoint(n_in, p));
  for (double p : {0.05, 0.2, 0.8})
    test.push_back(StatPoint(n_in, p));
  auto ev = evaluate_macromodels(module, train, test, 2048);
  EXPECT_LT(ev.mean_abs_err_activity, ev.mean_abs_err_pfa);
  EXPECT_LT(ev.mean_abs_err_activity, 0.25);
}

TEST(MacroModel, PfaAccurateAtNominal) {
  auto module = bench::parity_tree(8);
  auto pfa = calibrate_pfa(module, 4096);
  double truth =
      gate_level_cap_ff(module, StatPoint(8, 0.5), 4096, 424242);
  EXPECT_NEAR(pfa.cap_per_activation_ff / truth, 1.0, 0.05);
}

TEST(Memory, CacheSimCountsColdMisses) {
  MemoryParams p;
  p.cache_lines = 16;
  p.words_per_line = 4;
  std::vector<std::uint32_t> seq;
  for (std::uint32_t a = 0; a < 256; ++a) seq.push_back(a);
  auto e = simulate_memory(seq, p);
  EXPECT_EQ(e.accesses, 256u);
  EXPECT_EQ(e.misses, 64u);  // one per line
}

TEST(Memory, LoopOrderChangesEnergy) {
  // §IV-B [14]: loop reordering reduces the memory component.  For
  // row-major layout, ikj walks B rows (good locality) while jki strides
  // both A and C column-wise (bad).
  int n = 16;
  auto ijk = simulate_memory(matmul_addresses(n, LoopOrder::IJK));
  auto ikj = simulate_memory(matmul_addresses(n, LoopOrder::IKJ));
  auto jki = simulate_memory(matmul_addresses(n, LoopOrder::JKI));
  EXPECT_LT(ikj.energy_pj, ijk.energy_pj);
  EXPECT_LT(ikj.energy_pj, jki.energy_pj);
}

TEST(Memory, TilingHelpsLargeMatrices) {
  int n = 24;
  auto flat = simulate_memory(matmul_addresses(n, LoopOrder::IJK));
  auto tiled = simulate_memory(matmul_addresses_tiled(n, 8));
  EXPECT_LT(tiled.misses, flat.misses);
}

}  // namespace
}  // namespace lps::arch
