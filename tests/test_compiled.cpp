// test_compiled.cpp — compiled-tape simulation differential suite.
//
// The contract under test (sim/compiled.hpp): CompiledSim is a pure
// performance substitution for LogicSim — every frame it evaluates, every
// activity counter derived from it, and every cone splice through it must
// be bit-identical to the interpreted engine's, at any blocking factor and
// any thread count.  The suite drives both engines over the benchmark
// circuits (including the shapes the tape specializes: 2-input gates,
// constants, MUXes, >64-fanin folds, load-enabled registers), patches the
// tape through mutation undo epochs, and pins the SimOptions plumbing.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/flows.hpp"
#include "core/parallel.hpp"
#include "netlist/benchmarks.hpp"
#include "power/incremental.hpp"
#include "sim/compiled.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

sim::SimOptions compiled_opts(std::size_t block = 8) {
  sim::SimOptions o;
  o.use_compiled = true;
  o.block = block;
  return o;
}

sim::SimOptions interpreted_opts() {
  sim::SimOptions o;
  o.use_compiled = false;
  return o;
}

// Per-engine activity measurement of the same workload.
sim::ActivityStats measure_with(const Netlist& net, bool compiled,
                                std::size_t frames, std::uint64_t seed,
                                std::size_t block = 8,
                                sim::ActivityTrace* cap = nullptr) {
  sim::ScopedSimOptions guard(compiled ? compiled_opts(block)
                                       : interpreted_opts());
  return sim::measure_activity(net, frames, seed, {}, cap);
}

void expect_stats_identical(const sim::ActivityStats& a,
                            const sim::ActivityStats& b) {
  ASSERT_EQ(a.patterns, b.patterns);
  ASSERT_EQ(a.signal_prob.size(), b.signal_prob.size());
  for (std::size_t i = 0; i < a.signal_prob.size(); ++i) {
    EXPECT_EQ(a.signal_prob[i], b.signal_prob[i]) << "node " << i;
    EXPECT_EQ(a.transition_prob[i], b.transition_prob[i]) << "node " << i;
  }
}

// ---- frame-level equality -------------------------------------------------

TEST(Compiled, EvalIntoMatchesLogicSimOnSuite) {
  for (auto& [name, net] : bench::default_suite()) {
    sim::LogicSim ref(net);
    sim::CompiledSim cs(net);
    std::mt19937_64 rng(7);
    std::vector<std::uint64_t> pi(net.inputs().size());
    sim::Frame fa, fb;
    for (int round = 0; round < 8; ++round) {
      for (auto& w : pi) w = rng();
      ref.eval_into(fa, pi);
      cs.eval_into(fb, pi);
      ASSERT_EQ(fa, fb) << name << " round " << round;
    }
  }
}

TEST(Compiled, ExecAllBlockedMatchesPerFrameEval) {
  // One tape replay over B lanes must equal B independent eval_into calls,
  // for every supported blocking factor.
  auto net = bench::alu(4);
  sim::LogicSim ref(net);
  sim::CompiledSim cs(net);
  for (std::size_t B : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}, std::size_t{16}}) {
    std::mt19937_64 rng(11);
    std::vector<std::uint64_t> val(net.size() * B, 0);
    std::vector<std::vector<std::uint64_t>> pis(
        B, std::vector<std::uint64_t>(net.inputs().size()));
    for (std::size_t j = 0; j < B; ++j)
      for (auto& w : pis[j]) w = rng();
    for (std::size_t j = 0; j < B; ++j)
      for (std::size_t i = 0; i < net.inputs().size(); ++i)
        val[static_cast<std::size_t>(net.inputs()[i]) * B + j] = pis[j][i];
    cs.exec_all(val.data(), B);
    sim::Frame f;
    for (std::size_t j = 0; j < B; ++j) {
      ref.eval_into(f, pis[j]);
      for (NodeId id = 0; id < net.size(); ++id)
        ASSERT_EQ(f[id], val[static_cast<std::size_t>(id) * B + j])
            << "B=" << B << " lane " << j << " node " << id;
    }
  }
}

TEST(Compiled, WideGatesConstantsAndMux) {
  // >64-fanin folds take the n-ary opcodes and, interpreted, the heap
  // scratch path of eval_gate_word; constants and MUX have dedicated
  // opcodes.  All must agree with eval_gate exactly.
  Netlist net("wide");
  std::vector<NodeId> pis;
  for (int i = 0; i < 100; ++i)
    pis.push_back(net.add_input("i" + std::to_string(i)));
  NodeId c0 = net.add_const(false);
  NodeId c1 = net.add_const(true);
  for (GateType t : {GateType::And, GateType::Or, GateType::Nand,
                     GateType::Nor, GateType::Xor, GateType::Xnor}) {
    std::vector<NodeId> fi = pis;  // 100 fanins: exceeds the stack buffer
    net.add_output(net.add_gate(t, std::move(fi)),
                   std::string("w") + std::to_string(static_cast<int>(t)));
  }
  net.add_output(net.add_mux(pis[0], pis[1], c0), "m0");
  net.add_output(net.add_mux(pis[2], c1, pis[3]), "m1");
  net.add_output(net.add_buf(c0), "b0");
  net.add_output(net.add_not(c1), "n1");

  sim::LogicSim ref(net);
  sim::CompiledSim cs(net);
  std::mt19937_64 rng(13);
  std::vector<std::uint64_t> pi(net.inputs().size());
  sim::Frame fa, fb;
  for (int round = 0; round < 16; ++round) {
    for (auto& w : pi) w = rng();
    ref.eval_into(fa, pi);
    cs.eval_into(fb, pi);
    ASSERT_EQ(fa, fb) << "round " << round;
  }

  auto a = measure_with(net, false, 64, 5);
  auto b = measure_with(net, true, 64, 5);
  expect_stats_identical(a, b);
}

// ---- activity-driver equality --------------------------------------------

TEST(Compiled, MeasureActivityIdenticalAcrossSuite) {
  for (auto& [name, net] : bench::default_suite()) {
    auto interp = measure_with(net, false, 128, 42);
    for (std::size_t B : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                          std::size_t{16}}) {
      auto comp = measure_with(net, true, 128, 42, B);
      SCOPED_TRACE(name + " B=" + std::to_string(B));
      expect_stats_identical(interp, comp);
    }
  }
}

TEST(Compiled, SequentialAndLoadEnabledDffsIdentical) {
  for (int n : {4, 8}) {
    auto net = bench::counter(n);
    expect_stats_identical(measure_with(net, false, 96, 3),
                           measure_with(net, true, 96, 3));
  }
  // Load-enabled register bank: EN recirculation must match exactly.
  Netlist net("le");
  NodeId d0 = net.add_input("d0");
  NodeId d1 = net.add_input("d1");
  NodeId en = net.add_input("en");
  NodeId q0 = net.add_dff(d0, /*init=*/true, "q0");
  NodeId q1 = net.add_dff(net.add_xor(d1, q0), false, "q1");
  net.set_dff_enable(q0, en);
  net.set_dff_enable(q1, net.add_not(en));
  net.add_output(net.add_and(q0, q1), "o");
  expect_stats_identical(measure_with(net, false, 64, 17),
                         measure_with(net, true, 64, 17));
}

TEST(Compiled, TraceCaptureIdentical) {
  // The captured per-frame matrix feeds incremental splicing — it must be
  // word-for-word identical, dead slots included.
  auto net = bench::array_multiplier(4);
  sim::ActivityTrace ta, tb;
  measure_with(net, false, 128, 9, 8, &ta);
  measure_with(net, true, 128, 9, 8, &tb);
  ASSERT_EQ(ta.frames.size(), tb.frames.size());
  for (std::size_t fr = 0; fr < ta.frames.size(); ++fr)
    ASSERT_EQ(ta.frames[fr], tb.frames[fr]) << "frame " << fr;
  EXPECT_EQ(ta.ones, tb.ones);
  EXPECT_EQ(ta.toggles, tb.toggles);
  EXPECT_EQ(ta.shard_start, tb.shard_start);
  EXPECT_EQ(ta.patterns, tb.patterns);
  EXPECT_EQ(ta.seam_patterns, tb.seam_patterns);
}

TEST(Compiled, ThreadCountInvariance) {
  // Bit-identical at 1/2/4/8 threads with the compiled engine — the PR 2
  // determinism contract survives the chunked dispatch grain.
  auto net = bench::random_dag(24, 600, 77);
  sim::ScopedSimOptions guard(compiled_opts());
  std::vector<sim::ActivityStats> runs;
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    core::ScopedThreads st(t);
    runs.push_back(sim::measure_activity(net, 512, 23));
  }
  for (std::size_t i = 1; i < runs.size(); ++i)
    expect_stats_identical(runs[0], runs[i]);
  // And interpreted == compiled at a non-trivial thread count.
  {
    core::ScopedThreads st(4);
    sim::ScopedSimOptions g2(interpreted_opts());
    expect_stats_identical(sim::measure_activity(net, 512, 23), runs[0]);
  }
}

TEST(Compiled, TimedActivityThreadInvariance) {
  // The chunked EventSim grain must keep timed counts thread-invariant.
  auto net = bench::carry_select_adder(8, 2);
  std::vector<sim::TimedStats> runs;
  for (unsigned t : {1u, 2u, 4u}) {
    core::ScopedThreads st(t);
    runs.push_back(sim::measure_timed_activity(net, 4096, 5));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].vectors, runs[i].vectors);
    EXPECT_EQ(runs[0].total_toggles, runs[i].total_toggles);
    EXPECT_EQ(runs[0].functional_toggles, runs[i].functional_toggles);
  }
}

// ---- tape patching through mutation epochs --------------------------------

// Journaled local rewrite: double-inverter splice ahead of a PO driver.
Netlist::TouchedNodes splice_po_driver(Netlist& net) {
  net.begin_undo();
  NodeId o = net.outputs()[0];
  net.replace_fanin(o, 0, net.add_not(net.add_not(net.node(o).fanins[0])));
  auto touched = net.touched_nodes();
  net.commit_undo();
  return touched;
}

TEST(Compiled, UpdatePatchesTapeAfterMutation) {
  auto net = bench::alu(4);
  sim::CompiledSim cs(net);
  EXPECT_TRUE(cs.compact());
  auto touched = splice_po_driver(net);
  cs.update(touched);
  EXPECT_FALSE(cs.compact());
  // Patched-tape full evaluation must equal a freshly compiled netlist's.
  sim::CompiledSim fresh(net);
  std::mt19937_64 rng(3);
  std::vector<std::uint64_t> pi(net.inputs().size());
  sim::Frame fa, fb;
  for (int round = 0; round < 8; ++round) {
    for (auto& w : pi) w = rng();
    cs.eval_into(fa, pi);
    fresh.eval_into(fb, pi);
    ASSERT_EQ(fa, fb) << "round " << round;
  }
  EXPECT_THROW(cs.exec_all(fa.data(), 1), std::logic_error);
  cs.rebuild();
  EXPECT_TRUE(cs.compact());
}

TEST(Compiled, ConeSliceAfterMutationMatchesFullEval) {
  // Patch the tape, then re-evaluate only the mutation's fanout cone inside
  // a stale frame: the splice must reproduce a full fresh evaluation.
  auto net = bench::array_multiplier(4);
  sim::CompiledSim cs(net);
  std::mt19937_64 rng(19);
  std::vector<std::uint64_t> pi(net.inputs().size());
  for (auto& w : pi) w = rng();
  sim::Frame f;
  cs.eval_into(f, pi);

  auto touched = splice_po_driver(net);
  cs.update(touched);
  f.resize(net.size(), 0);  // appended nodes start as zero slots
  auto mask = net.fanout_cone_of(touched.value_roots, true);
  auto sched = cs.cone_schedule(mask);
  EXPECT_GT(sched.gates.size(), 0u);
  cs.exec_gates(f.data(), 1, sched.gates);

  sim::LogicSim ref(net);
  sim::Frame full;
  ref.eval_into(full, pi);
  ASSERT_EQ(f, full);
}

TEST(Compiled, RevertToRestoresPreMutationTape) {
  auto net = bench::comparator_gt(8);
  sim::CompiledSim cs(net);
  const std::size_t old_size = net.size();
  std::mt19937_64 rng(29);
  std::vector<std::uint64_t> pi(net.inputs().size());
  for (auto& w : pi) w = rng();
  sim::Frame before;
  cs.eval_into(before, pi);

  net.begin_undo();
  NodeId o = net.outputs()[0];
  net.replace_fanin(o, 0, net.add_not(net.add_not(net.node(o).fanins[0])));
  auto touched = net.touched_nodes();
  net.rollback_undo();
  cs.revert_to(old_size, touched.value_roots);

  sim::Frame after;
  cs.eval_into(after, pi);
  ASSERT_EQ(before, after);
}

TEST(Compiled, GarbageBoundTriggersRebuild) {
  auto net = bench::c17();
  sim::CompiledSim cs(net);
  const std::size_t base = cs.tape_words();
  for (int i = 0; i < 2000; ++i) {
    auto touched = splice_po_driver(net);
    cs.update(touched);
  }
  // The bound keeps total words within 2x the (growing) compact program.
  EXPECT_LE(cs.tape_words(), 2 * std::max<std::size_t>(cs.records() * 8, 256));
  EXPECT_GT(cs.tape_words(), base);
  sim::CompiledSim fresh(net);
  std::mt19937_64 rng(31);
  std::vector<std::uint64_t> pi(net.inputs().size());
  sim::Frame fa, fb;
  for (int round = 0; round < 4; ++round) {
    for (auto& w : pi) w = rng();
    cs.eval_into(fa, pi);
    fresh.eval_into(fb, pi);
    ASSERT_EQ(fa, fb);
  }
}

// ---- incremental-analyzer integration ------------------------------------

TEST(Compiled, IncrementalReanalyzeIdenticalAcrossEngines) {
  for (auto& [name, base] : bench::default_suite()) {
    SCOPED_TRACE(name);
    power::AnalysisOptions ao;
    ao.mode = power::ActivityMode::ZeroDelay;
    ao.n_vectors = 1024;

    Netlist net_c = base, net_i = base;
    sim::ScopedSimOptions gc(compiled_opts());
    power::IncrementalAnalyzer inc_c(net_c, ao);
    {
      sim::ScopedSimOptions gi(interpreted_opts());
      power::IncrementalAnalyzer inc_i(net_i, ao);
      auto tc = splice_po_driver(net_c);
      auto ti = splice_po_driver(net_i);
      inc_c.reanalyze(tc);
      inc_i.reanalyze(ti);
      EXPECT_EQ(inc_c.analysis().toggles_per_cycle,
                inc_i.analysis().toggles_per_cycle);
      EXPECT_EQ(inc_c.analysis().report.breakdown.switching_w,
                inc_i.analysis().report.breakdown.switching_w);
      EXPECT_EQ(inc_c.analysis().report.weighted_activity,
                inc_i.analysis().report.weighted_activity);
    }
    // Compiled incremental == fresh full analyze of the mutated net.
    auto full = power::analyze(net_c, ao);
    EXPECT_EQ(inc_c.analysis().toggles_per_cycle, full.toggles_per_cycle);
    EXPECT_EQ(inc_c.analysis().report.breakdown.switching_w,
              full.report.breakdown.switching_w);
  }
}

TEST(Compiled, IncrementalRevertRestoresTapeAndAnalysis) {
  auto net = bench::alu(4);
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = 1024;
  sim::ScopedSimOptions guard(compiled_opts());
  power::IncrementalAnalyzer inc(net, ao);
  auto before = inc.analysis();

  net.begin_undo();
  NodeId o = net.outputs()[0];
  net.replace_fanin(o, 0, net.add_not(net.add_not(net.node(o).fanins[0])));
  auto touched = net.touched_nodes();
  inc.reanalyze(touched);
  net.rollback_undo();
  inc.revert_last();

  EXPECT_EQ(before.toggles_per_cycle, inc.analysis().toggles_per_cycle);
  EXPECT_EQ(before.report.breakdown.switching_w,
            inc.analysis().report.breakdown.switching_w);

  // The reverted tape must keep estimating correctly for the next epoch.
  auto touched2 = splice_po_driver(net);
  inc.reanalyze(touched2);
  auto full = power::analyze(net, ao);
  EXPECT_EQ(inc.analysis().toggles_per_cycle, full.toggles_per_cycle);
}

TEST(Compiled, FlowResultsIdenticalAcrossEngines) {
  // End-to-end: the optimization flows must be trajectory-identical under
  // either engine (estimates gate accept/revert decisions, so any frame
  // divergence would change the kept-stage sequence).
  auto base = bench::alu(4);
  core::FlowOptions fo;
  fo.sim_vectors = 512;
  core::FlowResult rc, ri;
  {
    sim::ScopedSimOptions g(compiled_opts());
    Netlist n = base;
    rc = core::optimize_combinational(n, fo);
  }
  {
    sim::ScopedSimOptions g(interpreted_opts());
    Netlist n = base;
    ri = core::optimize_combinational(n, fo);
  }
  ASSERT_EQ(rc.stages.size(), ri.stages.size());
  for (std::size_t i = 0; i < rc.stages.size(); ++i) {
    EXPECT_EQ(rc.stages[i].power_w, ri.stages[i].power_w) << "stage " << i;
    EXPECT_EQ(rc.stages[i].status, ri.stages[i].status) << "stage " << i;
  }
}

// ---- options plumbing -----------------------------------------------------

TEST(Compiled, NormalizeBlockAndScopedOptions) {
  EXPECT_EQ(sim::normalize_block(0), 1u);
  EXPECT_EQ(sim::normalize_block(1), 1u);
  EXPECT_EQ(sim::normalize_block(3), 2u);
  EXPECT_EQ(sim::normalize_block(5), 4u);
  EXPECT_EQ(sim::normalize_block(8), 8u);
  EXPECT_EQ(sim::normalize_block(15), 8u);
  EXPECT_EQ(sim::normalize_block(64), 16u);

  const sim::SimOptions saved = sim::sim_options();
  {
    sim::ScopedSimOptions g(interpreted_opts());
    EXPECT_FALSE(sim::sim_options().use_compiled);
  }
  EXPECT_EQ(sim::sim_options().use_compiled, saved.use_compiled);
  EXPECT_EQ(sim::sim_options().block, saved.block);
}

TEST(Compiled, ExecAllRejectsBadBlockAndPatchedTape) {
  auto net = bench::c17();
  sim::CompiledSim cs(net);
  std::vector<std::uint64_t> val(net.size() * 3, 0);
  EXPECT_THROW(cs.exec_all(val.data(), 3), std::invalid_argument);
  EXPECT_THROW(cs.exec_gates(val.data(), 5, {}), std::invalid_argument);
}

}  // namespace
