// Diagnostics-layer tests: the Status/Diagnostic/DiagEngine vocabulary, a
// corpus of malformed BLIF/KISS inputs (each must produce a clean positioned
// Diagnostic — never a crash), and a deterministic mini-fuzzer that feeds
// thousands of byte/token mutations of valid files through both parsers.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/diag.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/blif.hpp"
#include "netlist/validate.hpp"
#include "seq/stg.hpp"

namespace lps {
namespace {

// ---------------------------------------------------------------------------
// Diagnostic vocabulary basics.

TEST(Diag, StatusAndFormatting) {
  diag::Status ok = diag::Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.message(), "");

  auto bad = diag::Status::error("width mismatch", {"in.blif", 12, 3});
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.diagnostic().str(), "error: in.blif:12:3: width mismatch");
  EXPECT_EQ(bad.diagnostic().loc.line, 12);
}

TEST(Diag, EngineCountsAndLimits) {
  diag::DiagEngine eng(/*max_kept=*/3);
  for (int i = 0; i < 10; ++i) eng.error("e" + std::to_string(i));
  eng.warning("w");
  EXPECT_EQ(eng.num_errors(), 10u);
  EXPECT_EQ(eng.num_warnings(), 1u);
  EXPECT_EQ(eng.diagnostics().size(), 3u);  // retention capped
  EXPECT_EQ(eng.num_suppressed(), 8u);
  EXPECT_FALSE(eng.ok());
  EXPECT_TRUE(eng.saturated());
  ASSERT_NE(eng.first_error(), nullptr);
  EXPECT_EQ(eng.first_error()->message, "e0");
  eng.clear();
  EXPECT_TRUE(eng.ok());
}

TEST(Diag, LpsCheckFiresInAllBuildModes) {
  // LPS_CHECK must fire regardless of NDEBUG — that is its whole point.
  EXPECT_THROW(LPS_CHECK(1 == 2, "one is not two"), diag::CheckError);
  try {
    LPS_CHECK(false, "ctx");
    FAIL() << "unreachable";
  } catch (const diag::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
    EXPECT_GT(e.diagnostic().loc.line, 0);  // carries this file's position
  }
}

// ---------------------------------------------------------------------------
// Malformed-input corpus.  Each entry is a broken file plus the line the
// first error diagnostic must point at (0 = whole-file error).

struct BadCase {
  const char* name;
  const char* text;
  int line;              // expected loc.line of the first error
  const char* fragment;  // expected substring of the first error message
};

const BadCase kBadBlif[] = {
    {"empty-file", "", 0, "empty input"},
    {"only-comment", "# nothing here\n", 0, "empty input"},
    {"truncated-names-header", ".model t\n.inputs a\n.names\n", 3,
     ".names needs at least an output"},
    {"truncated-latch", ".model t\n.inputs a\n.latch a\n", 3,
     ".latch needs input and output"},
    {"undefined-output", ".model t\n.inputs a\n.outputs y\n.end\n", 3,
     "never defined"},
    {"undefined-table-input",
     ".model t\n.inputs a\n.outputs y\n.names a q y\n11 1\n.end\n", 4,
     "undefined signal \"q\""},
    {"undefined-latch-input",
     ".model t\n.inputs a\n.outputs q\n.latch mystery q 0\n.end\n", 4,
     "undefined signal \"mystery\""},
    {"cube-width-short",
     ".model t\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n", 5,
     "cube width mismatch"},
    {"cube-width-long",
     ".model t\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n", 5,
     "cube width mismatch"},
    {"bad-cube-char",
     ".model t\n.inputs a b\n.outputs y\n.names a b y\n1x 1\n.end\n", 5,
     "bad cube character"},
    {"bad-output-value",
     ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 2\n.end\n", 5,
     "output value must be 0 or 1"},
    {"row-outside-names", "11 1\n", 1, "outside any .names"},
    {"row-after-latch",
     ".model t\n.inputs a\n.outputs q\n.latch a q 0\n11 1\n.end\n", 5,
     "outside any .names"},
    {"dependency-cycle",
     ".model t\n.inputs a\n.outputs y\n"
     ".names a x y\n11 1\n.names y z\n1 1\n.names z x\n1 1\n.end\n",
     4, "dependency cycle"},
    {"self-cycle",
     ".model t\n.inputs a\n.outputs y\n.names a y y\n11 1\n.end\n", 4,
     "dependency cycle"},
    {"duplicate-driver",
     ".model t\n.inputs a b\n.outputs y\n"
     ".names a y\n1 1\n.names b y\n1 1\n.end\n",
     6, "redefined"},
    {"names-redefines-input",
     ".model t\n.inputs a b\n.outputs a\n.names b a\n1 1\n.end\n", 4,
     "redefined"},
    {"duplicate-latch-output",
     ".model t\n.inputs a b\n.outputs q\n.latch a q 0\n.latch b q 0\n.end\n",
     5, "redefined"},
    {"mixed-onset-offset",
     ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n", 4,
     "mixes output values"},
    {"constant-row-garbage",
     ".model t\n.outputs y\n.names y\nmaybe\n.end\n", 4,
     "constant table row"},
    {"duplicate-po",
     ".model t\n.inputs a\n.outputs y y\n.names a y\n1 1\n.end\n", 3,
     "listed twice"},
};

TEST(BadInputCorpus, BlifEachCaseYieldsPositionedDiagnostic) {
  for (const auto& c : kBadBlif) {
    diag::DiagEngine eng;
    std::optional<Netlist> net;
    ASSERT_NO_THROW(net = blif::parse_string(c.text, eng, "in.blif"))
        << c.name;
    EXPECT_FALSE(net.has_value()) << c.name;
    ASSERT_FALSE(eng.ok()) << c.name;
    const diag::Diagnostic* d = eng.first_error();
    ASSERT_NE(d, nullptr) << c.name;
    EXPECT_NE(d->message.find(c.fragment), std::string::npos)
        << c.name << ": got \"" << d->message << '"';
    EXPECT_EQ(d->loc.line, c.line) << c.name << ": " << d->str();
    EXPECT_EQ(d->loc.file, "in.blif") << c.name;
    // The throwing wrapper reports the same failure as an exception.
    EXPECT_THROW(blif::read_string(c.text), diag::ParseError) << c.name;
  }
}

const BadCase kBadKiss[] = {
    {"empty-file", "", 0, "empty input"},
    {"short-transition", ".i 1\n.o 1\n0 s0 s1\n.e\n", 3,
     "malformed transition"},
    {"bad-i-header", ".i banana\n.o 1\n0 s0 s1 1\n.e\n", 1,
     ".i header needs an integer"},
    {"negative-width", ".i -3\n.o 1\n0 s0 s1 1\n.e\n", 1,
     ".i header needs an integer"},
    {"huge-width", ".i 4000000000\n.o 1\n0 s0 s1 1\n.e\n", 1,
     ".i header needs an integer"},
    {"input-width-mismatch", ".i 2\n.o 1\n0 s0 s1 1\n.e\n", 3,
     "input cube"},
    {"output-width-mismatch", ".i 1\n.o 2\n0 s0 s1 1\n.e\n", 3,
     "output bits"},
    {"bad-cube-char", ".i 1\n.o 1\nq s0 s1 1\n.e\n", 3,
     "bad input cube character"},
    {"unknown-reset", ".i 1\n.o 1\n.r nowhere\n0 s0 s1 1\n.e\n", 3,
     "reset state"},
    {"nondeterministic", ".i 1\n.o 1\n1 s0 s1 1\n1 s0 s2 0\n.e\n", 0,
     "nondeterministic"},
};

TEST(BadInputCorpus, KissEachCaseYieldsPositionedDiagnostic) {
  for (const auto& c : kBadKiss) {
    diag::DiagEngine eng;
    std::optional<seq::Stg> g;
    ASSERT_NO_THROW(g = seq::parse_kiss_string(c.text, eng, "in.kiss"))
        << c.name;
    EXPECT_FALSE(g.has_value()) << c.name;
    ASSERT_FALSE(eng.ok()) << c.name;
    const diag::Diagnostic* d = eng.first_error();
    ASSERT_NE(d, nullptr) << c.name;
    EXPECT_NE(d->message.find(c.fragment), std::string::npos)
        << c.name << ": got \"" << d->message << '"';
    EXPECT_EQ(d->loc.line, c.line) << c.name << ": " << d->str();
    EXPECT_THROW(seq::read_kiss_string(c.text), diag::ParseError) << c.name;
  }
}

TEST(BadInputCorpus, HugeLineDoesNotCrash) {
  // A single multi-megabyte line: the parser must diagnose, not hang or die.
  std::string big(2u << 20, '1');
  std::string text = ".model t\n.inputs a b\n.outputs y\n.names a b y\n" +
                     big + " 1\n.end\n";
  diag::DiagEngine eng;
  auto net = blif::parse_string(text, eng);
  EXPECT_FALSE(net.has_value());
  EXPECT_FALSE(eng.ok());

  // And a wide-but-valid one must parse: a 64-input AND via one cube.
  std::string sigs, mask(64, '1');
  for (int i = 0; i < 64; ++i) sigs += " x" + std::to_string(i);
  std::string wide = ".model w\n.inputs" + sigs + "\n.outputs y\n.names" +
                     sigs + " y\n" + mask + " 1\n.end\n";
  diag::DiagEngine eng2;
  auto net2 = blif::parse_string(wide, eng2);
  ASSERT_TRUE(net2.has_value()) << eng2.str();
  EXPECT_EQ(net2->check(), "");
  EXPECT_EQ(net2->inputs().size(), 64u);
}

TEST(BadInputCorpus, TruncationOfValidFileNeverCrashes) {
  // Every prefix of a valid sequential BLIF file must either parse or
  // produce diagnostics — no crashes, no invalid netlists.
  Netlist nl("trunc");
  {
    NodeId a = nl.add_input("a");
    NodeId b = nl.add_input("b");
    NodeId q = nl.add_dff(nl.add_xor(a, b), true, "q");
    nl.add_output(nl.add_and(q, a), "y");
  }
  std::string full = blif::write_string(nl);
  ASSERT_NE(full.find(".latch"), std::string::npos);
  for (std::size_t cut = 0; cut <= full.size(); cut += 7) {
    diag::DiagEngine eng;
    std::optional<Netlist> net;
    ASSERT_NO_THROW(net = blif::parse_string(full.substr(0, cut), eng))
        << "cut at " << cut;
    if (net) {
      EXPECT_EQ(net->check(), "") << "cut at " << cut;
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic mini-fuzzer: seeded byte/token mutations of valid inputs.
// The contract under test: arbitrary bytes in, and the parser either returns
// a structurally valid artifact or structured diagnostics — never an escaped
// exception, crash, or hang.

std::string mutate(const std::string& base, std::mt19937& rng) {
  std::string s = base;
  int n_mut = 1 + static_cast<int>(rng() % 4);
  for (int m = 0; m < n_mut && !s.empty(); ++m) {
    switch (rng() % 6) {
      case 0:  // flip a byte to anything (including '\0' and 0xFF)
        s[rng() % s.size()] = static_cast<char>(rng() % 256);
        break;
      case 1:  // delete a span
        {
          std::size_t at = rng() % s.size();
          s.erase(at, 1 + rng() % 16);
        }
        break;
      case 2:  // insert garbage
        {
          std::size_t at = rng() % (s.size() + 1);
          std::string junk;
          for (int k = 0; k < 1 + static_cast<int>(rng() % 8); ++k)
            junk += static_cast<char>(rng() % 256);
          s.insert(at, junk);
        }
        break;
      case 3:  // truncate
        s.resize(rng() % s.size());
        break;
      case 4:  // duplicate a span (token soup / repeated declarations)
        {
          std::size_t at = rng() % s.size();
          std::size_t len = std::min<std::size_t>(1 + rng() % 32,
                                                  s.size() - at);
          s.insert(at, s.substr(at, len));
        }
        break;
      case 5:  // swap two characters (reorders tokens/keywords)
        std::swap(s[rng() % s.size()], s[rng() % s.size()]);
        break;
    }
  }
  return s;
}

TEST(ParserFuzz, BlifSurvives1500SeededMutations) {
  std::ostringstream comb, seq_os;
  blif::write(comb, bench::c17());
  // A sequential base so .latch paths get fuzzed too.
  Netlist seq_net("fuzzseq");
  {
    NodeId a = seq_net.add_input("a");
    NodeId b = seq_net.add_input("b");
    NodeId x = seq_net.add_xor(a, b);
    NodeId q = seq_net.add_dff(x, true, "q");
    seq_net.add_output(seq_net.add_and(q, a), "y");
  }
  blif::write(seq_os, seq_net);

  std::mt19937 rng(0xB11F);
  int parsed_ok = 0, rejected = 0;
  for (int i = 0; i < 1500; ++i) {
    const std::string& base = (i % 2 == 0) ? comb.str() : seq_os.str();
    std::string text = mutate(base, rng);
    diag::DiagEngine eng(16);
    std::optional<Netlist> net;
    ASSERT_NO_THROW(net = blif::parse_string(text, eng))
        << "iteration " << i;
    if (net) {
      ++parsed_ok;
      // Whatever parses must be structurally sound.
      ASSERT_EQ(net->check(), "") << "iteration " << i;
    } else {
      ++rejected;
      EXPECT_FALSE(eng.ok()) << "iteration " << i
                             << ": rejected without any error diagnostic";
    }
  }
  // The fuzzer must actually exercise both outcomes.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_GT(rejected, 0);
}

TEST(ParserFuzz, KissSurvives1500SeededMutations) {
  std::ostringstream os;
  seq::write_kiss(os, seq::mcnc_dk27());
  const std::string base = os.str();

  std::mt19937 rng(0x1455);
  int parsed_ok = 0, rejected = 0;
  for (int i = 0; i < 1500; ++i) {
    std::string text = mutate(base, rng);
    diag::DiagEngine eng(16);
    std::optional<seq::Stg> g;
    ASSERT_NO_THROW(g = seq::parse_kiss_string(text, eng))
        << "iteration " << i;
    if (g) {
      ++parsed_ok;
      ASSERT_EQ(g->check(), "") << "iteration " << i;
    } else {
      ++rejected;
      EXPECT_FALSE(eng.ok()) << "iteration " << i
                             << ": rejected without any error diagnostic";
    }
  }
  EXPECT_GT(parsed_ok, 0);
  EXPECT_GT(rejected, 0);
}

// Valid files keep parsing, with zero diagnostics.
TEST(ParserFuzz, RoundTripStillClean) {
  for (const auto& [name, net] : bench::default_suite()) {
    std::ostringstream os;
    blif::write(os, net);
    diag::DiagEngine eng;
    auto back = blif::parse_string(os.str(), eng, name);
    ASSERT_TRUE(back.has_value()) << name << "\n" << eng.str();
    EXPECT_EQ(eng.num_errors(), 0u) << name;
    EXPECT_EQ(back->check(), "") << name;
  }
}

}  // namespace
}  // namespace lps
