// Two-level algebra tests: cubes, SOPs, division, kernels, factoring.

#include <gtest/gtest.h>

#include <random>

#include "sop/division.hpp"
#include "sop/factoring.hpp"
#include "sop/kernels.hpp"
#include "sop/sop.hpp"

namespace lps::sop {
namespace {

TEST(Cube, ParseAndLiterals) {
  Cube c = Cube::parse("1-0");
  EXPECT_TRUE(c.has_pos(0));
  EXPECT_FALSE(c.has_var(1));
  EXPECT_TRUE(c.has_neg(2));
  EXPECT_EQ(c.num_literals(), 2u);
  EXPECT_EQ(c.to_string(), "1-0");
}

TEST(Cube, ContainmentIsPointSetContainment) {
  // "11-" (a&b) is contained in "1--" (a).
  Cube ab = Cube::parse("11-");
  Cube a = Cube::parse("1--");
  EXPECT_TRUE(ab.contained_in(a));
  EXPECT_FALSE(a.contained_in(ab));
}

TEST(Cube, IntersectAndContradiction) {
  Cube x = Cube::parse("1--");
  Cube y = Cube::parse("0--");
  EXPECT_TRUE(x.intersect(y).contradictory());
  Cube z = Cube::parse("-1-");
  Cube xz = x.intersect(z);
  EXPECT_EQ(xz.to_string(), "11-");
}

TEST(Cube, MinusAndCommon) {
  Cube c = Cube::parse("110");
  Cube d = Cube::parse("1--");
  EXPECT_EQ(c.minus(d).to_string(), "-10");
  EXPECT_EQ(c.common(Cube::parse("1-0")).to_string(), "1-0");
}

TEST(Sop, ParseEvalMinimize) {
  Sop f = Sop::parse(3, "11- + 1-- + 0-1");
  // "11-" ⊂ "1--": SCC removes it.
  f.minimize_scc();
  EXPECT_EQ(f.num_cubes(), 2u);
  std::vector<bool> a{true, false, false};
  EXPECT_TRUE(f.eval(a));
  std::vector<bool> b{false, false, false};
  EXPECT_FALSE(f.eval(b));
}

TEST(Sop, CubeFreeAndCommonCube) {
  Sop f = Sop::parse(3, "11- + 1-1");  // common literal a
  EXPECT_FALSE(f.is_cube_free());
  EXPECT_EQ(f.largest_common_cube().to_string(), "1--");
  Sop g = Sop::parse(3, "1-- + -1-");
  EXPECT_TRUE(g.is_cube_free());
}

TEST(Division, ByCube) {
  // f = a·b + a·c + d;  f / a = b + c, remainder d.
  Sop f = Sop::parse(4, "11-- + 1-1- + ---1");
  auto r = divide(f, Cube::parse("1---"));
  EXPECT_EQ(r.quotient.num_cubes(), 2u);
  EXPECT_EQ(r.remainder.num_cubes(), 1u);
}

TEST(Division, BySopReconstructs) {
  // f = (a+b)(c+d) + e  -> divide by (c+d): q=(a+b), r=e.
  Sop f = Sop::parse(5, "1-1-- + 1--1- + -11-- + -1-1- + ----1");
  Sop d = Sop::parse(5, "--1-- + ---1-");
  auto r = divide(f, d);
  EXPECT_EQ(r.quotient.num_cubes(), 2u);
  EXPECT_EQ(r.remainder.num_cubes(), 1u);
  // Verify f == q*d + r pointwise.
  Sop rebuilt = add(multiply(r.quotient, d), r.remainder);
  for (int m = 0; m < 32; ++m) {
    std::vector<bool> a;
    for (int b = 0; b < 5; ++b) a.push_back((m >> b & 1) != 0);
    EXPECT_EQ(f.eval(a), rebuilt.eval(a)) << m;
  }
}

TEST(Division, NonDivisorGivesEmptyQuotient) {
  Sop f = Sop::parse(3, "11- + 0-1");
  Sop d = Sop::parse(3, "--1 + 1--");
  auto r = divide(f, d);
  EXPECT_TRUE(r.quotient.empty());
  EXPECT_EQ(r.remainder.num_cubes(), f.num_cubes());
}

TEST(Kernels, ClassicExample) {
  // f = a·c + a·d + b·c + b·d: kernels include (a+b) and (c+d).
  Sop f = Sop::parse(4, "1-1- + 1--1 + -11- + -1-1");
  auto ks = kernels(f);
  bool found_ab = false, found_cd = false;
  for (const auto& k : ks) {
    if (k.kernel == Sop::parse(4, "1--- + -1--")) found_ab = true;
    if (k.kernel == Sop::parse(4, "--1- + ---1")) found_cd = true;
  }
  EXPECT_TRUE(found_ab);
  EXPECT_TRUE(found_cd);
}

TEST(Kernels, CubeFreeProperty) {
  Sop f = Sop::parse(5, "11--- + 1-1-- + --11- + ---11 + 1---1");
  for (const auto& k : kernels(f)) {
    EXPECT_TRUE(k.kernel.is_cube_free());
    EXPECT_GE(k.kernel.num_cubes(), 2u);
  }
}

TEST(Kernels, ValuePositiveForSharedDivisor) {
  Sop f = Sop::parse(4, "1-1- + 1--1 + -11- + -1-1");
  Sop k = Sop::parse(4, "--1- + ---1");
  EXPECT_GT(kernel_value(f, k), 0);
}

TEST(Factor, ClassicExampleShrinks) {
  Sop f = Sop::parse(4, "1-1- + 1--1 + -11- + -1-1");
  Expr e = factor(f);
  EXPECT_EQ(f.num_literals(), 8u);
  EXPECT_EQ(e.num_literals(), 4u);  // (a+b)(c+d)
  // Function preserved.
  for (int m = 0; m < 16; ++m) {
    std::vector<bool> a;
    for (int b = 0; b < 4; ++b) a.push_back((m >> b & 1) != 0);
    EXPECT_EQ(f.eval(a), e.eval(a));
  }
}

TEST(Factor, ExprToString) {
  Sop f = Sop::parse(2, "11");
  Expr e = factor(f);
  EXPECT_EQ(e.to_string({"a", "b"}), "a*b");
}

// Property sweep: random SOPs, both factorings preserve function.
class FactorProperty : public ::testing::TestWithParam<int> {};

TEST_P(FactorProperty, FactoringsPreserveFunction) {
  std::mt19937 rng(GetParam());
  unsigned nv = 5 + rng() % 3;
  Sop f(nv);
  int cubes = 3 + static_cast<int>(rng() % 6);
  for (int c = 0; c < cubes; ++c) {
    Cube cu(nv);
    for (unsigned v = 0; v < nv; ++v) {
      switch (rng() % 3) {
        case 0: cu.set_pos(v); break;
        case 1: cu.set_neg(v); break;
        default: break;
      }
    }
    if (!cu.contradictory() && cu.num_literals() > 0) f.add_cube(cu);
  }
  if (f.empty()) return;
  Expr lit = factor(f);
  std::vector<double> w(nv);
  for (auto& x : w) x = 0.1 + 0.8 * (rng() % 100) / 100.0;
  Expr pow = factor_weighted(f, w);
  for (int m = 0; m < (1 << nv); ++m) {
    std::vector<bool> a;
    for (unsigned b = 0; b < nv; ++b) a.push_back((m >> b & 1) != 0);
    ASSERT_EQ(f.eval(a), lit.eval(a)) << "literal factoring seed " << GetParam();
    ASSERT_EQ(f.eval(a), pow.eval(a)) << "power factoring seed " << GetParam();
  }
  // Flattening back must also agree.
  Sop flat = to_sop(lit, nv);
  for (int m = 0; m < (1 << nv); ++m) {
    std::vector<bool> a;
    for (unsigned b = 0; b < nv; ++b) a.push_back((m >> b & 1) != 0);
    ASSERT_EQ(f.eval(a), flat.eval(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorProperty, ::testing::Range(1, 25));

}  // namespace
}  // namespace lps::sop
