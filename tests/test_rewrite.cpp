// test_rewrite.cpp — datapath rewrite engine: rule soundness, the power
// oracle protocol, nested undo epochs, and flow/pass rollback accounting.
//
// The contracts under test:
//  * every rule in logicopt/rewrite/rules.hpp is an exact identity — the
//    fuzzer applies every rule at every match site of the generated
//    adder/multiplier/ALU family and random DAGs and checks bit-identity
//    against the interpreted simulator at widths {scalar, auto} × threads
//    {1, 4} (test_simd's matrix discipline, extended to structural
//    rewrites);
//  * apply_rule() on a stale candidate mutates nothing;
//  * the engine's scoring is live: a kept rewrite re-scores later
//    candidates (A flipping B's profitability is decided correctly);
//  * Netlist undo epochs nest (candidate epochs inside a stage epoch);
//  * StageReport/PassRecord rollback accounting matches the journal's own
//    rollback counter, including when a transform dies with an inner epoch
//    still open (fault injection via the engine's chaos hooks).

#include <gtest/gtest.h>

#include <vector>

#include "core/flows.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/pass.hpp"
#include "logicopt/resynth.hpp"
#include "logicopt/rewrite/engine.hpp"
#include "netlist/benchmarks.hpp"
#include "power/incremental.hpp"
#include "sim/compiled.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;
using logicopt::rewrite::Candidate;
using logicopt::rewrite::match_rules;
using logicopt::rewrite::RewriteOptions;
using logicopt::rewrite::rewrite_datapath;

sim::SimTrace interp_trace(const Netlist& net, std::size_t frames = 64,
                           std::uint64_t seed = 33) {
  sim::SimOptions o;
  o.use_compiled = false;
  sim::ScopedSimOptions guard(o);
  core::ScopedThreads t1(1);
  return sim::functional_trace(net, frames, seed);
}

// ---- rule soundness fuzzer ------------------------------------------------

std::vector<bench::NamedNetlist> rewrite_family() {
  std::vector<bench::NamedNetlist> fam;
  fam.push_back({"rca4", bench::ripple_carry_adder(4)});
  fam.push_back({"csel8", bench::carry_select_adder(8, 2)});
  fam.push_back({"mult3", bench::array_multiplier(3)});
  fam.push_back({"alu3", bench::alu(3)});
  fam.push_back({"dct4", bench::dct_butterfly(4)});
  fam.push_back({"addsub4", bench::alu_addsub(4)});
  for (std::uint32_t seed : {11u, 12u, 13u})
    fam.push_back({"dag" + std::to_string(seed),
                   bench::random_dag(6, 60, seed)});
  return fam;
}

TEST(RewriteRules, EveryMatchSiteIsExactAcrossWidthsAndThreads) {
  for (const auto& [name, net] : rewrite_family()) {
    sim::SimTrace ref = interp_trace(net);
    auto candidates = match_rules(net);
    EXPECT_FALSE(candidates.empty()) << name;
    std::size_t applied = 0;
    for (const Candidate& c : candidates) {
      Netlist work = net.clone();
      if (!logicopt::rewrite::apply_rule(work, c)) continue;
      ++applied;
      ASSERT_EQ(work.check(), "")
          << name << " rule " << logicopt::rewrite::rule_name(c.rule)
          << " target " << c.target << " variant " << int(c.variant);
      for (sim::SimdWidth w : {sim::SimdWidth::Scalar, sim::SimdWidth::Auto}) {
        for (unsigned threads : {1u, 4u}) {
          sim::SimOptions o;
          o.use_compiled = true;
          o.width = w;
          sim::ScopedSimOptions guard(o);
          core::ScopedThreads t(threads);
          EXPECT_EQ(sim::functional_trace(work, 64, 33), ref)
              << name << " rule " << logicopt::rewrite::rule_name(c.rule)
              << " target " << c.target << " variant " << int(c.variant)
              << " width " << int(w) << " threads " << threads;
        }
      }
    }
    EXPECT_GT(applied, 0u) << name;
  }
}

TEST(RewriteRules, ChainedApplicationStaysExactAndStaleMatchesDontMutate) {
  for (const auto& [name, net] : rewrite_family()) {
    sim::SimTrace ref = interp_trace(net);
    Netlist work = net.clone();
    // Apply the whole (pre-enumerated) queue in order: earlier keeps
    // invalidate later matches, so this drives apply_rule's re-validation.
    auto candidates = match_rules(work);
    for (const Candidate& c : candidates) {
      std::uint64_t before = structural_hash(work);
      if (!logicopt::rewrite::apply_rule(work, c)) {
        EXPECT_EQ(structural_hash(work), before)
            << name << ": stale candidate mutated the netlist";
      }
    }
    ASSERT_EQ(work.check(), "") << name;
    EXPECT_EQ(interp_trace(work), ref) << name;
  }
}

// ---- nested undo epochs ---------------------------------------------------

TEST(NestedJournal, InnerRollbackLeavesOuterEpochArmed) {
  Netlist n("nest");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_and(a, b);
  n.add_output(g, "f");
  std::uint64_t h0 = structural_hash(n);

  n.begin_undo();
  NodeId o1 = n.add_or(a, b);
  n.substitute(g, o1);
  std::uint64_t h1 = structural_hash(n);

  n.begin_undo();
  EXPECT_EQ(n.undo_depth(), 2u);
  NodeId x1 = n.add_xor(a, b);
  n.substitute(o1, x1);
  EXPECT_NE(structural_hash(n), h1);
  n.rollback_undo();  // inner only
  EXPECT_EQ(n.undo_depth(), 1u);
  EXPECT_EQ(structural_hash(n), h1);

  n.rollback_undo();  // outer
  EXPECT_EQ(structural_hash(n), h0);
  EXPECT_EQ(n.undo_rollbacks(), 2u);
}

TEST(NestedJournal, CommittedInnerEpochMergesIntoParent) {
  Netlist n("merge");
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_and(a, b);
  n.add_output(g, "f");
  std::uint64_t h0 = structural_hash(n);

  n.begin_undo();
  NodeId o1 = n.add_or(a, b);
  n.substitute(g, o1);
  n.begin_undo();
  NodeId x1 = n.add_xor(a, b);
  n.substitute(o1, x1);
  n.sweep();
  n.commit_undo();  // inner changes now belong to the outer epoch
  EXPECT_EQ(n.undo_depth(), 1u);
  auto touched = n.touched_nodes();
  EXPECT_FALSE(touched.all);
  // The outer epoch must cover the inner epoch's edits too.
  bool covers_inner = false;
  for (NodeId id : touched.ids) covers_inner |= id == x1;
  EXPECT_TRUE(covers_inner);
  n.rollback_undo();  // outer rollback undoes both
  EXPECT_EQ(structural_hash(n), h0);
  EXPECT_EQ(n.check(), "");
}

TEST(NestedJournal, CandidateEpochsInsideStageEpochRestoreExactly) {
  // The engine's exact usage pattern: stage epoch, then per-candidate
  // epochs that individually commit or roll back, then a stage rollback.
  Netlist net = bench::dct_butterfly(4);
  std::uint64_t h0 = structural_hash(net);
  net.begin_undo();  // stage
  auto candidates = match_rules(net);
  ASSERT_GE(candidates.size(), 4u);
  std::size_t applied = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    net.begin_undo();  // candidate
    bool ok = logicopt::rewrite::apply_rule(net, candidates[i]);
    applied += ok;
    if (i % 2 == 0)
      net.commit_undo();
    else
      net.rollback_undo();
  }
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(net.undo_depth(), 1u);
  net.rollback_undo();  // stage epoch undoes every committed candidate
  EXPECT_EQ(structural_hash(net), h0);
  EXPECT_EQ(net.check(), "");
}

// ---- the oracle protocol --------------------------------------------------

TEST(ScoreCandidate, ProbeMatchesFullAnalysisAndRevertsExactly) {
  Netlist net = bench::alu_addsub(4);
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = 2048;
  ao.seed = 9;
  power::IncrementalAnalyzer inc(net, ao);
  double p0 = inc.analysis().report.breakdown.total_w();

  auto candidates = match_rules(net);
  ASSERT_FALSE(candidates.empty());
  bool probed = false;
  for (const Candidate& c : candidates) {
    net.begin_undo();
    if (!logicopt::rewrite::apply_rule(net, c)) {
      net.commit_undo();
      continue;
    }
    auto touched = net.touched_nodes();
    double scored = inc.score_candidate(touched);
    // The probe must equal a fresh full analysis of the mutated circuit.
    EXPECT_EQ(scored, power::analyze(net, ao).report.breakdown.total_w());
    net.rollback_undo();
    inc.revert_last();
    probed = true;
    break;
  }
  ASSERT_TRUE(probed);
  // After reject: estimate and netlist agree with the pre-probe state.
  EXPECT_EQ(inc.analysis().report.breakdown.total_w(), p0);
  EXPECT_EQ(inc.analysis().report.breakdown.total_w(),
            power::analyze(net, ao).report.breakdown.total_w());
}

// ---- engine behavior ------------------------------------------------------

TEST(RewriteEngine, SavesSwitchingPowerOnTheDatapathFamily) {
  for (auto* build : {+[] { return bench::dct_butterfly(8); },
                      +[] { return bench::alu_addsub(8); }}) {
    Netlist net = build();
    Netlist original = net.clone();
    auto res = rewrite_datapath(net);
    EXPECT_GT(res.kept, 0u);
    EXPECT_LT(res.power_after_w, res.power_before_w);
    EXPECT_EQ(res.unsound, 0u);
    EXPECT_EQ(net.check(), "");
    EXPECT_TRUE(sim::equivalent_random(original, net, 256, 77));
    // Accounting: every scored candidate was kept or reverted.
    EXPECT_EQ(res.candidates_scored, res.kept + res.reverted);
  }
}

TEST(RewriteEngine, KeptSequenceInvariantAcrossSimEnginesAndThreads) {
  Netlist a = bench::dct_butterfly(6);
  Netlist b = a.clone();
  logicopt::rewrite::RewriteResult ra, rb;
  {
    sim::SimOptions o;
    o.use_compiled = false;
    sim::ScopedSimOptions guard(o);
    core::ScopedThreads t(1);
    ra = rewrite_datapath(a);
  }
  {
    sim::SimOptions o;
    o.use_compiled = true;
    o.width = sim::SimdWidth::Auto;
    sim::ScopedSimOptions guard(o);
    core::ScopedThreads t(4);
    rb = rewrite_datapath(b);
  }
  EXPECT_EQ(structural_hash(a), structural_hash(b));
  EXPECT_EQ(ra.kept, rb.kept);
  EXPECT_EQ(ra.reverted, rb.reverted);
  EXPECT_EQ(ra.power_after_w, rb.power_after_w);
}

// Rewrite A flips the profitability of rewrite B: B (reassociation of
// Or(Or(q,x),y)) is gate-neutral on the input circuit — it must *build*
// Or(x,y) — so it is rejected.  A (distribution: Or(And(a,x),And(a,y)) ->
// And(a,Or(x,y))) is a clear win and leaves Or(x,y) live, after which B
// reuses it and removes a gate.  A stale-oracle engine that scored the
// whole queue against the input circuit would reject B forever; the live
// oracle accepts it on the next round.
TEST(RewriteEngine, EarlierKeepFlipsLaterCandidateProfitability) {
  Netlist net("flip");
  NodeId a = net.add_input("a");
  NodeId x = net.add_input("x");
  NodeId y = net.add_input("y");
  NodeId q = net.add_input("q");
  NodeId f1 = net.add_or(net.add_and(a, x), net.add_and(a, y));  // A site
  net.add_output(f1, "f1");
  NodeId g1 = net.add_or(net.add_or(q, x), y);  // B site
  net.add_output(g1, "g1");
  Netlist original = net.clone();
  ASSERT_EQ(net.num_gates(), 5u);

  RewriteOptions opt;
  // Reject noise-level "wins": a neutral rewrite re-samples one gate's
  // toggles and can drift a fraction of a gate's power in either
  // direction; a genuine structural win removes a whole gate.
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = opt.sim_vectors;
  ao.seed = opt.seed;
  double total = power::analyze(net, ao).report.breakdown.total_w();
  ASSERT_GT(total, 0.0);
  opt.min_gain_w = 0.3 * total / static_cast<double>(net.num_gates());

  auto res = rewrite_datapath(net, opt);
  EXPECT_EQ(res.kept, 2u);          // A, then B on the re-scored circuit
  EXPECT_GE(res.reverted, 1u);      // B's first scoring lost
  EXPECT_EQ(net.num_gates(), 3u);   // And(a,s), s = Or(x,y), Or(q,s)
  EXPECT_TRUE(sim::equivalent_random(original, net, 256, 77));
}

TEST(RewriteEngine, QueueCapIsNeverSilent) {
  core::metrics::reset();
  Netlist net = bench::dct_butterfly(6);
  RewriteOptions opt;
  opt.max_candidates = 2;
  auto res = rewrite_datapath(net, opt);
  EXPECT_TRUE(res.capped);
  EXPECT_GT(core::metrics::value("logicopt.rewrite.capped"), 0.0);
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(sim::equivalent_random(bench::dct_butterfly(6), net, 256, 77));
}

TEST(RewriteEngine, InjectedUnsoundRewriteIsRolledBackAndCounted) {
  core::metrics::reset();
  // dct_butterfly(8) is known to yield kept candidates (see
  // SavesSwitchingPowerOnTheDatapathFamily); the chaos hook fires on the
  // first candidate that was about to be kept.
  Netlist net = bench::dct_butterfly(8);
  Netlist original = net.clone();
  logicopt::rewrite::detail::force_unsound_rewrites(1);
  auto res = rewrite_datapath(net);
  logicopt::rewrite::detail::force_unsound_rewrites(0);
  EXPECT_EQ(res.unsound, 1u);
  EXPECT_EQ(core::metrics::value("logicopt.rewrite.unsound"), 1.0);
  EXPECT_EQ(net.check(), "");
  EXPECT_TRUE(sim::equivalent_random(original, net, 256, 77));
}

// ---- stale cost oracle in resynth -----------------------------------------

TEST(ResynthRescore, DecisionsComeFromTheLiveOracleNotTheStaleVector) {
  // With re-scoring on, the pass must be invariant to whatever activity
  // vector the caller captured before the pass — including an empty one
  // (the shape of the original bug: nodes beyond the vector's end scored
  // as toggle-free).
  for (auto* build : {+[] { return bench::carry_select_adder(8, 2); },
                      +[] { return bench::comparator_gt(6); }}) {
    Netlist n1 = build();
    Netlist n2 = build();
    auto st = sim::measure_activity(n1, 64, 5);
    logicopt::ResynthOptions opt;  // rescore_activities = true
    auto r1 = logicopt::resynthesize_windows(n1, st.transition_prob, opt);
    auto r2 = logicopt::resynthesize_windows(n2, {}, opt);
    EXPECT_EQ(structural_hash(n1), structural_hash(n2));
    EXPECT_EQ(r1.nodes_rewritten, r2.nodes_rewritten);
    // Every kept rewrite refreshed the oracle.
    EXPECT_EQ(r1.rescored, r1.nodes_rewritten);
    EXPECT_TRUE(sim::equivalent_random(build(), n1, 256, 77));
  }
}

TEST(ResynthCaps, TruncationIsSurfacedInResultMetricsAndNote) {
  core::metrics::reset();
  Netlist net = bench::alu(4);
  logicopt::ResynthOptions opt;
  opt.max_window_inputs = 1;  // every window over budget
  auto st = sim::measure_activity(net, 64, 5);
  auto res = logicopt::resynthesize_windows(net, st.transition_prob, opt);
  EXPECT_GT(res.windows_capped, 0);
  EXPECT_FALSE(res.note.empty());
  EXPECT_GT(core::metrics::value("logicopt.resynth.capped"), 0.0);

  core::metrics::reset();
  Netlist net2 = bench::carry_select_adder(8, 2);
  logicopt::ResynthOptions opt2;
  opt2.max_rewrites = 1;
  auto st2 = sim::measure_activity(net2, 64, 5);
  auto res2 = logicopt::resynthesize_windows(net2, st2.transition_prob, opt2);
  if (res2.nodes_rewritten >= 1) {
    EXPECT_TRUE(res2.rewrites_capped);
    EXPECT_FALSE(res2.note.empty());
    EXPECT_GT(core::metrics::value("logicopt.resynth.rewrites_capped"), 0.0);
  }
}

// ---- flow & pass rollback accounting --------------------------------------

TEST(FlowAccounting, StageRollbackCountsMatchTheJournalCounter) {
  for (auto* build : {+[] { return bench::dct_butterfly(8); },
                      +[] { return bench::array_multiplier(4); }}) {
    Netlist input = build();
    core::FlowOptions opt;
    opt.estimate_mode = power::ActivityMode::ZeroDelay;
    auto res = core::optimize_combinational(input, opt);
    std::size_t reported = 0;
    for (const auto& s : res.stages) reported += s.rollbacks;
    EXPECT_EQ(reported, res.circuit.undo_rollbacks())
        << "flow summary disagrees with the journal's rollback count";
    // Status vs journal: reverted/failed stages must have rewound at least
    // the stage epoch itself.
    for (const auto& s : res.stages) {
      if (s.status != "kept") {
        EXPECT_GE(s.rollbacks, 1u) << s.stage;
      }
    }
    EXPECT_TRUE(sim::equivalent_random(input, res.circuit, 256, 77));
  }
}

TEST(FlowAccounting, MidCandidateFaultUnwindsToTheStageEpoch) {
  Netlist input = bench::dct_butterfly(6);
  core::FlowOptions opt;
  opt.estimate_mode = power::ActivityMode::ZeroDelay;
  opt.run_dontcare = false;  // datapath is the first journaled stage
  opt.run_balance = false;
  opt.run_sizing = false;
  // Blow up inside the 3rd candidate, after its inner epoch opened (and
  // typically after earlier candidates committed into the stage epoch).
  logicopt::rewrite::detail::force_throw_on_candidate(3);
  auto res = core::optimize_combinational(input, opt);
  logicopt::rewrite::detail::force_throw_on_candidate(0);

  const core::StageReport* datapath = nullptr;
  for (const auto& s : res.stages)
    if (s.stage.rfind("datapath", 0) == 0) datapath = &s;
  ASSERT_NE(datapath, nullptr);
  EXPECT_EQ(datapath->status, "failed");
  // The unwind popped the open candidate epoch AND the stage epoch.
  EXPECT_GE(datapath->rollbacks, 2u);
  std::size_t reported = 0;
  for (const auto& s : res.stages) reported += s.rollbacks;
  EXPECT_EQ(reported, res.circuit.undo_rollbacks());
  // The failed stage must leave the strashed input untouched.
  EXPECT_TRUE(sim::equivalent_random(input, res.circuit, 256, 77));
  EXPECT_EQ(res.circuit.undo_depth(), 0u);
}

TEST(PassAccounting, MidCandidateFaultRollsBackThePassEpoch) {
  Netlist net = bench::dct_butterfly(6);
  std::uint64_t h0 = structural_hash(net);
  core::PassManager pm{core::PassManager::Options{}};
  pm.add(core::make_datapath_rewrite_pass());
  logicopt::rewrite::detail::force_throw_on_candidate(3);
  auto records = pm.run(net);
  logicopt::rewrite::detail::force_throw_on_candidate(0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_TRUE(records[0].rolled_back);
  EXPECT_EQ(structural_hash(net), h0);
  EXPECT_EQ(net.undo_depth(), 0u);
  EXPECT_EQ(net.check(), "");

  // And without the fault, the same pass runs clean end to end.
  auto clean = pm.run(net);
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_TRUE(clean[0].ok);
  EXPECT_TRUE(sim::equivalent_random(bench::dct_butterfly(6), net, 256, 77));
}

TEST(FlowStage, DatapathStageIsWiredIntoTheCombinationalFlow) {
  Netlist input = bench::dct_butterfly(8);
  core::FlowOptions opt;
  opt.estimate_mode = power::ActivityMode::ZeroDelay;
  auto res = core::optimize_combinational(input, opt);
  bool saw_datapath = false;
  for (const auto& s : res.stages)
    saw_datapath |= s.stage.rfind("datapath", 0) == 0;
  EXPECT_TRUE(saw_datapath);
  // The datapath family is exactly where the stage should win.
  const core::StageReport* datapath = nullptr;
  for (const auto& s : res.stages)
    if (s.stage == "datapath") datapath = &s;
  ASSERT_NE(datapath, nullptr) << "datapath stage was reverted or failed";
  EXPECT_EQ(datapath->status, "kept");
  EXPECT_TRUE(sim::equivalent_random(input, res.circuit, 256, 77));
}

}  // namespace
