// Coverage for the newest additions: MCNC machines, polling FSM, STG
// predicate gating, clock-power accounting, estimator ladder consistency.

#include <gtest/gtest.h>

#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "power/probability.hpp"
#include "seq/clock_gating.hpp"
#include "seq/encoding.hpp"
#include "seq/guarded_eval.hpp"
#include "seq/seq_circuit.hpp"
#include "seq/stg.hpp"
#include "sim/eventsim.hpp"
#include "sim/logicsim.hpp"

namespace lps {
namespace {

TEST(McncFsm, Dk27WellFormedAndSynthesizable) {
  auto g = seq::mcnc_dk27();
  EXPECT_EQ(g.num_states(), 7);
  EXPECT_EQ(g.num_inputs(), 1);
  EXPECT_EQ(g.num_outputs(), 2);
  EXPECT_EQ(g.check(), "");
  auto net = seq::synthesize_fsm(g, seq::binary_encoding(g));
  EXPECT_EQ(net.check(), "");
  EXPECT_EQ(net.dffs().size(), 3u);
}

TEST(McncFsm, ArbiterNeverDoubleGrants) {
  auto g = seq::mcnc_bbara_fragment();
  EXPECT_EQ(g.check(), "");
  for (const auto& t : g.transitions())
    EXPECT_NE(t.output, "11") << "double grant";
  // Low-power encoding still beats random on it.
  auto rnd = seq::random_encoding(g, 5);
  auto low = seq::low_power_encoding(g);
  EXPECT_LE(low.weighted_switching(g), rnd.weighted_switching(g) + 1e-9);
}

TEST(PollingFsm, SelfLoopsHalfTheTime) {
  auto g = seq::polling_fsm(8);
  EXPECT_EQ(g.check(), "");
  // Under uniform inputs every state self-loops with probability 1/2.
  auto m = g.transition_matrix();
  for (int s = 0; s < g.num_states(); ++s) EXPECT_NEAR(m[s][s], 0.5, 1e-12);
}

TEST(StgPredicateGating, BeatsComparatorOnPollingFsm) {
  auto stg = seq::polling_fsm(16);
  auto enc = seq::binary_encoding(stg);
  auto net = seq::synthesize_fsm(stg, enc);
  power::AnalysisOptions ao;
  ao.n_vectors = 2048;
  double plain = power::analyze(net, ao).report.breakdown.total_w();
  auto gated = net.clone();
  seq::gate_self_loops_from_stg(gated, stg, enc);
  double pred = power::analyze(gated, ao).report.breakdown.total_w();
  EXPECT_LT(pred, plain);  // the [4] transformation pays off
}

TEST(ClockPower, GatingReducesAnalyzeTotals) {
  // A register file whose hold muxes are converted to gated clocks must get
  // cheaper under the full Eqn.(1)+clock analysis.
  auto rf = seq::register_file(8, 8);
  power::AnalysisOptions ao;
  ao.n_vectors = 1024;
  auto before = power::analyze(rf, ao);
  auto gated = rf.clone();
  auto ps = seq::detect_hold_patterns(gated);
  seq::apply_clock_gating(gated, ps);
  auto after = power::analyze(gated, ao);
  EXPECT_GT(before.clock_power_w, 0.0);
  EXPECT_LT(after.clock_power_w, before.clock_power_w);
  EXPECT_LT(after.report.breakdown.total_w(),
            before.report.breakdown.total_w());
}

TEST(ClockPower, FreeRunningRegisterPaysFullClock) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId q = n.add_dff(a, false, "q");
  n.add_output(q, "y");
  power::AnalysisOptions ao;
  ao.n_vectors = 256;
  auto r = power::analyze(n, ao);
  power::PowerParams pp;
  double expect = 0.5 * (2.0 * pp.clock_pin_ff) * 1e-15 * pp.vdd * pp.vdd *
                  pp.freq;
  EXPECT_NEAR(r.clock_power_w, expect, expect * 1e-9);
}

TEST(EstimatorLadder, ZeroDelayUnderestimatesTimedOnGlitchyLogic) {
  auto net = bench::ripple_carry_adder(8);
  auto timed = sim::measure_timed_activity(net, 2048, 3);
  auto zd = sim::measure_activity(net, 64, 3);
  double t_total = 0, z_total = 0;
  for (NodeId id = 0; id < net.size(); ++id) {
    t_total += timed.total_toggles[id] / 2048.0;
    z_total += zd.transition_prob[id];
  }
  EXPECT_GT(t_total, z_total * 1.1);  // glitches are real on a ripple adder
  // And the exact-BDD rates agree with zero-delay simulation.
  auto ex = power::toggle_rate_from_probs(power::signal_probs_exact(net));
  double e_total = 0;
  for (NodeId id = 0; id < net.size(); ++id) e_total += ex[id];
  EXPECT_NEAR(e_total, z_total, z_total * 0.05);
}

}  // namespace
}  // namespace lps
