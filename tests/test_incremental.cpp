// test_incremental.cpp — cone-scoped incremental power re-estimation.
//
// The contract under test (power/incremental.hpp): after any journaled
// mutation, IncrementalAnalyzer::reanalyze() must return bit-for-bit what a
// fresh full power::analyze() of the mutated netlist returns, while
// re-simulating only the touched fanout cone.  Supporting layers are pinned
// too: Netlist::fanout_cone_of / cone_of on reconvergent, multi-output and
// register-crossing topologies, touched_nodes() across undo epochs,
// LogicSim::eval_cone_into splicing, and the flow/pass integration
// (incremental and legacy full estimates must agree exactly).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/flows.hpp"
#include "core/metrics.hpp"
#include "core/pass.hpp"
#include "netlist/benchmarks.hpp"
#include "power/incremental.hpp"
#include "sim/logicsim.hpp"

namespace {

using namespace lps;

// Exact equality of two analyses: the doubles must be identical bits, not
// merely close — the incremental path derives them through the same
// arithmetic as the full path, so == is the honest assertion.
void expect_identical(const power::Analysis& a, const power::Analysis& b) {
  ASSERT_EQ(a.toggles_per_cycle.size(), b.toggles_per_cycle.size());
  for (std::size_t i = 0; i < a.toggles_per_cycle.size(); ++i)
    EXPECT_EQ(a.toggles_per_cycle[i], b.toggles_per_cycle[i]) << "node " << i;
  EXPECT_EQ(a.report.breakdown.switching_w, b.report.breakdown.switching_w);
  EXPECT_EQ(a.report.breakdown.short_circuit_w,
            b.report.breakdown.short_circuit_w);
  EXPECT_EQ(a.report.breakdown.leakage_w, b.report.breakdown.leakage_w);
  EXPECT_EQ(a.report.total_cap_f, b.report.total_cap_f);
  EXPECT_EQ(a.report.weighted_activity, b.report.weighted_activity);
  EXPECT_EQ(a.clock_power_w, b.clock_power_w);
  EXPECT_EQ(a.vectors_used, b.vectors_used);
}

power::AnalysisOptions zd_options(std::size_t vectors = 2048) {
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = vectors;
  return ao;
}

std::size_t count_set(const std::vector<bool>& v) {
  std::size_t n = 0;
  for (bool b : v)
    if (b) ++n;
  return n;
}

// ---- fanout_cone_of / cone_of topology coverage ---------------------------

TEST(FanoutCone, ReconvergentDiamondVisitedOnce) {
  Netlist net("diamond");
  NodeId a = net.add_input("a");
  NodeId x = net.add_input("x");
  NodeId b = net.add_and(a, x);
  NodeId c = net.add_or(a, x);
  NodeId d = net.add_xor(b, c);  // reconverges on a
  net.add_output(d);
  NodeId roots[] = {a};
  auto cone = net.fanout_cone_of(roots);
  EXPECT_TRUE(cone[a]);
  EXPECT_TRUE(cone[b]);
  EXPECT_TRUE(cone[c]);
  EXPECT_TRUE(cone[d]);
  EXPECT_FALSE(cone[x]);
  EXPECT_EQ(count_set(cone), 4u);
}

TEST(FanoutCone, MultiOutputBranchesBothCovered) {
  Netlist net("multiout");
  NodeId a = net.add_input("a");
  NodeId b = net.add_input("b");
  NodeId g = net.add_and(a, b);
  NodeId o1 = net.add_not(g);
  NodeId o2 = net.add_buf(g);
  net.add_output(o1);
  net.add_output(o2);
  NodeId roots[] = {g};
  auto cone = net.fanout_cone_of(roots);
  EXPECT_TRUE(cone[g]);
  EXPECT_TRUE(cone[o1]);
  EXPECT_TRUE(cone[o2]);
  EXPECT_FALSE(cone[a]);
  EXPECT_FALSE(cone[b]);
}

TEST(FanoutCone, DffBoundaryRespectsThroughFlag) {
  Netlist net("seqcone");
  NodeId a = net.add_input("a");
  NodeId g = net.add_not(a);
  NodeId q = net.add_dff(g);
  NodeId h = net.add_not(q);  // downstream of the register
  net.add_output(h);
  NodeId roots[] = {g};
  auto stop = net.fanout_cone_of(roots, /*through_dffs=*/false);
  EXPECT_TRUE(stop[g]);
  EXPECT_TRUE(stop[q]);   // the register itself is reached...
  EXPECT_FALSE(stop[h]);  // ...but not crossed
  auto cross = net.fanout_cone_of(roots, /*through_dffs=*/true);
  EXPECT_TRUE(cross[q]);
  EXPECT_TRUE(cross[h]);
}

TEST(FanoutCone, DffRootAlwaysExpands) {
  Netlist net("dffroot");
  NodeId a = net.add_input("a");
  NodeId q = net.add_dff(a);
  NodeId h = net.add_not(q);
  net.add_output(h);
  NodeId roots[] = {q};
  auto cone = net.fanout_cone_of(roots, /*through_dffs=*/false);
  EXPECT_TRUE(cone[q]);
  EXPECT_TRUE(cone[h]);  // a root register expands even with the flag off
}

TEST(FaninCone, ReconvergentAndSequentialBoundaries) {
  Netlist net("fanin");
  NodeId a = net.add_input("a");
  NodeId b = net.add_input("b");
  NodeId g1 = net.add_and(a, b);
  NodeId q = net.add_dff(g1);
  NodeId g2 = net.add_xor(q, a);  // reconverges on a
  NodeId g3 = net.add_or(g2, g2);
  net.add_output(g3);
  NodeId roots[] = {g3};
  auto cone = net.cone_of(roots);
  EXPECT_TRUE(cone[g3]);
  EXPECT_TRUE(cone[g2]);
  EXPECT_TRUE(cone[q]);   // register included...
  EXPECT_FALSE(cone[g1]);  // ...its D-side logic is not traversed
  EXPECT_TRUE(cone[a]);
  EXPECT_FALSE(cone[b]);  // b only feeds the un-traversed D logic
}

TEST(FaninCone, MultiOutputRoots) {
  auto net = bench::c17();
  auto outs = net.outputs();
  auto cone = net.cone_of(outs);
  // Every live node of c17 is in the union cone of all outputs.
  for (NodeId id = 0; id < net.size(); ++id) {
    if (!net.is_dead(id)) EXPECT_TRUE(cone[id]) << "node " << id;
  }
}

// ---- touched_nodes() across undo epochs -----------------------------------

TEST(TouchedNodes, NoJournalReportsAll) {
  auto net = bench::c17();
  auto t = net.touched_nodes();
  EXPECT_TRUE(t.all);
  EXPECT_TRUE(t.ids.empty());
}

TEST(TouchedNodes, JournaledEditsAreListed) {
  auto net = bench::alu(4);
  net.begin_undo();
  auto t0 = net.touched_nodes();
  EXPECT_FALSE(t0.all);
  EXPECT_TRUE(t0.ids.empty());

  NodeId pi = net.inputs()[0];
  NodeId g = net.add_not(pi);                 // new node
  net.replace_fanin(net.outputs()[0], 0, g);  // journaled edit
  auto t = net.touched_nodes();
  EXPECT_FALSE(t.all);
  // The new node and the edited node are both reported, ascending & unique.
  EXPECT_TRUE(std::find(t.ids.begin(), t.ids.end(), g) != t.ids.end());
  for (std::size_t i = 1; i < t.ids.size(); ++i)
    EXPECT_LT(t.ids[i - 1], t.ids[i]);

  net.commit_undo();
  EXPECT_TRUE(net.touched_nodes().all);  // epoch closed, journal gone
}

TEST(TouchedNodes, RollbackClosesEpoch) {
  auto net = bench::alu(4);
  net.begin_undo();
  net.add_not(net.inputs()[0]);
  EXPECT_FALSE(net.touched_nodes().all);
  net.rollback_undo();
  EXPECT_TRUE(net.touched_nodes().all);
}

TEST(TouchedNodes, PiListChangeForcesFull) {
  auto net = bench::alu(4);
  net.begin_undo();
  net.add_input("late_pi");
  EXPECT_TRUE(net.touched_nodes().all);
  net.rollback_undo();
}

TEST(TouchedNodes, PoChangeStaysIncremental) {
  auto net = bench::alu(4);
  net.begin_undo();
  net.add_output(net.inputs()[0], "extra_po");
  auto t = net.touched_nodes();
  EXPECT_FALSE(t.all);  // PO list doesn't affect node value streams
  net.rollback_undo();
}

TEST(TouchedNodes, WholesaleReplaceForcesFull) {
  auto net = bench::alu(4);
  net.begin_undo();
  net = strash(net);
  EXPECT_TRUE(net.touched_nodes().all);
  net.rollback_undo();
}

// ---- eval_cone_into splicing ----------------------------------------------

TEST(EvalCone, SpliceMatchesFullEval) {
  auto net = bench::random_dag(8, 120, 42);
  sim::LogicSim sim(net);
  std::vector<std::uint64_t> pis(net.inputs().size());
  for (std::size_t i = 0; i < pis.size(); ++i)
    pis[i] = 0x9E3779B97F4A7C15ULL * (i + 1);
  auto full = sim.eval(pis);

  // Corrupt the cone of an internal node, then cone-evaluate it back.
  NodeId root = net.size() / 2;
  while (net.is_dead(root) || net.node(root).type == GateType::Input) ++root;
  NodeId roots[] = {root};
  auto mask = net.fanout_cone_of(roots, true);
  auto sched = sim.cone_schedule(mask);
  auto f = full;
  for (NodeId id : sched.gates) f[id] = ~f[id];
  sim.eval_cone_into(f, sched);
  EXPECT_EQ(f, full);
}

// ---- incremental vs full bit-identity -------------------------------------

// Apply one journaled mutation, feed the touched set to the analyzer, and
// demand bit-identity with a from-scratch full analysis.
template <typename Fn>
void check_mutation(Netlist net, const power::AnalysisOptions& ao, Fn&& fn) {
  power::IncrementalAnalyzer inc(net, ao);
  net.begin_undo();
  fn(net);
  auto touched = net.touched_nodes();
  net.commit_undo();
  inc.reanalyze(touched);
  expect_identical(inc.analysis(), power::analyze(net, ao));
}

TEST(Incremental, LocalRewriteCombinational) {
  check_mutation(bench::alu(6), zd_options(), [](Netlist& net) {
    // Rewire one gate input to a fresh inverter — a typical local rewrite.
    NodeId g = net.outputs()[0];
    NodeId inv = net.add_not(net.node(g).fanins[0]);
    net.replace_fanin(g, 0, inv);
  });
}

TEST(Incremental, SubstituteRedirectsPo) {
  check_mutation(bench::array_multiplier(4), zd_options(), [](Netlist& net) {
    NodeId o = net.outputs()[0];
    NodeId other = net.outputs()[1];
    net.substitute(o, other);  // touches the PO list but not the PI list
  });
}

TEST(Incremental, RemoveDeadNode) {
  check_mutation(bench::alu(6), zd_options(), [](Netlist& net) {
    // Orphan a gate by redirecting its only fanout, then remove it.
    NodeId victim = kNoNode;
    for (NodeId id = 0; id < net.size(); ++id) {
      const Node& nd = net.node(id);
      if (!net.is_dead(id) && nd.type != GateType::Input &&
          nd.type != GateType::Dff && nd.fanouts.size() == 1 &&
          !nd.fanins.empty()) {
        bool is_po = false;
        for (NodeId o : net.outputs()) is_po |= (o == id);
        if (!is_po) {
          victim = id;
          break;
        }
      }
    }
    ASSERT_NE(victim, kNoNode);
    // substitute() redirects the fanout and removes the now-dead victim —
    // the incremental update must zero its cached counters.
    net.substitute(victim, net.node(victim).fanins[0]);
    ASSERT_TRUE(net.is_dead(victim));
  });
}

TEST(Incremental, SequentialCounterDffCrossing) {
  check_mutation(bench::counter(8), zd_options(), [](Netlist& net) {
    // Invert a D input twice (function preserved, register cone dirtied).
    NodeId d = net.dffs()[2];
    NodeId n1 = net.add_not(net.node(d).fanins[0]);
    NodeId n2 = net.add_not(n1);
    net.replace_fanin(d, 0, n2);
  });
}

TEST(Incremental, ShiftRegisterEnableRewire) {
  check_mutation(bench::shift_register(16), zd_options(), [](Netlist& net) {
    NodeId d = net.dffs()[4];
    NodeId inv2 = net.add_not(net.add_not(net.node(d).fanins[0]));
    net.replace_fanin(d, 0, inv2);
  });
}

TEST(Incremental, ChainOfMutationsStaysIdentical) {
  auto net = bench::alu(4);
  auto ao = zd_options();
  power::IncrementalAnalyzer inc(net, ao);
  for (int step = 0; step < 4; ++step) {
    net.begin_undo();
    NodeId o = net.outputs()[step % net.outputs().size()];
    NodeId inv = net.add_not(net.node(o).fanins.empty()
                                 ? net.inputs()[0]
                                 : net.node(o).fanins[0]);
    if (!net.node(o).fanins.empty()) net.replace_fanin(o, 0, inv);
    auto touched = net.touched_nodes();
    net.commit_undo();
    inc.reanalyze(touched);
    expect_identical(inc.analysis(), power::analyze(net, ao));
  }
}

TEST(Incremental, RevertRestoresBaselineExactly) {
  auto net = bench::alu(6);
  auto ao = zd_options();
  power::IncrementalAnalyzer inc(net, ao);
  auto baseline = inc.analysis();
  net.begin_undo();
  NodeId o = net.outputs()[0];
  NodeId inv = net.add_not(net.node(o).fanins[0]);
  net.replace_fanin(o, 0, inv);
  auto touched = net.touched_nodes();
  inc.reanalyze(touched);
  net.rollback_undo();
  inc.revert_last();
  expect_identical(inc.analysis(), baseline);
  expect_identical(inc.analysis(), power::analyze(net, ao));
  // A second revert has nothing to undo.
  EXPECT_THROW(inc.revert_last(), std::logic_error);
}

TEST(Incremental, RevertAfterFallbackRestoresCache) {
  auto net = bench::alu(4);
  auto ao = zd_options();
  power::IncrementalAnalyzer inc(net, ao);
  auto baseline = inc.analysis();
  net.begin_undo();
  net.add_input("spare");  // PI-list change: forces a full re-baseline
  auto touched = net.touched_nodes();
  EXPECT_TRUE(touched.all);
  inc.reanalyze(touched);
  EXPECT_TRUE(inc.last_update().full_rebaseline);
  net.rollback_undo();
  inc.revert_last();
  expect_identical(inc.analysis(), baseline);
  // The restored cache still supports cone updates.
  net.begin_undo();
  NodeId o = net.outputs()[0];
  net.replace_fanin(o, 0, net.add_not(net.node(o).fanins[0]));
  auto t2 = net.touched_nodes();
  net.commit_undo();
  inc.reanalyze(t2);
  EXPECT_FALSE(inc.last_update().full_rebaseline);
  expect_identical(inc.analysis(), power::analyze(net, ao));
}

TEST(Incremental, TimedModeFallsBackToFull) {
  auto net = bench::c17();
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::Timed;
  ao.n_vectors = 256;
  power::IncrementalAnalyzer inc(net, ao);
  net.begin_undo();
  NodeId o = net.outputs()[0];
  net.replace_fanin(o, 0, net.add_not(net.node(o).fanins[0]));
  auto touched = net.touched_nodes();
  net.commit_undo();
  inc.reanalyze(touched);
  EXPECT_TRUE(inc.last_update().full_rebaseline);
  expect_identical(inc.analysis(), power::analyze(net, ao));
}

TEST(Incremental, ConeUpdateEvaluatesFarFewerNodes) {
  auto net = bench::array_multiplier(6);
  auto ao = zd_options();
  power::IncrementalAnalyzer inc(net, ao);
  net.begin_undo();
  // Local rewrite near an output: double inversion on one PO driver.
  NodeId o = net.outputs()[net.outputs().size() - 1];
  net.replace_fanin(o, 0, net.add_not(net.add_not(net.node(o).fanins[0])));
  auto touched = net.touched_nodes();
  net.commit_undo();
  inc.reanalyze(touched);
  const auto& up = inc.last_update();
  EXPECT_FALSE(up.full_rebaseline);
  EXPECT_GE(up.live_nodes, 5 * up.resim_nodes)
      << "cone " << up.resim_nodes << " of " << up.live_nodes;
  expect_identical(inc.analysis(), power::analyze(net, ao));
}

// ---- satellite: vectors_used reporting ------------------------------------

TEST(Analysis, VectorsUsedReportsFrameRounding) {
  auto net = bench::c17();
  auto a2048 = power::analyze(net, zd_options(2048));
  EXPECT_EQ(a2048.vectors_used, 2048u);
  // 2047 rounds down to 31 frames = 1984 patterns — previously silent.
  auto a2047 = power::analyze(net, zd_options(2047));
  EXPECT_EQ(a2047.vectors_used, 1984u);
  // Tiny requests are clamped up to the 2-frame minimum (128 patterns).
  auto a10 = power::analyze(net, zd_options(10));
  EXPECT_EQ(a10.vectors_used, 128u);
  // Timed mode simulates the requested count exactly.
  power::AnalysisOptions timed;
  timed.mode = power::ActivityMode::Timed;
  timed.n_vectors = 100;
  EXPECT_EQ(power::analyze(net, timed).vectors_used, 100u);
}

// ---- flow / pass integration ----------------------------------------------

void expect_same_stages(const core::FlowResult& a, const core::FlowResult& b) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].stage, b.stages[i].stage);
    EXPECT_EQ(a.stages[i].power_w, b.stages[i].power_w) << a.stages[i].stage;
    EXPECT_EQ(a.stages[i].status, b.stages[i].status) << a.stages[i].stage;
    EXPECT_EQ(a.stages[i].gates, b.stages[i].gates);
  }
}

TEST(FlowIncremental, CombinationalMatchesLegacyZeroDelay) {
  auto net = bench::alu(4);
  core::FlowOptions inc_opt;
  inc_opt.estimate_mode = power::ActivityMode::ZeroDelay;
  inc_opt.use_incremental_power = true;
  core::FlowOptions full_opt = inc_opt;
  full_opt.use_incremental_power = false;
  expect_same_stages(core::optimize_combinational(net, inc_opt),
                     core::optimize_combinational(net, full_opt));
}

TEST(FlowIncremental, CombinationalMatchesLegacyTimed) {
  auto net = bench::carry_select_adder(8, 4);
  core::FlowOptions inc_opt;  // Timed default
  inc_opt.sim_vectors = 256;
  core::FlowOptions full_opt = inc_opt;
  full_opt.use_incremental_power = false;
  expect_same_stages(core::optimize_combinational(net, inc_opt),
                     core::optimize_combinational(net, full_opt));
}

TEST(FlowIncremental, SequentialFlowMatchesLegacy) {
  auto net = bench::counter(6);
  core::FlowOptions inc_opt;
  inc_opt.estimate_mode = power::ActivityMode::ZeroDelay;
  inc_opt.sim_vectors = 512;
  core::FlowOptions full_opt = inc_opt;
  full_opt.use_incremental_power = false;
  auto a = core::optimize_sequential(net, inc_opt);
  auto b = core::optimize_sequential(net, full_opt);
  expect_same_stages(a, b);
  // The gating stage ran (kept, reverted, or failed — but present).
  EXPECT_EQ(a.stages.back().stage.rfind("selfloop-gate", 0), 0u);
}

TEST(FlowIncremental, LocalStageSavesFiveFoldNodeEvals) {
  core::metrics::reset();
  auto net = bench::array_multiplier(6);
  core::FlowOptions opt;
  opt.estimate_mode = power::ActivityMode::ZeroDelay;
  opt.sim_vectors = 512;  // the sizing transform's internal Timed run
  core::FlowResult res = core::optimize_combinational(net, opt);
  // At least one local-transform stage must re-simulate ≤ 1/5 of what a
  // full re-analysis evaluates.  The sizing stage is the extreme case:
  // size-only edits leave every value stream intact (resim_nodes == 0).
  bool found = false;
  for (const auto& s : res.stages) {
    if (s.full_nodes > 0 && 5 * s.resim_nodes <= s.full_nodes) found = true;
  }
  EXPECT_TRUE(found);
  // And the sizing stage specifically needs no re-simulation at all.
  for (const auto& s : res.stages) {
    if (s.stage.rfind("sizing", 0) == 0 && s.full_nodes > 0)
      EXPECT_EQ(s.resim_nodes, 0u) << s.stage;
  }
  // The metrics registry shows the cumulative saving.
  EXPECT_LT(core::metrics::value("power.inc.node_evals"),
            core::metrics::value("power.inc.node_evals_full"));
}

TEST(PassIncremental, EstimatesMatchLegacyAndSurviveRollback) {
  auto net = bench::alu(4);
  core::PassManager::Options opt;
  opt.estimate_power = true;
  opt.estimate.mode = power::ActivityMode::ZeroDelay;
  core::PassManager pm_inc(opt);
  pm_inc.add(core::make_dontcare_pass());
  pm_inc.add("broken", [](Netlist& n) -> std::string {
    n.remove(n.outputs()[0]);  // removing a PO driver breaks invariants
    return "boom";
  });
  pm_inc.add(core::make_sweep_pass());
  auto net_inc = net.clone();
  auto rec_inc = pm_inc.run(net_inc);

  opt.use_incremental_power = false;
  core::PassManager pm_full(opt);
  pm_full.add(core::make_dontcare_pass());
  pm_full.add("broken", [](Netlist& n) -> std::string {
    n.remove(n.outputs()[0]);
    return "boom";
  });
  pm_full.add(core::make_sweep_pass());
  auto net_full = net.clone();
  auto rec_full = pm_full.run(net_full);

  ASSERT_EQ(rec_inc.size(), rec_full.size());
  for (std::size_t i = 0; i < rec_inc.size(); ++i) {
    EXPECT_EQ(rec_inc[i].ok, rec_full[i].ok) << rec_inc[i].pass;
    EXPECT_EQ(rec_inc[i].power_w, rec_full[i].power_w) << rec_inc[i].pass;
  }
  EXPECT_FALSE(rec_inc[1].ok);  // the broken pass rolled back
  EXPECT_GT(rec_inc[2].power_w, 0.0);
}

TEST(FsmFlow, GatedPowerReportedIdenticallyBothPaths) {
  auto stg = seq::counter_fsm(8);
  core::FlowOptions inc_opt;
  inc_opt.sim_vectors = 256;
  inc_opt.estimate_mode = power::ActivityMode::ZeroDelay;
  core::FlowOptions full_opt = inc_opt;
  full_opt.use_incremental_power = false;
  auto a = core::optimize_fsm(stg, inc_opt);
  auto b = core::optimize_fsm(stg, full_opt);
  EXPECT_EQ(a.power_lowpower_w, b.power_lowpower_w);
  EXPECT_EQ(a.power_gated_w, b.power_gated_w);
  EXPECT_GT(a.power_gated_w, 0.0);
}

// The whole generated suite: one local mutation per circuit, exact equality.
TEST(Incremental, FullSuiteDifferential) {
  for (auto& [name, net0] : bench::default_suite()) {
    Netlist net = std::move(net0);
    auto ao = zd_options(512);
    power::IncrementalAnalyzer inc(net, ao);
    net.begin_undo();
    NodeId o = net.outputs()[0];
    if (!net.node(o).fanins.empty()) {
      net.replace_fanin(o, 0, net.add_not(net.add_not(net.node(o).fanins[0])));
    } else {
      net.add_output(net.add_not(o), "extra");
    }
    auto touched = net.touched_nodes();
    net.commit_undo();
    inc.reanalyze(touched);
    auto full = power::analyze(net, ao);
    EXPECT_EQ(inc.analysis().report.breakdown.total_w(),
              full.report.breakdown.total_w())
        << name;
    EXPECT_EQ(inc.analysis().report.weighted_activity,
              full.report.weighted_activity)
        << name;
  }
}

}  // namespace
