// Simulator tests: bit-parallel zero-delay, event-driven timed, stimulus.

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/benchmarks.hpp"
#include "sim/eventsim.hpp"
#include "sim/logicsim.hpp"
#include "sim/stimulus.hpp"

namespace lps {
namespace {

TEST(LogicSim, SignalProbabilityMatchesExpectation) {
  // y = a AND b with p(a)=p(b)=0.5 -> p(y)=0.25.
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId y = n.add_and(a, b);
  n.add_output(y, "y");
  auto st = sim::measure_activity(n, 2000, 42);
  EXPECT_NEAR(st.signal_prob[y], 0.25, 0.02);
  // Zero-delay toggle rate of an iid signal: 2 p (1-p) = 0.375.
  EXPECT_NEAR(st.transition_prob[y], 0.375, 0.02);
}

TEST(LogicSim, BiasedInputs) {
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId y = n.add_not(a);
  n.add_output(y, "y");
  std::vector<double> probs{0.9};
  auto st = sim::measure_activity(n, 2000, 43, probs);
  EXPECT_NEAR(st.signal_prob[a], 0.9, 0.02);
  EXPECT_NEAR(st.signal_prob[y], 0.1, 0.02);
  EXPECT_NEAR(st.transition_prob[y], 2 * 0.9 * 0.1, 0.02);
}

TEST(LogicSim, EquivalenceCatchesDifferences) {
  Netlist a;
  NodeId x = a.add_input("x");
  NodeId y = a.add_input("y");
  a.add_output(a.add_and(x, y), "o");
  Netlist b;
  NodeId x2 = b.add_input("x");
  NodeId y2 = b.add_input("y");
  b.add_output(b.add_or(x2, y2), "o");
  EXPECT_FALSE(sim::equivalent_random(a, b, 8, 1));
  Netlist c;
  NodeId x3 = c.add_input("x");
  NodeId y3 = c.add_input("y");
  c.add_output(c.add_not(c.add_nand(x3, y3)), "o");
  EXPECT_TRUE(sim::equivalent_random(a, c, 64, 1));
}

TEST(LogicSim, SequentialStateAdvances) {
  auto n = bench::shift_register(3);
  sim::LogicSim s(n);
  std::vector<std::uint64_t> state(3, 0);
  std::vector<std::uint64_t> one{~0ULL};
  // Push a 1 through the 3-deep shift register.
  auto f1 = s.eval(one, state);
  state = s.next_state_of(f1);
  std::vector<std::uint64_t> zero{0};
  auto f2 = s.eval(zero, state);
  state = s.next_state_of(f2);
  auto f3 = s.eval(zero, state);
  EXPECT_EQ(f3[n.outputs()[0]] & 1, 0u);  // not yet at the end
  state = s.next_state_of(f3);
  auto f4 = s.eval(zero, state);
  EXPECT_EQ(f4[n.outputs()[0]] & 1, 1u);  // emerged after 3 cycles
}

TEST(EventSim, BalancedTreeHasNoGlitches) {
  auto n = bench::and_tree(16);  // perfectly balanced
  auto ts = sim::measure_timed_activity(n, 500, 7);
  EXPECT_NEAR(ts.glitch_fraction(), 0.0, 1e-9);
}

TEST(EventSim, ReconvergentXorGlitches) {
  // y = a XOR (NOT a -> delayed path): classic static hazard generator:
  // y = a XOR buf(buf(a)) glitches on every a transition under unit delay.
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b1 = n.add_buf(a);
  NodeId b2 = n.add_buf(b1);
  NodeId y = n.add_xor(a, b2);
  n.add_output(y, "y");
  auto ts = sim::measure_timed_activity(n, 400, 11);
  // y's settled value is always 0, so ALL y toggles are spurious.
  EXPECT_GT(ts.total_toggles[y], 0.0);
  EXPECT_EQ(ts.functional_toggles[y], 0.0);
}

TEST(EventSim, FunctionalTogglesMatchZeroDelaySim) {
  auto n = bench::ripple_carry_adder(6);
  auto ts = sim::measure_timed_activity(n, 2000, 13);
  auto zs = sim::measure_activity(n, 64, 13);
  // Average functional toggles per vector should track the zero-delay rate
  // (different RNG streams: loose tolerance).
  double timed = 0, zero = 0;
  for (NodeId id = 0; id < n.size(); ++id) {
    timed += ts.functional_toggles[id] / (double)ts.vectors;
    zero += zs.transition_prob[id];
  }
  EXPECT_NEAR(timed, zero, 0.1 * zero + 1.0);
}

TEST(EventSim, MultiplierGlitchFractionInSurveyRange) {
  // §III-A.2: spurious transitions are 10-40% of switching activity in
  // typical combinational circuits; array multipliers are the canonical
  // heavy case.
  auto n = bench::array_multiplier(6);
  auto ts = sim::measure_timed_activity(n, 600, 17);
  EXPECT_GT(ts.glitch_fraction(), 0.10);
  EXPECT_LT(ts.glitch_fraction(), 0.75);
}

TEST(EventSim, SequentialClockBoundary) {
  auto n = bench::counter(3);
  sim::EventSim es(n);
  bool en[1] = {true};
  for (int i = 0; i < 10; ++i) es.apply({en, 1});
  // Counter bit 0 toggles every cycle functionally.
  auto dffs = n.dffs();
  EXPECT_NEAR(es.stats().functional_toggles[dffs[0]], 10.0, 1.0);
}

TEST(Stimulus, CorrelatedStreamHasLowTransitions) {
  auto hot = sim::correlated_stream(16, 4000, 0.05, 3);
  auto cold = sim::uniform_stream(16, 4000, 3);
  EXPECT_LT(sim::count_bus_transitions(hot, 16),
            sim::count_bus_transitions(cold, 16) / 3);
}

TEST(Stimulus, RandomWalkMsbQuieterThanLsb) {
  auto s = sim::random_walk_stream(16, 8000, 30.0, 5);
  // Count per-bit transitions.
  std::size_t lsb = 0, msb = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    lsb += (s[i] ^ s[i - 1]) & 1;
    msb += (s[i] ^ s[i - 1]) >> 15 & 1;
  }
  EXPECT_GT(lsb, msb * 4);
}

TEST(Stimulus, AddressStreamMostlySequential) {
  auto s = sim::address_stream(16, 4000, 0.95, 9);
  std::size_t seq = 0;
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i] == ((s[i - 1] + 1) & 0xFFFF)) ++seq;
  EXPECT_GT(seq, s.size() * 9 / 10);
}

TEST(Stimulus, BitProbabilities) {
  auto s = sim::uniform_stream(8, 4000, 21);
  auto p = sim::stream_bit_probabilities(s, 8);
  for (double x : p) EXPECT_NEAR(x, 0.5, 0.05);
}

}  // namespace
}  // namespace lps
