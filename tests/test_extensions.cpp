// Tests for the extension modules: two-level minimization, power-aware
// technology decomposition, sequence-based power estimation, additive
// macro-model error.

#include <gtest/gtest.h>

#include <random>

#include "arch/macromodel.hpp"
#include "bdd/bdd_netlist.hpp"
#include "logicopt/decompose_power.hpp"
#include "logicopt/resynth.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "sim/logicsim.hpp"
#include "sop/division.hpp"
#include "sop/minimize.hpp"

namespace lps {
namespace {

using sop::Cube;
using sop::Sop;

TEST(Minimize, Tautology) {
  EXPECT_FALSE(sop::tautology(Sop::parse(2, "11")));
  EXPECT_TRUE(sop::tautology(Sop::parse(1, "1 + 0")));
  EXPECT_TRUE(sop::tautology(Sop::parse(2, "1- + 0-")));
  EXPECT_TRUE(sop::tautology(Sop::parse(2, "11 + 10 + 0-")));
  EXPECT_FALSE(sop::tautology(Sop::parse(2, "11 + 00")));
  EXPECT_FALSE(sop::tautology(Sop(3)));  // empty = constant 0
}

TEST(Minimize, CubeCovered) {
  Sop f = Sop::parse(3, "1-- + -1-");
  EXPECT_TRUE(sop::cube_covered(Cube::parse("11-"), f));
  EXPECT_TRUE(sop::cube_covered(Cube::parse("1-0"), f));
  EXPECT_FALSE(sop::cube_covered(Cube::parse("0-1"), f));
  // The two cubes together cover 10- and 01- but not 00-.
  EXPECT_FALSE(sop::cube_covered(Cube::parse("00-"), f));
}

TEST(Minimize, ClassicMergeExample) {
  // ab + a!b = a.
  Sop f = Sop::parse(2, "11 + 10");
  auto g = sop::minimize(f);
  EXPECT_EQ(g.num_cubes(), 1u);
  EXPECT_EQ(g.num_literals(), 1u);
  EXPECT_TRUE(sop::sop_equal(f, g));
}

TEST(Minimize, UsesDontCares) {
  // f = minterm 11; dc = minterm 10 -> minimizer can grow to cube "1-".
  Sop f = Sop::parse(2, "11");
  Sop dc = Sop::parse(2, "10");
  auto g = sop::minimize(f, dc);
  EXPECT_EQ(g.num_literals(), 1u);
  // Result must stay inside f + dc and cover f.
  for (const auto& c : g.cubes())
    EXPECT_TRUE(sop::cube_covered(c, sop::add(f, dc)));
  for (const auto& c : f.cubes()) EXPECT_TRUE(sop::cube_covered(c, g));
}

class MinimizeProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MinimizeProperty, NeverGrowsAndStaysEquivalent) {
  std::mt19937 rng(GetParam());
  unsigned nv = 4 + rng() % 3;
  Sop f(nv);
  int cubes = 3 + static_cast<int>(rng() % 8);
  for (int c = 0; c < cubes; ++c) {
    Cube cu(nv);
    for (unsigned v = 0; v < nv; ++v)
      switch (rng() % 3) {
        case 0: cu.set_pos(v); break;
        case 1: cu.set_neg(v); break;
        default: break;
      }
    if (!cu.contradictory()) f.add_cube(cu);
  }
  if (f.empty()) return;
  sop::MinimizeStats st;
  auto g = sop::minimize(f, &st);
  EXPECT_LE(st.literals_after, st.literals_before);
  // Exhaustive equivalence over all input points.
  for (int m = 0; m < (1 << nv); ++m) {
    std::vector<bool> a;
    for (unsigned b = 0; b < nv; ++b) a.push_back((m >> b & 1) != 0);
    ASSERT_EQ(f.eval(a), g.eval(a)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeProperty, ::testing::Range(1u, 21u));

TEST(Decompose, ShapesPreserveFunction) {
  for (auto shape : {logicopt::DecomposeShape::Chain,
                     logicopt::DecomposeShape::Balanced,
                     logicopt::DecomposeShape::Huffman}) {
    auto net = bench::decoder(4);  // wide AND gates
    auto golden = net.clone();
    auto st = sim::measure_activity(net, 64, 3);
    auto r = logicopt::decompose_wide_gates(net, shape, st.transition_prob);
    EXPECT_GT(r.gates_decomposed, 0);
    EXPECT_TRUE(sim::equivalent_random(golden, net, 256, 7));
    // Everything is now <= 2-input (plus NOT).
    for (NodeId id = 0; id < net.size(); ++id) {
      if (net.is_dead(id)) continue;
      const Node& nd = net.node(id);
      if (is_source(nd.type) || nd.type == GateType::Dff) continue;
      EXPECT_LE(nd.fanins.size(), 2u);
    }
  }
}

TEST(Decompose, HuffmanPutsHotInputLate) {
  // AND(a, hot, b, c): Huffman should combine the three quiet signals first
  // and bring the hot one in at the root, so the hot signal drives exactly
  // one gate.
  Netlist net;
  NodeId a = net.add_input("a");
  NodeId hot = net.add_input("hot");
  NodeId b = net.add_input("b");
  NodeId c = net.add_input("c");
  NodeId g = net.add_gate(GateType::And, {a, hot, b, c});
  net.add_output(g, "y");
  std::vector<double> act(net.size(), 0.1);
  act[hot] = 0.9;
  logicopt::decompose_wide_gates(net, logicopt::DecomposeShape::Huffman, act);
  EXPECT_EQ(net.node(hot).fanouts.size(), 1u);
  // The hot signal's single user must be the root (drives the PO).
  NodeId user = net.node(hot).fanouts[0];
  EXPECT_EQ(net.outputs()[0], user);
}

TEST(Decompose, HuffmanReducesPowerUnderSkewedInputs) {
  // Wide AND fed by one hot and many quiet inputs: activity-ordered
  // decomposition beats the chain that puts the hot input first.
  auto build = [] {
    Netlist net;
    std::vector<NodeId> ins;
    for (int i = 0; i < 8; ++i)
      ins.push_back(net.add_input("x" + std::to_string(i)));
    net.add_output(net.add_gate(GateType::And, ins), "y");
    return net;
  };
  std::vector<double> probs(8, 0.95);
  probs[0] = 0.5;  // x0 toggles wildly and sits first in fanin order
  power::AnalysisOptions ao;
  ao.n_vectors = 2048;
  ao.pi_one_prob = probs;

  auto chain = build();
  logicopt::decompose_wide_gates(chain, logicopt::DecomposeShape::Chain);
  auto huff = build();
  auto st = sim::measure_activity(huff, 256, 3, probs);
  logicopt::decompose_wide_gates(huff, logicopt::DecomposeShape::Huffman,
                                 st.transition_prob);
  double p_chain = power::analyze(chain, ao).report.breakdown.total_w();
  double p_huff = power::analyze(huff, ao).report.breakdown.total_w();
  EXPECT_LT(p_huff, p_chain);
}

TEST(Resynth, CollapsesRedundantWindow) {
  // g = (a AND b) OR (a AND NOT b) == a: the window resynthesis must
  // discover the 1-literal cover.
  Netlist net;
  NodeId a = net.add_input("a");
  NodeId b = net.add_input("b");
  NodeId nb = net.add_not(b);
  NodeId g = net.add_or(net.add_and(a, b), net.add_and(a, nb));
  net.add_output(g, "y");
  auto golden = net.clone();
  auto r = logicopt::resynthesize_windows(net, {});
  EXPECT_GT(r.nodes_rewritten, 0);
  EXPECT_LT(r.gates_after, r.gates_before);
  EXPECT_TRUE(bdd::equivalent_bdd(golden, net));
  EXPECT_EQ(net.num_gates(), 0u);  // output collapses to the input wire
}

TEST(Resynth, UsesControllabilityDontCares) {
  // b1 = x AND y, b2 = x OR y: the boundary pattern (b1=1, b2=0) is
  // unreachable, so a node computing b1 XOR b2 can be re-expressed as
  // !b1 AND b2 — fewer gates than the XOR pair in NAND terms; at minimum
  // the pass must preserve function while exploiting the freedom.
  Netlist net;
  NodeId x = net.add_input("x");
  NodeId y = net.add_input("y");
  NodeId b1 = net.add_and(x, y);
  NodeId b2 = net.add_or(x, y);
  // Fat implementation of XOR over b1,b2 so a rewrite is profitable.
  NodeId t1 = net.add_and(b1, net.add_not(b2));
  NodeId t2 = net.add_and(net.add_not(b1), b2);
  NodeId g = net.add_or(t1, t2);
  net.add_output(g, "y");
  net.add_output(b1, "b1");  // keep the boundary signals observable
  net.add_output(b2, "b2");
  auto golden = net.clone();
  auto r = logicopt::resynthesize_windows(net, {});
  EXPECT_TRUE(bdd::equivalent_bdd(golden, net));
  EXPECT_LE(net.num_gates(), golden.num_gates());
  EXPECT_GT(r.windows_examined, 0);
}

TEST(Resynth, PreservesFunctionOnSuite) {
  for (const auto& [name, net0] : bench::default_suite()) {
    if (net0.num_gates() > 200) continue;
    auto net = net0.clone();
    auto st = sim::measure_activity(net, 64, 5);
    logicopt::ResynthOptions opt;
    opt.max_rewrites = 50;
    logicopt::resynthesize_windows(net, st.transition_prob, opt);
    EXPECT_TRUE(sim::equivalent_random(net0, net, 256, 9)) << name;
    EXPECT_EQ(net.check(), "") << name;
  }
}

TEST(SequencePower, IdleSequenceCheaperThanRandom) {
  // [28]: power depends on the executed input sequence.  A counter whose
  // enable is mostly 0 burns far less than under random stimulus.
  auto net = bench::counter(6);
  std::vector<std::vector<bool>> idle(512, std::vector<bool>{false});
  for (std::size_t t = 0; t < idle.size(); t += 16) idle[t][0] = true;
  auto seq = power::analyze_sequence(net, idle);
  power::AnalysisOptions ao;
  ao.n_vectors = 512;
  auto rnd = power::analyze(net, ao);
  EXPECT_LT(seq.report.breakdown.total_w(),
            rnd.report.breakdown.total_w());
}

TEST(SequencePower, MatchesAnalyzeOnSameVectors) {
  auto net = bench::c17();
  std::mt19937 rng(5);
  std::vector<std::vector<bool>> vecs;
  for (int t = 0; t < 256; ++t) {
    std::vector<bool> v;
    for (int i = 0; i < 5; ++i) v.push_back((rng() & 1) != 0);
    vecs.push_back(v);
  }
  auto a = power::analyze_sequence(net, vecs);
  EXPECT_GT(a.report.breakdown.total_w(), 0.0);
  EXPECT_THROW(power::analyze_sequence(
                   net, {std::vector<bool>{true, false}}),
               std::invalid_argument);
}

TEST(AdditiveModel, IgnoresInterModuleCorrelation) {
  // Module A: 4-bit adder; module B: comparator consuming A's sum.  The
  // isolated-module estimate mispredicts B's contribution because B's real
  // inputs are not uniform iid — the [36] limitation.
  auto a = bench::ripple_carry_adder(4);
  auto b = bench::comparator_gt(4);
  auto ev = arch::evaluate_additive_model(a, b, 4096);
  EXPECT_GT(ev.truth_cap_ff, 0.0);
  EXPECT_GT(std::abs(ev.relative_error), 0.005);  // measurably wrong
  EXPECT_LT(std::abs(ev.relative_error), 0.6);    // but in the ballpark
}

}  // namespace
}  // namespace lps
