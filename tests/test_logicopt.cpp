// Logic-level optimization tests: don't-cares, path balancing, technology
// mapping, power-aware factoring bridges.

#include <gtest/gtest.h>

#include "bdd/bdd_netlist.hpp"
#include "logicopt/dontcare.hpp"
#include "logicopt/library.hpp"
#include "logicopt/path_balance.hpp"
#include "logicopt/power_factor.hpp"
#include "logicopt/techmap.hpp"
#include "netlist/benchmarks.hpp"
#include "power/activity.hpp"
#include "sim/eventsim.hpp"
#include "sim/logicsim.hpp"

namespace lps::logicopt {
namespace {

TEST(DontCare, RemovesOdcRedundantGate) {
  // y = (a AND b) OR a  == a: the AND gate is ODC-redundant.
  Netlist n;
  NodeId a = n.add_input("a");
  NodeId b = n.add_input("b");
  NodeId g = n.add_and(a, b);
  NodeId y = n.add_or(g, a);
  n.add_output(y, "y");
  auto golden = n.clone();
  auto st = sim::measure_activity(n, 64, 1);
  auto res = optimize_dontcare(n, st.transition_prob);
  EXPECT_GT(res.const_replacements + res.merges, 0);
  EXPECT_LT(res.gates_after, res.gates_before);
  EXPECT_TRUE(bdd::equivalent_bdd(golden, n));
}

TEST(DontCare, PreservesFunctionOnSuite) {
  for (const auto& [name, net] : bench::default_suite()) {
    if (net.num_gates() > 300) continue;  // keep the test fast
    Netlist work = net.clone();
    auto st = sim::measure_activity(work, 64, 2);
    DontCareOptions opt;
    opt.max_rewrites = 40;
    optimize_dontcare(work, st.transition_prob, opt);
    EXPECT_TRUE(sim::equivalent_random(net, work, 256, 5)) << name;
    EXPECT_EQ(work.check(), "") << name;
  }
}

TEST(DontCare, NoFalsePositivesOnIrredundantCircuit) {
  // A parity tree has no ODC freedom anywhere.
  auto net = bench::parity_tree(8);
  auto st = sim::measure_activity(net, 64, 3);
  auto res = optimize_dontcare(net, st.transition_prob);
  EXPECT_EQ(res.const_replacements, 0);
  EXPECT_EQ(res.merges, 0);
}

TEST(Balance, EliminatesGlitchesPreservesDelayAndFunction) {
  auto net = bench::array_multiplier(4);
  auto golden = net.clone();
  int delay_before = net.critical_delay();
  double glitch_before =
      sim::measure_timed_activity(net, 400, 3).glitch_fraction();
  auto r = full_balance(net);
  EXPECT_GT(r.buffers_inserted, 0);
  EXPECT_EQ(net.critical_delay(), delay_before);
  EXPECT_TRUE(sim::equivalent_random(golden, net, 256, 7));
  double glitch_after =
      sim::measure_timed_activity(net, 400, 3).glitch_fraction();
  EXPECT_GT(glitch_before, 0.05);
  EXPECT_NEAR(glitch_after, 0.0, 1e-9);
}

TEST(Balance, PartialUsesBudgetAndReducesGlitching) {
  auto net = bench::array_multiplier(4);
  double total_before = sim::measure_timed_activity(net, 400, 3).sum_total();
  auto r = partial_balance(net, 20);
  EXPECT_LE(r.buffers_inserted, 20);
  EXPECT_GT(r.buffers_inserted, 0);
  EXPECT_EQ(r.critical_delay_after, r.critical_delay_before);
  double total_after = sim::measure_timed_activity(net, 400, 3).sum_total();
  // Gate transitions shrink even counting the new buffers.
  EXPECT_LT(total_after, total_before * 1.05);
}

TEST(Library, StandardCellsWellFormed) {
  auto lib = standard_library();
  EXPECT_GT(lib.gates.size(), 10u);
  for (const auto& g : lib.gates) {
    EXPECT_GT(g.pattern.num_leaves(), 0) << g.name;
    EXPECT_GT(g.area, 0) << g.name;
  }
}

TEST(Library, DecomposeNand2Equivalent) {
  for (const auto& [name, net] : bench::default_suite()) {
    auto d = decompose_nand2(net);
    for (NodeId id = 0; id < d.size(); ++id) {
      if (d.is_dead(id)) continue;
      auto t = d.node(id).type;
      EXPECT_TRUE(t == GateType::Nand || t == GateType::Not ||
                  is_source(t) || t == GateType::Dff)
          << name;
    }
    EXPECT_TRUE(sim::equivalent_random(net, d, 128, 11)) << name;
  }
}

TEST(TechMap, MappingPreservesFunction) {
  auto lib = standard_library();
  for (const auto& name : {"c17", "rca8", "cmp8", "alu4"}) {
    Netlist net;
    if (std::string(name) == "c17") net = bench::c17();
    if (std::string(name) == "rca8") net = bench::ripple_carry_adder(8);
    if (std::string(name) == "cmp8") net = bench::comparator_gt(8);
    if (std::string(name) == "alu4") net = bench::alu(4);
    auto subject = subject_graph(net);
    for (auto obj :
         {MapObjective::Area, MapObjective::Delay, MapObjective::Power}) {
      auto r = tech_map(net, lib, obj);
      EXPECT_FALSE(r.instances.empty()) << name;
      Netlist mapped = r.to_netlist(subject);
      EXPECT_TRUE(sim::equivalent_random(net, mapped, 256, 13)) << name;
    }
  }
}

TEST(TechMap, ObjectivesTradeOff) {
  auto lib = standard_library();
  auto net = bench::ripple_carry_adder(16);
  auto ra = tech_map(net, lib, MapObjective::Area);
  auto rd = tech_map(net, lib, MapObjective::Delay);
  auto rp = tech_map(net, lib, MapObjective::Power);
  // Each objective should win (or tie) its own metric.
  EXPECT_LE(ra.total_area, rd.total_area + 1e-9);
  EXPECT_LE(ra.total_area, rp.total_area + 1e-9);
  EXPECT_LE(rd.arrival, ra.arrival + 1e-9);
  EXPECT_LE(rd.arrival, rp.arrival + 1e-9);
  EXPECT_LE(rp.switched_cap_ff, ra.switched_cap_ff + 1e-9);
  EXPECT_LE(rp.switched_cap_ff, rd.switched_cap_ff + 1e-9);
}

TEST(TechMap, UsesComplexCells) {
  auto lib = standard_library();
  auto net = bench::comparator_gt(16);
  auto r = tech_map(net, lib, MapObjective::Area);
  int complex_cells = 0;
  for (const auto& [cell, count] : r.cell_histogram) {
    if (cell != "INVx1" && cell != "NAND2x1") complex_cells += count;
  }
  EXPECT_GT(complex_cells, 0);
}

TEST(PowerFactor, BothFormsEquivalentToFlat) {
  auto f = sop::Sop::parse(6, "11---- + 1-1--- + --11-- + ---1-1 + 0----1");
  std::vector<double> probs{0.5, 0.9, 0.1, 0.5, 0.3, 0.7};
  auto cmp = compare_factorings(f, probs);
  EXPECT_TRUE(sim::equivalent_random(cmp.flat, cmp.literal_form, 64, 17));
  EXPECT_TRUE(sim::equivalent_random(cmp.flat, cmp.power_form, 64, 17));
  EXPECT_LE(cmp.lits_literal, cmp.lits_flat);
}

}  // namespace
}  // namespace lps::logicopt
