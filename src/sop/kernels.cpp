#include "sop/kernels.hpp"

#include <algorithm>

#include "sop/division.hpp"

namespace lps::sop {

namespace {

// Literal index: 2*v for positive, 2*v+1 for negative.
bool cube_has_lit(const Cube& c, unsigned lit) {
  return (lit & 1) ? c.has_neg(lit / 2) : c.has_pos(lit / 2);
}

void kernels_rec(const Sop& g, const Cube& cok, unsigned min_lit,
                 std::vector<KernelEntry>& out) {
  unsigned nl = 2 * g.num_vars();
  for (unsigned l = min_lit; l < nl; ++l) {
    // Cubes of g containing literal l.
    std::vector<Cube> with;
    for (const auto& c : g.cubes())
      if (cube_has_lit(c, l)) with.push_back(c);
    if (with.size() < 2) continue;
    // Co-kernel cube: largest cube common to those cubes.
    Cube common = with[0];
    for (std::size_t i = 1; i < with.size(); ++i)
      common = common.common(with[i]);
    // Quotient.
    Sop q(g.num_vars());
    for (const auto& c : with) q.add_cube(c.minus(common));
    q.minimize_scc();
    // Duplicate avoidance: skip if some smaller literal divides all of q.
    bool dup = false;
    for (unsigned k = 0; k < l; ++k) {
      bool all = true;
      for (const auto& c : q.cubes())
        if (!cube_has_lit(c, k)) {
          all = false;
          break;
        }
      if (all && !q.empty()) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    Cube new_cok = cok.intersect(common);
    out.push_back({q, new_cok});
    kernels_rec(q, new_cok, l + 1, out);
  }
}

}  // namespace

std::vector<KernelEntry> kernels(const Sop& f) {
  std::vector<KernelEntry> out;
  Sop g = f;
  g.minimize_scc();
  Cube unit(f.num_vars());
  if (g.is_cube_free() && g.num_cubes() >= 1) out.push_back({g, unit});
  kernels_rec(g, unit, 0, out);
  // Deduplicate kernels (same quotient reachable via different paths).
  std::sort(out.begin(), out.end(), [](const KernelEntry& a,
                                       const KernelEntry& b) {
    if (a.kernel.num_cubes() != b.kernel.num_cubes())
      return a.kernel.num_cubes() < b.kernel.num_cubes();
    return a.kernel.cubes() < b.kernel.cubes();
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const KernelEntry& a, const KernelEntry& b) {
                          return a.kernel == b.kernel;
                        }),
            out.end());
  // Keep only genuine kernels: cube-free with >= 2 cubes (plus f itself).
  std::vector<KernelEntry> keep;
  for (auto& k : out)
    if (k.kernel.num_cubes() >= 2 && k.kernel.is_cube_free())
      keep.push_back(std::move(k));
  return keep;
}

int kernel_value(const Sop& f, const Sop& k) {
  auto dr = divide(f, k);
  if (dr.quotient.empty()) return INT32_MIN;
  // After extraction: f = q * x_new + r, plus the node x_new = k.
  int before = static_cast<int>(f.num_literals());
  int after = static_cast<int>(dr.quotient.num_literals()) +
              static_cast<int>(dr.quotient.num_cubes())  // uses of x_new
              + static_cast<int>(dr.remainder.num_literals()) +
              static_cast<int>(k.num_literals());
  return before - after;
}

double kernel_value_weighted(const Sop& f, const Sop& k,
                             const std::vector<double>& w,
                             double new_node_weight) {
  auto dr = divide(f, k);
  if (dr.quotient.empty()) return -1e30;
  auto wlits = [&](const Sop& s) {
    double t = 0;
    for (const auto& c : s.cubes())
      for (unsigned v = 0; v < s.num_vars(); ++v)
        if (c.has_var(v)) t += w[v];
    return t;
  };
  double before = wlits(f);
  double after = wlits(dr.quotient) +
                 new_node_weight * static_cast<double>(dr.quotient.num_cubes()) +
                 wlits(dr.remainder) + wlits(k);
  return before - after;
}

}  // namespace lps::sop
