#include "sop/cube.hpp"

#include <bit>
#include <stdexcept>

namespace lps::sop {

Cube::Cube(unsigned num_vars)
    : num_vars_(num_vars),
      pos_((num_vars + 63) / 64, 0),
      neg_((num_vars + 63) / 64, 0) {}

Cube Cube::parse(const std::string& s) {
  Cube c(static_cast<unsigned>(s.size()));
  for (unsigned v = 0; v < s.size(); ++v) {
    switch (s[v]) {
      case '1':
        c.set_pos(v);
        break;
      case '0':
        c.set_neg(v);
        break;
      case '-':
        break;
      default:
        throw std::invalid_argument(
            "Cube::parse: bad character '" + std::string(1, s[v]) +
            "' at column " + std::to_string(v + 1) + " of \"" + s +
            "\" (expected 0/1/-)");
    }
  }
  return c;
}

unsigned Cube::num_literals() const {
  unsigned n = 0;
  for (auto w : pos_) n += std::popcount(w);
  for (auto w : neg_) n += std::popcount(w);
  return n;
}

bool Cube::contradictory() const {
  for (std::size_t i = 0; i < pos_.size(); ++i)
    if (pos_[i] & neg_[i]) return true;
  return false;
}

bool Cube::contained_in(const Cube& other) const {
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if ((other.pos_[i] & ~pos_[i]) != 0) return false;
    if ((other.neg_[i] & ~neg_[i]) != 0) return false;
  }
  return true;
}

Cube Cube::intersect(const Cube& other) const {
  Cube r(num_vars_);
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    r.pos_[i] = pos_[i] | other.pos_[i];
    r.neg_[i] = neg_[i] | other.neg_[i];
  }
  return r;
}

Cube Cube::minus(const Cube& other) const {
  Cube r(num_vars_);
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    r.pos_[i] = pos_[i] & ~other.pos_[i];
    r.neg_[i] = neg_[i] & ~other.neg_[i];
  }
  return r;
}

Cube Cube::common(const Cube& other) const {
  Cube r(num_vars_);
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    r.pos_[i] = pos_[i] & other.pos_[i];
    r.neg_[i] = neg_[i] & other.neg_[i];
  }
  return r;
}

bool Cube::var_disjoint(const Cube& other) const {
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if ((pos_[i] | neg_[i]) & (other.pos_[i] | other.neg_[i])) return false;
  }
  return true;
}

bool Cube::eval(const std::vector<bool>& a) const {
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (has_pos(v) && !a[v]) return false;
    if (has_neg(v) && a[v]) return false;
  }
  return true;
}

std::string Cube::to_string() const {
  std::string s(num_vars_, '-');
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (has_pos(v)) s[v] = '1';
    if (has_neg(v)) s[v] = has_pos(v) ? '!' : '0';
  }
  return s;
}

bool Cube::operator<(const Cube& o) const {
  if (pos_ != o.pos_) return pos_ < o.pos_;
  return neg_ < o.neg_;
}

}  // namespace lps::sop
