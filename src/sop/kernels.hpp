// kernels.hpp — kernel/co-kernel extraction (Brayton–McMullen).
//
// "Kernel extraction is a commonly used algorithm to perform multilevel
// logic optimization for area [5].  When targeting power dissipation, the
// cost function is not literal count but switching activity." (§III-A.3).
// This module computes the kernel set; factoring.hpp consumes it with either
// cost function.

#pragma once

#include <vector>

#include "sop/sop.hpp"

namespace lps::sop {

struct KernelEntry {
  Sop kernel;      // cube-free quotient
  Cube co_kernel;  // the cube divisor producing it
};

/// All kernels of f (including f itself when cube-free), each with one
/// witnessing co-kernel.  Level-0 kernels have no kernels other than
/// themselves.
std::vector<KernelEntry> kernels(const Sop& f);

/// Literal savings obtained by extracting `k` out of `f` as a new node:
///   saved = (uses - 1) * lits(k) + uses - lits_of_new_node...
/// We use the standard MIS value: (#quotient cubes - 1) * lits(kernel) -
/// (cost of the new node's output literal uses).  Returns a signed value;
/// positive means extraction shrinks the network.
int kernel_value(const Sop& f, const Sop& k);

/// Same with per-variable literal weights (power-aware cost of §III-A.3 /
/// SYCLOP [35]): a literal of variable v costs `weight[v]` instead of 1, so
/// factoring prefers to share logic fed by high-activity signals.
double kernel_value_weighted(const Sop& f, const Sop& k,
                             const std::vector<double>& weight,
                             double new_node_weight);

}  // namespace lps::sop
