// sop.hpp — sums of products and their algebraic structure.

#pragma once

#include <string>
#include <vector>

#include "sop/cube.hpp"

namespace lps::sop {

/// A sum of products over a fixed variable universe.  The empty SOP is the
/// constant 0; an SOP containing the universal cube is constant 1.
class Sop {
 public:
  Sop() = default;
  explicit Sop(unsigned num_vars) : num_vars_(num_vars) {}
  Sop(unsigned num_vars, std::vector<Cube> cubes)
      : num_vars_(num_vars), cubes_(std::move(cubes)) {}

  /// Parse "1-0 + -11 + 0--" (whitespace optional around '+').
  static Sop parse(unsigned num_vars, const std::string& text);

  unsigned num_vars() const { return num_vars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }
  bool empty() const { return cubes_.empty(); }
  std::size_t num_cubes() const { return cubes_.size(); }
  unsigned num_literals() const;

  void add_cube(Cube c);

  bool eval(const std::vector<bool>& assignment) const;

  /// Remove contradictory cubes and cubes contained in another cube
  /// (single-cube containment minimization), then sort canonically.
  void minimize_scc();

  /// True if no cube's variable set overlaps another use of the same var in
  /// both phases... (not needed; see division.hpp for algebraic predicates)
  /// Cube-free: no single literal divides every cube.
  bool is_cube_free() const;
  /// Largest cube dividing every cube of the SOP.
  Cube largest_common_cube() const;
  /// Divide every cube by `c` (each cube must contain c's literals or it is
  /// dropped) — the algebraic quotient restricted to cubes divisible by c.
  Sop cofactor_cube(const Cube& c) const;

  std::string to_string() const;
  bool operator==(const Sop&) const = default;

 private:
  unsigned num_vars_ = 0;
  std::vector<Cube> cubes_;
};

}  // namespace lps::sop
