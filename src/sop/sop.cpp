#include "sop/sop.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace lps::sop {

Sop Sop::parse(unsigned num_vars, const std::string& text) {
  Sop s(num_vars);
  std::string term;
  std::istringstream is(text);
  std::string tok;
  std::vector<std::string> terms;
  std::string cur;
  for (char ch : text) {
    if (ch == '+') {
      terms.push_back(cur);
      cur.clear();
    } else if (!isspace(static_cast<unsigned char>(ch))) {
      cur += ch;
    }
  }
  if (!cur.empty()) terms.push_back(cur);
  for (std::size_t k = 0; k < terms.size(); ++k) {
    const auto& t = terms[k];
    if (t.empty()) continue;
    if (t.size() != num_vars)
      throw std::invalid_argument(
          "Sop::parse: term " + std::to_string(k + 1) + " \"" + t + "\" has " +
          std::to_string(t.size()) + " columns, expected " +
          std::to_string(num_vars));
    s.add_cube(Cube::parse(t));
  }
  return s;
}

unsigned Sop::num_literals() const {
  unsigned n = 0;
  for (const auto& c : cubes_) n += c.num_literals();
  return n;
}

void Sop::add_cube(Cube c) {
  if (!c.contradictory()) cubes_.push_back(std::move(c));
}

bool Sop::eval(const std::vector<bool>& a) const {
  for (const auto& c : cubes_)
    if (c.eval(a)) return true;
  return false;
}

void Sop::minimize_scc() {
  std::vector<Cube> keep;
  for (const auto& c : cubes_) {
    if (c.contradictory()) continue;
    bool contained = false;
    for (const auto& d : cubes_) {
      if (&c == &d) continue;
      // c is redundant if c ⊆ d (d has a subset of c's literals) — but keep
      // exactly one copy of duplicates (pointer order tiebreak).
      if (c == d) {
        if (&d < &c) {
          contained = true;
          break;
        }
        continue;
      }
      if (c.contained_in(d)) {
        contained = true;
        break;
      }
    }
    if (!contained) keep.push_back(c);
  }
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  cubes_ = std::move(keep);
}

bool Sop::is_cube_free() const {
  if (cubes_.empty()) return false;
  return largest_common_cube().num_literals() == 0;
}

Cube Sop::largest_common_cube() const {
  if (cubes_.empty()) return Cube(num_vars_);
  Cube acc = cubes_[0];
  for (std::size_t i = 1; i < cubes_.size(); ++i) acc = acc.common(cubes_[i]);
  return acc;
}

Sop Sop::cofactor_cube(const Cube& c) const {
  Sop r(num_vars_);
  for (const auto& cu : cubes_) {
    if (cu.contained_in(c)) r.add_cube(cu.minus(c));
  }
  return r;
}

std::string Sop::to_string() const {
  if (cubes_.empty()) return "0";
  std::string s;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i) s += " + ";
    s += cubes_[i].to_string();
  }
  return s;
}

}  // namespace lps::sop
