// minimize.hpp — heuristic two-level minimization (Espresso-style loop).
//
// The survey leans on "a comprehensive treatment of combinational logic
// synthesis methods" [13]; the workhorse there is the two-level
// expand / irredundant / reduce loop.  This is a faithful small-scale
// implementation over the cube algebra of cube.hpp:
//   expand      — grow each cube literal-by-literal while it stays inside
//                 the function (onset ∪ don't-care set);
//   irredundant — drop cubes covered by the rest of the cover;
//   reduce      — shrink cubes to their essential part to open new expand
//                 directions.
// Containment checks are exact (tautology-based cofactor recursion), so the
// result is a verified cover of the original function.  Don't-care input
// makes this the natural consumer of the ODC sets from logicopt/dontcare.

#pragma once

#include "sop/sop.hpp"

namespace lps::sop {

struct MinimizeStats {
  unsigned cubes_before = 0;
  unsigned cubes_after = 0;
  unsigned literals_before = 0;
  unsigned literals_after = 0;
  int iterations = 0;
};

/// Does cube `c` lie entirely inside `f` (i.e. f covers c)?  Exact,
/// via cofactor-and-tautology recursion.
bool cube_covered(const Cube& c, const Sop& f);

/// Is f a tautology?  (Exact; exponential worst case, fine at test scale.)
bool tautology(const Sop& f);

/// Exact equivalence of two SOPs over the same variable universe.
bool sop_equal(const Sop& a, const Sop& b);

/// Espresso-style minimization of `f` with optional don't-care set `dc`.
/// Returns a cover g with  f ⊆ g ⊆ f ∪ dc  and (heuristically) fewer
/// literals.  Deterministic.
Sop minimize(const Sop& f, const Sop& dc, MinimizeStats* stats = nullptr);
inline Sop minimize(const Sop& f, MinimizeStats* stats = nullptr) {
  return minimize(f, Sop(f.num_vars()), stats);
}

}  // namespace lps::sop
