// cube.hpp — cubes (product terms) over a fixed variable universe.
//
// Substrate for the two-level / algebraic layer of §III-A.3: kernel
// extraction and factoring manipulate sums of products.  A cube stores two
// bit vectors (positive and negative literal sets); a variable appearing in
// both is a contradiction and makes the cube empty.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lps::sop {

class Cube {
 public:
  Cube() = default;
  explicit Cube(unsigned num_vars);
  /// Parse from a position string like "1-0": '1' positive literal,
  /// '0' negative, '-' absent.
  static Cube parse(const std::string& s);

  unsigned num_vars() const { return num_vars_; }

  bool has_pos(unsigned v) const { return bit(pos_, v); }
  bool has_neg(unsigned v) const { return bit(neg_, v); }
  bool has_var(unsigned v) const { return has_pos(v) || has_neg(v); }
  void set_pos(unsigned v) { set(pos_, v); }
  void set_neg(unsigned v) { set(neg_, v); }
  void clear_var(unsigned v) {
    clear(pos_, v);
    clear(neg_, v);
  }

  /// Number of literals in the cube.
  unsigned num_literals() const;
  /// True when some variable appears in both phases.
  bool contradictory() const;
  /// True when this cube has no literals (the universal cube).
  bool is_tautology() const { return num_literals() == 0; }

  /// Cube containment: every literal of `other` appears in this cube, i.e.
  /// this ⊆ other as point sets.
  bool contained_in(const Cube& other) const;
  /// AND of two cubes (may be contradictory).
  Cube intersect(const Cube& other) const;
  /// Literals of this cube not present in `other` (algebraic cube division
  /// quotient when other ⊆ this).
  Cube minus(const Cube& other) const;
  /// Largest common cube (intersection of literal sets).
  Cube common(const Cube& other) const;
  /// True if the two cubes share no variables (algebraic disjointness).
  bool var_disjoint(const Cube& other) const;

  bool eval(const std::vector<bool>& assignment) const;

  std::string to_string() const;  // "1-0" form over num_vars
  bool operator==(const Cube&) const = default;
  /// Lexicographic order for canonical SOP sorting.
  bool operator<(const Cube& o) const;

 private:
  static bool bit(const std::vector<std::uint64_t>& w, unsigned v) {
    return v / 64 < w.size() && (w[v / 64] >> (v % 64) & 1);
  }
  static void set(std::vector<std::uint64_t>& w, unsigned v) {
    w[v / 64] |= 1ULL << (v % 64);
  }
  static void clear(std::vector<std::uint64_t>& w, unsigned v) {
    if (v / 64 < w.size()) w[v / 64] &= ~(1ULL << (v % 64));
  }

  unsigned num_vars_ = 0;
  std::vector<std::uint64_t> pos_, neg_;
};

}  // namespace lps::sop
