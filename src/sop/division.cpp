#include "sop/division.hpp"

#include <algorithm>

namespace lps::sop {

DivisionResult divide(const Sop& f, const Cube& d) {
  DivisionResult r{Sop(f.num_vars()), Sop(f.num_vars())};
  for (const auto& c : f.cubes()) {
    if (c.contained_in(d))
      r.quotient.add_cube(c.minus(d));
    else
      r.remainder.add_cube(c);
  }
  return r;
}

DivisionResult divide(const Sop& f, const Sop& d) {
  DivisionResult out{Sop(f.num_vars()), f};
  if (d.empty()) return out;
  // Quotient = intersection over divisor cubes of per-cube quotients.
  std::vector<Cube> q;
  bool first = true;
  for (const auto& dc : d.cubes()) {
    auto qi = divide(f, dc).quotient;
    std::vector<Cube> qs = qi.cubes();
    std::sort(qs.begin(), qs.end());
    if (first) {
      q = std::move(qs);
      first = false;
    } else {
      std::vector<Cube> inter;
      std::set_intersection(q.begin(), q.end(), qs.begin(), qs.end(),
                            std::back_inserter(inter));
      q = std::move(inter);
    }
    if (q.empty()) break;
  }
  out.quotient = Sop(f.num_vars(), q);
  if (q.empty()) {
    out.remainder = f;
    return out;
  }
  // remainder = f minus the cubes covered by q*d.
  Sop prod = multiply(out.quotient, d);
  std::vector<Cube> pc = prod.cubes();
  std::sort(pc.begin(), pc.end());
  Sop rem(f.num_vars());
  std::vector<Cube> used = pc;
  for (const auto& c : f.cubes()) {
    auto it = std::lower_bound(used.begin(), used.end(), c);
    if (it != used.end() && *it == c) {
      used.erase(it);  // consume one matching product cube
    } else {
      rem.add_cube(c);
    }
  }
  out.remainder = std::move(rem);
  return out;
}

Sop multiply(const Sop& a, const Sop& b) {
  Sop r(a.num_vars());
  for (const auto& ca : a.cubes())
    for (const auto& cb : b.cubes()) r.add_cube(ca.intersect(cb));
  r.minimize_scc();
  return r;
}

Sop add(const Sop& a, const Sop& b) {
  Sop r(a.num_vars());
  for (const auto& c : a.cubes()) r.add_cube(c);
  for (const auto& c : b.cubes()) r.add_cube(c);
  r.minimize_scc();
  return r;
}

}  // namespace lps::sop
