#include "sop/minimize.hpp"

#include <algorithm>

namespace lps::sop {

namespace {

// Cofactor of an SOP with respect to a single literal (var=value).
Sop literal_cofactor(const Sop& f, unsigned v, bool value) {
  Sop r(f.num_vars());
  for (const auto& c : f.cubes()) {
    if (value ? c.has_neg(v) : c.has_pos(v)) continue;  // cube vanishes
    Cube c2 = c;
    c2.clear_var(v);
    r.add_cube(std::move(c2));
  }
  return r;
}

// Most binate variable: appears in both phases in the most cubes.
int pick_split_var(const Sop& f) {
  int best = -1;
  int best_score = -1;
  for (unsigned v = 0; v < f.num_vars(); ++v) {
    int pos = 0, neg = 0;
    for (const auto& c : f.cubes()) {
      if (c.has_pos(v)) ++pos;
      if (c.has_neg(v)) ++neg;
    }
    if (pos + neg == 0) continue;
    int score = std::min(pos, neg) * 1000 + pos + neg;
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(v);
    }
  }
  return best;
}

}  // namespace

bool tautology(const Sop& f) {
  for (const auto& c : f.cubes())
    if (c.num_literals() == 0) return true;
  if (f.empty()) return false;
  int v = pick_split_var(f);
  if (v < 0) return false;  // no literals and no universal cube
  return tautology(literal_cofactor(f, v, false)) &&
         tautology(literal_cofactor(f, v, true));
}

bool cube_covered(const Cube& c, const Sop& f) {
  // f covers c iff f cofactored by c is a tautology.
  Sop g = f;
  for (unsigned v = 0; v < c.num_vars(); ++v) {
    if (c.has_pos(v)) g = literal_cofactor(g, v, true);
    if (c.has_neg(v)) g = literal_cofactor(g, v, false);
  }
  return tautology(g);
}

bool sop_equal(const Sop& a, const Sop& b) {
  for (const auto& c : a.cubes())
    if (!cube_covered(c, b)) return false;
  for (const auto& c : b.cubes())
    if (!cube_covered(c, a)) return false;
  return true;
}

namespace {

Sop union_of(const Sop& a, const Sop& b) {
  Sop r = a;
  for (const auto& c : b.cubes()) r.add_cube(c);
  return r;
}

// Expand every cube against the onset+dc bound; drop newly covered cubes.
bool expand_pass(Sop& cover, const Sop& bound) {
  bool changed = false;
  // Largest cubes first give the strongest covers.
  std::sort(cover.cubes().begin(), cover.cubes().end(),
            [](const Cube& a, const Cube& b) {
              return a.num_literals() < b.num_literals();
            });
  for (std::size_t i = 0; i < cover.cubes().size(); ++i) {
    Cube& c = cover.cubes()[i];
    for (unsigned v = 0; v < cover.num_vars(); ++v) {
      if (!c.has_var(v)) continue;
      Cube trial = c;
      trial.clear_var(v);
      if (cube_covered(trial, bound)) {
        c = trial;
        changed = true;
      }
    }
  }
  // Remove cubes covered by a single other (SCC) — cheap cleanup.
  cover.minimize_scc();
  return changed;
}

// Remove cubes covered by the rest of the cover plus dc.
bool irredundant_pass(Sop& cover, const Sop& dc) {
  bool changed = false;
  for (std::size_t i = 0; i < cover.cubes().size();) {
    Sop rest(cover.num_vars());
    for (std::size_t j = 0; j < cover.cubes().size(); ++j)
      if (j != i) rest.add_cube(cover.cubes()[j]);
    Sop bound = union_of(rest, dc);
    if (cube_covered(cover.cubes()[i], bound)) {
      cover.cubes().erase(cover.cubes().begin() + i);
      changed = true;
    } else {
      ++i;
    }
  }
  return changed;
}

// Shrink cubes while the cover still covers the required onset.
bool reduce_pass(Sop& cover, const Sop& onset, const Sop& dc) {
  bool changed = false;
  for (std::size_t i = 0; i < cover.cubes().size(); ++i) {
    for (unsigned v = 0; v < cover.num_vars(); ++v) {
      if (cover.cubes()[i].has_var(v)) continue;
      for (bool phase : {false, true}) {
        Cube trial = cover.cubes()[i];
        if (phase)
          trial.set_pos(v);
        else
          trial.set_neg(v);
        Cube saved = cover.cubes()[i];
        cover.cubes()[i] = trial;
        // Still a valid cover of the onset?
        Sop bound = union_of(cover, dc);
        bool ok = true;
        for (const auto& oc : onset.cubes())
          if (!cube_covered(oc, bound)) {
            ok = false;
            break;
          }
        if (ok) {
          changed = true;
          break;  // keep the shrink; move to next variable
        }
        cover.cubes()[i] = saved;
      }
    }
  }
  return changed;
}

}  // namespace

Sop minimize(const Sop& f, const Sop& dc, MinimizeStats* stats) {
  Sop cover = f;
  cover.minimize_scc();
  if (stats) {
    stats->cubes_before = static_cast<unsigned>(cover.num_cubes());
    stats->literals_before = cover.num_literals();
  }
  Sop bound = union_of(f, dc);

  int iter = 0;
  unsigned best_lits = cover.num_literals() + 1;
  while (iter < 4 && cover.num_literals() < best_lits) {
    best_lits = cover.num_literals();
    expand_pass(cover, bound);
    irredundant_pass(cover, dc);
    if (iter + 1 < 4) reduce_pass(cover, f, dc);
    expand_pass(cover, bound);
    irredundant_pass(cover, dc);
    ++iter;
  }
  if (stats) {
    stats->cubes_after = static_cast<unsigned>(cover.num_cubes());
    stats->literals_after = cover.num_literals();
    stats->iterations = iter;
  }
  return cover;
}

}  // namespace lps::sop
