// division.hpp — algebraic (weak) division of sums of products.
//
// The workhorse of multilevel technology-independent optimization (§III-A.3):
// given f and divisor d, find quotient q and remainder r with f = q·d + r,
// where the product is algebraic (q and d share no variables).

#pragma once

#include "sop/sop.hpp"

namespace lps::sop {

struct DivisionResult {
  Sop quotient;
  Sop remainder;
};

/// Algebraic division of f by a single cube.
DivisionResult divide(const Sop& f, const Cube& d);

/// Algebraic division of f by an SOP divisor (Brayton–McMullen weak
/// division).  quotient is empty when d does not divide f.
DivisionResult divide(const Sop& f, const Sop& d);

/// Algebraic product (assumes var-disjoint operands for algebraic validity;
/// contradictory result cubes are dropped).
Sop multiply(const Sop& a, const Sop& b);

/// Sum (concatenation + SCC minimization).
Sop add(const Sop& a, const Sop& b);

}  // namespace lps::sop
