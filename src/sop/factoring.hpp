// factoring.hpp — factored forms and power-aware factoring.
//
// §III-A.3: "the expression a·c + a·d + b·c + b·d can be factored into
// (a+b)·(c+d), reducing transistor count considerably."  quick_factor /
// good_factor build such forms by recursive kernel division; the weighted
// variant scores divisors by switching-activity savings instead of literal
// count (the SYCLOP [35] cost function), so high-activity signals feed as
// few transistor gates as possible.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sop/kernels.hpp"
#include "sop/sop.hpp"

namespace lps::sop {

/// A factored Boolean expression.
struct Expr {
  enum class Kind { Const0, Const1, Lit, And, Or };
  Kind kind = Kind::Const0;
  unsigned var = 0;   // for Lit
  bool negated = false;
  std::vector<Expr> kids;  // for And/Or

  static Expr lit(unsigned v, bool neg) {
    Expr e;
    e.kind = Kind::Lit;
    e.var = v;
    e.negated = neg;
    return e;
  }

  unsigned num_literals() const;
  double weighted_literals(const std::vector<double>& w) const;
  bool eval(const std::vector<bool>& a) const;
  std::string to_string(const std::vector<std::string>& names = {}) const;
};

/// Literal-count factoring (classic quick factor: best kernel, recurse).
Expr factor(const Sop& f);

/// Activity-weighted factoring: literal of variable v costs `weight[v]`.
/// Divisor choice maximizes weighted savings.
Expr factor_weighted(const Sop& f, const std::vector<double>& weight);

/// Build the expression into a netlist using `leaf[v]` as variable nodes;
/// returns the root node id.
NodeId build_expr(Netlist& net, const Expr& e, const std::vector<NodeId>& leaf);

/// Flatten back to SOP (for verification; exponential in the worst case,
/// fine for test-sized functions).
Sop to_sop(const Expr& e, unsigned num_vars);

}  // namespace lps::sop
