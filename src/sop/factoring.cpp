#include "sop/factoring.hpp"

#include <algorithm>

#include "sop/division.hpp"

namespace lps::sop {

unsigned Expr::num_literals() const {
  switch (kind) {
    case Kind::Const0:
    case Kind::Const1:
      return 0;
    case Kind::Lit:
      return 1;
    default: {
      unsigned n = 0;
      for (const auto& k : kids) n += k.num_literals();
      return n;
    }
  }
}

double Expr::weighted_literals(const std::vector<double>& w) const {
  switch (kind) {
    case Kind::Const0:
    case Kind::Const1:
      return 0.0;
    case Kind::Lit:
      return var < w.size() ? w[var] : 1.0;
    default: {
      double n = 0;
      for (const auto& k : kids) n += k.weighted_literals(w);
      return n;
    }
  }
}

bool Expr::eval(const std::vector<bool>& a) const {
  switch (kind) {
    case Kind::Const0:
      return false;
    case Kind::Const1:
      return true;
    case Kind::Lit:
      return negated ? !a[var] : a[var];
    case Kind::And:
      for (const auto& k : kids)
        if (!k.eval(a)) return false;
      return true;
    case Kind::Or:
      for (const auto& k : kids)
        if (k.eval(a)) return true;
      return false;
  }
  return false;
}

std::string Expr::to_string(const std::vector<std::string>& names) const {
  auto name_of = [&](unsigned v) {
    return v < names.size() ? names[v] : "x" + std::to_string(v);
  };
  switch (kind) {
    case Kind::Const0:
      return "0";
    case Kind::Const1:
      return "1";
    case Kind::Lit:
      return (negated ? "!" : "") + name_of(var);
    case Kind::And: {
      std::string s;
      for (std::size_t i = 0; i < kids.size(); ++i) {
        if (i) s += "*";
        bool paren = kids[i].kind == Kind::Or;
        if (paren) s += "(";
        s += kids[i].to_string(names);
        if (paren) s += ")";
      }
      return s;
    }
    case Kind::Or: {
      std::string s;
      for (std::size_t i = 0; i < kids.size(); ++i) {
        if (i) s += " + ";
        s += kids[i].to_string(names);
      }
      return s;
    }
  }
  return "?";
}

namespace {

Expr cube_to_expr(const Cube& c) {
  std::vector<Expr> lits;
  for (unsigned v = 0; v < c.num_vars(); ++v) {
    if (c.has_pos(v)) lits.push_back(Expr::lit(v, false));
    if (c.has_neg(v)) lits.push_back(Expr::lit(v, true));
  }
  if (lits.empty()) {
    Expr e;
    e.kind = Expr::Kind::Const1;
    return e;
  }
  if (lits.size() == 1) return lits[0];
  Expr e;
  e.kind = Expr::Kind::And;
  e.kids = std::move(lits);
  return e;
}

Expr sop_to_or_of_cubes(const Sop& f) {
  if (f.empty()) {
    Expr e;
    e.kind = Expr::Kind::Const0;
    return e;
  }
  std::vector<Expr> terms;
  for (const auto& c : f.cubes()) terms.push_back(cube_to_expr(c));
  if (terms.size() == 1) return terms[0];
  Expr e;
  e.kind = Expr::Kind::Or;
  e.kids = std::move(terms);
  return e;
}

Expr make_and(Expr a, Expr b) {
  Expr e;
  e.kind = Expr::Kind::And;
  if (a.kind == Expr::Kind::Const1) return b;
  if (b.kind == Expr::Kind::Const1) return a;
  e.kids.push_back(std::move(a));
  e.kids.push_back(std::move(b));
  return e;
}

Expr make_or(Expr a, Expr b) {
  if (a.kind == Expr::Kind::Const0) return b;
  if (b.kind == Expr::Kind::Const0) return a;
  Expr e;
  e.kind = Expr::Kind::Or;
  e.kids.push_back(std::move(a));
  e.kids.push_back(std::move(b));
  return e;
}

// Generic recursive factoring.  `pick` selects a divisor (kernel) or returns
// an empty Sop to stop.
template <typename PickFn>
Expr factor_rec(const Sop& f0, const PickFn& pick, int depth) {
  Sop f = f0;
  f.minimize_scc();
  if (f.empty()) {
    Expr e;
    e.kind = Expr::Kind::Const0;
    return e;
  }
  if (f.num_cubes() == 1) return cube_to_expr(f.cubes()[0]);
  // Pull out the largest common cube first: f = c * f'.
  Cube common = f.largest_common_cube();
  if (common.num_literals() > 0 && depth < 64) {
    Sop rest = f.cofactor_cube(common);
    return make_and(cube_to_expr(common), factor_rec(rest, pick, depth + 1));
  }
  if (depth >= 64) return sop_to_or_of_cubes(f);
  Sop d = pick(f);
  if (d.empty() || d.num_cubes() < 2) return sop_to_or_of_cubes(f);
  auto dr = divide(f, d);
  if (dr.quotient.empty() ||
      (dr.quotient.num_cubes() == 1 &&
       dr.quotient.cubes()[0].num_literals() == 0)) {
    return sop_to_or_of_cubes(f);
  }
  Expr qe = factor_rec(dr.quotient, pick, depth + 1);
  Expr de = factor_rec(d, pick, depth + 1);
  Expr re = factor_rec(dr.remainder, pick, depth + 1);
  return make_or(make_and(std::move(qe), std::move(de)), std::move(re));
}

}  // namespace

Expr factor(const Sop& f) {
  auto pick = [](const Sop& g) -> Sop {
    auto ks = kernels(g);
    int best = 0;
    Sop best_k(g.num_vars());
    for (const auto& k : ks) {
      if (k.kernel == g) continue;  // dividing by itself is vacuous
      int v = kernel_value(g, k.kernel);
      if (v > best) {
        best = v;
        best_k = k.kernel;
      }
    }
    return best_k;
  };
  return factor_rec(f, pick, 0);
}

Expr factor_weighted(const Sop& f, const std::vector<double>& weight) {
  auto pick = [&weight](const Sop& g) -> Sop {
    auto ks = kernels(g);
    double best = 1e-9;
    Sop best_k(g.num_vars());
    // The new node's output activity is approximated by the max weight of
    // its support (conservative: a shared node toggles at most as often as
    // its most active input under the zero-delay model).
    for (const auto& k : ks) {
      if (k.kernel == g) continue;
      double nw = 0.0;
      for (const auto& c : k.kernel.cubes())
        for (unsigned v = 0; v < k.kernel.num_vars(); ++v)
          if (c.has_var(v) && v < weight.size()) nw = std::max(nw, weight[v]);
      double val = kernel_value_weighted(g, k.kernel, weight, nw);
      if (val > best) {
        best = val;
        best_k = k.kernel;
      }
    }
    return best_k;
  };
  return factor_rec(f, pick, 0);
}

NodeId build_expr(Netlist& net, const Expr& e,
                  const std::vector<NodeId>& leaf) {
  switch (e.kind) {
    case Expr::Kind::Const0:
      return net.add_const(false);
    case Expr::Kind::Const1:
      return net.add_const(true);
    case Expr::Kind::Lit: {
      NodeId n = leaf.at(e.var);
      return e.negated ? net.add_not(n) : n;
    }
    case Expr::Kind::And:
    case Expr::Kind::Or: {
      std::vector<NodeId> kids;
      for (const auto& k : e.kids) kids.push_back(build_expr(net, k, leaf));
      if (kids.size() == 1) return kids[0];
      return net.add_gate(
          e.kind == Expr::Kind::And ? GateType::And : GateType::Or,
          std::move(kids));
    }
  }
  return net.add_const(false);
}

Sop to_sop(const Expr& e, unsigned num_vars) {
  switch (e.kind) {
    case Expr::Kind::Const0:
      return Sop(num_vars);
    case Expr::Kind::Const1: {
      Sop s(num_vars);
      s.add_cube(Cube(num_vars));
      return s;
    }
    case Expr::Kind::Lit: {
      Sop s(num_vars);
      Cube c(num_vars);
      if (e.negated)
        c.set_neg(e.var);
      else
        c.set_pos(e.var);
      s.add_cube(c);
      return s;
    }
    case Expr::Kind::And: {
      Sop acc(num_vars);
      acc.add_cube(Cube(num_vars));
      for (const auto& k : e.kids) acc = multiply(acc, to_sop(k, num_vars));
      return acc;
    }
    case Expr::Kind::Or: {
      Sop acc(num_vars);
      for (const auto& k : e.kids) acc = add(acc, to_sop(k, num_vars));
      return acc;
    }
  }
  return Sop(num_vars);
}

}  // namespace lps::sop
