// faultinject.hpp — deliberate netlist corruption, for testing the testers.
//
// The invariant checker (validate.hpp) and the pass verifier
// (core/pass.hpp) are only trustworthy if every corruption class they claim
// to catch is actually caught.  This harness injects one fault of a chosen
// class into a healthy netlist; the test suite then asserts that either
// Netlist::check()/validate() flags it (structural classes) or the
// PassManager's random-simulation equivalence check does (functional
// classes).  The checker checking the checker.
//
// Injection deliberately bypasses the Netlist mutator API (which would
// refuse to produce these states) by editing nodes directly — exactly what
// a buggy pass with a raw Node& would do.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::fault {

enum class Fault : std::uint8_t {
  // -- structural: must be caught by validate()/Netlist::check() ------------
  DropFanin,        // erase one fanin slot without unlinking the fanout
  WireCycle,        // rewire a gate's fanin to a node in its fanout cone
  StaleFanout,      // append a fanout entry whose user has no such fanin
  DanglingFanin,    // point a fanin at a tombstoned (dead) node
  OutOfRangeFanin,  // point a fanin past the end of the node table
  DuplicateOutput,  // duplicate a primary-output name slot
  // -- functional: structurally legal, must be caught by the pass verifier --
  FlipGateFunction,  // swap a gate's function (And<->Or, Xor<->Xnor, ...)
};

std::string_view to_string(Fault f);

/// All fault classes, in declaration order.
std::vector<Fault> all_faults();
/// The subset validate() is responsible for catching.
std::vector<Fault> structural_faults();

struct Injection {
  Fault kind;
  bool applied = false;     // false: no viable site in this netlist
  NodeId site = kNoNode;    // primary corrupted node
  std::string description;  // what was done, for test failure messages
};

/// Corrupt `net` with one fault of class `kind`.  Site selection is
/// deterministic in `seed`.  Returns applied=false when the netlist has no
/// viable site (e.g. WireCycle on a single-gate circuit).
Injection inject(Netlist& net, Fault kind, std::uint64_t seed = 1);

}  // namespace lps::fault
