// benchmarks.hpp — deterministic ISCAS-style benchmark circuits.
//
// The surveyed papers evaluate on the public ISCAS85/89 suites and on
// datapath blocks (adders, multipliers, comparators).  We generate the same
// circuit families programmatically so every experiment is reproducible
// without external files; real BLIF benchmarks can still be loaded via
// blif::read_file.  All generators are pure functions of their parameters
// (and an explicit seed where randomness is involved).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::bench {

/// ISCAS85 c17 (the canonical 6-NAND example), built exactly per the netlist.
Netlist c17();

/// n-bit ripple-carry adder: inputs a[n], b[n], cin; outputs s[n], cout.
Netlist ripple_carry_adder(int n);

/// n-bit carry-lookahead-free carry-select adder with the given block size.
/// Same function as ripple_carry_adder(n) but a shallower, wider structure
/// with heavily unbalanced path profiles (a rich glitch source).
Netlist carry_select_adder(int n, int block);

/// n x n array multiplier: inputs a[n], b[n]; outputs p[2n].  The classic
/// glitch-heavy circuit of §III-A.2 ([25] builds exactly this with
/// transition-reduction circuitry).
Netlist array_multiplier(int n);

/// n-bit magnitude comparator computing C > D (the Figure 1 circuit).
/// Structured MSB-first as a ripple of (equal-so-far, greater) pairs.
Netlist comparator_gt(int n);

/// n-input parity: a tree of XORs with the given radix (2 or 3).
Netlist parity_tree(int n, int radix = 2);

/// Balanced AND tree over n inputs (zero glitches under unit delay).
Netlist and_tree(int n);

/// Linear AND chain over n inputs (maximally unbalanced; glitch-prone when
/// driven through inverters).
Netlist and_chain(int n);

/// n-to-2^n decoder.
Netlist decoder(int n);

/// Small n-bit ALU: op[2] selects among ADD, AND, OR, XOR of a[n], b[n].
Netlist alu(int n);

/// n-bit DCT butterfly stage: outputs sum = a+b and diff = a-b (two's
/// complement).  Built the way naive RTL elaboration would: two fully
/// independent ripple chains, the subtractor forming ~b locally per bit —
/// so complement sharing (XOR(a,~b) = ~XOR(a,b)) and cross-cone CSE with
/// the adder are left on the table for the datapath rewriter.
Netlist dct_butterfly(int n);

/// n-bit add/sub ALU: `sub` selects a+b or a-b.  Like dct_butterfly, both
/// datapaths are elaborated independently and muxed per bit, leaving the
/// shared-adder restructuring to the optimizer.
Netlist alu_addsub(int n);

/// Random reconvergent DAG: `n_inputs` PIs, `n_gates` gates drawn from
/// {AND, OR, NAND, NOR, XOR, NOT}, fanins biased toward recent nodes so the
/// circuit is deep and reconvergent.  Deterministic in `seed`.
Netlist random_dag(int n_inputs, int n_gates, std::uint32_t seed);

/// Sequential: n-bit resettable counter (DFFs + increment logic).
Netlist counter(int n);

/// Sequential: shift register of length n.
Netlist shift_register(int n);

struct NamedNetlist {
  std::string name;
  Netlist net;
};

/// The default combinational experiment suite used by the bench harness:
/// a mix of arithmetic, control and random logic at moderate sizes.
std::vector<NamedNetlist> default_suite();

}  // namespace lps::bench
