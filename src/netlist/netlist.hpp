// netlist.hpp — gate-level Boolean network substrate.
//
// Every optimization surveyed in Devadas & Malik (DAC'95) operates on a
// technology-independent or mapped gate network.  This module provides that
// substrate: a DAG of typed logic gates with named primary inputs/outputs,
// optional D flip-flops (for the sequential techniques of §III-C), per-node
// drive size (for §II-B transistor sizing) and per-node delay (for §III-A.2
// path balancing and the event-driven glitch simulator).
//
// Design notes
//  - Nodes live in a flat vector and are addressed by NodeId; deletion marks
//    a tombstone so ids stay stable across passes (compact() renumbers).
//  - Fanouts are maintained incrementally so passes can query them cheaply.
//  - The network owns no technology information; the power model assigns
//    capacitance from gate type, size and fanout count (see power/).

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lps {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

enum class GateType : std::uint8_t {
  Input,   // primary input; no fanins
  Const0,  // constant 0
  Const1,  // constant 1
  Buf,     // 1 fanin
  Not,     // 1 fanin
  And,     // >= 2 fanins
  Or,      // >= 2 fanins
  Nand,    // >= 2 fanins
  Nor,     // >= 2 fanins
  Xor,     // >= 2 fanins (odd parity)
  Xnor,    // >= 2 fanins (even parity)
  Mux,     // 3 fanins: s, a, b -> s ? b : a
  Dff,     // 1 fanin (D) or 2 (D, EN): load-enabled register.  With an EN
           // pin the register keeps its value on EN=0 — the survey's "LE"
           // registers (Figure 1) and gated-clock banks, modelled inside
           // the flip-flop instead of as an external recirculating mux.
};

/// Printable mnemonic, e.g. "AND".
std::string_view to_string(GateType t);

/// True for Input/Const0/Const1 (gates with no logic fanin).
constexpr bool is_source(GateType t) {
  return t == GateType::Input || t == GateType::Const0 || t == GateType::Const1;
}

/// Legal fanin-count range per gate type (gate_max_arity returns SIZE_MAX
/// for the unbounded n-ary gates).  Shared by add_gate, the invariant
/// checker (validate.hpp) and the fault-injection harness.
std::size_t gate_min_arity(GateType t);
std::size_t gate_max_arity(GateType t);

/// Evaluate one gate over 64 parallel bit patterns.  Dff is evaluated as a
/// buffer (the timed semantics live in the simulator).
std::uint64_t eval_gate(GateType t, std::span<const std::uint64_t> fanin_words);

/// Evaluate one gate over scalar booleans.
bool eval_gate_scalar(GateType t, std::span<const bool> fanins);

struct Node {
  GateType type = GateType::Input;
  std::vector<NodeId> fanins;
  std::vector<NodeId> fanouts;  // maintained by Netlist mutators
  std::string name;             // unique when non-empty
  double size = 1.0;            // relative drive strength (transistor sizing)
  int delay = 1;                // gate delay in integer time units
  bool init_value = false;      // Dff reset state
  bool dead = false;            // tombstone after remove()
};

/// A gate-level Boolean network with named PIs and POs.
///
/// Invariants (checked by check()):
///  - fanin counts match gate arity rules above;
///  - fanin/fanout cross-references are consistent;
///  - the combinational part (ignoring Dff Q->D closure) is acyclic;
///  - no live node references a dead node.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // Copies never carry the mutation journal; assignment onto a journaled
  // netlist records a wholesale pre-image first (so `net = strash(net)`
  // remains rollback-able).  See the mutation-journal section below.
  Netlist(const Netlist& o);
  Netlist(Netlist&& o) noexcept = default;
  Netlist& operator=(const Netlist& o);
  Netlist& operator=(Netlist&& o);

  const std::string& name() const { return name_; }
  void set_name(std::string n) {
    touch_io();
    name_ = std::move(n);
  }

  // ---- construction -------------------------------------------------------
  NodeId add_input(std::string name);
  NodeId add_const(bool value);
  NodeId add_gate(GateType t, std::vector<NodeId> fanins, std::string name = {});
  NodeId add_dff(NodeId d, bool init = false, std::string name = {});
  /// Attach a load-enable pin to a plain Dff (EN=1 loads, EN=0 holds).
  void set_dff_enable(NodeId dff, NodeId enable);
  /// True when the Dff has a load-enable pin.
  bool dff_has_enable(NodeId dff) const {
    return nodes_[dff].type == GateType::Dff && nodes_[dff].fanins.size() == 2;
  }
  /// Mark an existing node as a primary output (a node may drive several
  /// outputs under different names).
  void add_output(NodeId n, std::string name = {});

  // Convenience builders for 2-input logic.
  NodeId add_and(NodeId a, NodeId b) { return add_gate(GateType::And, {a, b}); }
  NodeId add_or(NodeId a, NodeId b) { return add_gate(GateType::Or, {a, b}); }
  NodeId add_xor(NodeId a, NodeId b) { return add_gate(GateType::Xor, {a, b}); }
  NodeId add_xnor(NodeId a, NodeId b) { return add_gate(GateType::Xnor, {a, b}); }
  NodeId add_nand(NodeId a, NodeId b) { return add_gate(GateType::Nand, {a, b}); }
  NodeId add_nor(NodeId a, NodeId b) { return add_gate(GateType::Nor, {a, b}); }
  NodeId add_not(NodeId a) { return add_gate(GateType::Not, {a}); }
  NodeId add_buf(NodeId a) { return add_gate(GateType::Buf, {a}); }
  NodeId add_mux(NodeId s, NodeId a, NodeId b) {
    return add_gate(GateType::Mux, {s, a, b});
  }

  // ---- access -------------------------------------------------------------
  std::size_t size() const { return nodes_.size(); }  // includes tombstones
  const Node& node(NodeId n) const { return nodes_[n]; }
  /// Mutable access journals the node's pre-image when an undo log is
  /// active (passes edit size/delay/init through this reference).
  Node& node(NodeId n) {
    touch_node(n);
    return nodes_[n];
  }
  bool is_dead(NodeId n) const { return nodes_[n].dead; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<std::string>& output_names() const { return output_names_; }
  std::vector<NodeId> dffs() const;

  /// Number of live (non-tombstone) nodes.
  std::size_t num_live() const;
  /// Live nodes that are neither sources nor Dffs (i.e. logic gates).
  std::size_t num_gates() const;
  /// Total literal count (sum of fanin counts over live logic gates).
  std::size_t num_literals() const;

  std::optional<NodeId> find(std::string_view name) const;

  // ---- mutation -----------------------------------------------------------
  /// Redirect every use of `old_node` (fanins of other gates and POs) to
  /// `new_node`, then remove `old_node`.
  void substitute(NodeId old_node, NodeId new_node);
  /// Replace one fanin slot: node n's fanin at position k becomes `nf`.
  void replace_fanin(NodeId n, std::size_t k, NodeId nf);
  /// Remove a node with no fanouts and no PO reference.
  void remove(NodeId n);
  /// Remove all dead logic: gates with no path to a PO or a Dff input.
  std::size_t sweep();
  /// Renumber nodes to eliminate tombstones.  Returns old->new id map.
  std::vector<NodeId> compact();

  // ---- analysis -----------------------------------------------------------
  /// Topological order over live nodes; Dffs are treated as sources (their
  /// D-input closes the cycle and is not followed).
  std::vector<NodeId> topo_order() const;
  /// level[n] = longest path (in gate counts, Dff/PI = 0) from any source.
  std::vector<int> levels() const;
  /// arrival[n] = longest path in *delay units* using Node::delay.
  std::vector<int> arrival_times() const;
  /// required[n] given each PO required at `deadline` (default: critical
  /// arrival).  slack = required - arrival.
  std::vector<int> required_times(int deadline = -1) const;
  /// Critical (max) arrival time over POs and Dff D inputs.
  int critical_delay() const;
  /// Transitive fanin cone of `roots`, as a node mask.
  std::vector<bool> cone_of(std::span<const NodeId> roots) const;
  /// Transitive fanout cone of `roots` (the nodes whose value can change
  /// when a root changes), as a node mask.  Registers reached through their
  /// D or EN pins are included; with `through_dffs` the traversal continues
  /// past them (their Q changes in later cycles), which is the dirty set an
  /// incremental re-estimator must re-simulate on a sequential netlist.
  std::vector<bool> fanout_cone_of(std::span<const NodeId> roots,
                                   bool through_dffs = false) const;

  /// Validate invariants; returns an error description or empty string.
  /// The full checker (every violation as a positioned diagnostic, cycle
  /// membership reporting) lives in netlist/validate.hpp; this is the
  /// first-error convenience used by assertions and the pass manager.
  std::string check() const;

  /// Deep structural clone.
  Netlist clone() const;

  // ---- mutation journal ---------------------------------------------------
  // Alternative to cloning the whole netlist for rollback: begin_undo()
  // starts recording pre-images of everything a pass touches — node
  // pre-images on first write (copy-on-touch, one per node), the PI/PO
  // lists on first change, or a single wholesale pre-image when the pass
  // replaces the network outright (assignment, compact()).  rollback_undo()
  // restores the exact begin_undo() state; commit_undo() drops the log.
  // Cost scales with the pass's edit size, not the circuit size.
  //
  // Epochs nest: begin_undo() inside an active log opens an inner epoch.
  // Mutations journal into the innermost epoch only; commit_undo() merges
  // the inner epoch's pre-images into its parent (entries the parent
  // already holds an older image for are dropped, as are entries for nodes
  // the parent will discard by truncation), and rollback_undo() restores
  // exactly the innermost begin_undo() point, leaving outer epochs armed.
  // This is what lets a rewrite engine try one candidate at a time inside
  // a flow stage's all-or-nothing journal: candidate epochs commit or roll
  // back individually while the stage epoch still covers the whole batch.

  void begin_undo();
  /// Keep the innermost epoch's changes: merge its journal into the parent
  /// epoch, or discard it when it is the outermost.
  void commit_undo();
  /// Restore the exact state captured by the innermost begin_undo();
  /// discards that epoch (outer epochs stay armed).
  void rollback_undo();
  bool undo_active() const { return !undo_.empty(); }
  /// Nesting depth of active epochs.
  std::size_t undo_depth() const { return undo_.size(); }
  /// Node pre-images recorded in the innermost epoch (diagnostic hook).
  std::size_t undo_entries() const {
    return undo_.empty() ? 0 : undo_.back()->node_images.size();
  }
  /// Total rollback_undo() calls on this netlist — the journal's own count
  /// of epochs actually rewound, which flow/stage accounting is audited
  /// against (a "reverted" or "failed" stage report must correspond to a
  /// real rewind, and "kept" must not).
  std::size_t undo_rollbacks() const { return undo_rollbacks_; }

  /// The set of nodes the innermost active epoch has seen change: journaled
  /// pre-images plus every node created after its begin_undo().  `all` is set
  /// when per-node attribution is impossible — no journal is active, a
  /// wholesale pre-image was recorded (assignment, compact()), or the
  /// primary-input list changed (input positions feed the simulators, so
  /// nothing can be scoped).  PO-list-only changes keep `all` false: they
  /// redirect observation, not simulated values.  Consumed by the
  /// incremental power analyzer (power/incremental.hpp) to scope
  /// re-simulation to the dirty fanout cone.
  struct TouchedNodes {
    bool all = false;
    std::vector<NodeId> ids;  // ascending, unique; empty when all
    /// The subset of `ids` whose *value stream* may actually have changed:
    /// the journaled pre-image differs in type, fanins, init_value or
    /// liveness, or the node was created this epoch.  A node touched only
    /// for a fanout-list, size, delay or name edit keeps its simulated
    /// values bit-for-bit, so it seeds no re-simulation cone — this is what
    /// lets a sizing pass (size-only edits across the whole netlist)
    /// re-estimate without re-simulating a single node.
    std::vector<NodeId> value_roots;  // ascending, unique; subset of ids
  };
  TouchedNodes touched_nodes() const;

 private:
  struct UndoLog {
    std::size_t base_nodes = 0;            // nodes_.size() at begin_undo
    std::vector<char> dirty;               // per pre-existing node: journaled?
    std::vector<std::pair<NodeId, Node>> node_images;
    bool io_saved = false;                 // PI/PO lists + name journaled?
    std::vector<NodeId> inputs;
    std::vector<NodeId> outputs;
    std::vector<std::string> output_names;
    std::string name;
    bool full_saved = false;               // wholesale pre-image journaled?
    std::vector<Node> full_nodes;
    std::vector<NodeId> full_inputs;
    std::vector<NodeId> full_outputs;
    std::vector<std::string> full_output_names;
    std::string full_name;
  };

  /// Journal node n's pre-image on its first mutation in the innermost
  /// epoch (no-op for nodes created after that epoch's begin_undo, or once
  /// it holds a wholesale pre-image).  Outer epochs need no entry: a
  /// commit merges the image down, a rollback restores it.
  void touch_node(NodeId n) {
    if (undo_.empty()) return;
    UndoLog& u = *undo_.back();
    if (u.full_saved) return;
    if (n >= u.base_nodes || u.dirty[n]) return;
    u.dirty[n] = 1;
    u.node_images.emplace_back(n, nodes_[n]);
  }
  void touch_io();   // journal PI/PO lists + name on first change
  void touch_all();  // journal a wholesale pre-image (assignment, compact)

  void link_fanin(NodeId user, NodeId used);
  void unlink_fanin(NodeId user, NodeId used);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<std::string> output_names_;
  std::vector<std::unique_ptr<UndoLog>> undo_;  // epoch stack; back() is innermost
  std::size_t undo_rollbacks_ = 0;
};

/// Structural hashing: rebuilds the network bottom-up, merging structurally
/// identical gates (same type + same fanin list after canonical sorting of
/// commutative inputs) and folding constants.  Returns the hashed copy.
Netlist strash(const Netlist& n);

/// 64-bit structural fingerprint of the live network.  Nodes are assigned
/// canonical ids by topological position, so the digest is invariant under
/// tombstones, node renumbering (compact()) and names — but sensitive to
/// everything simulation and power care about: gate types, fanin wiring,
/// register init values and enables, sizes, delays, and the PI/PO lists in
/// order.  Two netlists with equal hashes are structurally identical up to
/// a ~2^-64 collision.  The service layer keys sessions and verifies
/// crash-recovery journal replay with it.
std::uint64_t structural_hash(const Netlist& n);

/// Human-readable dump for debugging.
std::ostream& operator<<(std::ostream& os, const Netlist& n);

}  // namespace lps
