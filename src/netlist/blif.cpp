#include "netlist/blif.hpp"

#include <bit>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "netlist/validate.hpp"

namespace lps::blif {

namespace {

struct NamesTable {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::string> cubes;    // input masks, one per row
  std::vector<char> out_values;
  int line = 0;  // line of the .names declaration
};

struct LatchDecl {
  std::string input, output;
  bool init = false;
  int line = 0;
};

// Tokenize one logical line (with '\' continuations already folded).
std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

bool valid_mask(const std::string& m, std::size_t* bad_pos) {
  for (std::size_t i = 0; i < m.size(); ++i)
    if (m[i] != '0' && m[i] != '1' && m[i] != '-') {
      *bad_pos = i;
      return false;
    }
  return true;
}

}  // namespace

std::optional<Netlist> parse(std::istream& is, diag::DiagEngine& eng,
                             const std::string& filename) {
  std::string model = "blif";
  std::vector<std::pair<std::string, int>> inputs, outputs;  // name, line
  std::vector<NamesTable> tables;
  std::vector<LatchDecl> latches;

  std::string raw, line;
  int lineno = 0, first_lineno = 0;
  bool saw_anything = false, saw_end = false;
  NamesTable* open_table = nullptr;
  auto loc = [&](int col = 0) {
    return diag::SourceLoc{filename, first_lineno, col};
  };

  // ---- scan phase: collect declarations, diagnose malformed lines --------
  bool more = true;
  while (more) {
    more = static_cast<bool>(std::getline(is, raw));
    if (more) {
      ++lineno;
      // Strip comments, fold continuations.
      if (auto p = raw.find('#'); p != std::string::npos) raw.resize(p);
      if (line.empty()) first_lineno = lineno;
      line += raw;
      if (!line.empty() && line.back() == '\\') {
        line.pop_back();
        continue;  // folded into the next physical line
      }
    } else if (line.empty()) {
      break;  // EOF with nothing pending
    }
    auto toks = split(line);
    line.clear();
    if (toks.empty()) continue;
    saw_anything = true;

    const std::string& kw = toks[0];
    if (kw == ".model") {
      if (toks.size() >= 2) model = toks[1];
      open_table = nullptr;
    } else if (kw == ".inputs") {
      for (std::size_t k = 1; k < toks.size(); ++k)
        inputs.emplace_back(toks[k], first_lineno);
      open_table = nullptr;
    } else if (kw == ".outputs") {
      for (std::size_t k = 1; k < toks.size(); ++k)
        outputs.emplace_back(toks[k], first_lineno);
      open_table = nullptr;
    } else if (kw == ".names") {
      open_table = nullptr;
      if (toks.size() < 2) {
        eng.error(".names needs at least an output signal", loc());
        continue;
      }
      tables.emplace_back();
      tables.back().signals.assign(toks.begin() + 1, toks.end());
      tables.back().line = first_lineno;
      open_table = &tables.back();
    } else if (kw == ".latch") {
      open_table = nullptr;
      if (toks.size() < 3) {
        eng.error(".latch needs input and output signals", loc());
        continue;
      }
      LatchDecl l;
      l.input = toks[1];
      l.output = toks[2];
      l.line = first_lineno;
      // Optional: [type] [control] [init]; init is the last numeric token.
      if (toks.size() > 3) {
        const std::string& last = toks.back();
        if (last == "1")
          l.init = true;
        else if (last != "0" && last != "2" && last != "3" &&
                 toks.size() == 4)
          eng.warning(".latch init value \"" + last +
                          "\" is not 0/1/2/3; treating as 0",
                      loc());
      }
      latches.push_back(std::move(l));
    } else if (kw == ".end") {
      saw_end = true;
      break;
    } else if (kw[0] == '.') {
      open_table = nullptr;  // ignore .clock, .exdc etc.
    } else {
      // Cube row inside an open .names.
      if (!open_table) {
        eng.error("table row \"" + kw + "\" outside any .names", loc());
        continue;
      }
      std::size_t nin = open_table->signals.size() - 1;
      std::size_t bad = 0;
      if (nin == 0) {
        if (toks.size() != 1 || (toks[0] != "0" && toks[0] != "1")) {
          eng.error("constant table row must be a single 0 or 1", loc());
          continue;
        }
        open_table->cubes.push_back("");
        open_table->out_values.push_back(toks[0][0]);
      } else {
        if (toks.size() != 2) {
          eng.error("cube row must be <input-mask> <output-value>, got " +
                        std::to_string(toks.size()) + " tokens",
                    loc());
          continue;
        }
        if (toks[0].size() != nin) {
          eng.error("cube width mismatch: mask \"" + toks[0] + "\" has " +
                        std::to_string(toks[0].size()) + " columns, .names \"" +
                        open_table->signals.back() + "\" has " +
                        std::to_string(nin) + " inputs",
                    loc());
          continue;
        }
        if (!valid_mask(toks[0], &bad)) {
          eng.error("bad cube character '" +
                        std::string(1, toks[0][bad]) +
                        "' (expected 0/1/-)",
                    loc(static_cast<int>(bad + 1)));
          continue;
        }
        if (toks[1] != "0" && toks[1] != "1") {
          eng.error("cube output value must be 0 or 1, got \"" + toks[1] +
                        "\"",
                    loc(static_cast<int>(toks[0].size() + 2)));
          continue;
        }
        open_table->cubes.push_back(toks[0]);
        open_table->out_values.push_back(toks[1][0]);
      }
    }
  }

  if (!saw_anything) {
    eng.error("empty input: no BLIF constructs found",
              diag::SourceLoc{filename, 0, 0});
    return std::nullopt;
  }
  if (!saw_end)
    eng.warning("missing .end (input truncated?)",
                diag::SourceLoc{filename, lineno, 0});

  // ---- declaration consistency -------------------------------------------
  // Each signal may be defined exactly once: as a PI, a latch output, or a
  // .names output.  Duplicate drivers are the classic silent-corruption bug
  // this parser used to have (last definition quietly won).
  std::map<std::string, int> def_line;  // signal -> first definition line
  auto define = [&](const std::string& name, int at, const char* what) {
    auto [it, fresh] = def_line.emplace(name, at);
    if (!fresh)
      eng.error(std::string("signal \"") + name + "\" redefined as " + what +
                    " (first defined at line " + std::to_string(it->second) +
                    ")",
                diag::SourceLoc{filename, at, 0});
  };
  for (const auto& [name, at] : inputs) define(name, at, "a primary input");
  for (const auto& l : latches) define(l.output, l.line, "a latch output");
  for (const auto& t : tables)
    define(t.signals.back(), t.line, "a .names output");

  for (const auto& t : tables) {
    // Mixed on-set/off-set rows within one table are ambiguous.
    for (std::size_t r = 1; r < t.out_values.size(); ++r)
      if (t.out_values[r] != t.out_values[0]) {
        eng.error("table for \"" + t.signals.back() +
                      "\" mixes output values 0 and 1 across rows",
                  diag::SourceLoc{filename, t.line, 0});
        break;
      }
    // Undefined table inputs.
    for (std::size_t i = 0; i + 1 < t.signals.size(); ++i)
      if (!def_line.count(t.signals[i]))
        eng.error("table for \"" + t.signals.back() +
                      "\" reads undefined signal \"" + t.signals[i] + "\"",
                  diag::SourceLoc{filename, t.line, 0});
  }
  for (const auto& l : latches)
    if (!def_line.count(l.input))
      eng.error("latch \"" + l.output + "\" reads undefined signal \"" +
                    l.input + "\"",
                diag::SourceLoc{filename, l.line, 0});
  {
    std::set<std::string> seen_outputs;
    for (const auto& [name, at] : outputs) {
      if (!def_line.count(name))
        eng.error("primary output \"" + name + "\" is never defined",
                  diag::SourceLoc{filename, at, 0});
      if (!seen_outputs.insert(name).second)
        eng.error("primary output \"" + name + "\" listed twice",
                  diag::SourceLoc{filename, at, 0});
    }
  }
  if (!eng.ok()) return std::nullopt;

  // ---- build phase --------------------------------------------------------
  Netlist n(model);
  std::map<std::string, NodeId> sig;
  for (const auto& [name, at] : inputs) sig[name] = n.add_input(name);

  // Pre-create latch outputs so logic can reference them; D patched later.
  NodeId scratch = kNoNode;
  auto get_scratch = [&]() {
    if (scratch == kNoNode) scratch = n.add_const(false);
    return scratch;
  };
  for (const auto& l : latches)
    sig[l.output] = n.add_dff(get_scratch(), l.init, l.output);

  // Build tables in dependency order (iterate until all resolved).  Each
  // sweep resolves at least one table or stops, so this terminates in at
  // most tables² steps even on adversarial input.
  std::vector<bool> done(tables.size(), false);
  std::size_t remaining = tables.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t t = 0; t < tables.size(); ++t) {
      if (done[t]) continue;
      const NamesTable& tab = tables[t];
      std::size_t nin = tab.signals.size() - 1;
      bool ready = true;
      for (std::size_t i = 0; i < nin; ++i)
        if (!sig.count(tab.signals[i])) {
          ready = false;
          break;
        }
      if (!ready) continue;

      bool on_set = tab.out_values.empty() || tab.out_values[0] == '1';
      std::vector<NodeId> or_terms;
      for (const auto& cube : tab.cubes) {
        std::vector<NodeId> and_terms;
        for (std::size_t i = 0; i < cube.size(); ++i) {
          if (cube[i] == '-') continue;
          NodeId s = sig.at(tab.signals[i]);
          and_terms.push_back(cube[i] == '1' ? s : n.add_not(s));
        }
        if (and_terms.empty())
          or_terms.push_back(n.add_const(true));
        else if (and_terms.size() == 1)
          or_terms.push_back(and_terms[0]);
        else
          or_terms.push_back(n.add_gate(GateType::And, std::move(and_terms)));
      }
      NodeId out;
      if (or_terms.empty())
        out = n.add_const(false);  // empty table = constant 0
      else if (or_terms.size() == 1)
        out = or_terms[0];
      else
        out = n.add_gate(GateType::Or, std::move(or_terms));
      if (!on_set) out = n.add_not(out);
      const std::string& oname = tab.signals.back();
      if (n.node(out).name.empty() && n.node(out).type != GateType::Input)
        n.node(out).name = oname;
      sig[oname] = out;
      done[t] = true;
      --remaining;
      progress = true;
    }
    if (!progress) {
      // Every unresolved table is part of (or downstream of) a dependency
      // cycle; name the participants instead of a bare failure.
      std::string members;
      int at = 0;
      for (std::size_t t = 0; t < tables.size(); ++t) {
        if (done[t]) continue;
        if (!members.empty()) members += ", ";
        members += '"' + tables[t].signals.back() + "\" (line " +
                   std::to_string(tables[t].line) + ')';
        if (at == 0) at = tables[t].line;
      }
      eng.error("combinational dependency cycle among .names tables: " +
                    members,
                diag::SourceLoc{filename, at, 0});
      return std::nullopt;
    }
  }

  // Patch latch D inputs (input signals validated above).
  for (const auto& l : latches)
    n.replace_fanin(sig.at(l.output), 0, sig.at(l.input));
  for (const auto& [name, at] : outputs) n.add_output(sig.at(name), name);
  n.sweep();

  // Defensive: anything the checks above missed must not escape as a
  // structurally-invalid netlist.
  if (std::size_t bad = validate(n, eng); bad > 0) return std::nullopt;
  return n;
}

std::optional<Netlist> parse_string(const std::string& text,
                                    diag::DiagEngine& eng,
                                    const std::string& filename) {
  std::istringstream is(text);
  return parse(is, eng, filename);
}

Netlist read(std::istream& is) {
  diag::DiagEngine eng(8);
  auto n = parse(is, eng, "blif");
  if (!n) {
    const diag::Diagnostic* d = eng.first_error();
    throw diag::ParseError(d ? *d
                             : diag::Diagnostic{diag::Severity::Error,
                                                "parse failed",
                                                {}});
  }
  return std::move(*n);
}

Netlist read_string(const std::string& text) {
  std::istringstream is(text);
  return read(is);
}

Netlist read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw diag::ParseError(diag::Diagnostic{
        diag::Severity::Error, "cannot open " + path, {path, 0, 0}});
  diag::DiagEngine eng(8);
  auto n = parse(f, eng, path);
  if (!n) {
    const diag::Diagnostic* d = eng.first_error();
    throw diag::ParseError(d ? *d
                             : diag::Diagnostic{diag::Severity::Error,
                                                "parse failed",
                                                {path, 0, 0}});
  }
  return std::move(*n);
}

namespace {

std::string node_ref(const Netlist& n, NodeId id) {
  const Node& nd = n.node(id);
  if (!nd.name.empty()) return nd.name;
  // Generated fallback names must not collide with an *explicit* name of a
  // different node, or the emitted file redefines that signal and fails to
  // re-parse (write -> parse -> write round trips hit this whenever a parse
  // assigned "n<k>" names and a later edit renumbered the nodes).
  std::string ref = "n" + std::to_string(id);
  while (true) {
    auto other = n.find(ref);
    if (!other || *other == id) return ref;
    ref += "_";
  }
}

}  // namespace

void write(std::ostream& os, const Netlist& n) {
  os << ".model " << (n.name().empty() ? "lps" : n.name()) << "\n.inputs";
  for (NodeId i : n.inputs()) os << ' ' << node_ref(n, i);
  os << "\n.outputs";
  for (const auto& name : n.output_names()) os << ' ' << name;
  os << '\n';
  for (NodeId d : n.dffs()) {
    const Node& nd = n.node(d);
    std::string din = node_ref(n, nd.fanins[0]);
    if (nd.fanins.size() == 2) {
      // Load-enabled register: emit the hold mux explicitly, since BLIF
      // latches have no enable pin.  next = EN ? D : Q.
      std::string mux = node_ref(n, d) + "_le";
      os << ".names " << node_ref(n, nd.fanins[1]) << ' ' << din << ' '
         << node_ref(n, d) << ' ' << mux << "\n11- 1\n0-1 1\n";
      din = mux;
    }
    os << ".latch " << din << ' ' << node_ref(n, d) << ' '
       << (nd.init_value ? 1 : 0) << '\n';
  }

  for (NodeId id : n.topo_order()) {
    const Node& nd = n.node(id);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    os << ".names";
    for (NodeId f : nd.fanins) os << ' ' << node_ref(n, f);
    os << ' ' << node_ref(n, id) << '\n';
    std::size_t k = nd.fanins.size();
    switch (nd.type) {
      case GateType::Buf:
        os << "1 1\n";
        break;
      case GateType::Not:
        os << "0 1\n";
        break;
      case GateType::And:
        os << std::string(k, '1') << " 1\n";
        break;
      case GateType::Nand:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '0';
          os << row << " 1\n";
        }
        break;
      case GateType::Or:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '1';
          os << row << " 1\n";
        }
        break;
      case GateType::Nor:
        os << std::string(k, '0') << " 1\n";
        break;
      case GateType::Xor:
      case GateType::Xnor: {
        // Enumerate minterms with the right parity (fanin counts are small).
        bool want_odd = nd.type == GateType::Xor;
        for (std::size_t m = 0; m < (1ull << k); ++m) {
          bool odd = (std::popcount(m) % 2) == 1;
          if (odd != want_odd) continue;
          std::string row(k, '0');
          for (std::size_t b = 0; b < k; ++b)
            if (m >> b & 1) row[b] = '1';
          os << row << " 1\n";
        }
        break;
      }
      case GateType::Mux:
        os << "01- 1\n"
           << "1-1 1\n";
        break;
      default:
        break;
    }
  }
  // Constants referenced by outputs or as latch inputs.
  for (NodeId id : n.topo_order()) {
    const Node& nd = n.node(id);
    if (nd.type == GateType::Const1)
      os << ".names " << node_ref(n, id) << "\n1\n";
    else if (nd.type == GateType::Const0)
      os << ".names " << node_ref(n, id) << "\n";
  }
  // Outputs that alias internal signals with a different name.
  const auto& outs = n.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (n.output_names()[i] != node_ref(n, outs[i]))
      os << ".names " << node_ref(n, outs[i]) << ' ' << n.output_names()[i]
         << "\n1 1\n";
  }
  os << ".end\n";
}

std::string write_string(const Netlist& n) {
  std::ostringstream os;
  write(os, n);
  return os.str();
}

}  // namespace lps::blif
