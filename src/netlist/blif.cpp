#include "netlist/blif.hpp"

#include <bit>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lps::blif {

namespace {

struct NamesTable {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::string> cubes;    // rows "01-" with output value appended
  std::vector<char> out_values;
};

struct LatchDecl {
  std::string input, output;
  bool init = false;
};

// Tokenize one logical line (with '\' continuations already folded).
std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

}  // namespace

Netlist read(std::istream& is) {
  std::string model = "blif";
  std::vector<std::string> inputs, outputs;
  std::vector<NamesTable> tables;
  std::vector<LatchDecl> latches;

  std::string raw, line;
  int lineno = 0;
  NamesTable* open_table = nullptr;
  auto fail = [&](const std::string& msg) {
    throw std::runtime_error("blif line " + std::to_string(lineno) + ": " +
                             msg);
  };

  while (std::getline(is, raw)) {
    ++lineno;
    // Strip comments, fold continuations.
    if (auto p = raw.find('#'); p != std::string::npos) raw.resize(p);
    line += raw;
    if (!line.empty() && line.back() == '\\') {
      line.pop_back();
      continue;
    }
    auto toks = split(line);
    line.clear();
    if (toks.empty()) continue;

    const std::string& kw = toks[0];
    if (kw == ".model") {
      if (toks.size() >= 2) model = toks[1];
      open_table = nullptr;
    } else if (kw == ".inputs") {
      inputs.insert(inputs.end(), toks.begin() + 1, toks.end());
      open_table = nullptr;
    } else if (kw == ".outputs") {
      outputs.insert(outputs.end(), toks.begin() + 1, toks.end());
      open_table = nullptr;
    } else if (kw == ".names") {
      if (toks.size() < 2) fail(".names needs at least an output");
      tables.emplace_back();
      tables.back().signals.assign(toks.begin() + 1, toks.end());
      open_table = &tables.back();
    } else if (kw == ".latch") {
      if (toks.size() < 3) fail(".latch needs input and output");
      LatchDecl l;
      l.input = toks[1];
      l.output = toks[2];
      // Optional: [type] [control] [init]; init is the last numeric token.
      if (toks.size() > 3) {
        const std::string& last = toks.back();
        if (last == "1") l.init = true;
      }
      latches.push_back(std::move(l));
      open_table = nullptr;
    } else if (kw == ".end") {
      break;
    } else if (kw[0] == '.') {
      open_table = nullptr;  // ignore .clock, .exdc etc.
    } else {
      // Cube row inside an open .names.
      if (!open_table) fail("cube row outside .names");
      std::size_t nin = open_table->signals.size() - 1;
      if (nin == 0) {
        if (toks.size() != 1 || (toks[0] != "0" && toks[0] != "1"))
          fail("constant table row must be 0 or 1");
        open_table->cubes.push_back("");
        open_table->out_values.push_back(toks[0][0]);
      } else {
        if (toks.size() != 2) fail("cube row must be <mask> <value>");
        if (toks[0].size() != nin) fail("cube width mismatch");
        open_table->cubes.push_back(toks[0]);
        open_table->out_values.push_back(toks[1][0]);
      }
    }
  }

  Netlist n(model);
  std::map<std::string, NodeId> sig;
  for (const auto& name : inputs) sig[name] = n.add_input(name);

  // Pre-create latch outputs so logic can reference them; D patched later.
  NodeId scratch = kNoNode;
  auto get_scratch = [&]() {
    if (scratch == kNoNode) scratch = n.add_const(false);
    return scratch;
  };
  for (const auto& l : latches) sig[l.output] = n.add_dff(get_scratch(), l.init, l.output);

  // Build tables in dependency order (iterate until all resolved).
  std::vector<bool> done(tables.size(), false);
  std::size_t remaining = tables.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t t = 0; t < tables.size(); ++t) {
      if (done[t]) continue;
      const NamesTable& tab = tables[t];
      std::size_t nin = tab.signals.size() - 1;
      bool ready = true;
      for (std::size_t i = 0; i < nin; ++i)
        if (!sig.count(tab.signals[i])) {
          ready = false;
          break;
        }
      if (!ready) continue;

      // All rows must share the same output value in valid BLIF.
      bool on_set = tab.out_values.empty() || tab.out_values[0] == '1';
      std::vector<NodeId> or_terms;
      for (const auto& cube : tab.cubes) {
        std::vector<NodeId> and_terms;
        for (std::size_t i = 0; i < cube.size(); ++i) {
          if (cube[i] == '-') continue;
          NodeId s = sig.at(tab.signals[i]);
          and_terms.push_back(cube[i] == '1' ? s : n.add_not(s));
        }
        if (and_terms.empty())
          or_terms.push_back(n.add_const(true));
        else if (and_terms.size() == 1)
          or_terms.push_back(and_terms[0]);
        else
          or_terms.push_back(n.add_gate(GateType::And, std::move(and_terms)));
      }
      NodeId out;
      if (or_terms.empty())
        out = n.add_const(false);  // empty table = constant 0
      else if (or_terms.size() == 1)
        out = or_terms[0];
      else
        out = n.add_gate(GateType::Or, std::move(or_terms));
      if (!on_set) out = n.add_not(out);
      const std::string& oname = tab.signals.back();
      if (n.node(out).name.empty() && n.node(out).type != GateType::Input)
        n.node(out).name = oname;
      sig[oname] = out;
      done[t] = true;
      --remaining;
      progress = true;
    }
    if (!progress)
      throw std::runtime_error("blif: unresolved signal dependency cycle");
  }

  // Patch latch D inputs.
  for (const auto& l : latches) {
    auto it = sig.find(l.input);
    if (it == sig.end())
      throw std::runtime_error("blif: latch input " + l.input + " undefined");
    n.replace_fanin(sig.at(l.output), 0, it->second);
  }
  for (const auto& o : outputs) {
    auto it = sig.find(o);
    if (it == sig.end()) throw std::runtime_error("blif: output " + o +
                                                  " undefined");
    n.add_output(it->second, o);
  }
  n.sweep();
  return n;
}

Netlist read_string(const std::string& text) {
  std::istringstream is(text);
  return read(is);
}

Netlist read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("blif: cannot open " + path);
  return read(f);
}

namespace {

std::string node_ref(const Netlist& n, NodeId id) {
  const Node& nd = n.node(id);
  if (!nd.name.empty()) return nd.name;
  return "n" + std::to_string(id);
}

}  // namespace

void write(std::ostream& os, const Netlist& n) {
  os << ".model " << (n.name().empty() ? "lps" : n.name()) << "\n.inputs";
  for (NodeId i : n.inputs()) os << ' ' << node_ref(n, i);
  os << "\n.outputs";
  for (const auto& name : n.output_names()) os << ' ' << name;
  os << '\n';
  for (NodeId d : n.dffs()) {
    const Node& nd = n.node(d);
    std::string din = node_ref(n, nd.fanins[0]);
    if (nd.fanins.size() == 2) {
      // Load-enabled register: emit the hold mux explicitly, since BLIF
      // latches have no enable pin.  next = EN ? D : Q.
      std::string mux = node_ref(n, d) + "_le";
      os << ".names " << node_ref(n, nd.fanins[1]) << ' ' << din << ' '
         << node_ref(n, d) << ' ' << mux << "\n11- 1\n0-1 1\n";
      din = mux;
    }
    os << ".latch " << din << ' ' << node_ref(n, d) << ' '
       << (nd.init_value ? 1 : 0) << '\n';
  }

  for (NodeId id : n.topo_order()) {
    const Node& nd = n.node(id);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    os << ".names";
    for (NodeId f : nd.fanins) os << ' ' << node_ref(n, f);
    os << ' ' << node_ref(n, id) << '\n';
    std::size_t k = nd.fanins.size();
    switch (nd.type) {
      case GateType::Buf:
        os << "1 1\n";
        break;
      case GateType::Not:
        os << "0 1\n";
        break;
      case GateType::And:
        os << std::string(k, '1') << " 1\n";
        break;
      case GateType::Nand:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '0';
          os << row << " 1\n";
        }
        break;
      case GateType::Or:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '1';
          os << row << " 1\n";
        }
        break;
      case GateType::Nor:
        os << std::string(k, '0') << " 1\n";
        break;
      case GateType::Xor:
      case GateType::Xnor: {
        // Enumerate minterms with the right parity (fanin counts are small).
        bool want_odd = nd.type == GateType::Xor;
        for (std::size_t m = 0; m < (1ull << k); ++m) {
          bool odd = (std::popcount(m) % 2) == 1;
          if (odd != want_odd) continue;
          std::string row(k, '0');
          for (std::size_t b = 0; b < k; ++b)
            if (m >> b & 1) row[b] = '1';
          os << row << " 1\n";
        }
        break;
      }
      case GateType::Mux:
        os << "01- 1\n"
           << "1-1 1\n";
        break;
      default:
        break;
    }
  }
  // Constants referenced by outputs or as latch inputs.
  for (NodeId id : n.topo_order()) {
    const Node& nd = n.node(id);
    if (nd.type == GateType::Const1)
      os << ".names " << node_ref(n, id) << "\n1\n";
    else if (nd.type == GateType::Const0)
      os << ".names " << node_ref(n, id) << "\n";
  }
  // Outputs that alias internal signals with a different name.
  const auto& outs = n.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (n.output_names()[i] != node_ref(n, outs[i]))
      os << ".names " << node_ref(n, outs[i]) << ' ' << n.output_names()[i]
         << "\n1 1\n";
  }
  os << ".end\n";
}

std::string write_string(const Netlist& n) {
  std::ostringstream os;
  write(os, n);
  return os.str();
}

}  // namespace lps::blif
