#include "netlist/benchmarks.hpp"

#include <random>
#include <stdexcept>

namespace lps::bench {

namespace {

std::vector<NodeId> add_bus(Netlist& n, const std::string& prefix, int width) {
  std::vector<NodeId> bus;
  bus.reserve(width);
  for (int i = 0; i < width; ++i)
    bus.push_back(n.add_input(prefix + std::to_string(i)));
  return bus;
}

// Full adder: returns {sum, carry}.
std::pair<NodeId, NodeId> full_adder(Netlist& n, NodeId a, NodeId b,
                                     NodeId c) {
  NodeId axb = n.add_xor(a, b);
  NodeId s = n.add_xor(axb, c);
  NodeId carry = n.add_or(n.add_and(a, b), n.add_and(axb, c));
  return {s, carry};
}

}  // namespace

Netlist c17() {
  Netlist n("c17");
  NodeId g1 = n.add_input("1");
  NodeId g2 = n.add_input("2");
  NodeId g3 = n.add_input("3");
  NodeId g6 = n.add_input("6");
  NodeId g7 = n.add_input("7");
  NodeId g10 = n.add_nand(g1, g3);
  NodeId g11 = n.add_nand(g3, g6);
  NodeId g16 = n.add_nand(g2, g11);
  NodeId g19 = n.add_nand(g11, g7);
  NodeId g22 = n.add_nand(g10, g16);
  NodeId g23 = n.add_nand(g16, g19);
  n.add_output(g22, "22");
  n.add_output(g23, "23");
  return n;
}

Netlist ripple_carry_adder(int w) {
  Netlist n("rca" + std::to_string(w));
  auto a = add_bus(n, "a", w);
  auto b = add_bus(n, "b", w);
  NodeId c = n.add_input("cin");
  for (int i = 0; i < w; ++i) {
    auto [s, co] = full_adder(n, a[i], b[i], c);
    n.add_output(s, "s" + std::to_string(i));
    c = co;
  }
  n.add_output(c, "cout");
  return n;
}

Netlist carry_select_adder(int w, int block) {
  if (block < 1) throw std::invalid_argument("carry_select_adder: block < 1");
  Netlist n("csa" + std::to_string(w));
  auto a = add_bus(n, "a", w);
  auto b = add_bus(n, "b", w);
  NodeId carry = n.add_input("cin");
  int lo = 0;
  while (lo < w) {
    int hi = std::min(lo + block, w);
    // Compute the block twice: once assuming carry-in 0, once 1.
    std::vector<NodeId> s0, s1;
    NodeId c0 = n.add_const(false), c1 = n.add_const(true);
    for (int i = lo; i < hi; ++i) {
      auto [x0, y0] = full_adder(n, a[i], b[i], c0);
      auto [x1, y1] = full_adder(n, a[i], b[i], c1);
      s0.push_back(x0);
      s1.push_back(x1);
      c0 = y0;
      c1 = y1;
    }
    for (int i = lo; i < hi; ++i)
      n.add_output(n.add_mux(carry, s0[i - lo], s1[i - lo]),
                   "s" + std::to_string(i));
    carry = n.add_mux(carry, c0, c1);
    lo = hi;
  }
  n.add_output(carry, "cout");
  return n;
}

Netlist array_multiplier(int w) {
  Netlist n("mult" + std::to_string(w));
  auto a = add_bus(n, "a", w);
  auto b = add_bus(n, "b", w);
  // Partial products pp[i][j] = a[j] & b[i].
  // Row-by-row carry-save reduction, final ripple for the top carries.
  std::vector<NodeId> row(w + 1, kNoNode);  // running sum, LSB-aligned per row
  NodeId zero = n.add_const(false);
  for (int i = 0; i <= w; ++i) row[i] = zero;
  std::vector<NodeId> product;
  std::vector<NodeId> sum(w, zero);
  std::vector<NodeId> carry(w, zero);
  for (int i = 0; i < w; ++i) {
    std::vector<NodeId> nsum(w, zero), ncarry(w, zero);
    for (int j = 0; j < w; ++j) {
      NodeId pp = n.add_and(a[j], b[i]);
      NodeId si = (j + 1 < w) ? sum[j + 1] : zero;
      auto [s, c] = full_adder(n, pp, si, carry[j]);
      nsum[j] = s;
      ncarry[j] = c;
    }
    product.push_back(nsum[0]);
    // shift: nsum[j] holds weight i+j; next row consumes nsum[j+1].
    sum = nsum;
    carry = ncarry;
  }
  // Final ripple over remaining sum/carry vectors.
  NodeId c = zero;
  for (int j = 1; j < w; ++j) {
    auto [s, co] = full_adder(n, sum[j], carry[j - 1], c);
    product.push_back(s);
    c = co;
  }
  auto [s_last, c_last] = full_adder(n, zero, carry[w - 1], c);
  product.push_back(s_last);
  (void)c_last;
  for (int k = 0; k < (int)product.size() && k < 2 * w; ++k)
    n.add_output(product[k], "p" + std::to_string(k));
  return n;
}

Netlist comparator_gt(int w) {
  Netlist n("cmp" + std::to_string(w));
  auto c = add_bus(n, "c", w);
  auto d = add_bus(n, "d", w);
  // MSB-first ripple: gt_i = gt_{i+1} OR (eq_{i+1} AND c_i AND NOT d_i)
  NodeId gt = n.add_const(false);
  NodeId eq = n.add_const(true);
  for (int i = w - 1; i >= 0; --i) {
    NodeId ci_gt_di = n.add_and(c[i], n.add_not(d[i]));
    gt = n.add_or(gt, n.add_and(eq, ci_gt_di));
    eq = n.add_and(eq, n.add_xnor(c[i], d[i]));
  }
  n.add_output(gt, "gt");
  return n;
}

Netlist parity_tree(int w, int radix) {
  if (radix < 2) radix = 2;
  Netlist n("parity" + std::to_string(w));
  std::vector<NodeId> level = add_bus(n, "x", w);
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < level.size(); i += radix) {
      std::vector<NodeId> grp(level.begin() + i,
                              level.begin() +
                                  std::min(i + radix, level.size()));
      next.push_back(grp.size() == 1
                         ? grp[0]
                         : n.add_gate(GateType::Xor, std::move(grp)));
    }
    level = std::move(next);
  }
  n.add_output(level[0], "parity");
  return n;
}

Netlist and_tree(int w) {
  Netlist n("andtree" + std::to_string(w));
  std::vector<NodeId> level = add_bus(n, "x", w);
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(n.add_and(level[i], level[i + 1]));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  n.add_output(level[0], "out");
  return n;
}

Netlist and_chain(int w) {
  Netlist n("andchain" + std::to_string(w));
  auto x = add_bus(n, "x", w);
  NodeId acc = x[0];
  for (int i = 1; i < w; ++i) acc = n.add_and(acc, x[i]);
  n.add_output(acc, "out");
  return n;
}

Netlist decoder(int w) {
  Netlist n("dec" + std::to_string(w));
  auto x = add_bus(n, "x", w);
  std::vector<NodeId> xn;
  for (NodeId b : x) xn.push_back(n.add_not(b));
  for (int m = 0; m < (1 << w); ++m) {
    std::vector<NodeId> terms;
    for (int b = 0; b < w; ++b) terms.push_back((m >> b & 1) ? x[b] : xn[b]);
    NodeId g = (terms.size() == 1)
                   ? terms[0]
                   : n.add_gate(GateType::And, std::move(terms));
    n.add_output(g, "y" + std::to_string(m));
  }
  return n;
}

Netlist alu(int w) {
  Netlist n("alu" + std::to_string(w));
  auto a = add_bus(n, "a", w);
  auto b = add_bus(n, "b", w);
  NodeId op0 = n.add_input("op0");
  NodeId op1 = n.add_input("op1");
  // ADD
  std::vector<NodeId> addv;
  NodeId c = n.add_const(false);
  for (int i = 0; i < w; ++i) {
    auto [s, co] = full_adder(n, a[i], b[i], c);
    addv.push_back(s);
    c = co;
  }
  for (int i = 0; i < w; ++i) {
    NodeId andv = n.add_and(a[i], b[i]);
    NodeId orv = n.add_or(a[i], b[i]);
    NodeId xorv = n.add_xor(a[i], b[i]);
    // op: 00=add 01=and 10=or 11=xor
    NodeId lo = n.add_mux(op0, addv[i], andv);
    NodeId hi = n.add_mux(op0, orv, xorv);
    n.add_output(n.add_mux(op1, lo, hi), "y" + std::to_string(i));
  }
  return n;
}

Netlist dct_butterfly(int w) {
  Netlist n("dct" + std::to_string(w));
  auto a = add_bus(n, "a", w);
  auto b = add_bus(n, "b", w);
  // Sum chain: plain ripple a+b.
  NodeId c = n.add_const(false);
  for (int i = 0; i < w; ++i) {
    auto [s, co] = full_adder(n, a[i], b[i], c);
    n.add_output(s, "s" + std::to_string(i));
    c = co;
  }
  n.add_output(c, "sco");
  // Difference chain: a-b as a + ~b + 1, with ~b formed locally per bit
  // (no sharing with the sum chain — the naive elaboration).
  NodeId bc = n.add_const(true);
  for (int i = 0; i < w; ++i) {
    NodeId nb = n.add_not(b[i]);
    auto [d, co] = full_adder(n, a[i], nb, bc);
    n.add_output(d, "d" + std::to_string(i));
    bc = co;
  }
  n.add_output(bc, "dco");
  return n;
}

Netlist alu_addsub(int w) {
  Netlist n("addsub" + std::to_string(w));
  auto a = add_bus(n, "a", w);
  auto b = add_bus(n, "b", w);
  NodeId sub = n.add_input("sub");
  std::vector<NodeId> addv, subv;
  NodeId c0 = n.add_const(false);
  for (int i = 0; i < w; ++i) {
    auto [s, co] = full_adder(n, a[i], b[i], c0);
    addv.push_back(s);
    c0 = co;
  }
  NodeId c1 = n.add_const(true);
  for (int i = 0; i < w; ++i) {
    NodeId nb = n.add_not(b[i]);
    auto [s, co] = full_adder(n, a[i], nb, c1);
    subv.push_back(s);
    c1 = co;
  }
  for (int i = 0; i < w; ++i)
    n.add_output(n.add_mux(sub, addv[i], subv[i]), "y" + std::to_string(i));
  n.add_output(n.add_mux(sub, c0, c1), "co");
  return n;
}

Netlist random_dag(int n_inputs, int n_gates, std::uint32_t seed) {
  Netlist n("rand" + std::to_string(n_inputs) + "x" + std::to_string(n_gates));
  std::mt19937 rng(seed);
  std::vector<NodeId> pool = add_bus(n, "x", n_inputs);
  auto pick = [&](int bias_recent) -> NodeId {
    // Bias toward recently created nodes to get depth and reconvergence.
    std::size_t m = pool.size();
    if (bias_recent && m > 4 && (rng() & 1)) {
      std::uniform_int_distribution<std::size_t> d(m - std::min<std::size_t>(m, 8), m - 1);
      return pool[d(rng)];
    }
    std::uniform_int_distribution<std::size_t> d(0, m - 1);
    return pool[d(rng)];
  };
  static const GateType kinds[] = {GateType::And,  GateType::Or,
                                   GateType::Nand, GateType::Nor,
                                   GateType::Xor,  GateType::Not};
  for (int g = 0; g < n_gates; ++g) {
    GateType t = kinds[rng() % 6];
    NodeId a = pick(1);
    if (t == GateType::Not) {
      pool.push_back(n.add_not(a));
      continue;
    }
    NodeId b = pick(1);
    int guard = 0;
    while (b == a && guard++ < 8) b = pick(0);
    if (b == a) t = GateType::Not;
    pool.push_back(t == GateType::Not ? n.add_not(a)
                                      : n.add_gate(t, {a, b}));
  }
  // Expose all fanout-free nodes as outputs.
  int k = 0;
  for (NodeId id = 0; id < n.size(); ++id) {
    if (n.is_dead(id) || n.node(id).type == GateType::Input) continue;
    if (n.node(id).fanouts.empty())
      n.add_output(id, "y" + std::to_string(k++));
  }
  if (k == 0) n.add_output(pool.back(), "y0");
  return n;
}

Netlist counter(int w) {
  Netlist n("counter" + std::to_string(w));
  NodeId en = n.add_input("en");
  // Create FFs with placeholder D, then build increment logic.
  std::vector<NodeId> q;
  NodeId zero = n.add_const(false);
  for (int i = 0; i < w; ++i)
    q.push_back(n.add_dff(zero, false, "q" + std::to_string(i)));
  NodeId carry = en;
  for (int i = 0; i < w; ++i) {
    NodeId d = n.add_xor(q[i], carry);
    carry = n.add_and(q[i], carry);
    n.replace_fanin(q[i], 0, d);
    n.add_output(q[i], "out" + std::to_string(i));
  }
  return n;
}

Netlist shift_register(int w) {
  Netlist n("shreg" + std::to_string(w));
  NodeId din = n.add_input("din");
  NodeId prev = din;
  for (int i = 0; i < w; ++i) {
    prev = n.add_dff(prev, false, "q" + std::to_string(i));
  }
  n.add_output(prev, "dout");
  return n;
}

std::vector<NamedNetlist> default_suite() {
  std::vector<NamedNetlist> s;
  s.push_back({"c17", c17()});
  s.push_back({"rca8", ripple_carry_adder(8)});
  s.push_back({"rca16", ripple_carry_adder(16)});
  s.push_back({"csa16", carry_select_adder(16, 4)});
  s.push_back({"mult4", array_multiplier(4)});
  s.push_back({"mult8", array_multiplier(8)});
  s.push_back({"cmp8", comparator_gt(8)});
  s.push_back({"cmp16", comparator_gt(16)});
  s.push_back({"parity16", parity_tree(16)});
  s.push_back({"alu4", alu(4)});
  s.push_back({"dec4", decoder(4)});
  s.push_back({"rand32x200", random_dag(32, 200, 7)});
  s.push_back({"rand16x400", random_dag(16, 400, 11)});
  return s;
}

}  // namespace lps::bench
