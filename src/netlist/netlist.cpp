#include "netlist/netlist.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <ostream>
#include <stdexcept>

#include "core/diag.hpp"
#include "core/parallel.hpp"
#include "netlist/validate.hpp"

namespace lps {

std::string_view to_string(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Or: return "OR";
    case GateType::Nand: return "NAND";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Mux: return "MUX";
    case GateType::Dff: return "DFF";
  }
  return "?";
}

std::uint64_t eval_gate(GateType t, std::span<const std::uint64_t> w) {
  switch (t) {
    case GateType::Const0: return 0;
    case GateType::Const1: return ~0ULL;
    case GateType::Input:
    case GateType::Buf:
    case GateType::Dff:
      return w[0];
    case GateType::Not: return ~w[0];
    case GateType::And: {
      std::uint64_t r = ~0ULL;
      for (auto x : w) r &= x;
      return r;
    }
    case GateType::Or: {
      std::uint64_t r = 0;
      for (auto x : w) r |= x;
      return r;
    }
    case GateType::Nand: {
      std::uint64_t r = ~0ULL;
      for (auto x : w) r &= x;
      return ~r;
    }
    case GateType::Nor: {
      std::uint64_t r = 0;
      for (auto x : w) r |= x;
      return ~r;
    }
    case GateType::Xor: {
      std::uint64_t r = 0;
      for (auto x : w) r ^= x;
      return r;
    }
    case GateType::Xnor: {
      std::uint64_t r = 0;
      for (auto x : w) r ^= x;
      return ~r;
    }
    case GateType::Mux:
      return (~w[0] & w[1]) | (w[0] & w[2]);
  }
  return 0;
}

bool eval_gate_scalar(GateType t, std::span<const bool> fanins) {
  // Wide gates (BLIF cubes routinely exceed 8 literals) spill to the heap;
  // the old fixed words[8] + release-invisible assert was a silent stack
  // overwrite for any 9-input gate in release builds.
  std::size_t n = fanins.size();
  std::uint64_t stack_words[8];
  std::vector<std::uint64_t> heap_words;
  std::uint64_t* words = stack_words;
  if (n > 8) {
    heap_words.resize(n);
    words = heap_words.data();
  }
  for (std::size_t i = 0; i < n; ++i) words[i] = fanins[i] ? ~0ULL : 0;
  return (eval_gate(t, {words, n}) & 1ULL) != 0;
}

std::size_t gate_min_arity(GateType t) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff:
      return 1;
    case GateType::Mux:
      return 3;
    default:
      return 2;
  }
}

std::size_t gate_max_arity(GateType t) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Buf:
    case GateType::Not:
      return 1;
    case GateType::Dff:
      return 2;  // optional enable pin
    case GateType::Mux:
      return 3;
    default:
      return SIZE_MAX;
  }
}

Netlist::Netlist(const Netlist& o)
    : name_(o.name_),
      nodes_(o.nodes_),
      inputs_(o.inputs_),
      outputs_(o.outputs_),
      output_names_(o.output_names_) {}

Netlist& Netlist::operator=(const Netlist& o) {
  if (this == &o) return *this;
  touch_all();
  name_ = o.name_;
  nodes_ = o.nodes_;
  inputs_ = o.inputs_;
  outputs_ = o.outputs_;
  output_names_ = o.output_names_;
  return *this;  // an active journal survives the wholesale replacement
}

Netlist& Netlist::operator=(Netlist&& o) {
  if (this == &o) return *this;
  touch_all();
  name_ = std::move(o.name_);
  nodes_ = std::move(o.nodes_);
  inputs_ = std::move(o.inputs_);
  outputs_ = std::move(o.outputs_);
  output_names_ = std::move(o.output_names_);
  return *this;
}

void Netlist::begin_undo() {
  auto log = std::make_unique<UndoLog>();
  log->base_nodes = nodes_.size();
  log->dirty.assign(nodes_.size(), 0);
  undo_.push_back(std::move(log));
}

void Netlist::commit_undo() {
  if (undo_.empty()) return;
  if (undo_.size() == 1) {
    undo_.clear();
    return;
  }
  // Merge the inner epoch into its parent.  Every inner pre-image was taken
  // at or after the parent's begin_undo(), so the parent keeps whichever
  // image is *older*: its own entry wins, an inner entry fills a gap.
  std::unique_ptr<UndoLog> inner_p = std::move(undo_.back());
  undo_.pop_back();
  UndoLog& inner = *inner_p;
  UndoLog& outer = *undo_.back();
  if (outer.full_saved) return;  // parent already rewinds past the inner epoch
  if (inner.full_saved) {
    // The inner wholesale image post-dates the parent's incremental entries;
    // rollback applies it first, then overrides with the older node/io
    // images — same ordering contract as a touch_all() inside one epoch.
    outer.full_saved = true;
    outer.full_nodes = std::move(inner.full_nodes);
    outer.full_inputs = std::move(inner.full_inputs);
    outer.full_outputs = std::move(inner.full_outputs);
    outer.full_output_names = std::move(inner.full_output_names);
    outer.full_name = std::move(inner.full_name);
  }
  // Inner node images are appended *after* the parent's: reverse replay in
  // rollback_undo applies them first, so the parent's older images override.
  for (auto& [id, img] : inner.node_images) {
    if (id >= outer.base_nodes) continue;  // parent truncates it anyway
    if (outer.dirty[id]) continue;         // parent holds an older image
    outer.dirty[id] = 1;
    outer.node_images.emplace_back(id, std::move(img));
  }
  if (inner.io_saved && !outer.io_saved) {
    outer.io_saved = true;
    outer.inputs = std::move(inner.inputs);
    outer.outputs = std::move(inner.outputs);
    outer.output_names = std::move(inner.output_names);
    outer.name = std::move(inner.name);
  }
}

void Netlist::rollback_undo() {
  LPS_CHECK(!undo_.empty(), "rollback_undo: no active undo log");
  UndoLog& u = *undo_.back();
  // Restore order matters: a wholesale pre-image rewinds to the point it
  // was taken; node/io images (recorded before it) then rewind the earlier
  // incremental edits; finally nodes created after begin_undo are dropped.
  if (u.full_saved) {
    nodes_ = std::move(u.full_nodes);
    inputs_ = std::move(u.full_inputs);
    outputs_ = std::move(u.full_outputs);
    output_names_ = std::move(u.full_output_names);
    name_ = std::move(u.full_name);
  }
  for (auto it = u.node_images.rbegin(); it != u.node_images.rend(); ++it)
    nodes_[it->first] = std::move(it->second);
  if (u.io_saved) {
    inputs_ = std::move(u.inputs);
    outputs_ = std::move(u.outputs);
    output_names_ = std::move(u.output_names);
    name_ = std::move(u.name);
  }
  if (nodes_.size() > u.base_nodes) nodes_.resize(u.base_nodes);
  undo_.pop_back();
  ++undo_rollbacks_;
}

void Netlist::touch_io() {
  if (undo_.empty()) return;
  UndoLog& u = *undo_.back();
  if (u.full_saved || u.io_saved) return;
  u.io_saved = true;
  u.inputs = inputs_;
  u.outputs = outputs_;
  u.output_names = output_names_;
  u.name = name_;
}

void Netlist::touch_all() {
  if (undo_.empty()) return;
  UndoLog& u = *undo_.back();
  if (u.full_saved) return;
  u.full_saved = true;
  u.full_nodes = nodes_;
  u.full_inputs = inputs_;
  u.full_outputs = outputs_;
  u.full_output_names = output_names_;
  u.full_name = name_;
}

NodeId Netlist::add_input(std::string name) {
  touch_io();
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.type = GateType::Input;
  n.name = std::move(name);
  n.delay = 0;
  nodes_.push_back(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_const(bool value) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.type = value ? GateType::Const1 : GateType::Const0;
  n.delay = 0;
  nodes_.push_back(std::move(n));
  return id;
}

NodeId Netlist::add_gate(GateType t, std::vector<NodeId> fanins,
                         std::string name) {
  if (fanins.size() < gate_min_arity(t) || fanins.size() > gate_max_arity(t))
    throw std::invalid_argument("add_gate: bad arity for " +
                                std::string(to_string(t)));
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.type = t;
  n.fanins = std::move(fanins);
  n.name = std::move(name);
  n.delay = (t == GateType::Buf) ? 1 : 1;
  nodes_.push_back(std::move(n));
  for (NodeId f : nodes_[id].fanins) link_fanin(id, f);
  return id;
}

NodeId Netlist::add_dff(NodeId d, bool init, std::string name) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.type = GateType::Dff;
  n.fanins = {d};
  n.name = std::move(name);
  n.init_value = init;
  n.delay = 0;
  nodes_.push_back(std::move(n));
  link_fanin(id, d);
  return id;
}

void Netlist::set_dff_enable(NodeId dff, NodeId enable) {
  touch_node(dff);
  Node& n = nodes_[dff];
  if (n.type != GateType::Dff || n.fanins.size() != 1)
    throw std::invalid_argument("set_dff_enable: plain Dff expected");
  n.fanins.push_back(enable);
  link_fanin(dff, enable);
}

void Netlist::add_output(NodeId n, std::string name) {
  touch_io();
  outputs_.push_back(n);
  if (name.empty()) {
    name = nodes_[n].name.empty() ? ("po" + std::to_string(outputs_.size() - 1))
                                  : nodes_[n].name;
  }
  output_names_.push_back(std::move(name));
}

std::vector<NodeId> Netlist::dffs() const {
  std::vector<NodeId> r;
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].dead && nodes_[i].type == GateType::Dff) r.push_back(i);
  return r;
}

std::size_t Netlist::num_live() const {
  std::size_t c = 0;
  for (const auto& n : nodes_)
    if (!n.dead) ++c;
  return c;
}

std::size_t Netlist::num_gates() const {
  std::size_t c = 0;
  for (const auto& n : nodes_)
    if (!n.dead && !is_source(n.type) && n.type != GateType::Dff) ++c;
  return c;
}

std::size_t Netlist::num_literals() const {
  std::size_t c = 0;
  for (const auto& n : nodes_)
    if (!n.dead && !is_source(n.type) && n.type != GateType::Dff)
      c += n.fanins.size();
  return c;
}

std::optional<NodeId> Netlist::find(std::string_view name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].dead && nodes_[i].name == name) return i;
  return std::nullopt;
}

void Netlist::link_fanin(NodeId user, NodeId used) {
  touch_node(used);
  nodes_[used].fanouts.push_back(user);
}

void Netlist::unlink_fanin(NodeId user, NodeId used) {
  touch_node(used);
  auto& fo = nodes_[used].fanouts;
  auto it = std::find(fo.begin(), fo.end(), user);
  LPS_CHECK(it != fo.end(), "unlink_fanin: node " + std::to_string(used) +
                                " has no fanout entry for user " +
                                std::to_string(user));
  fo.erase(it);  // removes one occurrence only (multi-edges are legal)
}

void Netlist::substitute(NodeId old_node, NodeId new_node) {
  LPS_CHECK(old_node != new_node,
            "substitute: node " + std::to_string(old_node) + " with itself");
  touch_io();  // POs may be redirected below
  // Redirect fanins of every user.  Copy the fanout list since we mutate it.
  std::vector<NodeId> users = nodes_[old_node].fanouts;
  for (NodeId u : users) {
    touch_node(u);
    auto& f = nodes_[u].fanins;
    for (std::size_t k = 0; k < f.size(); ++k) {
      if (f[k] == old_node) {
        f[k] = new_node;
        unlink_fanin(u, old_node);
        link_fanin(u, new_node);
      }
    }
  }
  for (std::size_t i = 0; i < outputs_.size(); ++i)
    if (outputs_[i] == old_node) outputs_[i] = new_node;
  remove(old_node);
}

void Netlist::replace_fanin(NodeId n, std::size_t k, NodeId nf) {
  NodeId old = nodes_[n].fanins.at(k);
  if (old == nf) return;
  touch_node(n);
  nodes_[n].fanins[k] = nf;
  unlink_fanin(n, old);
  link_fanin(n, nf);
}

void Netlist::remove(NodeId n) {
  LPS_CHECK(!nodes_[n].dead,
            "remove: node " + std::to_string(n) + " already removed");
  LPS_CHECK(nodes_[n].fanouts.empty(),
            "remove: node " + std::to_string(n) + " still has " +
                std::to_string(nodes_[n].fanouts.size()) + " fanouts");
  touch_node(n);
  for (NodeId f : nodes_[n].fanins) unlink_fanin(n, f);
  nodes_[n].fanins.clear();
  nodes_[n].dead = true;
  if (nodes_[n].type == GateType::Input) {
    touch_io();
    auto it = std::find(inputs_.begin(), inputs_.end(), n);
    if (it != inputs_.end()) inputs_.erase(it);
  }
}

std::size_t Netlist::sweep() {
  // Mark everything reachable backwards from POs and Dff D-inputs.
  std::vector<bool> live(nodes_.size(), false);
  std::vector<NodeId> stack;
  auto push = [&](NodeId n) {
    if (!live[n] && !nodes_[n].dead) {
      live[n] = true;
      stack.push_back(n);
    }
  };
  for (NodeId o : outputs_) push(o);
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].dead && nodes_[i].type == GateType::Dff) push(i);
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    for (NodeId f : nodes_[n].fanins) push(f);
  }
  // Remove dead gates in reverse topological order (fanout-free first).
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      Node& nd = nodes_[i];
      if (nd.dead || live[i] || nd.type == GateType::Input) continue;
      if (nd.fanouts.empty()) {
        remove(i);
        ++removed;
        changed = true;
      }
    }
  }
  return removed;
}

std::vector<NodeId> Netlist::compact() {
  touch_all();  // renumbering invalidates per-node journal entries
  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  std::vector<Node> fresh;
  fresh.reserve(num_live());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].dead) continue;
    remap[i] = static_cast<NodeId>(fresh.size());
    fresh.push_back(std::move(nodes_[i]));
  }
  for (auto& n : fresh) {
    for (auto& f : n.fanins) f = remap[f];
    for (auto& f : n.fanouts) f = remap[f];
  }
  for (auto& i : inputs_) i = remap[i];
  for (auto& o : outputs_) o = remap[o];
  nodes_ = std::move(fresh);
  return remap;
}

std::vector<NodeId> Netlist::topo_order() const {
  std::vector<NodeId> order;
  order.reserve(num_live());
  std::vector<std::uint8_t> state(nodes_.size(), 0);  // 0=unseen 1=open 2=done
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < nodes_.size(); ++root) {
    if (nodes_[root].dead || state[root] == 2) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      NodeId n = stack.back();
      if (state[n] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[n] == 1) {
        state[n] = 2;
        order.push_back(n);
        stack.pop_back();
        continue;
      }
      state[n] = 1;
      // Dff is a sequential source; its D-fanin is not a combinational dep.
      if (nodes_[n].type != GateType::Dff) {
        for (NodeId f : nodes_[n].fanins) {
          if (state[f] == 0) stack.push_back(f);
        }
      }
    }
  }
  return order;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> lv(nodes_.size(), 0);
  for (NodeId n : topo_order()) {
    const Node& nd = nodes_[n];
    if (is_source(nd.type) || nd.type == GateType::Dff) {
      lv[n] = 0;
      continue;
    }
    int m = 0;
    for (NodeId f : nd.fanins) m = std::max(m, lv[f] + 1);
    lv[n] = m;
  }
  return lv;
}

std::vector<int> Netlist::arrival_times() const {
  std::vector<int> at(nodes_.size(), 0);
  for (NodeId n : topo_order()) {
    const Node& nd = nodes_[n];
    if (is_source(nd.type) || nd.type == GateType::Dff) {
      at[n] = 0;
      continue;
    }
    int m = 0;
    for (NodeId f : nd.fanins) m = std::max(m, at[f]);
    at[n] = m + nd.delay;
  }
  return at;
}

int Netlist::critical_delay() const {
  auto at = arrival_times();
  int m = 0;
  for (NodeId o : outputs_) m = std::max(m, at[o]);
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].dead && nodes_[i].type == GateType::Dff)
      for (NodeId f : nodes_[i].fanins) m = std::max(m, at[f]);
  return m;
}

std::vector<int> Netlist::required_times(int deadline) const {
  auto at = arrival_times();
  if (deadline < 0) deadline = critical_delay();
  std::vector<int> rq(nodes_.size(), INT32_MAX);
  auto order = topo_order();
  for (NodeId o : outputs_) rq[o] = std::min(rq[o], deadline);
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].dead && nodes_[i].type == GateType::Dff)
      for (NodeId f : nodes_[i].fanins) rq[f] = std::min(rq[f], deadline);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId n = *it;
    const Node& nd = nodes_[n];
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    if (rq[n] == INT32_MAX) continue;  // dangling
    for (NodeId f : nd.fanins) rq[f] = std::min(rq[f], rq[n] - nd.delay);
  }
  // Dangling nodes: required = deadline (fully slack).
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (!nodes_[i].dead && rq[i] == INT32_MAX) rq[i] = deadline;
  return rq;
}

std::vector<bool> Netlist::cone_of(std::span<const NodeId> roots) const {
  std::vector<bool> mask(nodes_.size(), false);
  std::vector<NodeId> stack;
  for (NodeId r : roots) {
    if (!mask[r]) {
      mask[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (nodes_[n].type == GateType::Dff) continue;
    for (NodeId f : nodes_[n].fanins) {
      if (!mask[f]) {
        mask[f] = true;
        stack.push_back(f);
      }
    }
  }
  return mask;
}

std::vector<bool> Netlist::fanout_cone_of(std::span<const NodeId> roots,
                                          bool through_dffs) const {
  std::vector<bool> mask(nodes_.size(), false);
  std::vector<NodeId> stack;
  for (NodeId r : roots) {
    if (!mask[r]) {
      mask[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    // A register reached through a pin marks a cycle boundary: its Q only
    // changes one clock later.  Roots that ARE registers always expand —
    // the change is at their output already.
    if (!through_dffs && nodes_[n].type == GateType::Dff) {
      bool is_root = false;
      for (NodeId r : roots)
        if (r == n) {
          is_root = true;
          break;
        }
      if (!is_root) continue;
    }
    for (NodeId fo : nodes_[n].fanouts) {
      if (!mask[fo]) {
        mask[fo] = true;
        stack.push_back(fo);
      }
    }
  }
  return mask;
}

Netlist::TouchedNodes Netlist::touched_nodes() const {
  TouchedNodes t;
  if (undo_.empty() || undo_.back()->full_saved) {
    t.all = true;
    return t;
  }
  const UndoLog& u = *undo_.back();
  // A PI-list change re-maps input positions to nodes, so every simulated
  // value is suspect; PO/name-only changes are harmless to node values.
  if (u.io_saved && u.inputs != inputs_) {
    t.all = true;
    return t;
  }
  t.ids.reserve(u.node_images.size() + (nodes_.size() - u.base_nodes));
  // Journaled pre-images: every touched node is reported, but only those
  // whose value-determining fields actually differ from the pre-image seed
  // a re-simulation cone.  Fanout-list, size, delay and name edits leave
  // the node's simulated words unchanged (capacitance is recomputed from
  // the live netlist on every estimate, so they still affect power).
  std::vector<NodeId> roots;
  for (const auto& [id, img] : u.node_images) {
    t.ids.push_back(id);
    const Node& cur = nodes_[id];
    if (img.type != cur.type || img.fanins != cur.fanins ||
        img.init_value != cur.init_value || img.dead != cur.dead)
      roots.push_back(id);
  }
  std::sort(t.ids.begin(), t.ids.end());
  std::sort(roots.begin(), roots.end());
  for (NodeId n = static_cast<NodeId>(u.base_nodes); n < nodes_.size();
       ++n) {
    t.ids.push_back(n);
    roots.push_back(n);
  }
  t.value_roots = std::move(roots);
  return t;
}

std::string Netlist::check() const {
  diag::DiagEngine eng(/*max_kept=*/1);
  validate(*this, eng);
  if (eng.ok()) return {};
  return eng.diagnostics().front().message;
}

Netlist Netlist::clone() const { return *this; }

namespace {

bool commutative(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Or:
    case GateType::Nand:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

struct StrashKey {
  GateType type;
  std::vector<NodeId> fanins;
  bool operator==(const StrashKey&) const = default;
};

struct StrashKeyHash {
  std::size_t operator()(const StrashKey& k) const {
    std::size_t h = static_cast<std::size_t>(k.type) * 0x9E3779B97F4A7C15ull;
    for (NodeId f : k.fanins) h = h * 0x100000001B3ull ^ f;
    return h;
  }
};

}  // namespace

Netlist strash(const Netlist& src) {
  Netlist dst(src.name());
  std::vector<NodeId> map(src.size(), kNoNode);
  std::unordered_map<StrashKey, NodeId, StrashKeyHash> table;
  NodeId c0 = kNoNode, c1 = kNoNode;
  auto get_const = [&](bool v) -> NodeId {
    NodeId& c = v ? c1 : c0;
    if (c == kNoNode) c = dst.add_const(v);
    return c;
  };

  // Two passes so Dff outputs exist before combinational logic that reads
  // them; Dff D-inputs are patched afterwards.
  for (NodeId n : src.topo_order()) {
    const Node& nd = src.node(n);
    if (nd.type == GateType::Input) {
      map[n] = dst.add_input(nd.name);
      dst.node(map[n]).size = nd.size;
    } else if (nd.type == GateType::Const0) {
      map[n] = get_const(false);
    } else if (nd.type == GateType::Const1) {
      map[n] = get_const(true);
    } else if (nd.type == GateType::Dff) {
      // Temporarily wire D (and EN) to a placeholder; patched below.
      NodeId ph = get_const(false);
      map[n] = dst.add_dff(ph, nd.init_value, nd.name);
      if (nd.fanins.size() == 2) dst.set_dff_enable(map[n], ph);
    }
  }
  for (NodeId n : src.topo_order()) {
    const Node& nd = src.node(n);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    std::vector<NodeId> fi;
    fi.reserve(nd.fanins.size());
    for (NodeId f : nd.fanins) fi.push_back(map[f]);

    // Constant folding and single-input simplification.
    GateType t = nd.type;
    auto is_c = [&](NodeId x, bool v) { return x == (v ? c1 : c0); };
    if (t == GateType::Buf) {
      map[n] = fi[0];
      continue;
    }
    if (t == GateType::Not) {
      if (is_c(fi[0], false)) {
        map[n] = get_const(true);
        continue;
      }
      if (is_c(fi[0], true)) {
        map[n] = get_const(false);
        continue;
      }
    }
    if (t == GateType::And || t == GateType::Or || t == GateType::Nand ||
        t == GateType::Nor) {
      bool absorbing = (t == GateType::And || t == GateType::Nand) ? false
                                                                   : true;
      bool identity = !absorbing;
      bool hit_absorbing = false;
      std::vector<NodeId> keep;
      for (NodeId x : fi) {
        if (is_c(x, absorbing)) {
          hit_absorbing = true;
          break;
        }
        if (is_c(x, identity)) continue;
        keep.push_back(x);
      }
      bool invert = (t == GateType::Nand || t == GateType::Nor);
      if (hit_absorbing) {
        map[n] = get_const(absorbing != invert);
        continue;
      }
      if (keep.empty()) {
        map[n] = get_const(identity != invert);
        continue;
      }
      if (keep.size() == 1) {
        if (!invert) {
          map[n] = keep[0];
        } else {
          StrashKey key{GateType::Not, keep};
          auto it = table.find(key);
          map[n] = (it != table.end())
                       ? it->second
                       : (table[key] = dst.add_gate(GateType::Not, keep));
        }
        continue;
      }
      fi = std::move(keep);
    }

    if (commutative(t)) std::sort(fi.begin(), fi.end());
    StrashKey key{t, fi};
    auto it = table.find(key);
    if (it != table.end()) {
      map[n] = it->second;
    } else {
      NodeId g = dst.add_gate(t, fi);
      dst.node(g).size = nd.size;
      dst.node(g).delay = nd.delay;
      table.emplace(std::move(key), g);
      map[n] = g;
    }
  }
  // Patch Dff D (and EN) inputs.
  for (NodeId n = 0; n < src.size(); ++n) {
    if (src.is_dead(n) || src.node(n).type != GateType::Dff) continue;
    for (std::size_t k = 0; k < src.node(n).fanins.size(); ++k)
      dst.replace_fanin(map[n], k, map[src.node(n).fanins[k]]);
  }
  const auto& outs = src.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i)
    dst.add_output(map[outs[i]], src.output_names()[i]);
  dst.sweep();
  return dst;
}

std::uint64_t structural_hash(const Netlist& n) {
  // Pass 1: canonical ids by topological position.  topo_order() covers
  // every live node (Dffs as sources), so Dff D/EN fanins — forward
  // references in that order — already have their ids when pass 2 hashes
  // them.
  std::vector<std::uint64_t> canon(n.size(), ~0ULL);
  auto order = n.topo_order();
  std::uint64_t next = 0;
  for (NodeId id : order) canon[id] = next++;

  auto mix = [](std::uint64_t h, std::uint64_t v) {
    return core::mix64(h ^ v);
  };
  // Pass 2: fold each node's structure, then the PI/PO lists, in a fixed
  // order — chaining through mix64 makes position significant.
  std::uint64_t h = mix(0x5EEDF00Dull, order.size());
  for (NodeId id : order) {
    const Node& nd = n.node(id);
    h = mix(h, static_cast<std::uint64_t>(nd.type) + 0x100);
    h = mix(h, nd.fanins.size());
    for (NodeId f : nd.fanins) h = mix(h, canon[f]);
    h = mix(h, nd.init_value ? 1 : 2);
    h = mix(h, std::bit_cast<std::uint64_t>(nd.size));
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(nd.delay)));
  }
  h = mix(h, n.inputs().size());
  for (NodeId i : n.inputs()) h = mix(h, canon[i]);
  h = mix(h, n.outputs().size());
  for (NodeId o : n.outputs()) h = mix(h, canon[o]);
  return h;
}

std::ostream& operator<<(std::ostream& os, const Netlist& n) {
  os << "# netlist " << n.name() << ": " << n.inputs().size() << " PI, "
     << n.outputs().size() << " PO, " << n.num_gates() << " gates, "
     << n.dffs().size() << " FF\n";
  for (NodeId i = 0; i < n.size(); ++i) {
    if (n.is_dead(i)) continue;
    const Node& nd = n.node(i);
    os << i << ": " << to_string(nd.type);
    if (!nd.name.empty()) os << " \"" << nd.name << '"';
    if (!nd.fanins.empty()) {
      os << " <-";
      for (NodeId f : nd.fanins) os << ' ' << f;
    }
    os << '\n';
  }
  return os;
}

}  // namespace lps
