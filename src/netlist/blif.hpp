// blif.hpp — Berkeley Logic Interchange Format reader/writer.
//
// The surveyed logic-synthesis work (SIS, MIS, DAGON, ...) exchanged circuits
// as BLIF; the public ISCAS85/89 benchmarks circulate in BLIF form.  We read
// the combinational + latch subset:
//
//   .model/.inputs/.outputs/.names/.latch/.end
//
// Each .names table is converted into AND/OR/NOT gates (one AND per cube,
// one OR across cubes), which is exactly the two-level-into-network reading
// SIS performs before decomposition.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/diag.hpp"
#include "netlist/netlist.hpp"

namespace lps::blif {

/// Non-throwing parse: every problem in the input (truncated constructs,
/// bad cube characters, width mismatches, redefined or undefined signals,
/// dependency cycles, rows outside .names, ...) becomes a positioned
/// Diagnostic (file:line:col) in `eng`.  Returns the netlist only when the
/// input parsed without errors — and the result is guaranteed to satisfy
/// Netlist::check().  Never crashes or hangs on arbitrary byte streams.
std::optional<Netlist> parse(std::istream& is, diag::DiagEngine& eng,
                             const std::string& filename = "<blif>");
std::optional<Netlist> parse_string(const std::string& text,
                                    diag::DiagEngine& eng,
                                    const std::string& filename = "<blif>");

/// Parse BLIF text.  Throws diag::ParseError (a std::runtime_error) with a
/// line-numbered message on malformed input.
Netlist read(std::istream& is);
Netlist read_string(const std::string& text);
Netlist read_file(const std::string& path);

/// Write the network as BLIF (gates become single-output .names tables).
void write(std::ostream& os, const Netlist& n);
std::string write_string(const Netlist& n);

}  // namespace lps::blif
