// validate.hpp — structural invariant checker for Netlist.
//
// One pass over the network detecting every corruption class the
// fault-injection harness (faultinject.hpp) can produce:
//
//   - arity violations (fanin count outside the gate type's legal range);
//   - dangling references: fanins/fanouts/POs pointing at out-of-range or
//     tombstoned nodes;
//   - fanin/fanout cross-consistency in *both* directions (a stale fanout
//     entry whose user no longer lists the node is caught even when no
//     fanin-side count mismatches);
//   - combinational cycles, reported with the actual node cycle
//     ("12 (AND) -> 17 (OR f) -> 12") rather than a bare failure;
//   - primary-input list consistency (every entry live and of type Input,
//     every live Input listed exactly once);
//   - duplicate primary-output names (two POs claiming the same name);
//   - dead or out-of-range primary outputs.
//
// `Netlist::check()` delegates here; passes run it after every rewrite via
// the PassManager (core/pass.hpp).

#pragma once

#include "core/diag.hpp"
#include "netlist/netlist.hpp"

namespace lps {

/// Run every invariant check, reporting each violation into `eng` (stopping
/// early once the engine saturates).  Returns the number of errors found.
std::size_t validate(const Netlist& net, diag::DiagEngine& eng);

/// Convenience: all violations as a vector (up to `max_diags`).
std::vector<diag::Diagnostic> validate(const Netlist& net,
                                       std::size_t max_diags = 64);

}  // namespace lps
