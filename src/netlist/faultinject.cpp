#include "netlist/faultinject.hpp"

#include <algorithm>

namespace lps::fault {

std::string_view to_string(Fault f) {
  switch (f) {
    case Fault::DropFanin: return "drop-fanin";
    case Fault::WireCycle: return "wire-cycle";
    case Fault::StaleFanout: return "stale-fanout";
    case Fault::DanglingFanin: return "dangling-fanin";
    case Fault::OutOfRangeFanin: return "out-of-range-fanin";
    case Fault::DuplicateOutput: return "duplicate-output";
    case Fault::FlipGateFunction: return "flip-gate-function";
  }
  return "?";
}

std::vector<Fault> all_faults() {
  return {Fault::DropFanin,        Fault::WireCycle,
          Fault::StaleFanout,      Fault::DanglingFanin,
          Fault::OutOfRangeFanin,  Fault::DuplicateOutput,
          Fault::FlipGateFunction};
}

std::vector<Fault> structural_faults() {
  return {Fault::DropFanin,       Fault::WireCycle,
          Fault::StaleFanout,     Fault::DanglingFanin,
          Fault::OutOfRangeFanin, Fault::DuplicateOutput};
}

namespace {

// Live logic gates (non-source, non-Dff), rotated by the seed so different
// seeds pick different sites but selection stays deterministic.
std::vector<NodeId> gate_sites(const Netlist& net, std::uint64_t seed) {
  std::vector<NodeId> g;
  for (NodeId i = 0; i < net.size(); ++i) {
    if (net.is_dead(i)) continue;
    GateType t = net.node(i).type;
    if (!is_source(t) && t != GateType::Dff) g.push_back(i);
  }
  if (g.size() > 1)
    std::rotate(g.begin(), g.begin() + (seed % g.size()), g.end());
  return g;
}

// The complement of a gate's function with identical arity — guaranteed to
// change the node's logic function for every input pattern.
GateType complement_type(GateType t) {
  switch (t) {
    case GateType::And: return GateType::Nand;
    case GateType::Nand: return GateType::And;
    case GateType::Or: return GateType::Nor;
    case GateType::Nor: return GateType::Or;
    case GateType::Xor: return GateType::Xnor;
    case GateType::Xnor: return GateType::Xor;
    case GateType::Buf: return GateType::Not;
    case GateType::Not: return GateType::Buf;
    default: return t;  // Mux and sources: no same-arity complement
  }
}

// A combinational descendant of `g` (reached through fanouts without
// passing into a Dff), or kNoNode.
NodeId combinational_descendant(const Netlist& net, NodeId g) {
  std::vector<bool> seen(net.size(), false);
  std::vector<NodeId> stack{g};
  seen[g] = true;
  NodeId found = kNoNode;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId u : net.node(v).fanouts) {
      if (u >= net.size() || seen[u]) continue;
      seen[u] = true;
      if (net.node(u).type == GateType::Dff) continue;  // sequential edge
      if (u != g) found = u;
      stack.push_back(u);
    }
  }
  return found;
}

}  // namespace

Injection inject(Netlist& net, Fault kind, std::uint64_t seed) {
  Injection inj;
  inj.kind = kind;
  auto gates = gate_sites(net, seed);

  switch (kind) {
    case Fault::DropFanin: {
      for (NodeId g : gates) {
        Node& nd = net.node(g);
        if (nd.fanins.empty()) continue;
        NodeId dropped = nd.fanins.back();
        nd.fanins.pop_back();  // deliberately no unlink: fanout goes stale
        inj.applied = true;
        inj.site = g;
        inj.description = "dropped fanin " + std::to_string(dropped) +
                          " of node " + std::to_string(g) +
                          " without unlinking";
        return inj;
      }
      break;
    }
    case Fault::WireCycle: {
      for (NodeId g : gates) {
        Node& nd = net.node(g);
        if (nd.fanins.empty()) continue;
        NodeId target = combinational_descendant(net, g);
        if (target == kNoNode) target = g;  // self-loop is still a cycle
        // Bookkeeping is kept consistent so the *only* violation is the
        // cycle itself.
        NodeId old = nd.fanins[0];
        nd.fanins[0] = target;
        auto& fo = net.node(old).fanouts;
        fo.erase(std::find(fo.begin(), fo.end(), g));
        net.node(target).fanouts.push_back(g);
        inj.applied = true;
        inj.site = g;
        inj.description = "rewired fanin 0 of node " + std::to_string(g) +
                          " to its descendant " + std::to_string(target) +
                          " (combinational cycle)";
        return inj;
      }
      break;
    }
    case Fault::StaleFanout: {
      for (NodeId v = 0; v < net.size(); ++v) {
        if (net.is_dead(v)) continue;
        // A live user that does not read v.
        for (NodeId u : gates) {
          const auto& fi = net.node(u).fanins;
          if (u == v || std::find(fi.begin(), fi.end(), v) != fi.end())
            continue;
          net.node(v).fanouts.push_back(u);
          inj.applied = true;
          inj.site = v;
          inj.description = "appended stale fanout entry " +
                            std::to_string(u) + " to node " +
                            std::to_string(v);
          return inj;
        }
      }
      break;
    }
    case Fault::DanglingFanin: {
      // Any node with a fanin will do — on register-only circuits (e.g. a
      // shift register) the corruptible reference is a Dff's D pin.
      std::vector<NodeId> sites = gates;
      for (NodeId i = 0; i < net.size(); ++i)
        if (!net.is_dead(i) && net.node(i).type == GateType::Dff)
          sites.push_back(i);
      sites.erase(std::remove_if(sites.begin(), sites.end(),
                                 [&](NodeId s) {
                                   return net.node(s).fanins.empty();
                                 }),
                  sites.end());
      if (sites.empty()) break;
      // Manufacture a tombstone, then point a live fanin at it.
      NodeId g = sites.front();
      NodeId dead = net.add_gate(GateType::Buf, {net.node(g).fanins[0]});
      net.remove(dead);
      net.node(g).fanins[0] = dead;  // no unlink: also leaves a stale fanout
      inj.applied = true;
      inj.site = g;
      inj.description = "pointed fanin 0 of node " + std::to_string(g) +
                        " at tombstoned node " + std::to_string(dead);
      return inj;
    }
    case Fault::OutOfRangeFanin: {
      for (NodeId g : gates) {
        Node& nd = net.node(g);
        if (nd.fanins.empty()) continue;
        NodeId bogus = static_cast<NodeId>(net.size() + 1000);
        nd.fanins[0] = bogus;
        inj.applied = true;
        inj.site = g;
        inj.description = "pointed fanin 0 of node " + std::to_string(g) +
                          " at out-of-range id " + std::to_string(bogus);
        return inj;
      }
      break;
    }
    case Fault::DuplicateOutput: {
      if (net.outputs().empty()) break;
      std::size_t k = seed % net.outputs().size();
      net.add_output(net.outputs()[k], net.output_names()[k]);
      inj.applied = true;
      inj.site = net.outputs()[k];
      inj.description = "duplicated primary output \"" +
                        net.output_names()[k] + "\"";
      return inj;
    }
    case Fault::FlipGateFunction: {
      // Prefer a PO driver so the change is observable at an output.
      std::vector<NodeId> candidates;
      for (NodeId o : net.outputs())
        if (o < net.size() && !net.is_dead(o)) candidates.push_back(o);
      candidates.insert(candidates.end(), gates.begin(), gates.end());
      for (NodeId g : candidates) {
        GateType t = net.node(g).type;
        GateType c = complement_type(t);
        if (c == t || is_source(t) || t == GateType::Dff) continue;
        net.node(g).type = c;
        inj.applied = true;
        inj.site = g;
        inj.description = "flipped node " + std::to_string(g) + " from " +
                          std::string(to_string(t)) + " to " +
                          std::string(to_string(c));
        return inj;
      }
      break;
    }
  }
  inj.description = "no viable site for " + std::string(to_string(kind));
  return inj;
}

}  // namespace lps::fault
