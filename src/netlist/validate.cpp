#include "netlist/validate.hpp"

#include <algorithm>
#include <unordered_map>

namespace lps {

namespace {

std::string node_desc(const Netlist& net, NodeId n) {
  std::string s = std::to_string(n);
  if (n < net.size()) {
    const Node& nd = net.node(n);
    s += " (";
    s += to_string(nd.type);
    if (!nd.name.empty()) {
      s += ' ';
      s += nd.name;
    }
    s += ')';
  }
  return s;
}

// Find one combinational cycle and return it as "a -> b -> ... -> a".
// Precondition: the network has a cycle (topo order came up short).
std::string find_cycle(const Netlist& net) {
  const std::size_t n = net.size();
  std::vector<std::uint8_t> state(n, 0);  // 0=unseen 1=open 2=done
  std::vector<NodeId> path;               // current DFS chain
  for (NodeId root = 0; root < n; ++root) {
    if (net.is_dead(root) || state[root] != 0) continue;
    // Iterative DFS keeping the open path so the cycle can be extracted.
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next == 0) {
        state[v] = 1;
        path.push_back(v);
      }
      const Node& nd = net.node(v);
      bool descended = false;
      // Dff D-inputs close sequential loops legally; skip them.
      if (nd.type != GateType::Dff) {
        while (next < nd.fanins.size()) {
          NodeId f = nd.fanins[next++];
          if (f >= n || net.is_dead(f)) continue;  // reported elsewhere
          if (state[f] == 1) {
            // Cycle: path from f to v, then back to f.
            auto it = std::find(path.begin(), path.end(), f);
            std::string s;
            for (; it != path.end(); ++it) {
              s += node_desc(net, *it);
              s += " -> ";
            }
            s += std::to_string(f);
            return s;
          }
          if (state[f] == 0) {
            stack.push_back({f, 0});
            descended = true;
            break;
          }
        }
      }
      if (!descended) {
        state[v] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
  return "(cycle nodes not recovered)";
}

}  // namespace

std::size_t validate(const Netlist& net, diag::DiagEngine& eng) {
  std::size_t errors_before = eng.num_errors();
  const std::size_t n = net.size();
  auto err = [&](std::string msg) { eng.error(std::move(msg)); };

  bool refs_ok = true;  // gates the cycle check (needs in-range fanins)
  for (NodeId i = 0; i < n && !eng.saturated(); ++i) {
    const Node& nd = net.node(i);
    if (nd.dead) {
      if (!nd.fanouts.empty())
        err("dead node " + node_desc(net, i) + " still has " +
            std::to_string(nd.fanouts.size()) + " fanout entries");
      if (!nd.fanins.empty())
        err("dead node " + node_desc(net, i) + " still has fanins");
      continue;
    }
    if (nd.fanins.size() < gate_min_arity(nd.type) ||
        nd.fanins.size() > gate_max_arity(nd.type))
      err("node " + node_desc(net, i) + " arity violation: " +
          std::to_string(nd.fanins.size()) + " fanins, legal range [" +
          std::to_string(gate_min_arity(nd.type)) + ", " +
          (gate_max_arity(nd.type) == SIZE_MAX
               ? std::string("inf")
               : std::to_string(gate_max_arity(nd.type))) +
          "]");
    // Fanin side: in range, alive, and mirrored by the fanout list.
    for (NodeId f : nd.fanins) {
      if (f >= n) {
        err("node " + node_desc(net, i) + " fanin " + std::to_string(f) +
            " out of range (network has " + std::to_string(n) + " nodes)");
        refs_ok = false;
        continue;
      }
      if (net.node(f).dead) {
        err("node " + node_desc(net, i) + " references dead fanin " +
            node_desc(net, f));
        continue;
      }
      const auto& fo = net.node(f).fanouts;
      auto uses = static_cast<std::size_t>(
          std::count(nd.fanins.begin(), nd.fanins.end(), f));
      auto mirrored =
          static_cast<std::size_t>(std::count(fo.begin(), fo.end(), i));
      if (uses != mirrored)
        err("fanin/fanout bookkeeping mismatch: node " + node_desc(net, i) +
            " uses " + node_desc(net, f) + " " + std::to_string(uses) +
            "x but appears " + std::to_string(mirrored) +
            "x in its fanout list");
    }
    // Fanout side: every entry must be a live user that lists i as a fanin
    // (catches stale fanout entries the fanin-side pass never visits).
    for (NodeId u : nd.fanouts) {
      if (u >= n) {
        err("node " + node_desc(net, i) + " fanout entry " +
            std::to_string(u) + " out of range");
        continue;
      }
      const Node& un = net.node(u);
      if (un.dead) {
        err("node " + node_desc(net, i) + " has stale fanout entry to dead " +
            "node " + node_desc(net, u));
        continue;
      }
      if (std::find(un.fanins.begin(), un.fanins.end(), i) ==
          un.fanins.end())
        err("stale fanout entry: node " + node_desc(net, i) + " lists " +
            node_desc(net, u) + " as a user, but that node has no such fanin");
    }
  }

  // Primary-input list consistency.
  if (!eng.saturated()) {
    std::vector<std::size_t> listed(n, 0);
    for (NodeId i : net.inputs()) {
      if (i >= n) {
        err("inputs list entry " + std::to_string(i) + " out of range");
        continue;
      }
      ++listed[i];
      if (net.node(i).dead)
        err("inputs list references dead node " + node_desc(net, i));
      else if (net.node(i).type != GateType::Input)
        err("inputs list entry " + node_desc(net, i) + " is not an Input");
    }
    for (NodeId i = 0; i < n && !eng.saturated(); ++i) {
      if (net.is_dead(i) || net.node(i).type != GateType::Input) continue;
      if (listed[i] != 1)
        err("live Input " + node_desc(net, i) + " appears " +
            std::to_string(listed[i]) + "x in the inputs list");
    }
  }

  // Primary outputs: in range, alive, names unique.
  if (!eng.saturated()) {
    const auto& outs = net.outputs();
    const auto& names = net.output_names();
    if (outs.size() != names.size())
      err("outputs/output_names size mismatch: " +
          std::to_string(outs.size()) + " vs " + std::to_string(names.size()));
    std::unordered_map<std::string, std::size_t> seen;
    for (std::size_t k = 0; k < outs.size() && !eng.saturated(); ++k) {
      NodeId o = outs[k];
      if (o >= n)
        err("primary output " + std::to_string(k) + " node id " +
            std::to_string(o) + " out of range");
      else if (net.node(o).dead)
        err("primary output " + (k < names.size() ? names[k] : "?") +
            " driven by dead node " + node_desc(net, o));
      if (k < names.size()) {
        auto [it, fresh] = seen.emplace(names[k], k);
        if (!fresh)
          err("duplicate primary output name \"" + names[k] +
              "\" (slots " + std::to_string(it->second) + " and " +
              std::to_string(k) + ")");
      }
    }
  }

  // Combinational acyclicity — only meaningful once references are sane.
  if (refs_ok && !eng.saturated()) {
    auto order = net.topo_order();
    if (order.size() != net.num_live()) {
      err("combinational cycle: " + find_cycle(net));
    } else {
      std::vector<int> pos(n, -1);
      for (std::size_t k = 0; k < order.size(); ++k)
        pos[order[k]] = static_cast<int>(k);
      for (NodeId v : order) {
        if (net.node(v).type == GateType::Dff) continue;
        for (NodeId f : net.node(v).fanins)
          if (pos[f] > pos[v]) {
            err("combinational cycle through " + node_desc(net, v) + " and " +
                node_desc(net, f));
            break;
          }
      }
    }
  }

  return eng.num_errors() - errors_before;
}

std::vector<diag::Diagnostic> validate(const Netlist& net,
                                       std::size_t max_diags) {
  diag::DiagEngine eng(max_diags);
  validate(net, eng);
  return eng.diagnostics();
}

}  // namespace lps
