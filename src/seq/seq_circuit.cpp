#include "seq/seq_circuit.hpp"

#include <stdexcept>

#include "sim/logicsim.hpp"

namespace lps::seq {

Netlist registered(const Netlist& comb, int extra_output_ranks) {
  if (!comb.dffs().empty())
    throw std::invalid_argument("registered: expects a combinational input");
  Netlist n(comb.name() + "_reg");
  std::vector<NodeId> map(comb.size(), kNoNode);
  for (NodeId pi : comb.inputs()) {
    NodeId x = n.add_input(comb.node(pi).name);
    map[pi] = n.add_dff(x, false, comb.node(pi).name + "_r");
  }
  for (NodeId id : comb.topo_order()) {
    const Node& nd = comb.node(id);
    if (nd.type == GateType::Input) continue;
    if (nd.type == GateType::Const0) {
      map[id] = n.add_const(false);
      continue;
    }
    if (nd.type == GateType::Const1) {
      map[id] = n.add_const(true);
      continue;
    }
    std::vector<NodeId> fi;
    for (NodeId f : nd.fanins) fi.push_back(map[f]);
    map[id] = n.add_gate(nd.type, std::move(fi), nd.name);
    n.node(map[id]).delay = nd.delay;
    n.node(map[id]).size = nd.size;
  }
  // Output registers reset to the settled all-zero response so the wrapped
  // circuit's trace is well-defined from cycle 0 (and comparable with the
  // precomputation architecture, which uses the same convention).
  sim::LogicSim ls(comb);
  std::vector<std::uint64_t> zeros(comb.inputs().size(), 0);
  auto frame = ls.eval(zeros);
  const auto& outs = comb.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    NodeId q = map[outs[i]];
    bool init = (frame[outs[i]] & 1ULL) != 0;
    for (int r = 0; r <= extra_output_ranks; ++r)
      q = n.add_dff(q, init,
                    comb.output_names()[i] + "_r" + std::to_string(r));
    n.add_output(q, comb.output_names()[i]);
  }
  return n;
}

std::vector<NodeId> add_load_enable(Netlist& net,
                                    std::span<const NodeId> dffs,
                                    NodeId enable) {
  std::vector<NodeId> muxes;
  for (NodeId d : dffs) {
    if (net.node(d).type != GateType::Dff)
      throw std::invalid_argument("add_load_enable: not a Dff");
    NodeId old_d = net.node(d).fanins[0];
    NodeId m = net.add_mux(enable, d, old_d);  // en=0 -> hold Q
    net.replace_fanin(d, 0, m);
    muxes.push_back(m);
  }
  return muxes;
}

Netlist register_file(int words, int width) {
  int abits = 1;
  while ((1 << abits) < words) ++abits;
  Netlist n("regfile");
  std::vector<NodeId> addr, wdata;
  for (int b = 0; b < abits; ++b)
    addr.push_back(n.add_input("addr" + std::to_string(b)));
  for (int b = 0; b < width; ++b)
    wdata.push_back(n.add_input("wdata" + std::to_string(b)));
  NodeId wen = n.add_input("wen");

  std::vector<NodeId> addr_bar;
  for (NodeId a : addr) addr_bar.push_back(n.add_not(a));

  std::vector<std::vector<NodeId>> bank(words);
  for (int wix = 0; wix < words; ++wix) {
    // Address decode for this word.
    std::vector<NodeId> lits;
    for (int b = 0; b < abits; ++b)
      lits.push_back((wix >> b & 1) ? addr[b] : addr_bar[b]);
    lits.push_back(wen);
    NodeId sel = n.add_gate(GateType::And, lits);
    for (int b = 0; b < width; ++b) {
      std::string nm = "w" + std::to_string(wix) + "b" + std::to_string(b);
      // Recirculating hold: D = mux(sel, Q, wdata).
      NodeId placeholder = n.add_const(false);
      NodeId q = n.add_dff(placeholder, false, nm);
      n.replace_fanin(q, 0, n.add_mux(sel, q, wdata[b]));
      bank[wix].push_back(q);
    }
  }
  // Read port: mux tree over words by address.
  for (int b = 0; b < width; ++b) {
    std::vector<NodeId> level;
    for (int wix = 0; wix < words; ++wix) level.push_back(bank[wix][b]);
    int bit = 0;
    while (level.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2)
        next.push_back(n.add_mux(addr[bit], level[i], level[i + 1]));
      if (level.size() % 2) next.push_back(level.back());
      level = std::move(next);
      ++bit;
    }
    n.add_output(level[0], "rdata" + std::to_string(b));
  }
  return n;
}

std::size_t num_state_bits(const Netlist& net) { return net.dffs().size(); }

}  // namespace lps::seq
