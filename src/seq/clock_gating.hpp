// clock_gating.hpp — gated clocks for idle registers (§III-C.3).
//
// "If simple conditions that determine the inaction of particular registers
// can be determined, then power reduction can be obtained by gating the
// clocks of these registers [9]."  The canonical synthesizable source of
// such conditions is the recirculating-mux hold pattern D = mux(en, Q, x):
// when en=0 the register provably keeps its value, so its clock can be
// gated by en instead.  detect_hold_patterns() finds the pattern,
// apply_clock_gating() removes the recirculation mux (the data path becomes
// D = x, clocked only when en=1), and ClockActivity quantifies the clock-pin
// energy with and without gating from a simulation of the enables.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/power_model.hpp"

namespace lps::seq {

struct HoldPattern {
  NodeId dff = kNoNode;
  NodeId mux = kNoNode;     // the recirculating mux
  NodeId enable = kNoNode;  // mux select; 0 = hold
  NodeId data = kNoNode;    // loaded value when enable = 1
};

/// Find all registers driven by D = mux(en, Q, x).
std::vector<HoldPattern> detect_hold_patterns(const Netlist& net);

struct ClockGatingResult {
  int gated_registers = 0;
  int gating_cells = 0;  // one per distinct enable
};

/// Rewrite each pattern: delete the recirculation mux (D = x directly) and
/// record the gate.  The netlist's cycle-accurate behaviour is preserved
/// only under gated-clock semantics, so EventSim/LogicSim must be driven
/// through GatedClockModel (below) afterwards; the function therefore
/// returns the enable association instead of mutating simulation semantics.
ClockGatingResult apply_clock_gating(Netlist& net,
                                     const std::vector<HoldPattern>& patterns);

struct ClockActivityReport {
  double cycles = 0;
  double ff_count = 0;
  double clock_toggles_ungated = 0;  // 2 toggles per FF per cycle
  double clock_toggles_gated = 0;    // 2 * P(enable) per gated FF + overhead
  double enable_one_prob_mean = 0;   // average duty of the enables
  double clock_power_saving_fraction() const {
    return clock_toggles_ungated > 0
               ? 1.0 - clock_toggles_gated / clock_toggles_ungated
               : 0.0;
  }
};

/// Simulate `net` for `n_vectors` random vectors and report clock-pin
/// activity under free-running vs gated clocks for the given patterns.
/// Gating overhead: the gating cell (latch+AND) toggles with the enable.
ClockActivityReport clock_activity(const Netlist& net,
                                   const std::vector<HoldPattern>& patterns,
                                   std::size_t n_vectors, std::uint64_t seed);

}  // namespace lps::seq
