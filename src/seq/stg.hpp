// stg.hpp — State Transition Graphs (FSMs) and their statistics.
//
// §III-C.1 works "at the State Transition Graph level": low-power state
// encoding needs, for every pair of states, the probability that the machine
// crosses that edge in steady state.  This module provides the STG data
// structure (KISS2 I/O, the format of the MCNC FSM benchmarks the cited
// papers use), the steady-state distribution of the induced Markov chain
// under uniform inputs, and deterministic FSM generators for experiments.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/diag.hpp"

namespace lps::seq {

struct StgTransition {
  std::string input;  // cube over the FSM inputs, e.g. "1-0"
  int from = 0;       // state index
  int to = 0;
  std::string output;  // bits '0'/'1'/'-' per FSM output
};

class Stg {
 public:
  Stg(int num_inputs, int num_outputs)
      : num_inputs_(num_inputs), num_outputs_(num_outputs) {}

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }
  int num_states() const { return static_cast<int>(state_names_.size()); }
  int reset_state() const { return reset_state_; }
  void set_reset_state(int s) { reset_state_ = s; }

  int add_state(std::string name);
  int state_index(const std::string& name) const;  // -1 if absent
  const std::string& state_name(int s) const { return state_names_[s]; }

  void add_transition(const std::string& input_cube, int from, int to,
                      const std::string& output_bits);
  const std::vector<StgTransition>& transitions() const { return trans_; }

  /// Per-state-pair one-step probability P(to | from), assuming uniformly
  /// distributed inputs.  Unspecified input combinations self-loop.
  std::vector<std::vector<double>> transition_matrix() const;

  /// Stationary distribution of the Markov chain (power iteration from the
  /// reset state; handles periodic chains by averaging).
  std::vector<double> steady_state(int iterations = 2000) const;

  /// Edge weights w(s,q) = pi(s) * P(q|s) — the "weighted switching
  /// activity" objective of §III-C.1.
  std::vector<std::vector<double>> edge_weights() const;

  /// Validate: deterministic (no two transitions from a state with
  /// intersecting input cubes) and complete references.  Returns error text
  /// or empty.
  std::string check() const;

 private:
  int num_inputs_;
  int num_outputs_;
  int reset_state_ = 0;
  std::vector<std::string> state_names_;
  std::vector<StgTransition> trans_;
};

/// Non-throwing KISS2 parse: every malformed construct (bad header values,
/// short transition rows, wrong cube widths, bad cube characters,
/// nondeterministic machines, unknown reset state) becomes a positioned
/// Diagnostic in `eng`.  Returns the machine only when the input parsed
/// without errors — and the result passes Stg::check().  Never crashes or
/// hangs on arbitrary byte streams.
std::optional<Stg> parse_kiss(std::istream& is, diag::DiagEngine& eng,
                              const std::string& filename = "<kiss>");
std::optional<Stg> parse_kiss_string(const std::string& text,
                                     diag::DiagEngine& eng,
                                     const std::string& filename = "<kiss>");

/// KISS2 reader/writer (.i/.o/.s/.p/.r headers + transition lines).  The
/// readers throw diag::ParseError (a std::runtime_error) on malformed input.
Stg read_kiss(std::istream& is);
Stg read_kiss_string(const std::string& text);
void write_kiss(std::ostream& os, const Stg& stg);

// ---- generators -----------------------------------------------------------

/// Modulo-n up/down counter FSM: input u (1=up), outputs = state index bits.
Stg counter_fsm(int n);

/// Sequence detector for a given pattern over a 1-bit input (Mealy).
Stg sequence_detector(const std::string& pattern);

/// Random connected FSM: `n_states`, `n_inputs` input bits, deterministic
/// and complete by construction.
Stg random_fsm(int n_states, int n_inputs, int n_outputs, std::uint32_t seed);

/// A "bursty" FSM with a hot loop of `hot` states visited most of the time
/// and a cold tail — the structure where low-power encoding shines.
Stg bursty_fsm(int hot, int cold, std::uint32_t seed);

/// A polling/handshake FSM: every state self-loops until its "event" input
/// bit fires, then advances around the ring.  Heavy on self-loop edges —
/// the structure exploited by the gated-clock FSM transformation of [4].
Stg polling_fsm(int n_states);

/// Small real-world machines in KISS2 form (the MCNC FSM benchmark family
/// the cited encoding papers evaluate on): dk27-style shifter control and
/// a bbara-style bus arbiter fragment.
Stg mcnc_dk27();
Stg mcnc_bbara_fragment();

}  // namespace lps::seq
