// guarded_eval.hpp — guarded evaluation [44] and FSM self-loop gating [4].
//
// §III-C.4: "Given a combinational circuit, algorithms to determine the
// subcircuits to be turned off, and the logic required to perform the
// disabling are presented in [30] and [44]... A method to reduce switching
// activity in finite state machines by checking for loop-edges in the State
// Transition Graph ... and disabling the computation of the next state for
// these edges is presented in [4]."
//
// guard_mux_arms(): for every 2:1 mux in a registered design whose arms are
// single-fanout cones, the unselected arm's input registers are frozen by
// the (one-cycle-early) select — Tiwari/Malik/Ashar guarded evaluation with
// registers standing in for the paper's transparent latches.
//
// gate_fsm_self_loops(): adds a next-state == state comparator to an encoded
// FSM and holds the state registers on self-loops (Benini & De Micheli).

#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace lps::seq {

struct GuardedRegion {
  NodeId mux = kNoNode;
  NodeId select = kNoNode;
  int frozen_registers_a = 0;  // arm taken when select = 0
  int frozen_registers_b = 0;
};

/// Find 2:1 muxes whose data arms are fed (exclusively) by distinct input
/// registers, and freeze each arm's registers when the select — registered
/// one cycle early, matching the arm actually consumed — points away from
/// it.  Returns the regions transformed.  I/O behaviour is preserved.
std::vector<GuardedRegion> guard_mux_arms(Netlist& net);

struct SelfLoopGatingResult {
  int state_bits = 0;
  int comparator_gates = 0;
};

/// Add hold-on-self-loop gating to an FSM netlist produced by
/// synthesize_fsm(): state registers keep their value when the computed next
/// state equals the current state.  (Functionally a no-op; the power win is
/// the gated clock on the state register bank, measured via clock_activity.)
/// This generic variant detects the condition with an XOR comparator between
/// state and next-state — always applicable, but the comparator itself
/// burns power.
SelfLoopGatingResult gate_fsm_self_loops(Netlist& net);

}  // namespace lps::seq
