#include "seq/stg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>

namespace lps::seq {

int Stg::add_state(std::string name) {
  state_names_.push_back(std::move(name));
  return num_states() - 1;
}

int Stg::state_index(const std::string& name) const {
  for (int s = 0; s < num_states(); ++s)
    if (state_names_[s] == name) return s;
  return -1;
}

void Stg::add_transition(const std::string& input_cube, int from, int to,
                         const std::string& output_bits) {
  if (static_cast<int>(input_cube.size()) != num_inputs_)
    throw std::invalid_argument("stg: input cube width mismatch");
  if (static_cast<int>(output_bits.size()) != num_outputs_)
    throw std::invalid_argument("stg: output width mismatch");
  trans_.push_back({input_cube, from, to, output_bits});
}

namespace {

// Number of minterms covered by a cube string.
double cube_weight(const std::string& cube) {
  int dashes = 0;
  for (char c : cube)
    if (c == '-') ++dashes;
  return std::ldexp(1.0, dashes);  // 2^dashes
}

bool cubes_intersect(const std::string& a, const std::string& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return false;
  return true;
}

}  // namespace

std::vector<std::vector<double>> Stg::transition_matrix() const {
  int n = num_states();
  double total = std::ldexp(1.0, num_inputs_);
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  std::vector<double> covered(n, 0.0);
  for (const auto& t : trans_) {
    double w = cube_weight(t.input) / total;
    m[t.from][t.to] += w;
    covered[t.from] += w;
  }
  // Unspecified input space self-loops (machine holds state).
  for (int s = 0; s < n; ++s) {
    double rest = 1.0 - covered[s];
    if (rest > 1e-12) m[s][s] += rest;
  }
  return m;
}

std::vector<double> Stg::steady_state(int iterations) const {
  int n = num_states();
  auto m = transition_matrix();
  std::vector<double> pi(n, 0.0), acc(n, 0.0);
  pi[reset_state_] = 1.0;
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> next(n, 0.0);
    for (int s = 0; s < n; ++s) {
      if (pi[s] == 0.0) continue;
      for (int q = 0; q < n; ++q) next[q] += pi[s] * m[s][q];
    }
    pi = std::move(next);
    // Cesàro average over the tail to damp periodic chains.
    if (it >= iterations / 2)
      for (int s = 0; s < n; ++s) acc[s] += pi[s];
  }
  double total = 0.0;
  for (double x : acc) total += x;
  if (total <= 0) return pi;
  for (double& x : acc) x /= total;
  return acc;
}

std::vector<std::vector<double>> Stg::edge_weights() const {
  auto m = transition_matrix();
  auto pi = steady_state();
  int n = num_states();
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (int s = 0; s < n; ++s)
    for (int q = 0; q < n; ++q) w[s][q] = pi[s] * m[s][q];
  return w;
}

std::string Stg::check() const {
  for (const auto& t : trans_) {
    if (t.from < 0 || t.from >= num_states() || t.to < 0 ||
        t.to >= num_states())
      return "transition references unknown state";
  }
  for (std::size_t i = 0; i < trans_.size(); ++i)
    for (std::size_t j = i + 1; j < trans_.size(); ++j) {
      if (trans_[i].from != trans_[j].from) continue;
      if (cubes_intersect(trans_[i].input, trans_[j].input) &&
          (trans_[i].to != trans_[j].to ||
           trans_[i].output != trans_[j].output))
        return "nondeterministic transitions from state " +
               state_names_[trans_[i].from];
    }
  return {};
}

namespace {

// The library's cube strings use 0/1/-; anything else on a transition row is
// a parse error, not something to feed downstream.
bool valid_bits(const std::string& s, bool allow_dash, std::size_t* bad) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '0' || c == '1') continue;
    if (c == '-' && allow_dash) continue;
    *bad = i;
    return false;
  }
  return true;
}

// Inputs wider than 63 bits overflow the 2^n minterm weights used by the
// Markov-chain analysis; no real KISS machine is anywhere near this.
constexpr int kMaxKissWidth = 63;

}  // namespace

std::optional<Stg> parse_kiss(std::istream& is, diag::DiagEngine& eng,
                              const std::string& filename) {
  int ni = -1, no = -1, ns = -1, np = -1;
  int lineno = 0, reset_line = 0;
  bool saw_anything = false;
  std::string reset_name;
  struct Row {
    std::array<std::string, 4> f;  // cube, from, to, output
    int line;
  };
  std::vector<Row> rows;
  std::string line;
  auto read_int = [&](std::istringstream& ls, const char* what, int& out,
                      int max) {
    long long v = 0;
    if (!(ls >> v) || v < 0 || v > max) {
      eng.error(std::string(what) + " header needs an integer in [0, " +
                    std::to_string(max) + "]",
                {filename, lineno, 0});
      return false;
    }
    out = static_cast<int>(v);
    return true;
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (auto p = line.find('#'); p != std::string::npos) line.resize(p);
    std::istringstream ls(line);
    std::string a;
    if (!(ls >> a)) continue;
    saw_anything = true;
    if (a == ".i") {
      read_int(ls, ".i", ni, kMaxKissWidth);
    } else if (a == ".o") {
      read_int(ls, ".o", no, kMaxKissWidth);
    } else if (a == ".s") {
      read_int(ls, ".s", ns, INT32_MAX);
    } else if (a == ".p") {
      read_int(ls, ".p", np, INT32_MAX);
    } else if (a == ".r") {
      if (!(ls >> reset_name))
        eng.error(".r header needs a state name", {filename, lineno, 0});
      reset_line = lineno;
    } else if (a == ".e" || a == ".end") {
      break;
    } else if (a[0] == '.') {
      eng.warning("unknown KISS directive \"" + a + "\" ignored",
                  {filename, lineno, 0});
    } else {
      Row r;
      r.f[0] = a;
      r.line = lineno;
      if (!(ls >> r.f[1] >> r.f[2] >> r.f[3])) {
        eng.error(
            "malformed transition (need <input-cube> <from> <to> <output>)",
            {filename, lineno, 0});
        continue;
      }
      std::string extra;
      if (ls >> extra)
        eng.warning("trailing token \"" + extra + "\" on transition ignored",
                    {filename, lineno, 0});
      rows.push_back(std::move(r));
    }
  }
  if (!saw_anything) {
    eng.error("empty input: no KISS constructs found", {filename, 0, 0});
    return std::nullopt;
  }
  // Infer missing widths from the first transition so old header-less
  // fragments still load, but say so.
  if (ni < 0) {
    ni = rows.empty() ? 0 : static_cast<int>(rows[0].f[0].size());
    eng.warning("missing .i header; inferring " + std::to_string(ni) +
                    " inputs from the first transition",
                {filename, rows.empty() ? 0 : rows[0].line, 0});
  }
  if (no < 0) {
    no = rows.empty() ? 0 : static_cast<int>(rows[0].f[3].size());
    eng.warning("missing .o header; inferring " + std::to_string(no) +
                    " outputs from the first transition",
                {filename, rows.empty() ? 0 : rows[0].line, 0});
  }

  Stg g(ni, no);
  auto state_of = [&](const std::string& name) {
    int s = g.state_index(name);
    return s >= 0 ? s : g.add_state(name);
  };
  for (const auto& r : rows) {
    std::size_t bad = 0;
    if (static_cast<int>(r.f[0].size()) != ni) {
      eng.error("input cube \"" + r.f[0] + "\" has " +
                    std::to_string(r.f[0].size()) + " bits, .i declares " +
                    std::to_string(ni),
                {filename, r.line, 1});
      continue;
    }
    if (!valid_bits(r.f[0], /*allow_dash=*/true, &bad)) {
      eng.error("bad input cube character '" + std::string(1, r.f[0][bad]) +
                    "' (expected 0/1/-)",
                {filename, r.line, static_cast<int>(bad + 1)});
      continue;
    }
    if (static_cast<int>(r.f[3].size()) != no) {
      eng.error("output bits \"" + r.f[3] + "\" have " +
                    std::to_string(r.f[3].size()) + " bits, .o declares " +
                    std::to_string(no),
                {filename, r.line, 0});
      continue;
    }
    if (!valid_bits(r.f[3], /*allow_dash=*/true, &bad)) {
      eng.error("bad output bit character '" + std::string(1, r.f[3][bad]) +
                    "' (expected 0/1/-)",
                {filename, r.line, 0});
      continue;
    }
    g.add_transition(r.f[0], state_of(r.f[1]), state_of(r.f[2]), r.f[3]);
  }
  if (!reset_name.empty()) {
    int rs = g.state_index(reset_name);
    if (rs >= 0)
      g.set_reset_state(rs);
    else
      eng.error("reset state \"" + reset_name + "\" not present in any "
                "transition",
                {filename, reset_line, 0});
  }
  if (ns >= 0 && ns != g.num_states())
    eng.warning(".s declares " + std::to_string(ns) + " states but " +
                    std::to_string(g.num_states()) + " appear in transitions",
                {filename, 0, 0});
  if (np >= 0 && np != static_cast<int>(rows.size()))
    eng.warning(".p declares " + std::to_string(np) + " transitions but " +
                    std::to_string(rows.size()) + " were given",
                {filename, 0, 0});
  if (!eng.ok()) return std::nullopt;
  if (auto err = g.check(); !err.empty()) {
    eng.error(err, {filename, 0, 0});
    return std::nullopt;
  }
  return g;
}

std::optional<Stg> parse_kiss_string(const std::string& text,
                                     diag::DiagEngine& eng,
                                     const std::string& filename) {
  std::istringstream is(text);
  return parse_kiss(is, eng, filename);
}

Stg read_kiss(std::istream& is) {
  diag::DiagEngine eng(8);
  auto g = parse_kiss(is, eng, "kiss");
  if (!g) {
    const diag::Diagnostic* d = eng.first_error();
    throw diag::ParseError(d ? *d
                             : diag::Diagnostic{diag::Severity::Error,
                                                "parse failed",
                                                {}});
  }
  return std::move(*g);
}

Stg read_kiss_string(const std::string& text) {
  std::istringstream is(text);
  return read_kiss(is);
}

void write_kiss(std::ostream& os, const Stg& g) {
  os << ".i " << g.num_inputs() << "\n.o " << g.num_outputs() << "\n.s "
     << g.num_states() << "\n.p " << g.transitions().size() << "\n.r "
     << g.state_name(g.reset_state()) << '\n';
  for (const auto& t : g.transitions())
    os << t.input << ' ' << g.state_name(t.from) << ' ' << g.state_name(t.to)
       << ' ' << t.output << '\n';
  os << ".e\n";
}

Stg counter_fsm(int n) {
  int obits = 1;
  while ((1 << obits) < n) ++obits;
  Stg g(1, obits);
  for (int s = 0; s < n; ++s) g.add_state("s" + std::to_string(s));
  auto bits = [&](int s) {
    std::string b(obits, '0');
    for (int i = 0; i < obits; ++i)
      if (s >> i & 1) b[obits - 1 - i] = '1';
    return b;
  };
  for (int s = 0; s < n; ++s) {
    g.add_transition("1", s, (s + 1) % n, bits((s + 1) % n));
    g.add_transition("0", s, (s + n - 1) % n, bits((s + n - 1) % n));
  }
  return g;
}

Stg sequence_detector(const std::string& pattern) {
  int n = static_cast<int>(pattern.size());
  Stg g(1, 1);
  for (int s = 0; s <= n - 1; ++s) g.add_state("m" + std::to_string(s));
  // State s = length of matched prefix; on full match emit 1 and fall back
  // via the KMP failure function.
  auto failure = [&](int matched, char next) {
    std::string str = pattern.substr(0, matched) + next;
    for (int k = std::min<int>(n - 1, static_cast<int>(str.size()));
         k > 0; --k)
      if (str.substr(str.size() - k) == pattern.substr(0, k)) return k;
    return 0;
  };
  for (int s = 0; s < n; ++s) {
    for (char c : {'0', '1'}) {
      bool match = pattern[s] == c;
      int next;
      bool emit = false;
      if (match && s == n - 1) {
        next = failure(s, c);
        emit = true;
      } else if (match) {
        next = s + 1;
      } else {
        next = failure(s, c);
      }
      g.add_transition(std::string(1, c), s, next, emit ? "1" : "0");
    }
  }
  return g;
}

Stg random_fsm(int n_states, int n_inputs, int n_outputs,
               std::uint32_t seed) {
  std::mt19937 rng(seed);
  Stg g(n_inputs, n_outputs);
  for (int s = 0; s < n_states; ++s) g.add_state("s" + std::to_string(s));
  int combos = 1 << n_inputs;
  for (int s = 0; s < n_states; ++s) {
    for (int m = 0; m < combos; ++m) {
      std::string cube(n_inputs, '0');
      for (int b = 0; b < n_inputs; ++b)
        if (m >> b & 1) cube[b] = '1';
      // Bias toward nearby states so the chain is strongly connected and
      // non-uniform (gives encoding something to exploit).
      int to = (rng() % 3 == 0) ? static_cast<int>(rng() % n_states)
                                : (s + 1 + static_cast<int>(rng() % 2)) %
                                      n_states;
      std::string out(n_outputs, '0');
      for (int b = 0; b < n_outputs; ++b)
        if (rng() & 1) out[b] = '1';
      g.add_transition(cube, s, to, out);
    }
  }
  return g;
}

Stg bursty_fsm(int hot, int cold, std::uint32_t seed) {
  std::mt19937 rng(seed);
  Stg g(1, 1);
  int n = hot + cold;
  for (int s = 0; s < n; ++s) g.add_state("s" + std::to_string(s));
  // Hot ring: the machine circulates among the hot states; only state 0
  // can escape (on input 1) into the cold tail, which walks back to the
  // ring.  With uniform inputs the ring holds ~hot/(1+cold/2/hot) of the
  // probability mass — strongly hot-dominated for small tails.
  for (int s = 0; s < hot; ++s) {
    g.add_transition("0", s, (s + 1) % hot, s % 2 ? "1" : "0");
    if (s == 0 && cold > 0) {
      int escape = hot + static_cast<int>(rng() % std::max(1, cold));
      g.add_transition("1", s, escape, "0");
    } else {
      g.add_transition("1", s, (s + 1) % hot, s % 2 ? "1" : "0");
    }
  }
  for (int s = hot; s < n; ++s) {
    int back = (s + 1 < n) ? s + 1 : 0;
    g.add_transition("-", s, back, "0");
  }
  return g;
}

Stg polling_fsm(int n_states) {
  Stg g(1, 1);
  for (int s = 0; s < n_states; ++s) g.add_state("p" + std::to_string(s));
  for (int s = 0; s < n_states; ++s) {
    g.add_transition("0", s, s, "0");  // wait for the event: self-loop
    g.add_transition("1", s, (s + 1) % n_states,
                     s == n_states - 1 ? "1" : "0");
  }
  return g;
}

namespace {

// dk27 (MCNC): 1 input, 2 outputs, 7 states — the classic tiny encoding
// benchmark.  Transition list per the public KISS2 distribution.
const char* kDk27 = R"(
.i 1
.o 2
.s 7
.p 14
.r START
0 START state6 00
1 START state4 00
0 state2 state5 00
1 state2 state3 00
0 state3 state5 00
1 state3 state7 00
0 state4 state6 00
1 state4 state6 10
0 state5 START 10
1 state5 state2 10
0 state6 START 01
1 state6 state2 01
0 state7 state6 01
1 state7 state6 11
.e
)";

// A bus-arbiter fragment in the style of bbara (MCNC): two request lines,
// one grant output, states IDLE / GRANT0 / GRANT1 / TURN.
const char* kArbiter = R"(
.i 2
.o 2
.s 4
.p 16
.r IDLE
00 IDLE IDLE 00
10 IDLE G0 10
01 IDLE G1 01
11 IDLE G0 10
00 G0 IDLE 00
10 G0 G0 10
01 G0 G1 01
11 G0 TURN 10
00 G1 IDLE 00
10 G1 G0 10
01 G1 G1 01
11 G1 TURN 01
00 TURN IDLE 00
10 TURN G0 10
01 TURN G1 01
11 TURN G1 01
.e
)";

}  // namespace

Stg mcnc_dk27() { return read_kiss_string(kDk27); }
Stg mcnc_bbara_fragment() { return read_kiss_string(kArbiter); }

}  // namespace lps::seq
