// precompute.hpp — precomputation-based sequential power-down (§III-C.4).
//
// The Figure 1 architecture of Alidina et al. [1]: a single-output
// combinational block f(x) is registered on all inputs; a small subset S of
// inputs additionally feeds *precomputation logic* evaluated one cycle
// early:
//     g1 = ∀_{x∉S} f      (f is 1 whatever the other inputs are)
//     g0 = ∀_{x∉S} ¬f     (f is 0 whatever the other inputs are)
//     LE = ¬(g1 ∨ g0)
// When LE = 0 the registers of the non-subset inputs are disabled; f still
// produces the correct value because it does not depend on them in that
// region.  For the n-bit comparator of Figure 1 with S = {C[n-1], D[n-1]},
// g1 = C[n-1]·¬D[n-1], g0 = ¬C[n-1]·D[n-1] and LE reduces to the XNOR the
// paper shows.  Universal quantification follows Monteiro et al. [30];
// subset selection maximizes P(g1) + P(g0).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bdd/bdd_netlist.hpp"
#include "netlist/netlist.hpp"

namespace lps::seq {

struct PrecomputeSelection {
  std::vector<NodeId> subset;   // chosen PIs of the combinational block
  double hit_probability = 0.0;  // P(g1) + P(g0) under uniform inputs
};

/// Exhaustively evaluate all PI subsets of size `k` (or the best greedy
/// chain when C(n,k) exceeds `max_subsets`) and return the one whose
/// precomputation logic disables the rest most often.
PrecomputeSelection select_precompute_inputs(const Netlist& comb, int k,
                                             std::size_t max_subsets = 20000);

struct PrecomputeResult {
  Netlist circuit;       // sequential: input registers + LE + f
  double hit_probability = 0.0;
  int precompute_gates = 0;  // overhead logic size
};

/// Build the Figure 1(b) architecture for single-output `comb` with the
/// given subset.  The produced circuit has the same PIs as `comb`, one
/// output (registered f with one cycle latency), and load-enabled registers
/// on the non-subset inputs.
PrecomputeResult apply_precomputation(const Netlist& comb,
                                      std::span<const NodeId> subset);

/// Baseline for comparison: same registering (all inputs + output) without
/// precomputation logic.
Netlist registered_baseline(const Netlist& comb);

}  // namespace lps::seq
