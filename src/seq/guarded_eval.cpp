#include "seq/guarded_eval.hpp"

#include <algorithm>
#include <set>

#include "seq/seq_circuit.hpp"

namespace lps::seq {

namespace {

struct ArmCone {
  std::set<NodeId> interior;  // logic nodes of the arm
  std::vector<NodeId> regs;   // boundary registers feeding it exclusively
  bool valid = false;
};

// Collect the arm cone rooted at `arm`: logic whose only escape is the mux.
ArmCone collect_arm(const Netlist& net, NodeId mux, NodeId arm,
                    const std::set<NodeId>& already_guarded) {
  ArmCone c;
  if (net.node(arm).type == GateType::Dff || is_source(net.node(arm).type))
    return c;  // nothing to freeze behind a bare signal
  // TFI stopping at Dffs/PIs/consts.
  std::vector<NodeId> stack{arm};
  std::set<NodeId> seen{arm};
  std::set<NodeId> boundary;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    const Node& nd = net.node(n);
    if (nd.type == GateType::Dff) {
      boundary.insert(n);
      continue;
    }
    if (is_source(nd.type)) continue;
    c.interior.insert(n);
    for (NodeId f : nd.fanins)
      if (seen.insert(f).second) stack.push_back(f);
  }
  // Escape check: interior fanouts stay inside; the arm root feeds only the
  // mux; boundary registers feed only the interior; none is a PO.
  for (NodeId n : c.interior) {
    for (NodeId fo : net.node(n).fanouts) {
      if (n == arm) {
        if (fo != mux) return c;
      } else if (!c.interior.count(fo)) {
        return c;
      }
    }
    for (NodeId o : net.outputs())
      if (o == n) return c;
  }
  for (NodeId r : boundary) {
    if (already_guarded.count(r)) return c;
    if (net.node(r).fanins.size() != 1) return c;  // already load-enabled
    for (NodeId fo : net.node(r).fanouts)
      if (!c.interior.count(fo)) return c;
    for (NodeId o : net.outputs())
      if (o == r) return c;
    c.regs.push_back(r);
  }
  c.valid = !c.regs.empty();
  return c;
}

}  // namespace

std::vector<GuardedRegion> guard_mux_arms(Netlist& net) {
  std::vector<GuardedRegion> out;
  std::set<NodeId> guarded;
  std::vector<NodeId> muxes;
  for (NodeId n = 0; n < net.size(); ++n)
    if (!net.is_dead(n) && net.node(n).type == GateType::Mux) muxes.push_back(n);

  for (NodeId m : muxes) {
    const Node& mn = net.node(m);
    NodeId sel = mn.fanins[0];
    // The guard must be known one cycle before the arm value is consumed:
    // require select = Dff(pi), and guard with the pi directly.
    if (net.node(sel).type != GateType::Dff) continue;
    NodeId sel_pi = net.node(sel).fanins[0];
    if (net.node(sel_pi).type != GateType::Input) continue;

    NodeId arm_a = mn.fanins[1];  // consumed when select = 0
    NodeId arm_b = mn.fanins[2];  // consumed when select = 1
    ArmCone ca = collect_arm(net, m, arm_a, guarded);
    ArmCone cb = collect_arm(net, m, arm_b, guarded);
    if (!ca.valid && !cb.valid) continue;

    GuardedRegion region;
    region.mux = m;
    region.select = sel;
    if (ca.valid) {
      // Arm a is consumed next cycle iff sel_pi = 0 now: load on NOT sel_pi.
      NodeId en = net.add_not(sel_pi);
      for (NodeId r : ca.regs) {
        net.set_dff_enable(r, en);
        guarded.insert(r);
      }
      region.frozen_registers_a = static_cast<int>(ca.regs.size());
    }
    if (cb.valid) {
      for (NodeId r : cb.regs) {
        net.set_dff_enable(r, sel_pi);
        guarded.insert(r);
      }
      region.frozen_registers_b = static_cast<int>(cb.regs.size());
    }
    out.push_back(region);
  }
  return out;
}

SelfLoopGatingResult gate_fsm_self_loops(Netlist& net) {
  SelfLoopGatingResult r;
  auto dffs = net.dffs();
  r.state_bits = static_cast<int>(dffs.size());
  if (dffs.empty()) return r;
  std::size_t gates_before = net.num_gates();
  // change = OR over bits of (Q XOR next); state registers load only when
  // the machine leaves the current state.
  std::vector<NodeId> diffs;
  for (NodeId d : dffs) diffs.push_back(net.add_xor(d, net.node(d).fanins[0]));
  NodeId change = diffs.size() == 1
                      ? diffs[0]
                      : net.add_gate(GateType::Or, std::move(diffs));
  for (NodeId d : dffs) net.set_dff_enable(d, change);
  r.comparator_gates = static_cast<int>(net.num_gates() - gates_before);
  return r;
}

}  // namespace lps::seq
