#include "seq/precompute.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/seq_circuit.hpp"
#include "sim/logicsim.hpp"

namespace lps::seq {

namespace {

// pre(x_S) = AND over outputs of (forall_others f  OR  forall_others !f).
bdd::Ref precompute_condition(bdd::NetlistBdds& b, const Netlist& comb,
                              const std::vector<bool>& in_subset) {
  auto& m = b.mgr;
  std::vector<unsigned> others;
  for (NodeId pi : comb.inputs())
    if (!in_subset[pi]) others.push_back(b.var_of.at(pi));
  bdd::Ref pre = bdd::kTrue;
  for (NodeId o : comb.outputs()) {
    bdd::Ref f = b.node_fn[o];
    bdd::Ref g1 = m.forall(f, others);
    bdd::Ref g0 = m.forall(m.lnot(f), others);
    pre = m.land(pre, m.lor(g1, g0));
  }
  return pre;
}

}  // namespace

PrecomputeSelection select_precompute_inputs(const Netlist& comb, int k,
                                             std::size_t max_subsets) {
  auto b = bdd::build_bdds(comb);
  const auto& pis = comb.inputs();
  int n = static_cast<int>(pis.size());
  if (k <= 0 || k >= n)
    throw std::invalid_argument("select_precompute_inputs: bad subset size");
  std::vector<double> uniform(b.mgr.num_vars(), 0.5);

  PrecomputeSelection best;
  std::vector<bool> in_subset(comb.size(), false);

  // Count subsets; fall back to a greedy chain when too many.
  double combos = 1;
  for (int i = 0; i < k; ++i) combos *= static_cast<double>(n - i) / (i + 1);
  if (combos <= static_cast<double>(max_subsets)) {
    std::vector<int> idx(k);
    for (int i = 0; i < k; ++i) idx[i] = i;
    for (;;) {
      std::fill(in_subset.begin(), in_subset.end(), false);
      for (int i : idx) in_subset[pis[i]] = true;
      bdd::Ref pre = precompute_condition(b, comb, in_subset);
      double p = b.mgr.probability(pre, uniform);
      if (p > best.hit_probability) {
        best.hit_probability = p;
        best.subset.clear();
        for (int i : idx) best.subset.push_back(pis[i]);
      }
      // Next combination.
      int pos = k - 1;
      while (pos >= 0 && idx[pos] == n - k + pos) --pos;
      if (pos < 0) break;
      ++idx[pos];
      for (int j = pos + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
    }
    return best;
  }
  // Greedy fallback, growing by *pairs*: a single extra observed input
  // rarely determines an output on its own (its marginal gain is zero for
  // comparator-like functions), so single-step greedy stalls; pairs expose
  // the real gain surface at O(n^2) quantifications per round.
  std::vector<int> chosen;
  auto eval_subset = [&](const std::vector<int>& sel) {
    std::fill(in_subset.begin(), in_subset.end(), false);
    for (int c : sel) in_subset[pis[c]] = true;
    bdd::Ref pre = precompute_condition(b, comb, in_subset);
    return b.mgr.probability(pre, uniform);
  };
  while (static_cast<int>(chosen.size()) + 1 < k) {
    double round_best = -1.0;
    int pick_i = -1, pick_j = -1;
    for (int i = 0; i < n; ++i) {
      if (std::find(chosen.begin(), chosen.end(), i) != chosen.end())
        continue;
      for (int j = i + 1; j < n; ++j) {
        if (std::find(chosen.begin(), chosen.end(), j) != chosen.end())
          continue;
        auto sel = chosen;
        sel.push_back(i);
        sel.push_back(j);
        double p = eval_subset(sel);
        if (p > round_best) {
          round_best = p;
          pick_i = i;
          pick_j = j;
        }
      }
    }
    chosen.push_back(pick_i);
    chosen.push_back(pick_j);
    best.hit_probability = round_best;
  }
  if (static_cast<int>(chosen.size()) < k) {
    double round_best = -1.0;
    int round_pick = -1;
    for (int i = 0; i < n; ++i) {
      if (std::find(chosen.begin(), chosen.end(), i) != chosen.end())
        continue;
      auto sel = chosen;
      sel.push_back(i);
      double p = eval_subset(sel);
      if (p > round_best) {
        round_best = p;
        round_pick = i;
      }
    }
    chosen.push_back(round_pick);
    best.hit_probability = round_best;
  }
  for (int c : chosen) best.subset.push_back(pis[c]);
  return best;
}

Netlist registered_baseline(const Netlist& comb) { return registered(comb); }

PrecomputeResult apply_precomputation(const Netlist& comb,
                                      std::span<const NodeId> subset) {
  if (!comb.dffs().empty())
    throw std::invalid_argument("apply_precomputation: comb circuit expected");
  auto b = bdd::build_bdds(comb);
  std::vector<bool> in_subset(comb.size(), false);
  for (NodeId s : subset) in_subset[s] = true;
  bdd::Ref pre = precompute_condition(b, comb, in_subset);
  std::vector<double> uniform(b.mgr.num_vars(), 0.5);

  PrecomputeResult res;
  res.hit_probability = b.mgr.probability(pre, uniform);

  Netlist n(comb.name() + "_precomp");
  // Inputs and their registers.
  std::vector<NodeId> x(comb.size(), kNoNode);   // PI of new circuit
  std::vector<NodeId> q(comb.size(), kNoNode);   // registered input
  for (NodeId pi : comb.inputs()) {
    x[pi] = n.add_input(comb.node(pi).name);
    q[pi] = n.add_dff(x[pi], false, comb.node(pi).name + "_r");
  }
  // Precomputation logic over the *unregistered* subset inputs.
  std::vector<NodeId> var_to_node(b.mgr.num_vars(), kNoNode);
  for (NodeId pi : comb.inputs()) var_to_node[b.var_of.at(pi)] = x[pi];
  std::size_t gates_before = n.num_gates();
  NodeId pre_node = bdd::synthesize_bdd(n, b.mgr, pre, var_to_node);
  NodeId le = n.add_not(pre_node);  // load when NOT precomputable
  res.precompute_gates = static_cast<int>(n.num_gates() - gates_before) + 1;
  // Disable the non-subset input registers when LE = 0 (Figure 1's "LE"
  // pin; one gating condition drives the whole bank).
  for (NodeId pi : comb.inputs())
    if (!in_subset[pi]) n.set_dff_enable(q[pi], le);

  // Copy the combinational logic over the registered inputs.
  std::vector<NodeId> map(comb.size(), kNoNode);
  for (NodeId pi : comb.inputs()) map[pi] = q[pi];
  for (NodeId id : comb.topo_order()) {
    const Node& nd = comb.node(id);
    if (nd.type == GateType::Input) continue;
    if (nd.type == GateType::Const0) {
      map[id] = n.add_const(false);
      continue;
    }
    if (nd.type == GateType::Const1) {
      map[id] = n.add_const(true);
      continue;
    }
    std::vector<NodeId> fi;
    for (NodeId f : nd.fanins) fi.push_back(map[f]);
    map[id] = n.add_gate(nd.type, std::move(fi));
    n.node(map[id]).delay = nd.delay;
  }
  // Registered outputs, with reset value f(all-zero inputs) to match the
  // baseline's trace from cycle 0.
  sim::LogicSim ls(comb);
  std::vector<std::uint64_t> zeros(comb.inputs().size(), 0);
  auto frame = ls.eval(zeros);
  const auto& outs = comb.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    bool init = (frame[outs[i]] & 1ULL) != 0;
    NodeId r = n.add_dff(map[outs[i]], init,
                         comb.output_names()[i] + "_r0");
    n.add_output(r, comb.output_names()[i]);
  }
  res.circuit = std::move(n);
  return res;
}

}  // namespace lps::seq
