// retiming.hpp — retiming for minimum period and for low power (§III-C.2).
//
// Two layers:
//  1. RetimeGraph — the Leiserson–Saxe [24] abstraction (vertices with
//     delays, edges with register weights).  min_period_retiming() runs the
//     classic binary search over the feasible clock period with a
//     Bellman-Ford feasibility check of the r-assignment constraints
//        r(u) - r(v) <= w(u,v)                       (W-constraints)
//        r(u) - r(v) <= w(u,v) - 1  if d-path > T    (via W/D matrices).
//  2. Netlist-level power retiming [29] — greedy forward/backward register
//     moves across gates that keep the clock period while reducing the
//     timed (glitch-inclusive) switched capacitance: "switching activity at
//     flip-flop outputs ... can be significantly less than the activity at
//     the flip-flop inputs ... spurious transitions ... are filtered out by
//     the clock."

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/power_model.hpp"

namespace lps::seq {

/// The Leiserson–Saxe retiming graph.
class RetimeGraph {
 public:
  int add_vertex(int delay);
  void add_edge(int from, int to, int weight);  // weight = #registers

  int num_vertices() const { return static_cast<int>(delay_.size()); }
  int delay(int v) const { return delay_[v]; }

  struct Edge {
    int from, to, weight;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// Clock period of the current weighting (longest register-free path).
  int period() const;

  /// W and D matrices of Leiserson–Saxe (min registers / max delay along
  /// register-minimal paths).
  void wd_matrices(std::vector<std::vector<int>>& W,
                   std::vector<std::vector<int>>& D) const;

  /// Legal retiming achieving clock period <= target, if one exists.
  std::optional<std::vector<int>> feasible_retiming(int target_period) const;

  /// Minimum achievable period and a witnessing retiming (binary search over
  /// the distinct D values).
  std::pair<int, std::vector<int>> min_period_retiming() const;

  /// Apply a retiming vector: w'(e) = w(e) + r(to) - r(from).
  RetimeGraph retimed(const std::vector<int>& r) const;

 private:
  std::vector<int> delay_;
  std::vector<Edge> edges_;
};

// ---- netlist-level power retiming ------------------------------------------

struct PowerRetimeOptions {
  std::size_t sim_vectors = 512;
  std::uint64_t seed = 99;
  int max_moves = 200;
  power::PowerParams params;
};

struct PowerRetimeResult {
  int moves = 0;
  double power_before_w = 0.0;
  double power_after_w = 0.0;
  int period_before = 0;
  int period_after = 0;
};

/// Greedy local retiming on the netlist: a backward move pushes a register
/// rank from a gate's output to its inputs (when an initial state exists),
/// a forward move pulls registers from all inputs to the output.  A move is
/// kept when the event-driven (glitch-aware) power drops and the clock
/// period does not grow.  Function preservation is up to retiming
/// equivalence (identical I/O traces after a one-cycle reset prologue).
PowerRetimeResult retime_for_power(Netlist& net,
                                   const PowerRetimeOptions& opt = {});

}  // namespace lps::seq
