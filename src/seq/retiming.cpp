#include "seq/retiming.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "power/activity.hpp"

namespace lps::seq {

int RetimeGraph::add_vertex(int delay) {
  delay_.push_back(delay);
  return num_vertices() - 1;
}

void RetimeGraph::add_edge(int from, int to, int weight) {
  edges_.push_back({from, to, weight});
}

int RetimeGraph::period() const {
  // Longest zero-weight path: relax V times; a growing value after V passes
  // means a zero-weight cycle (illegal graph) — report "infinite".
  int n = num_vertices();
  std::vector<int> delta(n);
  for (int v = 0; v < n; ++v) delta[v] = delay_[v];
  for (int pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (const auto& e : edges_) {
      if (e.weight != 0) continue;
      int cand = delta[e.from] + delay_[e.to];
      if (cand > delta[e.to]) {
        delta[e.to] = cand;
        changed = true;
      }
    }
    if (!changed) break;
    if (pass == n - 1) return std::numeric_limits<int>::max();
  }
  int p = 0;
  for (int v = 0; v < n; ++v) p = std::max(p, delta[v]);
  return p;
}

void RetimeGraph::wd_matrices(std::vector<std::vector<int>>& W,
                              std::vector<std::vector<int>>& D) const {
  int n = num_vertices();
  constexpr int kInf = std::numeric_limits<int>::max() / 4;
  // Lexicographic shortest paths on (w, -d(u)) per Leiserson–Saxe.
  std::vector<std::vector<std::pair<int, int>>> dist(
      n, std::vector<std::pair<int, int>>(n, {kInf, 0}));
  for (int v = 0; v < n; ++v) dist[v][v] = {0, -delay_[v]};
  // Floyd–Warshall over the edge relation (u -> v costs (w, -d(u))).
  // Initialize direct edges.
  for (const auto& e : edges_) {
    std::pair<int, int> c{e.weight, -delay_[e.from] - delay_[e.to]};
    // Path u->v accumulates -d over *all* vertices on the path; we start
    // from -d(u) at the diagonal, so an edge adds (w(e), -d(v)).
    (void)c;
  }
  for (const auto& e : edges_) {
    std::pair<int, int> cand{dist[e.from][e.from].first + e.weight,
                             dist[e.from][e.from].second - delay_[e.to]};
    if (cand < dist[e.from][e.to]) dist[e.from][e.to] = cand;
  }
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i) {
      if (dist[i][k].first >= kInf) continue;
      for (const auto& e : edges_) {
        if (e.from != k) continue;
        std::pair<int, int> cand{dist[i][k].first + e.weight,
                                 dist[i][k].second - delay_[e.to]};
        if (cand < dist[i][e.to]) dist[i][e.to] = cand;
      }
    }
  // One extra round of relaxation sweeps to reach a fixpoint (the k-loop
  // above relaxes in edge order; repeat until stable for robustness).
  bool changed = true;
  int guard = 0;
  while (changed && guard++ <= n + 2) {
    changed = false;
    for (int i = 0; i < n; ++i)
      for (const auto& e : edges_) {
        if (dist[i][e.from].first >= kInf) continue;
        std::pair<int, int> cand{dist[i][e.from].first + e.weight,
                                 dist[i][e.from].second - delay_[e.to]};
        if (cand < dist[i][e.to]) {
          dist[i][e.to] = cand;
          changed = true;
        }
      }
  }
  W.assign(n, std::vector<int>(n, kInf));
  D.assign(n, std::vector<int>(n, -1));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (dist[i][j].first >= kInf) continue;
      W[i][j] = dist[i][j].first;
      D[i][j] = -dist[i][j].second;
    }
}

std::optional<std::vector<int>> RetimeGraph::feasible_retiming(
    int target) const {
  int n = num_vertices();
  std::vector<std::vector<int>> W, D;
  wd_matrices(W, D);
  constexpr int kInf = std::numeric_limits<int>::max() / 4;
  // Difference constraints r(u) - r(v) <= c  ==> edge v -> u with cost c.
  struct C {
    int v, u, c;
  };
  std::vector<C> cons;
  for (const auto& e : edges_) cons.push_back({e.to, e.from, e.weight});
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) {
      if (W[u][v] >= kInf || u == v) continue;
      if (D[u][v] > target) cons.push_back({v, u, W[u][v] - 1});
    }
  // Bellman–Ford from a virtual source connected to all vertices with 0.
  std::vector<int> r(n, 0);
  for (int pass = 0; pass <= n; ++pass) {
    bool changed = false;
    for (const auto& c : cons) {
      if (r[c.v] + c.c < r[c.u]) {
        r[c.u] = r[c.v] + c.c;
        changed = true;
      }
    }
    if (!changed) return r;
  }
  return std::nullopt;  // negative cycle
}

std::pair<int, std::vector<int>> RetimeGraph::min_period_retiming() const {
  std::vector<std::vector<int>> W, D;
  wd_matrices(W, D);
  std::set<int> cand;
  for (const auto& row : D)
    for (int d : row)
      if (d >= 0) cand.insert(d);
  std::vector<int> cs(cand.begin(), cand.end());
  int lo = 0, hi = static_cast<int>(cs.size()) - 1, best = -1;
  std::vector<int> best_r;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    auto r = feasible_retiming(cs[mid]);
    if (r) {
      best = cs[mid];
      best_r = *r;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  if (best < 0) return {period(), std::vector<int>(num_vertices(), 0)};
  return {best, best_r};
}

RetimeGraph RetimeGraph::retimed(const std::vector<int>& r) const {
  RetimeGraph g;
  for (int v = 0; v < num_vertices(); ++v) g.add_vertex(delay_[v]);
  for (const auto& e : edges_)
    g.add_edge(e.from, e.to, e.weight + r[e.to] - r[e.from]);
  return g;
}

// ---- netlist-level power retiming ------------------------------------------

namespace {

// Scalar settled evaluation of a gate under constant inputs.
bool const_eval(const Netlist& net, NodeId g, const std::vector<bool>& vals) {
  const Node& nd = net.node(g);
  std::vector<std::uint64_t> w;
  for (std::size_t i = 0; i < nd.fanins.size(); ++i)
    w.push_back(vals[i] ? ~0ULL : 0ULL);
  return (eval_gate(nd.type, w) & 1ULL) != 0;
}

// Forward move: all fanins of g are Dffs, each with single fanout (g).
bool try_forward(Netlist& net, NodeId g) {
  const Node& nd = net.node(g);
  if (is_source(nd.type) || nd.type == GateType::Dff) return false;
  if (nd.fanins.empty()) return false;
  std::vector<NodeId> regs = nd.fanins;
  std::vector<bool> inits;
  for (NodeId f : regs) {
    const Node& fn = net.node(f);
    if (fn.type != GateType::Dff || fn.fanins.size() != 1) return false;
    // Count fanout references to g only.
    for (NodeId fo : fn.fanouts)
      if (fo != g) return false;
    for (NodeId o : net.outputs())
      if (o == f) return false;
    inits.push_back(fn.init_value);
  }
  // Distinct registers required (a shared register would need cloning).
  std::set<NodeId> uniq(regs.begin(), regs.end());
  if (uniq.size() != regs.size()) return false;

  bool q_init = const_eval(net, g, inits);
  // Copy fields before mutating: node references go stale on growth.
  GateType gtype = nd.type;
  int gdelay = nd.delay;
  double gsize = nd.size;
  // Build the moved gate on the registers' D inputs, register its output,
  // and splice it in place of g.
  std::vector<NodeId> new_fi;
  for (NodeId f : regs) new_fi.push_back(net.node(f).fanins[0]);
  NodeId g2 = net.add_gate(gtype, std::move(new_fi));
  net.node(g2).delay = gdelay;
  net.node(g2).size = gsize;
  NodeId q = net.add_dff(g2, q_init);
  net.substitute(g, q);  // also removes g; old regs become floating
  net.sweep();
  return true;
}

// Backward move: every fanout of g is a Dff, none is a PO, all inits equal;
// an input init assignment realizing that output init must exist.
bool try_backward(Netlist& net, NodeId g) {
  const Node& nd = net.node(g);
  if (is_source(nd.type) || nd.type == GateType::Dff) return false;
  if (nd.fanouts.empty() || nd.fanins.empty()) return false;
  if (nd.fanins.size() > 12) return false;
  for (NodeId o : net.outputs())
    if (o == g) return false;
  std::vector<NodeId> regs = nd.fanouts;
  bool v = false;
  for (std::size_t k = 0; k < regs.size(); ++k) {
    const Node& rn = net.node(regs[k]);
    if (rn.type != GateType::Dff || rn.fanins.size() != 1) return false;
    if (k == 0)
      v = rn.init_value;
    else if (rn.init_value != v)
      return false;
  }
  std::set<NodeId> uniq(regs.begin(), regs.end());
  regs.assign(uniq.begin(), uniq.end());

  // Find input inits with f(init) = v.
  std::size_t k = nd.fanins.size();
  std::vector<bool> inits(k, false);
  bool found = false;
  for (std::uint64_t m = 0; m < (1ULL << k); ++m) {
    for (std::size_t i = 0; i < k; ++i) inits[i] = (m >> i & 1) != 0;
    if (const_eval(net, g, inits) == v) {
      found = true;
      break;
    }
  }
  if (!found) return false;

  // Insert a register on each fanin of g.
  for (std::size_t i = 0; i < k; ++i) {
    NodeId src = net.node(g).fanins[i];
    NodeId r = net.add_dff(src, inits[i]);
    net.replace_fanin(g, i, r);
  }
  // Each old output register collapses onto g.
  for (NodeId r : regs) net.substitute(r, g);
  net.sweep();
  return true;
}

}  // namespace

PowerRetimeResult retime_for_power(Netlist& net,
                                   const PowerRetimeOptions& opt) {
  PowerRetimeResult res;
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::Timed;
  ao.n_vectors = opt.sim_vectors;
  ao.seed = opt.seed;
  ao.params = opt.params;
  res.power_before_w = power::analyze(net, ao).report.breakdown.total_w();
  res.period_before = net.critical_delay();
  double cur = res.power_before_w;
  int period = res.period_before;

  bool changed = true;
  while (changed && res.moves < opt.max_moves) {
    changed = false;
    for (NodeId g = 0; g < net.size() && res.moves < opt.max_moves; ++g) {
      if (net.is_dead(g)) continue;
      const Node& nd = net.node(g);
      if (is_source(nd.type) || nd.type == GateType::Dff) continue;
      for (int dir = 0; dir < 2; ++dir) {
        Netlist trial = net.clone();
        bool moved =
            dir == 0 ? try_forward(trial, g) : try_backward(trial, g);
        if (!moved) continue;
        if (trial.critical_delay() > period) continue;
        double p = power::analyze(trial, ao).report.breakdown.total_w();
        if (p < cur * (1.0 - 1e-6)) {
          net = std::move(trial);
          cur = p;
          ++res.moves;
          changed = true;
          break;
        }
      }
      if (changed) break;  // node ids shifted; restart scan
    }
  }
  res.power_after_w = cur;
  res.period_after = net.critical_delay();
  return res;
}

}  // namespace lps::seq
