// seq_circuit.hpp — helpers for building and transforming clocked designs.
//
// Shared plumbing for the §III-C techniques: wrapping combinational blocks
// in register ranks (retiming/precomputation testbeds), converting plain
// flip-flops into load-enabled ones (the "LE" registers of Figure 1 and the
// gated-clock transformation), and a register-file generator (the §III-C.3
// example: "the register file is typically not accessed in each clock
// cycle").

#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::seq {

/// Wrap a combinational circuit with an input register rank and an output
/// register rank (a 1-deep pipeline; `extra_output_ranks` appends more).
Netlist registered(const Netlist& comb, int extra_output_ranks = 0);

/// Convert each listed Dff to a load-enabled register:
///   D := mux(enable, Q, D_original)   (enable=1 loads, 0 holds).
/// Returns the mux node ids (for inspection).
std::vector<NodeId> add_load_enable(Netlist& net, std::span<const NodeId> dffs,
                                    NodeId enable);

/// A w-bit × n-word register file with one write port: inputs are
/// addr[log n], wdata[w], wen; outputs rdata of the addressed word.
/// Every word's register bank holds via a recirculating mux selected by its
/// address decode — exactly the hold pattern the clock-gating pass
/// (clock_gating.hpp) detects and converts to a gated clock (§III-C.3).
Netlist register_file(int words, int width);

/// Count register bits.
std::size_t num_state_bits(const Netlist& net);

}  // namespace lps::seq
