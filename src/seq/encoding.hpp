// encoding.hpp — state assignment for low power (§III-C.1).
//
// "If a state s has a large number of transitions to state q, then the two
// states should be given uni-distant codes, so as to minimize switching
// activity at the flip-flop outputs."  Implements the weighted-Hamming
// objective of [35]/[47] with a simulated-annealing search, reference
// encodings (binary, gray-walk, one-hot, random), logic synthesis of the
// encoded machine into a gate/flip-flop netlist, and the re-encoding flow
// of Hachtel et al. [18] (extract the STG back out of a logic-level design
// and re-assign codes).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "seq/stg.hpp"

namespace lps::seq {

/// One code word per state, each `bits` wide (bit i = 1 << i).
struct Encoding {
  int bits = 0;
  std::vector<std::uint32_t> codes;

  /// Σ over STG edges of weight(s,q) · hamming(code_s, code_q): the expected
  /// number of flip-flop transitions per clock cycle.
  double weighted_switching(const Stg& stg) const;
  bool valid(int num_states) const;  // distinct codes, width respected
};

Encoding binary_encoding(const Stg& stg);
Encoding onehot_encoding(const Stg& stg);
Encoding random_encoding(const Stg& stg, std::uint32_t seed);
/// Greedy gray-like walk: order states by steady-state probability and give
/// consecutive hot states unit-distance codes where possible.
Encoding gray_walk_encoding(const Stg& stg);

struct AnnealOptions {
  int bits = 0;  // 0 = minimum width
  int iterations = 20000;
  double t0 = 2.0;
  double cooling = 0.9995;
  std::uint32_t seed = 1;
};

/// Simulated-annealing minimization of weighted switching (the cost of
/// [35,47]).  Starts from binary encoding; swap/reassign moves.
Encoding low_power_encoding(const Stg& stg, const AnnealOptions& opt = {});

/// Synthesize the encoded machine: inputs i0..i(k-1), one Dff per code bit
/// (reset state = code of stg.reset_state), two-level next-state and output
/// logic built from the STG cubes.  Output names o0..; state bits exposed
/// for inspection as "st<i>".
Netlist synthesize_fsm(const Stg& stg, const Encoding& enc,
                       const std::string& name = "fsm");

/// Extract the STG of a small sequential netlist by exhaustive reachability
/// (2^(FFs+PIs) enumeration; throws if beyond `max_states_bits`).  State
/// names are the code words; used by the re-encoding flow [18].
Stg extract_stg(const Netlist& net, int max_state_bits = 16);

struct ReencodeResult {
  Netlist circuit;        // re-synthesized netlist
  double wswitch_before = 0.0;
  double wswitch_after = 0.0;
};

/// Re-encoding flow of [18]: extract STG, anneal a new encoding, re-build.
ReencodeResult reencode_for_power(const Netlist& net,
                                  const AnnealOptions& opt = {});

/// Benini & De Micheli [4] proper: synthesize the self-loop predicate
/// directly from the STG ("checking for loop-edges in the State Transition
/// Graph") as a minimized two-level cover over (inputs, state bits), and
/// use it to disable the state registers.  Far cheaper than the generic
/// XOR comparator when the loop structure is simple (a polling FSM's
/// predicate is a single literal).  `net` must be the synthesize_fsm()
/// output for (stg, enc).  Returns the number of predicate gates added.
int gate_self_loops_from_stg(Netlist& net, const Stg& stg,
                             const Encoding& enc);

}  // namespace lps::seq
