#include "seq/encoding.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <random>
#include <stdexcept>

#include "sim/logicsim.hpp"
#include "sop/factoring.hpp"
#include "sop/minimize.hpp"

namespace lps::seq {

namespace {

int min_bits(int num_states) {
  int b = 1;
  while ((1 << b) < num_states) ++b;
  return b;
}

}  // namespace

double Encoding::weighted_switching(const Stg& stg) const {
  auto w = stg.edge_weights();
  double total = 0.0;
  for (int s = 0; s < stg.num_states(); ++s)
    for (int q = 0; q < stg.num_states(); ++q) {
      if (w[s][q] <= 0) continue;
      total += w[s][q] * std::popcount(codes[s] ^ codes[q]);
    }
  return total;
}

bool Encoding::valid(int num_states) const {
  if (static_cast<int>(codes.size()) != num_states) return false;
  std::vector<std::uint32_t> c = codes;
  std::sort(c.begin(), c.end());
  if (std::adjacent_find(c.begin(), c.end()) != c.end()) return false;
  for (auto x : codes)
    if (bits < 32 && (x >> bits) != 0) return false;
  return true;
}

Encoding binary_encoding(const Stg& stg) {
  Encoding e;
  e.bits = min_bits(stg.num_states());
  for (int s = 0; s < stg.num_states(); ++s)
    e.codes.push_back(static_cast<std::uint32_t>(s));
  return e;
}

Encoding onehot_encoding(const Stg& stg) {
  Encoding e;
  e.bits = stg.num_states();
  for (int s = 0; s < stg.num_states(); ++s) e.codes.push_back(1u << s);
  return e;
}

Encoding random_encoding(const Stg& stg, std::uint32_t seed) {
  Encoding e;
  e.bits = min_bits(stg.num_states());
  std::vector<std::uint32_t> pool(1u << e.bits);
  for (std::uint32_t i = 0; i < pool.size(); ++i) pool[i] = i;
  std::mt19937 rng(seed);
  std::shuffle(pool.begin(), pool.end(), rng);
  e.codes.assign(pool.begin(), pool.begin() + stg.num_states());
  return e;
}

Encoding gray_walk_encoding(const Stg& stg) {
  Encoding e;
  int n = stg.num_states();
  e.bits = min_bits(n);
  auto pi = stg.steady_state();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return pi[a] > pi[b]; });
  std::vector<bool> used(1u << e.bits, false);
  e.codes.assign(n, 0);
  std::uint32_t prev = 0;
  for (int k = 0; k < n; ++k) {
    // Pick the unused code closest (Hamming) to the previous hot code.
    int best_d = 64;
    std::uint32_t best = 0;
    for (std::uint32_t c = 0; c < used.size(); ++c) {
      if (used[c]) continue;
      int d = std::popcount(c ^ prev);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    used[best] = true;
    e.codes[order[k]] = best;
    prev = best;
  }
  return e;
}

Encoding low_power_encoding(const Stg& stg, const AnnealOptions& opt) {
  Encoding e = gray_walk_encoding(stg);
  int n = stg.num_states();
  if (opt.bits > 0) {
    if ((1 << opt.bits) < n)
      throw std::invalid_argument("low_power_encoding: width too small");
    e.bits = opt.bits;
  }
  // Precompute the weight matrix once; cost deltas are local.
  auto w = stg.edge_weights();
  // Symmetrize: switching cost counts both directions identically.
  std::vector<std::vector<double>> sym(n, std::vector<double>(n, 0.0));
  for (int s = 0; s < n; ++s)
    for (int q = 0; q < n; ++q) {
      if (s == q) continue;
      sym[s][q] = w[s][q] + w[q][s];
    }
  auto cost_of_state = [&](const std::vector<std::uint32_t>& codes, int s) {
    double c = 0.0;
    for (int q = 0; q < n; ++q)
      if (sym[s][q] > 0) c += sym[s][q] * std::popcount(codes[s] ^ codes[q]);
    return c;
  };

  std::mt19937 rng(opt.seed);
  std::vector<std::uint32_t> codes = e.codes;
  std::vector<bool> used(1u << e.bits, false);
  for (auto c : codes) used[c] = true;

  double best_cost = e.weighted_switching(stg) * 2.0;  // sym double-counts
  double cur = best_cost;
  std::vector<std::uint32_t> best = codes;
  double t = opt.t0;
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int it = 0; it < opt.iterations; ++it, t *= opt.cooling) {
    int s = static_cast<int>(rng() % n);
    double delta;
    int s2 = -1;
    std::uint32_t fresh = 0;
    if ((rng() & 1) && (1u << e.bits) > static_cast<unsigned>(n)) {
      // Reassign s to an unused code.
      do {
        fresh = rng() & ((1u << e.bits) - 1);
      } while (used[fresh]);
      double before = cost_of_state(codes, s);
      std::uint32_t old = codes[s];
      codes[s] = fresh;
      double after = cost_of_state(codes, s);
      codes[s] = old;
      delta = 2.0 * (after - before);
    } else {
      // Swap codes of s and s2.
      do {
        s2 = static_cast<int>(rng() % n);
      } while (s2 == s);
      double before = cost_of_state(codes, s) + cost_of_state(codes, s2) -
                      2.0 * sym[s][s2] * std::popcount(codes[s] ^ codes[s2]);
      std::swap(codes[s], codes[s2]);
      double after = cost_of_state(codes, s) + cost_of_state(codes, s2) -
                     2.0 * sym[s][s2] * std::popcount(codes[s] ^ codes[s2]);
      std::swap(codes[s], codes[s2]);
      delta = 2.0 * (after - before);
    }
    if (delta <= 0 || uni(rng) < std::exp(-delta / std::max(t, 1e-6))) {
      if (s2 >= 0) {
        std::swap(codes[s], codes[s2]);
      } else {
        used[codes[s]] = false;
        codes[s] = fresh;
        used[fresh] = true;
      }
      cur += delta;
      if (cur < best_cost - 1e-12) {
        best_cost = cur;
        best = codes;
      }
    }
  }
  e.codes = std::move(best);
  return e;
}

Netlist synthesize_fsm(const Stg& stg, const Encoding& enc,
                       const std::string& name) {
  if (!enc.valid(stg.num_states()))
    throw std::invalid_argument("synthesize_fsm: invalid encoding");
  Netlist n(name);
  std::vector<NodeId> in;
  for (int i = 0; i < stg.num_inputs(); ++i)
    in.push_back(n.add_input("i" + std::to_string(i)));

  std::uint32_t reset = enc.codes[stg.reset_state()];
  std::vector<NodeId> st;
  NodeId placeholder = n.add_const(false);
  for (int b = 0; b < enc.bits; ++b)
    st.push_back(n.add_dff(placeholder, (reset >> b & 1) != 0,
                           "st" + std::to_string(b)));

  // Build each next-state / output function as a two-level cover over the
  // variables (inputs..., state bits...), minimize it with the unassigned
  // state codes as don't-cares (unreachable from reset, so behaviour from
  // reset is unchanged), and share identical product terms across
  // functions when building gates.
  unsigned nv = static_cast<unsigned>(stg.num_inputs() + enc.bits);
  auto transition_cube = [&](const StgTransition& t) {
    sop::Cube c(nv);
    for (int i = 0; i < stg.num_inputs(); ++i) {
      if (t.input[i] == '1') c.set_pos(i);
      if (t.input[i] == '0') c.set_neg(i);
    }
    std::uint32_t code = enc.codes[t.from];
    for (int b = 0; b < enc.bits; ++b) {
      if (code >> b & 1)
        c.set_pos(stg.num_inputs() + b);
      else
        c.set_neg(stg.num_inputs() + b);
    }
    return c;
  };
  sop::Sop dc(nv);
  if (enc.bits < 30) {
    std::vector<bool> used(1u << enc.bits, false);
    for (auto code : enc.codes) used[code] = true;
    for (std::uint32_t code = 0; code < (1u << enc.bits); ++code) {
      if (used[code]) continue;
      sop::Cube c(nv);
      for (int b = 0; b < enc.bits; ++b) {
        if (code >> b & 1)
          c.set_pos(stg.num_inputs() + b);
        else
          c.set_neg(stg.num_inputs() + b);
      }
      dc.add_cube(c);
    }
  }

  // Shared leaves: the var -> signal mapping for cube-to-gate expansion.
  std::vector<NodeId> leaf(nv);
  std::vector<NodeId> leaf_bar(nv);
  for (int i = 0; i < stg.num_inputs(); ++i) leaf[i] = in[i];
  for (int b = 0; b < enc.bits; ++b) leaf[stg.num_inputs() + b] = st[b];
  for (unsigned v = 0; v < nv; ++v) leaf_bar[v] = n.add_not(leaf[v]);

  std::map<std::string, NodeId> term_cache;  // cube string -> AND gate
  auto build_cover = [&](const sop::Sop& f) -> NodeId {
    std::vector<NodeId> terms;
    for (const auto& c : f.cubes()) {
      auto key = c.to_string();
      auto it = term_cache.find(key);
      if (it != term_cache.end()) {
        terms.push_back(it->second);
        continue;
      }
      std::vector<NodeId> lits;
      for (unsigned v = 0; v < nv; ++v) {
        if (c.has_pos(v)) lits.push_back(leaf[v]);
        if (c.has_neg(v)) lits.push_back(leaf_bar[v]);
      }
      NodeId term;
      if (lits.empty())
        term = n.add_const(true);
      else if (lits.size() == 1)
        term = lits[0];
      else
        term = n.add_gate(GateType::And, std::move(lits));
      term_cache.emplace(std::move(key), term);
      terms.push_back(term);
    }
    if (terms.empty()) return n.add_const(false);
    if (terms.size() == 1) return terms[0];
    return n.add_gate(GateType::Or, std::move(terms));
  };

  for (int b = 0; b < enc.bits; ++b) {
    sop::Sop f(nv);
    for (const auto& t : stg.transitions())
      if (enc.codes[t.to] >> b & 1) f.add_cube(transition_cube(t));
    n.replace_fanin(st[b], 0, build_cover(sop::minimize(f, dc)));
  }
  for (int j = 0; j < stg.num_outputs(); ++j) {
    sop::Sop f(nv);
    for (const auto& t : stg.transitions())
      if (t.output[j] == '1') f.add_cube(transition_cube(t));
    n.add_output(build_cover(sop::minimize(f, dc)), "o" + std::to_string(j));
  }
  n.sweep();
  return n;
}

Stg extract_stg(const Netlist& net, int max_state_bits) {
  auto dffs = net.dffs();
  int nb = static_cast<int>(dffs.size());
  int ni = static_cast<int>(net.inputs().size());
  if (nb > max_state_bits || ni > 20)
    throw std::invalid_argument("extract_stg: state/input space too large");
  sim::LogicSim lsim(net);

  auto code_name = [&](std::uint32_t code) {
    std::string s(nb, '0');
    for (int b = 0; b < nb; ++b)
      if (code >> b & 1) s[b] = '1';
    return s;
  };

  Stg g(ni, static_cast<int>(net.outputs().size()));
  std::uint32_t reset = 0;
  for (int b = 0; b < nb; ++b)
    if (net.node(dffs[b]).init_value) reset |= 1u << b;

  std::vector<int> state_of_code(1u << nb, -1);
  std::vector<std::uint32_t> frontier{reset};
  state_of_code[reset] = g.add_state(code_name(reset));
  g.set_reset_state(0);

  std::vector<std::uint64_t> pi_words(net.inputs().size());
  std::vector<std::uint64_t> ff_words(dffs.size());
  while (!frontier.empty()) {
    std::uint32_t code = frontier.back();
    frontier.pop_back();
    int from = state_of_code[code];
    for (std::uint32_t m = 0; m < (1u << ni); ++m) {
      for (int i = 0; i < ni; ++i) pi_words[i] = (m >> i & 1) ? ~0ULL : 0;
      for (int b = 0; b < nb; ++b) ff_words[b] = (code >> b & 1) ? ~0ULL : 0;
      auto f = lsim.eval(pi_words, ff_words);
      auto ns = lsim.next_state_of(f);
      auto po = lsim.outputs_of(f);
      std::uint32_t next = 0;
      for (int b = 0; b < nb; ++b)
        if (ns[b] & 1) next |= 1u << b;
      if (state_of_code[next] < 0) {
        state_of_code[next] = g.add_state(code_name(next));
        frontier.push_back(next);
      }
      std::string cube(ni, '0');
      for (int i = 0; i < ni; ++i)
        if (m >> i & 1) cube[i] = '1';
      std::string out(net.outputs().size(), '0');
      for (std::size_t j = 0; j < po.size(); ++j)
        if (po[j] & 1) out[j] = '1';
      g.add_transition(cube, from, state_of_code[next], out);
    }
  }
  return g;
}

int gate_self_loops_from_stg(Netlist& net, const Stg& stg,
                             const Encoding& enc) {
  auto dffs = net.dffs();
  if (static_cast<int>(dffs.size()) != enc.bits)
    throw std::invalid_argument("gate_self_loops_from_stg: wrong circuit");
  unsigned nv = static_cast<unsigned>(stg.num_inputs() + enc.bits);
  // Self-loop cover over (inputs..., state bits...).
  sop::Sop self_cover(nv);
  for (const auto& t : stg.transitions()) {
    if (t.from != t.to) continue;
    sop::Cube c(nv);
    for (int i = 0; i < stg.num_inputs(); ++i) {
      if (t.input[i] == '1') c.set_pos(i);
      if (t.input[i] == '0') c.set_neg(i);
    }
    std::uint32_t code = enc.codes[t.from];
    for (int b = 0; b < enc.bits; ++b) {
      if (code >> b & 1)
        c.set_pos(stg.num_inputs() + b);
      else
        c.set_neg(stg.num_inputs() + b);
    }
    self_cover.add_cube(c);
  }
  if (self_cover.empty()) return 0;
  // Unassigned codes are free: minimize against them.
  sop::Sop dc(nv);
  if (enc.bits < 30) {
    std::vector<bool> used(1u << enc.bits, false);
    for (auto code : enc.codes) used[code] = true;
    for (std::uint32_t code = 0; code < (1u << enc.bits); ++code) {
      if (used[code]) continue;
      sop::Cube c(nv);
      for (int b = 0; b < enc.bits; ++b) {
        if (code >> b & 1)
          c.set_pos(stg.num_inputs() + b);
        else
          c.set_neg(stg.num_inputs() + b);
      }
      dc.add_cube(c);
    }
  }
  auto cover = sop::minimize(self_cover, dc);

  std::vector<NodeId> leaf(nv);
  for (int i = 0; i < stg.num_inputs(); ++i) leaf[i] = net.inputs()[i];
  for (int b = 0; b < enc.bits; ++b) leaf[stg.num_inputs() + b] = dffs[b];
  std::size_t before = net.num_gates();
  NodeId self = sop::build_expr(net, sop::factor(cover), leaf);
  NodeId load = net.add_not(self);
  for (NodeId d : dffs) net.set_dff_enable(d, load);
  return static_cast<int>(net.num_gates() - before);
}

ReencodeResult reencode_for_power(const Netlist& net,
                                  const AnnealOptions& opt) {
  Stg stg = extract_stg(net);
  // The original encoding is the state codes themselves.
  Encoding before;
  before.bits = static_cast<int>(net.dffs().size());
  for (int s = 0; s < stg.num_states(); ++s) {
    std::uint32_t c = 0;
    const std::string& nm = stg.state_name(s);
    for (int b = 0; b < before.bits; ++b)
      if (nm[b] == '1') c |= 1u << b;
    before.codes.push_back(c);
  }
  Encoding after = low_power_encoding(stg, opt);
  ReencodeResult r{synthesize_fsm(stg, after, net.name() + "_reenc"),
                   before.weighted_switching(stg),
                   after.weighted_switching(stg)};
  return r;
}

}  // namespace lps::seq
