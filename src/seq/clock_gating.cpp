#include "seq/clock_gating.hpp"

#include <algorithm>
#include <bit>
#include <random>
#include <set>

#include "sim/logicsim.hpp"

namespace lps::seq {

std::vector<HoldPattern> detect_hold_patterns(const Netlist& net) {
  std::vector<HoldPattern> out;
  for (NodeId d : net.dffs()) {
    // Registers that already carry a load-enable pin gate trivially.
    if (net.node(d).fanins.size() == 2) {
      out.push_back({d, kNoNode, net.node(d).fanins[1],
                     net.node(d).fanins[0]});
      continue;
    }
    NodeId m = net.node(d).fanins[0];
    const Node& mn = net.node(m);
    if (mn.type != GateType::Mux) continue;
    // mux(s, a, b) = s ? b : a.  Hold pattern: s=0 keeps Q, i.e. a == d.
    if (mn.fanins[1] == d) {
      out.push_back({d, m, mn.fanins[0], mn.fanins[2]});
    } else if (mn.fanins[2] == d) {
      // s=1 holds: enable is the inverted select; record via a NOT if one
      // exists, otherwise skip (keep the pass read-only here).
      continue;
    }
  }
  return out;
}

ClockGatingResult apply_clock_gating(Netlist& net,
                                     const std::vector<HoldPattern>& ps) {
  ClockGatingResult r;
  std::set<NodeId> enables;
  for (const auto& p : ps) {
    if (p.mux != kNoNode) {
      // Bypass the recirculation mux: D = data, clocked by the enable.
      net.replace_fanin(p.dff, 0, p.data);
      if (net.node(p.dff).fanins.size() == 1)
        net.set_dff_enable(p.dff, p.enable);
    }
    ++r.gated_registers;
    enables.insert(p.enable);
  }
  net.sweep();
  r.gating_cells = static_cast<int>(enables.size());
  return r;
}

ClockActivityReport clock_activity(const Netlist& net,
                                   const std::vector<HoldPattern>& ps,
                                   std::size_t n_vectors,
                                   std::uint64_t seed) {
  ClockActivityReport r;
  auto dffs = net.dffs();
  r.ff_count = static_cast<double>(dffs.size());
  std::size_t frames = std::max<std::size_t>(1, n_vectors / 64);
  r.cycles = static_cast<double>(frames * 64);

  // Measure enable one-probabilities by simulation.
  sim::LogicSim lsim(net);
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> pi(net.inputs().size());
  std::vector<std::uint64_t> state(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i)
    state[i] = net.node(dffs[i]).init_value ? ~0ULL : 0ULL;
  std::vector<double> en_ones(ps.size(), 0.0);
  for (std::size_t fr = 0; fr < frames; ++fr) {
    for (auto& w : pi) w = rng();
    auto f = lsim.eval(pi, state);
    for (std::size_t k = 0; k < ps.size(); ++k)
      en_ones[k] += std::popcount(f[ps[k].enable]);
    state = lsim.next_state_of(f);
  }

  r.clock_toggles_ungated = 2.0 * r.ff_count * r.cycles;
  // Ungated FFs keep toggling their clock pins.
  std::set<NodeId> gated;
  for (const auto& p : ps) gated.insert(p.dff);
  double free_ffs = r.ff_count - static_cast<double>(gated.size());
  r.clock_toggles_gated = 2.0 * free_ffs * r.cycles;
  double duty_sum = 0.0;
  std::set<NodeId> distinct_enables;
  for (std::size_t k = 0; k < ps.size(); ++k) {
    double p1 = en_ones[k] / r.cycles;
    duty_sum += p1;
    r.clock_toggles_gated += 2.0 * p1 * r.cycles;
    distinct_enables.insert(ps[k].enable);
  }
  // Gating-cell overhead: the latch+AND cell sees the raw clock, ~one clock
  // pin per distinct enable.
  r.clock_toggles_gated +=
      2.0 * static_cast<double>(distinct_enables.size()) * r.cycles;
  r.enable_one_prob_mean = ps.empty() ? 0.0 : duty_sum / ps.size();
  return r;
}

}  // namespace lps::seq
