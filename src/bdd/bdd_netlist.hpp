// bdd_netlist.hpp — global BDDs for a gate network.
//
// Bridges the netlist substrate and the BDD package: builds, for every node
// of a (combinational view of a) network, its function over the primary
// inputs and register outputs.  Used for exact equivalence checking of
// optimization passes, exact signal probabilities (power/probability.cpp)
// and don't-care extraction (logicopt/dontcare.cpp).

#pragma once

#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"

namespace lps::bdd {

struct NetlistBdds {
  Manager mgr;
  std::vector<Ref> node_fn;                     // per NodeId
  std::unordered_map<NodeId, unsigned> var_of;  // PI / Dff output -> var
  std::vector<NodeId> var_node;                 // var -> NodeId

  NetlistBdds() : mgr(0) {}
};

/// Build global BDDs for all live nodes.  Variables are assigned to PIs and
/// Dff outputs in topological-name order.  Throws NodeLimitExceeded if the
/// network is too wide for the budget.  `reserve_hint` pre-sizes the
/// manager's unique table before the build (avoiding mid-build rehash
/// churn); 0 applies the default 16x-gate-count heuristic.
NetlistBdds build_bdds(const Netlist& net, std::size_t node_limit = 4u << 20,
                       std::size_t reserve_hint = 0);

/// Exact combinational equivalence: outputs matched by position, inputs
/// matched by position (a and b must have equally many).  Sequential
/// elements must correspond 1:1 by position as free variables.
bool equivalent_bdd(const Netlist& a, const Netlist& b,
                    std::size_t node_limit = 4u << 20);

/// Synthesize a BDD back into gates as a MUX tree (one MUX per BDD node,
/// shared via memoization).  `var_to_node[v]` supplies the netlist signal
/// for BDD variable v (must cover the support of f).
NodeId synthesize_bdd(Netlist& net, Manager& mgr, Ref f,
                      const std::vector<NodeId>& var_to_node);

}  // namespace lps::bdd
