#include "bdd/bdd_netlist.hpp"

#include "core/env.hpp"

#include <algorithm>
#include <stdexcept>

namespace lps::bdd {

namespace {

// Variable order heuristic: depth-first from the outputs, fanin-first,
// collecting symbolic sources (PIs and Dff outputs) in first-visit order.
// For arithmetic circuits this interleaves the operand buses (a0 b0 a1 b1
// ...), which keeps adder/comparator BDDs linear where the blocked
// positional order is exponential.
std::vector<NodeId> source_order_dfs(const Netlist& net) {
  std::vector<NodeId> order;
  std::vector<bool> seen(net.size(), false);
  auto rec = [&](auto&& self, NodeId n) -> void {
    if (seen[n]) return;
    seen[n] = true;
    const Node& nd = net.node(n);
    if (nd.type == GateType::Input || nd.type == GateType::Dff) {
      order.push_back(n);
      return;
    }
    for (NodeId f : nd.fanins) self(self, f);
  };
  for (NodeId o : net.outputs()) rec(rec, o);
  for (NodeId d : net.dffs())
    for (NodeId f : net.node(d).fanins) rec(rec, f);
  // Any source not reachable from an output still needs a variable.
  for (NodeId pi : net.inputs())
    if (!seen[pi]) {
      seen[pi] = true;
      order.push_back(pi);
    }
  for (NodeId d : net.dffs())
    if (!seen[d]) {
      seen[d] = true;
      order.push_back(d);
    }
  return order;
}

/// Build per-node BDDs for `net` inside an existing manager, with the
/// symbolic sources (PIs then Dffs, positionally) mapped to `source_fn`.
std::vector<Ref> build_into(Manager& m, const Netlist& net,
                            std::span<const Ref> source_fn) {
  auto dffs = net.dffs();
  if (source_fn.size() != net.inputs().size() + dffs.size())
    throw std::invalid_argument("build_into: source function count mismatch");
  std::vector<Ref> fn(net.size(), kFalse);
  std::size_t k = 0;
  for (NodeId pi : net.inputs()) fn[pi] = m.ref(source_fn[k++]);
  for (NodeId d : dffs) fn[d] = m.ref(source_fn[k++]);

  // Every per-node function is ref()'d as soon as it exists: under auto-GC
  // a collection may run at any later operation entry, and only rooted (or
  // argument) refs survive it.  Gate evaluation itself is safe because each
  // intermediate is immediately the argument of the next public call.
  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    switch (nd.type) {
      case GateType::Input:
      case GateType::Dff:
        break;  // already assigned
      case GateType::Const0:
        fn[id] = kFalse;
        break;
      case GateType::Const1:
        fn[id] = kTrue;
        break;
      case GateType::Buf:
        fn[id] = fn[nd.fanins[0]];
        break;
      case GateType::Not:
        fn[id] = m.lnot(fn[nd.fanins[0]]);
        break;
      case GateType::And:
      case GateType::Nand: {
        Ref r = kTrue;
        for (NodeId f : nd.fanins) r = m.land(r, fn[f]);
        fn[id] = nd.type == GateType::Nand ? m.lnot(r) : r;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        Ref r = kFalse;
        for (NodeId f : nd.fanins) r = m.lor(r, fn[f]);
        fn[id] = nd.type == GateType::Nor ? m.lnot(r) : r;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        Ref r = kFalse;
        for (NodeId f : nd.fanins) r = m.lxor(r, fn[f]);
        fn[id] = nd.type == GateType::Xnor ? m.lnot(r) : r;
        break;
      }
      case GateType::Mux:
        fn[id] = m.ite(fn[nd.fanins[0]], fn[nd.fanins[2]], fn[nd.fanins[1]]);
        break;
    }
    if (nd.type != GateType::Input && nd.type != GateType::Dff)
      m.ref(fn[id]);
  }
  return fn;
}

}  // namespace

NetlistBdds build_bdds(const Netlist& net, std::size_t node_limit,
                       std::size_t reserve_hint) {
  NetlistBdds out;
  auto dffs = net.dffs();
  // Collect construction garbage while the build runs (the per-node
  // functions are rooted as they are produced, so only dead ITE scaffolding
  // is swept); LPS_BDD_GC=0 restores the historical monotonic build.
  static const bool gc_during_build = core::env_bool_or("LPS_BDD_GC", true);
  Config cfg = default_config();
  cfg.node_limit = node_limit;
  cfg.auto_gc = gc_during_build;
  out.mgr =
      Manager(static_cast<unsigned>(net.inputs().size() + dffs.size()), cfg);
  // Capacity hint: global BDDs for gate networks typically land within a
  // small multiple of the gate count; pre-sizing avoids rehash churn.
  if (reserve_hint == 0) reserve_hint = 16 * net.num_gates();
  out.mgr.reserve(std::min<std::size_t>(node_limit, reserve_hint));
  // Assign variable indices in DFS order; feed build_into positionally.
  auto dfs = source_order_dfs(net);
  unsigned v = 0;
  out.var_node.resize(dfs.size());
  for (NodeId s : dfs) {
    out.var_of[s] = v;
    out.var_node[v] = s;
    ++v;
  }
  std::vector<Ref> sources;
  for (NodeId pi : net.inputs()) sources.push_back(out.mgr.var(out.var_of[pi]));
  for (NodeId d : dffs) sources.push_back(out.mgr.var(out.var_of[d]));
  out.node_fn = build_into(out.mgr, net, sources);
  // Hand the manager back with auto-GC off: callers (don't-care extraction,
  // density estimation) hold unrooted temporaries across operations and use
  // explicit gc() at their own safe points instead.
  out.mgr.set_auto_gc(false);
  return out;
}

bool equivalent_bdd(const Netlist& a, const Netlist& b,
                    std::size_t node_limit) {
  if (a.inputs().size() != b.inputs().size()) return false;
  if (a.outputs().size() != b.outputs().size()) return false;
  auto da = a.dffs(), db = b.dffs();
  if (da.size() != db.size()) return false;

  // Build both networks over one shared variable space so Ref equality is
  // canonical function equality.  Variables follow circuit a's DFS order to
  // keep arithmetic-style functions compact.
  unsigned nv = static_cast<unsigned>(a.inputs().size() + da.size());
  Manager m(nv, node_limit);
  auto dfs = source_order_dfs(a);
  std::unordered_map<NodeId, unsigned> var_of;
  unsigned v = 0;
  for (NodeId s : dfs) var_of[s] = v++;
  std::vector<Ref> sources;
  for (NodeId pi : a.inputs()) sources.push_back(m.var(var_of.at(pi)));
  for (NodeId d : da) sources.push_back(m.var(var_of.at(d)));
  auto fa = build_into(m, a, sources);
  auto fb = build_into(m, b, sources);

  for (std::size_t i = 0; i < a.outputs().size(); ++i)
    if (fa[a.outputs()[i]] != fb[b.outputs()[i]]) return false;
  // Next-state functions, honouring optional enable pins: ns = EN ? D : Q.
  auto ns_of = [&m](const Netlist& net, NodeId d, const std::vector<Ref>& fn,
                    Ref q) {
    Ref next = fn[net.node(d).fanins[0]];
    if (net.node(d).fanins.size() == 2)
      next = m.ite(fn[net.node(d).fanins[1]], next, q);
    return next;
  };
  for (std::size_t i = 0; i < da.size(); ++i) {
    Ref q = m.var(var_of.at(da[i]));
    if (ns_of(a, da[i], fa, q) != ns_of(b, db[i], fb, q)) return false;
  }
  return true;
}

NodeId synthesize_bdd(Netlist& net, Manager& mgr, Ref f,
                      const std::vector<NodeId>& var_to_node) {
  std::unordered_map<Ref, NodeId> memo;
  auto rec = [&](auto&& self, Ref r) -> NodeId {
    if (r == kFalse) return net.add_const(false);
    if (r == kTrue) return net.add_const(true);
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    NodeId out;
    const auto& n = mgr.node(r);
    if (is_complemented(r)) {
      // Complement edge: one shared inverter per node polarity (the memo
      // keys on the full tagged ref, so f and !f cost one Not, not a
      // duplicated cone).  The negated literal node is x itself.
      if (n.lo == kTrue && n.hi == kFalse)
        out = var_to_node.at(n.var);
      else
        out = net.add_not(self(self, regular(r)));
    } else {
      NodeId sel = var_to_node.at(n.var);
      // Specialize the common single-literal shapes to plain gates.
      if (n.lo == kFalse && n.hi == kTrue) {
        out = sel;
      } else if (n.lo == kTrue && n.hi == kFalse) {
        out = net.add_not(sel);
      } else if (n.lo == kFalse) {
        out = net.add_and(sel, self(self, n.hi));
      } else if (n.hi == kFalse) {
        out = net.add_and(net.add_not(sel), self(self, n.lo));
      } else if (n.lo == kTrue) {
        out = net.add_or(net.add_not(sel), self(self, n.hi));
      } else if (n.hi == kTrue) {
        out = net.add_or(sel, self(self, n.lo));
      } else {
        out = net.add_mux(sel, self(self, n.lo), self(self, n.hi));
      }
    }
    memo.emplace(r, out);
    return out;
  };
  return rec(rec, f);
}

}  // namespace lps::bdd
