#include "bdd/bdd.hpp"

#include "core/diag.hpp"

#include <algorithm>
#include <cmath>

namespace lps::bdd {

namespace {
constexpr unsigned kConstVar = 0xFFFFFFFFu;  // ordering sentinel for 0/1
}

Manager::Manager(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  nodes_.push_back({kConstVar, kFalse, kFalse});  // FALSE
  nodes_.push_back({kConstVar, kTrue, kTrue});    // TRUE
}

unsigned Manager::add_var() { return num_vars_++; }

Ref Manager::mk(unsigned var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  Key k{var, lo, hi};
  auto it = unique_.find(k);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) throw NodeLimitExceeded();
  Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(k, r);
  return r;
}

Ref Manager::var(unsigned v) {
  LPS_CHECK(v < num_vars_, "BDD variable " + std::to_string(v) +
                               " not declared (manager has " +
                               std::to_string(num_vars_) + " vars)");
  return mk(v, kFalse, kTrue);
}

Ref Manager::nvar(unsigned v) {
  LPS_CHECK(v < num_vars_, "BDD variable " + std::to_string(v) +
                               " not declared (manager has " +
                               std::to_string(num_vars_) + " vars)");
  return mk(v, kTrue, kFalse);
}

Ref Manager::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  Key k{f, g, h};
  if (auto it = ite_cache_.find(k); it != ite_cache_.end()) return it->second;

  unsigned v = nodes_[f].var;
  if (!is_const(g)) v = std::min(v, nodes_[g].var);
  if (!is_const(h)) v = std::min(v, nodes_[h].var);

  auto cof = [&](Ref x, bool hi) -> Ref {
    if (is_const(x) || nodes_[x].var != v) return x;
    return hi ? nodes_[x].hi : nodes_[x].lo;
  };
  Ref lo = ite(cof(f, false), cof(g, false), cof(h, false));
  Ref hi = ite(cof(f, true), cof(g, true), cof(h, true));
  Ref r = mk(v, lo, hi);
  ite_cache_.emplace(k, r);
  return r;
}

Ref Manager::lxor(Ref f, Ref g) { return ite(f, lnot(g), g); }

Ref Manager::cofactor(Ref f, unsigned v, bool value) {
  std::unordered_map<Ref, Ref> memo;  // per-call memo keeps this linear
  auto rec = [&](auto&& self, Ref r) -> Ref {
    if (is_const(r)) return r;
    // Copy fields: mk() may reallocate nodes_ during the recursion.
    Node n = nodes_[r];
    if (n.var > v) return r;
    if (n.var == v) return value ? n.hi : n.lo;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    Ref lo = self(self, n.lo);
    Ref hi = self(self, n.hi);
    Ref out = (lo == n.lo && hi == n.hi) ? r : mk(n.var, lo, hi);
    memo.emplace(r, out);
    return out;
  };
  return rec(rec, f);
}

Ref Manager::exists(Ref f, unsigned v) {
  return lor(cofactor(f, v, false), cofactor(f, v, true));
}

Ref Manager::forall(Ref f, unsigned v) {
  return land(cofactor(f, v, false), cofactor(f, v, true));
}

Ref Manager::exists(Ref f, std::span<const unsigned> vars) {
  for (unsigned v : vars) f = exists(f, v);
  return f;
}

Ref Manager::forall(Ref f, std::span<const unsigned> vars) {
  for (unsigned v : vars) f = forall(f, v);
  return f;
}

Ref Manager::compose(Ref f, unsigned v, Ref g) {
  return ite(g, cofactor(f, v, true), cofactor(f, v, false));
}

double Manager::sat_count(Ref f) {
  std::vector<double> p(num_vars_, 0.5);
  return probability(f, p) * std::ldexp(1.0, static_cast<int>(num_vars_));
}

double Manager::probability(Ref f, std::span<const double> p) {
  LPS_CHECK(p.size() >= num_vars_,
            "probability vector has " + std::to_string(p.size()) +
                " entries for " + std::to_string(num_vars_) + " variables");
  std::unordered_map<Ref, double> memo;
  auto rec = [&](auto&& self, Ref r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const Node& n = nodes_[r];
    double q =
        (1.0 - p[n.var]) * self(self, n.lo) + p[n.var] * self(self, n.hi);
    memo.emplace(r, q);
    return q;
  };
  return rec(rec, f);
}

std::vector<unsigned> Manager::support(Ref f) {
  std::vector<bool> seen_node(nodes_.size(), false);
  std::vector<bool> seen_var(num_vars_, false);
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (is_const(r) || seen_node[r]) continue;
    seen_node[r] = true;
    seen_var[nodes_[r].var] = true;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (seen_var[v]) vars.push_back(v);
  return vars;
}

std::size_t Manager::size(Ref f) {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<Ref> stack{f};
  std::size_t count = 0;
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (is_const(r) || seen[r]) continue;
    seen[r] = true;
    ++count;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return count;
}

std::optional<std::vector<bool>> Manager::any_sat(Ref f) {
  if (f == kFalse) return std::nullopt;
  std::vector<bool> a(num_vars_, false);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.hi != kFalse) {
      a[n.var] = true;
      f = n.hi;
    } else {
      a[n.var] = false;
      f = n.lo;
    }
  }
  return a;
}

bool Manager::eval(Ref f, const std::vector<bool>& a) const {
  while (!is_const(f)) {
    const Node& n = nodes_[f];
    f = a[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::vector<std::string> Manager::cubes(Ref f, unsigned width) {
  std::vector<std::string> out;
  std::string cur(width, '-');
  auto rec = [&](auto&& self, Ref r) -> void {
    if (r == kFalse) return;
    if (r == kTrue) {
      out.push_back(cur);
      return;
    }
    const Node& n = nodes_[r];
    if (n.var < width) {
      cur[n.var] = '0';
      self(self, n.lo);
      cur[n.var] = '1';
      self(self, n.hi);
      cur[n.var] = '-';
    } else {
      // Variable beyond the printed width: branch without recording.
      self(self, n.lo);
      self(self, n.hi);
    }
  };
  rec(rec, f);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Manager::clear_caches() { ite_cache_.clear(); }

}  // namespace lps::bdd
