#include "bdd/bdd.hpp"

#include "core/diag.hpp"
#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace lps::bdd {

namespace {
constexpr unsigned kConstVar = 0xFFFFFFFFu;  // ordering sentinel for 0/1
constexpr std::size_t kMinUniqueSlots = 1u << 10;
constexpr std::size_t kMinIteEntries = 1u << 12;
constexpr std::size_t kMaxIteEntries = 1u << 20;
}  // namespace

Manager::Manager(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  nodes_.push_back({kConstVar, kFalse, kFalse});  // FALSE
  nodes_.push_back({kConstVar, kTrue, kTrue});    // TRUE
  unique_slots_.assign(kMinUniqueSlots, kEmptySlot);
  ite_cache_.assign(kMinIteEntries, IteEntry{});
}

Manager::~Manager() {
  if (nodes_.size() < 2) return;  // moved-from shell: its stats moved on
  namespace m = core::metrics;
  m::count("bdd.managers");
  m::count("bdd.nodes", static_cast<double>(nodes_.size()));
  m::count("bdd.ite_lookups", static_cast<double>(cache_lookups_));
  m::count("bdd.ite_hits", static_cast<double>(cache_hits_));
  m::count("bdd.unique_hits", static_cast<double>(unique_hits_));
}

unsigned Manager::add_var() { return num_vars_++; }

void Manager::grow_unique(std::size_t min_slots) {
  std::size_t ns = unique_slots_.size();
  while (ns < min_slots) ns <<= 1;
  unique_slots_.assign(ns, kEmptySlot);
  std::size_t mask = ns - 1;
  for (Ref r = kTrue + 1; r < nodes_.size(); ++r) {
    const Node& n = nodes_[r];
    std::size_t i = hash3(n.var, n.lo, n.hi) & mask;
    while (unique_slots_[i] != kEmptySlot) i = (i + 1) & mask;
    unique_slots_[i] = r;
  }
  // Scale the lossy computed table with the unique table (rehash in place;
  // direct-mapped collisions simply evict).
  std::size_t want =
      std::clamp(ns / 2, kMinIteEntries, kMaxIteEntries);
  if (want > ite_cache_.size()) {
    std::vector<IteEntry> old;
    old.swap(ite_cache_);
    ite_cache_.assign(want, IteEntry{});
    std::size_t imask = want - 1;
    for (const IteEntry& e : old)
      if (e.f != kEmptySlot) ite_cache_[hash3(e.f, e.g, e.h) & imask] = e;
  }
}

void Manager::reserve(std::size_t n) {
  nodes_.reserve(n + 2);
  // Keep the probe table under ~70% load for n nodes.
  std::size_t want = kMinUniqueSlots;
  while (want * 7 < n * 10) want <<= 1;
  if (want > unique_slots_.size()) grow_unique(want);
}

Ref Manager::mk(unsigned var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  std::size_t mask = unique_slots_.size() - 1;
  std::size_t i = hash3(var, lo, hi) & mask;
  for (;;) {
    Ref slot = unique_slots_[i];
    if (slot == kEmptySlot) break;
    const Node& n = nodes_[slot];
    if (n.var == var && n.lo == lo && n.hi == hi) {
      ++unique_hits_;
      return slot;
    }
    i = (i + 1) & mask;
  }
  if (nodes_.size() >= node_limit_) throw NodeLimitExceeded();
  Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_slots_[i] = r;
  if (++unique_used_ * 10 >= unique_slots_.size() * 7)
    grow_unique(unique_slots_.size() * 2);
  return r;
}

Ref Manager::var(unsigned v) {
  LPS_CHECK(v < num_vars_, "BDD variable " + std::to_string(v) +
                               " not declared (manager has " +
                               std::to_string(num_vars_) + " vars)");
  return mk(v, kFalse, kTrue);
}

Ref Manager::nvar(unsigned v) {
  LPS_CHECK(v < num_vars_, "BDD variable " + std::to_string(v) +
                               " not declared (manager has " +
                               std::to_string(num_vars_) + " vars)");
  return mk(v, kTrue, kFalse);
}

Ref Manager::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  std::size_t slot = hash3(f, g, h) & (ite_cache_.size() - 1);
  ++cache_lookups_;
  {
    const IteEntry& e = ite_cache_[slot];
    if (e.f == f && e.g == g && e.h == h) {
      ++cache_hits_;
      return e.result;
    }
  }

  unsigned v = nodes_[f].var;
  if (!is_const(g)) v = std::min(v, nodes_[g].var);
  if (!is_const(h)) v = std::min(v, nodes_[h].var);

  auto cof = [&](Ref x, bool hi) -> Ref {
    if (is_const(x) || nodes_[x].var != v) return x;
    return hi ? nodes_[x].hi : nodes_[x].lo;
  };
  Ref lo = ite(cof(f, false), cof(g, false), cof(h, false));
  Ref hi = ite(cof(f, true), cof(g, true), cof(h, true));
  Ref r = mk(v, lo, hi);
  // Recompute the slot: the recursion above may have grown the cache.
  ite_cache_[hash3(f, g, h) & (ite_cache_.size() - 1)] = {f, g, h, r};
  return r;
}

Ref Manager::lxor(Ref f, Ref g) { return ite(f, lnot(g), g); }

Ref Manager::cofactor(Ref f, unsigned v, bool value) {
  std::unordered_map<Ref, Ref> memo;  // per-call memo keeps this linear
  auto rec = [&](auto&& self, Ref r) -> Ref {
    if (is_const(r)) return r;
    // Copy fields: mk() may reallocate nodes_ during the recursion.
    Node n = nodes_[r];
    if (n.var > v) return r;
    if (n.var == v) return value ? n.hi : n.lo;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    Ref lo = self(self, n.lo);
    Ref hi = self(self, n.hi);
    Ref out = (lo == n.lo && hi == n.hi) ? r : mk(n.var, lo, hi);
    memo.emplace(r, out);
    return out;
  };
  return rec(rec, f);
}

Ref Manager::exists(Ref f, unsigned v) {
  return lor(cofactor(f, v, false), cofactor(f, v, true));
}

Ref Manager::forall(Ref f, unsigned v) {
  return land(cofactor(f, v, false), cofactor(f, v, true));
}

Ref Manager::exists(Ref f, std::span<const unsigned> vars) {
  for (unsigned v : vars) f = exists(f, v);
  return f;
}

Ref Manager::forall(Ref f, std::span<const unsigned> vars) {
  for (unsigned v : vars) f = forall(f, v);
  return f;
}

Ref Manager::compose(Ref f, unsigned v, Ref g) {
  return ite(g, cofactor(f, v, true), cofactor(f, v, false));
}

double Manager::sat_count(Ref f) {
  std::vector<double> p(num_vars_, 0.5);
  return probability(f, p) * std::ldexp(1.0, static_cast<int>(num_vars_));
}

double Manager::probability(Ref f, std::span<const double> p) {
  LPS_CHECK(p.size() >= num_vars_,
            "probability vector has " + std::to_string(p.size()) +
                " entries for " + std::to_string(num_vars_) + " variables");
  std::unordered_map<Ref, double> memo;
  auto rec = [&](auto&& self, Ref r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const Node& n = nodes_[r];
    double q =
        (1.0 - p[n.var]) * self(self, n.lo) + p[n.var] * self(self, n.hi);
    memo.emplace(r, q);
    return q;
  };
  return rec(rec, f);
}

std::vector<unsigned> Manager::support(Ref f) {
  std::vector<bool> seen_node(nodes_.size(), false);
  std::vector<bool> seen_var(num_vars_, false);
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (is_const(r) || seen_node[r]) continue;
    seen_node[r] = true;
    seen_var[nodes_[r].var] = true;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (seen_var[v]) vars.push_back(v);
  return vars;
}

std::size_t Manager::size(Ref f) {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<Ref> stack{f};
  std::size_t count = 0;
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (is_const(r) || seen[r]) continue;
    seen[r] = true;
    ++count;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return count;
}

std::optional<std::vector<bool>> Manager::any_sat(Ref f) {
  if (f == kFalse) return std::nullopt;
  std::vector<bool> a(num_vars_, false);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.hi != kFalse) {
      a[n.var] = true;
      f = n.hi;
    } else {
      a[n.var] = false;
      f = n.lo;
    }
  }
  return a;
}

bool Manager::eval(Ref f, const std::vector<bool>& a) const {
  while (!is_const(f)) {
    const Node& n = nodes_[f];
    f = a[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::vector<std::string> Manager::cubes(Ref f, unsigned width) {
  std::vector<std::string> out;
  std::string cur(width, '-');
  auto rec = [&](auto&& self, Ref r) -> void {
    if (r == kFalse) return;
    if (r == kTrue) {
      out.push_back(cur);
      return;
    }
    const Node& n = nodes_[r];
    if (n.var < width) {
      cur[n.var] = '0';
      self(self, n.lo);
      cur[n.var] = '1';
      self(self, n.hi);
      cur[n.var] = '-';
    } else {
      // Variable beyond the printed width: branch without recording.
      self(self, n.lo);
      self(self, n.hi);
    }
  };
  rec(rec, f);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Manager::clear_caches() {
  ite_cache_.assign(ite_cache_.size(), IteEntry{});
  cache_hits_ = cache_lookups_ = 0;
}

}  // namespace lps::bdd
