#include "bdd/bdd.hpp"

#include "core/diag.hpp"
#include "core/env.hpp"
#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace lps::bdd {

namespace {
constexpr std::size_t kMinUniqueSlots = 1u << 10;
constexpr std::size_t kMinIteEntries = 1u << 12;  // 2-way: 2^11 sets
constexpr std::size_t kMaxIteEntries = 1u << 20;
}  // namespace

Config default_config() {
  static const bool complement = core::env_bool_or("LPS_BDD_COMPLEMENT", true);
  static const long trigger =
      core::env_long_or("LPS_BDD_GC_TRIGGER", 1L << 8, 1L << 26, 1L << 15);
  Config c;
  c.complement_edges = complement;
  c.gc_trigger = static_cast<std::size_t>(trigger);
  return c;
}

// Public operations pin their arguments and may collect at the outermost
// entry only: a nested call (ite inside exists, mk inside sift) must never
// sweep the temporaries its caller is still holding.
class Manager::OpGuard {
 public:
  OpGuard(Manager& m, std::initializer_list<Ref> pins) : m_(m) {
    if (m_.op_depth_++ == 0)
      m_.maybe_gc(std::span<const Ref>(pins.begin(), pins.size()));
  }
  ~OpGuard() { --m_.op_depth_; }
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  Manager& m_;
};

Manager::Manager(unsigned num_vars, const Config& config)
    : num_vars_(num_vars),
      node_limit_(config.node_limit),
      complement_(config.complement_edges),
      auto_gc_(config.auto_gc),
      gc_trigger_base_(config.gc_trigger),
      gc_trigger_(config.gc_trigger) {
  nodes_.push_back({kConstVar, kFalse, kFalse});  // the terminal (index 0)
  ref_count_.push_back(0);
  level_of_.resize(num_vars_);
  var_at_.resize(num_vars_);
  std::iota(level_of_.begin(), level_of_.end(), 0u);
  std::iota(var_at_.begin(), var_at_.end(), 0u);
  unique_slots_.assign(kMinUniqueSlots, kEmptySlot);
  ite_cache_.assign(kMinIteEntries, IteEntry{});
}

Manager::Manager(unsigned num_vars, std::size_t node_limit)
    : Manager(num_vars, [node_limit] {
        Config c = default_config();
        c.node_limit = node_limit;
        c.auto_gc = false;
        return c;
      }()) {}

Manager::~Manager() {
  if (nodes_.empty()) return;  // moved-from shell: its stats moved on
  core::metrics::count("bdd.managers");
  core::metrics::count("bdd.peak_live",
                       static_cast<double>(peak_live_nodes_));
  flush_metrics();
}

void Manager::flush_metrics() {
  namespace m = core::metrics;
  if (nodes_allocated_) m::count("bdd.nodes", static_cast<double>(nodes_allocated_));
  if (cache_lookups_) m::count("bdd.ite_lookups", static_cast<double>(cache_lookups_));
  if (cache_hits_) m::count("bdd.ite_hits", static_cast<double>(cache_hits_));
  if (unique_hits_) m::count("bdd.unique_hits", static_cast<double>(unique_hits_));
  if (gc_runs_) m::count("bdd.gc.runs", static_cast<double>(gc_runs_));
  if (gc_swept_) m::count("bdd.gc.swept", static_cast<double>(gc_swept_));
  if (sift_swaps_) m::count("bdd.sift.swaps", static_cast<double>(sift_swaps_));
  nodes_allocated_ = cache_lookups_ = cache_hits_ = unique_hits_ = 0;
  gc_runs_ = gc_swept_ = sift_swaps_ = 0;
}

unsigned Manager::add_var() {
  unsigned v = num_vars_++;
  level_of_.push_back(v);
  var_at_.push_back(v);
  return v;
}

void Manager::grow_unique(std::size_t min_slots) {
  std::size_t ns = unique_slots_.size();
  while (ns < min_slots) ns <<= 1;
  unique_slots_.assign(ns, kEmptySlot);
  std::size_t mask = ns - 1;
  unique_used_ = 0;
  for (std::uint32_t idx = 1; idx < nodes_.size(); ++idx) {
    const Node& n = nodes_[idx];
    if (n.var == kFreeVar) continue;
    std::size_t i = hash3(n.var, n.lo, n.hi) & mask;
    while (unique_slots_[i] != kEmptySlot) i = (i + 1) & mask;
    unique_slots_[i] = idx;
    ++unique_used_;
  }
  // Scale the computed table with the unique table (2-way sets; rehash
  // preserves recency because way-0 entries reinsert last).
  std::size_t want = std::clamp(ns / 2, kMinIteEntries, kMaxIteEntries);
  if (want > ite_cache_.size()) {
    std::vector<IteEntry> old;
    old.swap(ite_cache_);
    ite_cache_.assign(want, IteEntry{});
    for (std::size_t s = 0; s * 2 < old.size(); ++s) {
      if (old[2 * s + 1].f != kEmptySlot) {
        const IteEntry& e = old[2 * s + 1];
        ite_insert(e.f, e.g, e.h, e.result);
      }
      if (old[2 * s].f != kEmptySlot) {
        const IteEntry& e = old[2 * s];
        ite_insert(e.f, e.g, e.h, e.result);
      }
    }
  }
}

void Manager::rebuild_unique() { grow_unique(unique_slots_.size()); }

void Manager::reserve(std::size_t n) {
  nodes_.reserve(n + 1);
  ref_count_.reserve(n + 1);
  // Keep the probe table under ~70% load for n nodes.
  std::size_t want = kMinUniqueSlots;
  while (want * 7 < n * 10) want <<= 1;
  if (want > unique_slots_.size()) grow_unique(want);
}

Ref Manager::mk(unsigned var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  // Canonical form: the then-edge is regular.  mk(v, !a, !b) == !mk(v, a, b).
  if (complement_ && is_complemented(hi))
    return mk(var, lo ^ 1u, hi ^ 1u) ^ 1u;
  std::size_t mask = unique_slots_.size() - 1;
  std::size_t i = hash3(var, lo, hi) & mask;
  for (;;) {
    std::uint32_t slot = unique_slots_[i];
    if (slot == kEmptySlot) break;
    const Node& n = nodes_[slot];
    if (n.var == var && n.lo == lo && n.hi == hi) {
      ++unique_hits_;
      return Ref{slot} << 1;
    }
    i = (i + 1) & mask;
  }
  if (live_nodes_ >= node_limit_) throw NodeLimitExceeded();
  std::uint32_t idx;
  if (free_head_ != kNoFree) {
    idx = free_head_;
    free_head_ = nodes_[idx].lo;
    --free_count_;
    nodes_[idx] = Node{var, lo, hi};
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{var, lo, hi});
    ref_count_.push_back(0);
  }
  ++nodes_allocated_;
  ++live_nodes_;
  peak_live_nodes_ = std::max(peak_live_nodes_, live_nodes_);
  unique_slots_[i] = idx;
  if (++unique_used_ * 10 >= unique_slots_.size() * 7)
    grow_unique(unique_slots_.size() * 2);
  return Ref{idx} << 1;
}

Ref Manager::var(unsigned v) {
  LPS_CHECK(v < num_vars_, "BDD variable " + std::to_string(v) +
                               " not declared (manager has " +
                               std::to_string(num_vars_) + " vars)");
  OpGuard guard(*this, {});
  return mk(v, kFalse, kTrue);
}

Ref Manager::nvar(unsigned v) {
  LPS_CHECK(v < num_vars_, "BDD variable " + std::to_string(v) +
                               " not declared (manager has " +
                               std::to_string(num_vars_) + " vars)");
  OpGuard guard(*this, {});
  return mk(v, kTrue, kFalse);
}

Manager::IteEntry* Manager::ite_find(Ref f, Ref g, Ref h) {
  std::size_t sets = ite_cache_.size() / 2;
  std::size_t s = hash3(f, g, h) & (sets - 1);
  IteEntry* e0 = &ite_cache_[2 * s];
  if (e0->f == f && e0->g == g && e0->h == h) return e0;
  IteEntry* e1 = e0 + 1;
  if (e1->f == f && e1->g == g && e1->h == h) {
    std::swap(*e0, *e1);  // age: promote the hit to the MRU way
    return e0;
  }
  return nullptr;
}

void Manager::ite_insert(Ref f, Ref g, Ref h, Ref result) {
  std::size_t sets = ite_cache_.size() / 2;
  std::size_t s = hash3(f, g, h) & (sets - 1);
  IteEntry* e0 = &ite_cache_[2 * s];
  e0[1] = e0[0];  // demote the old MRU; the LRU way is evicted
  e0[0] = IteEntry{f, g, h, result};
}

Ref Manager::ite(Ref f, Ref g, Ref h) {
  OpGuard guard(*this, {f, g, h});
  return ite_rec(f, g, h);
}

Ref Manager::ite_rec(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == f) g = kTrue;
  if (h == f) h = kFalse;
  if (complement_) {
    if (g == (f ^ 1u)) g = kFalse;
    if (h == (f ^ 1u)) h = kTrue;
  }
  if (g == h) return g;
  // Canonical triple: regular f (swap arms), regular g (negate out).
  bool neg = false;
  if (complement_) {
    if (is_complemented(f)) {
      f ^= 1u;
      std::swap(g, h);
    }
    if (is_complemented(g)) {
      neg = true;
      g ^= 1u;
      h ^= 1u;
    }
  }
  if (g == kTrue && h == kFalse) return neg ? (f ^ 1u) : f;
  if (complement_ && g == kFalse && h == kTrue) return neg ? f : (f ^ 1u);

  ++cache_lookups_;
  if (const IteEntry* e = ite_find(f, g, h)) {
    ++cache_hits_;
    return neg ? (e->result ^ 1u) : e->result;
  }

  unsigned lvl = level_of_[node(f).var];
  if (!is_const(g)) lvl = std::min(lvl, level_of_[node(g).var]);
  if (!is_const(h)) lvl = std::min(lvl, level_of_[node(h).var]);
  unsigned v = var_at_[lvl];

  auto cof = [&](Ref x, bool hi_side) -> Ref {
    if (is_const(x)) return x;
    const Node& n = nodes_[index_of(x)];
    if (level_of_[n.var] != lvl) return x;
    return (hi_side ? n.hi : n.lo) ^ (x & 1u);
  };
  Ref lo = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  Ref hi = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  Ref r = mk(v, lo, hi);
  ite_insert(f, g, h, r);
  return neg ? (r ^ 1u) : r;
}

Ref Manager::lxor(Ref f, Ref g) {
  if (complement_) {
    OpGuard guard(*this, {f, g});
    return ite_rec(f, g ^ 1u, g);
  }
  return ite(f, lnot(g), g);
}

Ref Manager::cofactor(Ref f, unsigned v, bool value) {
  OpGuard guard(*this, {f});
  std::unordered_map<std::uint32_t, Ref> memo;  // by index: cof(!x) = !cof(x)
  unsigned vl = level_of_[v];
  auto rec = [&](auto&& self, Ref r) -> Ref {
    if (is_const(r)) return r;
    Ref c = r & 1u;
    std::uint32_t idx = index_of(r);
    // Copy fields: mk() may reallocate nodes_ during the recursion.
    Node n = nodes_[idx];
    if (level_of_[n.var] > vl) return r;
    if (n.var == v) return (value ? n.hi : n.lo) ^ c;
    if (auto it = memo.find(idx); it != memo.end()) return it->second ^ c;
    Ref lo = self(self, n.lo);
    Ref hi = self(self, n.hi);
    Ref out = (lo == n.lo && hi == n.hi) ? (Ref{idx} << 1) : mk(n.var, lo, hi);
    memo.emplace(idx, out);
    return out ^ c;
  };
  return rec(rec, f);
}

Ref Manager::exists(Ref f, unsigned v) {
  OpGuard guard(*this, {f});
  return lor(cofactor(f, v, false), cofactor(f, v, true));
}

Ref Manager::forall(Ref f, unsigned v) {
  OpGuard guard(*this, {f});
  return land(cofactor(f, v, false), cofactor(f, v, true));
}

Ref Manager::exists(Ref f, std::span<const unsigned> vars) {
  OpGuard guard(*this, {f});
  for (unsigned v : vars) f = exists(f, v);
  return f;
}

Ref Manager::forall(Ref f, std::span<const unsigned> vars) {
  OpGuard guard(*this, {f});
  for (unsigned v : vars) f = forall(f, v);
  return f;
}

Ref Manager::compose(Ref f, unsigned v, Ref g) {
  OpGuard guard(*this, {f, g});
  return ite(g, cofactor(f, v, true), cofactor(f, v, false));
}

Ref Manager::ref(Ref r) {
  if (!is_const(r)) ++ref_count_[index_of(r)];
  return r;
}

void Manager::deref(Ref r) {
  if (is_const(r)) return;
  std::uint32_t idx = index_of(r);
  LPS_CHECK(ref_count_[idx] > 0, "deref of an unreferenced BDD node");
  --ref_count_[idx];
}

std::size_t Manager::collect(std::span<const Ref> pins) {
  std::vector<char> mark(nodes_.size(), 0);
  mark[0] = 1;  // the terminal is permanent
  std::vector<std::uint32_t> stack;
  auto push = [&](Ref r) {
    std::uint32_t i = index_of(r);
    if (!mark[i]) {
      mark[i] = 1;
      stack.push_back(i);
    }
  };
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    if (ref_count_[i] > 0 && nodes_[i].var != kFreeVar) {
      mark[i] = 1;
      stack.push_back(i);
    }
  for (Ref r : pins) push(r);
  while (!stack.empty()) {
    std::uint32_t i = stack.back();
    stack.pop_back();
    push(nodes_[i].lo);
    push(nodes_[i].hi);
  }
  std::size_t swept = 0;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (mark[i] || nodes_[i].var == kFreeVar) continue;
    nodes_[i].var = kFreeVar;
    nodes_[i].lo = free_head_;
    nodes_[i].hi = 0;
    free_head_ = i;
    ++free_count_;
    ++swept;
  }
  live_nodes_ -= swept;
  rebuild_unique();
  // Cached triples may name swept nodes; drop the computed table wholesale.
  ite_cache_.assign(ite_cache_.size(), IteEntry{});
  ++gc_runs_;
  gc_swept_ += swept;
  return swept;
}

std::size_t Manager::gc() { return collect({}); }

void Manager::maybe_gc(std::span<const Ref> pins) {
  if (!auto_gc_) return;
  // Collect at the configured trigger, and also under node-budget pressure:
  // a tight node_limit with a higher trigger would otherwise throw
  // NodeLimitExceeded with reclaimable garbage still in the pool.  The
  // low-water mark bounds pressure collections — the live set must grow 25%
  // past the last sweep's survivors before we pay for another one, so a
  // build whose rooted functions genuinely fill the budget degrades to the
  // limit exception instead of sweeping on every operation.
  bool pressured = live_nodes_ >= node_limit_ / 2 &&
                   live_nodes_ >= gc_low_water_ + (gc_low_water_ >> 2);
  if (live_nodes_ < gc_trigger_ && !pressured) return;
  collect(pins);
  gc_low_water_ = live_nodes_;
  // Back off while the live set itself is large, so a build whose rooted
  // functions keep growing doesn't re-collect on every operation.
  gc_trigger_ = std::max(gc_trigger_base_, live_nodes_ * 2);
}

void Manager::swap_levels(unsigned l, std::vector<std::size_t>& counts) {
  unsigned x = var_at_[l], y = var_at_[l + 1];
  // Nodes labelled x with a y-child are the only ones the swap rewrites.
  std::vector<std::uint32_t> r_set;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var != x) continue;
    bool lo_y = !is_const(n.lo) && nodes_[index_of(n.lo)].var == y;
    bool hi_y = !is_const(n.hi) && nodes_[index_of(n.hi)].var == y;
    if (lo_y || hi_y) r_set.push_back(i);
  }
  struct Rw {
    std::uint32_t idx;
    Ref a0, a1;
  };
  std::vector<Rw> rws;
  rws.reserve(r_set.size());
  // Pass 1 (may throw NodeLimitExceeded): build the new cofactor children.
  // Only garbage is created on a throw — order and nodes are untouched.
  for (std::uint32_t i : r_set) {
    Node n = nodes_[i];  // copy: mk may reallocate nodes_
    auto split = [&](Ref e, Ref& c0, Ref& c1) {
      if (!is_const(e) && nodes_[index_of(e)].var == y) {
        const Node& en = nodes_[index_of(e)];
        Ref c = e & 1u;
        c0 = en.lo ^ c;
        c1 = en.hi ^ c;
      } else {
        c0 = c1 = e;
      }
    };
    Ref l0, l1, h0, h1;
    split(n.lo, l0, l1);
    split(n.hi, h0, h1);
    Ref a0 = mk(x, l0, h0);
    Ref a1 = mk(x, l1, h1);
    // a1 is regular by construction (then-edges are regular), so the
    // in-place rewrite below never flips the node's polarity, and a
    // reachable y-node implies dependence on y, so a0 != a1.
    LPS_CHECK(a0 != a1, "level swap produced a redundant node");
    LPS_CHECK(!complement_ || !is_complemented(a1),
              "level swap produced a complemented then-edge");
    rws.push_back({i, a0, a1});
  }
  // Pass 2 (no-throw): swap the order, rewrite in place — every rooted Ref
  // keeps its index and function — then rebuild tables and collect the
  // orphaned cofactor structure.
  var_at_[l] = y;
  var_at_[l + 1] = x;
  level_of_[x] = l + 1;
  level_of_[y] = l;
  for (const Rw& rw : rws) nodes_[rw.idx] = Node{y, rw.a0, rw.a1};
  ++sift_swaps_;
  if (!rws.empty()) {
    collect({});
    std::fill(counts.begin(), counts.end(), 0);
    for (std::uint32_t i = 1; i < nodes_.size(); ++i)
      if (nodes_[i].var != kFreeVar) ++counts[nodes_[i].var];
  }
}

void Manager::sift(const SiftOptions& opt) {
  OpGuard guard(*this, {});
  if (num_vars_ < 2) return;
  collect({});  // exact per-variable counts need a garbage-free node array
  const unsigned n_levels = num_vars_;
  std::vector<std::size_t> counts(n_levels, 0);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].var != kFreeVar) ++counts[nodes_[i].var];
  auto weight = [&](unsigned v) {
    return v < opt.weights.size() ? opt.weights[v] : 1.0;
  };
  auto cost = [&] {
    double c = 0.0;
    for (unsigned v = 0; v < n_levels; ++v)
      c += weight(v) * static_cast<double>(counts[v]);
    return c;
  };
  // Sift the busiest variables first (ties by index for determinism).
  std::vector<unsigned> order(n_levels);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return counts[a] > counts[b];
  });
  std::size_t n_sift = opt.max_vars
                           ? std::min<std::size_t>(opt.max_vars, n_levels)
                           : n_levels;
  for (std::size_t k = 0; k < n_sift; ++k) {
    unsigned v = order[k];
    if (counts[v] == 0) continue;
    double cur = cost();
    double best = cur;
    unsigned best_level = level_of_[v];
    while (level_of_[v] + 1 < n_levels) {  // walk down
      swap_levels(level_of_[v], counts);
      cur = cost();
      if (cur < best) {
        best = cur;
        best_level = level_of_[v];
      } else if (cur > best * opt.growth_limit) {
        break;
      }
    }
    while (level_of_[v] > 0) {  // walk up through the whole order
      swap_levels(level_of_[v] - 1, counts);
      cur = cost();
      if (cur < best) {
        best = cur;
        best_level = level_of_[v];
      } else if (cur > best * opt.growth_limit) {
        break;
      }
    }
    while (level_of_[v] < best_level) swap_levels(level_of_[v], counts);
    while (level_of_[v] > best_level) swap_levels(level_of_[v] - 1, counts);
  }
}

double Manager::sat_count(Ref f) {
  std::vector<double> p(num_vars_, 0.5);
  return probability(f, p) * std::ldexp(1.0, static_cast<int>(num_vars_));
}

double Manager::probability(Ref f, std::span<const double> p) {
  LPS_CHECK(p.size() >= num_vars_,
            "probability vector has " + std::to_string(p.size()) +
                " entries for " + std::to_string(num_vars_) + " variables");
  std::unordered_map<std::uint32_t, double> memo;  // P(!f) = 1 - P(f)
  auto rec = [&](auto&& self, Ref r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    bool c = is_complemented(r);
    std::uint32_t idx = index_of(r);
    double q;
    if (auto it = memo.find(idx); it != memo.end()) {
      q = it->second;
    } else {
      const Node& n = nodes_[idx];
      q = (1.0 - p[n.var]) * self(self, n.lo) + p[n.var] * self(self, n.hi);
      memo.emplace(idx, q);
    }
    return c ? 1.0 - q : q;
  };
  return rec(rec, f);
}

std::vector<unsigned> Manager::support(Ref f) {
  std::vector<bool> seen_node(nodes_.size(), false);
  std::vector<bool> seen_var(num_vars_, false);
  std::vector<std::uint32_t> stack{index_of(f)};
  while (!stack.empty()) {
    std::uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || seen_node[i]) continue;
    seen_node[i] = true;
    seen_var[nodes_[i].var] = true;
    stack.push_back(index_of(nodes_[i].lo));
    stack.push_back(index_of(nodes_[i].hi));
  }
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (seen_var[v]) vars.push_back(v);
  return vars;
}

std::size_t Manager::size(Ref f) {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<std::uint32_t> stack{index_of(f)};
  std::size_t count = 0;
  while (!stack.empty()) {
    std::uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || seen[i]) continue;
    seen[i] = true;
    ++count;
    stack.push_back(index_of(nodes_[i].lo));
    stack.push_back(index_of(nodes_[i].hi));
  }
  return count;
}

std::optional<std::vector<bool>> Manager::any_sat(Ref f) {
  if (f == kFalse) return std::nullopt;
  std::vector<bool> a(num_vars_, false);
  while (!is_const(f)) {
    const Node& n = node(f);
    Ref hi = n.hi ^ (f & 1u);
    if (hi != kFalse) {
      a[n.var] = true;
      f = hi;
    } else {
      // Canonicity: a non-FALSE ref is satisfiable, so the else-arm is.
      a[n.var] = false;
      f = n.lo ^ (f & 1u);
    }
  }
  return a;
}

bool Manager::eval(Ref f, const std::vector<bool>& a) const {
  while (!is_const(f)) {
    const Node& n = node(f);
    f = (a[n.var] ? n.hi : n.lo) ^ (f & 1u);
  }
  return f == kTrue;
}

std::vector<std::string> Manager::cubes(Ref f, unsigned width) {
  std::vector<std::string> out;
  std::string cur(width, '-');
  auto rec = [&](auto&& self, Ref r) -> void {
    if (r == kFalse) return;
    if (r == kTrue) {
      out.push_back(cur);
      return;
    }
    const Node& n = node(r);
    Ref c = r & 1u;
    if (n.var < width) {
      cur[n.var] = '0';
      self(self, n.lo ^ c);
      cur[n.var] = '1';
      self(self, n.hi ^ c);
      cur[n.var] = '-';
    } else {
      // Variable beyond the printed width: branch without recording.
      self(self, n.lo ^ c);
      self(self, n.hi ^ c);
    }
  };
  rec(rec, f);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Manager::clear_caches() {
  ite_cache_.assign(ite_cache_.size(), IteEntry{});
  flush_metrics();
}

}  // namespace lps::bdd
