// bdd.hpp — reduced ordered binary decision diagrams at synthesis scale.
//
// Several surveyed techniques are symbolic: exact signal-probability
// computation under spatial correlation (§IV-A / [16]), controllability and
// observability don't-care extraction (§III-A.1 / [37,38,19]), universal
// quantification for precomputation-logic selection ([30]), formal
// equivalence checking of every rewrite, and BDD-derived MUX-network
// synthesis (Popel).  The synthesis workload is what forced the package
// past "simplicity over peak capacity": this manager supports
//
//  * complement edges on the else-arm.  A Ref is (node_index << 1) | c;
//    the complement bit negates the pointed-to function, so negation is
//    O(1) and f / !f share one DAG.  Canonical form: the then-edge of every
//    node is regular (never complemented), which keeps equality-of-Ref
//    equivalent to equality-of-function.  kFalse (0) and kTrue (1) are the
//    two polarities of the single terminal at node index 0.
//    `Config::complement_edges = false` disables the normalization and the
//    complement-based ITE canonicalization, reproducing the historical
//    two-terminal manager's structure for differential tests.
//
//  * reference-counted roots + mark-and-sweep garbage collection.  ref() /
//    deref() pin externally held functions; gc() sweeps everything
//    unreachable from the pinned set onto a free list that mk() reuses, so
//    long build/discard churn no longer grows the node array
//    monotonically.  With `Config::auto_gc`, collection also runs
//    automatically at public-operation entry once live_nodes() crosses
//    gc_trigger (the operation's own arguments are pinned for the sweep).
//    Auto-GC contract: every Ref held across a public call must be
//    rooted or be an argument of that call — chains like
//    `h = op2(op1(f, g), k)` are safe, but holding two unrooted temporaries
//    across a second call is not.  Raw managers default to auto_gc=false.
//
//  * a 2-way set-associative aging computed table for ITE (MRU entry
//    first within each set) replacing the direct-mapped lossy cache, and
//    the same allocation-lean open-addressing unique table as before
//    (slots store node indices; keys are re-read from the node array).
//
//  * sifting-based dynamic reordering (sift()).  Variables move through
//    the order by adjacent-level swaps that rewrite affected nodes in
//    place, so rooted Refs survive reordering with their functions intact
//    (unrooted Refs do not: each swap garbage-collects).  The cost
//    function is sum over variables of live-node-count × weight, so a
//    caller can weight levels by per-variable switching activity
//    (SiftOptions::weights, fed from sim::ActivityTrace) and the order
//    optimizes toward cheap MUX networks rather than raw size.
//
// Counter lifetime: the bdd.* metrics (allocation, table and GC counters)
// are flushed to the global registry by clear_caches() and by the
// destructor, and reset to zero on each flush — a long-lived manager
// (e.g. a per-round resynthesis BDD view) reports per-window deltas, not
// stale lifetime totals.  Accessors (cache_hits() etc.) read the
// counters accumulated since the last flush.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace lps::bdd {

/// Tagged reference to a function: (node index << 1) | complement bit.
/// Node index 0 is the terminal, so kFalse = 0 and kTrue = 1 keep their
/// historical values.
using Ref = std::uint32_t;
inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

/// Complement-bit helpers (meaningful only for refs of one manager).
inline constexpr bool is_complemented(Ref r) { return (r & 1u) != 0; }
inline constexpr Ref regular(Ref r) { return r & ~Ref{1}; }
inline constexpr std::uint32_t index_of(Ref r) { return r >> 1; }

/// Thrown when a construction exceeds the manager's live-node budget.
struct NodeLimitExceeded : std::runtime_error {
  NodeLimitExceeded() : std::runtime_error("BDD node limit exceeded") {}
};

/// Manager construction knobs.  default_config() seeds complement_edges
/// and gc_trigger from the LPS_BDD_COMPLEMENT / LPS_BDD_GC_TRIGGER
/// environment knobs (parsed once through core/env); auto_gc always
/// defaults to off — opting in is the caller's promise that it roots
/// everything it holds across public calls (build_bdds does).
struct Config {
  /// Bounds *live* nodes (free-listed ones don't count).
  std::size_t node_limit = 4u << 20;
  bool complement_edges = true;
  bool auto_gc = false;
  /// Live-node threshold that arms automatic collection.
  std::size_t gc_trigger = std::size_t{1} << 15;
};
/// Environment-seeded defaults (LPS_BDD_* knobs).
Config default_config();

class Manager {
 public:
  explicit Manager(unsigned num_vars, const Config& config);
  /// Historical constructor: default_config() with `node_limit` overridden
  /// (complement edges per LPS_BDD_COMPLEMENT, no auto-GC).
  explicit Manager(unsigned num_vars, std::size_t node_limit = 4u << 20);
  /// Flushes the bdd.* counters (see header comment) and counts
  /// bdd.managers.
  ~Manager();

  Manager(Manager&&) noexcept = default;
  Manager& operator=(Manager&&) noexcept = default;

  unsigned num_vars() const { return num_vars_; }
  /// Allocated node-array entries (terminal + live + free-listed).
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Alias of num_nodes() for instrumentation call sites.
  std::size_t nodes() const { return nodes_.size(); }
  /// Internal nodes currently reachable-or-allocated (excludes the
  /// terminal and the free list).  This is what node_limit bounds.
  std::size_t live_nodes() const { return live_nodes_; }
  /// High-water mark of live_nodes() over the manager's lifetime.
  std::size_t peak_live_nodes() const { return peak_live_nodes_; }

  /// Counters since the last flush (see header comment on lifetime).
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_lookups() const { return cache_lookups_; }
  std::uint64_t unique_hits() const { return unique_hits_; }
  std::uint64_t gc_runs() const { return gc_runs_; }
  std::uint64_t gc_swept() const { return gc_swept_; }
  std::uint64_t sift_swaps() const { return sift_swaps_; }

  /// Capacity hint: pre-size the node array and unique table for about `n`
  /// nodes, avoiding growth rehashes during a large build.
  void reserve(std::size_t n);

  /// Add another variable at the bottom of the order; returns its index.
  unsigned add_var();

  /// Current position of variable v in the order (top = 0).
  unsigned level_of(unsigned v) const { return level_of_[v]; }
  /// Variable at each level, top to bottom.
  const std::vector<unsigned>& var_order() const { return var_at_; }

  Ref var(unsigned v);   // projection function x_v
  Ref nvar(unsigned v);  // !x_v

  Ref ite(Ref f, Ref g, Ref h);
  Ref land(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref lor(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref lnot(Ref f) {
    return complement_ ? (f ^ 1u) : ite(f, kFalse, kTrue);
  }
  Ref lxor(Ref f, Ref g);
  Ref lxnor(Ref f, Ref g) { return lnot(lxor(f, g)); }
  Ref implies(Ref f, Ref g) { return ite(f, g, kTrue); }

  /// Shannon cofactor with respect to x_v = value.
  Ref cofactor(Ref f, unsigned v, bool value);
  /// Existential / universal quantification over one variable or a set.
  Ref exists(Ref f, unsigned v);
  Ref forall(Ref f, unsigned v);
  Ref exists(Ref f, std::span<const unsigned> vars);
  Ref forall(Ref f, std::span<const unsigned> vars);
  /// Substitute g for variable v in f.
  Ref compose(Ref f, unsigned v, Ref g);

  /// Root management: a ref()'d function survives gc() and sift().
  /// Calls nest (a per-node use count); deref() of an unref()'d ref is an
  /// error.  Constants need no rooting.  Returns r for chaining.
  Ref ref(Ref r);
  void deref(Ref r);

  /// Mark-and-sweep collection: everything not reachable from ref()'d
  /// roots moves to the free list for reuse.  Unrooted Refs are invalid
  /// afterwards.  Clears the computed table.  Returns nodes swept.
  std::size_t gc();
  bool auto_gc_enabled() const { return auto_gc_; }
  void set_auto_gc(bool on) { auto_gc_ = on; }

  /// Dynamic reordering by sifting.  Requires every function the caller
  /// still cares about to be ref()'d: each adjacent-level swap rewrites
  /// affected nodes in place (rooted Refs keep their identity and
  /// function) and collects garbage.  weights[v] scales the cost of a
  /// live node labelled v (missing entries count 1.0) — pass per-variable
  /// switching activity to bias the order toward low-power MUX networks.
  /// May throw NodeLimitExceeded mid-sift; the manager stays valid (order
  /// moved only by completed swaps, functions preserved).
  struct SiftOptions {
    std::span<const double> weights{};
    /// Abandon a variable's walk when cost exceeds best × growth_limit.
    double growth_limit = 2.0;
    /// Sift only the max_vars highest-count variables (0 = all).
    std::size_t max_vars = 0;
  };
  void sift(const SiftOptions& opt);
  void sift() { sift(SiftOptions()); }

  /// Number of satisfying assignments over all num_vars() variables.
  double sat_count(Ref f);
  /// P(f = 1) when each x_v independently equals 1 with probability p[v].
  /// This is the exact correlation-aware signal probability of [16].
  double probability(Ref f, std::span<const double> p);

  /// Variables f actually depends on.
  std::vector<unsigned> support(Ref f);
  /// Dag size (number of internal nodes reachable from f).
  std::size_t size(Ref f);

  /// One satisfying assignment (value per variable; unconstrained vars are
  /// false).  Empty optional iff f == FALSE.
  std::optional<std::vector<bool>> any_sat(Ref f);

  /// Evaluate under a complete assignment.
  bool eval(Ref f, const std::vector<bool>& assignment) const;

  /// Enumerate all satisfying minterms as cube strings over the first
  /// `width` variables ('0'/'1'/'-').  For tests on small functions.
  std::vector<std::string> cubes(Ref f, unsigned width);

  /// Drop the computed table and flush the bdd.* metrics window (unique
  /// table stays; refs remain valid — this never collects).
  void clear_caches();

  /// then/else children of an internal node.  With complement edges the
  /// stored edges describe the *regular* function of the node; a
  /// complemented parent Ref negates both resolved children
  /// (lo ^ (r & 1), hi ^ (r & 1)).
  struct Node {
    unsigned var;
    Ref lo, hi;
  };
  const Node& node(Ref r) const { return nodes_[index_of(r)]; }
  bool is_const(Ref r) const { return r <= kTrue; }
  bool complement_edges() const { return complement_; }

 private:
  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr unsigned kConstVar = 0xFFFFFFFFu;
  static constexpr unsigned kFreeVar = 0xFFFFFFFEu;
  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;

  static std::size_t hash3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
    std::uint64_t h = a;
    h = h * 0x9E3779B97F4A7C15ull + b;
    h = h * 0x9E3779B97F4A7C15ull + c;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }

  // Re-entrancy guard for public operations: collection may only run at
  // the outermost entry, with that operation's arguments pinned.
  class OpGuard;
  friend class OpGuard;

  Ref mk(unsigned var, Ref lo, Ref hi);
  Ref ite_rec(Ref f, Ref g, Ref h);
  void grow_unique(std::size_t min_slots);
  void rebuild_unique();
  /// Mark from roots + `pins`, sweep the rest to the free list, rebuild
  /// the unique table, clear the computed table.  Returns nodes swept.
  std::size_t collect(std::span<const Ref> pins);
  void maybe_gc(std::span<const Ref> pins);
  /// One adjacent-level swap (levels l, l+1); updates per-var live counts.
  void swap_levels(unsigned l, std::vector<std::size_t>& counts);
  void flush_metrics();

  // One computed-table entry; `f == kEmptySlot` marks unused.  Entries
  // live in 2-way sets (even/odd pairs), most recently used first.
  struct IteEntry {
    Ref f = kEmptySlot;
    Ref g = 0, h = 0, result = 0;
  };
  IteEntry* ite_find(Ref f, Ref g, Ref h);
  void ite_insert(Ref f, Ref g, Ref h, Ref result);

  unsigned num_vars_;
  std::size_t node_limit_;
  bool complement_;
  bool auto_gc_;
  std::size_t gc_trigger_base_;
  std::size_t gc_trigger_;
  std::size_t gc_low_water_ = 0;  // live nodes after the last collection
  int op_depth_ = 0;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> ref_count_;  // per node index, external roots
  std::uint32_t free_head_ = kNoFree;     // free list threaded through .lo
  std::size_t free_count_ = 0;
  std::size_t live_nodes_ = 0;
  std::size_t peak_live_nodes_ = 0;

  std::vector<unsigned> level_of_;  // var -> level
  std::vector<unsigned> var_at_;    // level -> var

  std::vector<std::uint32_t> unique_slots_;  // node indices; open addressing
  std::size_t unique_used_ = 0;
  std::vector<IteEntry> ite_cache_;  // 2-way sets: entries 2k, 2k+1

  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_lookups_ = 0;
  std::uint64_t unique_hits_ = 0;
  std::uint64_t nodes_allocated_ = 0;
  std::uint64_t gc_runs_ = 0;
  std::uint64_t gc_swept_ = 0;
  std::uint64_t sift_swaps_ = 0;
};

}  // namespace lps::bdd
