// bdd.hpp — reduced ordered binary decision diagrams.
//
// Several surveyed techniques are symbolic: exact signal-probability
// computation under spatial correlation (§IV-A / [16]), controllability and
// observability don't-care extraction (§III-A.1 / [37,38,19]), universal
// quantification for precomputation-logic selection ([30]), and formal
// equivalence checking of every rewrite.  This is a small, self-contained
// ROBDD package: unique table + ITE computed table, no complement edges
// (simplicity over peak capacity; our networks are ISCAS-scale cones).
//
// Both tables are allocation-lean open-addressing arrays rather than node
// hash maps: the unique table stores bare refs in a power-of-two slot array
// (linear probing, grown at 70% load; keys are re-read from the node array,
// so a slot costs 4 bytes), and the ITE computed table is a direct-mapped
// lossy cache (a colliding entry is simply overwritten).  This removes all
// per-node heap traffic from the construction hot path.  Hit counters are
// exposed so benchmarks can report table effectiveness.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace lps::bdd {

/// Index into the manager's node array.  0 = constant FALSE, 1 = TRUE.
using Ref = std::uint32_t;
inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

/// Thrown when a construction exceeds the manager's node budget.
struct NodeLimitExceeded : std::runtime_error {
  NodeLimitExceeded() : std::runtime_error("BDD node limit exceeded") {}
};

class Manager {
 public:
  /// `node_limit` bounds total allocated nodes (guards against blowup on
  /// multiplier-like cones).
  explicit Manager(unsigned num_vars, std::size_t node_limit = 4u << 20);
  /// Publishes the lifetime table counters (nodes allocated, ITE lookups /
  /// hits, unique-table hits) to the global metrics registry under "bdd.*".
  ~Manager();

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Alias of num_nodes() for instrumentation call sites.
  std::size_t nodes() const { return nodes_.size(); }

  /// ITE computed-table hits / lookups since construction (or the last
  /// clear_caches()); unique-table hits count mk() calls answered without
  /// allocating.  Benchmarks print these to make table sizing visible.
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_lookups() const { return cache_lookups_; }
  std::uint64_t unique_hits() const { return unique_hits_; }

  /// Capacity hint: pre-size the node array and unique table for about `n`
  /// nodes, avoiding growth rehashes during a large build.
  void reserve(std::size_t n);

  /// Add another variable at the bottom of the order; returns its index.
  unsigned add_var();

  Ref var(unsigned v);   // projection function x_v
  Ref nvar(unsigned v);  // !x_v

  Ref ite(Ref f, Ref g, Ref h);
  Ref land(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref lor(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref lnot(Ref f) { return ite(f, kFalse, kTrue); }
  Ref lxor(Ref f, Ref g);
  Ref lxnor(Ref f, Ref g) { return lnot(lxor(f, g)); }
  Ref implies(Ref f, Ref g) { return ite(f, g, kTrue); }

  /// Shannon cofactor with respect to x_v = value.
  Ref cofactor(Ref f, unsigned v, bool value);
  /// Existential / universal quantification over one variable or a set.
  Ref exists(Ref f, unsigned v);
  Ref forall(Ref f, unsigned v);
  Ref exists(Ref f, std::span<const unsigned> vars);
  Ref forall(Ref f, std::span<const unsigned> vars);
  /// Substitute g for variable v in f.
  Ref compose(Ref f, unsigned v, Ref g);

  /// Number of satisfying assignments over all num_vars() variables.
  double sat_count(Ref f);
  /// P(f = 1) when each x_v independently equals 1 with probability p[v].
  /// This is the exact correlation-aware signal probability of [16].
  double probability(Ref f, std::span<const double> p);

  /// Variables f actually depends on.
  std::vector<unsigned> support(Ref f);
  /// Dag size (number of internal nodes reachable from f).
  std::size_t size(Ref f);

  /// One satisfying assignment (value per variable; unconstrained vars are
  /// false).  Empty optional iff f == FALSE.
  std::optional<std::vector<bool>> any_sat(Ref f);

  /// Evaluate under a complete assignment.
  bool eval(Ref f, const std::vector<bool>& assignment) const;

  /// Enumerate all satisfying minterms as cube strings over the first
  /// `width` variables ('0'/'1'/'-').  For tests on small functions.
  std::vector<std::string> cubes(Ref f, unsigned width);

  /// Drop the operation caches (unique table stays; refs remain valid).
  void clear_caches();

  struct Node {
    unsigned var;
    Ref lo, hi;
  };
  const Node& node(Ref r) const { return nodes_[r]; }
  bool is_const(Ref r) const { return r <= kTrue; }

 private:
  static constexpr Ref kEmptySlot = 0xFFFFFFFFu;

  static std::size_t hash3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
    std::uint64_t h = a;
    h = h * 0x9E3779B97F4A7C15ull + b;
    h = h * 0x9E3779B97F4A7C15ull + c;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }

  Ref mk(unsigned var, Ref lo, Ref hi);
  void grow_unique(std::size_t min_slots);

  // Direct-mapped computed-table entry; `f == kEmptySlot` marks unused.
  struct IteEntry {
    Ref f = kEmptySlot;
    Ref g = 0, h = 0, result = 0;
  };

  unsigned num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::vector<Ref> unique_slots_;  // open addressing; keys live in nodes_
  std::size_t unique_used_ = 0;    // filled slots (== internal node count)
  std::vector<IteEntry> ite_cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_lookups_ = 0;
  std::uint64_t unique_hits_ = 0;
};

}  // namespace lps::bdd
