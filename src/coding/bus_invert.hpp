// bus_invert.hpp — bus-invert coding of Stan & Burleson [39].
//
// §III-C.1: "an extra line E is added to the bus which signifies if the
// value being transferred is the true value or needs to be bitwise
// complemented upon receipt...  if the previous value transferred was 0000,
// and the current value is 1011, then the value 0100 is transferred instead,
// and the line E is asserted."  The encoder bounds per-cycle transitions by
// ceil(w/2)+... and cuts average transitions on uncorrelated data by ~18-25%
// for practical widths.

#pragma once

#include <cstdint>

#include "sim/stimulus.hpp"

namespace lps::coding {

/// Stateful encoder: width data bits plus one invert line.
class BusInvertEncoder {
 public:
  explicit BusInvertEncoder(int width);

  struct Symbol {
    std::uint64_t wire_word;  // what the data wires carry
    bool invert;              // the E line
    int transitions = 0;      // wires toggled by this symbol, E line included
  };
  /// Encode the next word, choosing the polarity that toggles fewer wires
  /// (including the E line itself in the count).  Symbol::transitions is the
  /// realized toggle count against the encoder's previous symbol — the one
  /// source of truth for tallies; callers must not re-track encoder state.
  Symbol encode(std::uint64_t word);

  int width() const { return width_; }
  /// Previous symbol on the wires (reset state: all-zero data, E low).
  std::uint64_t prev_word() const { return prev_wires_; }
  bool prev_invert() const { return prev_invert_; }

 private:
  int width_;
  std::uint64_t prev_wires_ = 0;
  bool prev_invert_ = false;
};

/// Stateless decoder.
std::uint64_t bus_invert_decode(std::uint64_t wire_word, bool invert,
                                int width);

struct BusCodingStats {
  std::size_t raw_transitions = 0;      // unencoded bus
  std::size_t coded_transitions = 0;    // data wires + E line
  std::size_t worst_cycle_raw = 0;
  std::size_t worst_cycle_coded = 0;
  double saving() const {
    return raw_transitions
               ? 1.0 - static_cast<double>(coded_transitions) / raw_transitions
               : 0.0;
  }
};

/// Run a word stream through the encoder and tally wire transitions.
BusCodingStats evaluate_bus_invert(const sim::WordStream& s, int width);

/// Partitioned bus-invert: split the bus into `groups` equal chunks, each
/// with its own E line (the multi-line variant of [39], better for wide
/// buses).
BusCodingStats evaluate_partitioned_bus_invert(const sim::WordStream& s,
                                               int width, int groups);

}  // namespace lps::coding
