#include "coding/limited_weight.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace lps::coding {

LimitedWeightCode::LimitedWeightCode(int source_bits, int wire_bits)
    : m_(source_bits), n_(wire_bits) {
  if (m_ < 1 || m_ > 20 || n_ < m_ || n_ > 24)
    throw std::invalid_argument("LimitedWeightCode: bad parameters");
  std::uint64_t need = 1ULL << m_;
  // Enumerate n-bit words by increasing weight, then numeric order.
  std::vector<std::uint64_t> words(1ULL << n_);
  std::iota(words.begin(), words.end(), 0);
  std::stable_sort(words.begin(), words.end(),
                   [](std::uint64_t a, std::uint64_t b) {
                     return std::popcount(a) < std::popcount(b);
                   });
  code_.assign(need, 0);
  decode_.assign(1ULL << n_, 0);
  for (std::uint64_t v = 0; v < need; ++v) {
    code_[v] = words[v];
    decode_[words[v]] = v;
    max_weight_ = std::max(max_weight_, std::popcount(words[v]));
  }
}

std::uint64_t LimitedWeightCode::codeword(std::uint64_t value) const {
  return code_.at(value);
}

std::uint64_t LimitedWeightCode::decode(std::uint64_t w) const {
  return decode_.at(w);
}

double LimitedWeightCode::average_weight() const {
  double t = 0;
  for (auto c : code_) t += std::popcount(c);
  return t / static_cast<double>(code_.size());
}

LwcStats evaluate_lwc(const sim::WordStream& s, int source_bits,
                      int wire_bits) {
  LimitedWeightCode lwc(source_bits, wire_bits);
  LwcStats st;
  st.wires_raw = source_bits;
  st.wires_coded = wire_bits;
  std::uint64_t mask = (1ULL << source_bits) - 1;
  std::uint64_t prev_raw = 0;
  bool first = true;
  for (auto w : s) {
    std::uint64_t v = w & mask;
    if (!first) st.raw_transitions += std::popcount((v ^ prev_raw) & mask);
    // Transition signalling: wires toggle where the codeword has ones.
    st.coded_transitions += std::popcount(lwc.codeword(v));
    prev_raw = v;
    first = false;
  }
  return st;
}

}  // namespace lps::coding
