// gray.hpp — Gray-code addressing.
//
// The §III-C.1 bus-encoding family includes sequence-aware codes: when a
// bus mostly carries consecutive values (instruction addresses), Gray
// coding makes each increment a single-wire event.  Included as the
// reference point the bus-coding experiment sweeps against bus-invert and
// limited-weight codes.

#pragma once

#include <cstdint>

#include "sim/stimulus.hpp"

namespace lps::coding {

constexpr std::uint64_t gray_encode(std::uint64_t x) { return x ^ (x >> 1); }

constexpr std::uint64_t gray_decode(std::uint64_t g) {
  std::uint64_t x = 0;
  while (g) {
    x ^= g;
    g >>= 1;
  }
  return x;
}

struct GrayStats {
  std::size_t raw_transitions = 0;
  std::size_t coded_transitions = 0;
};

/// Wire transitions with and without Gray coding of the stream.
GrayStats evaluate_gray(const sim::WordStream& s, int width);

}  // namespace lps::coding
