#include "coding/residue.hpp"

#include <bit>
#include <memory>
#include <numeric>
#include <random>

#include "netlist/benchmarks.hpp"
#include "sim/eventsim.hpp"
#include <stdexcept>

namespace lps::coding {

OneHotRns::OneHotRns(std::vector<int> moduli) : moduli_(std::move(moduli)) {
  if (moduli_.empty()) throw std::invalid_argument("OneHotRns: no moduli");
  range_ = 1;
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    if (moduli_[i] < 2) throw std::invalid_argument("OneHotRns: modulus < 2");
    for (std::size_t j = i + 1; j < moduli_.size(); ++j)
      if (std::gcd(moduli_[i], moduli_[j]) != 1)
        throw std::invalid_argument("OneHotRns: moduli not coprime");
    range_ *= static_cast<std::uint64_t>(moduli_[i]);
  }
  // CRT coefficients: e_i = M_i * (M_i^{-1} mod m_i), M_i = range/m_i.
  for (int m : moduli_) {
    std::uint64_t Mi = range_ / static_cast<std::uint64_t>(m);
    // Modular inverse by brute force (moduli are small).
    std::uint64_t inv = 0;
    for (std::uint64_t t = 1; t < static_cast<std::uint64_t>(m); ++t)
      if ((Mi % m) * t % m == 1) {
        inv = t;
        break;
      }
    crt_coef_.push_back(Mi * inv % range_);
  }
}

std::vector<int> OneHotRns::encode(std::uint64_t x) const {
  std::vector<int> d;
  for (int m : moduli_) d.push_back(static_cast<int>(x % m));
  return d;
}

std::uint64_t OneHotRns::decode(const std::vector<int>& digits) const {
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    // Guard against overflow via __int128 accumulation.
    unsigned __int128 t = static_cast<unsigned __int128>(crt_coef_[i]) *
                          static_cast<unsigned>(digits[i]);
    x = static_cast<std::uint64_t>((x + t) % range_);
  }
  return x;
}

std::vector<int> OneHotRns::add(const std::vector<int>& a,
                                const std::vector<int>& b) const {
  std::vector<int> r(moduli_.size());
  for (std::size_t i = 0; i < moduli_.size(); ++i)
    r[i] = (a[i] + b[i]) % moduli_[i];
  return r;
}

std::vector<int> OneHotRns::mul(const std::vector<int>& a,
                                const std::vector<int>& b) const {
  std::vector<int> r(moduli_.size());
  for (std::size_t i = 0; i < moduli_.size(); ++i)
    r[i] = (a[i] * b[i]) % moduli_[i];
  return r;
}

int OneHotRns::onehot_transitions(const std::vector<int>& a,
                                  const std::vector<int>& b) const {
  int t = 0;
  for (std::size_t i = 0; i < moduli_.size(); ++i)
    if (a[i] != b[i]) t += 2;  // one wire falls, one rises
  return t;
}

int OneHotRns::num_wires() const {
  int w = 0;
  for (int m : moduli_) w += m;
  return w;
}

RnsStats evaluate_rns_accumulator(const OneHotRns& rns, std::size_t n_ops,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  RnsStats st;
  int bbits = 1;
  while ((1ULL << bbits) < rns.range()) ++bbits;
  st.wires_binary = bbits;
  st.wires_onehot = rns.num_wires();

  // Gate-level binary adder driven with the actual accumulation stream:
  // its carry chain ripples and glitches (event-driven count).
  auto adder = lps::bench::ripple_carry_adder(bbits);
  lps::sim::EventSim es(adder);
  std::unique_ptr<bool[]> pins(new bool[adder.inputs().size()]());
  auto apply_add = [&](std::uint64_t a, std::uint64_t b) {
    for (int i = 0; i < bbits; ++i) {
      pins[i] = (a >> i & 1) != 0;
      pins[bbits + i] = (b >> i & 1) != 0;
    }
    pins[2 * bbits] = false;
    es.apply({pins.get(), adder.inputs().size()});
  };

  std::uint64_t acc = 0;
  auto digits = rns.encode(0);
  double tb = 0, to = 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    std::uint64_t operand = rng() % rns.range();
    std::uint64_t next = (acc + operand) % rns.range();
    auto ndig = rns.add(digits, rns.encode(operand));
    tb += std::popcount(acc ^ next);
    to += rns.onehot_transitions(digits, ndig);
    apply_add(acc, operand);
    acc = next;
    digits = std::move(ndig);
  }
  st.avg_transitions_binary = tb / static_cast<double>(n_ops);
  st.avg_transitions_onehot = to / static_cast<double>(n_ops);
  st.logic_transitions_binary =
      es.stats().sum_total() / static_cast<double>(n_ops);
  // One-hot modular add = rotate each digit's one-hot vector by the
  // operand residue: one wire falls, one rises, per digit, with no carry
  // logic in between.
  st.logic_transitions_onehot = st.avg_transitions_onehot;
  return st;
}

}  // namespace lps::coding
