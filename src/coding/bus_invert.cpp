#include "coding/bus_invert.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace lps::coding {

namespace {
std::uint64_t mask_of(int width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}
}  // namespace

BusInvertEncoder::BusInvertEncoder(int width) : width_(width) {
  if (width < 1 || width > 64)
    throw std::invalid_argument("BusInvertEncoder: width out of range");
}

BusInvertEncoder::Symbol BusInvertEncoder::encode(std::uint64_t word) {
  word &= mask_of(width_);
  std::uint64_t plain = word;
  std::uint64_t flipped = ~word & mask_of(width_);
  int cost_plain = std::popcount(plain ^ prev_wires_) + (prev_invert_ ? 1 : 0);
  int cost_flip =
      std::popcount(flipped ^ prev_wires_) + (prev_invert_ ? 0 : 1);
  Symbol s;
  if (cost_flip < cost_plain) {
    s.wire_word = flipped;
    s.invert = true;
    s.transitions = cost_flip;
  } else {
    s.wire_word = plain;
    s.invert = false;
    s.transitions = cost_plain;
  }
  prev_wires_ = s.wire_word;
  prev_invert_ = s.invert;
  return s;
}

std::uint64_t bus_invert_decode(std::uint64_t wire_word, bool invert,
                                int width) {
  return invert ? (~wire_word & mask_of(width)) : (wire_word & mask_of(width));
}

BusCodingStats evaluate_bus_invert(const sim::WordStream& s, int width) {
  BusCodingStats st;
  BusInvertEncoder enc(width);
  std::uint64_t prev_raw = 0;
  bool first = true;
  for (auto w : s) {
    auto sym = enc.encode(w);
    if (!first) {
      std::size_t raw = std::popcount((w ^ prev_raw) & mask_of(width));
      auto coded = static_cast<std::size_t>(sym.transitions);
      st.raw_transitions += raw;
      st.coded_transitions += coded;
      st.worst_cycle_raw = std::max(st.worst_cycle_raw, raw);
      st.worst_cycle_coded = std::max(st.worst_cycle_coded, coded);
    }
    prev_raw = w;
    first = false;
  }
  return st;
}

BusCodingStats evaluate_partitioned_bus_invert(const sim::WordStream& s,
                                               int width, int groups) {
  if (groups < 1) groups = 1;
  BusCodingStats st;
  int base = width / groups;
  int extra = width % groups;
  std::vector<int> gw;
  std::vector<int> gshift;
  int off = 0;
  for (int g = 0; g < groups; ++g) {
    int w = base + (g < extra ? 1 : 0);
    if (w == 0) continue;
    gw.push_back(w);
    gshift.push_back(off);
    off += w;
  }
  std::vector<BusInvertEncoder> encs;
  for (int w : gw) encs.emplace_back(w);
  std::uint64_t prev_raw = 0;
  bool first = true;
  for (auto word : s) {
    std::size_t coded = 0;
    for (std::size_t g = 0; g < gw.size(); ++g) {
      std::uint64_t chunk = (word >> gshift[g]) & mask_of(gw[g]);
      coded += static_cast<std::size_t>(encs[g].encode(chunk).transitions);
    }
    if (!first) {
      std::size_t raw = std::popcount((word ^ prev_raw) & mask_of(width));
      st.raw_transitions += raw;
      st.coded_transitions += coded;
      st.worst_cycle_raw = std::max(st.worst_cycle_raw, raw);
      st.worst_cycle_coded = std::max(st.worst_cycle_coded, coded);
    }
    prev_raw = word;
    first = false;
  }
  return st;
}

}  // namespace lps::coding
