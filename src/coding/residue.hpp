// residue.hpp — one-hot residue number system arithmetic (Chren [11]).
//
// §III-C.1: "A method of one-hot residue coding to minimize switching
// activity of arithmetic logic is presented in [11]."  Numbers are held as
// residues modulo pairwise-coprime moduli; each residue digit is a one-hot
// vector, so modular addition is a cyclic *rotation* of the one-hot wires —
// exactly 2 wire transitions per digit per operation regardless of operand
// values, versus the data-dependent carry rippling of two's-complement.

#pragma once

#include <cstdint>
#include <vector>

namespace lps::coding {

class OneHotRns {
 public:
  explicit OneHotRns(std::vector<int> moduli);

  std::uint64_t range() const { return range_; }  // product of moduli
  const std::vector<int>& moduli() const { return moduli_; }

  /// Residue digits of x.
  std::vector<int> encode(std::uint64_t x) const;
  /// Chinese-remainder reconstruction.
  std::uint64_t decode(const std::vector<int>& digits) const;

  std::vector<int> add(const std::vector<int>& a,
                       const std::vector<int>& b) const;
  std::vector<int> mul(const std::vector<int>& a,
                       const std::vector<int>& b) const;

  /// Wire transitions when the one-hot digit vectors change from `a` to `b`
  /// (2 per changed digit, 0 per unchanged digit).
  int onehot_transitions(const std::vector<int>& a,
                         const std::vector<int>& b) const;
  /// Total one-hot wires (sum of moduli).
  int num_wires() const;

 private:
  std::vector<int> moduli_;
  std::uint64_t range_;
  std::vector<std::uint64_t> crt_coef_;  // CRT reconstruction coefficients
};

struct RnsStats {
  double avg_transitions_binary = 0.0;  // accumulator register, binary
  double avg_transitions_onehot = 0.0;  // accumulator register, one-hot RNS
  // Arithmetic-logic switching per add: a binary accumulator ripples and
  // glitches through a carry chain (measured on the gate-level adder with
  // the event-driven simulator); a one-hot residue adder is a barrel
  // rotation — exactly 2 wire transitions per digit, no carries, no
  // glitches.  This is where Chren's delay-power-product win [11] lives.
  double logic_transitions_binary = 0.0;
  double logic_transitions_onehot = 0.0;
  int wires_binary = 0;
  int wires_onehot = 0;
};

/// Accumulate a random operand stream (mod `rns.range()`) and compare the
/// register and arithmetic-logic switching of a binary accumulator against
/// a one-hot RNS one.
RnsStats evaluate_rns_accumulator(const OneHotRns& rns, std::size_t n_ops,
                                  std::uint64_t seed);

}  // namespace lps::coding
