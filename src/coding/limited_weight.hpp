// limited_weight.hpp — limited-weight codes for low-power I/O [39].
//
// Stan & Burleson's general framework: with transition signalling (the bus
// carries the XOR of consecutive codewords), the number of wire transitions
// per transfer equals the Hamming weight of the codeword.  An (n, m) LWC
// maps 2^m source words onto n-bit codewords chosen in increasing weight
// order, bounding and reducing average transitions at the cost of extra
// wires.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/stimulus.hpp"

namespace lps::coding {

class LimitedWeightCode {
 public:
  /// Build the codebook for m source bits on n >= m wires.
  LimitedWeightCode(int source_bits, int wire_bits);

  int source_bits() const { return m_; }
  int wire_bits() const { return n_; }
  int max_weight() const { return max_weight_; }

  std::uint64_t codeword(std::uint64_t value) const;  // value < 2^m
  std::uint64_t decode(std::uint64_t codeword) const;

  /// Average codeword weight over all 2^m codewords (= expected transitions
  /// per transfer for uniform data under transition signalling).
  double average_weight() const;

 private:
  int m_, n_;
  int max_weight_ = 0;
  std::vector<std::uint64_t> code_;               // value -> codeword
  std::vector<std::uint64_t> decode_;             // codeword -> value
};

struct LwcStats {
  std::size_t raw_transitions = 0;   // binary bus, level signalling
  std::size_t coded_transitions = 0; // LWC bus, transition signalling
  int wires_raw = 0;
  int wires_coded = 0;
};

/// Evaluate an (n, m) LWC on a word stream (values masked to m bits).
LwcStats evaluate_lwc(const sim::WordStream& s, int source_bits,
                      int wire_bits);

}  // namespace lps::coding
