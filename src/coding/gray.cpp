#include "coding/gray.hpp"

#include <bit>

namespace lps::coding {

GrayStats evaluate_gray(const sim::WordStream& s, int width) {
  GrayStats st;
  std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  for (std::size_t i = 1; i < s.size(); ++i) {
    st.raw_transitions += std::popcount((s[i] ^ s[i - 1]) & mask);
    st.coded_transitions +=
        std::popcount((gray_encode(s[i]) ^ gray_encode(s[i - 1])) & mask);
  }
  return st;
}

}  // namespace lps::coding
