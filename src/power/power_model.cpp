#include "power/power_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace lps::power {

double node_capacitance(const Netlist& net, NodeId id, const PowerParams& p) {
  const Node& n = net.node(id);
  double c_ff = p.cself_ff * n.size;
  for (NodeId fo : n.fanouts) {
    // A load-enable pin is not a per-register input: the enable net drives
    // one integrated clock-gating cell per bank, charged separately in the
    // clock-power term.  Skip it here (the D pin is still counted).
    const Node& fon = net.node(fo);
    if (fon.type == GateType::Dff && fon.fanins.size() == 2 &&
        fon.fanins[1] == id && fon.fanins[0] != id)
      continue;
    c_ff += p.cwire_ff;
    c_ff += p.cin_ff * fon.size;
  }
  // Primary outputs drive an off-block load comparable to one pin.
  for (NodeId o : net.outputs())
    if (o == id) c_ff += p.cin_ff;
  return c_ff * 1e-15;
}

int transistor_count(const Node& n) {
  int k = static_cast<int>(n.fanins.size());
  switch (n.type) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Buf:
      return 4;  // two inverters
    case GateType::Not:
      return 2;
    case GateType::And:
    case GateType::Or:
      return 2 * k + 2;  // NAND/NOR + inverter
    case GateType::Nand:
    case GateType::Nor:
      return 2 * k;
    case GateType::Xor:
    case GateType::Xnor:
      return 4 * std::max(1, k - 1) + 2 * k;  // cascaded 2-in XOR cells
    case GateType::Mux:
      return 6;  // transmission-gate mux + select inverter
    case GateType::Dff:
      return 8;
  }
  return 2 * k;
}

PowerReport compute_power(const Netlist& net,
                          std::span<const double> toggles,
                          const PowerParams& p) {
  if (toggles.size() != net.size())
    throw std::invalid_argument("compute_power: toggle vector size mismatch");
  PowerReport r;
  r.node_switching_w.assign(net.size(), 0.0);
  r.node_power_w.assign(net.size(), 0.0);
  for (NodeId id = 0; id < net.size(); ++id) {
    if (net.is_dead(id)) continue;
    const Node& n = net.node(id);
    double c = node_capacitance(net, id, p);
    r.total_cap_f += c;
    double activity_charge = c * toggles[id];  // C * N, per cycle
    r.weighted_activity += activity_charge;
    double sw = 0.5 * activity_charge * p.vdd * p.vdd * p.freq;
    double sc = p.qsc_fraction * activity_charge * p.vdd * p.vdd * p.freq;
    double lk = transistor_count(n) * p.ileak_pa_per_transistor * 1e-12 * p.vdd;
    r.node_switching_w[id] = sw;
    r.node_power_w[id] = sw + sc + lk;
    r.breakdown.switching_w += sw;
    r.breakdown.short_circuit_w += sc;
    r.breakdown.leakage_w += lk;
  }
  return r;
}

}  // namespace lps::power
