#include "power/probability.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "bdd/bdd_netlist.hpp"
#include "core/diag.hpp"
#include "core/metrics.hpp"
#include "sim/logicsim.hpp"

namespace lps::power {

namespace detail {
namespace {
std::atomic<int> g_forced_bdd_limits{0};

bool consume_forced_bdd_limit() {
  int cur = g_forced_bdd_limits.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (g_forced_bdd_limits.compare_exchange_weak(cur, cur - 1,
                                                  std::memory_order_relaxed))
      return true;
  }
  return false;
}
}  // namespace

void force_bdd_limit(int n) {
  g_forced_bdd_limits.store(n, std::memory_order_relaxed);
}

}  // namespace detail

namespace {

constexpr std::size_t kExactNodeLimit = 4u << 20;
// Fallback stimulus when the symbolic estimate outgrows the node budget:
// enough patterns for a stable Monte Carlo estimate, fixed seed so the
// degraded result is still deterministic.
constexpr std::size_t kFallbackVectors = 4096;
constexpr std::uint64_t kFallbackSeed = 7;

// Global BDD build sized from the netlist up front: every live node gets a
// function, so the unique table is pre-sized for the whole network rather
// than the default gate-count heuristic, and the build's table statistics
// are published under power.exact.* for observability.
bdd::NetlistBdds build_global_bdds(const Netlist& net) {
  if (detail::consume_forced_bdd_limit()) throw bdd::NodeLimitExceeded();
  auto bdds = bdd::build_bdds(net, kExactNodeLimit,
                              /*reserve_hint=*/16 * net.num_live());
  core::metrics::count("power.exact.bdd_builds");
  core::metrics::count("power.exact.bdd_nodes",
                       static_cast<double>(bdds.mgr.num_nodes()));
  core::metrics::count("power.exact.bdd_cache_hits",
                       static_cast<double>(bdds.mgr.cache_hits()));
  return bdds;
}

// The symbolic estimators degrade instead of throwing when a network is too
// wide for the node budget: count the event, tell the operator where the
// exactness was lost, and return the simulation-based estimate.
void report_bdd_limit(const char* estimator) {
  core::metrics::count("power.exact.bdd_limit");
  diag::Diagnostic d{
      diag::Severity::Warning,
      "BDD node budget exceeded; degrading to the simulation-based "
      "estimate (" +
          std::to_string(kFallbackVectors) + " vectors)",
      diag::SourceLoc{std::string("power::") + estimator, 0, 0}};
  std::fprintf(stderr, "%s\n", d.str().c_str());
}

double and_prob(const std::vector<double>& p, const Node& nd) {
  double q = 1.0;
  for (NodeId f : nd.fanins) q *= p[f];
  return q;
}

double or_prob(const std::vector<double>& p, const Node& nd) {
  double q = 1.0;
  for (NodeId f : nd.fanins) q *= (1.0 - p[f]);
  return 1.0 - q;
}

std::vector<double> pi_probability_vector(const Netlist& net,
                                          std::span<const double> pi_prob) {
  std::vector<double> p(net.inputs().size(), 0.5);
  if (!pi_prob.empty()) {
    if (pi_prob.size() != p.size())
      throw std::invalid_argument("pi probability vector size mismatch");
    p.assign(pi_prob.begin(), pi_prob.end());
  }
  return p;
}

}  // namespace

std::vector<double> signal_probs_independent(const Netlist& net,
                                             std::span<const double> pi_prob) {
  auto pip = pi_probability_vector(net, pi_prob);
  std::vector<double> p(net.size(), 0.0);
  for (std::size_t i = 0; i < net.inputs().size(); ++i)
    p[net.inputs()[i]] = pip[i];
  for (NodeId id : net.topo_order()) {
    const Node& nd = net.node(id);
    switch (nd.type) {
      case GateType::Input:
        break;
      case GateType::Dff:
        p[id] = 0.5;
        break;
      case GateType::Const0:
        p[id] = 0.0;
        break;
      case GateType::Const1:
        p[id] = 1.0;
        break;
      case GateType::Buf:
        p[id] = p[nd.fanins[0]];
        break;
      case GateType::Not:
        p[id] = 1.0 - p[nd.fanins[0]];
        break;
      case GateType::And:
        p[id] = and_prob(p, nd);
        break;
      case GateType::Nand:
        p[id] = 1.0 - and_prob(p, nd);
        break;
      case GateType::Or:
        p[id] = or_prob(p, nd);
        break;
      case GateType::Nor:
        p[id] = 1.0 - or_prob(p, nd);
        break;
      case GateType::Xor:
      case GateType::Xnor: {
        // P(odd parity) via the product identity: prod(1 - 2 p_i).
        double m = 1.0;
        for (NodeId f : nd.fanins) m *= (1.0 - 2.0 * p[f]);
        double odd = 0.5 * (1.0 - m);
        p[id] = nd.type == GateType::Xor ? odd : 1.0 - odd;
        break;
      }
      case GateType::Mux: {
        double s = p[nd.fanins[0]];
        p[id] = (1.0 - s) * p[nd.fanins[1]] + s * p[nd.fanins[2]];
        break;
      }
    }
  }
  return p;
}

std::vector<double> signal_probs_exact(const Netlist& net,
                                       std::span<const double> pi_prob) {
  auto pip = pi_probability_vector(net, pi_prob);
  try {
    auto bdds = build_global_bdds(net);
    std::vector<double> var_p(bdds.mgr.num_vars(), 0.5);
    for (std::size_t i = 0; i < net.inputs().size(); ++i)
      var_p[bdds.var_of.at(net.inputs()[i])] = pip[i];
    std::vector<double> p(net.size(), 0.0);
    for (NodeId id = 0; id < net.size(); ++id) {
      if (net.is_dead(id)) continue;
      p[id] = bdds.mgr.probability(bdds.node_fn[id], var_p);
    }
    return p;
  } catch (const bdd::NodeLimitExceeded&) {
    report_bdd_limit("signal_probs_exact");
    return sim::measure_activity(net, kFallbackVectors, kFallbackSeed, pip)
        .signal_prob;
  }
}

std::vector<double> toggle_rate_from_probs(std::span<const double> probs) {
  std::vector<double> n(probs.size(), 0.0);
  for (std::size_t i = 0; i < probs.size(); ++i)
    n[i] = 2.0 * probs[i] * (1.0 - probs[i]);
  return n;
}

std::vector<double> transition_density(const Netlist& net,
                                       std::span<const double> pi_prob,
                                       std::span<const double> pi_density) {
  auto pip = pi_probability_vector(net, pi_prob);
  std::vector<double> dens(net.inputs().size(), 0.5);
  if (!pi_density.empty()) {
    if (pi_density.size() != dens.size())
      throw std::invalid_argument("pi density vector size mismatch");
    dens.assign(pi_density.begin(), pi_density.end());
  }
  try {
    auto bdds = build_global_bdds(net);
    auto& m = bdds.mgr;
    std::vector<double> var_p(m.num_vars(), 0.5);
    std::vector<double> var_d(m.num_vars(), 0.5);
    for (std::size_t i = 0; i < net.inputs().size(); ++i) {
      unsigned v = bdds.var_of.at(net.inputs()[i]);
      var_p[v] = pip[i];
      var_d[v] = dens[i];
    }
    std::vector<double> d(net.size(), 0.0);
    for (NodeId id = 0; id < net.size(); ++id) {
      if (net.is_dead(id)) continue;
      const Node& nd = net.node(id);
      // Safe point: between nodes only the rooted global functions are
      // live, so the Boolean-difference scaffolding below can be shed.
      if (m.live_nodes() >= kExactNodeLimit / 2) m.gc();
      bdd::Ref f = bdds.node_fn[id];
      if (is_source(nd.type)) {
        d[id] = nd.type == GateType::Input
                    ? var_d[bdds.var_of.at(id)]
                    : 0.0;
        continue;
      }
      if (nd.type == GateType::Dff) {
        d[id] = var_d[bdds.var_of.at(id)];
        continue;
      }
      // D(y) = sum over support vars of P(boolean difference) * D(x).
      double acc = 0.0;
      for (unsigned v : m.support(f)) {
        bdd::Ref diff =
            m.lxor(m.cofactor(f, v, false), m.cofactor(f, v, true));
        acc += m.probability(diff, var_p) * var_d[v];
      }
      d[id] = acc;
    }
    return d;
  } catch (const bdd::NodeLimitExceeded&) {
    report_bdd_limit("transition_density");
    return sim::measure_activity(net, kFallbackVectors, kFallbackSeed, pip)
        .transition_prob;
  }
}

}  // namespace lps::power
