// incremental.hpp — cone-scoped incremental power re-estimation.
//
// Every optimization loop (core/pass.hpp, core/flows.cpp) is gated on
// re-estimating switching activity after each local rewrite, yet a local
// rewrite touches a handful of nodes while `power::analyze` re-simulates
// the whole netlist.  IncrementalAnalyzer caches the raw simulation record
// of one full baseline run — the per-frame value words and the exact
// integer toggle counters behind the ActivityStats doubles — and after a
// mutation re-evaluates only the transitive fanout cone of the touched
// nodes over the *same* cached frames: same seed, same frame count, same
// shard seams.  The updated per-node counters are spliced into the cached
// totals, and the final report is assembled through the same arithmetic
// `analyze()` uses (power::detail::assemble_zero_delay), so the result is
// bit-identical to a fresh full analysis of the mutated netlist.
//
// Why the splice is exact: primary-input value words depend only on the
// seed and the input's position in `inputs()` (never on netlist edits), so
// everything outside the fanout cone of the touched set replays to the
// very same words — the cached frame already holds them.  Re-evaluating
// the cone in place inside such a frame (LogicSim::eval_cone_into) then
// produces word-for-word what a full re-simulation would, and integer
// popcount splicing introduces no floating-point divergence.
//
// Cache invalidation rule — fall back to a full re-baseline when:
//   * the touched-node report says `all` (no journal, wholesale restore
//     such as compact()/assignment, or a PI-list change that re-maps the
//     input→stream binding);
//   * the analyzer runs in Timed mode (event-driven glitch simulation has
//     no per-frame cache; the fallback is recorded as such in metrics);
//   * there is no baseline yet.
// Fallbacks are full analyze() runs, so correctness never depends on the
// cone path applying.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/activity.hpp"
#include "sim/compiled.hpp"
#include "sim/logicsim.hpp"

namespace lps::power {

namespace detail {
/// Chaos hook (tests and the service soak harness): force the next `n`
/// compiled-tape patch attempts inside IncrementalAnalyzer::reanalyze() to
/// throw, exercising the tape→interpreter degradation path
/// (`power.inc.tape_fallback`) without needing a genuinely corrupt tape.
/// Thread-safe; 0 disables.
void force_tape_failures(int n);
}  // namespace detail

class IncrementalAnalyzer {
 public:
  /// What the most recent reanalyze() actually did.
  struct UpdateStats {
    bool full_rebaseline = false;  // fell back to a fresh full analysis
    bool tape_fallback = false;    // compiled tape failed; interpreter used
    std::size_t resim_nodes = 0;   // nodes re-evaluated (cone, or all live)
    std::size_t live_nodes = 0;    // what a full re-analysis evaluates
  };

  /// Binds to `net` and runs the full baseline analysis immediately.  The
  /// netlist must outlive the analyzer.
  explicit IncrementalAnalyzer(const Netlist& net, AnalysisOptions opt = {});

  /// Current estimate — always equal (bit-for-bit) to what
  /// `power::analyze(net, options())` would return for the bound netlist's
  /// current state, provided every mutation was reported via reanalyze().
  const Analysis& analysis() const { return analysis_; }
  const AnalysisOptions& options() const { return opt_; }
  const UpdateStats& last_update() const { return last_; }

  /// Rebind the cancellation token polled by subsequent operations.  The
  /// analyzer usually outlives any single request, so a per-request token
  /// must be bound for the duration of the operation it guards and unbound
  /// (nullptr) before it goes out of scope — never left to dangle.
  void set_cancel(const core::CancelToken* c) { opt_.cancel = c; }

  /// Drop all cached state and re-run the full baseline analysis.  Also
  /// forgets any pending revert_last() snapshot.
  void rebaseline();

  /// Re-estimate after a mutation of the bound netlist.  `touched` must be
  /// captured via Netlist::touched_nodes() *before* the undo epoch is
  /// committed or rolled back (the journal is the source of the set), and
  /// the netlist must currently be in the mutated state.  Returns the
  /// updated analysis().
  ///
  /// Exception safety (strong): if the update throws — a fired
  /// AnalysisOptions::cancel token, or an engine failure — the analyzer has
  /// already restored its caches (trace, counters, compiled tape) to the
  /// pre-call state before the exception escapes.  The caller then only has
  /// to roll back its own netlist mutation to be fully consistent again; it
  /// must NOT call revert_last() for the failed update (there is nothing to
  /// revert — the pending snapshot still belongs to the previous successful
  /// one).  A compiled-tape patch failure alone is not an error: the tape
  /// is dropped, the update transparently degrades to the interpreted
  /// engine (recorded as `power.inc.tape_fallback` and
  /// UpdateStats::tape_fallback), and a fresh tape is compiled on the next
  /// opportunity.
  const Analysis& reanalyze(const Netlist::TouchedNodes& touched);

  /// Restore the cache and analysis to their state before the most recent
  /// reanalyze().  Call after rolling back the corresponding netlist
  /// mutation (Netlist::rollback_undo) so cache and netlist agree again.
  /// One level deep; throws std::logic_error if there is nothing to revert.
  void revert_last();

  /// Candidate-scoring probe for rewrite loops: reanalyze(touched) and
  /// return the resulting total power (watts).  Both reanalyze() success
  /// paths — cone splice and full rebaseline — leave a pending snapshot, so
  /// the caller makes exactly one of two moves next: keep the candidate
  /// (commit its undo epoch; the estimate already matches the netlist) or
  /// reject it (Netlist::rollback_undo, then revert_last()).  Inherits
  /// reanalyze()'s strong exception safety; counted as power.inc.probes.
  double score_candidate(const Netlist::TouchedNodes& touched);

  /// Analysis as it stood before the most recent successful reanalyze()
  /// (the pending snapshot's).  Lets candidate scorers form footprint-local
  /// power deltas without copying the whole Analysis per probe.  Throws
  /// std::logic_error when no update is pending.
  const Analysis& previous_analysis() const;

  /// Fork a scoring oracle bound to `net`, which must be an element-wise
  /// clone of this analyzer's netlist in its current state (same node ids,
  /// same tombstones — Netlist::clone() of the bound net after every
  /// mutation was reported here).  The clone copies the cached frame
  /// stream, counters and analysis — no re-simulation — and starts with no
  /// pending snapshot; its compiled tape is built lazily against `net` on
  /// first reanalyze().  Used by logicopt/speculate.cpp to score candidate
  /// batches on worker threads without touching the primary oracle.
  /// Requires a ZeroDelay baseline cache (throws std::logic_error in Timed
  /// mode or after a failed baseline).
  IncrementalAnalyzer clone_for(const Netlist& net) const;

  /// Digest of the primary-output value streams in the cached trace,
  /// mix64-chained over frames with each output's position folded into
  /// its term — deliberately order-*sensitive*, so it pins the exact
  /// (frame, output) placement of every word, not just the multiset of
  /// values.  The cone-scoped soundness proof: two calls — one before a
  /// mutation is applied, one after reanalyze() — agree iff every output
  /// column is bit-identical across the whole cached stimulus, which is
  /// exactly what the full-circuit differential trace checked (the PO
  /// streams), at O(outputs x frames) instead of O(netlist x frames).
  /// Covers PO-list redirection: the digest reads the *current* outputs()
  /// binding.  Throws std::logic_error when there is no cached trace.
  std::uint64_t outputs_digest() const;

 private:
  struct CloneTag {};
  IncrementalAnalyzer(CloneTag, const Netlist& net,
                      const IncrementalAnalyzer& src);
  struct Snapshot {
    bool full = false;  // snapshot of a whole pre-fallback cache
    // full == true: the entire previous trace (moved, so cost-free).
    sim::ActivityTrace trace;
    bool have_trace = false;
    // full == false: per-node deltas, all ids < old_size.
    std::size_t old_size = 0;
    std::vector<NodeId> resim_ids;  // columns[i] = old frame words of id i
    std::vector<std::vector<std::uint64_t>> columns;
    std::vector<NodeId> count_ids;  // old (ones, toggles) per id
    std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;
    // Tape-patch roots of the reverted mutation (compiled engine):
    // revert_to() re-emits their records from the restored netlist.
    std::vector<NodeId> patched;
    Analysis analysis;
  };

  void run_full();  // (re)build trace_ + analysis_ from scratch
  // Restore trace/counter/analysis state from a cone snapshot (the shared
  // tail of revert_last() and the in-flight exception restore).
  void restore_cone(Snapshot& s);
  // Return a retired snapshot's column buffers to the scratch pool so the
  // next reanalyze() reuses their capacity instead of reallocating
  // per candidate (bounded; excess is freed).
  void recycle(Snapshot& s);

  const Netlist* net_;
  AnalysisOptions opt_;
  Analysis analysis_;
  sim::ActivityTrace trace_;  // ZeroDelay frame/counter cache
  bool have_trace_ = false;
  // Persistent compiled tape (SimOptions::use_compiled): patched in place
  // from each mutation's touched-node report instead of recompiled, so a
  // pass loop pays O(edit) per candidate, not O(netlist).
  std::optional<sim::CompiledSim> csim_;
  UpdateStats last_;
  std::optional<Snapshot> snap_;
  // Scratch: retired snapshot columns, reused across candidate probes.
  std::vector<std::vector<std::uint64_t>> col_pool_;
};

}  // namespace lps::power
