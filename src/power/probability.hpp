// probability.hpp — probabilistic switching-activity estimation.
//
// §IV-A and Najm's companion survey [31]: synthesis-time power estimation
// cannot afford full simulation, so activities are computed analytically.
// Three estimators of increasing fidelity:
//
//  1. signal_probs_independent — topological propagation assuming spatially
//     independent fanins (fast, inaccurate on reconvergence);
//  2. signal_probs_exact — global-BDD evaluation, exact under temporally
//     independent inputs (the method of Ghosh et al. [16] restricted to
//     combinational logic);
//  3. transition_density — Najm's density propagation
//         D(y) = sum_i P(dy/dx_i) * D(x_i)
//     with the Boolean difference computed exactly on global BDDs.
//
// Toggle rates from (2)/(3) feed compute_power() exactly like simulated
// activities, which is how the estimation-accuracy experiment (E13) compares
// model classes.

#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::power {

/// P(node = 1) assuming independent fanins.  `pi_prob[i]` matches
/// net.inputs()[i] (empty = 0.5); register outputs get probability 0.5.
std::vector<double> signal_probs_independent(
    const Netlist& net, std::span<const double> pi_prob = {});

/// Exact P(node = 1) via global BDDs (inputs temporally/spatially
/// independent with the given one-probabilities).
std::vector<double> signal_probs_exact(const Netlist& net,
                                       std::span<const double> pi_prob = {});

/// Zero-delay toggle rate from signal probability under the lag-one
/// independence assumption: N(n) = 2 p (1-p).
std::vector<double> toggle_rate_from_probs(std::span<const double> probs);

/// Najm transition densities.  `pi_density[i]` is the expected toggles per
/// cycle of input i (empty = 0.5, the density of an iid 0.5 stream).
std::vector<double> transition_density(const Netlist& net,
                                       std::span<const double> pi_prob = {},
                                       std::span<const double> pi_density = {});

namespace detail {
/// Test hook: make the next `n` global-BDD builds throw NodeLimitExceeded so
/// tests can exercise the degrade-to-simulation fallback without constructing
/// a network that actually blows the 4M-node budget.  Each forced failure is
/// consumed exactly once (thread-safe); normal operation resumes after `n`.
void force_bdd_limit(int n);
}  // namespace detail

}  // namespace lps::power
