// power_model.hpp — the Eqn. (1) power model of the survey.
//
//   P = 1/2 C V_DD^2 f N  +  Q_SC V_DD f N  +  I_leak V_DD
//
// The first term (switching activity power) dominates in well-designed CMOS
// ("over 90% of the total power" — §I, citing Chandrakasan et al. [8]); the
// optimizations in this library act on C (sizing, mapping, factoring) and on
// N (everything else).  Capacitance is derived structurally: each node
// drives the gate capacitance of its fanouts (proportional to their drive
// size), wire capacitance per fanout branch, and its own drain capacitance
// (proportional to its size).  Short-circuit charge is modelled as a fixed
// fraction of the switched charge; leakage as a per-transistor current.
// Default constants approximate a 0.8um 5V process at 20 MHz — the
// technology node of the surveyed papers.

#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::power {

struct PowerParams {
  double vdd = 5.0;         // volts
  double freq = 20e6;       // clock frequency, Hz
  double cin_ff = 10.0;     // gate input capacitance per fanin pin, fF
  double cwire_ff = 5.0;    // interconnect capacitance per fanout branch, fF
  double cself_ff = 5.0;    // drain/diffusion self-capacitance, fF
  // Q_SC per transition expressed as a fraction of the switched charge
  // C*V_DD.  With well-designed (balanced-slope) gates short-circuit power
  // is a few percent of the dynamic total, which is what makes the S-I
  // claim "switching activity accounts for over 90%" hold.
  double qsc_fraction = 0.04;
  double ileak_pa_per_transistor = 20.0;  // subthreshold+diode leakage, pA
  // Clock-pin capacitance of a flip-flop and of a clock-gating cell.  The
  // free-running clock toggles twice per cycle; a load-enabled register's
  // clock is gated by its enable (§III-C.3), so its clock pin toggles
  // 2 * P(EN) per cycle plus one always-on gating cell per distinct enable.
  // Includes the flip-flop's internal clock buffers, which is what makes
  // clock power worth gating (S-III-C.3).
  double clock_pin_ff = 15.0;
  double gating_cell_ff = 10.0;
};

struct PowerBreakdown {
  double switching_w = 0.0;
  double short_circuit_w = 0.0;
  double leakage_w = 0.0;
  double total_w() const { return switching_w + short_circuit_w + leakage_w; }
  /// Fraction of total power due to switching activity (the §I claim).
  double switching_fraction() const {
    double t = total_w();
    return t > 0 ? switching_w / t : 0.0;
  }
};

/// Capacitive load switched when node `id` toggles, in farads.
double node_capacitance(const Netlist& net, NodeId id, const PowerParams& p);

/// CMOS transistor count of a gate (2 per input for simple static gates,
/// richer for XOR/MUX); 0 for sources and registers' storage is counted as
/// 8 transistors per Dff.
int transistor_count(const Node& n);

struct PowerReport {
  PowerBreakdown breakdown;
  std::vector<double> node_switching_w;  // per node
  /// Per-node total (switching + short-circuit + leakage) contribution.
  /// Each entry is a pure function of that node's own record — type, size,
  /// fanout loads, PO membership, toggle count — so two analyses that agree
  /// on a node's record and counters agree on its entry bit-for-bit.  The
  /// speculation layer (logicopt/speculate.hpp) sums footprint-local
  /// differences of these entries to get power deltas that transplant
  /// exactly between a batch snapshot and the live netlist.
  std::vector<double> node_power_w;
  double total_cap_f = 0.0;              // sum of node capacitances
  double weighted_activity = 0.0;        // sum over nodes of C * N (F/cycle)
};

/// Combine a per-node toggle rate (expected transitions per clock cycle,
/// from any estimator in activity.hpp / probability.hpp) with the Eqn. (1)
/// model.
PowerReport compute_power(const Netlist& net,
                          std::span<const double> toggles_per_cycle,
                          const PowerParams& p = {});

}  // namespace lps::power
