// activity.hpp — one-call power analysis driver.
//
// Ties the simulators (sim/) to the Eqn. (1) model (power_model.hpp).  Two
// activity sources are offered:
//   ZeroDelay — functional toggles only (what logic-level estimators count);
//   Timed     — event-driven with glitches (what the circuit dissipates).
// The gap between them is the spurious-switching power of §III-A.2.

#pragma once

#include <cstdint>
#include <vector>

#include "power/power_model.hpp"
#include "sim/eventsim.hpp"
#include "sim/logicsim.hpp"

namespace lps::power {

enum class ActivityMode { ZeroDelay, Timed };

struct AnalysisOptions {
  ActivityMode mode = ActivityMode::Timed;
  std::size_t n_vectors = 2048;  // timed vectors (ZeroDelay uses /64 frames)
  std::uint64_t seed = 0xC0FFEE;
  std::vector<double> pi_one_prob;  // empty = 0.5 everywhere
  PowerParams params;
};

struct Analysis {
  PowerReport report;
  std::vector<double> toggles_per_cycle;  // per node (mode-dependent)
  double glitch_fraction = 0.0;           // only meaningful in Timed mode
  double glitch_power_w = 0.0;            // switching power due to glitches
  double clock_power_w = 0.0;             // clock-pin power (gating-aware);
                                          // already included in report totals
};

/// Simulate and evaluate Eqn. (1).  Deterministic in `seed`.
Analysis analyze(const Netlist& net, const AnalysisOptions& opt = {});

/// Power under a *user-specified* input sequence rather than random
/// vectors — the sequential-estimation setting of Monteiro & Devadas [28]
/// ("power estimation ... under user-specified input sequences and
/// programs").  `sequence[t][i]` is the value of net.inputs()[i] in cycle
/// t; the event-driven simulator runs the exact trace.
Analysis analyze_sequence(const Netlist& net,
                          const std::vector<std::vector<bool>>& sequence,
                          const PowerParams& params = {});

}  // namespace lps::power
