// activity.hpp — one-call power analysis driver.
//
// Ties the simulators (sim/) to the Eqn. (1) model (power_model.hpp).  Two
// activity sources are offered:
//   ZeroDelay — functional toggles only (what logic-level estimators count);
//   Timed     — event-driven with glitches (what the circuit dissipates).
// The gap between them is the spurious-switching power of §III-A.2.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "power/power_model.hpp"
#include "sim/eventsim.hpp"
#include "sim/logicsim.hpp"

namespace lps::power {

enum class ActivityMode { ZeroDelay, Timed };

struct AnalysisOptions {
  ActivityMode mode = ActivityMode::Timed;
  std::size_t n_vectors = 2048;  // timed vectors (ZeroDelay uses /64 frames)
  std::uint64_t seed = 0xC0FFEE;
  std::vector<double> pi_one_prob;  // empty = 0.5 everywhere
  PowerParams params;
  /// Optional cooperative cancellation token (not owned; must outlive the
  /// call).  Threaded into the Monte Carlo drivers, which poll it at shard
  /// and frame-batch boundaries; a fired token aborts the analysis with
  /// core::CancelledError and discards all partial counts.  The token does
  /// not participate in the result — two analyses with the same options and
  /// different tokens (that never fire) are bit-identical.
  const core::CancelToken* cancel = nullptr;
};

struct Analysis {
  PowerReport report;
  std::vector<double> toggles_per_cycle;  // per node (mode-dependent)
  double glitch_fraction = 0.0;           // only meaningful in Timed mode
  double glitch_power_w = 0.0;            // switching power due to glitches
  double clock_power_w = 0.0;             // clock-pin power (gating-aware);
                                          // already included in report totals
  /// Vectors actually simulated.  ZeroDelay packs 64 patterns per frame and
  /// rounds `n_vectors` down to a frame multiple (min 2 frames = 128), so
  /// this can differ from AnalysisOptions::n_vectors — check it instead of
  /// assuming the request was honored exactly.
  std::size_t vectors_used = 0;
  /// Code path that produced the numbers, e.g. "tape[avx512,b16]",
  /// "interp", "eventsim" (sim::engine_desc()).  Every engine choice is
  /// bit-identical for the same options, so this is observability for
  /// reports and service responses, never a result qualifier.
  std::string engine;
};

/// Simulate and evaluate Eqn. (1).  Deterministic in `seed`.
Analysis analyze(const Netlist& net, const AnalysisOptions& opt = {});

/// Number of zero-delay frames analyze() simulates for a vector request —
/// the rounding rule Analysis::vectors_used reports (64 patterns per frame,
/// min 2 frames).
inline std::size_t zero_delay_frames(std::size_t n_vectors) {
  return std::max<std::size_t>(2, n_vectors / 64);
}

namespace detail {
/// Assemble the ZeroDelay Analysis from measured activity statistics.
/// Shared between analyze() and the incremental re-estimator
/// (power/incremental.hpp) so both derive the final report through
/// identical arithmetic — the bit-equality contract depends on it.
Analysis assemble_zero_delay(const Netlist& net, const sim::ActivityStats& st,
                             const AnalysisOptions& opt);
}  // namespace detail

/// Power under a *user-specified* input sequence rather than random
/// vectors — the sequential-estimation setting of Monteiro & Devadas [28]
/// ("power estimation ... under user-specified input sequences and
/// programs").  `sequence[t][i]` is the value of net.inputs()[i] in cycle
/// t; the event-driven simulator runs the exact trace.
Analysis analyze_sequence(const Netlist& net,
                          const std::vector<std::vector<bool>>& sequence,
                          const PowerParams& params = {});

}  // namespace lps::power
