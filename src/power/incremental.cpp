#include "power/incremental.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <utility>

#include "core/aligned.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"

namespace lps::power {

namespace detail {

namespace {
std::atomic<int> g_forced_tape_failures{0};

bool consume_forced_tape_failure() {
  int cur = g_forced_tape_failures.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (g_forced_tape_failures.compare_exchange_weak(
            cur, cur - 1, std::memory_order_relaxed))
      return true;
  }
  return false;
}
}  // namespace

void force_tape_failures(int n) {
  g_forced_tape_failures.store(n, std::memory_order_relaxed);
}

}  // namespace detail

IncrementalAnalyzer::IncrementalAnalyzer(const Netlist& net,
                                         AnalysisOptions opt)
    : net_(&net), opt_(std::move(opt)) {
  run_full();
}

IncrementalAnalyzer::IncrementalAnalyzer(CloneTag, const Netlist& net,
                                         const IncrementalAnalyzer& src)
    : net_(&net),
      opt_(src.opt_),
      analysis_(src.analysis_),
      trace_(src.trace_),
      have_trace_(true) {
  // No compiled tape: it binds to the source netlist.  The first
  // reanalyze() on the clone compiles one lazily against `net`.
}

IncrementalAnalyzer IncrementalAnalyzer::clone_for(const Netlist& net) const {
  if (opt_.mode != ActivityMode::ZeroDelay || !have_trace_)
    throw std::logic_error(
        "IncrementalAnalyzer::clone_for: requires a ZeroDelay baseline "
        "cache (Timed mode keeps none)");
  core::metrics::count("power.inc.clones");
  return IncrementalAnalyzer(CloneTag{}, net, *this);
}

const Analysis& IncrementalAnalyzer::previous_analysis() const {
  if (!snap_)
    throw std::logic_error(
        "IncrementalAnalyzer::previous_analysis: no update pending");
  return snap_->analysis;
}

std::uint64_t IncrementalAnalyzer::outputs_digest() const {
  if (!have_trace_)
    throw std::logic_error(
        "IncrementalAnalyzer::outputs_digest: no cached trace");
  std::uint64_t d = 0x9E3779B97F4A7C15ull;
  const auto& outs = net_->outputs();
  for (const sim::Frame& f : trace_.frames)
    for (std::size_t j = 0; j < outs.size(); ++j)
      d = core::mix64(d ^ (f[outs[j]] + 0x9E3779B97F4A7C15ull * (j + 1)));
  return d;
}

void IncrementalAnalyzer::run_full() {
  if (opt_.mode == ActivityMode::ZeroDelay) {
    try {
      // Same frames/seed/arithmetic as analyze()'s ZeroDelay branch, plus
      // the raw trace capture the cone updates replay against.
      auto st = sim::measure_activity(*net_, zero_delay_frames(opt_.n_vectors),
                                      opt_.seed, opt_.pi_one_prob, &trace_,
                                      opt_.cancel);
      analysis_ = detail::assemble_zero_delay(*net_, st, opt_);
      have_trace_ = true;
    } catch (...) {
      // A cancelled or failed baseline leaves no usable cache: the capture
      // buffer was partially overwritten, so forget it wholesale rather
      // than risk splicing against garbage.  Callers in reanalyze() restore
      // their own snapshot on top of this.
      trace_ = {};
      have_trace_ = false;
      csim_.reset();
      throw;
    }
    // Fresh compact tape for the cone updates (patched per mutation from
    // here on).
    if (sim::sim_options().use_compiled) {
      if (csim_)
        csim_->rebuild();
      else
        csim_.emplace(*net_);
    } else {
      csim_.reset();
    }
  } else {
    // Timed mode keeps no per-frame cache; every update is a full run.
    analysis_ = analyze(*net_, opt_);
    trace_ = {};
    have_trace_ = false;
    csim_.reset();
  }
}

void IncrementalAnalyzer::rebaseline() {
  snap_.reset();
  last_ = {};
  run_full();
}

const Analysis& IncrementalAnalyzer::reanalyze(
    const Netlist::TouchedNodes& touched) {
  const Netlist& net = *net_;
  last_ = {};
  last_.live_nodes = net.num_live();
  core::metrics::count("power.inc.updates");

  std::size_t n_frames = trace_.frames.size();
  bool cone_ok = have_trace_ && !touched.all &&
                 net.size() >= trace_.ones.size();
  if (!cone_ok) {
    // Full fallback: the old cache moves wholesale into the snapshot (no
    // copies), then the baseline is rebuilt for the mutated netlist.
    Snapshot s;
    s.full = true;
    s.trace = std::move(trace_);
    s.have_trace = have_trace_;
    s.analysis = std::move(analysis_);
    try {
      run_full();
    } catch (...) {
      // Restore the pre-call cache (run_full already cleared its partial
      // state): once the caller rolls back its netlist mutation the
      // analyzer is bit-for-bit consistent again.  The compiled tape was
      // dropped; it is recompiled lazily.
      trace_ = std::move(s.trace);
      have_trace_ = s.have_trace;
      analysis_ = std::move(s.analysis);
      throw;
    }
    if (snap_) recycle(*snap_);  // retire the superseded snapshot's buffers
    snap_ = std::move(s);
    last_.full_rebaseline = true;
    last_.resim_nodes = last_.live_nodes;
    core::metrics::count("power.inc.fallback_full");
    // Frame-equivalent eval volume (Timed keeps no trace; use the request).
    double frames_eq = static_cast<double>(
        have_trace_ ? trace_.frames.size() : opt_.n_vectors);
    double evals = static_cast<double>(last_.live_nodes) * frames_eq;
    core::metrics::count("power.inc.node_evals", evals);
    core::metrics::count("power.inc.node_evals_full", evals);
    return analysis_;
  }

  // ---- Cone-scoped update -------------------------------------------------
  // Dirty set: transitive fanout of the *value-relevant* touched nodes,
  // crossing registers (a changed D/EN driver changes the register's value
  // stream from the next frame on).  Touched nodes whose pre-image differs
  // only in fanouts/size/delay/name seed nothing — their value streams are
  // unchanged, and capacitance is recomputed from the live netlist below.
  auto mask = net.fanout_cone_of(touched.value_roots, /*through_dffs=*/true);

  // Engine selection.  The compiled tape persists across updates and is
  // patched from the same touched-node report (O(edit)); the interpreted
  // engine re-walks the topo order per call (O(netlist)).  Both produce
  // bit-identical cone words, so the splice below is engine-agnostic —
  // which is also why a tape failure can degrade to the interpreter
  // mid-call without changing the result: the tape is dropped (recompiled
  // lazily next update), the failure is counted, and the update proceeds.
  bool compiled_path = sim::sim_options().use_compiled;
  std::optional<sim::LogicSim> isim;
  sim::ConeSchedule sched;
  if (compiled_path) {
    try {
      if (detail::consume_forced_tape_failure())
        throw std::runtime_error("injected compiled-tape failure (chaos)");
      if (csim_)
        csim_->update(touched);
      else
        csim_.emplace(net);
      sched = csim_->cone_schedule(mask);
    } catch (const std::exception&) {
      // The tape may be partially patched and can no longer be trusted to
      // mirror the netlist; discard it and fall back to the interpreter.
      csim_.reset();
      compiled_path = false;
      last_.tape_fallback = true;
      core::metrics::count("power.inc.tape_fallback");
    }
  }
  if (!compiled_path) {
    csim_.reset();
    isim.emplace(net);
    sched = isim->cone_schedule(mask);
  }

  Snapshot s;
  s.full = false;
  s.old_size = trace_.ones.size();
  s.patched.assign(touched.value_roots.begin(), touched.value_roots.end());
  s.analysis = analysis_;

  // Grow the cache for appended nodes (cone path never shrinks: compact()
  // and wholesale restores report `all` and take the fallback above).
  if (net.size() > s.old_size) {
    trace_.ones.resize(net.size(), 0);
    trace_.toggles.resize(net.size(), 0);
    for (auto& f : trace_.frames) f.resize(net.size(), 0);
  }

  // Count-update set: every non-input cone node.  Gates and registers get
  // re-simulated; cone nodes that are now dead just have their counters
  // zeroed (full analysis skips dead nodes).  Inputs never change value.
  for (NodeId id = 0; id < net.size(); ++id) {
    if (!mask[id] || net.node(id).type == GateType::Input) continue;
    if (id < s.old_size) {
      s.count_ids.push_back(id);
      s.counts.emplace_back(trace_.ones[id], trace_.toggles[id]);
    }
    trace_.ones[id] = 0;
    trace_.toggles[id] = 0;
  }

  // Snapshot the frame columns the sweep will overwrite.  Buffers come from
  // the scratch pool when a prior probe retired some, so a candidate loop
  // stops paying one allocation per cone node per candidate.
  auto snapshot_column = [&](NodeId id) {
    if (id >= s.old_size) return;  // truncated away on revert
    s.resim_ids.push_back(id);
    std::vector<std::uint64_t> col;
    if (!col_pool_.empty()) {
      col = std::move(col_pool_.back());
      col_pool_.pop_back();
      col.clear();
    }
    col.reserve(n_frames);
    for (std::size_t fr = 0; fr < n_frames; ++fr)
      col.push_back(trace_.frames[fr][id]);
    s.columns.push_back(std::move(col));
  };
  for (NodeId id : sched.gates) snapshot_column(id);
  for (NodeId id : sched.dffs) snapshot_column(id);

  // In-place sweep.  frames[fr-1] is already updated when frame fr is
  // processed, so register stepping and toggle counting read the new value
  // stream exactly as a full re-simulation would.  The sweep polls the
  // cancellation token per frame (per block on the blocked path); on any
  // throw the snapshot just built is played back immediately, so partially
  // rewritten columns never escape — the exception-safety contract in the
  // header.
  //
  // Register-free cones on the compiled tape take a blocked drive: B
  // frames' worth of cone-boundary words are gathered node-major into an
  // aligned value block, one exec_gates replay evaluates all B lanes with
  // the SIMD kernels, and the gate columns are scattered back.  Each lane
  // is an independent frame of a combinational cone, so lane j's words
  // equal the frame-by-frame path's words exactly; the counting pass below
  // then reads identical frames either way.
  const std::size_t block_frames =
      (compiled_path && sched.dffs.empty() && n_frames > 1)
          ? sim::normalize_block(sim::sim_options().block)
          : 1;
  try {
    if (block_frames > 1) {
      const std::size_t B = block_frames;
      // Slots a replay touches: the cone gates and every boundary fanin.
      std::vector<NodeId> slots(sched.gates.begin(), sched.gates.end());
      for (NodeId g : sched.gates)
        for (NodeId f : net.node(g).fanins) slots.push_back(f);
      std::sort(slots.begin(), slots.end());
      slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
      core::AlignedWords val(net.size() * B, 0);
      std::uint64_t* v = val.data();
      for (std::size_t f0 = 0; f0 < n_frames; f0 += B) {
        core::poll_cancel(opt_.cancel);
        // Tail blocks evaluate all B lanes but only the first `b` carry
        // real frames; stale trailing lanes are inert (never scattered).
        const std::size_t b = std::min(B, n_frames - f0);
        for (NodeId s : slots) {
          std::uint64_t* w = v + static_cast<std::size_t>(s) * B;
          for (std::size_t j = 0; j < b; ++j) w[j] = trace_.frames[f0 + j][s];
        }
        csim_->exec_gates(v, B, sched.gates);
        for (NodeId g : sched.gates) {
          const std::uint64_t* w = v + static_cast<std::size_t>(g) * B;
          for (std::size_t j = 0; j < b; ++j) trace_.frames[f0 + j][g] = w[j];
        }
      }
      // Counting pass over the now-updated frames — same arithmetic, same
      // order as the frame-by-frame path (no registers in this cone).
      for (std::size_t fr = 0; fr < n_frames; ++fr) {
        const sim::Frame& f = trace_.frames[fr];
        const sim::Frame* prev =
            trace_.shard_start[fr] ? nullptr : &trace_.frames[fr - 1];
        for (NodeId id : sched.gates) {
          trace_.ones[id] += std::popcount(f[id]);
          if (prev) trace_.toggles[id] += std::popcount(f[id] ^ (*prev)[id]);
        }
      }
    } else {
      for (std::size_t fr = 0; fr < n_frames; ++fr) {
        core::poll_cancel(opt_.cancel);
        sim::Frame& f = trace_.frames[fr];
        const sim::Frame* prev =
            trace_.shard_start[fr] ? nullptr : &trace_.frames[fr - 1];
        for (NodeId d : sched.dffs) {
          const Node& nd = net.node(d);
          if (!prev) {
            f[d] = nd.init_value ? ~0ULL : 0ULL;
          } else {
            std::uint64_t next = (*prev)[nd.fanins[0]];
            if (nd.fanins.size() == 2) {
              std::uint64_t en = (*prev)[nd.fanins[1]];
              next = (en & next) | (~en & (*prev)[d]);  // hold on EN = 0
            }
            f[d] = next;
          }
        }
        if (compiled_path)
          csim_->exec_gates(f.data(), 1, sched.gates);
        else
          isim->eval_cone_into(f, sched);
        auto count = [&](NodeId id) {
          trace_.ones[id] += std::popcount(f[id]);
          if (prev) trace_.toggles[id] += std::popcount(f[id] ^ (*prev)[id]);
        };
        for (NodeId id : sched.dffs) count(id);
        for (NodeId id : sched.gates) count(id);
      }
    }

    // Splice: derive the report from the updated integer counters through
    // the exact arithmetic analyze() uses.
    auto st = sim::stats_from_counts(trace_.ones, trace_.toggles,
                                     trace_.patterns, trace_.seam_patterns);
    analysis_ = detail::assemble_zero_delay(net, st, opt_);
  } catch (...) {
    // The patched tape reflects the mutated netlist, which the caller is
    // about to roll back — a revert_to() replay would re-read the still-
    // mutated nodes, so drop the tape instead (recompiled lazily).
    csim_.reset();
    restore_cone(s);
    recycle(s);
    throw;
  }
  if (snap_) recycle(*snap_);  // retire the superseded snapshot's buffers
  snap_ = std::move(s);

  last_.resim_nodes = sched.resim_nodes();
  core::metrics::count(
      "power.inc.node_evals",
      static_cast<double>(last_.resim_nodes) * static_cast<double>(n_frames));
  core::metrics::count(
      "power.inc.node_evals_full",
      static_cast<double>(last_.live_nodes) * static_cast<double>(n_frames));
  return analysis_;
}

void IncrementalAnalyzer::revert_last() {
  if (!snap_)
    throw std::logic_error(
        "IncrementalAnalyzer::revert_last: no update to revert");
  Snapshot s = std::move(*snap_);
  snap_.reset();
  core::metrics::count("power.inc.reverts");
  if (s.full) {
    trace_ = std::move(s.trace);
    have_trace_ = s.have_trace;
    analysis_ = std::move(s.analysis);
    // The netlist was restored wholesale; recompile against it.
    if (csim_) csim_->rebuild();
    return;
  }
  // Truncate nodes appended by the reverted mutation, restore the cone's
  // old frame words and counters.  The compiled tape re-emits the patch
  // roots' records from the restored netlist (O(edit)).
  if (csim_) csim_->revert_to(s.old_size, s.patched);
  restore_cone(s);
  recycle(s);
}

void IncrementalAnalyzer::recycle(Snapshot& s) {
  constexpr std::size_t kPoolCap = 1024;
  for (auto& col : s.columns) {
    if (col_pool_.size() >= kPoolCap) break;
    col_pool_.push_back(std::move(col));
  }
  s.columns.clear();
}

void IncrementalAnalyzer::restore_cone(Snapshot& s) {
  trace_.ones.resize(s.old_size);
  trace_.toggles.resize(s.old_size);
  for (auto& f : trace_.frames) f.resize(s.old_size);
  for (std::size_t i = 0; i < s.resim_ids.size(); ++i) {
    NodeId id = s.resim_ids[i];
    for (std::size_t fr = 0; fr < trace_.frames.size(); ++fr)
      trace_.frames[fr][id] = s.columns[i][fr];
  }
  for (std::size_t i = 0; i < s.count_ids.size(); ++i) {
    trace_.ones[s.count_ids[i]] = s.counts[i].first;
    trace_.toggles[s.count_ids[i]] = s.counts[i].second;
  }
  analysis_ = std::move(s.analysis);
}

double IncrementalAnalyzer::score_candidate(
    const Netlist::TouchedNodes& touched) {
  const Analysis& a = reanalyze(touched);
  core::metrics::count("power.inc.probes");
  return a.report.breakdown.total_w();
}

}  // namespace lps::power
