#include "power/activity.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "sim/simd.hpp"

namespace lps::power {

namespace {

// True when some register has a load-enable pin — only then do enable
// duties differ from 1.0 and gating cells exist.
bool has_enabled_dff(const Netlist& net) {
  for (NodeId d : net.dffs())
    if (net.node(d).fanins.size() == 2) return true;
  return false;
}

// Gating-aware clock-pin power: free-running registers see two clock-pin
// transitions per cycle; a register with a load-enable pin is clock-gated
// by it, so its pin toggles 2*P(EN=1), plus one gating cell per distinct
// enable signal sees the raw clock.
double clock_power(const Netlist& net,
                   const std::vector<double>& enable_duty,
                   const PowerParams& p) {
  double cap_toggles_ff = 0.0;  // fF-toggles per cycle
  // Distinct enable signals, deduplicated by sort+unique (a per-call
  // std::set costs one allocation per register).
  std::vector<NodeId> enables;
  for (NodeId d : net.dffs()) {
    const Node& nd = net.node(d);
    if (nd.fanins.size() == 2) {
      cap_toggles_ff += p.clock_pin_ff * 2.0 * enable_duty[d];
      enables.push_back(nd.fanins[1]);
    } else {
      cap_toggles_ff += p.clock_pin_ff * 2.0;
    }
  }
  std::sort(enables.begin(), enables.end());
  enables.erase(std::unique(enables.begin(), enables.end()), enables.end());
  cap_toggles_ff += p.gating_cell_ff * 2.0 * static_cast<double>(enables.size());
  return 0.5 * cap_toggles_ff * 1e-15 * p.vdd * p.vdd * p.freq;
}

// Duty of each register's enable: P(EN = 1), from signal probabilities.
std::vector<double> enable_duties(const Netlist& net,
                                  const std::vector<double>& signal_prob) {
  std::vector<double> duty(net.size(), 1.0);
  for (NodeId d : net.dffs()) {
    const Node& nd = net.node(d);
    if (nd.fanins.size() == 2) duty[d] = signal_prob[nd.fanins[1]];
  }
  return duty;
}

}  // namespace

namespace detail {

Analysis assemble_zero_delay(const Netlist& net, const sim::ActivityStats& st,
                             const AnalysisOptions& opt) {
  Analysis a;
  a.toggles_per_cycle = st.transition_prob;
  a.report = compute_power(net, a.toggles_per_cycle, opt.params);
  a.clock_power_w =
      clock_power(net, enable_duties(net, st.signal_prob), opt.params);
  a.report.breakdown.switching_w += a.clock_power_w;
  a.vectors_used = st.patterns;
  // Stamped here — the one assembly point both analyze() and the
  // incremental analyzer share — so full and incremental results report
  // the same engine string.
  a.engine = sim::engine_desc();
  return a;
}

}  // namespace detail

Analysis analyze(const Netlist& net, const AnalysisOptions& opt) {
  Analysis a;
  if (opt.mode == ActivityMode::ZeroDelay) {
    auto st = sim::measure_activity(net, zero_delay_frames(opt.n_vectors),
                                    opt.seed, opt.pi_one_prob, nullptr,
                                    opt.cancel);
    return detail::assemble_zero_delay(net, st, opt);
  }
  auto ts = sim::measure_timed_activity(net, opt.n_vectors, opt.seed,
                                        opt.pi_one_prob, opt.cancel);
  a.engine = "eventsim";
  a.vectors_used = ts.vectors;
  a.toggles_per_cycle.assign(net.size(), 0.0);
  std::vector<double> functional(net.size(), 0.0);
  double nv = static_cast<double>(std::max<std::size_t>(1, ts.vectors));
  for (NodeId id = 0; id < net.size(); ++id) {
    a.toggles_per_cycle[id] = ts.total_toggles[id] / nv;
    functional[id] = ts.functional_toggles[id] / nv;
  }
  a.report = compute_power(net, a.toggles_per_cycle, opt.params);
  auto func_report = compute_power(net, functional, opt.params);
  a.glitch_power_w =
      a.report.breakdown.switching_w - func_report.breakdown.switching_w;
  a.glitch_fraction = a.report.breakdown.switching_w > 0
                          ? a.glitch_power_w / a.report.breakdown.switching_w
                          : 0.0;
  // Clock power: enable duties from a quick zero-delay probability run —
  // skipped entirely when no register has a load-enable pin, since every
  // duty is then 1.0 regardless of the signal probabilities.
  if (has_enabled_dff(net)) {
    auto st = sim::measure_activity(net, zero_delay_frames(opt.n_vectors),
                                    opt.seed, opt.pi_one_prob, nullptr,
                                    opt.cancel);
    a.clock_power_w =
        clock_power(net, enable_duties(net, st.signal_prob), opt.params);
  } else {
    a.clock_power_w =
        clock_power(net, std::vector<double>(net.size(), 1.0), opt.params);
  }
  a.report.breakdown.switching_w += a.clock_power_w;
  return a;
}

Analysis analyze_sequence(const Netlist& net,
                          const std::vector<std::vector<bool>>& sequence,
                          const PowerParams& params) {
  sim::EventSim es(net);
  std::size_t width = net.inputs().size();
  std::unique_ptr<bool[]> flat(new bool[std::max<std::size_t>(1, width)]);
  for (const auto& vec : sequence) {
    if (vec.size() != width)
      throw std::invalid_argument("analyze_sequence: vector width mismatch");
    for (std::size_t i = 0; i < width; ++i) flat[i] = vec[i];
    es.apply({flat.get(), width});
  }
  const auto& ts = es.stats();
  Analysis a;
  a.engine = "eventsim";
  a.vectors_used = ts.vectors;
  double nv = static_cast<double>(std::max<std::size_t>(1, ts.vectors));
  a.toggles_per_cycle.assign(net.size(), 0.0);
  std::vector<double> functional(net.size(), 0.0);
  for (NodeId id = 0; id < net.size(); ++id) {
    a.toggles_per_cycle[id] = ts.total_toggles[id] / nv;
    functional[id] = ts.functional_toggles[id] / nv;
  }
  a.report = compute_power(net, a.toggles_per_cycle, params);
  auto func_report = compute_power(net, functional, params);
  a.glitch_power_w =
      a.report.breakdown.switching_w - func_report.breakdown.switching_w;
  a.glitch_fraction = a.report.breakdown.switching_w > 0
                          ? a.glitch_power_w / a.report.breakdown.switching_w
                          : 0.0;
  return a;
}

}  // namespace lps::power
