#include "logicopt/dontcare.hpp"

#include <algorithm>

#include "bdd/bdd_netlist.hpp"

namespace lps::logicopt {

namespace {

// Transitive fanout mask of n (combinational; Dff boundaries cut).
std::vector<bool> tfo_of(const Netlist& net, NodeId n) {
  std::vector<bool> mask(net.size(), false);
  std::vector<NodeId> stack{n};
  mask[n] = true;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    for (NodeId fo : net.node(x).fanouts) {
      if (net.node(fo).type == GateType::Dff) continue;
      if (!mask[fo]) {
        mask[fo] = true;
        stack.push_back(fo);
      }
    }
  }
  return mask;
}

// Rebuild functions of n's transitive fanout with node n replaced by var y;
// returns the function of every node under that substitution.
std::vector<bdd::Ref> with_fresh_var(bdd::NetlistBdds& b, const Netlist& net,
                                     NodeId n, unsigned y,
                                     const std::vector<bool>& tfo) {
  auto& m = b.mgr;
  std::vector<bdd::Ref> fn = b.node_fn;
  fn[n] = m.var(y);
  for (NodeId id : net.topo_order()) {
    if (id == n || !tfo[id]) continue;
    const Node& nd = net.node(id);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    switch (nd.type) {
      case GateType::Buf:
        fn[id] = fn[nd.fanins[0]];
        break;
      case GateType::Not:
        fn[id] = m.lnot(fn[nd.fanins[0]]);
        break;
      case GateType::And:
      case GateType::Nand: {
        bdd::Ref r = bdd::kTrue;
        for (NodeId f : nd.fanins) r = m.land(r, fn[f]);
        fn[id] = nd.type == GateType::Nand ? m.lnot(r) : r;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        bdd::Ref r = bdd::kFalse;
        for (NodeId f : nd.fanins) r = m.lor(r, fn[f]);
        fn[id] = nd.type == GateType::Nor ? m.lnot(r) : r;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        bdd::Ref r = bdd::kFalse;
        for (NodeId f : nd.fanins) r = m.lxor(r, fn[f]);
        fn[id] = nd.type == GateType::Xnor ? m.lnot(r) : r;
        break;
      }
      case GateType::Mux:
        fn[id] = m.ite(fn[nd.fanins[0]], fn[nd.fanins[2]], fn[nd.fanins[1]]);
        break;
      default:
        break;
    }
  }
  return fn;
}

}  // namespace

DontCareResult optimize_dontcare(Netlist& net,
                                 const std::vector<double>& toggles,
                                 const DontCareOptions& opt) {
  DontCareResult res;
  res.gates_before = net.num_gates();
  // The netlist grows (fresh constant nodes) while `toggles` stays at its
  // original size; nodes added during optimization carry zero activity.
  auto tog = [&toggles](NodeId id) {
    return id < toggles.size() ? toggles[id] : 0.0;
  };

  bool changed = true;
  int rewrites = 0;
  try {
  while (changed && rewrites < opt.max_rewrites) {
    changed = false;
    auto bdds = bdd::build_bdds(net, opt.bdd_limit);
    auto& m = bdds.mgr;
    unsigned y = m.add_var();

    auto order = net.topo_order();
    for (NodeId n : order) {
      if (net.is_dead(n)) continue;
      const Node& nd = net.node(n);
      if (is_source(nd.type) || nd.type == GateType::Dff) continue;

      // Safe point: between candidates only the rooted global functions
      // are live, so shed the previous candidate's observability
      // scaffolding once it gets heavy instead of growing to bdd_limit.
      if (m.live_nodes() >= opt.bdd_limit / 2) m.gc();

      auto tfo = tfo_of(net, n);
      auto fn_y = with_fresh_var(bdds, net, n, y, tfo);

      // Care set: some root (PO or Dff D) distinguishes y=0 from y=1.
      bdd::Ref odc = bdd::kTrue;
      auto account_root = [&](NodeId root) {
        bdd::Ref f = fn_y[root];
        bdd::Ref f0 = m.cofactor(f, y, false);
        bdd::Ref f1 = m.cofactor(f, y, true);
        odc = m.land(odc, m.lxnor(f0, f1));
      };
      for (NodeId o : net.outputs())
        if (tfo[o]) account_root(o);
      for (NodeId d : net.dffs())
        if (tfo[net.node(d).fanins[0]]) account_root(net.node(d).fanins[0]);

      bdd::Ref care = m.lnot(odc);
      bdd::Ref f_n = bdds.node_fn[n];
      bdd::Ref f_care = m.land(f_n, care);

      // Constant replacement.
      NodeId replacement = kNoNode;
      if (f_care == bdd::kFalse) {
        replacement = net.add_const(false);
      } else if (m.land(m.lnot(f_n), care) == bdd::kFalse) {
        replacement = net.add_const(true);
      } else {
        // Merge with an existing signal outside the TFO.
        double best_gain = opt.power_aware ? 1e-12 : -1e30;
        for (NodeId g = 0; g < net.size(); ++g) {
          if (g == n || net.is_dead(g) || tfo[g]) continue;
          if (net.node(g).type == GateType::Const0 ||
              net.node(g).type == GateType::Const1)
            continue;
          if (m.land(bdds.node_fn[g], care) != f_care) continue;
          // Power gain: node n's activity disappears; g gains one fanout's
          // worth of load at g's activity.
          double gain = tog(n) - 0.5 * tog(g);
          if (!opt.power_aware) gain = 1.0;  // any admissible merge
          if (gain > best_gain) {
            best_gain = gain;
            replacement = g;
          }
        }
      }

      if (replacement != kNoNode) {
        net.substitute(n, replacement);
        net.sweep();
        if (net.node(replacement).type == GateType::Const0 ||
            net.node(replacement).type == GateType::Const1)
          ++res.const_replacements;
        else
          ++res.merges;
        ++rewrites;
        changed = true;
        break;  // netlist changed: rebuild BDDs
      }
    }
  }
  } catch (const bdd::NodeLimitExceeded&) {
    // Symbolic analysis outgrew the budget: keep whatever rewrites landed
    // before the blowup (each was applied atomically, so the netlist is
    // consistent and equivalent).
  }
  res.gates_after = net.num_gates();
  return res;
}

}  // namespace lps::logicopt
