#include "logicopt/decompose_power.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace lps::logicopt {

namespace {

struct WeightedSignal {
  NodeId node;
  double weight;
};

struct HeavierFirst {
  bool operator()(const WeightedSignal& a, const WeightedSignal& b) const {
    if (a.weight != b.weight) return a.weight > b.weight;  // min-heap
    return a.node > b.node;  // deterministic tie-break
  }
};

GateType base_type(GateType t) {
  switch (t) {
    case GateType::Nand: return GateType::And;
    case GateType::Nor: return GateType::Or;
    case GateType::Xnor: return GateType::Xor;
    default: return t;
  }
}

bool inverted(GateType t) {
  return t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor;
}

}  // namespace

DecomposeResult decompose_wide_gates(Netlist& net, DecomposeShape shape,
                                     std::span<const double> activity) {
  if (shape == DecomposeShape::Huffman && activity.empty())
    throw std::invalid_argument(
        "decompose_wide_gates: Huffman shape needs activities");
  DecomposeResult res;
  auto act = [&](NodeId n) {
    return n < activity.size() ? activity[n] : 0.5;
  };

  // Collect targets first: the rewrite adds nodes.
  std::vector<NodeId> wide;
  for (NodeId n = 0; n < net.size(); ++n) {
    if (net.is_dead(n)) continue;
    const Node& nd = net.node(n);
    switch (nd.type) {
      case GateType::And:
      case GateType::Or:
      case GateType::Nand:
      case GateType::Nor:
      case GateType::Xor:
      case GateType::Xnor:
        if (nd.fanins.size() > 2) wide.push_back(n);
        break;
      default:
        break;
    }
  }

  for (NodeId g : wide) {
    GateType bt = base_type(net.node(g).type);
    bool inv = inverted(net.node(g).type);
    std::vector<NodeId> fanins = net.node(g).fanins;
    std::size_t before = net.num_gates();

    NodeId root = kNoNode;
    switch (shape) {
      case DecomposeShape::Chain: {
        root = fanins[0];
        for (std::size_t i = 1; i < fanins.size(); ++i)
          root = net.add_gate(bt, {root, fanins[i]});
        break;
      }
      case DecomposeShape::Balanced: {
        std::vector<NodeId> level = fanins;
        while (level.size() > 1) {
          std::vector<NodeId> next;
          for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(net.add_gate(bt, {level[i], level[i + 1]}));
          if (level.size() % 2) next.push_back(level.back());
          level = std::move(next);
        }
        root = level[0];
        break;
      }
      case DecomposeShape::Huffman: {
        std::priority_queue<WeightedSignal, std::vector<WeightedSignal>,
                            HeavierFirst>
            heap;
        for (NodeId f : fanins) heap.push({f, act(f)});
        while (heap.size() > 1) {
          auto a = heap.top();
          heap.pop();
          auto b = heap.top();
          heap.pop();
          NodeId t = net.add_gate(bt, {a.node, b.node});
          heap.push({t, a.weight + b.weight});
        }
        root = heap.top().node;
        break;
      }
    }
    if (inv) root = net.add_not(root);
    net.substitute(g, root);
    ++res.gates_decomposed;
    res.gates_added += static_cast<int>(net.num_gates() - before);
  }
  net.sweep();
  return res;
}

}  // namespace lps::logicopt
