#include "logicopt/resynth.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>
#include <set>

#include "bdd/bdd_netlist.hpp"
#include "core/metrics.hpp"
#include "logicopt/speculate.hpp"
#include "power/incremental.hpp"
#include "sop/factoring.hpp"
#include "sop/minimize.hpp"

namespace lps::logicopt {

namespace {

// Two-level fanin window around `n`: interior = {n} ∪ gate fanins that are
// themselves logic gates; boundary = everything feeding the interior from
// outside.  Returns false if the boundary exceeds the budget even after
// retrying with the one-level window; `capped` is set in that case so the
// caller can surface the truncation (it is a tuning signal, not a defect).
bool build_window(const Netlist& net, NodeId n, int max_inputs,
                  std::vector<NodeId>& interior,
                  std::vector<NodeId>& boundary, bool* capped = nullptr) {
  interior.clear();
  boundary.clear();
  std::set<NodeId> in_set{n};
  for (NodeId f : net.node(n).fanins) {
    const Node& fd = net.node(f);
    if (!is_source(fd.type) && fd.type != GateType::Dff &&
        fd.fanins.size() <= 4)
      in_set.insert(f);
  }
  std::set<NodeId> bset;
  for (NodeId m : in_set)
    for (NodeId f : net.node(m).fanins)
      if (!in_set.count(f)) bset.insert(f);
  if (static_cast<int>(bset.size()) > max_inputs) {
    // Retry with the one-level window (just the node itself).
    in_set = {n};
    bset.clear();
    for (NodeId f : net.node(n).fanins) bset.insert(f);
    if (static_cast<int>(bset.size()) > max_inputs) {
      if (capped) *capped = true;
      return false;
    }
  }
  interior.assign(in_set.begin(), in_set.end());
  boundary.assign(bset.begin(), bset.end());
  return true;
}

// Evaluate node `n` for one boundary assignment (scalar window simulation
// over `window_order`, the interior nodes in topological order).
bool eval_window(const Netlist& net, NodeId n,
                 const std::vector<NodeId>& window_order,
                 const std::vector<NodeId>& boundary, unsigned minterm) {
  std::vector<std::uint64_t> value(net.size(), 0);
  for (std::size_t i = 0; i < boundary.size(); ++i)
    value[boundary[i]] = (minterm >> i & 1) ? ~0ULL : 0ULL;
  for (NodeId id : window_order) {
    const Node& nd = net.node(id);
    std::vector<std::uint64_t> w;
    for (NodeId f : nd.fanins) w.push_back(value[f]);
    value[id] = eval_gate(nd.type, w);
  }
  return (value[n] & 1ULL) != 0;
}

// Gate cost of realizing a factored expression: one literal per AND/OR
// input plus one single-input gate per negated literal.
int expr_cost(const sop::Expr& e) {
  switch (e.kind) {
    case sop::Expr::Kind::Const0:
    case sop::Expr::Kind::Const1:
      return 0;
    case sop::Expr::Kind::Lit:
      return e.negated ? 2 : 1;
    default: {
      int c = 0;
      for (const auto& k : e.kids) c += expr_cost(k);
      return c;
    }
  }
}

// Everything the per-candidate examination computes before any mutation —
// the unit the speculation workers evaluate against a batch snapshot.  A
// plan transplants to the live netlist as long as nothing an earlier keep
// touched (structurally or through its dirty activity cone) intersects the
// plan's read set.
struct WindowPlan {
  enum class Status { Dead, Capped, NoBdds, Examined };
  Status status = Status::Dead;
  bool rewrite = false;  // expr beat the window's literal cost
  sop::Expr expr;
  std::vector<NodeId> boundary;
  /// 2-level structural closure of the candidate plus its fanout context;
  /// also the activity read set (boundary ⊆ closure).
  std::vector<NodeId> reads;
  std::exception_ptr error;  // examination failed; re-raised serially
};

}  // namespace

ResynthResult resynthesize_windows(Netlist& net,
                                   const std::vector<double>& toggles,
                                   const ResynthOptions& opt) {
  ResynthResult res;
  res.gates_before = net.num_gates();
  const int workers = speculate::resolve_workers(opt.workers);
  res.workers_used = workers;

  // The cost oracle.  With rescore_activities the pass owns a cone-scoped
  // incremental analyzer and refreshes it after every kept rewrite, so each
  // window is weighted by the switching of the circuit as it *currently*
  // stands.  The caller's activity vector remains the fallback (and the
  // legacy behavior when re-scoring is off): it describes the pre-pass
  // circuit only, and scores nodes created by earlier kept rewrites as
  // toggle-free — the stale-cost-oracle bug this option fixes.
  std::optional<power::IncrementalAnalyzer> inc;
  if (opt.power_aware && opt.rescore_activities) {
    try {
      power::AnalysisOptions ao;
      ao.mode = power::ActivityMode::ZeroDelay;
      ao.n_vectors = opt.rescore_vectors;
      ao.seed = opt.rescore_seed;
      inc.emplace(net, ao);
    } catch (const std::exception&) {
      core::metrics::count("logicopt.resynth.rescore_dropped");
    }
  }
  auto tog = [&](NodeId id) -> double {
    const std::vector<double>& t =
        inc ? inc->analysis().toggles_per_cycle : toggles;
    return id < t.size() ? t[id] : 0.0;
  };

  // Cap reporting shared by every exit path (satellite of the silent-cap
  // fix: truncation always leaves a result field, a metric and a note).
  auto finalize = [&res, &opt](std::size_t gates_after) -> ResynthResult& {
    if (res.rewrites_capped)
      core::metrics::count("logicopt.resynth.rewrites_capped");
    res.gates_after = gates_after;
    if (res.windows_capped > 0 || res.rewrites_capped) {
      res.note = "resynth caps hit:";
      if (res.windows_capped > 0)
        res.note += " " + std::to_string(res.windows_capped) +
                    " window(s) over max_window_inputs=" +
                    std::to_string(opt.max_window_inputs);
      if (res.rewrites_capped)
        res.note += std::string(res.windows_capped > 0 ? ";" : "") +
                    " max_rewrites=" + std::to_string(opt.max_rewrites) +
                    " budget exhausted";
    }
    return res;
  };

  // Pure examination of one candidate: window extraction, local-function
  // tabulation against `bdds`' reachability don't-cares, minimization and
  // factoring.  Reads the netlist and the activity oracle, mutates only the
  // given BDD manager (canonical results — manager state never affects the
  // functions it returns, so per-worker managers built from the same round
  // snapshot agree with the main one).
  auto examine = [&](NodeId n, bdd::NetlistBdds& bdds) -> WindowPlan {
    WindowPlan plan;
    const NodeId seeds[1] = {n};
    plan.reads = speculate::read_closure(net, seeds, 2);
    if (net.is_dead(n)) return plan;  // consumed by an earlier rewrite
    std::vector<NodeId> interior;
    bool win_capped = false;
    if (!build_window(net, n, opt.max_window_inputs, interior, plan.boundary,
                      &win_capped)) {
      plan.status =
          win_capped ? WindowPlan::Status::Capped : WindowPlan::Status::NoBdds;
      return plan;
    }
    // Rewrites may have created nodes without BDDs; skip such windows.
    for (NodeId b : plan.boundary)
      if (b >= bdds.node_fn.size()) {
        plan.status = WindowPlan::Status::NoBdds;
        return plan;
      }
    plan.status = WindowPlan::Status::Examined;

    auto& m = bdds.mgr;
    // Safe point: between windows only the rooted global functions are
    // live; shed accumulated reachability scaffolding before it can hit
    // the budget.
    if (m.live_nodes() >= opt.bdd_limit / 2) m.gc();
    unsigned k = static_cast<unsigned>(plan.boundary.size());
    sop::Sop onset(k), dcset(k);
    // Replacement-cost baseline: the node's own literals plus those of
    // interior helpers that exist only for this node (single fanout).
    int window_lits = static_cast<int>(net.node(n).fanins.size());
    for (NodeId w : interior) {
      if (w == n) continue;
      if (net.node(w).fanouts.size() == 1)
        window_lits += static_cast<int>(net.node(w).fanins.size());
    }
    // Interior nodes in dependency order for the window simulator.
    std::vector<NodeId> window_order;
    {
      std::set<NodeId> in_set(interior.begin(), interior.end());
      for (NodeId id : net.topo_order())
        if (in_set.count(id)) window_order.push_back(id);
    }

    for (unsigned minterm = 0; minterm < (1u << k); ++minterm) {
      sop::Cube c(k);
      for (unsigned i = 0; i < k; ++i) {
        if (minterm >> i & 1)
          c.set_pos(i);
        else
          c.set_neg(i);
      }
      // Controllability DC: can any PI assignment realize this boundary
      // pattern?  Conjunction of (boundary fn XNOR bit).
      bdd::Ref reach = bdd::kTrue;
      for (unsigned i = 0; i < k && reach != bdd::kFalse; ++i) {
        bdd::Ref f = bdds.node_fn[plan.boundary[i]];
        reach = m.land(reach, (minterm >> i & 1) ? f : m.lnot(f));
      }
      if (reach == bdd::kFalse) {
        dcset.add_cube(c);
        continue;
      }
      if (eval_window(net, n, window_order, plan.boundary, minterm))
        onset.add_cube(c);
    }

    auto cover = sop::minimize(onset, dcset);
    if (opt.power_aware) {
      std::vector<double> w(k);
      for (unsigned i = 0; i < k; ++i) w[i] = 0.05 + tog(plan.boundary[i]);
      plan.expr = sop::factor_weighted(cover, w);
    } else {
      plan.expr = sop::factor(cover);
    }
    // Keep only if strictly cheaper than the window it replaces (negated
    // literals cost an inverter each, so count them).
    plan.rewrite = expr_cost(plan.expr) < window_lits;
    return plan;
  };

  // Rewrites create nodes the current BDDs don't cover, so run rounds to a
  // fixpoint, rebuilding the symbolic view between rounds.
  bool round_changed = true;
  int rounds = 0;
  while (round_changed && rounds++ < 4 &&
         res.nodes_rewritten < opt.max_rewrites) {
    round_changed = false;
    bdd::NetlistBdds bdds;
    try {
      bdds = bdd::build_bdds(net, opt.bdd_limit);
    } catch (const bdd::NodeLimitExceeded&) {
      return finalize(net.num_gates());  // circuit too wide for exact DCs
    }

    // Candidate list fixed per round; rewrites only add nodes.
    std::vector<NodeId> candidates;
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_dead(n)) continue;
      const Node& nd = net.node(n);
      if (is_source(nd.type) || nd.type == GateType::Dff) continue;
      candidates.push_back(n);
    }

    // Account for one examined plan and apply it when it rewrites — the
    // tail of the sequential per-candidate body, shared verbatim between
    // the sequential loop and the speculative commit loop.  `dirty`
    // receives the keep's touched ids ∪ activity footprint (for the
    // conflict set) when journaling is on.
    auto commit_plan = [&](NodeId n, const WindowPlan& plan,
                           std::vector<NodeId>* dirty) -> void {
      switch (plan.status) {
        case WindowPlan::Status::Dead:
          return;
        case WindowPlan::Status::Capped:
          ++res.windows_capped;
          core::metrics::count("logicopt.resynth.capped");
          return;
        case WindowPlan::Status::NoBdds:
          return;
        case WindowPlan::Status::Examined:
          break;
      }
      ++res.windows_examined;
      if (!plan.rewrite) return;

      // Journal the mutation when re-scoring or speculating: the touched
      // set scopes the activity refresh and the conflict footprint (nests
      // correctly inside a flow stage's epoch).
      bool journal = inc.has_value() || workers > 1;
      if (journal) net.begin_undo();
      NodeId rebuilt = sop::build_expr(net, plan.expr, plan.boundary);
      if (rebuilt == n) {
        if (journal) net.rollback_undo();  // discard half-built helpers
        return;
      }
      // build_expr may return a boundary node itself (constant/wire case);
      // otherwise it is freshly constructed logic.
      net.substitute(n, rebuilt);
      net.sweep();
      if (journal) {
        auto touched = net.touched_nodes();
        if (dirty) {
          *dirty = speculate::dirty_footprint(net, touched);
          dirty->insert(dirty->end(), touched.ids.begin(), touched.ids.end());
        }
        if (inc) {
          try {
            inc->reanalyze(touched);
            ++res.rescored;
          } catch (const std::exception&) {
            // Estimator defect: the rewrite itself is already legal and
            // kept; later windows fall back to the (stale) caller vector.
            inc.reset();
            core::metrics::count("logicopt.resynth.rescore_dropped");
          }
        }
        net.commit_undo();
      }
      ++res.nodes_rewritten;
      round_changed = true;
    };

    if (workers <= 1) {
      for (NodeId n : candidates) {
        if (res.nodes_rewritten >= opt.max_rewrites) {
          // Budget exhausted with windows still unexamined — never silent.
          res.rewrites_capped = true;
          break;
        }
        commit_plan(n, examine(n, bdds), nullptr);
      }
      continue;
    }

    // Speculative rounds: per-worker BDD views built once from the
    // round-start netlist (kept rewrites preserve every node's global
    // function — they only use boundary patterns no PI assignment reaches —
    // so the views stay valid across the whole round).
    int team = std::min<int>(workers, static_cast<int>(candidates.size()));
    std::vector<std::optional<bdd::NetlistBdds>> wbdds(
        static_cast<std::size_t>(std::max(team, 1)));
    bool spec_ok = team > 1;
    if (spec_ok) {
      std::atomic<bool> build_failed{false};
      speculate::run_workers(team, [&](int w) {
        try {
          wbdds[static_cast<std::size_t>(w)].emplace(
              bdd::build_bdds(net, opt.bdd_limit));
        } catch (...) {
          build_failed.store(true, std::memory_order_relaxed);
        }
      });
      spec_ok = !build_failed.load(std::memory_order_relaxed);
    }
    if (!spec_ok) {
      // Degrade to the sequential loop for this round — identical results,
      // just no overlap.
      for (NodeId n : candidates) {
        if (res.nodes_rewritten >= opt.max_rewrites) {
          res.rewrites_capped = true;
          break;
        }
        commit_plan(n, examine(n, bdds), nullptr);
      }
      continue;
    }

    const std::size_t batch_size =
        opt.spec_batch ? opt.spec_batch
                       : static_cast<std::size_t>(8) *
                             static_cast<std::size_t>(team);
    bool budget_stop = false;
    // Plans go stale once the activity oracle dies mid-batch (later plans
    // were weighted through it): force the batch remainder serial.
    for (std::size_t start = 0; start < candidates.size() && !budget_stop;
         start += batch_size) {
      std::size_t nb = std::min(batch_size, candidates.size() - start);
      std::vector<WindowPlan> plans(nb);
      std::atomic<std::size_t> next{0};
      speculate::run_workers(team, [&](int w) {
        bdd::NetlistBdds& view = *wbdds[static_cast<std::size_t>(w)];
        for (;;) {
          std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= nb) break;
          try {
            plans[i] = examine(candidates[start + i], view);
          } catch (...) {
            plans[i].error = std::current_exception();
          }
        }
      });
      ++res.spec_batches;
      core::metrics::count("logicopt.spec.batches");
      core::metrics::count("logicopt.spec.speculated",
                           static_cast<double>(nb));

      speculate::ConflictSet committed(net.size());
      bool inc_alive_at_batch = inc.has_value();
      for (std::size_t i = 0; i < nb; ++i) {
        if (res.nodes_rewritten >= opt.max_rewrites) {
          res.rewrites_capped = true;
          budget_stop = true;
          break;
        }
        NodeId n = candidates[start + i];
        WindowPlan& plan = plans[i];
        // A cancellation raised on a worker must abort the run (at this
        // window's sequential position), not be re-examined serially.
        speculate::rethrow_if_cancelled(plan.error);
        bool conflict = plan.error != nullptr ||
                        (inc_alive_at_batch && !inc.has_value()) ||
                        committed.hits(plan.reads);
        if (conflict) {
          ++res.spec_conflicts;
          core::metrics::count("logicopt.spec.conflicts");
          ++res.spec_rescored;
          core::metrics::count("logicopt.spec.rescored");
          std::vector<NodeId> dirty;
          commit_plan(n, examine(n, bdds), &dirty);
          committed.add(dirty);
          continue;
        }
        std::vector<NodeId> dirty;
        commit_plan(n, plan, &dirty);
        committed.add(dirty);
      }
    }
  }  // rounds
  if (res.nodes_rewritten >= opt.max_rewrites && round_changed)
    res.rewrites_capped = true;
  return finalize(net.num_gates());
}

}  // namespace lps::logicopt
