#include "logicopt/resynth.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "bdd/bdd_netlist.hpp"
#include "core/metrics.hpp"
#include "power/incremental.hpp"
#include "sop/factoring.hpp"
#include "sop/minimize.hpp"

namespace lps::logicopt {

namespace {

// Two-level fanin window around `n`: interior = {n} ∪ gate fanins that are
// themselves logic gates; boundary = everything feeding the interior from
// outside.  Returns false if the boundary exceeds the budget even after
// retrying with the one-level window; `capped` is set in that case so the
// caller can surface the truncation (it is a tuning signal, not a defect).
bool build_window(const Netlist& net, NodeId n, int max_inputs,
                  std::vector<NodeId>& interior,
                  std::vector<NodeId>& boundary, bool* capped = nullptr) {
  interior.clear();
  boundary.clear();
  std::set<NodeId> in_set{n};
  for (NodeId f : net.node(n).fanins) {
    const Node& fd = net.node(f);
    if (!is_source(fd.type) && fd.type != GateType::Dff &&
        fd.fanins.size() <= 4)
      in_set.insert(f);
  }
  std::set<NodeId> bset;
  for (NodeId m : in_set)
    for (NodeId f : net.node(m).fanins)
      if (!in_set.count(f)) bset.insert(f);
  if (static_cast<int>(bset.size()) > max_inputs) {
    // Retry with the one-level window (just the node itself).
    in_set = {n};
    bset.clear();
    for (NodeId f : net.node(n).fanins) bset.insert(f);
    if (static_cast<int>(bset.size()) > max_inputs) {
      if (capped) *capped = true;
      return false;
    }
  }
  interior.assign(in_set.begin(), in_set.end());
  boundary.assign(bset.begin(), bset.end());
  return true;
}

// Evaluate node `n` for one boundary assignment (scalar window simulation
// over `window_order`, the interior nodes in topological order).
bool eval_window(const Netlist& net, NodeId n,
                 const std::vector<NodeId>& window_order,
                 const std::vector<NodeId>& boundary, unsigned minterm) {
  std::vector<std::uint64_t> value(net.size(), 0);
  for (std::size_t i = 0; i < boundary.size(); ++i)
    value[boundary[i]] = (minterm >> i & 1) ? ~0ULL : 0ULL;
  for (NodeId id : window_order) {
    const Node& nd = net.node(id);
    std::vector<std::uint64_t> w;
    for (NodeId f : nd.fanins) w.push_back(value[f]);
    value[id] = eval_gate(nd.type, w);
  }
  return (value[n] & 1ULL) != 0;
}

}  // namespace

namespace {

// Gate cost of realizing a factored expression: one literal per AND/OR
// input plus one single-input gate per negated literal.
int expr_cost(const sop::Expr& e) {
  switch (e.kind) {
    case sop::Expr::Kind::Const0:
    case sop::Expr::Kind::Const1:
      return 0;
    case sop::Expr::Kind::Lit:
      return e.negated ? 2 : 1;
    default: {
      int c = 0;
      for (const auto& k : e.kids) c += expr_cost(k);
      return c;
    }
  }
}

}  // namespace

ResynthResult resynthesize_windows(Netlist& net,
                                   const std::vector<double>& toggles,
                                   const ResynthOptions& opt) {
  ResynthResult res;
  res.gates_before = net.num_gates();

  // The cost oracle.  With rescore_activities the pass owns a cone-scoped
  // incremental analyzer and refreshes it after every kept rewrite, so each
  // window is weighted by the switching of the circuit as it *currently*
  // stands.  The caller's activity vector remains the fallback (and the
  // legacy behavior when re-scoring is off): it describes the pre-pass
  // circuit only, and scores nodes created by earlier kept rewrites as
  // toggle-free — the stale-cost-oracle bug this option fixes.
  std::optional<power::IncrementalAnalyzer> inc;
  if (opt.power_aware && opt.rescore_activities) {
    try {
      power::AnalysisOptions ao;
      ao.mode = power::ActivityMode::ZeroDelay;
      ao.n_vectors = opt.rescore_vectors;
      ao.seed = opt.rescore_seed;
      inc.emplace(net, ao);
    } catch (const std::exception&) {
      core::metrics::count("logicopt.resynth.rescore_dropped");
    }
  }
  auto tog = [&](NodeId id) -> double {
    const std::vector<double>& t =
        inc ? inc->analysis().toggles_per_cycle : toggles;
    return id < t.size() ? t[id] : 0.0;
  };

  // Cap reporting shared by every exit path (satellite of the silent-cap
  // fix: truncation always leaves a result field, a metric and a note).
  auto finalize = [&res, &opt](std::size_t gates_after) -> ResynthResult& {
    if (res.rewrites_capped)
      core::metrics::count("logicopt.resynth.rewrites_capped");
    res.gates_after = gates_after;
    if (res.windows_capped > 0 || res.rewrites_capped) {
      res.note = "resynth caps hit:";
      if (res.windows_capped > 0)
        res.note += " " + std::to_string(res.windows_capped) +
                    " window(s) over max_window_inputs=" +
                    std::to_string(opt.max_window_inputs);
      if (res.rewrites_capped)
        res.note += std::string(res.windows_capped > 0 ? ";" : "") +
                    " max_rewrites=" + std::to_string(opt.max_rewrites) +
                    " budget exhausted";
    }
    return res;
  };

  // Rewrites create nodes the current BDDs don't cover, so run rounds to a
  // fixpoint, rebuilding the symbolic view between rounds.
  bool round_changed = true;
  int rounds = 0;
  while (round_changed && rounds++ < 4 &&
         res.nodes_rewritten < opt.max_rewrites) {
  round_changed = false;
  bdd::NetlistBdds bdds;
  try {
    bdds = bdd::build_bdds(net, opt.bdd_limit);
  } catch (const bdd::NodeLimitExceeded&) {
    return finalize(net.num_gates());  // circuit too wide for exact local DCs
  }
  auto& m = bdds.mgr;

  // Candidate list fixed per round; rewrites only add nodes.
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < net.size(); ++n) {
    if (net.is_dead(n)) continue;
    const Node& nd = net.node(n);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    candidates.push_back(n);
  }

  for (NodeId n : candidates) {
    if (res.nodes_rewritten >= opt.max_rewrites) {
      // Budget exhausted with windows still unexamined — never silent.
      res.rewrites_capped = true;
      break;
    }
    if (net.is_dead(n)) continue;  // consumed by an earlier rewrite
    std::vector<NodeId> interior, boundary;
    bool win_capped = false;
    if (!build_window(net, n, opt.max_window_inputs, interior, boundary,
                      &win_capped)) {
      if (win_capped) {
        ++res.windows_capped;
        core::metrics::count("logicopt.resynth.capped");
      }
      continue;
    }
    // Rewrites may have created nodes without BDDs; skip such windows.
    bool have_bdds = true;
    for (NodeId b : boundary)
      if (b >= bdds.node_fn.size()) have_bdds = false;
    if (!have_bdds) continue;
    ++res.windows_examined;

    unsigned k = static_cast<unsigned>(boundary.size());
    sop::Sop onset(k), dcset(k);
    // Replacement-cost baseline: the node's own literals plus those of
    // interior helpers that exist only for this node (single fanout).
    int window_lits = static_cast<int>(net.node(n).fanins.size());
    for (NodeId w : interior) {
      if (w == n) continue;
      if (net.node(w).fanouts.size() == 1)
        window_lits += static_cast<int>(net.node(w).fanins.size());
    }
    // Interior nodes in dependency order for the window simulator.
    std::vector<NodeId> window_order;
    {
      std::set<NodeId> in_set(interior.begin(), interior.end());
      for (NodeId id : net.topo_order())
        if (in_set.count(id)) window_order.push_back(id);
    }

    for (unsigned minterm = 0; minterm < (1u << k); ++minterm) {
      sop::Cube c(k);
      for (unsigned i = 0; i < k; ++i) {
        if (minterm >> i & 1)
          c.set_pos(i);
        else
          c.set_neg(i);
      }
      // Controllability DC: can any PI assignment realize this boundary
      // pattern?  Conjunction of (boundary fn XNOR bit).
      bdd::Ref reach = bdd::kTrue;
      for (unsigned i = 0; i < k && reach != bdd::kFalse; ++i) {
        bdd::Ref f = bdds.node_fn[boundary[i]];
        reach = m.land(reach, (minterm >> i & 1) ? f : m.lnot(f));
      }
      if (reach == bdd::kFalse) {
        dcset.add_cube(c);
        continue;
      }
      if (eval_window(net, n, window_order, boundary, minterm))
        onset.add_cube(c);
    }

    auto cover = sop::minimize(onset, dcset);
    sop::Expr expr;
    if (opt.power_aware) {
      std::vector<double> w(k);
      for (unsigned i = 0; i < k; ++i) w[i] = 0.05 + tog(boundary[i]);
      expr = sop::factor_weighted(cover, w);
    } else {
      expr = sop::factor(cover);
    }
    // Keep only if strictly cheaper than the window it replaces (negated
    // literals cost an inverter each, so count them).
    if (expr_cost(expr) >= window_lits) continue;

    // Journal the mutation when re-scoring: the touched set scopes the
    // activity refresh to the rewrite's fanout cone (nests correctly
    // inside a flow stage's epoch).
    if (inc) net.begin_undo();
    NodeId rebuilt = sop::build_expr(net, expr, boundary);
    if (rebuilt == n) {
      if (inc) net.rollback_undo();  // discard any half-built helpers
      continue;
    }
    // build_expr may return a boundary node itself (constant/wire case);
    // otherwise it is freshly constructed logic.
    net.substitute(n, rebuilt);
    net.sweep();
    if (inc) {
      auto touched = net.touched_nodes();
      try {
        inc->reanalyze(touched);
        ++res.rescored;
      } catch (const std::exception&) {
        // Estimator defect: the rewrite itself is already legal and kept;
        // later windows fall back to the (stale) caller-supplied vector.
        inc.reset();
        core::metrics::count("logicopt.resynth.rescore_dropped");
      }
      net.commit_undo();
    }
    ++res.nodes_rewritten;
    round_changed = true;
  }
  }  // rounds
  if (res.nodes_rewritten >= opt.max_rewrites && round_changed)
    res.rewrites_capped = true;
  return finalize(net.num_gates());
}

}  // namespace lps::logicopt
