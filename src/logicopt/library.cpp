#include "logicopt/library.hpp"

#include <stdexcept>

namespace lps::logicopt {

Pattern Pattern::leaf() { return Pattern{}; }

Pattern Pattern::inv(Pattern a) {
  Pattern p;
  p.kind = Kind::Inv;
  p.kids.push_back(std::move(a));
  return p;
}

Pattern Pattern::nand(Pattern a, Pattern b) {
  Pattern p;
  p.kind = Kind::Nand;
  p.kids.push_back(std::move(a));
  p.kids.push_back(std::move(b));
  return p;
}

int Pattern::num_leaves() const {
  if (kind == Kind::Leaf) return 1;
  int n = 0;
  for (const auto& k : kids) n += k.num_leaves();
  return n;
}

Library standard_library() {
  using P = Pattern;
  Library lib;
  auto L = [] { return P::leaf(); };
  auto add = [&](std::string name, Pattern p, double area, double delay,
                 double cin, double cout) {
    lib.gates.push_back(
        {std::move(name), std::move(p), area, delay, cin, cout});
  };

  // Inverters/buffers at three drive strengths: larger drive = faster but
  // more input capacitance (the §II-B tradeoff at cell granularity).
  add("INVx1", P::inv(L()), 1.0, 1.0, 6.0, 4.0);
  add("INVx2", P::inv(L()), 1.5, 0.7, 11.0, 5.0);
  add("INVx4", P::inv(L()), 2.5, 0.5, 20.0, 7.0);

  add("NAND2x1", P::nand(L(), L()), 2.0, 1.2, 8.0, 6.0);
  add("NAND2x2", P::nand(L(), L()), 3.0, 0.9, 14.0, 8.0);
  // NAND3 = NAND2 feeding INV feeding NAND2: pattern
  // nand(inv(nand(a,b)), c).
  add("NAND3x1", P::nand(P::inv(P::nand(L(), L())), L()), 3.0, 1.6, 9.0, 8.0);
  add("NAND4x1",
      P::nand(P::inv(P::nand(L(), L())), P::inv(P::nand(L(), L()))), 4.0, 2.0,
      10.0, 10.0);

  // AND2 = inv(nand2).
  add("AND2x1", P::inv(P::nand(L(), L())), 2.5, 1.5, 8.0, 6.0);

  // NOR2 = nand(inv a, inv b); OR2 = inv(nor2).
  add("NOR2x1", P::nand(P::inv(L()), P::inv(L())), 2.0, 1.4, 8.0, 6.0);
  add("NOR2x2", P::nand(P::inv(L()), P::inv(L())), 3.0, 1.0, 14.0, 8.0);
  add("OR2x1", P::inv(P::nand(P::inv(L()), P::inv(L()))), 2.5, 1.7, 8.0, 6.0);

  // AOI21: !(a*b + c) = nand(nand(a,b), inv(c)).
  add("AOI21x1", P::nand(P::nand(L(), L()), P::inv(L())), 3.0, 1.6, 9.0, 7.0);
  // OAI21: !((a+b)*c) = nand(inv(nand(inv a, inv b)), c)
  add("OAI21x1",
      P::nand(P::inv(P::nand(P::inv(L()), P::inv(L()))), L()), 3.0, 1.7, 9.0,
      7.0);

  // XOR2/XNOR2 on the canonical 4/5-NAND decomposition:
  // xor(a,b) = nand(nand(a, nand(a,b)), nand(b, nand(a,b))) — the DAG form
  // shares the inner NAND, but the *tree* pattern duplicates leaves, which
  // is exactly how DAGON matches it on a tree decomposition.
  {
    auto inner1 = P::nand(L(), L());
    auto x = P::nand(P::nand(L(), P::nand(L(), L())),
                     P::nand(L(), P::nand(L(), L())));
    add("XOR2x1", std::move(x), 4.5, 2.1, 10.0, 9.0);
    (void)inner1;
  }

  return lib;
}

Netlist decompose_nand2(const Netlist& src) {
  Netlist dst(src.name() + "_nand2");
  std::vector<NodeId> map(src.size(), kNoNode);

  auto inv = [&](NodeId a) { return dst.add_not(a); };
  auto nand2 = [&](NodeId a, NodeId b) { return dst.add_nand(a, b); };
  auto and2 = [&](NodeId a, NodeId b) { return inv(nand2(a, b)); };
  auto or2 = [&](NodeId a, NodeId b) { return nand2(inv(a), inv(b)); };
  auto xor2 = [&](NodeId a, NodeId b) {
    NodeId m = nand2(a, b);
    return nand2(nand2(a, m), nand2(b, m));
  };

  auto reduce = [&](const std::vector<NodeId>& xs, auto&& op2) {
    NodeId acc = xs[0];
    for (std::size_t i = 1; i < xs.size(); ++i) acc = op2(acc, xs[i]);
    return acc;
  };

  // Dffs first (placeholder D), patched after logic is built.
  for (NodeId n : src.topo_order()) {
    const Node& nd = src.node(n);
    if (nd.type == GateType::Input)
      map[n] = dst.add_input(nd.name);
    else if (nd.type == GateType::Const0)
      map[n] = dst.add_const(false);
    else if (nd.type == GateType::Const1)
      map[n] = dst.add_const(true);
    else if (nd.type == GateType::Dff) {
      map[n] = dst.add_dff(dst.add_const(false), nd.init_value, nd.name);
      if (nd.fanins.size() == 2)
        dst.set_dff_enable(map[n], dst.add_const(false));
    }
  }
  for (NodeId n : src.topo_order()) {
    const Node& nd = src.node(n);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    std::vector<NodeId> fi;
    for (NodeId f : nd.fanins) fi.push_back(map[f]);
    switch (nd.type) {
      case GateType::Buf:
        map[n] = inv(inv(fi[0]));
        break;
      case GateType::Not:
        map[n] = inv(fi[0]);
        break;
      case GateType::And:
        map[n] = reduce(fi, and2);
        break;
      case GateType::Nand:
        map[n] = fi.size() == 2 ? nand2(fi[0], fi[1])
                                : inv(reduce(fi, and2));
        break;
      case GateType::Or:
        map[n] = reduce(fi, or2);
        break;
      case GateType::Nor:
        map[n] = inv(reduce(fi, or2));
        break;
      case GateType::Xor:
        map[n] = reduce(fi, xor2);
        break;
      case GateType::Xnor:
        map[n] = inv(reduce(fi, xor2));
        break;
      case GateType::Mux: {
        // s ? b : a  =  nand(nand(!s, a), nand(s, b))
        NodeId s = fi[0];
        map[n] = nand2(nand2(inv(s), fi[1]), nand2(s, fi[2]));
        break;
      }
      default:
        throw std::logic_error("decompose_nand2: unexpected gate");
    }
  }
  for (NodeId d : src.dffs())
    for (std::size_t k = 0; k < src.node(d).fanins.size(); ++k)
      dst.replace_fanin(map[d], k, map[src.node(d).fanins[k]]);
  const auto& outs = src.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i)
    dst.add_output(map[outs[i]], src.output_names()[i]);
  dst.sweep();
  return dst;
}

}  // namespace lps::logicopt
