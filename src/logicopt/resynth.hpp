// resynth.hpp — window-based node resynthesis with local don't-cares.
//
// The §III-A.1 papers operate on *local* functions: Savoj/Brayton/Touati
// [37] extract local don't-cares for network optimization, Shen et al. [38]
// and Iman & Pedram [19] re-express nodes inside that freedom to reduce
// switching activity.  This pass implements the window form of the idea:
//
//   1. around each gate, take the two-level fanin window and its boundary
//      cut (<= max_window_inputs signals);
//   2. tabulate the node's local function over boundary minterms;
//   3. compute the local *controllability* don't-cares — boundary patterns
//      no primary-input assignment can produce (exact, via global BDDs);
//   4. minimize the local cover against those don't-cares (sop::minimize),
//      factor it (activity-weighted when power_aware), and rebuild;
//   5. keep the rewrite when it lowers the cost (literals, or
//      activity-weighted literals).
//
// Function preservation is exact: the rewritten node agrees with the old
// one on every *reachable* boundary pattern.

#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::logicopt {

struct ResynthOptions {
  int max_window_inputs = 8;
  int max_rewrites = 200;
  bool power_aware = true;  // weigh literals by boundary-signal activity
  std::size_t bdd_limit = 1u << 22;
};

struct ResynthResult {
  int windows_examined = 0;
  int nodes_rewritten = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
};

/// Rewrite nodes in place.  `toggles_per_cycle` supplies activities (e.g.
/// from sim::measure_activity) for the power-aware cost; may be shorter
/// than net.size() (new nodes default to inactive).
ResynthResult resynthesize_windows(Netlist& net,
                                   const std::vector<double>& toggles_per_cycle,
                                   const ResynthOptions& opt = {});

}  // namespace lps::logicopt
