// resynth.hpp — window-based node resynthesis with local don't-cares.
//
// The §III-A.1 papers operate on *local* functions: Savoj/Brayton/Touati
// [37] extract local don't-cares for network optimization, Shen et al. [38]
// and Iman & Pedram [19] re-express nodes inside that freedom to reduce
// switching activity.  This pass implements the window form of the idea:
//
//   1. around each gate, take the two-level fanin window and its boundary
//      cut (<= max_window_inputs signals);
//   2. tabulate the node's local function over boundary minterms;
//   3. compute the local *controllability* don't-cares — boundary patterns
//      no primary-input assignment can produce (exact, via global BDDs);
//   4. minimize the local cover against those don't-cares (sop::minimize),
//      factor it (activity-weighted when power_aware), and rebuild;
//   5. keep the rewrite when it lowers the cost (literals, or
//      activity-weighted literals).
//
// Function preservation is exact: the rewritten node agrees with the old
// one on every *reachable* boundary pattern.

#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::logicopt {

struct ResynthOptions {
  int max_window_inputs = 8;
  int max_rewrites = 200;
  bool power_aware = true;  // weigh literals by boundary-signal activity
  std::size_t bdd_limit = 1u << 22;
  /// Re-score activities through a cone-scoped incremental re-estimate
  /// (power/incremental.hpp) after every kept rewrite, so later windows are
  /// costed against the *current* circuit's switching instead of the
  /// activity vector captured before the pass started (the stale-cost-
  /// oracle bug: a kept rewrite both shifts activity downstream and creates
  /// nodes the stale vector scores as toggle-free).  power_aware only.
  bool rescore_activities = true;
  /// Stimulus for the internal re-scoring analyzer (ZeroDelay).  The
  /// defaults reproduce the flow's measure_activity(net, 64, seed) frames:
  /// 4096 vectors = 64 words of 64 patterns.
  std::size_t rescore_vectors = 4096;
  std::uint64_t rescore_seed = 5;
  /// Window-examination worker threads (logicopt/speculate.hpp): workers
  /// evaluate window plans read-only against the live netlist using private
  /// per-round BDD views; plans commit in candidate order and anything an
  /// earlier keep touched (structurally or through its activity cone) is
  /// re-examined serially.  Results are bit-identical at any value.
  /// 0 = the LPS_OPT_WORKERS environment default; 1 = sequential.
  int workers = 0;
  /// Candidates per speculation batch (0 = 8 per worker).
  std::size_t spec_batch = 0;
};

struct ResynthResult {
  int windows_examined = 0;
  int nodes_rewritten = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  /// Kept rewrites whose activities were refreshed through the incremental
  /// analyzer (== nodes_rewritten when re-scoring is on and healthy).
  int rescored = 0;
  /// Windows skipped because their boundary exceeded max_window_inputs even
  /// after the one-level retry.  Never silent: also counted as the
  /// logicopt.resynth.capped metric and described in `note`.
  int windows_capped = 0;
  /// True when the max_rewrites budget stopped the pass with candidate
  /// windows still unexamined (logicopt.resynth.rewrites_capped metric).
  bool rewrites_capped = false;
  /// Speculation accounting (workers > 1; zero in sequential runs, mirrored
  /// in logicopt.spec.* metrics — conflicts are never silent).
  std::size_t spec_batches = 0;    // plan batches examined by workers
  std::size_t spec_conflicts = 0;  // plans invalidated by an earlier keep
  std::size_t spec_rescored = 0;   // conflicted plans re-examined serially
  int workers_used = 1;            // resolved worker count for this run
  /// One-line diagnostic describing any cap that was hit; empty otherwise.
  std::string note;
};

/// Rewrite nodes in place.  `toggles_per_cycle` supplies activities (e.g.
/// from sim::measure_activity) for the power-aware cost; may be shorter
/// than net.size() (new nodes default to inactive).
ResynthResult resynthesize_windows(Netlist& net,
                                   const std::vector<double>& toggles_per_cycle,
                                   const ResynthOptions& opt = {});

}  // namespace lps::logicopt
