// engine.hpp — switching-power-driven datapath rewrite engine.
//
// Couples the exact rewrite rules of rules.hpp to the cone-scoped
// incremental power oracle (power/incremental.hpp): every candidate is
// applied inside its own (nested) undo epoch, re-estimated over just its
// dirty fanout cone, and kept only when total switching power strictly
// drops — losers are rolled back through the journal and the estimator's
// snapshot in O(edit), never O(circuit).  This is the survey's
// "power-driven logic restructuring" loop made concrete: the cost oracle
// is always the power of the *current* circuit, re-scored after every kept
// mutation, so rewrite A flipping the profitability of rewrite B is
// handled by construction (no stale-activity scoring).
//
// Soundness: the rules are exact identities, and the engine additionally
// proves every kept instance against the oracle's cached stimulus — the
// primary-output stream digest (IncrementalAnalyzer::outputs_digest) must
// be unchanged after the candidate's cone re-simulation, which is the
// full-circuit differential check restricted to where a mismatch can show.
// RewriteOptions::verify_full layers the original whole-netlist
// interpreter trace on top (the rule-soundness fuzzer runs that mode).  A
// proof failure rolls the candidate back and counts
// RewriteResult::unsound, so a rule bug can cost an optimization but never
// correctness.
//
// Determinism: the engine owns a private ZeroDelay analyzer (seeded from
// RewriteOptions, independent of the caller's estimate mode, sim engine,
// lane width or thread count — ZeroDelay statistics are bit-identical
// across all of those), so the kept-rewrite sequence is a pure function of
// the input netlist and options.  Candidates are judged by footprint-local
// power *deltas* (logicopt/speculate.hpp), which transplant bit-for-bit
// between a batch snapshot and the live netlist — that is what lets
// RewriteOptions::workers > 1 score candidates speculatively on worker
// threads while keeping the kept sequence and the final netlist
// bit-identical to workers == 1.

#pragma once

#include <cstddef>

#include "logicopt/rewrite/rules.hpp"

namespace lps::logicopt::rewrite {

namespace detail {
/// Chaos hooks (tests only; 0 disables, counts are consumed):
/// pretend the next `n` differential checks fail, exercising the unsound
/// rollback path without planting a genuinely broken rule;
void force_unsound_rewrites(int n);
/// throw std::runtime_error out of the engine after the next `n`-th
/// candidate epoch opens — deliberately *without* unwinding the engine's
/// own journal epochs, reproducing the "transform dies with an inner epoch
/// open" failure mode that flow-stage rollback accounting must survive.
void force_throw_on_candidate(int n);
}  // namespace detail

struct RewriteOptions {
  MatchOptions rules;        // which rule families to enumerate
  /// Full-rule match/apply sweeps until a fixpoint.  Constant folding runs
  /// first as its own fixpoint prephase (fold-only queues, same scoring
  /// and proof per candidate) so const propagation doesn't consume these.
  int max_rounds = 4;
  std::size_t max_candidates = 4096;  // per-round queue bound (see `capped`)
  /// Scoring stimulus for the private ZeroDelay oracle.
  std::size_t sim_vectors = 4096;
  std::uint64_t seed = 7;
  /// Differential-proof stimulus (interpreter engine) per kept candidate —
  /// only simulated when verify_full is set; the default proof is the
  /// cone-scoped PO-stream digest over the oracle's own stimulus.
  std::size_t verify_frames = 256;
  std::uint64_t verify_seed = 17;
  /// Keep a candidate only when it saves strictly more than this (watts).
  double min_gain_w = 0.0;
  /// Re-prove every kept candidate with the whole-netlist interpreter
  /// trace in addition to the PO-stream digest (belt-and-braces mode; the
  /// rule-soundness fuzzer runs with this on).
  bool verify_full = false;
  /// Candidate-scoring worker threads (logicopt/speculate.hpp).  Workers
  /// score batches against a snapshot on private netlist+oracle clones;
  /// disjoint winners commit without re-scoring, overlapping candidates
  /// are re-scored serially.  Kept sequence and final netlist are
  /// bit-identical at any value.  0 = the LPS_OPT_WORKERS environment
  /// default; 1 = the plain sequential loop.
  int workers = 0;
  /// Candidates per speculation batch (0 = 32 per worker).
  std::size_t spec_batch = 0;
};

struct RewriteResult {
  std::size_t candidates_seen = 0;    // matches enumerated over all rounds
  std::size_t candidates_scored = 0;  // probes through the power oracle
  std::size_t kept = 0;               // applied and committed
  std::size_t reverted = 0;           // rolled back (loser or unsound)
  std::size_t stale = 0;              // invalidated by earlier keeps (no-op)
  std::size_t unsound = 0;            // differential-proof failures (rolled
                                      // back; also logicopt.rewrite.unsound)
  /// True when a round's candidate queue was truncated at max_candidates —
  /// surfaced (never silent): also counted as logicopt.rewrite.capped.
  bool capped = false;
  /// Speculation accounting (workers > 1; all zero in sequential runs,
  /// mirrored in logicopt.spec.* metrics — conflicts are never silent).
  std::size_t spec_batches = 0;    // snapshot batches scored by workers
  std::size_t spec_conflicts = 0;  // candidates overlapping an earlier keep
  std::size_t spec_rescored = 0;   // conflicted candidates re-scored serially
  int workers_used = 1;            // resolved worker count for this run
  double power_before_w = 0.0;  // oracle estimate at entry
  double power_after_w = 0.0;   // oracle estimate at exit
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
};

/// Run the rewrite loop in place.  Mutations nest correctly inside a
/// caller's active undo epoch (each candidate runs in an inner epoch).
RewriteResult rewrite_datapath(Netlist& net, const RewriteOptions& opt = {});

}  // namespace lps::logicopt::rewrite
