// engine.hpp — switching-power-driven datapath rewrite engine.
//
// Couples the exact rewrite rules of rules.hpp to the cone-scoped
// incremental power oracle (power/incremental.hpp): every candidate is
// applied inside its own (nested) undo epoch, re-estimated over just its
// dirty fanout cone, and kept only when total switching power strictly
// drops — losers are rolled back through the journal and the estimator's
// snapshot in O(edit), never O(circuit).  This is the survey's
// "power-driven logic restructuring" loop made concrete: the cost oracle
// is always the power of the *current* circuit, re-scored after every kept
// mutation, so rewrite A flipping the profitability of rewrite B is
// handled by construction (no stale-activity scoring).
//
// Soundness: the rules are exact identities, and the engine additionally
// proves every kept instance by differential simulation against the
// interpreter (ScopedSimOptions{use_compiled = false}) — a digest mismatch
// rolls the candidate back and counts RewriteResult::unsound, so a rule
// bug can cost an optimization but never correctness.
//
// Determinism: the engine owns a private ZeroDelay analyzer (seeded from
// RewriteOptions, independent of the caller's estimate mode, sim engine,
// lane width or thread count — ZeroDelay statistics are bit-identical
// across all of those), so the kept-rewrite sequence is a pure function of
// the input netlist and options.

#pragma once

#include <cstddef>

#include "logicopt/rewrite/rules.hpp"

namespace lps::logicopt::rewrite {

namespace detail {
/// Chaos hooks (tests only; 0 disables, counts are consumed):
/// pretend the next `n` differential checks fail, exercising the unsound
/// rollback path without planting a genuinely broken rule;
void force_unsound_rewrites(int n);
/// throw std::runtime_error out of the engine after the next `n`-th
/// candidate epoch opens — deliberately *without* unwinding the engine's
/// own journal epochs, reproducing the "transform dies with an inner epoch
/// open" failure mode that flow-stage rollback accounting must survive.
void force_throw_on_candidate(int n);
}  // namespace detail

struct RewriteOptions {
  MatchOptions rules;        // which rule families to enumerate
  /// Full-rule match/apply sweeps until a fixpoint.  Constant folding runs
  /// first as its own fixpoint prephase (fold-only queues, same scoring
  /// and proof per candidate) so const propagation doesn't consume these.
  int max_rounds = 4;
  std::size_t max_candidates = 4096;  // per-round queue bound (see `capped`)
  /// Scoring stimulus for the private ZeroDelay oracle.
  std::size_t sim_vectors = 4096;
  std::uint64_t seed = 7;
  /// Differential-proof stimulus (interpreter engine) per kept candidate.
  std::size_t verify_frames = 256;
  std::uint64_t verify_seed = 17;
  /// Keep a candidate only when it saves strictly more than this (watts).
  double min_gain_w = 0.0;
};

struct RewriteResult {
  std::size_t candidates_seen = 0;    // matches enumerated over all rounds
  std::size_t candidates_scored = 0;  // probes through the power oracle
  std::size_t kept = 0;               // applied and committed
  std::size_t reverted = 0;           // rolled back (loser or unsound)
  std::size_t stale = 0;              // invalidated by earlier keeps (no-op)
  std::size_t unsound = 0;            // differential-proof failures (rolled
                                      // back; also logicopt.rewrite.unsound)
  /// True when a round's candidate queue was truncated at max_candidates —
  /// surfaced (never silent): also counted as logicopt.rewrite.capped.
  bool capped = false;
  double power_before_w = 0.0;  // oracle estimate at entry
  double power_after_w = 0.0;   // oracle estimate at exit
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
};

/// Run the rewrite loop in place.  Mutations nest correctly inside a
/// caller's active undo epoch (each candidate runs in an inner epoch).
RewriteResult rewrite_datapath(Netlist& net, const RewriteOptions& opt = {});

}  // namespace lps::logicopt::rewrite
