#include "logicopt/rewrite/engine.hpp"

#include <atomic>
#include <stdexcept>

#include "core/metrics.hpp"
#include "power/incremental.hpp"
#include "sim/compiled.hpp"
#include "sim/logicsim.hpp"

namespace lps::logicopt::rewrite {

namespace detail {
namespace {
std::atomic<int> g_force_unsound{0};
std::atomic<int> g_force_throw{0};

bool consume(std::atomic<int>& counter) {
  int v = counter.load(std::memory_order_relaxed);
  while (v > 0) {
    if (counter.compare_exchange_weak(v, v - 1, std::memory_order_relaxed))
      return v == 1;  // fires when the countdown hits zero
  }
  return false;
}
}  // namespace

void force_unsound_rewrites(int n) {
  g_force_unsound.store(n, std::memory_order_relaxed);
}
void force_throw_on_candidate(int n) {
  g_force_throw.store(n, std::memory_order_relaxed);
}
}  // namespace detail

RewriteResult rewrite_datapath(Netlist& net, const RewriteOptions& opt) {
  core::metrics::ScopedTimer timer("logicopt.rewrite", /*trace=*/true);
  RewriteResult res;
  res.gates_before = net.num_gates();

  // Private deterministic oracle: ZeroDelay statistics are bit-identical
  // across sim engines/widths/threads, so the kept-rewrite sequence never
  // depends on the caller's estimation configuration.
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = opt.sim_vectors;
  ao.seed = opt.seed;
  power::IncrementalAnalyzer oracle(net, ao);
  double power = oracle.analysis().report.breakdown.total_w();
  res.power_before_w = power;

  // The differential-proof reference digest (interpreter engine).  Kept
  // candidates are exact, so one reference serves the whole run.
  sim::SimTrace ref;
  {
    sim::ScopedSimOptions interp({.use_compiled = false});
    ref = sim::functional_trace(net, opt.verify_frames, opt.verify_seed);
  }

  auto run_queue = [&](std::vector<Candidate> queue) -> std::size_t {
    res.candidates_seen += queue.size();
    if (queue.size() > opt.max_candidates) {
      // Never truncate silently: the result flags it, metrics count it, and
      // the diagnostic names the bound that did it.
      if (!res.capped)
        core::metrics::count("logicopt.rewrite.capped_runs");
      core::metrics::count("logicopt.rewrite.capped",
                           static_cast<double>(queue.size() -
                                               opt.max_candidates));
      res.capped = true;
      queue.resize(opt.max_candidates);
    }
    std::size_t kept_this_round = 0;
    for (const Candidate& cand : queue) {
      net.begin_undo();
      if (detail::consume(detail::g_force_throw))
        throw std::runtime_error("rewrite: injected mid-candidate failure");
      bool applied = false;
      try {
        applied = apply_rule(net, cand);
      } catch (...) {
        net.rollback_undo();
        throw;
      }
      if (!applied) {
        ++res.stale;  // epoch recorded nothing; commit is free
        net.commit_undo();
        continue;
      }
      auto touched = net.touched_nodes();
      double cand_power = 0.0;
      try {
        cand_power = oracle.score_candidate(touched);
      } catch (...) {
        // score_candidate restored the oracle's caches; restoring the
        // netlist leaves caller state fully consistent.
        net.rollback_undo();
        throw;
      }
      ++res.candidates_scored;
      bool keep = cand_power < power - opt.min_gain_w;
      if (keep) {
        // Prove the instance before committing: bit-identity against the
        // pre-run circuit on the interpreter engine.
        sim::SimTrace now;
        {
          sim::ScopedSimOptions interp({.use_compiled = false});
          now = sim::functional_trace(net, opt.verify_frames,
                                      opt.verify_seed);
        }
        if (now != ref || detail::consume(detail::g_force_unsound)) {
          ++res.unsound;
          core::metrics::count("logicopt.rewrite.unsound");
          keep = false;
        }
      }
      if (keep) {
        net.commit_undo();
        power = cand_power;
        ++res.kept;
        ++kept_this_round;
        core::metrics::count("logicopt.rewrite.kept");
      } else {
        net.rollback_undo();
        oracle.revert_last();
        ++res.reverted;
        core::metrics::count("logicopt.rewrite.reverted");
      }
    }
    return kept_this_round;
  };

  // Constant folding cascades — each folded gate exposes const sites one
  // level downstream — so drain fold-only queues to a fixpoint first.
  // Every fold is scored and proven like any other candidate; this phase
  // just keeps the propagation from paying a full-rule-space rescore per
  // level.  The iteration bound is a backstop: each productive pass
  // retires at least one gate, so it can't loop.
  if (opt.rules.fold) {
    MatchOptions fold_only;
    fold_only.reassoc = fold_only.inv_push = fold_only.share = false;
    fold_only.mux = fold_only.carry = fold_only.distrib = false;
    for (int pass = 0; pass < 256; ++pass) {
      std::vector<Candidate> queue = match_rules(net, fold_only);
      if (queue.empty() || run_queue(std::move(queue)) == 0) break;
    }
  }

  for (int round = 0; round < opt.max_rounds; ++round) {
    if (run_queue(match_rules(net, opt.rules)) == 0) break;
  }

  res.power_after_w = power;
  res.gates_after = net.num_gates();
  return res;
}

}  // namespace lps::logicopt::rewrite
