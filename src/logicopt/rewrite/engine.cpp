#include "logicopt/rewrite/engine.hpp"

#include <algorithm>
#include <atomic>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/metrics.hpp"
#include "logicopt/speculate.hpp"
#include "power/incremental.hpp"
#include "sim/compiled.hpp"
#include "sim/logicsim.hpp"

namespace lps::logicopt::rewrite {

namespace detail {
namespace {
std::atomic<int> g_force_unsound{0};
std::atomic<int> g_force_throw{0};

bool consume(std::atomic<int>& counter) {
  int v = counter.load(std::memory_order_relaxed);
  while (v > 0) {
    if (counter.compare_exchange_weak(v, v - 1, std::memory_order_relaxed))
      return v == 1;  // fires when the countdown hits zero
  }
  return false;
}
}  // namespace

void force_unsound_rewrites(int n) {
  g_force_unsound.store(n, std::memory_order_relaxed);
}
void force_throw_on_candidate(int n) {
  g_force_throw.store(n, std::memory_order_relaxed);
}
}  // namespace detail

namespace {

// Touched-set union of keeps committed since the oracle was last synced.
// Flushed as one synthetic reanalyze: the resimulated cone words converge to
// the current netlist and the spliced counters are integers, so one union
// update leaves the oracle bit-identical to per-keep updates.
struct PendingTouched {
  std::vector<NodeId> ids;
  std::vector<NodeId> roots;
  bool any = false;

  void add(const Netlist::TouchedNodes& t) {
    any = true;
    ids.insert(ids.end(), t.ids.begin(), t.ids.end());
    roots.insert(roots.end(), t.value_roots.begin(), t.value_roots.end());
  }
};

void sort_unique(std::vector<NodeId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

RewriteResult rewrite_datapath(Netlist& net, const RewriteOptions& opt) {
  core::metrics::ScopedTimer timer("logicopt.rewrite", /*trace=*/true);
  RewriteResult res;
  res.gates_before = net.num_gates();
  const int workers = speculate::resolve_workers(opt.workers);
  res.workers_used = workers;

  // Private deterministic oracle: ZeroDelay statistics are bit-identical
  // across sim engines/widths/threads, so the kept-rewrite sequence never
  // depends on the caller's estimation configuration.
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = opt.sim_vectors;
  ao.seed = opt.seed;
  power::IncrementalAnalyzer oracle(net, ao);
  double power = oracle.analysis().report.breakdown.total_w();
  res.power_before_w = power;

  // The soundness proof baseline: kept candidates are exact, so the
  // primary-output streams of the oracle's cached stimulus never change and
  // one digest serves the whole run.  A post-candidate digest mismatch is
  // exactly a full-circuit differential-trace failure restricted to where
  // it can show (the PO streams), at O(outputs x frames) per check instead
  // of O(netlist x frames).
  const std::uint64_t base_digest = oracle.outputs_digest();

  // The full-trace reference (interpreter engine) backs the belt-and-braces
  // verify_full mode only; default runs never pay for it.
  sim::SimTrace ref;
  if (opt.verify_full) {
    sim::ScopedSimOptions interp({.use_compiled = false});
    ref = sim::functional_trace(net, opt.verify_frames, opt.verify_seed);
  }

  PendingTouched pending;
  auto sync_oracle = [&] {
    if (!pending.any) return;
    Netlist::TouchedNodes t;
    t.all = false;
    sort_unique(pending.ids);
    sort_unique(pending.roots);
    t.ids = std::move(pending.ids);
    t.value_roots = std::move(pending.roots);
    pending = {};
    oracle.reanalyze(t);
  };

  // Score an applied candidate through the live oracle and keep or revert
  // it — the tail of the sequential per-candidate body, shared with the
  // serial re-score path of the speculative commit loop.  The candidate's
  // undo epoch is open on entry and closed (committed or rolled back) on
  // normal return; the oracle must be synced to the pre-candidate netlist.
  // On a keep, `fp_out` (when given) receives the keep's dirty activity
  // footprint for the speculative conflict set.
  auto score_and_decide = [&](const Netlist::TouchedNodes& touched,
                              std::vector<NodeId>* fp_out = nullptr) -> bool {
    double cand_power = 0.0;
    try {
      cand_power = oracle.score_candidate(touched);
    } catch (...) {
      // score_candidate restored the oracle's caches; restoring the
      // netlist leaves caller state fully consistent.
      net.rollback_undo();
      throw;
    }
    ++res.candidates_scored;
    std::vector<NodeId> fp = speculate::dirty_footprint(net, touched);
    speculate::DeltaScore d = speculate::score_delta(
        oracle.previous_analysis(), oracle.analysis(), fp);
    bool keep = d.delta_w < -opt.min_gain_w;
    if (keep) {
      bool mismatch = oracle.outputs_digest() != base_digest;
      if (!mismatch && opt.verify_full) {
        sim::SimTrace now;
        {
          sim::ScopedSimOptions interp({.use_compiled = false});
          now = sim::functional_trace(net, opt.verify_frames,
                                      opt.verify_seed);
        }
        mismatch = now != ref;
      }
      if (mismatch || detail::consume(detail::g_force_unsound)) {
        ++res.unsound;
        core::metrics::count("logicopt.rewrite.unsound");
        keep = false;
      }
    }
    if (keep) {
      net.commit_undo();
      if (fp_out) *fp_out = std::move(fp);
      power = cand_power;
      ++res.kept;
      core::metrics::count("logicopt.rewrite.kept");
    } else {
      net.rollback_undo();
      oracle.revert_last();
      ++res.reverted;
      core::metrics::count("logicopt.rewrite.reverted");
    }
    return keep;
  };

  // Sequential candidate processing (workers == 1, and the reference
  // semantics the speculative path must reproduce bit-for-bit).
  auto process_serial = [&](const Candidate& cand) -> bool {
    net.begin_undo();
    if (detail::consume(detail::g_force_throw))
      throw std::runtime_error("rewrite: injected mid-candidate failure");
    bool applied = false;
    try {
      applied = apply_rule(net, cand);
    } catch (...) {
      net.rollback_undo();
      throw;
    }
    if (!applied) {
      ++res.stale;  // epoch recorded nothing; commit is free
      net.commit_undo();
      return false;
    }
    return score_and_decide(net.touched_nodes());
  };

  // Speculative processing: score the batch against a snapshot on worker
  // threads, then commit in queue order.  Disjoint winners transplant the
  // worker's delta and proof verdict; anything that overlapped an earlier
  // keep (or whose snapshot verdict is unusable) is re-scored serially at
  // exactly the point the sequential engine would have scored it.  Chaos
  // hooks are consumed only here, in commit order, so their firing point is
  // identical at any worker count.
  auto run_spec_batch = [&](std::span<const Candidate> batch) -> std::size_t {
    sync_oracle();  // workers clone the oracle; it must mirror the net
    const std::size_t snap_size = net.size();
    int team = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(workers), batch.size()));
    std::vector<speculate::CandidateScore> scores =
        speculate::score_rewrite_batch(net, oracle, batch, opt.min_gain_w,
                                       team);
    ++res.spec_batches;
    core::metrics::count("logicopt.spec.batches");
    speculate::ConflictSet committed(snap_size);
    std::size_t kept_this_batch = 0;
    for (std::size_t k = 0; k < batch.size(); ++k) {
      const Candidate& cand = batch[k];
      speculate::CandidateScore& sc = scores[k];
      // A cancellation raised on a worker must abort the run (at this
      // candidate's sequential position), not be re-executed serially.
      speculate::rethrow_if_cancelled(sc.error);
      bool conflict = sc.error != nullptr || sc.forced_conflict ||
                      committed.hits(sc.reads) || committed.hits(sc.footprint);
      if (conflict) {
        ++res.spec_conflicts;
        core::metrics::count("logicopt.spec.conflicts");
        sync_oracle();  // serial scoring needs a live previous_analysis
      }
      net.begin_undo();
      if (detail::consume(detail::g_force_throw))
        throw std::runtime_error("rewrite: injected mid-candidate failure");
      bool applied = false;
      try {
        applied = apply_rule(net, cand);
      } catch (...) {
        net.rollback_undo();
        throw;
      }
      if (!applied) {
        ++res.stale;
        net.commit_undo();
        continue;
      }
      Netlist::TouchedNodes touched = net.touched_nodes();
      if (!conflict &&
          (!sc.applied || touched.all ||
           !speculate::same_touched(sc.touched_snap, sc.roots_snap, touched,
                                    snap_size))) {
        // The snapshot verdict is unusable (the candidate was stale there,
        // the live apply invalidated wholesale, or the live apply made a
        // *different* edit than the snapshot scored — a read outside the
        // structural closure): surface it as a conflict and redo the
        // apply with the oracle synced first.
        net.rollback_undo();
        ++res.spec_conflicts;
        core::metrics::count("logicopt.spec.conflicts");
        conflict = true;
        sync_oracle();
        net.begin_undo();
        applied = false;
        try {
          applied = apply_rule(net, cand);
        } catch (...) {
          net.rollback_undo();
          throw;
        }
        if (!applied) {
          ++res.stale;
          net.commit_undo();
          continue;
        }
        touched = net.touched_nodes();
      }
      if (conflict) {
        ++res.spec_rescored;
        core::metrics::count("logicopt.spec.rescored");
        std::vector<NodeId> fp;
        if (score_and_decide(touched, &fp)) {
          ++kept_this_batch;
          // The conflict set carries the keep's structural edit *and* its
          // dirty activity footprint: a later candidate whose cone
          // reconverges with this keep's toggle changes downstream (no
          // structural overlap) must not transplant a pre-keep delta.
          committed.add(touched.ids);
          committed.add(fp);
          // score_and_decide reanalyzed the live oracle; nothing pending.
        }
        continue;
      }
      // Disjoint from every committed keep: the worker's delta and proof
      // transplant bit-for-bit.
      ++res.candidates_scored;
      bool keep = sc.keep;
      if (keep) {
        bool mismatch = !sc.sound;
        if (!mismatch && opt.verify_full) {
          sim::SimTrace now;
          {
            sim::ScopedSimOptions interp({.use_compiled = false});
            now = sim::functional_trace(net, opt.verify_frames,
                                        opt.verify_seed);
          }
          mismatch = now != ref;
        }
        if (mismatch || detail::consume(detail::g_force_unsound)) {
          ++res.unsound;
          core::metrics::count("logicopt.rewrite.unsound");
          keep = false;
        }
      }
      if (keep) {
        net.commit_undo();
        ++res.kept;
        ++kept_this_batch;
        core::metrics::count("logicopt.rewrite.kept");
        committed.add(touched.ids);
        committed.add(speculate::dirty_footprint(net, touched));
        pending.add(touched);
      } else {
        net.rollback_undo();
        ++res.reverted;
        core::metrics::count("logicopt.rewrite.reverted");
      }
    }
    return kept_this_batch;
  };

  auto run_queue = [&](std::vector<Candidate> queue) -> std::size_t {
    res.candidates_seen += queue.size();
    if (queue.size() > opt.max_candidates) {
      // Never truncate silently: the result flags it, metrics count it, and
      // the diagnostic names the bound that did it.
      if (!res.capped)
        core::metrics::count("logicopt.rewrite.capped_runs");
      core::metrics::count("logicopt.rewrite.capped",
                           static_cast<double>(queue.size() -
                                               opt.max_candidates));
      res.capped = true;
      queue.resize(opt.max_candidates);
    }
    std::size_t kept_this_round = 0;
    if (workers <= 1) {
      for (const Candidate& cand : queue)
        if (process_serial(cand)) ++kept_this_round;
      return kept_this_round;
    }
    const std::size_t batch_size =
        opt.spec_batch ? opt.spec_batch
                       : static_cast<std::size_t>(32) *
                             static_cast<std::size_t>(workers);
    for (std::size_t start = 0; start < queue.size(); start += batch_size) {
      std::size_t n = std::min(batch_size, queue.size() - start);
      kept_this_round +=
          run_spec_batch(std::span<const Candidate>(queue).subspan(start, n));
    }
    return kept_this_round;
  };

  // Constant folding cascades — each folded gate exposes const sites one
  // level downstream — so drain fold-only queues to a fixpoint first.
  // Every fold is scored and proven like any other candidate; this phase
  // just keeps the propagation from paying a full-rule-space rescore per
  // level.  The iteration bound is a backstop: each productive pass
  // retires at least one gate, so it can't loop.
  if (opt.rules.fold) {
    MatchOptions fold_only;
    fold_only.reassoc = fold_only.inv_push = fold_only.share = false;
    fold_only.mux = fold_only.carry = fold_only.distrib = false;
    for (int pass = 0; pass < 256; ++pass) {
      std::vector<Candidate> queue = match_rules(net, fold_only);
      if (queue.empty() || run_queue(std::move(queue)) == 0) break;
    }
  }

  for (int round = 0; round < opt.max_rounds; ++round) {
    if (run_queue(match_rules(net, opt.rules)) == 0) break;
  }

  if (workers > 1) {
    // Transplanted keeps deferred their oracle updates; settle them so the
    // exit estimate is the same full assembly the sequential engine ends on.
    sync_oracle();
    power = oracle.analysis().report.breakdown.total_w();
  }
  res.power_after_w = power;
  res.gates_after = net.num_gates();
  return res;
}

}  // namespace lps::logicopt::rewrite
