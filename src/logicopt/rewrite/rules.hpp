// rules.hpp — exact datapath rewrite rules over netlist cones.
//
// The rule families follow the structural/Boolean inventory the datapath
// rewriting literature applies to arithmetic circuits (Coward et al.,
// "Combining Power and Arithmetic Optimization via Datapath Rewriting"):
//
//   Fold      constant and trivial-operand simplification: And(x,0) -> 0,
//             Xor(x,1) -> ~x, Mux(0,a,b) -> a, And(x,x) -> x, Buf(x) -> x,
//             ~const -> const — naive elaboration (constant carry-ins,
//             zero-padded reduction rows) leaves these everywhere;
//   Reassoc   associative regrouping of 2-input And/Or/Xor chains,
//             OP(OP(a,b),c) -> OP(a,OP(b,c)) | OP(b,OP(a,c)) — moves the
//             high-activity operand next to the output so fewer gates see
//             its toggles;
//   InvPush   inverter absorption and De Morgan moves: Xor(a,~b) -> Xnor,
//             ~Xor -> Xnor, ~And -> Nand, ~~a -> a, and their duals;
//   Share     cross-cone sharing: a gate whose complement (And/Nand,
//             Or/Nor, Xor/Xnor over the same operands) or duplicate is
//             already live is replaced by (an inverter on) that node —
//             the complement case is invisible to strash; the
//             through-inverter form Xor(x,~y) == ~Xor(x,y) == Xnor(x,y)
//             reuses a live Xor/Xnor(x,y) across cones in one step (the
//             sum/difference chains of a butterfly);
//   MuxRule   mux laws: select-inverter absorption, equal/constant arms,
//             same-select cascades, and factoring a common operand out of
//             both arms, Mux(s,OP(x,y),OP(x,z)) -> OP(x,Mux(s,y,z));
//   Carry     carry-majority restructuring, ab + (a^b)c <-> ab + (a|b)c
//             (both sides are majority(a,b,c)) — re-routes the carry off
//             the hot XOR onto a calmer OR, or back;
//   Distrib   distribution/factoring, Or(And(a,x),And(a,y)) ->
//             And(a,Or(x,y)) and the And/Or dual.
//
// Every rule is an exact Boolean identity; the engine (engine.hpp)
// additionally proves each applied instance bit-identical to the original
// circuit by differential interpreter simulation before keeping it.
//
// Matching and application are split so candidates can be enumerated once
// and applied lazily: apply_rule() re-validates the full structural match
// (sites go stale as earlier candidates are kept) and returns false
// without mutating anything when it no longer holds.

#pragma once

#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::logicopt::rewrite {

enum class RuleKind : std::uint8_t {
  Fold,
  Reassoc,
  InvPush,
  Share,
  MuxRule,
  Carry,
  Distrib,
};

std::string_view rule_name(RuleKind k);

struct Candidate {
  RuleKind rule;
  NodeId target;             // the node the rewrite replaces or edits
  std::uint8_t variant = 0;  // rule-specific alternative index
  NodeId aux = kNoNode;      // Share: the partner node to reuse
};

struct MatchOptions {
  bool fold = true;
  bool reassoc = true;
  bool inv_push = true;
  bool share = true;
  bool mux = true;
  bool carry = true;
  bool distrib = true;
};

/// Deepest fanin level any matcher or apply_rule() re-validation reads,
/// measured from a candidate's seed nodes (target, aux).  Per-rule audit:
/// Fold reads the target's fanins (1); Reassoc the chain gate's fanins (2);
/// InvPush the inner inverter's / inner gate's fanins (2); Share the
/// partner's fanins and the through-inverter operand (2); MuxRule the
/// select inverter's and the arms' fanins (2); Carry the propagate gate
/// two Ands below the Or plus that gate's fanin ids (3); Distrib the inner
/// gates' fanins (2).  speculate::read_closure() bounds a candidate's
/// structural read set with this — grow it when a deeper pattern is added
/// (the commit loop's touched-set cross-check catches a stale value at
/// run time, but only by forcing serial re-scores).
inline constexpr int kMaxMatchDepth = 3;

/// Enumerate every rule match over the live logic of `net`, in a
/// deterministic order (ascending target id, fixed rule order).
std::vector<Candidate> match_rules(const Netlist& net,
                                   const MatchOptions& opt = {});

/// Apply one candidate in place.  Returns true when the site still matched
/// and the netlist was mutated (followed by a sweep of disconnected logic);
/// false when the match went stale — the netlist is untouched in that case.
bool apply_rule(Netlist& net, const Candidate& c);

}  // namespace lps::logicopt::rewrite
