#include "logicopt/rewrite/rules.hpp"

#include <algorithm>
#include <unordered_map>

namespace lps::logicopt::rewrite {

namespace {

bool is_commutative(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Or:
    case GateType::Nand:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

GateType complement_of(GateType t) {
  switch (t) {
    case GateType::And: return GateType::Nand;
    case GateType::Nand: return GateType::And;
    case GateType::Or: return GateType::Nor;
    case GateType::Nor: return GateType::Or;
    case GateType::Xor: return GateType::Xnor;
    case GateType::Xnor: return GateType::Xor;
    default: return GateType::Input;  // sentinel: no complement form
  }
}

bool live_gate(const Netlist& net, NodeId n) {
  return n < net.size() && !net.is_dead(n) && !is_source(net.node(n).type) &&
         net.node(n).type != GateType::Dff;
}

bool is2(const Netlist& net, NodeId n, GateType t) {
  return live_gate(net, n) && net.node(n).type == t &&
         net.node(n).fanins.size() == 2;
}

bool is_po(const Netlist& net, NodeId n) {
  const auto& outs = net.outputs();
  return std::find(outs.begin(), outs.end(), n) != outs.end();
}

/// True when retiring `n`'s single use lets sweep() reclaim it.
bool retirable(const Netlist& net, NodeId n) {
  return net.node(n).fanouts.size() == 1 && !is_po(net, n);
}

std::vector<NodeId> sorted_fanins(const Netlist& net, NodeId n) {
  std::vector<NodeId> fi = net.node(n).fanins;
  std::sort(fi.begin(), fi.end());
  return fi;
}

/// Find a live gate computing exactly (t, fi) — fanin order significant for
/// non-commutative types, multiset-equal otherwise.  Scans the fanouts of
/// fi[0], so cost is local.  `avoid` excludes the node being replaced.
NodeId find_gate(const Netlist& net, GateType t, const std::vector<NodeId>& fi,
                 NodeId avoid) {
  if (fi.empty()) return kNoNode;
  std::vector<NodeId> want = fi;
  if (is_commutative(t)) std::sort(want.begin(), want.end());
  for (NodeId u : net.node(fi[0]).fanouts) {
    if (u == avoid || net.is_dead(u)) continue;
    const Node& nd = net.node(u);
    if (nd.type != t || nd.fanins.size() != fi.size()) continue;
    if (is_commutative(t)) {
      std::vector<NodeId> have = nd.fanins;
      std::sort(have.begin(), have.end());
      if (have == want) return u;
    } else if (nd.fanins == fi) {
      return u;
    }
  }
  return kNoNode;
}

/// Reuse an equivalent live gate when one exists, else build it.  Every
/// operand in `fi` lies strictly upstream of the rewrite target, so a found
/// node can never close a cycle through the target's users.
NodeId make_gate(Netlist& net, GateType t, std::vector<NodeId> fi,
                 NodeId avoid) {
  if (is_commutative(t)) std::sort(fi.begin(), fi.end());
  NodeId hit = find_gate(net, t, fi, avoid);
  if (hit != kNoNode) return hit;
  return net.add_gate(t, std::move(fi));
}

NodeId make_not(Netlist& net, NodeId a, NodeId avoid) {
  return make_gate(net, GateType::Not, {a}, avoid);
}

bool is_live_not(const Netlist& net, NodeId n) {
  return live_gate(net, n) && net.node(n).type == GateType::Not;
}

bool is_const(const Netlist& net, NodeId n, bool v) {
  return !net.is_dead(n) &&
         net.node(n).type == (v ? GateType::Const1 : GateType::Const0);
}

bool any_const(const Netlist& net, NodeId n) {
  return is_const(net, n, false) || is_const(net, n, true);
}

// ---- Fold ------------------------------------------------------------------
// variant 0: binary gate with a constant fanin (or two) folds to a constant,
// the other operand, or its inverter; variant 1: binary gate with equal
// fanins (And(x,x) -> x, Xor(x,x) -> 0, ...); variant 2: Buf(x) -> x and
// Not(const) -> const; variant 3: Mux with a constant select.

bool apply_fold(Netlist& net, const Candidate& cand) {
  NodeId n = cand.target;
  if (!live_gate(net, n)) return false;
  const Node& nd = net.node(n);
  NodeId repl = kNoNode;
  switch (cand.variant) {
    case 0: {
      if (!is_commutative(nd.type) || nd.fanins.size() != 2) return false;
      NodeId f0 = nd.fanins[0], f1 = nd.fanins[1];
      if (any_const(net, f0) && any_const(net, f1)) {
        std::vector<std::uint64_t> w{is_const(net, f0, true) ? ~0ull : 0ull,
                                     is_const(net, f1, true) ? ~0ull : 0ull};
        repl = net.add_const((eval_gate(nd.type, w) & 1ull) != 0);
      } else {
        NodeId x = any_const(net, f0) ? f1 : f0;
        NodeId cst = any_const(net, f0) ? f0 : f1;
        if (!any_const(net, cst) || x == n) return false;
        bool v = is_const(net, cst, true);
        switch (nd.type) {
          case GateType::And: repl = v ? x : net.add_const(false); break;
          case GateType::Nand:
            repl = v ? make_not(net, x, n) : net.add_const(true);
            break;
          case GateType::Or: repl = v ? net.add_const(true) : x; break;
          case GateType::Nor:
            repl = v ? net.add_const(false) : make_not(net, x, n);
            break;
          case GateType::Xor: repl = v ? make_not(net, x, n) : x; break;
          case GateType::Xnor: repl = v ? x : make_not(net, x, n); break;
          default: return false;
        }
      }
      break;
    }
    case 1: {
      if (!is_commutative(nd.type) || nd.fanins.size() != 2 ||
          nd.fanins[0] != nd.fanins[1])
        return false;
      NodeId x = nd.fanins[0];
      if (x == n) return false;
      switch (nd.type) {
        case GateType::And:
        case GateType::Or: repl = x; break;
        case GateType::Nand:
        case GateType::Nor: repl = make_not(net, x, n); break;
        case GateType::Xor: repl = net.add_const(false); break;
        case GateType::Xnor: repl = net.add_const(true); break;
        default: return false;
      }
      break;
    }
    case 2: {
      if (nd.type == GateType::Buf) {
        repl = nd.fanins[0];
      } else if (nd.type == GateType::Not && any_const(net, nd.fanins[0])) {
        repl = net.add_const(!is_const(net, nd.fanins[0], true));
      } else {
        return false;
      }
      break;
    }
    case 3: {
      if (nd.type != GateType::Mux || !any_const(net, nd.fanins[0]))
        return false;
      repl = is_const(net, nd.fanins[0], true) ? nd.fanins[2] : nd.fanins[1];
      break;
    }
    default:
      return false;
  }
  if (repl == kNoNode || repl == n) return false;
  net.substitute(n, repl);
  net.sweep();
  return true;
}

// ---- Reassoc ---------------------------------------------------------------

// n = OP(x, c) with x = OP(a, b), x retirable: regroup to OP(a, OP(b,c))
// (variant 0) or OP(b, OP(a,c)) (variant 1).  Returns the chain parts via
// out params; false when n is not a reassociation site.
bool match_reassoc(const Netlist& net, NodeId n, NodeId& a, NodeId& b,
                   NodeId& c, GateType& t) {
  if (!live_gate(net, n)) return false;
  t = net.node(n).type;
  if (t != GateType::And && t != GateType::Or && t != GateType::Xor)
    return false;
  if (net.node(n).fanins.size() != 2) return false;
  for (int k = 0; k < 2; ++k) {
    NodeId x = net.node(n).fanins[k];
    NodeId other = net.node(n).fanins[1 - k];
    if (x == other || !is2(net, x, t) || !retirable(net, x)) continue;
    a = net.node(x).fanins[0];
    b = net.node(x).fanins[1];
    c = other;
    if (c == a || c == b || a == b) continue;
    return true;
  }
  return false;
}

bool apply_reassoc(Netlist& net, const Candidate& cand) {
  NodeId a, b, c;
  GateType t;
  if (!match_reassoc(net, cand.target, a, b, c, t)) return false;
  NodeId in0 = (cand.variant == 0) ? b : a;
  NodeId keep = (cand.variant == 0) ? a : b;
  NodeId inner = make_gate(net, t, {in0, c}, cand.target);
  NodeId outer = make_gate(net, t, {keep, inner}, cand.target);
  if (outer == cand.target) return false;
  net.substitute(cand.target, outer);
  net.sweep();
  return true;
}

// ---- InvPush ---------------------------------------------------------------
// variant 0/1: Xor/Xnor absorbs a Not at fanin 0/1 (parity flip);
// variant 2: Not(Not(a)) -> a;
// variant 3: Not(gate) -> complemented gate (retirable inner, any arity);
// variant 4: Nand/Nor with both fanins inverted -> De Morgan dual.

bool apply_inv_push(Netlist& net, const Candidate& cand) {
  NodeId n = cand.target;
  if (!live_gate(net, n)) return false;
  const Node& nd = net.node(n);
  if (cand.variant <= 1) {
    if ((nd.type != GateType::Xor && nd.type != GateType::Xnor) ||
        nd.fanins.size() != 2 || nd.fanins[0] == nd.fanins[1])
      return false;
    NodeId inv = nd.fanins[cand.variant];
    NodeId other = nd.fanins[1 - cand.variant];
    if (!is_live_not(net, inv)) return false;
    NodeId b = net.node(inv).fanins[0];
    if (b == other) return false;
    GateType flipped =
        nd.type == GateType::Xor ? GateType::Xnor : GateType::Xor;
    NodeId repl = make_gate(net, flipped, {other, b}, n);
    if (repl == n) return false;
    net.substitute(n, repl);
    net.sweep();
    return true;
  }
  if (cand.variant == 2) {
    if (nd.type != GateType::Not) return false;
    NodeId inner = nd.fanins[0];
    if (!is_live_not(net, inner)) return false;
    NodeId back = net.node(inner).fanins[0];
    if (back == n) return false;
    net.substitute(n, back);
    net.sweep();
    return true;
  }
  if (cand.variant == 3) {
    if (nd.type != GateType::Not) return false;
    NodeId inner = nd.fanins[0];
    if (!live_gate(net, inner) || !retirable(net, inner)) return false;
    GateType comp = complement_of(net.node(inner).type);
    if (comp == GateType::Input) return false;
    NodeId repl = make_gate(net, comp, net.node(inner).fanins, n);
    if (repl == n) return false;
    net.substitute(n, repl);
    net.sweep();
    return true;
  }
  if (cand.variant == 4) {
    if ((nd.type != GateType::Nand && nd.type != GateType::Nor) ||
        nd.fanins.size() != 2)
      return false;
    NodeId i0 = nd.fanins[0], i1 = nd.fanins[1];
    if (!is_live_not(net, i0) || !is_live_not(net, i1)) return false;
    NodeId a = net.node(i0).fanins[0];
    NodeId b = net.node(i1).fanins[0];
    GateType dual = nd.type == GateType::Nand ? GateType::Or : GateType::And;
    NodeId repl = (a == b) ? a : make_gate(net, dual, {a, b}, n);
    if (repl == n) return false;
    net.substitute(n, repl);
    net.sweep();
    return true;
  }
  return false;
}

// ---- Share -----------------------------------------------------------------
// variant 0: complement partner — target computes ~aux over the same
// operands, so it becomes Not(aux); variant 1: exact duplicate of aux;
// variants 2/3: through-inverter sharing for the parity gates.  A target
// t(x, ~y) with t in {Xor, Xnor} equals comp_t(x, y), so it can reuse a
// live comp_t(x, y) directly (variant 2) or a live t(x, y) under an
// inverter (variant 3) — the bridge between a butterfly's sum chain
// (Xor(a, b)) and its difference chain (Xor(a, ~b)) that neither strash
// nor the plain complement share can see in one step.

// When n is t(x, Not(y)) with t parity, yields x and y; false otherwise.
bool parity_thru_inv(const Netlist& net, NodeId n, NodeId& x, NodeId& y) {
  if (!live_gate(net, n)) return false;
  const Node& nd = net.node(n);
  if ((nd.type != GateType::Xor && nd.type != GateType::Xnor) ||
      nd.fanins.size() != 2 || nd.fanins[0] == nd.fanins[1])
    return false;
  for (int k = 0; k < 2; ++k) {
    NodeId inv = nd.fanins[k];
    if (!is_live_not(net, inv)) continue;
    x = nd.fanins[1 - k];
    y = net.node(inv).fanins[0];
    if (y != x && y != n && x != n) return true;
  }
  return false;
}

bool apply_share(Netlist& net, const Candidate& cand) {
  NodeId n = cand.target, m = cand.aux;
  if (n == m || !live_gate(net, n) || !live_gate(net, m)) return false;
  GateType tn = net.node(n).type, tm = net.node(m).type;
  if (cand.variant >= 2) {
    NodeId x, y;
    if (!parity_thru_inv(net, n, x, y)) return false;
    std::vector<NodeId> want{x, y};
    std::sort(want.begin(), want.end());
    if (sorted_fanins(net, m) != want) return false;
    GateType comp = complement_of(tn);
    NodeId repl;
    if (cand.variant == 2) {
      if (tm != comp) return false;
      repl = m;  // t(x, ~y) == comp_t(x, y): share outright
    } else {
      if (tm != tn) return false;
      repl = make_not(net, m, n);
    }
    if (repl == n) return false;
    net.substitute(n, repl);
    net.sweep();
    return true;
  }
  if (sorted_fanins(net, n) != sorted_fanins(net, m)) return false;
  if (cand.variant == 1) {
    if (tn != tm) return false;
    if (!is_commutative(tn) && net.node(n).fanins != net.node(m).fanins)
      return false;
    net.substitute(n, m);
    net.sweep();
    return true;
  }
  if (complement_of(tn) != tm || !is_commutative(tn)) return false;
  NodeId repl = make_not(net, m, n);
  if (repl == n) return false;
  net.substitute(n, repl);
  net.sweep();
  return true;
}

// ---- MuxRule ---------------------------------------------------------------
// Mux fanins are (s, a, b) computing s ? b : a.
// variant 0: inverted select; 1: equal arms; 2: constant arm folds;
// 3: same-select cascade in an arm; 4: common-operand arm factoring.

bool apply_mux(Netlist& net, const Candidate& cand) {
  NodeId n = cand.target;
  if (!live_gate(net, n) || net.node(n).type != GateType::Mux) return false;
  NodeId s = net.node(n).fanins[0];
  NodeId a = net.node(n).fanins[1];
  NodeId b = net.node(n).fanins[2];
  switch (cand.variant) {
    case 0: {
      if (!is_live_not(net, s)) return false;
      NodeId t = net.node(s).fanins[0];
      if (t == n) return false;
      NodeId repl = make_gate(net, GateType::Mux, {t, b, a}, n);
      if (repl == n) return false;
      net.substitute(n, repl);
      net.sweep();
      return true;
    }
    case 1: {
      if (a != b || a == n) return false;
      net.substitute(n, a);
      net.sweep();
      return true;
    }
    case 2: {
      if (!any_const(net, a) && !any_const(net, b)) return false;
      NodeId repl = kNoNode;
      if (any_const(net, a) && any_const(net, b)) {
        bool va = is_const(net, a, true), vb = is_const(net, b, true);
        if (va == vb)
          repl = a;
        else if (vb)  // s ? 1 : 0 = s
          repl = s;
        else  // s ? 0 : 1 = ~s
          repl = make_not(net, s, n);
      } else if (is_const(net, a, false)) {  // s ? b : 0 = s & b
        repl = make_gate(net, GateType::And, {s, b}, n);
      } else if (is_const(net, a, true)) {  // s ? b : 1 = ~s | b
        repl = make_gate(net, GateType::Or, {make_not(net, s, n), b}, n);
      } else if (is_const(net, b, false)) {  // s ? 0 : a = ~s & a
        repl = make_gate(net, GateType::And, {make_not(net, s, n), a}, n);
      } else {  // s ? 1 : a = s | a
        repl = make_gate(net, GateType::Or, {s, a}, n);
      }
      if (repl == n || repl == kNoNode) return false;
      net.substitute(n, repl);
      net.sweep();
      return true;
    }
    case 3: {
      bool changed = false;
      if (live_gate(net, a) && net.node(a).type == GateType::Mux &&
          net.node(a).fanins[0] == s && a != n) {
        net.replace_fanin(n, 1, net.node(a).fanins[1]);
        changed = true;
      }
      // Re-read b: the first edit never changes slot 2, but stay exact.
      b = net.node(n).fanins[2];
      if (live_gate(net, b) && net.node(b).type == GateType::Mux &&
          net.node(b).fanins[0] == s && b != n) {
        net.replace_fanin(n, 2, net.node(b).fanins[2]);
        changed = true;
      }
      if (changed) net.sweep();
      return changed;
    }
    case 4: {
      if (a == b || !live_gate(net, a) || !live_gate(net, b)) return false;
      GateType op = net.node(a).type;
      if (op != GateType::And && op != GateType::Or && op != GateType::Xor)
        return false;
      if (net.node(b).type != op || net.node(a).fanins.size() != 2 ||
          net.node(b).fanins.size() != 2)
        return false;
      if (!retirable(net, a) || !retirable(net, b)) return false;
      for (int i = 0; i < 2; ++i) {
        NodeId x = net.node(a).fanins[i];
        for (int j = 0; j < 2; ++j) {
          if (net.node(b).fanins[j] != x) continue;
          NodeId y = net.node(a).fanins[1 - i];
          NodeId z = net.node(b).fanins[1 - j];
          NodeId inner = make_gate(net, GateType::Mux, {s, y, z}, n);
          NodeId repl = make_gate(net, op, {x, inner}, n);
          if (repl == n) return false;
          net.substitute(n, repl);
          net.sweep();
          return true;
        }
      }
      return false;
    }
    default:
      return false;
  }
}

// ---- Carry -----------------------------------------------------------------
// n = Or(And(a,b), And(x,c)).  variant 0: x = Xor(a,b) -> And((a|b), c);
// variant 1: x = Or(a,b) -> And((a^b), c).  Both sides equal
// majority(a,b,c) given the And(a,b) term, so the identity is exact.

bool apply_carry(Netlist& net, const Candidate& cand) {
  NodeId n = cand.target;
  if (!is2(net, n, GateType::Or)) return false;
  GateType from =
      cand.variant == 0 ? GateType::Xor : GateType::Or;
  GateType to = cand.variant == 0 ? GateType::Or : GateType::Xor;
  for (int k = 0; k < 2; ++k) {
    NodeId g = net.node(n).fanins[k];      // the And(a,b) kept as-is
    NodeId h = net.node(n).fanins[1 - k];  // the And(prop, c) restructured
    if (g == h || !is2(net, g, GateType::And) || !is2(net, h, GateType::And))
      continue;
    if (!retirable(net, h)) continue;
    auto ab = sorted_fanins(net, g);
    if (ab[0] == ab[1]) continue;
    for (int m = 0; m < 2; ++m) {
      NodeId x = net.node(h).fanins[m];
      NodeId c = net.node(h).fanins[1 - m];
      if (x == c || !is2(net, x, from)) continue;
      if (sorted_fanins(net, x) != ab) continue;
      NodeId prop = make_gate(net, to, {ab[0], ab[1]}, n);
      NodeId new_h = make_gate(net, GateType::And, {prop, c}, n);
      NodeId repl = make_gate(net, GateType::Or, {g, new_h}, n);
      if (repl == n) return false;
      net.substitute(n, repl);
      net.sweep();
      return true;
    }
  }
  return false;
}

// ---- Distrib ---------------------------------------------------------------
// Or(And(a,x), And(a,y)) -> And(a, Or(x,y)) and the And/Or dual
// ((a|x)(a|y) = a | xy).

bool apply_distrib(Netlist& net, const Candidate& cand) {
  NodeId n = cand.target;
  GateType outer, inner;
  if (is2(net, n, GateType::Or)) {
    outer = GateType::Or;
    inner = GateType::And;
  } else if (is2(net, n, GateType::And)) {
    outer = GateType::And;
    inner = GateType::Or;
  } else {
    return false;
  }
  NodeId p = net.node(n).fanins[0], q = net.node(n).fanins[1];
  if (p == q || !is2(net, p, inner) || !is2(net, q, inner)) return false;
  if (!retirable(net, p) || !retirable(net, q)) return false;
  for (int i = 0; i < 2; ++i) {
    NodeId a = net.node(p).fanins[i];
    for (int j = 0; j < 2; ++j) {
      if (net.node(q).fanins[j] != a) continue;
      NodeId x = net.node(p).fanins[1 - i];
      NodeId y = net.node(q).fanins[1 - j];
      NodeId rest = (x == y) ? x : make_gate(net, outer, {x, y}, n);
      NodeId repl = make_gate(net, inner, {a, rest}, n);
      if (repl == n) return false;
      net.substitute(n, repl);
      net.sweep();
      return true;
    }
  }
  return false;
}

}  // namespace

std::string_view rule_name(RuleKind k) {
  switch (k) {
    case RuleKind::Fold: return "fold";
    case RuleKind::Reassoc: return "reassoc";
    case RuleKind::InvPush: return "inv_push";
    case RuleKind::Share: return "share";
    case RuleKind::MuxRule: return "mux";
    case RuleKind::Carry: return "carry";
    case RuleKind::Distrib: return "distrib";
  }
  return "?";
}

std::vector<Candidate> match_rules(const Netlist& net,
                                   const MatchOptions& opt) {
  std::vector<Candidate> out;
  const NodeId n_nodes = static_cast<NodeId>(net.size());

  if (opt.fold) {
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (!live_gate(net, n)) continue;
      const Node& nd = net.node(n);
      if (nd.type == GateType::Buf ||
          (nd.type == GateType::Not && any_const(net, nd.fanins[0]))) {
        out.push_back({RuleKind::Fold, n, 2, kNoNode});
      } else if (nd.type == GateType::Mux && any_const(net, nd.fanins[0])) {
        out.push_back({RuleKind::Fold, n, 3, kNoNode});
      } else if (is_commutative(nd.type) && nd.fanins.size() == 2) {
        if (any_const(net, nd.fanins[0]) || any_const(net, nd.fanins[1]))
          out.push_back({RuleKind::Fold, n, 0, kNoNode});
        else if (nd.fanins[0] == nd.fanins[1])
          out.push_back({RuleKind::Fold, n, 1, kNoNode});
      }
    }
  }
  if (opt.reassoc) {
    for (NodeId n = 0; n < n_nodes; ++n) {
      NodeId a, b, c;
      GateType t;
      if (!match_reassoc(net, n, a, b, c, t)) continue;
      out.push_back({RuleKind::Reassoc, n, 0, kNoNode});
      out.push_back({RuleKind::Reassoc, n, 1, kNoNode});
    }
  }
  if (opt.inv_push) {
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (!live_gate(net, n)) continue;
      const Node& nd = net.node(n);
      if ((nd.type == GateType::Xor || nd.type == GateType::Xnor) &&
          nd.fanins.size() == 2 && nd.fanins[0] != nd.fanins[1]) {
        for (std::uint8_t k = 0; k < 2; ++k)
          if (is_live_not(net, nd.fanins[k]) &&
              net.node(nd.fanins[k]).fanins[0] != nd.fanins[1 - k])
            out.push_back({RuleKind::InvPush, n, k, kNoNode});
      } else if (nd.type == GateType::Not) {
        NodeId inner = nd.fanins[0];
        if (is_live_not(net, inner)) {
          out.push_back({RuleKind::InvPush, n, 2, kNoNode});
        } else if (live_gate(net, inner) && retirable(net, inner) &&
                   complement_of(net.node(inner).type) != GateType::Input) {
          out.push_back({RuleKind::InvPush, n, 3, kNoNode});
        }
      } else if ((nd.type == GateType::Nand || nd.type == GateType::Nor) &&
                 nd.fanins.size() == 2 && is_live_not(net, nd.fanins[0]) &&
                 is_live_not(net, nd.fanins[1])) {
        out.push_back({RuleKind::InvPush, n, 4, kNoNode});
      }
    }
  }
  if (opt.share) {
    // One ascending scan; each gate keys on (type, sorted fanins).  A later
    // node pairs with the first earlier holder of its duplicate or
    // complement key.
    struct KeyHash {
      std::size_t operator()(const std::pair<int, std::vector<NodeId>>& k)
          const {
        std::size_t h = static_cast<std::size_t>(k.first) * 0x9E3779B97F4A7C15ull;
        for (NodeId f : k.second) h = h * 0x100000001B3ull ^ f;
        return h;
      }
    };
    std::unordered_map<std::pair<int, std::vector<NodeId>>, NodeId, KeyHash>
        seen;
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (!live_gate(net, n)) continue;
      GateType t = net.node(n).type;
      if (!is_commutative(t) && t != GateType::Not) continue;
      auto fi = sorted_fanins(net, n);
      auto dup = seen.find({static_cast<int>(t), fi});
      if (dup != seen.end())
        out.push_back({RuleKind::Share, n, 1, dup->second});
      GateType comp = complement_of(t);
      if (comp != GateType::Input) {
        auto c = seen.find({static_cast<int>(comp), fi});
        if (c != seen.end())
          out.push_back({RuleKind::Share, n, 0, c->second});
      }
      // Parity-through-inverter: t(x, ~y) pairs with an earlier gate over
      // {x, y} of the complement type (direct share) or the same type
      // (share under an inverter).
      NodeId x, y;
      if (parity_thru_inv(net, n, x, y)) {
        std::vector<NodeId> key{x, y};
        std::sort(key.begin(), key.end());
        auto direct = seen.find({static_cast<int>(comp), key});
        if (direct != seen.end())
          out.push_back({RuleKind::Share, n, 2, direct->second});
        auto inv = seen.find({static_cast<int>(t), key});
        if (inv != seen.end())
          out.push_back({RuleKind::Share, n, 3, inv->second});
      }
      seen.emplace(std::pair{static_cast<int>(t), std::move(fi)}, n);
    }
  }
  if (opt.mux) {
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (!live_gate(net, n) || net.node(n).type != GateType::Mux) continue;
      NodeId s = net.node(n).fanins[0];
      NodeId a = net.node(n).fanins[1];
      NodeId b = net.node(n).fanins[2];
      if (is_live_not(net, s)) out.push_back({RuleKind::MuxRule, n, 0, kNoNode});
      if (a == b) {
        out.push_back({RuleKind::MuxRule, n, 1, kNoNode});
        continue;
      }
      if (any_const(net, a) || any_const(net, b))
        out.push_back({RuleKind::MuxRule, n, 2, kNoNode});
      if ((live_gate(net, a) && net.node(a).type == GateType::Mux &&
           net.node(a).fanins[0] == s) ||
          (live_gate(net, b) && net.node(b).type == GateType::Mux &&
           net.node(b).fanins[0] == s))
        out.push_back({RuleKind::MuxRule, n, 3, kNoNode});
      if (live_gate(net, a) && live_gate(net, b) &&
          net.node(a).type == net.node(b).type &&
          (net.node(a).type == GateType::And ||
           net.node(a).type == GateType::Or ||
           net.node(a).type == GateType::Xor) &&
          net.node(a).fanins.size() == 2 && net.node(b).fanins.size() == 2 &&
          retirable(net, a) && retirable(net, b)) {
        bool common = false;
        for (int i = 0; i < 2 && !common; ++i)
          for (int j = 0; j < 2 && !common; ++j)
            common = net.node(a).fanins[i] == net.node(b).fanins[j];
        if (common) out.push_back({RuleKind::MuxRule, n, 4, kNoNode});
      }
    }
  }
  if (opt.carry) {
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (!is2(net, n, GateType::Or)) continue;
      for (std::uint8_t dir = 0; dir < 2; ++dir) {
        Candidate c{RuleKind::Carry, n, dir, kNoNode};
        // Probe the matcher without mutating: clone-free structural check.
        GateType from = dir == 0 ? GateType::Xor : GateType::Or;
        bool hit = false;
        for (int k = 0; k < 2 && !hit; ++k) {
          NodeId g = net.node(n).fanins[k];
          NodeId h = net.node(n).fanins[1 - k];
          if (g == h || !is2(net, g, GateType::And) ||
              !is2(net, h, GateType::And) || !retirable(net, h))
            continue;
          auto ab = sorted_fanins(net, g);
          if (ab[0] == ab[1]) continue;
          for (int m = 0; m < 2 && !hit; ++m) {
            NodeId x = net.node(h).fanins[m];
            hit = x != net.node(h).fanins[1 - m] && is2(net, x, from) &&
                  sorted_fanins(net, x) == ab;
          }
        }
        if (hit) out.push_back(c);
      }
    }
  }
  if (opt.distrib) {
    for (NodeId n = 0; n < n_nodes; ++n) {
      GateType inner;
      if (is2(net, n, GateType::Or))
        inner = GateType::And;
      else if (is2(net, n, GateType::And))
        inner = GateType::Or;
      else
        continue;
      NodeId p = net.node(n).fanins[0], q = net.node(n).fanins[1];
      if (p == q || !is2(net, p, inner) || !is2(net, q, inner)) continue;
      if (!retirable(net, p) || !retirable(net, q)) continue;
      bool common = false;
      for (int i = 0; i < 2 && !common; ++i)
        for (int j = 0; j < 2 && !common; ++j)
          common = net.node(p).fanins[i] == net.node(q).fanins[j];
      if (common) out.push_back({RuleKind::Distrib, n, 0, kNoNode});
    }
  }
  return out;
}

bool apply_rule(Netlist& net, const Candidate& c) {
  switch (c.rule) {
    case RuleKind::Fold: return apply_fold(net, c);
    case RuleKind::Reassoc: return apply_reassoc(net, c);
    case RuleKind::InvPush: return apply_inv_push(net, c);
    case RuleKind::Share: return apply_share(net, c);
    case RuleKind::MuxRule: return apply_mux(net, c);
    case RuleKind::Carry: return apply_carry(net, c);
    case RuleKind::Distrib: return apply_distrib(net, c);
  }
  return false;
}

}  // namespace lps::logicopt::rewrite
